type phase = Complete | Instant

type event = {
  pid : int;
  track : int;
  name : string;
  cat : string;
  ph : phase;
  ts : float;
  dur : float;
  wts : float; (* wall begin, host monotonic ns; nan when not captured *)
  wdur : float; (* wall duration, ns; nan when not captured *)
  args : (string * Jsonx.t) list;
}

type t = {
  enabled : bool;
  txn_sample : int;
  mutable clock : int -> float;
  mutable wall : (unit -> float) option;
  mutable events : event list; (* newest first *)
  mutable n_events : int;
  mutable cur_pid : int;
  mutable next_pid : int;
  mutable processes : (int * string) list; (* pid -> label, newest first *)
}

let no_clock (_ : int) = 0.0

let null =
  {
    enabled = false;
    txn_sample = 0;
    clock = no_clock;
    wall = None;
    events = [];
    n_events = 0;
    cur_pid = 0;
    next_pid = 0;
    processes = [];
  }

let create ?(txn_sample = 8) () =
  {
    enabled = true;
    txn_sample = max 0 txn_sample;
    clock = no_clock;
    wall = None;
    events = [];
    n_events = 0;
    cur_pid = 0;
    next_pid = 1;
    processes = [];
  }

let enabled t = t.enabled
let txn_sample t = t.txn_sample
let set_clock t clock = if t.enabled then t.clock <- clock
let set_wall_clock t wall = if t.enabled then t.wall <- wall
let wall_enabled t = t.enabled && t.wall <> None
let now t ~core = t.clock core
let wall_now t = match t.wall with Some f -> f () | None -> Float.nan

let open_process t ~name =
  if t.enabled then begin
    t.cur_pid <- t.next_pid;
    t.next_pid <- t.next_pid + 1;
    t.processes <- (t.cur_pid, name) :: t.processes
  end

let record t e =
  t.events <- e :: t.events;
  t.n_events <- t.n_events + 1

let complete t ~core ~name ?(cat = "") ?(args = []) ?(wts = Float.nan) ?(wdur = Float.nan) ~ts
    ~dur () =
  if t.enabled then
    record t { pid = t.cur_pid; track = core; name; cat; ph = Complete; ts; dur; wts; wdur; args }

let instant t ~core ~name ?(cat = "") ?(args = []) () =
  if t.enabled then
    record t
      {
        pid = t.cur_pid;
        track = core;
        name;
        cat;
        ph = Instant;
        ts = t.clock core;
        dur = 0.0;
        wts = wall_now t;
        wdur = Float.nan;
        args;
      }

let span t ~core ~name ?cat f =
  if not t.enabled then f ()
  else begin
    let ts = t.clock core in
    let wts = wall_now t in
    let r = f () in
    let wdur = wall_now t -. wts in
    complete t ~core ~name ?cat ~wts ~wdur ~ts ~dur:(t.clock core -. ts) ();
    r
  end

let events t = List.rev t.events
let event_count t = t.n_events
let processes t = List.rev t.processes

let clear t =
  t.events <- [];
  t.n_events <- 0
