(** Export a {!Tracer} to the Chrome trace-event JSON format, loadable
    by Perfetto ([ui.perfetto.dev]) and [chrome://tracing].

    Layout: one trace {e process} per engine instance
    ({!Tracer.open_process}), one {e thread} ("core N") per simulated
    core. Phase and transaction spans are complete ("X") events; GC and
    eviction markers are instant ("i") events. Timestamps are simulated
    nanoseconds, exported as fractional microseconds (the format's
    unit). *)

val to_json : Tracer.t -> Jsonx.t
val to_string : Tracer.t -> string
val write_file : Tracer.t -> string -> unit
