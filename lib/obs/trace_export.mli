(** Export a {!Tracer} to the Chrome trace-event JSON format, loadable
    by Perfetto ([ui.perfetto.dev]) and [chrome://tracing].

    Layout: one trace {e process} per engine instance
    ({!Tracer.open_process}), one {e thread} ("core N") per simulated
    core. Phase and transaction spans are complete ("X") events; GC and
    eviction markers are instant ("i") events. Timestamps are simulated
    nanoseconds, exported as fractional microseconds (the format's
    unit).

    When the tracer captured wall readings ({!Tracer.set_wall_clock}),
    every wall-carrying event is additionally mirrored into a second
    process group at [pid + 1000] labeled "(wall time)", with wall
    timestamps normalized so the earliest one is t=0. Opening the trace
    shows the two clock domains stacked: simulated NVMM time on top,
    host wall time below, same span names and tracks. Traces with no
    wall data export byte-identically to the single-clock format. *)

val to_json : Tracer.t -> Jsonx.t
val to_string : Tracer.t -> string
val write_file : Tracer.t -> string -> unit
