(** Wall-clock phase profiler with allocation accounting.

    The {!Tracer} answers "what happened when" on the simulated clock;
    this module answers "where did the host's time and memory actually
    go": per phase name it aggregates call count, total host wall time
    (monotonic, [Nv_util.Clock]), and [Gc.quick_stat] word deltas
    (minor / major / promoted). Cheap enough to leave on for a whole
    run — two clock reads and two [Gc.quick_stat] calls per phase.

    Phases wrap the epoch pipeline on the coordinating domain, so Gc
    deltas count that domain's allocations only; what the worker
    domains were doing meanwhile is reported by the embedded
    {!Nv_util.Dpool.telemetry} (per-domain busy/spin/sleep wall time).

    Epoch bracketing ([epoch_begin] / [epoch_end]) feeds a slow-epoch
    detector: an epoch whose wall time crosses the threshold is
    recorded with its per-phase wall breakdown (first 32 kept) and
    reported through the [on_slow] callback — the hook the server uses
    to log hiccups as they happen.

    The disabled profiler ({!null}) makes every operation a no-op. *)

type phase_stat = {
  calls : int;
  wall_ns : float;
  minor_words : float;
      (** minor-heap words allocated (coordinating domain; exact — read
          from the allocation pointer via [Gc.minor_words]) *)
  major_words : float;
      (** major-heap words per [Gc.quick_stat]; on OCaml 5 these
          counters advance with GC work, so attribution to a phase is
          best-effort *)
  promoted_words : float;
}

type slow_epoch = {
  epoch : int;  (** engine epoch number *)
  wall_ns : float;  (** wall time of the whole epoch *)
  phases : (string * float) list;  (** per-phase wall ns within this epoch *)
}

type t

val null : t
(** Disabled profiler: every operation is a no-op, [enabled] is false. *)

val create : ?slow_threshold_ns:float -> ?on_slow:(slow_epoch -> unit) -> unit -> t
(** Fresh enabled profiler. [slow_threshold_ns] (default: infinity, i.e.
    off) arms the slow-epoch detector; [on_slow] fires synchronously
    from [epoch_end] for each slow epoch. *)

val enabled : t -> bool

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f], charging its wall time and Gc deltas to
    [name]. Re-entrant use of the same name double-counts; the engine's
    phases do not nest. Charges even if [f] raises. *)

val epoch_begin : t -> epoch:int -> unit
val epoch_end : t -> unit

val note : ?n:int -> t -> string -> unit
(** [note t name] bumps the free-form counter [name] by [n] (default 1).
    Engines use these for rare-event tallies that belong next to the
    phase table — e.g. the [serial.*] reasons an execute phase was
    forced onto one stripe. No-op when disabled. *)

val notes : t -> (string * int) list
(** Note counters, in first-use order. *)

val epochs : t -> int
(** Epochs bracketed so far. *)

val total_wall_ns : t -> float
(** Total wall time across bracketed epochs. *)

val stats : t -> (string * phase_stat) list
(** Per-phase aggregates, in first-use order. *)

val slow_epochs : t -> slow_epoch list
(** Slow epochs in occurrence order (at most 32 kept; see
    {!slow_epoch_count} for the true total). *)

val slow_epoch_count : t -> int

val reset : t -> unit
(** Drop all aggregates, phase names, note counters and slow epochs. *)

val telemetry_json : unit -> Jsonx.t
(** The current {!Nv_util.Dpool.telemetry} as a JSON array (one object
    per domain slot) — shared by {!to_json} and the server's live
    stats snapshot. *)

val to_json : t -> Jsonx.t
(** Full snapshot: epochs, total wall, per-phase table, slow epochs,
    note counters, and per-domain {!Nv_util.Dpool.telemetry}. Times in
    ms, allocation in words. *)

val pp_table : Format.formatter -> t -> unit
(** Human-readable phase table (wall ms, %, minor/major Mwords), the
    note counters when any were bumped, plus a per-domain
    pool-telemetry table when any domain did work. *)
