(** Minimal dependency-free JSON values: enough for trace/metrics export
    and for round-trip tests. Not a general-purpose JSON library. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite floats render as
    [null] — JSON has no literal for them. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document. Raises {!Parse_error} on malformed
    input or trailing garbage. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Assoc]; [None] for other shapes or a missing key. *)

val to_list : t -> t list
val to_int : t -> int
val to_float : t -> float
val to_str : t -> string
