(* Wall-clock phase profiler. Unlike the tracer (event stream, simulated
   clock first) this aggregates: per phase name, total host wall time
   and Gc.quick_stat allocation deltas, cheap enough to leave on for a
   whole benchmark run. All updates happen on the domain driving the
   epoch pipeline (phases wrap the fan-out, not the per-core bodies), so
   plain mutable state suffices; Gc deltas consequently count the
   coordinating domain's allocations only — in wide runs the workers'
   minor heaps are invisible here, which is exactly the split the
   telemetry section (per-domain busy/spin/sleep from Dpool) covers. *)

type phase_stat = {
  calls : int;
  wall_ns : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
}

let zero_stat =
  { calls = 0; wall_ns = 0.0; minor_words = 0.0; major_words = 0.0; promoted_words = 0.0 }

type slow_epoch = {
  epoch : int;
  wall_ns : float;
  phases : (string * float) list; (* per-phase wall ns within this epoch *)
}

type cell = { mutable stat : phase_stat }

type t = {
  enabled : bool;
  slow_threshold_ns : float; (* infinity = no slow-epoch tracking *)
  on_slow : slow_epoch -> unit;
  by_name : (string, cell) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
  note_by_name : (string, int ref) Hashtbl.t;
  mutable note_order : string list; (* reverse registration order *)
  mutable epochs : int;
  mutable total_wall_ns : float;
  mutable cur_epoch : int;
  mutable epoch_t0 : float;
  mutable epoch_mark : (string * float) list; (* phase wall at epoch begin *)
  mutable in_epoch : bool;
  mutable slow : slow_epoch list; (* newest first, capped *)
  mutable n_slow : int;
}

let max_slow_kept = 32

let make ~enabled ~slow_threshold_ns ~on_slow =
  {
    enabled;
    slow_threshold_ns;
    on_slow;
    by_name = Hashtbl.create 16;
    order = [];
    note_by_name = Hashtbl.create 16;
    note_order = [];
    epochs = 0;
    total_wall_ns = 0.0;
    cur_epoch = 0;
    epoch_t0 = 0.0;
    epoch_mark = [];
    in_epoch = false;
    slow = [];
    n_slow = 0;
  }

let null = make ~enabled:false ~slow_threshold_ns:Float.infinity ~on_slow:ignore

let create ?(slow_threshold_ns = Float.infinity) ?(on_slow = ignore) () =
  make ~enabled:true ~slow_threshold_ns ~on_slow

let enabled t = t.enabled

let cell t name =
  match Hashtbl.find_opt t.by_name name with
  | Some c -> c
  | None ->
      let c = { stat = zero_stat } in
      Hashtbl.add t.by_name name c;
      t.order <- name :: t.order;
      c

let phase t name f =
  if not t.enabled then f ()
  else begin
    let c = cell t name in
    (* [Gc.minor_words] reads the allocation pointer, so it is exact at
       any moment; the [quick_stat] major/promoted counters only advance
       with GC work on OCaml 5, making them best-effort attribution. *)
    let m0 = Gc.minor_words () in
    let g0 = Gc.quick_stat () in
    let t0 = Nv_util.Clock.now_ns () in
    Fun.protect
      ~finally:(fun () ->
        let dt = Nv_util.Clock.now_ns () -. t0 in
        let g1 = Gc.quick_stat () in
        let m1 = Gc.minor_words () in
        let s = c.stat in
        c.stat <-
          {
            calls = s.calls + 1;
            wall_ns = s.wall_ns +. dt;
            minor_words = s.minor_words +. (m1 -. m0);
            major_words = s.major_words +. (g1.Gc.major_words -. g0.Gc.major_words);
            promoted_words = s.promoted_words +. (g1.Gc.promoted_words -. g0.Gc.promoted_words);
          })
      f
  end

let note ?(n = 1) t name =
  if t.enabled then
    match Hashtbl.find_opt t.note_by_name name with
    | Some r -> r := !r + n
    | None ->
        Hashtbl.add t.note_by_name name (ref n);
        t.note_order <- name :: t.note_order

let notes t = List.rev_map (fun name -> (name, !(Hashtbl.find t.note_by_name name))) t.note_order

let phase_walls t =
  List.rev_map (fun name -> (name, (Hashtbl.find t.by_name name).stat.wall_ns)) t.order
  |> List.rev

let epoch_begin t ~epoch =
  if t.enabled then begin
    t.cur_epoch <- epoch;
    t.epoch_t0 <- Nv_util.Clock.now_ns ();
    if t.slow_threshold_ns < Float.infinity then t.epoch_mark <- phase_walls t;
    t.in_epoch <- true
  end

let epoch_end t =
  if t.enabled && t.in_epoch then begin
    t.in_epoch <- false;
    let wall = Nv_util.Clock.now_ns () -. t.epoch_t0 in
    t.epochs <- t.epochs + 1;
    t.total_wall_ns <- t.total_wall_ns +. wall;
    if wall >= t.slow_threshold_ns then begin
      let mark = t.epoch_mark in
      let phases =
        List.filter_map
          (fun (name, w1) ->
            let w0 = match List.assoc_opt name mark with Some w -> w | None -> 0.0 in
            let d = w1 -. w0 in
            if d > 0.0 then Some (name, d) else None)
          (phase_walls t)
      in
      let se = { epoch = t.cur_epoch; wall_ns = wall; phases } in
      t.n_slow <- t.n_slow + 1;
      if List.length t.slow < max_slow_kept then t.slow <- se :: t.slow;
      t.on_slow se
    end
  end

let epochs t = t.epochs
let total_wall_ns t = t.total_wall_ns
let stats t = List.rev_map (fun name -> (name, (Hashtbl.find t.by_name name).stat)) t.order
let slow_epochs t = List.rev t.slow
let slow_epoch_count t = t.n_slow

let reset t =
  Hashtbl.reset t.by_name;
  t.order <- [];
  Hashtbl.reset t.note_by_name;
  t.note_order <- [];
  t.epochs <- 0;
  t.total_wall_ns <- 0.0;
  t.in_epoch <- false;
  t.epoch_mark <- [];
  t.slow <- [];
  t.n_slow <- 0

let telemetry_json () =
  let tele = Nv_util.Dpool.telemetry () in
  Jsonx.List
    (Array.to_list
       (Array.mapi
          (fun i (s : Nv_util.Dpool.Telemetry.stat) ->
            Jsonx.Assoc
              [
                ("domain", Jsonx.Int i);
                ("tasks", Jsonx.Int s.tasks);
                ("busy_ns", Jsonx.Float s.busy_ns);
                ("spin_ns", Jsonx.Float s.spin_ns);
                ("sleep_ns", Jsonx.Float s.sleep_ns);
                ("escalations", Jsonx.Int s.escalations);
              ])
          tele))

let slow_json (se : slow_epoch) =
  Jsonx.Assoc
    [
      ("epoch", Jsonx.Int se.epoch);
      ("wall_ms", Jsonx.Float (se.wall_ns /. 1e6));
      ( "phases",
        Jsonx.Assoc (List.map (fun (n, w) -> (n, Jsonx.Float (w /. 1e6))) se.phases) );
    ]

let to_json t =
  let phase_json (name, s) =
    Jsonx.Assoc
      [
        ("name", Jsonx.String name);
        ("calls", Jsonx.Int s.calls);
        ("wall_ms", Jsonx.Float (s.wall_ns /. 1e6));
        ("minor_words", Jsonx.Float s.minor_words);
        ("major_words", Jsonx.Float s.major_words);
        ("promoted_words", Jsonx.Float s.promoted_words);
      ]
  in
  Jsonx.Assoc
    [
      ("epochs", Jsonx.Int t.epochs);
      ("total_wall_ms", Jsonx.Float (t.total_wall_ns /. 1e6));
      ("phases", Jsonx.List (List.map phase_json (stats t)));
      ("slow_epochs_total", Jsonx.Int t.n_slow);
      ("slow_epochs", Jsonx.List (List.map slow_json (slow_epochs t)));
      ("notes", Jsonx.Assoc (List.map (fun (n, c) -> (n, Jsonx.Int c)) (notes t)));
      ("domains", telemetry_json ());
    ]

let pp_table ppf t =
  let open Format in
  let total = Float.max t.total_wall_ns 1.0 in
  fprintf ppf "@[<v>";
  fprintf ppf "phase                      calls     wall ms   %%wall   minor Mw   major Mw@,";
  fprintf ppf "-------------------------  ------  ---------  ------  ---------  ---------@,";
  List.iter
    (fun (name, s) ->
      fprintf ppf "%-25s  %6d  %9.2f  %5.1f%%  %9.2f  %9.2f@," name s.calls (s.wall_ns /. 1e6)
        (100.0 *. s.wall_ns /. total)
        (s.minor_words /. 1e6) (s.major_words /. 1e6))
    (stats t);
  fprintf ppf "epochs %d, total wall %.2f ms" t.epochs (t.total_wall_ns /. 1e6);
  if t.n_slow > 0 then fprintf ppf ", slow epochs %d" t.n_slow;
  fprintf ppf "@,";
  (match notes t with
  | [] -> ()
  | ns ->
      fprintf ppf "@,note                        count@,";
      fprintf ppf "-------------------------  ------@,";
      List.iter (fun (name, c) -> fprintf ppf "%-25s  %6d@," name c) ns);
  let tele = Nv_util.Dpool.telemetry () in
  let active =
    Array.exists
      (fun (s : Nv_util.Dpool.Telemetry.stat) -> s.tasks > 0 || s.busy_ns > 0.0)
      tele
  in
  if active then begin
    fprintf ppf "@,domain    tasks    busy ms    spin ms   sleep ms  escalations@,";
    fprintf ppf "------  -------  ---------  ---------  ---------  -----------@,";
    Array.iteri
      (fun i (s : Nv_util.Dpool.Telemetry.stat) ->
        fprintf ppf "%6d  %7d  %9.2f  %9.2f  %9.2f  %11d@," i s.tasks (s.busy_ns /. 1e6)
          (s.spin_ns /. 1e6) (s.sleep_ns /. 1e6) s.escalations)
      tele
  end;
  fprintf ppf "@]"
