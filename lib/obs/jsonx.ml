type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* JSON has no inf/nan literals; degrade to null. *)
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then None
  else if Float.is_integer f && Float.abs f < 1e15 then Some (Printf.sprintf "%.1f" f)
  else Some (Printf.sprintf "%.12g" f)

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> (
      match float_repr f with
      | Some s -> Buffer.add_string buf s
      | None -> Buffer.add_string buf "null")
  | String s -> escape buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Assoc l ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        l;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (recursive descent; enough for round-trip tests and tooling) *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let error msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> error (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word then begin
      pos := !pos + String.length word;
      v
    end
    else error ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then error "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then error "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' | '\\' | '/' ->
              Buffer.add_char buf e;
              go ()
          | 'n' ->
              Buffer.add_char buf '\n';
              go ()
          | 'r' ->
              Buffer.add_char buf '\r';
              go ()
          | 't' ->
              Buffer.add_char buf '\t';
              go ()
          | 'b' ->
              Buffer.add_char buf '\b';
              go ()
          | 'f' ->
              Buffer.add_char buf '\012';
              go ()
          | 'u' ->
              if !pos + 4 > n then error "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s !pos 4) in
              pos := !pos + 4;
              (* Code points below 0x80 decode to one byte; others are
                 re-encoded as UTF-8. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              go ()
          | _ -> error "bad escape")
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok then
      Float (float_of_string tok)
    else
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> Float (float_of_string tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> error "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Assoc []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> error "expected , or }"
          in
          Assoc (members [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> error "expected , or ]"
          in
          List (elements [])
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then error "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors (tooling and test helpers)                                *)

let member key = function Assoc l -> List.assoc_opt key l | _ -> None

let to_list = function List l -> l | _ -> invalid_arg "Jsonx.to_list"

let to_int = function
  | Int i -> i
  | Float f when Float.is_integer f -> int_of_float f
  | _ -> invalid_arg "Jsonx.to_int"

let to_float = function Float f -> f | Int i -> float_of_int i | _ -> invalid_arg "Jsonx.to_float"
let to_str = function String s -> s | _ -> invalid_arg "Jsonx.to_str"
