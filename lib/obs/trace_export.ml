(* Chrome trace-event format (the JSON object form), loadable by
   Perfetto and chrome://tracing. Timestamps in the format are
   microseconds; the tracer records simulated nanoseconds, so values
   are divided by 1e3 (fractional microseconds are allowed). *)

let us ns = ns /. 1e3

let event_json (e : Tracer.event) =
  let common =
    [
      ("name", Jsonx.String e.Tracer.name);
      ("cat", Jsonx.String (if e.Tracer.cat = "" then "default" else e.Tracer.cat));
      ("pid", Jsonx.Int e.Tracer.pid);
      ("tid", Jsonx.Int e.Tracer.track);
      ("ts", Jsonx.Float (us e.Tracer.ts));
    ]
  in
  let specific =
    match e.Tracer.ph with
    | Tracer.Complete ->
        [ ("ph", Jsonx.String "X"); ("dur", Jsonx.Float (us e.Tracer.dur)) ]
    | Tracer.Instant -> [ ("ph", Jsonx.String "i"); ("s", Jsonx.String "t") ]
  in
  let args = match e.Tracer.args with [] -> [] | args -> [ ("args", Jsonx.Assoc args) ] in
  Jsonx.Assoc (common @ specific @ args)

let metadata ~pid ?(tid = 0) ~meta ~value () =
  Jsonx.Assoc
    [
      ("name", Jsonx.String meta);
      ("ph", Jsonx.String "M");
      ("pid", Jsonx.Int pid);
      ("tid", Jsonx.Int tid);
      ("args", Jsonx.Assoc [ ("name", Jsonx.String value) ]);
    ]

let to_json tracer =
  let events = Tracer.events tracer in
  let named = Tracer.processes tracer in
  let pids = Hashtbl.create 8 in
  let tracks = Hashtbl.create 16 in
  List.iter
    (fun (e : Tracer.event) ->
      Hashtbl.replace pids e.Tracer.pid ();
      Hashtbl.replace tracks (e.Tracer.pid, e.Tracer.track) ())
    events;
  let process_meta =
    Hashtbl.fold
      (fun pid () acc ->
        let label =
          match List.assoc_opt pid named with
          | Some l -> Printf.sprintf "%s (simulated time)" l
          | None -> "nvcaracal (simulated time)"
        in
        metadata ~pid ~meta:"process_name" ~value:label () :: acc)
      pids []
  in
  let thread_meta =
    Hashtbl.fold
      (fun (pid, tid) () acc ->
        metadata ~pid ~tid ~meta:"thread_name" ~value:(Printf.sprintf "core %d" tid) () :: acc)
      tracks []
  in
  let sort_meta =
    List.sort
      (fun a b ->
        compare (Jsonx.member "pid" a, Jsonx.member "tid" a)
          (Jsonx.member "pid" b, Jsonx.member "tid" b))
  in
  Jsonx.Assoc
    [
      ( "traceEvents",
        Jsonx.List (sort_meta process_meta @ sort_meta thread_meta @ List.map event_json events)
      );
      ("displayTimeUnit", Jsonx.String "ns");
    ]

let to_string tracer = Jsonx.to_string (to_json tracer)

let write_file tracer path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string tracer))
