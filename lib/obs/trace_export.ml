(* Chrome trace-event format (the JSON object form), loadable by
   Perfetto and chrome://tracing. Timestamps in the format are
   microseconds; the tracer records simulated nanoseconds, so values
   are divided by 1e3 (fractional microseconds are allowed).

   Dual clocks: when events carry wall readings (non-nan [wts]), the
   export mirrors them into a second set of processes at
   [pid + wall_pid_offset] labeled "(wall time)". Wall timestamps are
   normalized so the earliest wall event sits at t=0 — the monotonic
   clock's epoch is arbitrary, and normalizing keeps the two clock
   domains visually comparable side by side. Traces without wall data
   are exported byte-identically to the single-clock format. *)

let us ns = ns /. 1e3
let wall_pid_offset = 1000

let event_json (e : Tracer.event) =
  let common =
    [
      ("name", Jsonx.String e.Tracer.name);
      ("cat", Jsonx.String (if e.Tracer.cat = "" then "default" else e.Tracer.cat));
      ("pid", Jsonx.Int e.Tracer.pid);
      ("tid", Jsonx.Int e.Tracer.track);
      ("ts", Jsonx.Float (us e.Tracer.ts));
    ]
  in
  let specific =
    match e.Tracer.ph with
    | Tracer.Complete ->
        [ ("ph", Jsonx.String "X"); ("dur", Jsonx.Float (us e.Tracer.dur)) ]
    | Tracer.Instant -> [ ("ph", Jsonx.String "i"); ("s", Jsonx.String "t") ]
  in
  let args = match e.Tracer.args with [] -> [] | args -> [ ("args", Jsonx.Assoc args) ] in
  Jsonx.Assoc (common @ specific @ args)

let has_wall (e : Tracer.event) = not (Float.is_nan e.Tracer.wts)

let wall_event_json ~t0 (e : Tracer.event) =
  let common =
    [
      ("name", Jsonx.String e.Tracer.name);
      ("cat", Jsonx.String (if e.Tracer.cat = "" then "default" else e.Tracer.cat));
      ("pid", Jsonx.Int (e.Tracer.pid + wall_pid_offset));
      ("tid", Jsonx.Int e.Tracer.track);
      ("ts", Jsonx.Float (us (e.Tracer.wts -. t0)));
    ]
  in
  let specific =
    match e.Tracer.ph with
    | Tracer.Complete ->
        let wdur = if Float.is_nan e.Tracer.wdur then 0.0 else e.Tracer.wdur in
        [ ("ph", Jsonx.String "X"); ("dur", Jsonx.Float (us wdur)) ]
    | Tracer.Instant -> [ ("ph", Jsonx.String "i"); ("s", Jsonx.String "t") ]
  in
  let args = match e.Tracer.args with [] -> [] | args -> [ ("args", Jsonx.Assoc args) ] in
  Jsonx.Assoc (common @ specific @ args)

let metadata ~pid ?(tid = 0) ~meta ~value () =
  Jsonx.Assoc
    [
      ("name", Jsonx.String meta);
      ("ph", Jsonx.String "M");
      ("pid", Jsonx.Int pid);
      ("tid", Jsonx.Int tid);
      ("args", Jsonx.Assoc [ ("name", Jsonx.String value) ]);
    ]

let to_json tracer =
  let events = Tracer.events tracer in
  let named = Tracer.processes tracer in
  let wall_events = List.filter has_wall events in
  let wall_t0 =
    List.fold_left (fun acc (e : Tracer.event) -> Float.min acc e.Tracer.wts) Float.infinity
      wall_events
  in
  let pids = Hashtbl.create 8 in
  let tracks = Hashtbl.create 16 in
  let wall_pids = Hashtbl.create 8 in
  let wall_tracks = Hashtbl.create 16 in
  List.iter
    (fun (e : Tracer.event) ->
      Hashtbl.replace pids e.Tracer.pid ();
      Hashtbl.replace tracks (e.Tracer.pid, e.Tracer.track) ())
    events;
  List.iter
    (fun (e : Tracer.event) ->
      Hashtbl.replace wall_pids e.Tracer.pid ();
      Hashtbl.replace wall_tracks (e.Tracer.pid, e.Tracer.track) ())
    wall_events;
  let label_of pid =
    match List.assoc_opt pid named with Some l -> l | None -> "nvcaracal"
  in
  let process_meta =
    Hashtbl.fold
      (fun pid () acc ->
        let label = Printf.sprintf "%s (simulated time)" (label_of pid) in
        metadata ~pid ~meta:"process_name" ~value:label () :: acc)
      pids []
  in
  let wall_process_meta =
    Hashtbl.fold
      (fun pid () acc ->
        let label = Printf.sprintf "%s (wall time)" (label_of pid) in
        metadata ~pid:(pid + wall_pid_offset) ~meta:"process_name" ~value:label () :: acc)
      wall_pids []
  in
  let thread_meta =
    Hashtbl.fold
      (fun (pid, tid) () acc ->
        metadata ~pid ~tid ~meta:"thread_name" ~value:(Printf.sprintf "core %d" tid) () :: acc)
      tracks []
  in
  let wall_thread_meta =
    Hashtbl.fold
      (fun (pid, tid) () acc ->
        metadata ~pid:(pid + wall_pid_offset) ~tid ~meta:"thread_name"
          ~value:(Printf.sprintf "core %d" tid) ()
        :: acc)
      wall_tracks []
  in
  let sort_meta =
    List.sort
      (fun a b ->
        compare (Jsonx.member "pid" a, Jsonx.member "tid" a)
          (Jsonx.member "pid" b, Jsonx.member "tid" b))
  in
  Jsonx.Assoc
    [
      ( "traceEvents",
        Jsonx.List
          (sort_meta (process_meta @ wall_process_meta)
          @ sort_meta (thread_meta @ wall_thread_meta)
          @ List.map event_json events
          @ List.map (wall_event_json ~t0:wall_t0) wall_events) );
      ("displayTimeUnit", Jsonx.String "ns");
    ]

let to_string tracer = Jsonx.to_string (to_json tracer)

let write_file tracer path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string tracer))
