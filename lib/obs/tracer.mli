(** Span tracer over {e simulated} time, with an optional second
    wall-clock domain.

    The engine runs on a discrete-event clock (every memory access
    advances the owning core's [Nv_nvmm.Stats] clock), so a tracer
    cannot read wall time by default: instead the owner installs a
    clock closure ([set_clock]) mapping a core id to its current
    simulated nanoseconds. Spans and instants are then recorded on
    per-core tracks and exported to the Chrome/Perfetto trace format by
    {!Trace_export}.

    {b Dual clocks.} When a wall clock is additionally installed
    ([set_wall_clock], host monotonic ns), every span and instant also
    captures a wall begin/duration alongside its simulated reading, and
    the export mirrors the trace into a second set of "(wall time)"
    processes. Wall capture is strictly opt-in: with no wall clock the
    wall fields stay [nan], the export is byte-identical to the
    simulated-only format, and seeded runs stay deterministic.

    A disabled tracer ({!null}) makes every operation a no-op — the
    engine's hot path pays one field read per potential span. *)

type phase = Complete | Instant

type event = {
  pid : int;  (** process (one engine instance / run) *)
  track : int;  (** per-core track (thread id in the export) *)
  name : string;
  cat : string;
  ph : phase;
  ts : float;  (** begin time, simulated ns *)
  dur : float;  (** duration, simulated ns; 0 for instants *)
  wts : float;  (** begin time, host monotonic ns; [nan] if not captured *)
  wdur : float;  (** wall duration, ns; [nan] if not captured *)
  args : (string * Jsonx.t) list;
}

type t

val null : t
(** The disabled tracer: every operation is a no-op, [enabled] is
    false. Shared; safe to install into any number of engines. *)

val create : ?txn_sample:int -> unit -> t
(** Fresh enabled tracer. [txn_sample] is the per-transaction span
    sampling stride the engine should apply (1 = trace every
    transaction, 0 = no transaction spans; default 8). *)

val enabled : t -> bool
val txn_sample : t -> int

val set_clock : t -> (int -> float) -> unit
(** Install the simulated clock: [clock core] returns that core's
    current time in ns. The engine installs this when the tracer is
    attached; re-attaching to a new engine rebinds it. *)

val set_wall_clock : t -> (unit -> float) option -> unit
(** Install (or remove, with [None]) the host wall clock — typically
    [Some Nv_util.Clock.now_ns]. Unlike the simulated clock it is not
    per-core: one monotonic time base covers the process. *)

val wall_enabled : t -> bool
(** True when enabled and a wall clock is installed. *)

val now : t -> core:int -> float

val wall_now : t -> float
(** Current wall reading, or [nan] when no wall clock is installed. *)

val open_process : t -> name:string -> unit
(** Start a new logical process (one benchmark run / engine instance);
    subsequent events carry its pid, and the export names the process
    group accordingly. *)

val span : t -> core:int -> name:string -> ?cat:string -> (unit -> 'a) -> 'a
(** [span t ~core ~name ~cat f] runs [f], recording a complete span on
    [core]'s track from the clock reading before [f] to the one after
    (both clocks, when the wall clock is installed). If [f] raises,
    nothing is recorded. *)

val complete :
  t ->
  core:int ->
  name:string ->
  ?cat:string ->
  ?args:(string * Jsonx.t) list ->
  ?wts:float ->
  ?wdur:float ->
  ts:float ->
  dur:float ->
  unit ->
  unit
(** Record a span with explicit begin/duration (for phases whose
    boundary timestamps are computed by the caller). [wts]/[wdur]
    default to [nan] (no wall reading). *)

val instant :
  t -> core:int -> name:string -> ?cat:string -> ?args:(string * Jsonx.t) list -> unit -> unit
(** Point event at the core's current clock reading (and the wall
    clock's, when installed). *)

val events : t -> event list
(** All recorded events, oldest first. *)

val event_count : t -> int

val processes : t -> (int * string) list
(** [(pid, label)] pairs from {!open_process}, oldest first. *)

val clear : t -> unit
