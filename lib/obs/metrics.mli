(** Metrics registry: named counters, gauges and histograms that the
    engine registers into, snapshotted at epoch boundaries into one
    JSONL record per epoch.

    - {e Counters} are per-interval: the engine sets/accumulates them
      during an epoch, [snapshot] emits them and resets them to 0.
    - {e Gauges} are levels (allocator high-water marks, cache size):
      they persist across snapshots.
    - {e Histograms} are per-interval distributions (e.g. sampled
      per-transaction execution time), emitted with their buckets and
      reset.

    Requesting an instrument name twice returns the same instrument;
    requesting it with a different type raises [Invalid_argument]. The
    disabled registry ({!null}) accepts all operations as no-ops and
    snapshots to nothing.

    All operations are domain-safe: counters and gauges are atomics,
    histograms and the registry are mutex-protected, and [snapshot]
    reads-and-resets each instrument in one atomic step, so updates
    racing with a snapshot land in exactly one record — never lost.
    Single-domain runs emit byte-identical records to the pre-atomic
    implementation (the golden files rely on this). *)

type t

type counter
type gauge
type histogram

val null : t
(** Disabled registry ([enabled] is false). *)

val create : unit -> t
val enabled : t -> bool

val counter : t -> string -> counter
val gauge : t -> string -> gauge
val histogram : t -> string -> histogram

val add : counter -> int -> unit
val set_counter : counter -> int -> unit
val set_gauge : gauge -> float -> unit
val observe : histogram -> float -> unit

val snapshot : t -> epoch:int -> (string * Jsonx.t) list
(** Emit one record: [("epoch", epoch)] followed by every registered
    instrument in registration order. The record is appended to
    {!records}; counters and histograms reset. Returns the emitted
    fields ([[]] when disabled). *)

val records : t -> Jsonx.t list
(** All snapshots, oldest first. *)

val to_jsonl : t -> string
(** One compact JSON object per line, oldest first. *)

val write_jsonl : t -> string -> unit
(** Write {!to_jsonl} output to a file. *)

val clear : t -> unit
(** Drop accumulated records (instruments stay registered). *)
