(* Domain-safety: instruments are updated from Dpool worker domains
   (the batcher's reply path, hammer tests, future wide-epoch metering)
   as well as the main domain, so the hot update paths must not lose
   increments. Counters and gauges are atomics (lock-free adds);
   histograms take a per-instrument mutex (observations are sampled /
   per-reply, far off any spin path). Snapshot reads-and-resets
   counters with [Atomic.exchange] and swaps histograms out under their
   lock, so an increment is either in this snapshot or the next —
   never dropped. Registration takes the registry mutex (cold path). *)

type counter = { c : int Atomic.t }
type gauge = { g : float Atomic.t }
type histogram = { mu : Mutex.t; mutable h : Nv_util.Histogram.t }
type instrument = C of counter | G of gauge | H of histogram

type t = {
  enabled : bool;
  reg_mu : Mutex.t;
  by_name : (string, instrument) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
  mutable records : Jsonx.t list; (* newest first *)
}

let null =
  { enabled = false; reg_mu = Mutex.create (); by_name = Hashtbl.create 1; order = []; records = [] }

let create () =
  { enabled = true; reg_mu = Mutex.create (); by_name = Hashtbl.create 64; order = []; records = [] }

let enabled t = t.enabled

let register t name make wrong =
  Mutex.lock t.reg_mu;
  let i =
    match Hashtbl.find_opt t.by_name name with
    | Some i ->
        if wrong i then begin
          Mutex.unlock t.reg_mu;
          invalid_arg (Printf.sprintf "Metrics: %S already registered with another type" name)
        end;
        i
    | None ->
        let i = make () in
        Hashtbl.add t.by_name name i;
        t.order <- name :: t.order;
        i
  in
  Mutex.unlock t.reg_mu;
  i

let counter t name =
  match
    register t name
      (fun () -> C { c = Atomic.make 0 })
      (function C _ -> false | G _ | H _ -> true)
  with
  | C c -> c
  | G _ | H _ -> assert false

let gauge t name =
  match
    register t name
      (fun () -> G { g = Atomic.make 0.0 })
      (function G _ -> false | C _ | H _ -> true)
  with
  | G g -> g
  | C _ | H _ -> assert false

let histogram t name =
  match
    register t name
      (fun () -> H { mu = Mutex.create (); h = Nv_util.Histogram.create () })
      (function H _ -> false | C _ | G _ -> true)
  with
  | H h -> h
  | C _ | G _ -> assert false

let add c n = ignore (Atomic.fetch_and_add c.c n)
let set_counter c n = Atomic.set c.c n
let set_gauge g v = Atomic.set g.g v

let observe h v =
  Mutex.lock h.mu;
  Nv_util.Histogram.add h.h v;
  Mutex.unlock h.mu

let histogram_json h =
  let open Nv_util.Histogram in
  if count h = 0 then Jsonx.Assoc [ ("count", Jsonx.Int 0) ]
  else
    Jsonx.Assoc
      [
        ("count", Jsonx.Int (count h));
        ("mean", Jsonx.Float (mean h));
        ("min", Jsonx.Float (min_value h));
        ("p50", Jsonx.Float (percentile h 50.0));
        ("p99", Jsonx.Float (percentile h 99.0));
        ("max", Jsonx.Float (max_value h));
        ( "buckets",
          Jsonx.List
            (List.map
               (fun (ub, n) -> Jsonx.List [ Jsonx.Float ub; Jsonx.Int n ])
               (buckets h)) );
      ]

let snapshot t ~epoch =
  if not t.enabled then []
  else begin
    (* Counters and histograms are per-interval: each is read *and*
       reset in one atomic step, so updates racing with the snapshot
       land in exactly one record. Gauges are levels and persist. *)
    let fields =
      List.rev_map
        (fun name ->
          match Hashtbl.find t.by_name name with
          | C c -> (name, Jsonx.Int (Atomic.exchange c.c 0))
          | G g -> (name, Jsonx.Float (Atomic.get g.g))
          | H h ->
              Mutex.lock h.mu;
              let taken = h.h in
              h.h <- Nv_util.Histogram.create ();
              Mutex.unlock h.mu;
              (name, histogram_json taken))
        t.order
    in
    let fields = ("epoch", Jsonx.Int epoch) :: fields in
    t.records <- Jsonx.Assoc fields :: t.records;
    fields
  end

let records t = List.rev t.records

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Jsonx.to_string r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_jsonl t))

let clear t = t.records <- []
