type counter = { mutable c : int }
type gauge = { mutable g : float }
type histogram = { mutable h : Nv_util.Histogram.t }
type instrument = C of counter | G of gauge | H of histogram

type t = {
  enabled : bool;
  by_name : (string, instrument) Hashtbl.t;
  mutable order : string list; (* reverse registration order *)
  mutable records : Jsonx.t list; (* newest first *)
}

let null = { enabled = false; by_name = Hashtbl.create 1; order = []; records = [] }

let create () = { enabled = true; by_name = Hashtbl.create 64; order = []; records = [] }

let enabled t = t.enabled

let register t name make wrong =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> (
      match i with
      | i when wrong i ->
          invalid_arg (Printf.sprintf "Metrics: %S already registered with another type" name)
      | i -> i)
  | None ->
      let i = make () in
      Hashtbl.add t.by_name name i;
      t.order <- name :: t.order;
      i

let counter t name =
  match
    register t name (fun () -> C { c = 0 }) (function C _ -> false | G _ | H _ -> true)
  with
  | C c -> c
  | G _ | H _ -> assert false

let gauge t name =
  match
    register t name (fun () -> G { g = 0.0 }) (function G _ -> false | C _ | H _ -> true)
  with
  | G g -> g
  | C _ | H _ -> assert false

let histogram t name =
  match
    register t name
      (fun () -> H { h = Nv_util.Histogram.create () })
      (function H _ -> false | C _ | G _ -> true)
  with
  | H h -> h
  | C _ | G _ -> assert false

let add c n = c.c <- c.c + n
let set_counter c n = c.c <- n
let set_gauge g v = g.g <- v
let observe h v = Nv_util.Histogram.add h.h v

let histogram_json h =
  let open Nv_util.Histogram in
  if count h = 0 then Jsonx.Assoc [ ("count", Jsonx.Int 0) ]
  else
    Jsonx.Assoc
      [
        ("count", Jsonx.Int (count h));
        ("mean", Jsonx.Float (mean h));
        ("min", Jsonx.Float (min_value h));
        ("p50", Jsonx.Float (percentile h 50.0));
        ("p99", Jsonx.Float (percentile h 99.0));
        ("max", Jsonx.Float (max_value h));
        ( "buckets",
          Jsonx.List
            (List.map
               (fun (ub, n) -> Jsonx.List [ Jsonx.Float ub; Jsonx.Int n ])
               (buckets h)) );
      ]

let snapshot t ~epoch =
  if not t.enabled then []
  else begin
    let fields =
      List.rev_map
        (fun name ->
          match Hashtbl.find t.by_name name with
          | C c -> (name, Jsonx.Int c.c)
          | G g -> (name, Jsonx.Float g.g)
          | H h -> (name, histogram_json h.h))
        t.order
    in
    let fields = ("epoch", Jsonx.Int epoch) :: fields in
    t.records <- Jsonx.Assoc fields :: t.records;
    (* Counters and histograms are per-interval: reset after emission.
       Gauges are levels and persist. *)
    List.iter
      (fun name ->
        match Hashtbl.find t.by_name name with
        | C c -> c.c <- 0
        | H h -> h.h <- Nv_util.Histogram.create ()
        | G _ -> ())
      t.order;
    fields
  end

let records t = List.rev t.records

let to_jsonl t =
  let buf = Buffer.create 1024 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Jsonx.to_string r);
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf

let write_jsonl t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_jsonl t))

let clear t = t.records <- []
