(** CRC-32C (Castagnoli) checksums and self-checking packed words.

    Used by the persistent layout ({!Nv_storage}) to make media
    corruption detectable at recovery time. Computation is host-side
    only — on real hardware this is the SSE4.2 [crc32] instruction —
    and is never charged to the simulated clock. *)

val init : unit -> int32
val update : int32 -> bytes -> int -> int -> int32
val int64 : int32 -> int64 -> int32
val int32 : int32 -> int32 -> int32
val finish : int32 -> int32

val bytes : bytes -> int -> int -> int32
(** One-shot checksum of a byte range. *)

val string : string -> int32
(** [string "123456789" = 0xE3069283l]. *)

val int64_crc : int64 -> int32
(** One-shot checksum of a little-endian 64-bit value. *)

(** {1 Packed self-checking words}

    A packed word holds a value < 2^32 in the low half of an int64 and
    its checksum (salted, so words of different roles cannot be
    confused) in the high half. The all-zero word decodes to value 0 so
    freshly zeroed NVMM parses as valid empty state. *)

val pack : ?salt:int -> int64 -> int64
(** @raise Invalid_argument if the value does not fit in 32 bits. *)

val unpack : ?salt:int -> int64 -> int64 option
(** [None] means the word fails its checksum, i.e. corruption. *)

val pack_int : ?salt:int -> int -> int64
val unpack_int : ?salt:int -> int64 -> int option
