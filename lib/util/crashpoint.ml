type state = { name : string; mutable remaining : int }

let parse s =
  if s = "" then None
  else
    match String.index_opt s ':' with
    | None -> Some (s, 1)
    | Some i -> (
        let name = String.sub s 0 i in
        let tail = String.sub s (i + 1) (String.length s - i - 1) in
        if name = "" then None
        else
          match int_of_string_opt tail with
          | Some n when n >= 1 -> Some (name, n)
          | Some _ | None -> None)

let state : state option =
  match Sys.getenv_opt "NVC_CRASHPOINT" with
  | None -> None
  | Some s -> Option.map (fun (name, n) -> { name; remaining = n }) (parse s)

let armed () = Option.map (fun st -> (st.name, st.remaining)) state

let suppressed = ref false

let suppress f =
  let prev = !suppressed in
  suppressed := true;
  Fun.protect ~finally:(fun () -> suppressed := prev) f

let hit name =
  if !suppressed then ()
  else
    match state with
    | None -> ()
    | Some st ->
      if String.equal st.name name then begin
        st.remaining <- st.remaining - 1;
        if st.remaining <= 0 then Unix.kill (Unix.getpid ()) Sys.sigkill
      end
