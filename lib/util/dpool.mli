(** A lazily-spawned pool of OCaml 5 domains for per-core epoch work.

    [run] fans an indexed task out over the pool and returns the results
    in index order. The pool guarantees nothing about evaluation order
    when it actually runs wide — callers own their determinism argument
    (see docs/PARALLELISM.md) — but degenerate runs (width 1, [n <= 1],
    or a nested call from inside a pool task) evaluate [f 0 .. f (n-1)]
    in ascending order on the calling domain, exactly like the serial
    loop they replace.

    Worker domains are spawned lazily on the first wide [run] and are
    shared process-wide via {!shared}: domains are too scarce (and too
    slow to start) to give every database instance its own. A [t] is a
    width-capped view over that shared worker state, so databases with
    different [parallelism] settings coexist in one process — a width-1
    view stays serial even after a wider view has spawned workers. *)

type t

val create : width:int -> t
(** A pool that runs at most [width] domains at once (including the
    calling domain; [width - 1] workers are spawned lazily). Width is
    clamped to [1, 64]. Private worker state — prefer {!shared}. *)

val shared : width:int -> t
(** A view of exactly [width] (clamped to [1, 64]) over the process-wide
    worker state. Workers are spawned lazily up to the largest width in
    live use and never shrink. *)

val width : t -> int

val run : t -> n:int -> (int -> 'a) -> 'a array
(** [run t ~n f] evaluates [f i] for every [i] in [0, n) — concurrently
    when the pool is wide — and returns [| f 0; ...; f (n-1) |]. Every
    index is evaluated exactly once even if some raise; after all have
    finished, the exception with the smallest index is re-raised with
    its backtrace. Nested calls from inside a pool task run inline,
    serially. The width cap is enforced through the work size: pass
    [n <= width t] (derive [n] from {!stripes} or clamp by {!width}). *)

val in_task : unit -> bool
(** Whether the calling domain is currently inside a pool task — where
    any further [run] executes inline, serially. Multi-stripe protocols
    that synchronize across stripes (done-flag or progress waits) would
    deadlock when run inline, so they must consult this and stay on a
    single stripe. *)

val stripes : t -> cores:int -> int
(** Largest divisor of [cores] not exceeding the pool width: the number
    of work stripes that keeps each simulated core's work sequence on a
    single stripe, in order (stripe of core [c] = [c mod d]). Returns 1
    when parallel execution is pointless. *)

val backoff : int -> unit
(** Escalating wait for caller-owned spin loops ([backoff spins] with a
    counter the caller increments): a pipeline pause for the first
    {!spin_config} spins, a microsleep beyond. The sleep path keeps
    spin-waits from burning whole OS timeslices when domains outnumber
    hardware cores. Every wait is metered into {!telemetry} (spin vs
    sleep wall nanoseconds, plus one escalation count per wait that
    crosses into sleeping). *)

val set_spin : ?threshold:int -> ?sleep_us:float -> unit -> unit
(** Tune the backoff escalation: [threshold] spins before sleeping
    (default 512), [sleep_us] microseconds per sleep (default 50).
    Also settable via the [NVC_SPIN] environment variable at startup:
    ["SPINS"] or ["SPINS:SLEEP_US"], e.g. [NVC_SPIN=2048] or
    [NVC_SPIN=256:20]. *)

val spin_config : unit -> int * float
(** Current [(spin_threshold, sleep_seconds)]. *)

val parse_spin : string -> (int * float) option
(** Parse an [NVC_SPIN] value into [(threshold, sleep_seconds)];
    [None] on malformed input (which leaves the defaults in place). *)

(** Per-domain activity counters: who is busy, who is spinning, who is
    asleep — the wall-clock answer to "does jobs=N actually help here"
    (see docs/PARALLELISM.md). *)
module Telemetry : sig
  type stat = {
    tasks : int;  (** indices claimed and evaluated by this domain *)
    busy_ns : float;  (** wall time inside task bodies *)
    spin_ns : float;  (** wall time in the backoff pause path *)
    sleep_ns : float;  (** wall time in the backoff sleep path *)
    escalations : int;  (** spin-waits that crossed into sleeping *)
  }

  val zero : stat
end

val telemetry : unit -> Telemetry.stat array
(** One entry per domain slot: index 0 aggregates every non-worker
    caller (the domain invoking [run], including the main domain),
    index [i >= 1] is the [i]-th worker domain ever spawned, across all
    pool views. Reads are racy by design — monitoring-grade counts, not
    a synchronization point. *)

val reset_telemetry : unit -> unit
(** Zero all telemetry slots (benchmark harnesses call this between
    measured sections). *)
