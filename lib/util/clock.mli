(** Host monotonic wall clock (CLOCK_MONOTONIC).

    The dual-clock observability model pairs every simulated-time
    reading with an optional host reading from here. Monotonic, so
    differences are meaningful across NTP adjustments; the epoch is
    arbitrary (comparable only within one process). *)

val now_ns : unit -> float
(** Current monotonic time in nanoseconds. *)

val now_s : unit -> float
(** {!now_ns} scaled to seconds. *)
