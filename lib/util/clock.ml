(* Host monotonic clock, the second clock of the dual-clock
   observability model (docs/OBSERVABILITY.md): the engine's simulated
   NVMM clock answers "where does modeled memory time go", this one
   answers "where does real time go". CLOCK_MONOTONIC via the bechamel
   stub, so readings are immune to NTP steps and slews mid-run. *)

let now_ns () = Int64.to_float (Monotonic_clock.now ())
let now_s () = now_ns () /. 1e9
