(** Streaming latency / size histograms with power-of-two-ish buckets.

    Used by the harness to report epoch latency distributions (Figure 12)
    without retaining every sample. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample (any non-negative value; unit chosen by caller). *)

val count : t -> int
val mean : t -> float
val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]]; approximate (bucket upper
    bound, clamped to the observed [\[min, max\]] range). [p <= 0]
    returns {!min_value}, [p >= 100] returns {!max_value}. Returns
    [nan] when empty. *)

val buckets : t -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)] pairs in ascending
    bound order (metrics export). The counts sum to {!count}. *)

val merge : t -> t -> t
(** Combine two histograms (used to aggregate per-core stats). *)

val pp : Format.formatter -> t -> unit
