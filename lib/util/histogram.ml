(* Buckets are geometric with ratio 2^(1/4), giving <= ~19% relative error
   on percentile queries, plenty for reporting latency shapes. *)

let ratio_log = log 2.0 /. 4.0
let n_buckets = 512

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : float;
  mutable min_v : float;
  mutable max_v : float;
}

let create () =
  {
    buckets = Array.make n_buckets 0;
    count = 0;
    sum = 0.0;
    min_v = infinity;
    max_v = neg_infinity;
  }

let bucket_of v = if v <= 1.0 then 0 else min (n_buckets - 1) (1 + int_of_float (log v /. ratio_log))

let upper_bound i = if i = 0 then 1.0 else exp (float_of_int i *. ratio_log)

let add t v =
  let v = if v < 0.0 then 0.0 else v in
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min_value t = t.min_v
let max_value t = t.max_v

let percentile t p =
  if t.count = 0 then nan
  else if p <= 0.0 then t.min_v
  else if p >= 100.0 then t.max_v
  else begin
    let target = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
    let target = if target < 1 then 1 else target in
    let rec loop i acc =
      if i >= n_buckets then t.max_v
      else
        let acc = acc + t.buckets.(i) in
        if acc >= target then Float.max (Float.min (upper_bound i) t.max_v) t.min_v
        else loop (i + 1) acc
    in
    loop 0 0
  end

let buckets t =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if t.buckets.(i) > 0 then acc := (upper_bound i, t.buckets.(i)) :: !acc
  done;
  !acc

let merge a b =
  let r = create () in
  Array.blit a.buckets 0 r.buckets 0 n_buckets;
  Array.iteri (fun i v -> r.buckets.(i) <- r.buckets.(i) + v) b.buckets;
  r.count <- a.count + b.count;
  r.sum <- a.sum +. b.sum;
  r.min_v <- Float.min a.min_v b.min_v;
  r.max_v <- Float.max a.max_v b.max_v;
  r

let pp ppf t =
  if t.count = 0 then Format.fprintf ppf "<empty>"
  else
    Format.fprintf ppf "n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f" t.count (mean t)
      (percentile t 50.0) (percentile t 99.0) t.max_v
