(** Named kill-9 injection points for crash testing.

    A process armed with [NVC_CRASHPOINT=point:n] SIGKILLs itself the
    [n]-th time execution reaches {!hit}[ point] — no atexit hooks, no
    flushes, exactly the abrupt death a power failure or OOM kill
    delivers. Unarmed (the default), {!hit} is a single comparison
    against [None], cheap enough for per-transaction call sites.

    The serving pipeline's points (see docs/FAULTS.md):
    ["post-admit"] (batch formed, not yet journaled),
    ["post-journal"] (journal record durable, epoch not yet run),
    ["mid-epoch"] (inside [run_batch], between transactions),
    ["pre-reply"] (epoch checkpointed, replies not yet sent). *)

val parse : string -> (string * int) option
(** Parse an [NVC_CRASHPOINT] value: ["point:n"] (die on the [n]-th
    hit, [n >= 1]) or bare ["point"] (first hit). [None] on malformed
    input or [n < 1]. *)

val armed : unit -> (string * int) option
(** The point this process is armed with and how many hits remain, or
    [None]. *)

val hit : string -> unit
(** Note that execution reached [point]; SIGKILL the process if this
    was the armed point's final countdown hit. *)

val suppress : (unit -> 'a) -> 'a
(** Run [f] with every {!hit} disarmed (countdowns do not advance).
    Recovery replay runs under this: injected crashes model new
    failures of {e live} serving, and a countdown that could re-fire
    during the replay of already-journaled batches would crash-loop a
    recovering server forever. *)
