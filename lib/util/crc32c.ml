(* CRC-32C (Castagnoli), the polynomial used by SSE4.2 [crc32] and by
   most storage formats (iSCSI, ext4, Btrfs). Software table-driven
   implementation; on real hardware this is one instruction per word,
   which is why checksum computation is never charged to the simulated
   clock (see docs/FAULTS.md).

   The checksum state is kept pre- and post-inverted as usual, so
   [finish (update (init ()) b 0 (Bytes.length b))] matches the
   standard test vectors (crc32c "123456789" = 0xE3069283). *)

let poly = 0x82F63B78l (* reflected 0x1EDC6F41 *)

let table =
  lazy
    (let t = Array.make 256 0l in
     for n = 0 to 255 do
       let c = ref (Int32.of_int n) in
       for _ = 0 to 7 do
         if Int32.logand !c 1l <> 0l then c := Int32.logxor (Int32.shift_right_logical !c 1) poly
         else c := Int32.shift_right_logical !c 1
       done;
       t.(n) <- !c
     done;
     t)

let init () = 0xFFFFFFFFl
let finish crc = Int32.logxor crc 0xFFFFFFFFl

let update_byte crc b =
  let t = Lazy.force table in
  let idx = Int32.to_int (Int32.logand (Int32.logxor crc (Int32.of_int b)) 0xFFl) in
  Int32.logxor t.(idx) (Int32.shift_right_logical crc 8)

let update crc buf off len =
  let c = ref crc in
  for i = off to off + len - 1 do
    c := update_byte !c (Char.code (Bytes.unsafe_get buf i))
  done;
  !c

let bytes buf off len = finish (update (init ()) buf off len)
let string s = bytes (Bytes.unsafe_of_string s) 0 (String.length s)

let int64 crc v =
  let c = ref crc in
  for i = 0 to 7 do
    c := update_byte !c (Int64.to_int (Int64.shift_right_logical v (i * 8)) land 0xff)
  done;
  !c

let int32 crc v =
  let c = ref crc in
  for i = 0 to 3 do
    c := update_byte !c (Int32.to_int (Int32.shift_right_logical v (i * 8)) land 0xff)
  done;
  !c

let int64_crc v = finish (int64 (init ()) v)

(* ------------------------------------------------------------------ *)
(* Packed self-checking words.

   A [packed] word stores a value < 2^32 in the low half of an int64
   and crc32c(value_le ++ salt_le) in the high half. The all-zero word
   decodes as value 0, so freshly zeroed NVMM parses as valid empty
   state; any other corruption of either half is detected. *)

let mix ~salt v =
  let c = init () in
  let c = int32 c (Int64.to_int32 v) in
  let c = int32 c (Int32.of_int salt) in
  finish c

let pack ?(salt = 0) v =
  if Int64.logand v 0xFFFFFFFF00000000L <> 0L then
    invalid_arg (Printf.sprintf "Crc32c.pack: value %Ld exceeds 32 bits" v);
  if v = 0L then 0L
  else
    let crc = mix ~salt v in
    Int64.logor v (Int64.shift_left (Int64.logand (Int64.of_int32 crc) 0xFFFFFFFFL) 32)

let unpack ?(salt = 0) w =
  if w = 0L then Some 0L
  else
    let v = Int64.logand w 0xFFFFFFFFL in
    let stored = Int64.to_int32 (Int64.shift_right_logical w 32) in
    if stored = mix ~salt v then Some v else None

let pack_int ?salt v = pack ?salt (Int64.of_int v)

let unpack_int ?salt w =
  match unpack ?salt w with Some v -> Some (Int64.to_int v) | None -> None
