(* A lazily-spawned, process-wide pool of OCaml 5 domains.

   Domains are a scarce resource (the runtime supports ~128 per process,
   and spawning one costs milliseconds), so worker domains belong to a
   shared singleton that grows to the largest width ever requested
   rather than to a per-database object: hundreds of short-lived [Db.t]
   values in the test-suite and fuzzer must not each spawn their own
   domains. A [t] is a width-capped *view* of that worker state, so two
   databases with different [parallelism] settings coexist in one
   process: the width-1 view always runs serially even while the
   width-4 view next to it runs wide.

   Scheduling model: [run t ~n f] makes the n indices available behind
   one atomic cursor; the caller and the idle workers race to claim
   indices and each claimed index is evaluated exactly once. Results
   land in a per-index slot, so the returned array is always in index
   order no matter which domain computed what. Exceptions are captured
   per index and the one with the smallest index is re-raised after the
   run completes (every index still runs — callers that need
   cancellation should catch inside [f]).

   Width is enforced through the work size: callers pass [n <= width]
   (the engine derives n from {!stripes}), and a view of width 1 short-
   circuits to the serial loop, so extra workers spawned for a wider
   view never see work they could steal past the cap.

   Determinism contract: the pool itself adds none — [f i] must be
   prepared to run concurrently with [f j]. What the pool guarantees is
   (a) result order, (b) that [run] with an effective width of 1 (view
   of width 1, nested call, or n <= 1) evaluates [f 0], [f 1], ... in
   ascending order on the calling domain, exactly like the serial loop
   it replaces.

   Nested use: a task that itself calls [run] (e.g. a partitioned
   database whose per-node work internally parallelises an epoch) would
   deadlock waiting for workers that are busy running it, so nested
   calls are detected via a domain-local flag and execute inline,
   serially, on the current domain. *)

type state = {
  mutex : Mutex.t;
  cond : Condition.t; (* signalled when a new run is published *)
  mutable task : task option;
  mutable generation : int;
  mutable spawned : int; (* worker domains started so far *)
  run_lock : Mutex.t; (* serialises concurrent [run] callers *)
}

and task = {
  next : int Atomic.t; (* next index to claim *)
  unfinished : int Atomic.t; (* indices claimed-or-unclaimed not yet done *)
  n : int;
  body : int -> unit; (* index -> store result/exn; must not raise *)
}

type t = {
  width : int; (* max domains that ever work on one run, incl. the caller *)
  state : state;
}

let in_pool_key = Domain.DLS.new_key (fun () -> false)
let in_task () = Domain.DLS.get in_pool_key

let hard_cap = 64

(* ------------------------------------------------------------------ *)
(* Telemetry: one slot per domain (0 = any non-worker caller, 1.. =
   worker domains in spawn order, across all pool states). Each cell is
   written only by its owning domain, so plain mutable arrays suffice —
   [telemetry] reads race with updates, which is fine for monitoring
   counters (OCaml's memory model guarantees each read sees *some*
   written value, never a torn one). *)

module Telemetry = struct
  type stat = {
    tasks : int;  (** indices claimed and evaluated by this domain *)
    busy_ns : float;  (** wall time inside task bodies *)
    spin_ns : float;  (** wall time in the backoff pause path *)
    sleep_ns : float;  (** wall time in the backoff sleep path *)
    escalations : int;  (** spin-waits that crossed into sleeping *)
  }

  let zero = { tasks = 0; busy_ns = 0.0; spin_ns = 0.0; sleep_ns = 0.0; escalations = 0 }
end

let max_slots = hard_cap + 1
let slot_key = Domain.DLS.new_key (fun () -> 0)
let next_slot = Atomic.make 1
let tele_tasks = Array.make max_slots 0
let tele_busy = Array.make max_slots 0.0
let tele_spin = Array.make max_slots 0.0
let tele_sleep = Array.make max_slots 0.0
let tele_escal = Array.make max_slots 0

(* Highest slot in use: worker slots are handed out by [next_slot], and
   slot 0 always exists for non-worker callers. *)
let telemetry () =
  Array.init
    (min (Atomic.get next_slot) max_slots)
    (fun i ->
      {
        Telemetry.tasks = tele_tasks.(i);
        busy_ns = tele_busy.(i);
        spin_ns = tele_spin.(i);
        sleep_ns = tele_sleep.(i);
        escalations = tele_escal.(i);
      })

let reset_telemetry () =
  Array.fill tele_tasks 0 max_slots 0;
  Array.fill tele_busy 0 max_slots 0.0;
  Array.fill tele_spin 0 max_slots 0.0;
  Array.fill tele_sleep 0 max_slots 0.0;
  Array.fill tele_escal 0 max_slots 0

(* ------------------------------------------------------------------ *)
(* Escalating wait for spin loops: pause the pipeline for the first
   spins, then microsleep. On a dedicated hardware core the pause path
   always wins; when domains outnumber hardware cores (small CI boxes)
   a spinning domain otherwise burns its whole OS timeslice while the
   domain it waits on sits unscheduled — sleeping hands the core over
   instead. Thresholds are tunable (NVC_SPIN / [set_spin]); every wait
   is metered into the telemetry slots above instead of burning time
   silently. *)

let default_spin_threshold = 512
let default_sleep_s = 5e-5
let spin_threshold_v = ref default_spin_threshold
let sleep_s_v = ref default_sleep_s

(* "SPINS" or "SPINS:SLEEP_US", e.g. NVC_SPIN=2048 or NVC_SPIN=256:20. *)
let parse_spin s =
  let parse_pair spins sleep_us =
    match (int_of_string_opt spins, float_of_string_opt sleep_us) with
    | Some n, Some us when n >= 0 && us > 0.0 -> Some (n, us *. 1e-6)
    | _ -> None
  in
  match String.index_opt s ':' with
  | Some i ->
      parse_pair (String.sub s 0 i) (String.sub s (i + 1) (String.length s - i - 1))
  | None -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Some (n, default_sleep_s)
      | _ -> None)

let set_spin ?threshold ?sleep_us () =
  (match threshold with Some n -> spin_threshold_v := max 0 n | None -> ());
  match sleep_us with
  | Some us when us > 0.0 -> sleep_s_v := us *. 1e-6
  | Some _ | None -> ()

let spin_config () = (!spin_threshold_v, !sleep_s_v)

let () =
  match Option.bind (Sys.getenv_opt "NVC_SPIN") parse_spin with
  | Some (threshold, sleep_s) ->
      spin_threshold_v := threshold;
      sleep_s_v := sleep_s
  | None -> ()

let backoff spins =
  let slot = Domain.DLS.get slot_key in
  let t0 = Clock.now_ns () in
  if spins < !spin_threshold_v then begin
    Domain.cpu_relax ();
    tele_spin.(slot) <- tele_spin.(slot) +. (Clock.now_ns () -. t0)
  end
  else begin
    if spins = !spin_threshold_v then tele_escal.(slot) <- tele_escal.(slot) + 1;
    Unix.sleepf !sleep_s_v;
    tele_sleep.(slot) <- tele_sleep.(slot) +. (Clock.now_ns () -. t0)
  end

let fresh_state () =
  {
    mutex = Mutex.create ();
    cond = Condition.create ();
    task = None;
    generation = 0;
    spawned = 0;
    run_lock = Mutex.create ();
  }

let create ~width =
  let width = max 1 (min width hard_cap) in
  { width; state = fresh_state () }

let width t = t.width

(* Claim and evaluate indices until the cursor runs past [n]. Runs on
   both worker domains and the caller. *)
let participate (task : task) =
  let slot = Domain.DLS.get slot_key in
  let continue_ = ref true in
  while !continue_ do
    let i = Atomic.fetch_and_add task.next 1 in
    if i >= task.n then continue_ := false
    else begin
      let t0 = Clock.now_ns () in
      task.body i;
      tele_busy.(slot) <- tele_busy.(slot) +. (Clock.now_ns () -. t0);
      tele_tasks.(slot) <- tele_tasks.(slot) + 1;
      ignore (Atomic.fetch_and_add task.unfinished (-1))
    end
  done

let worker_loop st () =
  Domain.DLS.set in_pool_key true;
  (let slot = Atomic.fetch_and_add next_slot 1 in
   if slot < max_slots then Domain.DLS.set slot_key slot);
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock st.mutex;
    while st.generation = !last_gen do
      Condition.wait st.cond st.mutex
    done;
    last_gen := st.generation;
    let task = st.task in
    Mutex.unlock st.mutex;
    (match task with Some task -> participate task | None -> ());
    loop ()
  in
  loop ()

(* Worker domains are daemons: they live for the whole process and are
   never joined, which is fine because they hold no resources beyond
   their stack and block on a condition variable while idle. *)
let ensure_workers t =
  let st = t.state in
  let wanted = t.width - 1 in
  if st.spawned < wanted then begin
    Mutex.lock st.mutex;
    while st.spawned < wanted do
      ignore (Domain.spawn (worker_loop st));
      st.spawned <- st.spawned + 1
    done;
    Mutex.unlock st.mutex
  end

let run_serial n f =
  if n <= 0 then [||]
  else begin
    let first = f 0 in
    let out = Array.make n first in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

let run_parallel t n f =
  ensure_workers t;
  let st = t.state in
  let results = Array.make n None in
  let exns = Array.make n None in
  let body i =
    match f i with
    | v -> results.(i) <- Some v
    | exception e -> exns.(i) <- Some (e, Printexc.get_raw_backtrace ())
  in
  let task = { next = Atomic.make 0; unfinished = Atomic.make n; n; body } in
  Mutex.lock st.run_lock;
  Mutex.lock st.mutex;
  st.task <- Some task;
  st.generation <- st.generation + 1;
  Condition.broadcast st.cond;
  Mutex.unlock st.mutex;
  (* The caller is one of the width workers; mark it nested while it
     participates so [f] calling back into [run] executes inline. *)
  Domain.DLS.set in_pool_key true;
  participate task;
  Domain.DLS.set in_pool_key false;
  (* Wait for stragglers: workers that claimed an index before the
     cursor ran out may still be evaluating it. The tasks are CPU-bound
     and the tail is short, so spin (with escalation) rather than add a
     completion condition variable. *)
  let spins = ref 0 in
  while Atomic.get task.unfinished > 0 do
    backoff !spins;
    incr spins
  done;
  Mutex.lock st.mutex;
  st.task <- None;
  Mutex.unlock st.mutex;
  Mutex.unlock st.run_lock;
  (match Array.find_opt Option.is_some exns with
  | Some (Some (e, bt)) -> Printexc.raise_with_backtrace e bt
  | _ -> ());
  Array.map
    (function
      | Some v -> v
      | None -> invalid_arg "Dpool.run: missing result (task did not complete)")
    results

let run t ~n f =
  if n <= 1 || t.width <= 1 || Domain.DLS.get in_pool_key then run_serial n f
  else run_parallel t n f

(* The shared worker state. Spawned workers are never shrunk; each
   [shared] call returns a view with exactly the requested width over
   the one process-wide complement of workers. *)

let global : state option ref = ref None
let global_mutex = Mutex.create ()

let shared ~width =
  let width = max 1 (min width hard_cap) in
  Mutex.lock global_mutex;
  let st =
    match !global with
    | Some st -> st
    | None ->
        let st = fresh_state () in
        global := Some st;
        st
  in
  Mutex.unlock global_mutex;
  { width; state = st }

(* Largest divisor of [cores] that is <= the pool width. Work striped
   over d such stripes keeps every simulated core's work on exactly one
   stripe (core c lands on stripe [c mod d] because d divides cores), in
   ascending order — the property the engine's determinism argument
   needs. *)
let stripes t ~cores =
  let cap = min t.width cores in
  let rec best d = if d >= 1 && cores mod d = 0 && d <= cap then d else best (d - 1) in
  if cores <= 0 then 1 else max 1 (best cap)
