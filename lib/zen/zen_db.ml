module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Layout = Nv_nvmm.Layout
module HIdx = Nv_index.Hash_index
module OIdx = Nv_index.Ordered_index
module Txn = Nvcaracal.Txn
module Table = Nvcaracal.Table
module Report = Nvcaracal.Report

type config = {
  cores : int;
  record_size : int;
  cache_entries : int;
  slots_per_core : int;
  crash_safe : bool;
  spec : Memspec.t;
}

let default_config =
  {
    cores = 8;
    record_size = 256;
    cache_entries = 65536;
    slots_per_core = 65536;
    crash_safe = false;
    spec = Memspec.default;
  }

type row = {
  key : int64;
  table : int;
  mutable rec_off : int;
  mutable cached : bytes option;
  mutable cache_slot : int; (* clock-cache slot, -1 when uncached *)
}

type index = Hash of row HIdx.t | Ord of row OIdx.t

type t = {
  config : config;
  tables : Table.t array;
  pmem : Pmem.t;
  store : Zen_store.t;
  indexes : index array;
  core_stats : Stats.t array;
  scratch : Stats.t;
  cache_slots : row option array; (* CLOCK over cached rows *)
  mutable cache_hand : int;
  mutable version : int64; (* global commit counter *)
  counters : int64 array;
  mutable committed : int;
  mutable aborted : int;
  mutable last_outcomes : [ `Committed | `Aborted | `Deferred ] array;
}

let build_layout (cfg : config) =
  let b = Layout.builder () in
  let per_core, _ =
    Zen_store.reserve b ~cores:cfg.cores ~slots_per_core:cfg.slots_per_core
      ~record_size:cfg.record_size
  in
  (Layout.total_size b, per_core)

let attach (cfg : config) tables pmem per_core =
  let tables = Array.of_list tables in
  {
    config = cfg;
    tables;
    pmem;
    store = Zen_store.attach pmem ~per_core ~record_size:cfg.record_size;
    indexes =
      Array.map
        (fun (tb : Table.t) ->
          match tb.Table.index with
          | Table.Hash -> Hash (HIdx.create ())
          | Table.Ordered -> Ord (OIdx.create ()))
        tables;
    core_stats = Array.init cfg.cores (fun _ -> Stats.create cfg.spec);
    scratch = Stats.create cfg.spec;
    cache_slots = Array.make (max 1 cfg.cache_entries) None;
    cache_hand = 0;
    version = 0L;
    counters = Array.make 8 0L;
    committed = 0;
    aborted = 0;
    last_outcomes = [||];
  }

let create ~config ~tables () =
  let size, per_core = build_layout config in
  let mode = if config.crash_safe then Pmem.Crash_safe else Pmem.Fast in
  attach config tables (Pmem.create ~mode ~size ()) per_core

let pmem t = t.pmem

let crash ?faults t ~rng =
  if not t.config.crash_safe then
    invalid_arg "Zen_db.crash: requires a crash_safe configuration";
  (match faults with
  | None -> Pmem.crash t.pmem ~rng
  | Some model -> ignore (Pmem.crash_with_faults t.pmem ~rng ~model));
  t.pmem

(* Zen has no epoch phases or per-epoch reports to instrument; accept
   the sinks so backend-generic harness code never has to branch. *)
let set_observability ?tracer:_ ?metrics:_ ?profile:_ ?name:_ _t = ()
let stats_of t core = t.core_stats.(core)

let find_row t stats ~table ~key =
  match t.indexes.(table) with
  | Hash h -> HIdx.find h stats key
  | Ord o -> OIdx.find o stats key

let index_insert t stats ~table ~key row =
  match t.indexes.(table) with
  | Hash h -> HIdx.insert h stats key row
  | Ord o -> OIdx.insert o stats key row

let index_remove t stats ~table ~key =
  match t.indexes.(table) with
  | Hash h -> HIdx.remove h stats key
  | Ord o -> OIdx.remove o stats key

(* --- Hot-tuple cache (CLOCK eviction) --- *)

let cache_drop t (row : row) =
  if row.cache_slot >= 0 then begin
    t.cache_slots.(row.cache_slot) <- None;
    row.cache_slot <- -1;
    row.cached <- None
  end

let cache_insert t stats (row : row) data =
  let lines = Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length data) in
  Stats.dram_write stats ~lines ();
  if row.cache_slot >= 0 then row.cached <- Some data
  else begin
    let n = Array.length t.cache_slots in
    (match t.cache_slots.(t.cache_hand) with
    | Some victim ->
        victim.cached <- None;
        victim.cache_slot <- -1
    | None -> ());
    t.cache_slots.(t.cache_hand) <- Some row;
    row.cache_slot <- t.cache_hand;
    row.cached <- Some data;
    t.cache_hand <- (t.cache_hand + 1) mod n
  end

(* --- Commit path --- *)

let next_version t =
  t.version <- Int64.add t.version 1L;
  t.version

let commit_write t stats ~core ~table ~key data =
  let version = next_version t in
  let off = Zen_store.alloc t.store stats ~core in
  Zen_store.write_record t.store stats ~off ~key ~table ~version ~data;
  (match find_row t stats ~table ~key with
  | Some row ->
      Zen_store.free t.store ~core row.rec_off;
      row.rec_off <- off;
      cache_insert t stats row data
  | None ->
      let row = { key; table; rec_off = off; cached = None; cache_slot = -1 } in
      index_insert t stats ~table ~key row;
      cache_insert t stats row data)

let commit_delete t stats ~core ~table ~key =
  match find_row t stats ~table ~key with
  | None -> ()
  | Some row ->
      Zen_store.invalidate t.store stats ~off:row.rec_off;
      Zen_store.free t.store ~core row.rec_off;
      cache_drop t row;
      index_remove t stats ~table ~key

(* --- Read path --- *)

let read_row t stats (row : row) =
  match row.cached with
  | Some data ->
      Stats.dram_read stats
        ~lines:(Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length data))
        ();
      data
  | None ->
      let data = Zen_store.read_value t.store stats ~off:row.rec_off in
      cache_insert t stats row data;
      data

(* --- Transaction execution --- *)

type buffered = Bwrite of bytes | Bdelete

let exec_txn t ~core (txn : Txn.t) =
  let stats = stats_of t core in
  let buffer : (int * int64, buffered) Hashtbl.t = Hashtbl.create 8 in
  let notes = Hashtbl.create 4 in
  let buffer_read ~table ~key =
    match Hashtbl.find_opt buffer (table, key) with
    | Some (Bwrite d) -> Some (Some d)
    | Some Bdelete -> Some None
    | None -> None
  in
  let read ~table ~key =
    Stats.compute stats ();
    match buffer_read ~table ~key with
    | Some r -> r
    | None -> (
        match find_row t stats ~table ~key with
        | Some row -> Some (read_row t stats row)
        | None -> None)
  in
  let write ~table ~key data =
    Stats.compute stats ();
    Hashtbl.replace buffer (table, key) (Bwrite data)
  in
  let delete ~table ~key =
    Stats.compute stats ();
    Hashtbl.replace buffer (table, key) Bdelete
  in
  let with_ordered table f =
    match t.indexes.(table) with
    | Ord o -> f o
    | Hash _ -> invalid_arg "Zen_db: range operation on hash table"
  in
  let range_read ~table ~lo ~hi =
    with_ordered table (fun o ->
        List.rev
          (OIdx.fold_range o stats ~lo ~hi ~init:[] ~f:(fun acc key row ->
               match buffer_read ~table ~key with
               | Some (Some d) -> (key, d) :: acc
               | Some None -> acc
               | None -> (key, read_row t stats row) :: acc)))
  in
  let max_below ~table bound =
    with_ordered table (fun o ->
        Option.map (fun (k, row) -> (k, read_row t stats row)) (OIdx.max_below o stats bound))
  in
  let min_above ~table bound =
    with_ordered table (fun o ->
        Option.map (fun (k, row) -> (k, read_row t stats row)) (OIdx.min_above o stats bound))
  in
  let abort () = raise Txn.Aborted in
  let compute ~ops = Stats.compute stats ~ops () in
  let counter_next ~idx =
    let v = t.counters.(idx) in
    t.counters.(idx) <- Int64.add v 1L;
    v
  in
  let ctx =
    {
      Txn.Ctx.sid = 0L;
      core;
      read;
      write;
      delete;
      range_read;
      max_below;
      min_above;
      abort;
      compute;
      counter_next;
      notes;
    }
  in
  (* Apply declared insert data up-front (the body may overwrite it). *)
  let apply_inserts ops =
    List.iter
      (function
        | Txn.Insert { table; key; data = Some d } ->
            Hashtbl.replace buffer (table, key) (Bwrite d)
        | Txn.Insert _ | Txn.Update _ | Txn.Delete _ -> ())
      ops
  in
  apply_inserts txn.Txn.write_set;
  (match txn.Txn.insert_gen with Some gen -> apply_inserts (gen ctx) | None -> ());
  match txn.Txn.body ctx with
  | () ->
      (* Commit: one NVMM record per write, one fence for the txn. *)
      Hashtbl.iter
        (fun (table, key) buffered ->
          match buffered with
          | Bwrite data -> commit_write t stats ~core ~table ~key data
          | Bdelete -> commit_delete t stats ~core ~table ~key)
        buffer;
      Pmem.fence t.pmem stats;
      t.committed <- t.committed + 1;
      `Committed
  | exception Txn.Aborted ->
      t.aborted <- t.aborted + 1;
      `Aborted

let barrier t =
  let m = Array.fold_left (fun acc s -> Float.max acc (Stats.now s)) 0.0 t.core_stats in
  Array.iter (fun s -> Stats.set_now s m) t.core_stats

let exec_batch t txns =
  (* Zen commits (and fences) each transaction as it executes, so by
     the time the batch returns every outcome is already durable — the
     per-batch report is filled in directly. *)
  t.last_outcomes <- Array.mapi (fun i txn -> exec_txn t ~core:(i mod t.config.cores) txn) txns;
  barrier t

let last_batch_outcomes t = t.last_outcomes

let bulk_load t rows =
  let i = ref 0 in
  Seq.iter
    (fun (table, key, data) ->
      let core = !i mod t.config.cores in
      incr i;
      commit_write t (stats_of t core) ~core ~table ~key data)
    rows;
  Array.iter Stats.reset t.core_stats;
  t.committed <- 0;
  t.aborted <- 0

let counters_total t =
  Array.fold_left
    (fun acc s -> Stats.merge_counters acc (Stats.counters s))
    Stats.zero_counters t.core_stats

let committed_txns t = t.committed
let aborted_txns t = t.aborted

let total_time_ns t =
  Array.fold_left (fun acc s -> Float.max acc (Stats.now s)) 0.0 t.core_stats

let read_committed t ~table ~key =
  match find_row t t.scratch ~table ~key with
  | None -> None
  | Some row -> Some (Zen_store.read_value t.store t.scratch ~off:row.rec_off)

let iter_committed t ~table f =
  let visit key row = f key (Zen_store.read_value t.store t.scratch ~off:row.rec_off) in
  match t.indexes.(table) with Hash h -> HIdx.iter h visit | Ord o -> OIdx.iter o visit

let mem_report t =
  let index_bytes =
    Array.fold_left
      (fun acc idx ->
        acc + (match idx with Hash h -> HIdx.dram_bytes h | Ord o -> OIdx.dram_bytes o))
      0 t.indexes
  in
  let cache_bytes =
    Array.fold_left
      (fun acc s ->
        acc
        +
        match s with
        | Some r -> 32 + Bytes.length (Option.value r.cached ~default:Bytes.empty)
        | None -> 8)
      0 t.cache_slots
  in
  {
    Report.nvmm_rows = Zen_store.bumped_slots t.store * t.config.record_size;
    nvmm_values = 0;
    nvmm_log = 0;
    nvmm_freelists = 0;
    dram_index = index_bytes + Zen_store.dram_freelist_bytes t.store;
    dram_transient = 0;
    dram_cache = cache_bytes;
  }

type recovery_report = {
  scan1_ns : float;
  scan2_ns : float;
  total_ns : float;
  live_rows : int;
  scanned_slots : int;
}

let recover ~config ~tables ~pmem () =
  let _, per_core = build_layout config in
  let t = attach config tables pmem per_core in
  let stats = stats_of t 0 in
  let latest : (int * int64, int64 * int) Hashtbl.t = Hashtbl.create 1024 in
  let scanned = ref 0 in
  (* Pass 1: find the latest committed version of each key. Zen scans
     the whole arena — recovery cost scales with capacity. *)
  Zen_store.iter_slots t.store ~f:(fun ~off ->
      incr scanned;
      Pmem.charge_read pmem stats ~off ~len:Zen_store.header_bytes;
      let key, table, version, _len = Zen_store.peek t.store ~off in
      if version > 0L then
        match Hashtbl.find_opt latest (table, key) with
        | Some (v, _) when v >= version -> ()
        | Some _ | None -> Hashtbl.replace latest (table, key) (version, off));
  let t1 = Stats.now stats in
  (* Pass 2: rebuild the index and free everything else. *)
  let core = ref 0 in
  Zen_store.iter_slots t.store ~f:(fun ~off ->
      Pmem.charge_read pmem stats ~off ~len:Zen_store.header_bytes;
      let key, table, version, _len = Zen_store.peek t.store ~off in
      let live =
        version > 0L
        && match Hashtbl.find_opt latest (table, key) with
           | Some (_, o) -> o = off
           | None -> false
      in
      if live then
        index_insert t stats ~table ~key { key; table; rec_off = off; cached = None; cache_slot = -1 }
      else begin
        Zen_store.free t.store ~core:(!core mod config.cores) off;
        incr core
      end);
  (* Everything was claimed from the arenas: mark them fully bumped so
     fresh allocations come from the rebuilt free lists. *)
  Zen_store.set_fully_bumped t.store;
  let t2 = Stats.now stats in
  t.version <-
    Hashtbl.fold (fun _ (v, _) acc -> if v > acc then v else acc) latest 0L;
  barrier t;
  ( t,
    {
      scan1_ns = t1;
      scan2_ns = t2 -. t1;
      total_ns = t2;
      live_rows = Hashtbl.length latest;
      scanned_slots = !scanned;
    } )

(* ------------------------------------------------------------------ *)
(* Engine instance                                                     *)

module Engine :
  Nvcaracal.Engine_intf.S with type t = t and type config = config = struct
  type nonrec t = t
  type nonrec config = config

  let name = "zen"
  let create = create
  let bulk_load = bulk_load

  (* Zen commits every transaction as it executes: no epoch report, no
     deferrals. *)
  let run_batch t txns =
    exec_batch t txns;
    (None, [||])

  let read_committed = read_committed
  let iter_committed = iter_committed
  let last_batch_outcomes = last_batch_outcomes
  let committed_txns = committed_txns
  let aborted_txns = aborted_txns
  let total_time_ns = total_time_ns

  (* Zen's batch loop is single-domain: nothing ever runs wide, and no
     gate ever fires. *)
  let introspect t =
    {
      Nvcaracal.Engine_intf.wide_execs = 0;
      serial_reasons = [];
      state_digest =
        Nvcaracal.Engine_intf.digest_committed
          ~tables:(Array.to_list t.tables)
          ~iter:(fun ~table f -> iter_committed t ~table f);
    }

  let mem_report = mem_report
  let counters_total = counters_total
  let set_observability = set_observability
  let pmem = pmem
  let crash = crash

  (* Zen recovers from the record arenas alone; the input-log [rebuild]
     closure has nothing to deserialize. *)
  let recover ~config ~tables ~pmem ~rebuild:_ () =
    fst (recover ~config ~tables ~pmem ())
end
