(** Zen: a log-free NVMM OLTP engine, the state-of-the-art comparator
    of paper section 6.3 (after Liu et al., VLDB 2021).

    Zen persists {e every} committed update as a fresh NVMM record with
    per-record commit metadata; there is no input log, no checkpoint
    phase and no epoch batching. A bounded DRAM cache of hot tuples
    absorbs repeated reads. The contrasts the paper measures:

    - Zen writes every update to NVMM, regardless of contention, while
      NVCaracal writes one persistent version per row per epoch — so
      NVCaracal pulls ahead as contention rises;
    - Zen needs no logging, so it wins at low contention where almost
      every NVCaracal update is final anyway and the log is pure
      overhead;
    - Zen's recovery scans the record arenas more than once and scales
      with capacity, while NVCaracal scans rows once and replays one
      bounded epoch.

    Transactions use the same {!Nvcaracal.Txn} descriptors as the
    deterministic engine, so identical workload generators drive both.
    Zen executes them serially per batch (it is not deterministic; the
    batch is just a driver convenience). Dynamic write sets are not
    supported — the paper likewise omits TPC-C for Zen. *)

type config = {
  cores : int;
  record_size : int;  (** Table 4: 1024 for YCSB, 32 for SmallBank *)
  cache_entries : int;
  slots_per_core : int;
  crash_safe : bool;
      (** Allocate the arena in {!Nv_nvmm.Pmem.Crash_safe} mode so
          {!crash} can tear it to a legal crash image. Off by default:
          persistence tracking costs host time the throughput
          experiments don't need. *)
  spec : Nv_nvmm.Memspec.t;
}

val default_config : config

type t

val create : config:config -> tables:Nvcaracal.Table.t list -> unit -> t
val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit

val exec_batch : t -> Nvcaracal.Txn.t array -> unit
(** Execute transactions one by one, committing each. *)

val last_batch_outcomes : t -> [ `Committed | `Aborted | `Deferred ] array
(** Per-transaction outcome of the last [exec_batch], in batch order.
    Zen commits per transaction and never defers, so entries are
    [`Committed] or [`Aborted] only. *)

val counters_total : t -> Nv_nvmm.Stats.counters
(** Aggregate access counters across all cores (diagnostics). *)

val committed_txns : t -> int
val aborted_txns : t -> int
val total_time_ns : t -> float

val read_committed : t -> table:int -> key:int64 -> bytes option
val iter_committed : t -> table:int -> (int64 -> bytes -> unit) -> unit

val mem_report : t -> Nvcaracal.Report.mem_report

type recovery_report = {
  scan1_ns : float;
  scan2_ns : float;
  total_ns : float;
  live_rows : int;
  scanned_slots : int;
}

val recover :
  config:config -> tables:Nvcaracal.Table.t list -> pmem:Nv_nvmm.Pmem.t -> unit ->
  t * recovery_report
(** Rebuild from the record arenas alone: pass 1 finds the latest
    committed version of every key, pass 2 rebuilds the index and the
    DRAM free lists. *)

val pmem : t -> Nv_nvmm.Pmem.t

val crash :
  ?faults:Nv_nvmm.Pmem.fault_model -> t -> rng:Nv_util.Rng.t -> Nv_nvmm.Pmem.t
(** Tear the arena to a crash image and return it; the engine must not
    be used afterwards. Requires [config.crash_safe].
    @raise Invalid_argument otherwise. *)

val set_observability :
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  ?profile:Nv_obs.Profile.t ->
  ?name:string ->
  t ->
  unit
(** Accepted and ignored: Zen has no epoch phases or per-epoch reports
    to instrument. Exists so backend-generic harness code can attach
    sinks unconditionally. *)

(** Zen behind the shared {!Nvcaracal.Engine_intf.S} seam: [run_batch]
    executes the batch serially with per-commit durability and returns
    neither an epoch report nor deferrals; [recover] rebuilds from the
    record arenas and ignores [rebuild]. *)
module Engine : Nvcaracal.Engine_intf.S with type t = t and type config = config
