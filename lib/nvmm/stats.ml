type counters = {
  dram_reads : int;
  dram_writes : int;
  nvmm_block_reads : int;
  nvmm_block_writes : int;
  nvmm_seq_bytes : int;
  flushes : int;
  fences : int;
  compute_ops : int;
  media_faults : int;
}

type t = {
  spec : Memspec.t;
  mutable now : float;
  mutable dram_reads : int;
  mutable dram_writes : int;
  mutable nvmm_block_reads : int;
  mutable nvmm_block_writes : int;
  mutable nvmm_seq_bytes : int;
  mutable flushes : int;
  mutable fences : int;
  mutable compute_ops : int;
  mutable media_faults : int;
}

let create spec =
  {
    spec;
    now = 0.0;
    dram_reads = 0;
    dram_writes = 0;
    nvmm_block_reads = 0;
    nvmm_block_writes = 0;
    nvmm_seq_bytes = 0;
    flushes = 0;
    fences = 0;
    compute_ops = 0;
    media_faults = 0;
  }

let spec t = t.spec
let now t = t.now
let set_now t v = if v > t.now then t.now <- v
let advance t ns = t.now <- t.now +. ns

let counters t =
  {
    dram_reads = t.dram_reads;
    dram_writes = t.dram_writes;
    nvmm_block_reads = t.nvmm_block_reads;
    nvmm_block_writes = t.nvmm_block_writes;
    nvmm_seq_bytes = t.nvmm_seq_bytes;
    flushes = t.flushes;
    fences = t.fences;
    compute_ops = t.compute_ops;
    media_faults = t.media_faults;
  }

let dram_read t ?(lines = 1) () =
  t.dram_reads <- t.dram_reads + lines;
  t.now <- t.now +. (float_of_int lines *. t.spec.Memspec.dram_read_ns)

let dram_write t ?(lines = 1) () =
  t.dram_writes <- t.dram_writes + lines;
  t.now <- t.now +. (float_of_int lines *. t.spec.Memspec.dram_write_ns)

let nvmm_read t ~off ~len =
  let blocks = Memspec.blocks_touched t.spec ~off ~len in
  t.nvmm_block_reads <- t.nvmm_block_reads + blocks;
  t.now <- t.now +. (float_of_int blocks *. t.spec.Memspec.nvmm_read_block_ns)

let nvmm_write t ~off ~len =
  let blocks = Memspec.blocks_touched t.spec ~off ~len in
  t.nvmm_block_writes <- t.nvmm_block_writes + blocks;
  t.now <- t.now +. (float_of_int blocks *. t.spec.Memspec.nvmm_write_block_ns)

let nvmm_read_blocks t blocks =
  t.nvmm_block_reads <- t.nvmm_block_reads + blocks;
  t.now <- t.now +. (float_of_int blocks *. t.spec.Memspec.nvmm_read_block_ns)

let nvmm_write_blocks t blocks =
  t.nvmm_block_writes <- t.nvmm_block_writes + blocks;
  t.now <- t.now +. (float_of_int blocks *. t.spec.Memspec.nvmm_write_block_ns)

let nvmm_read_lines t lines =
  t.nvmm_block_reads <- t.nvmm_block_reads + max 1 (lines / 4);
  t.now <- t.now +. (float_of_int lines *. t.spec.Memspec.nvmm_read_block_ns /. 4.0)

let nvmm_write_lines t lines =
  t.nvmm_block_writes <- t.nvmm_block_writes + max 1 (lines / 4);
  t.now <- t.now +. (float_of_int lines *. t.spec.Memspec.nvmm_write_block_ns /. 4.0)

let nvmm_seq_write t ~bytes =
  t.nvmm_seq_bytes <- t.nvmm_seq_bytes + bytes;
  t.now <- t.now +. (float_of_int bytes *. t.spec.Memspec.nvmm_seq_write_ns_per_byte)

(* A detected media fault (dead-line read) is a counter only: detection
   happens inside the media controller, so no extra latency is modelled
   and fault-free runs are numerically unaffected. *)
let media_fault t = t.media_faults <- t.media_faults + 1

let flush t =
  t.flushes <- t.flushes + 1;
  t.now <- t.now +. t.spec.Memspec.flush_ns

let fence t =
  t.fences <- t.fences + 1;
  t.now <- t.now +. t.spec.Memspec.fence_ns

let compute t ?(ops = 1) () =
  t.compute_ops <- t.compute_ops + ops;
  t.now <- t.now +. (float_of_int ops *. t.spec.Memspec.compute_op_ns)

let zero_counters =
  {
    dram_reads = 0;
    dram_writes = 0;
    nvmm_block_reads = 0;
    nvmm_block_writes = 0;
    nvmm_seq_bytes = 0;
    flushes = 0;
    fences = 0;
    compute_ops = 0;
    media_faults = 0;
  }

let merge_counters (a : counters) (b : counters) =
  {
    dram_reads = a.dram_reads + b.dram_reads;
    dram_writes = a.dram_writes + b.dram_writes;
    nvmm_block_reads = a.nvmm_block_reads + b.nvmm_block_reads;
    nvmm_block_writes = a.nvmm_block_writes + b.nvmm_block_writes;
    nvmm_seq_bytes = a.nvmm_seq_bytes + b.nvmm_seq_bytes;
    flushes = a.flushes + b.flushes;
    fences = a.fences + b.fences;
    compute_ops = a.compute_ops + b.compute_ops;
    media_faults = a.media_faults + b.media_faults;
  }

let pp_counters ppf (c : counters) =
  Format.fprintf ppf
    "dram r/w %d/%d  nvmm-blk r/w %d/%d  log %dB  flush %d  fence %d  ops %d" c.dram_reads
    c.dram_writes c.nvmm_block_reads c.nvmm_block_writes c.nvmm_seq_bytes c.flushes c.fences
    c.compute_ops;
  if c.media_faults > 0 then Format.fprintf ppf "  media-faults %d" c.media_faults

let reset t =
  t.now <- 0.0;
  t.dram_reads <- 0;
  t.dram_writes <- 0;
  t.nvmm_block_reads <- 0;
  t.nvmm_block_writes <- 0;
  t.nvmm_seq_bytes <- 0;
  t.flushes <- 0;
  t.fences <- 0;
  t.compute_ops <- 0;
  t.media_faults <- 0
