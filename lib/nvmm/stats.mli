(** Per-core access accounting and the simulated clock.

    Every memory operation performed on behalf of a simulated core
    charges that core's [Stats.t]: a counter bump plus simulated
    nanoseconds from the {!Memspec} cost model. The discrete-event
    scheduler reads [now] to order execution; the harness merges
    per-core stats for reports. *)

type t

type counters = {
  dram_reads : int;
  dram_writes : int;
  nvmm_block_reads : int;
  nvmm_block_writes : int;
  nvmm_seq_bytes : int;
  flushes : int;
  fences : int;
  compute_ops : int;
  media_faults : int;  (** detected dead-line reads (fault injection only) *)
}

val create : Memspec.t -> t
val spec : t -> Memspec.t

val now : t -> float
(** Current simulated time of this core, in nanoseconds. *)

val set_now : t -> float -> unit
(** Move this core's clock forward (scheduler use: waking a blocked core
    at the writer's timestamp). Never moves the clock backwards. *)

val advance : t -> float -> unit
(** Charge raw nanoseconds without touching counters. *)

val counters : t -> counters

(** Charging operations — each bumps a counter and advances the clock. *)

val dram_read : t -> ?lines:int -> unit -> unit
val dram_write : t -> ?lines:int -> unit -> unit

val nvmm_read : t -> off:int -> len:int -> unit
(** Charge a random NVMM read touching the given byte range (cost is per
    256 B block overlapped). *)

val nvmm_write : t -> off:int -> len:int -> unit

val nvmm_read_blocks : t -> int -> unit
(** Charge a pre-computed number of NVMM block reads (used when a
    composite structure coalesces several touched ranges into a block
    set, e.g. a row header plus an inline value in the same block). *)

val nvmm_write_blocks : t -> int -> unit

val nvmm_read_lines : t -> int -> unit
(** Charge NVMM traffic at 64-byte-line granularity (a quarter of a
    block per line): models CPU-cache write-combining and buffering for
    small multi-version updates, used by the all-NVMM and hybrid
    baselines. *)

val nvmm_write_lines : t -> int -> unit

val nvmm_seq_write : t -> bytes:int -> unit
(** Charge a streaming NVMM write of [bytes] (input-log append rate). *)

val flush : t -> unit
val fence : t -> unit
val compute : t -> ?ops:int -> unit -> unit

val media_fault : t -> unit
(** Record a detected media fault (a charged read touched a dead line).
    Counter only — detection happens in the media controller, so no
    simulated latency is added. *)

val merge_counters : counters -> counters -> counters
val zero_counters : counters
val pp_counters : Format.formatter -> counters -> unit

val reset : t -> unit
(** Zero all counters and the clock (e.g. between measurement windows). *)
