(** Simulated byte-addressable non-volatile main memory.

    The region behaves like Optane in app-direct mode as seen by
    software: ordinary loads and stores hit a volatile (CPU-cached)
    view; a store is guaranteed to survive a crash only once its cache
    line has been written back ([flush], modelling [clwb]) and a fence
    ([fence], modelling [sfence]) has completed. A crash discards every
    store that was not persisted — or, at the simulator's discretion,
    keeps an arbitrary prefix-consistent subset of them, exactly the
    freedom real hardware has (cache lines may be evicted at any time,
    and stores to one line become visible in program order).

    Two modes:
    - [Fast]: a single byte array plus accounting; [crash] is not
      available. Used for throughput benchmarks.
    - [Crash_safe]: full persistence tracking; [crash] replaces the
      volatile view with a legal crash image chosen by an RNG or an
      adversarial callback. Used by recovery tests and experiments.

    Accessor functions do NOT charge simulated time — charging is
    explicit via [charge_read] / [charge_write] / [charge_seq_write] so
    that composite structures (a 256 B persistent row, a 1 KiB value)
    charge once per logical access, matching how CPU caches coalesce
    same-line traffic. Higher layers ({!Nv_storage}) encapsulate the
    pairing so engine code cannot forget it. *)

type mode = Fast | Crash_safe

type t

val create : ?mode:mode -> size:int -> unit -> t
(** Fresh zeroed region of [size] bytes. Default mode is [Fast]. *)

val mode : t -> mode
val size : t -> int

val set_checks : bool -> unit
(** Toggle the per-call alignment/bounds precondition checks on the
    typed accessors (process-wide; default on, or off when
    [NVC_PMEM_CHECKS=0] is set). With checks off, a bad access still
    fails safely on the underlying [Bytes] bounds check — what is lost
    is only the precise range diagnostic, so throughput runs may turn
    them off. *)

val checks_enabled : unit -> bool

(** {1 Typed volatile-view accessors}

    Offsets are absolute byte offsets into the region. Multi-byte
    accessors use little-endian layout and require natural alignment
    (asserted), which guarantees single-store atomicity as on x86. *)

val get_i64 : t -> int -> int64
val set_i64 : t -> int -> int64 -> unit
val get_i32 : t -> int -> int32
val set_i32 : t -> int -> int32 -> unit
val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val read_bytes : t -> off:int -> len:int -> bytes
val write_bytes : t -> off:int -> bytes -> unit
val blit_to : t -> src:bytes -> src_off:int -> dst_off:int -> len:int -> unit
val blit_from : t -> src_off:int -> dst:bytes -> dst_off:int -> len:int -> unit
val fill : t -> off:int -> len:int -> char -> unit

(** {1 Persistence} *)

val flush : ?charge:bool -> t -> Stats.t -> off:int -> len:int -> unit
(** Write back all cache lines overlapping the range ([clwb] loop).
    Content captured now persists at the next [fence]. [~charge:false]
    skips the per-line {!Stats.flush} charge — used by layouts whose
    physical footprint carries checksum metadata that real hardware
    (the media controller) would write for free, so simulated costs
    stay those of the logical layout. *)

val fence : t -> Stats.t -> unit
(** Store fence: all previously flushed lines become persistent. *)

val persist : t -> Stats.t -> off:int -> len:int -> unit
(** [flush] + [fence]. *)

(** {1 Striped dirty tracking}

    Wide (multi-domain) execution phases bracket their fan-out with
    [begin_stripes]/[end_stripes]; each participating domain announces
    its stripe with [set_stripe] before its first store. Newly dirtied
    line numbers then accumulate per stripe — instead of on the shared
    dirty list — and are unioned at the join, the NVTraverse-style
    "persist bookkeeping only at quiescence points" trick. The caller
    guarantees stripes store to disjoint cache lines; [fence], [crash]
    and dirty-line inspection must not run while striping is active.
    All three are no-ops on a [Fast] region. *)

val begin_stripes : t -> n:int -> unit
val set_stripe : t -> int -> unit
val end_stripes : t -> unit

(** {1 Cost charging} *)

val charge_read : t -> Stats.t -> off:int -> len:int -> unit
val charge_write : t -> Stats.t -> off:int -> len:int -> unit
val charge_seq_write : t -> Stats.t -> bytes:int -> unit

(** {1 Crash simulation — [Crash_safe] mode only} *)

val crash : t -> rng:Nv_util.Rng.t -> unit
(** Replace the volatile view with a random legal crash image: for every
    line, independently choose among its last persisted content and each
    prefix-consistent store snapshot. After [crash] the region is clean
    (volatile = persistent = chosen image), as if remapped at reboot. *)

val crash_with : t -> choose:(line:int -> options:int -> int) -> unit
(** Adversarial crash: for each dirty line (identified by line index),
    [choose ~line ~options] picks which of the [options] states survives;
    [0] is the last persisted content, [options - 1] the newest store. *)

val crash_all_persisted : t -> unit
(** Crash in which every outstanding store happens to have reached the
    media (the weakest adversary). *)

val dirty_line_count : t -> int
(** Number of lines with unpersisted stores (testing aid). *)

val unpersisted_ranges : t -> (int * int) list
(** Sorted [(line_offset, line_size)] list of dirty lines (testing aid). *)

(** {1 Media-fault injection — [Crash_safe] mode only}

    Everything above produces only {e legal} crash images. The entry
    points below inject the failure modes real NVMM adds on top of
    fail-stop — torn multi-line persists, bit-rot in cold media, dead
    lines — which the checksummed layout in [Nv_storage] is designed to
    detect. Fault state is empty unless one of these was called, so
    fault-free runs are byte-for-byte unaffected. See docs/FAULTS.md. *)

type fault_model = {
  torn_frac : float;
      (** probability that a dirty line tears (each aligned 8-byte word
          independently picks one of the line's store states) instead of
          surfacing a legal prefix state *)
  rot_lines : int;  (** number of random cold lines to hit with bit-rot *)
  rot_max_bits : int;  (** 1..n bits flipped per rotted line *)
  dead : int;  (** number of lines that die (reads fault, content all-ones) *)
}

val no_faults : fault_model

type fault_report = {
  torn_lines : int;
  rotted_lines : int;
  flipped_bits : int;
  dead_lines : int;
}

val crash_with_faults : t -> rng:Nv_util.Rng.t -> model:fault_model -> fault_report
(** Crash like {!crash}, except each dirty line tears with probability
    [torn_frac]; then inject bit-rot and dead lines per [model] into the
    resulting (cold) image. Returns the cumulative {!faults} report. *)

val inject_bit_rot : t -> rng:Nv_util.Rng.t -> lines:int -> max_bits:int -> int * int
(** Flip 1..[max_bits] random bits in up to [lines] random clean lines;
    dirty lines are left alone (rot takes time — it hits cold media).
    Returns [(lines_hit, bits_flipped)]. *)

val kill_lines : t -> rng:Nv_util.Rng.t -> n:int -> int
(** Mark up to [n] random lines dead: content reads back all-ones (a
    poisoned ECC block) and any charged read overlapping them records a
    media fault in {!Nv_nvmm.Stats}. Returns the number actually
    killed (already-dead picks don't count twice). *)

val corrupt_range : t -> off:int -> len:int -> mask:int -> unit
(** Xor every byte of the range with [mask] (deterministic testing aid;
    bypasses persistence tracking, meaningful on clean lines only). *)

val faults : t -> fault_report
(** Cumulative faults injected into this region. *)

val faults_injected : t -> bool

val is_dead_line : t -> off:int -> bool
(** Whether the line containing [off] has been killed. *)

val dirty_at_crash : t -> off:int -> len:int -> bool
(** Whether any line of the range was dirty (unflushed stores in
    flight) at a past {!crash}. Accumulated across crashes, so a crash
    in the middle of recovery keeps the original crash's evidence.
    Recovery's scrub uses this to tell a stale version whose value
    bytes were legitimately being overwritten by the crashed epoch —
    lines tear independently, so a torn-back row header can still
    reference them — apart from bit-rot in cold data. False before the
    first crash. *)
