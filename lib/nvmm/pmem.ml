type mode = Fast | Crash_safe

let line_size = 64

(* Per-line persistence bookkeeping, present only while the line has
   unpersisted state. [persisted] is the content that survives a crash
   with certainty. [snapshots] records the line content after each store
   since [persisted], oldest first, so a crash may legally surface any
   prefix of the store sequence. [queued] is the content captured by the
   most recent clwb (plus how many snapshots existed at capture time),
   which becomes [persisted] at the next fence. *)
type line_state = {
  mutable persisted : bytes;
  mutable snapshots : bytes list; (* oldest first *)
  mutable queued : (bytes * int) option;
}

(* Media-fault bookkeeping. All fields stay at their zero state unless a
   fault-injection entry point was called, so fault-free runs (including
   every benchmark) take exactly the original code paths. *)
type fault_report = {
  torn_lines : int;
  rotted_lines : int;
  flipped_bits : int;
  dead_lines : int;
}

type fault_model = {
  torn_frac : float;
  rot_lines : int;
  rot_max_bits : int;
  dead : int;
}

let no_faults = { torn_frac = 0.0; rot_lines = 0; rot_max_bits = 0; dead = 0 }

(* Dirty-line tracking is direct-mapped: a preallocated per-line state
   array (indexed by line number; [Some] iff the line has unpersisted
   stores) plus an unordered list of the dirty line numbers so [fence]
   and [crash] never scan the whole region. The array replaces a
   hashtable keyed by line index — the per-store membership probe is the
   hottest operation in Crash_safe mode, and an array load beats
   hashing. Fast mode allocates no tracking at all. *)
type t = {
  mode : mode;
  data : bytes; (* volatile view *)
  size : int;
  line_states : line_state option array; (* per line; empty in Fast mode *)
  mutable dirty_lines : int list; (* lines with [Some] state, unordered *)
  mutable n_dirty : int;
  mutable stripe_dirty : int list array;
      (* striped execution ([begin_stripes] .. [end_stripes]): newly
         dirtied line numbers accumulate per stripe instead of on the
         shared [dirty_lines] list, and are unioned at the join. Empty
         ([[||]]) whenever striping is off. *)
  dead_lines : (int, unit) Hashtbl.t; (* lines whose reads fault *)
  crash_dirty : (int, unit) Hashtbl.t; (* lines dirty at any past crash *)
  mutable faults : fault_report;
}

let zero_faults = { torn_lines = 0; rotted_lines = 0; flipped_bits = 0; dead_lines = 0 }

(* Alignment/bounds precondition checks on every typed accessor. The
   byte layer below stays memory-safe without them (OCaml [Bytes]
   bounds-checks its own accesses), so the engine may turn them off for
   throughput runs; keep them on when debugging layout code for the
   precise range in the error. *)
let checks =
  ref (match Sys.getenv_opt "NVC_PMEM_CHECKS" with Some ("0" | "false") -> false | _ -> true)

let set_checks b = checks := b
let checks_enabled () = !checks

let create ?(mode = Fast) ~size () =
  {
    mode;
    data = Bytes.make size '\000';
    size;
    line_states =
      (if mode = Crash_safe then Array.make ((size + line_size - 1) / line_size) None
       else [||]);
    dirty_lines = [];
    n_dirty = 0;
    stripe_dirty = [||];
    dead_lines = Hashtbl.create 4;
    crash_dirty = Hashtbl.create 64;
    faults = zero_faults;
  }

let mode t = t.mode
let size t = t.size

let copy_line t li =
  let b = Bytes.create line_size in
  Bytes.blit t.data (li * line_size) b 0 line_size;
  b

(* Record that bytes [off, off+len) were just stored. Must be called
   after the volatile view was updated. In Fast mode this is free. *)
let note_store t ~off ~len =
  if t.mode = Crash_safe && len > 0 then begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    for li = first to last do
      (* [pre_store] has already captured the pre-store baseline, so the
         state must exist; append the after-store snapshot. *)
      match t.line_states.(li) with
      | Some st -> st.snapshots <- st.snapshots @ [ copy_line t li ]
      | None -> assert false
    done
  end

(* Stripe identity of the current domain while striping is active. A
   plain domain-local: each pool task announces its stripe once via
   [set_stripe] before touching the region. *)
let stripe_key = Domain.DLS.new_key (fun () -> 0)

(* Capture the pre-store persisted baseline for lines about to be
   stored for the first time since they were last clean. Must be called
   BEFORE mutating the volatile view.

   During striped execution the newly-dirty line number goes to the
   calling stripe's private list (and [n_dirty] is deferred to
   [end_stripes]), so concurrent stripes never contend on the shared
   list. Distinct stripes touch disjoint line sets — that is the
   caller's eligibility contract — so [line_states] element writes are
   race-free, and per-line state mutation ([note_store]/[flush]) stays
   confined to the one stripe that owns the line. *)
let pre_store t ~off ~len =
  if t.mode = Crash_safe && len > 0 then begin
    let first = off / line_size and last = (off + len - 1) / line_size in
    for li = first to last do
      match t.line_states.(li) with
      | Some _ -> ()
      | None ->
          t.line_states.(li) <-
            Some { persisted = copy_line t li; snapshots = []; queued = None };
          if Array.length t.stripe_dirty = 0 then begin
            t.dirty_lines <- li :: t.dirty_lines;
            t.n_dirty <- t.n_dirty + 1
          end
          else begin
            let s = Domain.DLS.get stripe_key in
            t.stripe_dirty.(s) <- li :: t.stripe_dirty.(s)
          end
    done
  end

(* Striped dirty tracking: NVTraverse-style quiescence — per-stripe
   dirty sets during a wide phase, unioned at the join barrier. Only
   meaningful in Crash_safe mode; a Fast region makes all three no-ops.
   [fence]/[crash]/inspection must not run between [begin_stripes] and
   [end_stripes] (they would miss the striped lines). The merged list
   order differs from serial execution's, which is unobservable: every
   consumer either sorts ([sorted_dirty], [crash], [unpersisted_ranges])
   or is per-line commutative ([fence]). *)
let begin_stripes t ~n =
  if t.mode = Crash_safe then t.stripe_dirty <- Array.make (max 1 n) []

let set_stripe t s = if t.mode = Crash_safe then Domain.DLS.set stripe_key s

let end_stripes t =
  if Array.length t.stripe_dirty > 0 then begin
    Array.iter
      (fun l ->
        t.dirty_lines <- List.rev_append l t.dirty_lines;
        t.n_dirty <- t.n_dirty + List.length l)
      t.stripe_dirty;
    t.stripe_dirty <- [||]
  end

let check_bounds t off len =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg (Printf.sprintf "Pmem: range [%d, %d) out of bounds (size %d)" off (off + len) len)

let get_i64 t off =
  if !checks then begin
    assert (off land 7 = 0);
    check_bounds t off 8
  end;
  Bytes.get_int64_le t.data off

let set_i64 t off v =
  if !checks then begin
    assert (off land 7 = 0);
    check_bounds t off 8
  end;
  pre_store t ~off ~len:8;
  Bytes.set_int64_le t.data off v;
  note_store t ~off ~len:8

let get_i32 t off =
  if !checks then begin
    assert (off land 3 = 0);
    check_bounds t off 4
  end;
  Bytes.get_int32_le t.data off

let set_i32 t off v =
  if !checks then begin
    assert (off land 3 = 0);
    check_bounds t off 4
  end;
  pre_store t ~off ~len:4;
  Bytes.set_int32_le t.data off v;
  note_store t ~off ~len:4

let get_u8 t off =
  if !checks then check_bounds t off 1;
  Char.code (Bytes.get t.data off)

let set_u8 t off v =
  if !checks then check_bounds t off 1;
  pre_store t ~off ~len:1;
  Bytes.set t.data off (Char.chr (v land 0xFF));
  note_store t ~off ~len:1

let read_bytes t ~off ~len =
  if !checks then check_bounds t off len;
  Bytes.sub t.data off len

let blit_to t ~src ~src_off ~dst_off ~len =
  if !checks then check_bounds t dst_off len;
  pre_store t ~off:dst_off ~len;
  Bytes.blit src src_off t.data dst_off len;
  note_store t ~off:dst_off ~len

let write_bytes t ~off b = blit_to t ~src:b ~src_off:0 ~dst_off:off ~len:(Bytes.length b)

let blit_from t ~src_off ~dst ~dst_off ~len =
  if !checks then check_bounds t src_off len;
  Bytes.blit t.data src_off dst dst_off len

let fill t ~off ~len c =
  if !checks then check_bounds t off len;
  pre_store t ~off ~len;
  Bytes.fill t.data off len c;
  note_store t ~off ~len

let flush ?(charge = true) t stats ~off ~len =
  if len > 0 then begin
    if !checks then check_bounds t off len;
    let first = off / line_size and last = (off + len - 1) / line_size in
    for li = first to last do
      if charge then Stats.flush stats;
      if t.mode = Crash_safe then
        match t.line_states.(li) with
        | None -> () (* clean line: clwb is a no-op *)
        | Some st -> st.queued <- Some (copy_line t li, List.length st.snapshots)
    done
  end

let fence t stats =
  Stats.fence stats;
  if t.mode = Crash_safe then begin
    let still = ref [] and n = ref 0 in
    List.iter
      (fun li ->
        match t.line_states.(li) with
        | None -> ()
        | Some st ->
            (match st.queued with
            | None ->
                still := li :: !still;
                incr n
            | Some (content, n_at_capture) ->
                st.persisted <- content;
                st.queued <- None;
                (* Drop snapshots that predate the captured content: they
                   can no longer be crash states because something newer
                   is guaranteed durable. *)
                let total = List.length st.snapshots in
                let keep = total - n_at_capture in
                st.snapshots <-
                  (if keep <= 0 then []
                   else List.filteri (fun i _ -> i >= n_at_capture) st.snapshots);
                if st.snapshots = [] && Bytes.equal st.persisted (copy_line t li) then
                  t.line_states.(li) <- None
                else begin
                  still := li :: !still;
                  incr n
                end))
      t.dirty_lines;
    t.dirty_lines <- !still;
    t.n_dirty <- !n
  end

let persist t stats ~off ~len =
  flush t stats ~off ~len;
  fence t stats

let charge_read t stats ~off ~len =
  (if len > 0 && Hashtbl.length t.dead_lines > 0 then
     let first = off / line_size and last = (off + len - 1) / line_size in
     try
       for li = first to last do
         if Hashtbl.mem t.dead_lines li then begin
           Stats.media_fault stats;
           raise Exit
         end
       done
     with Exit -> ());
  Stats.nvmm_read stats ~off ~len
let charge_write _t stats ~off ~len = Stats.nvmm_write stats ~off ~len
let charge_seq_write _t stats ~bytes = Stats.nvmm_seq_write stats ~bytes

let apply_crash_choice t li st idx =
  let content =
    if idx = 0 then st.persisted
    else List.nth st.snapshots (idx - 1)
  in
  Bytes.blit content 0 t.data (li * line_size) line_size

(* Remember which lines were in flight when the machine died —
   accumulated across crashes so a crash during recovery keeps the
   evidence of the original one. Recovery's scrub consults this to tell
   legitimate epoch turnover (a stale version whose value bytes were
   being overwritten) apart from media damage to cold data. *)
let finish_crash t =
  List.iter
    (fun li ->
      Hashtbl.replace t.crash_dirty li ();
      t.line_states.(li) <- None)
    t.dirty_lines;
  t.dirty_lines <- [];
  t.n_dirty <- 0

(* Dirty line numbers in ascending order, with their states. *)
let sorted_dirty t =
  List.map
    (fun li -> (li, Option.get t.line_states.(li)))
    (List.sort compare t.dirty_lines)

let require_crash_safe t =
  if t.mode <> Crash_safe then invalid_arg "Pmem.crash: region is in Fast mode"

let crash_with t ~choose =
  require_crash_safe t;
  (* Iterate in sorted line order so the callback sees a deterministic
     sequence regardless of store order. *)
  List.iter
    (fun (li, st) ->
      let options = 1 + List.length st.snapshots in
      let idx = choose ~line:li ~options in
      assert (idx >= 0 && idx < options);
      apply_crash_choice t li st idx)
    (sorted_dirty t);
  finish_crash t

let crash t ~rng = crash_with t ~choose:(fun ~line:_ ~options -> Nv_util.Rng.int rng options)

let crash_all_persisted t = crash_with t ~choose:(fun ~line:_ ~options -> options - 1)

(* ------------------------------------------------------------------ *)
(* Media-fault injection.

   These entry points produce *illegal* crash images — states the
   prefix-consistency contract above can never yield — modelling torn
   multi-line persists, bit-rot in cold media, and dead lines. The
   checksummed layout in {!Nv_storage} exists to detect exactly these
   states; see docs/FAULTS.md for the taxonomy. *)

(* Compose a torn line: each naturally-aligned 8-byte word independently
   picks one of the line's states (persisted baseline or any store
   snapshot). Word granularity respects the 8-byte power-fail store
   atomicity of real hardware, so single-word structures survive whole
   while anything larger can surface impossible mixes. *)
let torn_mix t rng li st =
  let states = Array.of_list (st.persisted :: st.snapshots) in
  let line = Bytes.create line_size in
  for w = 0 to (line_size / 8) - 1 do
    let src = states.(Nv_util.Rng.int rng (Array.length states)) in
    Bytes.blit src (w * 8) line (w * 8) 8
  done;
  Bytes.blit line 0 t.data (li * line_size) line_size

let flip_bit t ~bit_off =
  let off = bit_off / 8 in
  let mask = 1 lsl (bit_off mod 8) in
  Bytes.set t.data off (Char.chr (Char.code (Bytes.get t.data off) lxor mask))

(* Flip random bits in up to [lines] randomly chosen *clean* (persisted)
   lines. Returns (lines hit, bits flipped). *)
let inject_bit_rot t ~rng ~lines ~max_bits =
  let n_lines = t.size / line_size in
  let hit = ref 0 and flipped = ref 0 in
  for _ = 1 to lines do
    let li = Nv_util.Rng.int rng n_lines in
    if t.mode <> Crash_safe || t.line_states.(li) = None then begin
      incr hit;
      let bits = 1 + Nv_util.Rng.int rng (max 1 max_bits) in
      for _ = 1 to bits do
        flip_bit t ~bit_off:((li * line_size * 8) + Nv_util.Rng.int rng (line_size * 8));
        incr flipped
      done
    end
  done;
  t.faults <-
    {
      t.faults with
      rotted_lines = t.faults.rotted_lines + !hit;
      flipped_bits = t.faults.flipped_bits + !flipped;
    };
  (!hit, !flipped)

(* Mark [n] random lines dead: their content reads back as all-ones (a
   poisoned ECC block) and any charged read overlapping them records a
   media fault in {!Stats}. *)
let kill_lines t ~rng ~n =
  let n_lines = t.size / line_size in
  let killed = ref 0 in
  for _ = 1 to n do
    let li = Nv_util.Rng.int rng n_lines in
    if not (Hashtbl.mem t.dead_lines li) then begin
      Hashtbl.add t.dead_lines li ();
      Bytes.fill t.data (li * line_size) line_size '\xFF';
      incr killed
    end
  done;
  t.faults <- { t.faults with dead_lines = t.faults.dead_lines + !killed };
  !killed

let crash_with_faults t ~rng ~model =
  require_crash_safe t;
  let torn = ref 0 in
  List.iter
    (fun (li, st) ->
      let options = 1 + List.length st.snapshots in
      if options > 1 && Nv_util.Rng.float rng < model.torn_frac then begin
        incr torn;
        torn_mix t rng li st
      end
      else apply_crash_choice t li st (Nv_util.Rng.int rng options))
    (sorted_dirty t);
  finish_crash t;
  t.faults <- { t.faults with torn_lines = t.faults.torn_lines + !torn };
  if model.rot_lines > 0 then
    ignore (inject_bit_rot t ~rng ~lines:model.rot_lines ~max_bits:model.rot_max_bits);
  if model.dead > 0 then ignore (kill_lines t ~rng ~n:model.dead);
  t.faults

(* Deterministic corruption of an exact byte range (testing aid): xor
   every byte with [mask]. Only meaningful on clean lines (e.g. a
   post-crash image), since it bypasses persistence tracking. *)
let corrupt_range t ~off ~len ~mask =
  check_bounds t off len;
  for i = off to off + len - 1 do
    Bytes.set t.data i (Char.chr (Char.code (Bytes.get t.data i) lxor (mask land 0xFF)))
  done

let faults t = t.faults
let faults_injected t = t.faults <> zero_faults
let is_dead_line t ~off = Hashtbl.mem t.dead_lines (off / line_size)

let dirty_at_crash t ~off ~len =
  len > 0 && off >= 0 && off < t.size
  &&
  let last = min (off + len - 1) (t.size - 1) / line_size in
  let rec go li = li <= last && (Hashtbl.mem t.crash_dirty li || go (li + 1)) in
  go (off / line_size)

let dirty_line_count t = t.n_dirty

let unpersisted_ranges t =
  List.map (fun li -> (li * line_size, line_size)) (List.sort compare t.dirty_lines)
