(** Stored-procedure registry: the bridge between wire-form calls and
    executable transactions.

    Workloads register their transaction kinds as named procedures
    ({!Nv_workloads.Procs}); the registry indexes them by name so a
    networked client can submit [(procedure, args)] bytes instead of an
    OCaml closure. [build] rewraps the built transaction's input record
    as the framed call, so the engine's input log holds exactly what
    crossed the wire and {!rebuild} replays it after a crash — the
    serving path and deterministic replay share one encoding. *)

type t

val of_workload : Nv_workloads.Workload.t -> t
(** Index the workload's procedures by name. Raises [Invalid_argument]
    on duplicate or over-long (> 255 byte) names. *)

val names : t -> string list
val mem : t -> string -> bool

val encode_call : proc:string -> args:bytes -> bytes
(** Framed call record, [[u8 len(name)][name][args]] — the Submit
    payload tail and the logged input record. *)

val decode_call : bytes -> (string * bytes) option
(** Inverse of {!encode_call}; [None] on malformed bytes. *)

val build : t -> proc:string -> args:bytes -> (Nvcaracal.Txn.t, [ `Unknown_proc ]) result
(** Decode [args] with the named procedure's codec and build its
    transaction, input rewrapped as the framed call. *)

val rebuild : t -> bytes -> Nvcaracal.Txn.t
(** Replay a logged framed call (for {!Nvcaracal.Engine_intf.S.recover});
    raises [Invalid_argument] on malformed records or unknown names. *)
