(** The serving loop: {!Wire} frames over Unix-domain or TCP sockets,
    feeding one {!Batcher}.

    Single-threaded, non-blocking, [Unix.select]-driven — every select
    round is one batcher tick, so the batch deadline is measured in
    event-loop rounds. Malformed frames and out-of-order requests are
    counted as protocol errors, answered with [Server_error], and cost
    the offending connection — never the server. A [Shutdown] request
    drains every admitted transaction (replying to whoever still
    listens) before the loop exits. *)

type address = [ `Unix of string | `Tcp of string * int ]

type config = private {
  address : address;
  batcher : Batcher.config;
  tick_interval_s : float;  (** select timeout per loop round *)
  once : bool;  (** exit once all clients of a first wave disconnected *)
  stats_interval_s : float;
      (** period of the [on_stats] live-stats flush; 0 (default)
          disables it *)
}

val config :
  ?batcher:Batcher.config ->
  ?tick_interval_s:float ->
  ?once:bool ->
  ?stats_interval_s:float ->
  address ->
  config

type stats = {
  clients_served : int;
  admitted : int;
  committed : int;
  aborted : int;
  rejected : int;
  epochs : int;
  protocol_errors : int;
  digest : int64;  (** committed-state digest at exit *)
}

val serve :
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  ?on_stats:(string -> unit) ->
  engine:Nvcaracal.Engine_intf.packed ->
  registry:Proc.t ->
  tables:Nvcaracal.Table.t list ->
  config ->
  stats
(** Bind, serve until [Shutdown] (or, with [once], until the first wave
    of clients has disconnected), drain, and report. The engine must be
    loaded; it is driven only from this thread.

    A [Stats] request on any connection (no [Hello] needed) is answered
    with a [Stats_ok] JSON snapshot: uptime, connection and admission
    counters, epoch rate, per-procedure wall-latency percentiles
    (p50/p99/p999), and per-domain pool telemetry. [on_stats] (with
    [stats_interval_s > 0]) additionally receives that snapshot
    periodically — one JSON line per interval, ready for a JSONL log. *)
