(** The serving loop: {!Wire} frames over Unix-domain or TCP sockets,
    feeding one {!Batcher}.

    Single-threaded, non-blocking, [Unix.select]-driven — every select
    round is one batcher tick, so the batch deadline is measured in
    event-loop rounds. Malformed frames and out-of-order requests are
    counted as protocol errors, answered with [Server_error] (flushed,
    not fire-and-forget), and cost the offending connection — never the
    server. A [Shutdown] request, or [should_stop] turning true
    (SIGTERM/SIGINT in [nvdb serve]), drains every admitted transaction,
    answers stragglers [Rejected `Overloaded], writes a covering
    checkpoint when a journal is attached, and exits cleanly. *)

type address = [ `Unix of string | `Tcp of string * int ]

type config = private {
  address : address;
  batcher : Batcher.config;
  tick_interval_s : float;  (** select timeout per loop round *)
  once : bool;  (** exit once all clients of a first wave disconnected *)
  stats_interval_s : float;
      (** period of the [on_stats] live-stats flush; 0 (default)
          disables it *)
}

val config :
  ?batcher:Batcher.config ->
  ?tick_interval_s:float ->
  ?once:bool ->
  ?stats_interval_s:float ->
  address ->
  config

type recovery = {
  rec_records : Journal.record list;  (** journaled batches to replay *)
  rec_sessions : Journal.session_state list;  (** checkpointed sessions *)
  rec_batches_done : int;  (** batches the engine image already covers *)
}
(** What [--recover] feeds {!serve}: the replayable remains of a
    crashed run (see {!Restart.boot} and {!Batcher.recover}). *)

type stats = {
  clients_served : int;
  admitted : int;
  committed : int;
  aborted : int;
  rejected : int;
  replayed : int;  (** retries answered from session dedup windows *)
  epochs : int;
  protocol_errors : int;
  digest : int64;  (** committed-state digest at exit *)
}

val serve :
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  ?journal:Journal.t ->
  ?recovery:recovery ->
  ?should_stop:(unit -> bool) ->
  ?on_stats:(string -> unit) ->
  shards:Shard_set.t ->
  registry:Proc.t ->
  tables:Nvcaracal.Table.t list ->
  config ->
  stats
(** Bind, serve until [Shutdown] / [should_stop] (or, with [once], until
    the first wave of clients has disconnected), drain, and report.
    [shards] is the execution seam: {!Shard_set.local} over a loaded
    engine for classic single-shard serving, {!Shard_set.cluster} to
    route every batch across a multi-shard deployment — the serving
    loop is identical either way. With [journal], every formed batch is
    persisted before it runs; with [recovery], the journaled tail is
    replayed through the batcher before the first connection is
    accepted.

    A [Stats] request on any connection (no [Hello] needed) is answered
    with a [Stats_ok] JSON snapshot: uptime, connection, session and
    admission counters, epoch rate, per-procedure wall-latency
    percentiles (p50/p99/p999), and per-domain pool telemetry — plus,
    on journaled servers only, the journal occupancy, committed-state
    digest and — single-shard only; a cluster's images live in the
    shard processes — the full pmem-image CRC (hex strings; the chaos
    oracle).
    [on_stats] (with [stats_interval_s > 0]) additionally receives that
    snapshot periodically — one JSON line per interval, ready for a
    JSONL log. *)
