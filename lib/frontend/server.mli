(** The serving loop: {!Wire} frames over Unix-domain or TCP sockets,
    feeding one {!Batcher}.

    Single-threaded, non-blocking, [Unix.select]-driven — every select
    round is one batcher tick, so the batch deadline is measured in
    event-loop rounds. Malformed frames and out-of-order requests are
    counted as protocol errors, answered with [Server_error], and cost
    the offending connection — never the server. A [Shutdown] request
    drains every admitted transaction (replying to whoever still
    listens) before the loop exits. *)

type address = [ `Unix of string | `Tcp of string * int ]

type config = private {
  address : address;
  batcher : Batcher.config;
  tick_interval_s : float;  (** select timeout per loop round *)
  once : bool;  (** exit once all clients of a first wave disconnected *)
}

val config : ?batcher:Batcher.config -> ?tick_interval_s:float -> ?once:bool -> address -> config

type stats = {
  clients_served : int;
  admitted : int;
  committed : int;
  aborted : int;
  rejected : int;
  epochs : int;
  protocol_errors : int;
  digest : int64;  (** committed-state digest at exit *)
}

val serve :
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  engine:Nvcaracal.Engine_intf.packed ->
  registry:Proc.t ->
  tables:Nvcaracal.Table.t list ->
  config ->
  stats
(** Bind, serve until [Shutdown] (or, with [once], until the first wave
    of clients has disconnected), drain, and report. The engine must be
    loaded; it is driven only from this thread. *)
