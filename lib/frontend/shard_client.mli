(** The router's side of the shard plane: a blocking framed client for
    one shard connection.

    Failure taxonomy matters here: {!Down} means the {e peer} is gone or
    babbling (socket error, EOF, protocol violation) — the caller should
    reconnect, possibly respawning the shard, and retry the idempotent
    round. A [Server_error] reply travels as [Failure] instead: the
    connection is healthy but the shard refused (fenced generation,
    missing reconnaissance state), which calls for re-driving the
    protocol, not the process. *)

type address = [ `Unix of string | `Tcp of string * int ]

exception Down of string
(** The shard is unreachable or the connection broke mid-request. *)

type t

val connect : ?retry_timeout_s:float -> address -> t
(** Connect, retrying a refused/missing endpoint until the deadline
    (default 10 s) — a freshly (re)spawned shard needs a moment to
    bind. @raise Down once the deadline passes. *)

val close : t -> unit

val hello : t -> gen:int -> shard:int -> shards:int -> int
(** Handshake as router generation [gen]; validates the shard's
    identity echo and returns its highest applied epoch.
    @raise Down on transport failure or identity mismatch,
    [Failure] if the shard refuses (older generation). *)

val route :
  t ->
  epoch:int ->
  calls:Wire.routed_call array ->
  reads:Wire.shard_read array ->
  Wire.shard_read array * bool
(** Round one (iterable): ship the epoch's global batch plus the
    partial merged read table so far, get the shard's owned reads (or,
    for an applied epoch, its full cached read table) and whether its
    reconnaissance pass resolved every remote read — [false] asks for
    another round with a richer table. *)

val fence : t -> epoch:int -> reads:Wire.shard_read array -> Wire.shard_outcome array * int64
(** Round two: ship the merged read table, get the verdict vector and
    owned-state digest. *)
