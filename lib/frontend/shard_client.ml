type address = [ `Unix of string | `Tcp of string * int ]

exception Down of string

type t = { fd : Unix.file_descr; reader : Wire.Reader.t }

let down fmt = Printf.ksprintf (fun s -> raise (Down s)) fmt

let sockaddr = function
  | `Unix path -> Unix.ADDR_UNIX path
  | `Tcp (host, port) ->
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.ADDR_INET (addr, port)

(* A shard being (re)spawned takes a moment to bind; retry inside the
   deadline rather than pushing every boot race onto the caller. *)
let connect ?(retry_timeout_s = 10.0) address =
  let deadline = Unix.gettimeofday () +. retry_timeout_s in
  let rec go () =
    let fd =
      Unix.socket
        (match address with `Unix _ -> Unix.PF_UNIX | `Tcp _ -> Unix.PF_INET)
        Unix.SOCK_STREAM 0
    in
    match Unix.connect fd (sockaddr address) with
    | () -> { fd; reader = Wire.Reader.create () }
    | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        if Unix.gettimeofday () >= deadline then
          down "connect: %s" (Unix.error_message e)
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t frame =
  let len = Bytes.length frame in
  let off = ref 0 in
  try
    while !off < len do
      match Unix.write t.fd frame !off (len - !off) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | n -> off := !off + n
    done
  with Unix.Unix_error (e, _, _) -> down "write: %s" (Unix.error_message e)

let recv t =
  let buf = Bytes.create 65536 in
  let rec go () =
    match Wire.Reader.next_payload t.reader with
    | Some payload -> (
        match Wire.decode_response payload with
        | Wire.Server_error msg ->
            (* The connection is healthy; the shard refused the
               request. Distinct from [Down] so callers can tell a dead
               peer from a fenced or state-missing one. *)
            failwith msg
        | resp -> resp
        | exception Wire.Protocol_error msg -> down "protocol: %s" msg)
    | None -> (
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) -> down "read: %s" (Unix.error_message e)
        | 0 -> down "connection closed by shard"
        | n ->
            (try Wire.Reader.feed t.reader buf ~off:0 ~len:n
             with Wire.Protocol_error msg -> down "protocol: %s" msg);
            go ())
  in
  go ()

let request t req =
  send t (Wire.encode_request req);
  recv t

let hello t ~gen ~shard ~shards =
  match
    request t (Wire.Shard_hello { gen; shard; shards; version = Wire.protocol_version })
  with
  | Wire.Shard_hello_ok { shard = s; shards = n; applied; _ } when s = shard && n = shards ->
      applied
  | Wire.Shard_hello_ok { shard = s; shards = n; _ } ->
      down "hello: shard says it is %d/%d, wanted %d/%d" s n shard shards
  | _ -> down "hello: unexpected response"

let route t ~epoch ~calls ~reads =
  match request t (Wire.Route { epoch; calls; reads }) with
  | Wire.Route_reads { epoch = e; reads; complete } when e = epoch -> (reads, complete)
  | Wire.Route_reads { epoch = e; _ } -> down "route: answered for epoch %d, not %d" e epoch
  | _ -> down "route: unexpected response"

let fence t ~epoch ~reads =
  match request t (Wire.Fence { epoch; reads }) with
  | Wire.Fence_ok { epoch = e; outcomes; digest } when e = epoch -> (outcomes, digest)
  | Wire.Fence_ok { epoch = e; _ } -> down "fence: answered for epoch %d, not %d" e epoch
  | _ -> down "fence: unexpected response"
