(** One member of a routed multi-shard cluster: the shard-plane
    executor behind {!Wire.Route}/{!Wire.Fence}.

    A shard owns the keys the placement hash assigns it ({!owner} — the
    same hash {!Nvcaracal.Partition} uses) and executes every epoch in
    two rounds, after Calvin/Aria: the router fixes one global serial
    order per epoch and broadcasts the {e whole} batch to every shard
    ([Route]); each shard runs a reconnaissance pass — declared write
    sets seed owned keys for free, transactions with undeclared reads
    execute speculatively with owned reads answered from committed
    state and remote reads from the router's partial table — and
    replies with the owned values the epoch touches plus a
    completeness flag; the router merges, and iterates Route with the
    growing table until every shard is complete, then broadcasts the
    final read table ([Fence]); each shard then re-executes the batch with all reads
    resolved, decides each transaction's fate with the shared
    {!Nvcaracal.Determinism.verdicts} rule — identically everywhere, no
    voting and no two-phase commit — and commits its owned slice of the
    writes as one blind-write batch.

    Durability is input-logging: the fence journals the global batch
    plus the merged read table (a sentinel entry) {e before} applying,
    so {!recover} replays the shard's journal through the exact live
    path with no cluster round trip. Applied epochs stay answerable:
    re-[Route]/re-[Fence] of an applied epoch return the cached full
    read table and verdicts, which is what lets a recovering router (or
    a respawned peer) re-drive an epoch some members already applied.
    The history that backs this idempotency is kept in memory,
    unbounded — a deliberate simplification documented in
    docs/CLUSTER.md. *)

type t

val sentinel_client : int
(** The reserved session id ([0xFFFFFFFF]) under which a fence's merged
    read table is journaled alongside the epoch's calls. *)

val owner : shards:int -> table:int -> key:int64 -> int
(** The placement hash: which of [shards] members owns [(table, key)].
    Identical to {!Nvcaracal.Partition}'s node placement, so a routed
    cluster and an in-process partitioned engine agree. *)

val create :
  shard_id:int ->
  shards:int ->
  ?journal:Journal.t ->
  engine:Nvcaracal.Engine_intf.packed ->
  registry:Proc.t ->
  tables:Nvcaracal.Table.t list ->
  unit ->
  t
(** Wrap a fresh engine as shard [shard_id] of [shards]. With [journal],
    every fence is persisted before it applies. Raises
    [Invalid_argument] on an out-of-range [shard_id]. *)

val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit
(** Load the workload's rows, keeping only the ones this shard owns. *)

val recover : t -> records:Journal.record list -> unit
(** Replay a reopened shard journal into a fresh, bulk-loaded shard:
    each record re-runs its fence (calls + sentinel read table) through
    the live execution path, reproducing applied state and refilling
    the idempotency history. Armed crashpoints stay quiet during
    replay. Raises [Failure] on a gap or a record without its
    sentinel. *)

val route :
  t ->
  epoch:int ->
  calls:Wire.routed_call array ->
  reads:Wire.shard_read array ->
  Wire.shard_read array * bool
(** Round one (iterable). For the next epoch ([applied + 1]): run a
    reconnaissance pass against [reads], the partially merged table so
    far (empty on the first pass), and return this shard's owned
    reads, sorted by (table, key), plus whether the pass resolved
    every remote read it attempted. When false, the router must merge
    and route again before fencing. Repeat routes of the same epoch
    reuse the rebuilt transactions; only the partial table changes.
    For an already-applied epoch: return the epoch's {e full} merged
    read table from history with [true] (idempotent re-route). Raises
    [Failure] on an epoch gap. *)

val fence : t -> epoch:int -> reads:Wire.shard_read array -> Wire.shard_outcome array * int64
(** Round two: re-execute the routed epoch under the merged read table,
    journal, apply owned writes, and return the verdict vector plus the
    owned-state digest. Idempotent for applied epochs (cached answer).
    Raises [Failure] without a matching {!route}, or when a read
    reaches a remote key reconnaissance never discovered (control flow
    depending on remote values — see docs/CLUSTER.md). *)

val handle : t -> Wire.request -> Wire.response
(** Dispatch one shard-plane request ([Shard_hello]/[Route]/[Fence]);
    errors become [Server_error]. [Shard_hello] validates the claimed
    identity and fences router generations: once a newer generation has
    said hello, older generations are refused. *)

val serve : t -> address:[ `Unix of string | `Tcp of string * int ] -> should_stop:(unit -> bool) -> unit
(** Synchronous shard server: accept connections, require [Shard_hello]
    first, serve the shard plane until [should_stop ()]. A connection
    whose generation is superseded mid-flight is fenced (its frames are
    refused), so a zombie router cannot drive the shard after a
    failover. Removes a Unix socket path on exit. *)

val digest : t -> int64
(** XOR (over committed rows) of per-row hashes — order- and
    placement-independent, so XOR-ing every member's digest yields a
    cluster fingerprint comparable across shard counts. *)

val shard_id : t -> int
val shards : t -> int

val applied : t -> int
(** Highest epoch durably applied (0 before the first fence). *)

val engine : t -> Nvcaracal.Engine_intf.packed

val read_committed : t -> table:int -> key:int64 -> bytes option
(** Committed value of an owned key (tests and probes). *)

val owns : t -> table:int -> key:int64 -> bool
(** [owner ~shards ~table ~key = shard_id t]. *)
