(** The epoch batcher: multi-client admission, deterministic batch
    forming, and checkpoint-gated reply delivery.

    This is the serving pipeline's core, kept free of sockets so tests
    drive it directly. Clients connect with a reply callback and submit
    framed procedure calls; the batcher keeps one FIFO per client,
    closes a batch when the {e size target} is reached or the
    {e deadline} (in ticks of the caller's event loop) expires, runs it
    as one engine epoch, and only then — after the epoch's checkpoint —
    fires the replies (paper section 6.2.3). Admission is bounded:
    beyond [max_pending] queued transactions a submit is answered
    [Rejected `Overloaded], never silently dropped.

    Batch forming is deterministic given queue contents: engine-deferred
    carryover first (original serial order), then round-robin over the
    per-client FIFOs in client-id order. Every admitted batch is
    recorded ({!admitted_batches}) so an offline replay of the same
    batches through a fresh engine must reproduce the same committed
    state — the end-to-end determinism check. *)

type t
type client

type config = private {
  batch_target : int;  (** close the batch at this many transactions *)
  deadline_ticks : int;  (** ... or this many ticks after the oldest arrival *)
  max_pending : int;  (** admission bound across all clients *)
}

val config : ?batch_target:int -> ?deadline_ticks:int -> ?max_pending:int -> unit -> config
(** Defaults: target 256, deadline 8 ticks, [max_pending] 4x target.
    Raises [Invalid_argument] on non-positive values or
    [max_pending < batch_target]. *)

val create :
  ?cfg:config ->
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  engine:Nvcaracal.Engine_intf.packed ->
  registry:Proc.t ->
  tables:Nvcaracal.Table.t list ->
  unit ->
  t
(** Wrap a loaded engine. [metrics] (if enabled) gains queue-depth
    gauges plus queue-wait, batch-size, epoch-execution and
    checkpoint-to-reply histograms under the [frontend.] prefix. *)

val connect : t -> reply:(Wire.response -> unit) option -> client
(** Register a client. [reply] receives this client's [Result] and
    [Rejected] messages (pass [None] for a fire-and-forget client). *)

val disconnect : t -> client -> unit
(** Drop the reply channel. Already-admitted transactions still execute
    in their epoch — admission is a determinism commitment — but their
    replies go nowhere. *)

val submit :
  t ->
  client ->
  req:int ->
  proc:string ->
  args:bytes ->
  [ `Admitted | `Rejected of Wire.reject_reason ]
(** Admit one framed call into the client's FIFO, or reject it — the
    rejection is also sent on the reply channel. Raises
    [Invalid_argument] on a disconnected client. *)

val tick : t -> unit
(** Advance the batcher's clock one tick; closes and runs the open
    batch once the size target is met or the deadline has expired with
    transactions pending. Batches never close inside {!submit}, so
    admissions within one tick pile up to [max_pending]. *)

val flush : t -> unit
(** Close and run the open batch now, if non-empty. *)

val drain : t -> unit
(** Run batches until nothing is pending (deferred transactions are
    resubmitted until they commit); what [Shutdown] triggers. *)

val client_id : client -> int
val outstanding : client -> int
(** Admitted-but-unanswered transactions of this client (what [Bye]
    waits on). *)

val engine : t -> Nvcaracal.Engine_intf.packed
val pending : t -> int
val epochs_run : t -> int
val admitted : t -> int
val committed : t -> int
val aborted : t -> int
val rejected : t -> int

val deferred_total : t -> int
(** Cumulative conflict-victim deferrals (an entry deferred twice
    counts twice). *)

val current_tick : t -> int

val proc_latencies : t -> (string * Nv_util.Histogram.t) list
(** Admission-to-reply {e wall-clock} latency per procedure (ns),
    sorted by procedure name. Host-time readings, so they live outside
    the metrics registry (whose records must stay deterministic); the
    server publishes them through the [Stats] wire message. *)

val admitted_batches : t -> (string * bytes) array list
(** Every batch run so far (oldest first) as the framed calls admitted
    into it, including deferred resubmissions — replaying these batches
    through {!Proc.build} and [run_batch] on a fresh engine reproduces
    the served state exactly. *)

val state_digest : t -> int64
(** {!Nv_harness.Engine.state_digest} of the engine's committed state. *)
