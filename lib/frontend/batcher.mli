(** The epoch batcher: multi-client admission, deterministic batch
    forming, checkpoint-gated reply delivery, and exactly-once
    sessions.

    This is the serving pipeline's core, kept free of sockets so tests
    drive it directly. Clients connect with a reply callback and submit
    framed procedure calls; the batcher keeps one FIFO per client,
    closes a batch when the {e size target} is reached or the
    {e deadline} (in ticks of the caller's event loop) expires, runs it
    as one engine epoch, and only then — after the epoch's checkpoint —
    fires the replies (paper section 6.2.3). Admission is bounded:
    beyond [max_pending] queued transactions a submit is answered
    [Rejected `Overloaded], never silently dropped.

    Clients are {e sessions}, not connections: a session keeps its
    per-seq dedup window and last-acked sequence number across
    disconnects, so a reconnecting client that retries an
    already-answered call gets the original outcome back instead of a
    second execution. Admission is a determinism commitment — once a
    call is in a batch it executes even if the submitter vanishes; only
    the reply is dropped (and its outcome recorded for a later retry).

    Batch forming is deterministic given queue contents: engine-deferred
    carryover first (original serial order), then round-robin over the
    per-client FIFOs in client-id order. Every admitted batch is
    recorded ({!admitted_batches}) so an offline replay of the same
    batches through a fresh engine must reproduce the same committed
    state — the end-to-end determinism check. With a {!Journal.t}
    attached, each formed batch is additionally persisted {e before} it
    runs, and {!recover} replays a reopened journal through the same
    execution path, reproducing the crashed server's pmem image bit for
    bit. *)

type t
type client

type config = private {
  batch_target : int;  (** close the batch at this many transactions *)
  deadline_ticks : int;  (** ... or this many ticks after the oldest arrival *)
  max_pending : int;  (** admission bound across all clients *)
  dedup_window : int;  (** acked outcomes remembered per session *)
  checkpoint_every : int;  (** checkpoint+truncate cadence in batches; 0 = never *)
}

val config :
  ?batch_target:int ->
  ?deadline_ticks:int ->
  ?max_pending:int ->
  ?dedup_window:int ->
  ?checkpoint_every:int ->
  unit ->
  config
(** Defaults: target 256, deadline 8 ticks, [max_pending] 4x target,
    dedup window 4096, no automatic checkpoints. Raises
    [Invalid_argument] on non-positive values or
    [max_pending < batch_target]. *)

val create :
  ?cfg:config ->
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  ?journal:Journal.t ->
  shards:Shard_set.t ->
  registry:Proc.t ->
  tables:Nvcaracal.Table.t list ->
  unit ->
  t
(** Wrap an execution seam — {!Shard_set.local} for one loaded engine
    (the classic single-shard server), {!Shard_set.cluster} for routed
    multi-shard serving; the batcher is identical either way. [metrics]
    (if enabled) gains queue-depth gauges plus queue-wait, batch-size,
    epoch-execution and checkpoint-to-reply histograms under the
    [frontend.] prefix. [checkpoint_every > 0] without a [journal], or
    on a cluster-backed set (whose durability is each shard's own
    journal, never one pmem image), raises [Invalid_argument]. *)

val connect : ?id:int -> ?resume:bool -> t -> reply:(Wire.response -> unit) option -> client
(** Attach to a session. Without [id] a fresh unused id is assigned.
    With [id] and [resume] set, an existing session is resumed — dedup
    window and last-acked intact, reply channel swapped. With [resume]
    unset (default) a known id is {e reset}: new generation, empty
    window, replies for its older entries suppressed. [reply] receives
    the session's [Result]/[Rejected] messages ([None] for
    fire-and-forget). *)

val disconnect : ?token:int -> t -> client -> unit
(** Drop the reply channel. The session itself persists: admitted
    transactions still execute in their epoch and their outcomes land
    in the dedup window, ready for a resumed retry. With [token] (from
    {!owner_token} at attach time), the channel is dropped only if this
    attach still owns it — a stale connection closing after a
    last-Hello-wins takeover must not sever the new connection. *)

val owner_token : client -> int
(** Identifies the current attach of this session; changes on every
    {!connect} that targets it. Pass it back to {!disconnect} so only
    the owning connection can drop the reply channel. *)

val submit :
  t ->
  client ->
  req:int ->
  proc:string ->
  args:bytes ->
  [ `Admitted
  | `Rejected of [ `Overloaded | `Unknown_proc ]
  | `Replayed of [ `Committed | `Aborted ]
  | `Duplicate ]
(** Submit one call under client sequence number [req]. If [req] is in
    the session's dedup window the stored outcome is re-sent
    ([`Replayed]); if it is still in flight nothing is sent
    ([`Duplicate] — the original reply will answer it); otherwise it is
    admitted into the FIFO or rejected, with the rejection also sent on
    the reply channel. A disconnected session admits normally — replies
    are dropped, outcomes still land in the dedup window for a resumed
    retry. *)

val try_replay :
  t -> client -> req:int -> [ `Replayed of [ `Committed | `Aborted ] | `Inflight | `New ]
(** Non-admitting probe (used while a server drains): a [req] in the
    dedup window replays its original outcome on the reply channel; an
    in-flight [req] is left to the reply its admission already owes;
    only [`New] means the caller should reject. *)

val tick : t -> unit
(** Advance the batcher's clock one tick; closes and runs the open
    batch once the size target is met or the deadline has expired with
    transactions pending. Batches never close inside {!submit}, so
    admissions within one tick pile up to [max_pending]. *)

val flush : t -> unit
(** Close and run the open batch now, if non-empty. *)

val drain : t -> unit
(** Run batches until nothing is pending (deferred transactions are
    resubmitted until they commit); what [Shutdown] triggers. *)

val checkpoint_now : t -> bool
(** Write a covering checkpoint (engine pmem image + session table) and
    truncate the journal to it. A no-op returning [false] without a
    journal, on a cluster-backed set (no single pmem image exists), or
    while conflict-deferred carryover is outstanding —
    truncation must never orphan a deferred call whose bytes live only
    in the journal. *)

val recover :
  t ->
  records:Journal.record list ->
  sessions:Journal.session_state list ->
  batches_done:int ->
  unit
(** Replay a reopened journal into a {e fresh} batcher whose engine
    already covers [batches_done] batches (0 for a fresh engine, the
    checkpoint's count for a restored one). Records below
    [batches_done] are skipped; the rest must be gapless and run
    through the live batch path, so the resulting pmem image matches an
    uncrashed run's. [sessions] (from the checkpoint) seed the dedup
    windows; replayed outcomes re-ack on top. The final batch's
    deferrals become live carryover. *)

val client_id : client -> int
val outstanding : client -> int
(** Admitted-but-unanswered transactions of this client (what [Bye]
    waits on). *)

val last_acked : client -> int
(** Highest sequence number acknowledged to this session. *)

val shard_set : t -> Shard_set.t

val engine : t -> Nvcaracal.Engine_intf.packed
(** The local engine of a {!Shard_set.local}-backed batcher. Raises
    [Invalid_argument] on a cluster-backed one — checkpointing and
    pmem oracles have no single engine to reach there. *)

val journal : t -> Journal.t option
val pending : t -> int

val queued : t -> int
(** Pending entries still in per-session FIFOs (excludes carryover). *)

val carryover_len : t -> int
(** Conflict-deferred entries that will lead the next batch. *)

val epochs_run : t -> int

val batches_run : t -> int
(** Batches executed since creation, replay included. *)

val admitted : t -> int
val committed : t -> int
val aborted : t -> int
val rejected : t -> int

val replayed_replies : t -> int
(** Retries answered from a session dedup window. *)

val deferred_total : t -> int
(** Cumulative conflict-victim deferrals (an entry deferred twice
    counts twice). *)

val sessions : t -> int
(** Sessions known to the batcher (connected or not). *)

val current_tick : t -> int

val proc_latencies : t -> (string * Nv_util.Histogram.t) list
(** Admission-to-reply {e wall-clock} latency per procedure (ns),
    sorted by procedure name. Host-time readings, so they live outside
    the metrics registry (whose records must stay deterministic); the
    server publishes them through the [Stats] wire message. *)

val admitted_batches : t -> (string * bytes) array list
(** Every batch run so far (oldest first) as the framed calls admitted
    into it, including deferred resubmissions — replaying these batches
    through {!Proc.build} and [run_batch] on a fresh engine reproduces
    the served state exactly. *)

val state_digest : t -> int64
(** {!Shard_set.digest} of the committed state: the engine's FNV-chain
    digest on a local set, the XOR cluster digest on a routed one. *)
