module Pmem = Nv_nvmm.Pmem
module W = Nv_workloads.Workload

type boot = {
  engine : Nvcaracal.Engine_intf.packed;
  batches_done : int;
  sessions : Journal.session_state list;
  from_checkpoint : bool;
}

let meta ~workload ~contention ~engine ~seed =
  Printf.sprintf "workload=%s contention=%s engine=%s seed=%d" workload contention engine seed

(* Rebuild a serving engine from a reopened journal. With a covering
   checkpoint, the saved pmem image is installed as a cleanly-crashed
   region and the engine recovers from it (sessions come along); with
   none, a fresh engine is built and bulk-loaded exactly as [serve]
   would at cold start. Either way the caller then feeds
   [opened.records] to {!Batcher.recover}, which replays the journaled
   tail — the composition reproduces the crashed server's state. *)
let boot spec setup (w : W.t) ~registry (opened : Journal.opened) =
  let rebuild = Proc.rebuild registry in
  match opened.Journal.checkpoint with
  | Some ck ->
      let image = ck.Journal.ck_image in
      let pmem = Pmem.create ~mode:Pmem.Crash_safe ~size:(Bytes.length image) () in
      Pmem.write_bytes pmem ~off:0 image;
      Pmem.crash_all_persisted pmem;
      let engine = Nv_harness.Engine.recover spec setup w ~pmem ~rebuild in
      {
        engine;
        batches_done = ck.Journal.ck_batches;
        sessions = ck.Journal.ck_sessions;
        from_checkpoint = true;
      }
  | None ->
      let (Nvcaracal.Engine_intf.Packed ((module E), db) as engine) =
        Nv_harness.Engine.instantiate spec setup w
      in
      E.bulk_load db (w.W.load ());
      { engine; batches_done = 0; sessions = []; from_checkpoint = false }
