(** Seeded kill-9 chaos campaigns against a real served instance.

    A campaign runs [nvdb serve] (journaled, crash-safe) and a
    reconnecting [nvdb loadgen] as child processes, arms each server
    generation with one {!Nv_util.Crashpoint} drawn from a seeded plan
    ([NVC_CRASHPOINT=point:n]), and supervises: every SIGKILL death is
    answered by a restart with [--recover] and the next plan entry,
    until the plan is exhausted and the run completes gracefully.

    Two properties are then checked. {e Exactly-once}: the load
    generator — which retries every unacknowledged call across
    reconnects — must see zero duplicate answers and exactly one
    outcome per call sent. {e Pmem-image oracle}: replaying the durable
    artifacts (journal + optional checkpoint) offline, in-process, must
    reproduce the final server generation's parting state digest and
    pmem CRC — determinism extended across process crashes
    (docs/FAULTS.md).

    Everything a campaign touches lives in one artifact directory
    (socket, journal, both process logs), removed on success and kept
    on failure for post-mortem.

    With [shards > 1] the campaign turns on the routed cluster instead:
    one router generation serves the whole run, the seeded plan becomes
    shard-targeted crash specs ([NVC_SHARD_CRASHPOINT=shard:point:n],
    points straddling each fence's journal/apply boundary), and the
    router's own supervisor answers every shard kill-9 with a respawn
    under [--recover]. The oracle becomes the cross-shard-count
    determinism check: the router journal replayed through a 1-member
    in-process cluster must reproduce the N-shard router's parting XOR
    digest (no pmem CRC — a cluster has no single persistent image). *)

type config = private {
  exe : string;  (** the nvdb binary to spawn, normally [Sys.executable_name] *)
  seed : int;  (** crashpoint-plan seed *)
  iterations : int;  (** kill-9s to inject before letting the run finish *)
  clients : int;
  txns_per_client : int;
  checkpoint_every : int;  (** server checkpoint cadence; 0 = replay-only recovery *)
  workload : string;
  contention : string;
  engine : string;
  wseed : int;  (** workload seed *)
  shards : int;  (** 1 = classic single-shard campaign; >1 = routed cluster *)
  dir : string option;  (** artifact directory; default under [TMPDIR] *)
  keep : bool;  (** keep artifacts even on success *)
  timeout_s : float;
  log : string -> unit;  (** progress callback (crash/restart events) *)
}

val config :
  ?seed:int ->
  ?iterations:int ->
  ?clients:int ->
  ?txns_per_client:int ->
  ?checkpoint_every:int ->
  ?workload:string ->
  ?contention:string ->
  ?engine:string ->
  ?wseed:int ->
  ?shards:int ->
  ?dir:string ->
  ?keep:bool ->
  ?timeout_s:float ->
  ?log:(string -> unit) ->
  exe:string ->
  unit ->
  config
(** Defaults: seed 1, 25 iterations, 8 clients x 200 txns, no
    checkpoints, ycsb-tiny/med on nvcaracal with workload seed 42, one
    shard, timeout scaled to the iteration count. Raises
    [Invalid_argument] for [shards > 1] with [checkpoint_every > 0]
    (cluster recovery is journal replay, never a checkpoint image). *)

type outcome = {
  crashes : int;  (** kill-9s that actually fired *)
  recoveries : int;  (** [--recover] restarts performed *)
  sent : int;
  committed : int;
  aborted : int;
  rejected : int;
  reconnects : int;
  duplicates : int;  (** client-observed duplicate answers — any is a failure *)
  failures : string list;  (** empty iff the campaign passed *)
  artifacts : string option;  (** artifact directory when kept *)
}

val run : config -> outcome
(** Run one campaign to completion. Never raises on check failures —
    they are reported in [outcome.failures]; spawn/system errors may
    still raise. *)
