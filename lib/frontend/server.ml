type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  batcher : Batcher.config;
  tick_interval_s : float;
  once : bool;
  stats_interval_s : float;
}

let config ?(batcher = Batcher.config ()) ?(tick_interval_s = 0.002) ?(once = false)
    ?(stats_interval_s = 0.0) address =
  { address; batcher; tick_interval_s; once; stats_interval_s }

type stats = {
  clients_served : int;
  admitted : int;
  committed : int;
  aborted : int;
  rejected : int;
  epochs : int;
  protocol_errors : int;
  digest : int64;
}

(* Per-connection state: an incremental frame reader in, a byte queue
   out (flushed when select reports writability), and the batcher
   client once Hello arrived. *)
type conn = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  mutable out : bytes list;  (** reversed queue of unsent frames *)
  mutable out_off : int;  (** bytes of the head frame already written *)
  mutable client : Batcher.client option;
  mutable said_bye : bool;
  mutable dead : bool;
}

type t = {
  cfg : config;
  batcher : Batcher.t;
  listen_fd : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable served : int;
  mutable protocol_errors : int;
  mutable shutdown : bool;
  start_wall : float;  (** host wall ns at creation (uptime base) *)
  on_stats : (string -> unit) option;  (** periodic live-stats sink *)
  mutable last_stats : float;  (** wall ns of the last periodic flush *)
}

let bind_listen = function
  | `Unix path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let create ?tracer ?metrics ?on_stats ~engine ~registry ~tables (cfg : config) =
  let batcher = Batcher.create ~cfg:cfg.batcher ?tracer ?metrics ~engine ~registry ~tables () in
  let listen_fd = bind_listen cfg.address in
  Unix.set_nonblock listen_fd;
  let now = Nv_util.Clock.now_ns () in
  {
    cfg;
    batcher;
    listen_fd;
    conns = Hashtbl.create 64;
    served = 0;
    protocol_errors = 0;
    shutdown = false;
    start_wall = now;
    on_stats;
    last_stats = now;
  }

let push t conn resp =
  ignore t;
  if not conn.dead then conn.out <- Wire.encode_response resp :: conn.out

let close_conn t conn =
  if not conn.dead then begin
    conn.dead <- true;
    (match conn.client with Some c -> Batcher.disconnect t.batcher c | None -> ());
    Hashtbl.remove t.conns conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end

let protocol_error t conn msg =
  t.protocol_errors <- t.protocol_errors + 1;
  push t conn (Wire.Server_error msg);
  (* Flush the error best-effort, then drop the connection. *)
  List.iter
    (fun b -> try ignore (Unix.write conn.fd b 0 (Bytes.length b)) with Unix.Unix_error _ -> ())
    (List.rev conn.out);
  conn.out <- [];
  close_conn t conn

let digest t = Batcher.state_digest t.batcher

(* Live statistics snapshot: serving counters, per-procedure wall
   latency percentiles, and domain-pool telemetry, as one JSON object.
   Everything here is monitoring-grade — wall-clock readings and racy
   telemetry — and never feeds the deterministic metrics registry. *)
let live_stats_json t =
  let module J = Nv_obs.Jsonx in
  let module H = Nv_util.Histogram in
  let uptime_s = (Nv_util.Clock.now_ns () -. t.start_wall) /. 1e9 in
  let lat_json (proc, h) =
    let ms p = H.percentile h p /. 1e6 in
    ( proc,
      J.Assoc
        [
          ("count", J.Int (H.count h));
          ("mean_ms", J.Float (H.mean h /. 1e6));
          ("p50_ms", J.Float (ms 50.0));
          ("p99_ms", J.Float (ms 99.0));
          ("p999_ms", J.Float (ms 99.9));
          ("max_ms", J.Float (H.max_value h /. 1e6));
        ] )
  in
  let procs =
    List.filter (fun (_, h) -> H.count h > 0) (Batcher.proc_latencies t.batcher)
  in
  J.to_string
    (J.Assoc
       [
         ("uptime_s", J.Float uptime_s);
         ("clients_connected", J.Int (Hashtbl.length t.conns));
         ("clients_served", J.Int t.served);
         ("admitted", J.Int (Batcher.admitted t.batcher));
         ("committed", J.Int (Batcher.committed t.batcher));
         ("aborted", J.Int (Batcher.aborted t.batcher));
         ("rejected", J.Int (Batcher.rejected t.batcher));
         ("deferred", J.Int (Batcher.deferred_total t.batcher));
         ("pending", J.Int (Batcher.pending t.batcher));
         ("epochs", J.Int (Batcher.epochs_run t.batcher));
         ( "epoch_rate_per_s",
           J.Float
             (if uptime_s > 0.0 then float_of_int (Batcher.epochs_run t.batcher) /. uptime_s
              else 0.0) );
         ("protocol_errors", J.Int t.protocol_errors);
         ("procs", J.Assoc (List.map lat_json procs));
         ("domains", Nv_obs.Profile.telemetry_json ());
       ])

(* Bye completes only once every admitted transaction of the
   connection has been answered; then the client sees a state digest
   covering everything it was told about. *)
let maybe_finish_bye t conn =
  match conn.client with
  | Some c when conn.said_bye && Batcher.outstanding c = 0 ->
      push t conn (Wire.Bye_ok { digest = digest t });
      conn.said_bye <- false
  | _ -> ()

let handle_request t conn (req : Wire.request) =
  match (req, conn.client) with
  | Wire.Hello _, Some _ -> protocol_error t conn "duplicate Hello"
  | Wire.Hello _, None ->
      let client = Batcher.connect t.batcher ~reply:(Some (fun r -> push t conn r)) in
      conn.client <- Some client;
      t.served <- t.served + 1;
      push t conn Wire.Hello_ok
  | Wire.Submit _, None -> protocol_error t conn "Submit before Hello"
  | Wire.Submit { req; proc; args }, Some client ->
      if conn.said_bye then protocol_error t conn "Submit after Bye"
      else ignore (Batcher.submit t.batcher client ~req ~proc ~args)
  | Wire.Bye, None -> protocol_error t conn "Bye before Hello"
  | Wire.Bye, Some _ ->
      conn.said_bye <- true;
      maybe_finish_bye t conn
  | Wire.Shutdown, _ -> t.shutdown <- true
  (* Stats needs no Hello: monitoring tools connect, ask, disconnect. *)
  | Wire.Stats, _ -> push t conn (Wire.Stats_ok { json = live_stats_json t })

let handle_readable t conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn
  | 0 -> close_conn t conn
  | n -> (
      Wire.Reader.feed conn.reader buf ~off:0 ~len:n;
      try
        let continue = ref true in
        while !continue && not conn.dead do
          match Wire.Reader.next_payload conn.reader with
          | None -> continue := false
          | Some payload -> handle_request t conn (Wire.decode_request payload)
        done
      with Wire.Protocol_error msg -> protocol_error t conn msg)

let handle_writable t conn =
  match List.rev conn.out with
  | [] -> ()
  | head :: rest -> (
      let len = Bytes.length head - conn.out_off in
      match Unix.write conn.fd head conn.out_off len with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> close_conn t conn
      | n ->
          if n = len then begin
            conn.out <- List.rev rest;
            conn.out_off <- 0;
            (* A drained output right after Bye_ok means the goodbye
               reached the socket: the peer will close; nothing to do. *)
            ()
          end
          else conn.out_off <- conn.out_off + n)

let accept_new t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        continue := false
    | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace t.conns fd
          {
            fd;
            reader = Wire.Reader.create ();
            out = [];
            out_off = 0;
            client = None;
            said_bye = false;
            dead = false;
          }
  done

let step t =
  let reads = t.listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) t.conns [] in
  let writes = Hashtbl.fold (fun fd c acc -> if c.out <> [] then fd :: acc else acc) t.conns [] in
  let readable, writable, _ =
    try Unix.select reads writes [] t.cfg.tick_interval_s
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.mem t.listen_fd readable then accept_new t;
  List.iter
    (fun fd ->
      if fd <> t.listen_fd then
        match Hashtbl.find_opt t.conns fd with
        | Some conn -> handle_readable t conn
        | None -> ())
    readable;
  (* One select round is one batcher tick: the deadline that closes an
     under-filled batch is measured in event-loop rounds. *)
  Batcher.tick t.batcher;
  (match t.on_stats with
  | Some f when t.cfg.stats_interval_s > 0.0 ->
      let now = Nv_util.Clock.now_ns () in
      if now -. t.last_stats >= t.cfg.stats_interval_s *. 1e9 then begin
        t.last_stats <- now;
        f (live_stats_json t)
      end
  | Some _ | None -> ());
  Hashtbl.iter (fun _ conn -> maybe_finish_bye t conn) t.conns;
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.conns fd with
      | Some conn -> handle_writable t conn
      | None -> ())
    writable

let stats t =
  {
    clients_served = t.served;
    admitted = Batcher.admitted t.batcher;
    committed = Batcher.committed t.batcher;
    aborted = Batcher.aborted t.batcher;
    rejected = Batcher.rejected t.batcher;
    epochs = Batcher.epochs_run t.batcher;
    protocol_errors = t.protocol_errors;
    digest = 0L;
  }

let finish t =
  (* Drain everything admitted, push the final replies, close up. *)
  Batcher.drain t.batcher;
  Hashtbl.iter (fun _ conn -> maybe_finish_bye t conn) t.conns;
  Hashtbl.iter
    (fun _ conn ->
      List.iter
        (fun b ->
          try ignore (Unix.write conn.fd b 0 (Bytes.length b)) with Unix.Unix_error _ -> ())
        (List.rev conn.out);
      conn.out <- [])
    t.conns;
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (fun c -> close_conn t c) conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.address with
  | `Unix path -> ( try Sys.remove path with Sys_error _ -> ())
  | `Tcp _ -> ());
  let d = digest t in
  { (stats t) with digest = d }

let serve ?tracer ?metrics ?on_stats ~engine ~registry ~tables cfg =
  let t = create ?tracer ?metrics ?on_stats ~engine ~registry ~tables cfg in
  let finished = ref false in
  while not !finished do
    step t;
    if t.shutdown then finished := true
    else if t.cfg.once && t.served > 0 && Hashtbl.length t.conns = 0 then finished := true
  done;
  finish t
