type address = [ `Unix of string | `Tcp of string * int ]

type config = {
  address : address;
  batcher : Batcher.config;
  tick_interval_s : float;
  once : bool;
  stats_interval_s : float;
}

let config ?(batcher = Batcher.config ()) ?(tick_interval_s = 0.002) ?(once = false)
    ?(stats_interval_s = 0.0) address =
  { address; batcher; tick_interval_s; once; stats_interval_s }

type recovery = {
  rec_records : Journal.record list;
  rec_sessions : Journal.session_state list;
  rec_batches_done : int;
}

type stats = {
  clients_served : int;
  admitted : int;
  committed : int;
  aborted : int;
  rejected : int;
  replayed : int;
  epochs : int;
  protocol_errors : int;
  digest : int64;
}

(* Per-connection state: an incremental frame reader in, a frame queue
   out (flushed to completion whenever select reports writability), and
   the batcher client once Hello arrived. [closing] marks a connection
   being flushed for the last time — no more reads; closed once the
   queue drains (or the peer drops). *)
type conn = {
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  out : bytes Queue.t;
  mutable out_off : int;  (** bytes of the head frame already written *)
  mutable client : Batcher.client option;
  mutable owner : int;  (** {!Batcher.owner_token} at this conn's Hello *)
  mutable said_bye : bool;
  mutable closing : bool;
  mutable dead : bool;
}

type t = {
  cfg : config;
  batcher : Batcher.t;
  listen_fd : Unix.file_descr;
  conns : (Unix.file_descr, conn) Hashtbl.t;
  mutable served : int;
  mutable protocol_errors : int;
  mutable shutdown : bool;
  mutable draining : bool;  (** graceful stop: no new admissions *)
  start_wall : float;  (** host wall ns at creation (uptime base) *)
  on_stats : (string -> unit) option;  (** periodic live-stats sink *)
  mutable last_stats : float;  (** wall ns of the last periodic flush *)
}

let bind_listen = function
  | `Unix path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 64;
      fd
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 64;
      fd

let create ?tracer ?metrics ?journal ?on_stats ~shards ~registry ~tables (cfg : config) =
  let batcher =
    Batcher.create ~cfg:cfg.batcher ?tracer ?metrics ?journal ~shards ~registry ~tables ()
  in
  let listen_fd = bind_listen cfg.address in
  Unix.set_nonblock listen_fd;
  let now = Nv_util.Clock.now_ns () in
  {
    cfg;
    batcher;
    listen_fd;
    conns = Hashtbl.create 64;
    served = 0;
    protocol_errors = 0;
    shutdown = false;
    draining = false;
    start_wall = now;
    on_stats;
    last_stats = now;
  }

let push t conn resp =
  ignore t;
  if not conn.dead then Queue.push (Wire.encode_response resp) conn.out

let close_conn t conn =
  if not conn.dead then begin
    conn.dead <- true;
    (* Token-gated: if another connection has since taken this session
       over (last Hello wins), its reply channel must survive our
       close. *)
    (match conn.client with
    | Some c -> Batcher.disconnect ~token:conn.owner t.batcher c
    | None -> ());
    Hashtbl.remove t.conns conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ())
  end

(* Write queued frames until the queue drains or the socket would
   block. Partial writes resume at [out_off] next round; EINTR retries
   immediately; EAGAIN waits for the next select round. A [closing]
   connection is closed once its queue empties. *)
let rec handle_writable t conn =
  if conn.dead then ()
  else if Queue.is_empty conn.out then begin
    if conn.closing then close_conn t conn
  end
  else begin
    let head = Queue.peek conn.out in
    let len = Bytes.length head - conn.out_off in
    match Unix.write conn.fd head conn.out_off len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> handle_writable t conn
    | exception Unix.Unix_error _ -> close_conn t conn
    | n ->
        if n = len then begin
          ignore (Queue.pop conn.out);
          conn.out_off <- 0;
          handle_writable t conn
        end
        else
          (* Partial write: the kernel buffer is full; pushing more now
             would only spin. Resume when select says writable. *)
          conn.out_off <- conn.out_off + n
  end

(* A protocol error costs the connection, but the error frame should
   still reach the peer: queue it, stop reading, and let the write path
   flush-then-close instead of blindly writing into a possibly-full
   socket. *)
let protocol_error t conn msg =
  t.protocol_errors <- t.protocol_errors + 1;
  push t conn (Wire.Server_error msg);
  conn.closing <- true;
  handle_writable t conn

let digest t = Batcher.state_digest t.batcher

(* Live statistics snapshot: serving counters, per-procedure wall
   latency percentiles, and domain-pool telemetry, as one JSON object.
   Everything here is monitoring-grade — wall-clock readings and racy
   telemetry — and never feeds the deterministic metrics registry. *)
let live_stats_json t =
  let module J = Nv_obs.Jsonx in
  let module H = Nv_util.Histogram in
  let uptime_s = (Nv_util.Clock.now_ns () -. t.start_wall) /. 1e9 in
  let lat_json (proc, h) =
    let ms p = H.percentile h p /. 1e6 in
    ( proc,
      J.Assoc
        [
          ("count", J.Int (H.count h));
          ("mean_ms", J.Float (H.mean h /. 1e6));
          ("p50_ms", J.Float (ms 50.0));
          ("p99_ms", J.Float (ms 99.0));
          ("p999_ms", J.Float (ms 99.9));
          ("max_ms", J.Float (H.max_value h /. 1e6));
        ] )
  in
  let procs =
    List.filter (fun (_, h) -> H.count h > 0) (Batcher.proc_latencies t.batcher)
  in
  let shards = Batcher.shard_set t.batcher in
  (* Wide-execution telemetry: batches that ran on more than one domain,
     and the cumulative reasons the rest were forced serial. A routed
     cluster reports zeros — that telemetry lives in the shard
     processes. *)
  let intro = Shard_set.introspect shards in
  let execution =
    J.Assoc
      (("wide_execs", J.Int intro.Nvcaracal.Engine_intf.wide_execs)
      :: List.map (fun (label, n) -> (label, J.Int n)) intro.Nvcaracal.Engine_intf.serial_reasons)
  in
  (* The durability block appears only on journaled servers: the state
     digest and full-image CRC are the chaos harness's oracle inputs,
     and pricing the image scan into every plain [Stats] poll would be
     waste. The pmem CRC exists only with a local engine; a cluster's
     images live in the shard processes, so its oracle is the
     (placement-independent) state digest alone. *)
  let durability =
    match Batcher.journal t.batcher with
    | None -> []
    | Some j ->
        let pmem_crc =
          match Shard_set.local_engine shards with
          | None -> []
          | Some (Nvcaracal.Engine_intf.Packed ((module E), db)) ->
              let pm = E.pmem db in
              let image = Nv_nvmm.Pmem.read_bytes pm ~off:0 ~len:(Nv_nvmm.Pmem.size pm) in
              let crc = Nv_util.Crc32c.bytes image 0 (Bytes.length image) in
              [ ("pmem_crc", J.String (Printf.sprintf "%08lx" crc)) ]
        in
        [
          ( "journal",
            J.Assoc
              [
                ("records", J.Int (Journal.record_count j));
                ("bytes", J.Int (Journal.used_bytes j));
                ("base_batch", J.Int (Journal.base_batch j));
                ("batches_run", J.Int (Batcher.batches_run t.batcher));
              ] );
          ("state_digest", J.String (Printf.sprintf "%016Lx" (digest t)));
        ]
        @ pmem_crc
  in
  J.to_string
    (J.Assoc
       ([
          ("uptime_s", J.Float uptime_s);
          ("clients_connected", J.Int (Hashtbl.length t.conns));
          ("clients_served", J.Int t.served);
          ("sessions", J.Int (Batcher.sessions t.batcher));
          ("admitted", J.Int (Batcher.admitted t.batcher));
          ("committed", J.Int (Batcher.committed t.batcher));
          ("aborted", J.Int (Batcher.aborted t.batcher));
          ("rejected", J.Int (Batcher.rejected t.batcher));
          ("replayed_replies", J.Int (Batcher.replayed_replies t.batcher));
          ("deferred", J.Int (Batcher.deferred_total t.batcher));
          ("pending", J.Int (Batcher.pending t.batcher));
          ("epochs", J.Int (Batcher.epochs_run t.batcher));
          ( "epoch_rate_per_s",
            J.Float
              (if uptime_s > 0.0 then float_of_int (Batcher.epochs_run t.batcher) /. uptime_s
               else 0.0) );
          ("protocol_errors", J.Int t.protocol_errors);
          ("execution", execution);
          ("procs", J.Assoc (List.map lat_json procs));
          ("domains", Nv_obs.Profile.telemetry_json ());
        ]
       @ durability))

(* Bye completes only once every admitted transaction of the
   connection has been answered; then the client sees a state digest
   covering everything it was told about. *)
let maybe_finish_bye t conn =
  match conn.client with
  | Some c when conn.said_bye && Batcher.outstanding c = 0 ->
      push t conn (Wire.Bye_ok { digest = digest t });
      conn.said_bye <- false
  | _ -> ()

let handle_request t conn (req : Wire.request) =
  match (req, conn.client) with
  | Wire.Hello _, Some _ -> protocol_error t conn "duplicate Hello"
  | Wire.Hello { client; version; resume; last_seq = _ }, None ->
      (* The client named its session id: a resume reattaches to the
         session (dedup window intact) and the Hello_ok's [last_acked]
         tells it what to retransmit; a non-resume resets the id. If
         another live connection holds the same session, the session's
         reply channel moves here — last Hello wins. *)
      let version = min version Wire.protocol_version in
      let c =
        Batcher.connect t.batcher ~id:client ~resume
          ~reply:(Some (fun r -> push t conn r))
      in
      conn.client <- Some c;
      conn.owner <- Batcher.owner_token c;
      t.served <- t.served + 1;
      push t conn (Wire.Hello_ok { version; last_acked = Batcher.last_acked c })
  | Wire.Submit _, None -> protocol_error t conn "Submit before Hello"
  | Wire.Submit { req; _ }, Some client when t.draining -> (
      (* Graceful stop: the dedup window still answers first, so a
         retransmit of an already-committed seq gets its original
         outcome (exactly-once survives the shutdown window) and an
         in-flight seq keeps the reply its admission owes. Only
         genuinely new work gets an explicit Overloaded, never silence —
         it will retry against the restarted server. *)
      match Batcher.try_replay t.batcher client ~req with
      | `Replayed _ | `Inflight -> ()
      | `New -> push t conn (Wire.Rejected { req; reason = `Overloaded }))
  | Wire.Submit { req; proc; args }, Some client ->
      if conn.said_bye then protocol_error t conn "Submit after Bye"
      else ignore (Batcher.submit t.batcher client ~req ~proc ~args)
  | Wire.Bye, None -> protocol_error t conn "Bye before Hello"
  | Wire.Bye, Some _ ->
      conn.said_bye <- true;
      maybe_finish_bye t conn
  | Wire.Shutdown, _ -> t.shutdown <- true
  (* Stats needs no Hello: monitoring tools connect, ask, disconnect. *)
  | Wire.Stats, _ -> push t conn (Wire.Stats_ok { json = live_stats_json t })
  (* The shard plane is router-to-shard traffic ({!Shard.serve} owns
     it); on the client endpoint it is as malformed as a bad tag. *)
  | Wire.(Shard_hello _ | Route _ | Fence _), _ ->
      protocol_error t conn "shard-plane frame on a client endpoint"

let handle_readable t conn =
  if conn.closing then ()
  else
    let buf = Bytes.create 65536 in
    match Unix.read conn.fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t conn
    | 0 ->
        (* EOF. Anything left in the reader is a half frame the peer
           abandoned — admitted work still runs (determinism
           commitment), the partial garbage is simply dropped. *)
        close_conn t conn
    | n -> (
        Wire.Reader.feed conn.reader buf ~off:0 ~len:n;
        try
          let continue = ref true in
          while !continue && not conn.dead && not conn.closing do
            match Wire.Reader.next_payload conn.reader with
            | None -> continue := false
            | Some payload -> handle_request t conn (Wire.decode_request payload)
          done
        with Wire.Protocol_error msg -> protocol_error t conn msg)

let accept_new t =
  let continue = ref true in
  while !continue do
    match Unix.accept t.listen_fd with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        continue := false
    | fd, _ ->
        Unix.set_nonblock fd;
        Hashtbl.replace t.conns fd
          {
            fd;
            reader = Wire.Reader.create ();
            out = Queue.create ();
            out_off = 0;
            client = None;
            owner = 0;
            said_bye = false;
            closing = false;
            dead = false;
          }
  done

let step t =
  let reads =
    t.listen_fd
    :: Hashtbl.fold (fun fd c acc -> if c.closing then acc else fd :: acc) t.conns []
  in
  let writes =
    Hashtbl.fold (fun fd c acc -> if not (Queue.is_empty c.out) then fd :: acc else acc) t.conns []
  in
  let readable, writable, _ =
    try Unix.select reads writes [] t.cfg.tick_interval_s
    with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
  in
  if List.mem t.listen_fd readable then accept_new t;
  List.iter
    (fun fd ->
      if fd <> t.listen_fd then
        match Hashtbl.find_opt t.conns fd with
        | Some conn -> handle_readable t conn
        | None -> ())
    readable;
  (* One select round is one batcher tick: the deadline that closes an
     under-filled batch is measured in event-loop rounds. *)
  Batcher.tick t.batcher;
  (match t.on_stats with
  | Some f when t.cfg.stats_interval_s > 0.0 ->
      let now = Nv_util.Clock.now_ns () in
      if now -. t.last_stats >= t.cfg.stats_interval_s *. 1e9 then begin
        t.last_stats <- now;
        f (live_stats_json t)
      end
  | Some _ | None -> ());
  Hashtbl.iter (fun _ conn -> maybe_finish_bye t conn) t.conns;
  List.iter
    (fun fd ->
      match Hashtbl.find_opt t.conns fd with
      | Some conn -> handle_writable t conn
      | None -> ())
    writable

let stats t =
  {
    clients_served = t.served;
    admitted = Batcher.admitted t.batcher;
    committed = Batcher.committed t.batcher;
    aborted = Batcher.aborted t.batcher;
    rejected = Batcher.rejected t.batcher;
    replayed = Batcher.replayed_replies t.batcher;
    epochs = Batcher.epochs_run t.batcher;
    protocol_errors = t.protocol_errors;
    digest = 0L;
  }

(* Push every queued frame out, waiting (bounded) for sockets to drain:
   the final Result/Bye_ok/Rejected frames of a graceful stop should
   reach their clients even if a buffer was momentarily full. *)
let flush_all t ~deadline_s =
  let t0 = Unix.gettimeofday () in
  let pending () =
    Hashtbl.fold (fun fd c acc -> if not (Queue.is_empty c.out) then fd :: acc else acc) t.conns []
  in
  let rec loop () =
    match pending () with
    | [] -> ()
    | fds ->
        if Unix.gettimeofday () -. t0 < deadline_s then begin
          let _, writable, _ =
            try Unix.select [] fds [] 0.05
            with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
          in
          List.iter
            (fun fd ->
              match Hashtbl.find_opt t.conns fd with
              | Some conn -> handle_writable t conn
              | None -> ())
            writable;
          loop ()
        end
  in
  loop ()

let finish t =
  (* Graceful stop: sweep any already-received requests (Submits are
     answered Overloaded in draining mode), drain everything admitted,
     push the final replies, checkpoint if journaled, close up. *)
  t.draining <- true;
  Hashtbl.iter (fun _ conn -> handle_readable t conn) t.conns;
  Batcher.drain t.batcher;
  Hashtbl.iter (fun _ conn -> maybe_finish_bye t conn) t.conns;
  flush_all t ~deadline_s:1.0;
  (* The covering checkpoint makes the journal's truncation point
     durable, so a subsequent --recover replays only what this run had
     not yet checkpointed. Only on a checkpointing cadence, though: a
     zero-cadence journal deliberately keeps full history, which the
     chaos oracle replays end to end. *)
  if t.cfg.batcher.Batcher.checkpoint_every > 0 then ignore (Batcher.checkpoint_now t.batcher);
  (match t.on_stats with
  | Some f when t.cfg.stats_interval_s > 0.0 -> f (live_stats_json t)
  | Some _ | None -> ());
  let conns = Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [] in
  List.iter (fun c -> close_conn t c) conns;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  (match t.cfg.address with
  | `Unix path -> ( try Sys.remove path with Sys_error _ -> ())
  | `Tcp _ -> ());
  let d = digest t in
  { (stats t) with digest = d }

let serve ?tracer ?metrics ?journal ?recovery ?should_stop ?on_stats ~shards ~registry
    ~tables cfg =
  (* Clients can vanish between select and write; take EPIPE on the
     write path (handled as a dropped connection) over SIGPIPE. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = create ?tracer ?metrics ?journal ?on_stats ~shards ~registry ~tables cfg in
  (match recovery with
  | Some r ->
      Batcher.recover t.batcher ~records:r.rec_records ~sessions:r.rec_sessions
        ~batches_done:r.rec_batches_done
  | None -> ());
  let finished = ref false in
  while not !finished do
    step t;
    if t.shutdown then finished := true
    else if match should_stop with Some f -> f () | None -> false then finished := true
    else if t.cfg.once && t.served > 0 && Hashtbl.length t.conns = 0 then finished := true
  done;
  finish t
