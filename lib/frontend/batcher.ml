module Engine_intf = Nvcaracal.Engine_intf
module Metrics = Nv_obs.Metrics
module Tracer = Nv_obs.Tracer

type config = {
  batch_target : int;
  deadline_ticks : int;
  max_pending : int;
}

let config ?(batch_target = 256) ?(deadline_ticks = 8) ?max_pending () =
  if batch_target <= 0 then invalid_arg "Batcher.config: batch_target must be positive";
  if deadline_ticks <= 0 then invalid_arg "Batcher.config: deadline_ticks must be positive";
  let max_pending = match max_pending with Some m -> m | None -> 4 * batch_target in
  if max_pending < batch_target then
    invalid_arg "Batcher.config: max_pending must be >= batch_target";
  { batch_target; deadline_ticks; max_pending }

type entry = {
  e_client : int;
  e_req : int;
  e_txn : Nvcaracal.Txn.t;
  e_call : string * bytes;
  e_submit_tick : int;
  e_wall : float;  (** host wall ns at admission (latency accounting only) *)
  mutable e_close_tick : int;  (** tick of the first batch that included it; -1 until then *)
}

type client = {
  id : int;
  mutable reply : (Wire.response -> unit) option;  (** [None] once disconnected *)
  q : entry Queue.t;
  mutable outstanding : int;  (** admitted, not yet replied *)
}

type t = {
  cfg : config;
  engine : Engine_intf.packed;
  registry : Proc.t;
  tables : Nvcaracal.Table.t list;
  tracer : Tracer.t;
  clients : (int, client) Hashtbl.t;
  mutable next_client : int;
  mutable carryover : entry list;  (** engine-deferred; lead the next batch *)
  mutable pending_total : int;
  mutable tick : int;
  mutable open_since : int;  (** tick the oldest pending txn arrived; -1 when idle *)
  mutable epochs : int;
  mutable admitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable rejected : int;
  mutable deferred_total : int;  (** conflict-victim deferrals, cumulative *)
  mutable batches_rev : (string * bytes) array list;
  (* Per-procedure admission-to-reply wall latency. Deliberately NOT in
     the Metrics registry: registry records must stay deterministic for
     the golden checks, and these are host-time readings. Served to
     monitoring via the Stats wire message instead. *)
  lat_by_proc : (string, Nv_util.Histogram.t) Hashtbl.t;
  m_depth : Metrics.gauge;
  m_queue_wait : Metrics.histogram;
  m_batch_size : Metrics.histogram;
  m_exec_ns : Metrics.histogram;
  m_reply_ticks : Metrics.histogram;
  m_rejected : Metrics.counter;
}

let create ?(cfg = config ()) ?(tracer = Tracer.null) ?(metrics = Metrics.null) ~engine
    ~registry ~tables () =
  {
    cfg;
    engine;
    registry;
    tables;
    tracer;
    clients = Hashtbl.create 64;
    next_client = 0;
    carryover = [];
    pending_total = 0;
    tick = 0;
    open_since = -1;
    epochs = 0;
    admitted = 0;
    committed = 0;
    aborted = 0;
    rejected = 0;
    deferred_total = 0;
    batches_rev = [];
    lat_by_proc = Hashtbl.create 16;
    m_depth = Metrics.gauge metrics "frontend.queue_depth";
    m_queue_wait = Metrics.histogram metrics "frontend.queue_wait_ticks";
    m_batch_size = Metrics.histogram metrics "frontend.batch_size";
    m_exec_ns = Metrics.histogram metrics "frontend.epoch_exec_ns";
    m_reply_ticks = Metrics.histogram metrics "frontend.checkpoint_to_reply_ticks";
    m_rejected = Metrics.counter metrics "frontend.rejected";
  }

let engine t = t.engine
let pending t = t.pending_total
let epochs_run t = t.epochs
let admitted t = t.admitted
let committed t = t.committed
let aborted t = t.aborted
let rejected t = t.rejected
let current_tick t = t.tick
let deferred_total t = t.deferred_total
let admitted_batches t = List.rev t.batches_rev

let proc_latencies t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun proc h acc -> (proc, h) :: acc) t.lat_by_proc [])
let client_id c = c.id
let outstanding c = c.outstanding

let connect t ~reply =
  let id = t.next_client in
  t.next_client <- id + 1;
  let c = { id; reply; q = Queue.create (); outstanding = 0 } in
  Hashtbl.replace t.clients id c;
  c

(* A disconnect never cancels admitted work: the paper's determinism
   contract is that an admitted input is part of its epoch regardless
   of who is still listening. We only drop the reply channel; the
   client record lingers until its queue drains. *)
let disconnect t c =
  c.reply <- None;
  if Queue.is_empty c.q then Hashtbl.remove t.clients c.id

let send c resp = match c.reply with Some f -> f resp | None -> ()

let depth_gauge t = Metrics.set_gauge t.m_depth (float_of_int t.pending_total)

(* Reply to one finished entry; fires only after the entry's epoch has
   been checkpointed by [run]. *)
let reply_entry t e (outcome : [ `Committed | `Aborted ]) =
  (match outcome with
  | `Committed -> t.committed <- t.committed + 1
  | `Aborted -> t.aborted <- t.aborted + 1);
  Metrics.observe t.m_queue_wait (float_of_int (e.e_close_tick - e.e_submit_tick));
  Metrics.observe t.m_reply_ticks (float_of_int (t.tick - e.e_close_tick));
  (let proc = fst e.e_call in
   let h =
     match Hashtbl.find_opt t.lat_by_proc proc with
     | Some h -> h
     | None ->
         let h = Nv_util.Histogram.create () in
         Hashtbl.add t.lat_by_proc proc h;
         h
   in
   Nv_util.Histogram.add h (Nv_util.Clock.now_ns () -. e.e_wall));
  match Hashtbl.find_opt t.clients e.e_client with
  | None -> ()
  | Some c ->
      c.outstanding <- c.outstanding - 1;
      send c (Wire.Result { req = e.e_req; outcome });
      if c.reply = None && Queue.is_empty c.q && c.outstanding = 0 then
        Hashtbl.remove t.clients c.id

(* Form the next batch: engine-deferred carryover first (oldest serial
   order), then round-robin over the per-client FIFOs in client-id
   order — a deterministic function of queue contents, independent of
   hash-table iteration order. *)
let form t =
  let target = max t.cfg.batch_target (List.length t.carryover) in
  let out = ref (List.rev t.carryover) in
  let n = ref (List.length t.carryover) in
  t.carryover <- [];
  let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.clients []) in
  let progress = ref true in
  while !n < target && !progress do
    progress := false;
    List.iter
      (fun id ->
        if !n < target then
          let c = Hashtbl.find t.clients id in
          if not (Queue.is_empty c.q) then begin
            out := Queue.pop c.q :: !out;
            incr n;
            progress := true
          end)
      ids
  done;
  t.pending_total <- t.pending_total - !n;
  Array.of_list (List.rev !out)

let run t =
  let batch = form t in
  if Array.length batch > 0 then begin
    Array.iter (fun e -> e.e_close_tick <- t.tick) batch;
    t.batches_rev <- Array.map (fun e -> e.e_call) batch :: t.batches_rev;
    Metrics.observe t.m_batch_size (float_of_int (Array.length batch));
    let (Engine_intf.Packed ((module E), db)) = t.engine in
    let before = E.total_time_ns db in
    let _stats, _deferred =
      Tracer.span t.tracer ~core:0 ~name:"frontend.batch" ~cat:"frontend" (fun () ->
          E.run_batch db (Array.map (fun e -> e.e_txn) batch))
    in
    Metrics.observe t.m_exec_ns (E.total_time_ns db -. before);
    t.epochs <- t.epochs + 1;
    (* The epoch is checkpointed: outcomes are now visible (section
       6.2.3) and replies may flow. Deferred conflict victims stay
       unanswered and head the next batch under their original order. *)
    let outcomes = E.last_batch_outcomes db in
    let deferred = ref [] in
    Array.iteri
      (fun i e ->
        match outcomes.(i) with
        | `Deferred -> deferred := e :: !deferred
        | (`Committed | `Aborted) as o -> reply_entry t e o)
      batch;
    t.carryover <- List.rev !deferred;
    t.deferred_total <- t.deferred_total + List.length t.carryover;
    t.pending_total <- t.pending_total + List.length t.carryover
  end;
  t.open_since <- (if t.pending_total > 0 then t.tick else -1);
  depth_gauge t

let submit t c ~req ~proc ~args =
  if c.reply = None then invalid_arg "Batcher.submit: disconnected client";
  if t.pending_total >= t.cfg.max_pending then begin
    t.rejected <- t.rejected + 1;
    Metrics.add t.m_rejected 1;
    send c (Wire.Rejected { req; reason = `Overloaded });
    `Rejected `Overloaded
  end
  else
    match Proc.build t.registry ~proc ~args with
    | Error `Unknown_proc ->
        t.rejected <- t.rejected + 1;
        Metrics.add t.m_rejected 1;
        send c (Wire.Rejected { req; reason = `Unknown_proc });
        `Rejected `Unknown_proc
    | Ok txn ->
        let e =
          {
            e_client = c.id;
            e_req = req;
            e_txn = txn;
            e_call = (proc, args);
            e_submit_tick = t.tick;
            e_wall = Nv_util.Clock.now_ns ();
            e_close_tick = -1;
          }
        in
        Queue.push e c.q;
        c.outstanding <- c.outstanding + 1;
        t.admitted <- t.admitted + 1;
        t.pending_total <- t.pending_total + 1;
        if t.open_since < 0 then t.open_since <- t.tick;
        depth_gauge t;
        `Admitted

(* Batches close on ticks, not inside [submit]: submissions arriving
   within one event-loop round pile up (bounded by [max_pending]), and
   the next tick closes a batch once the size target is met or the
   oldest arrival has waited out the deadline. *)
let tick t =
  t.tick <- t.tick + 1;
  if
    t.pending_total >= t.cfg.batch_target
    || (t.pending_total > 0 && t.tick - t.open_since >= t.cfg.deadline_ticks)
  then run t

let flush t = if t.pending_total > 0 then run t

let drain t =
  let guard = ref 0 in
  while t.pending_total > 0 do
    incr guard;
    if !guard > 100_000 then failwith "Batcher.drain: no progress";
    run t
  done

let state_digest t = Nv_harness.Engine.state_digest t.engine ~tables:t.tables
