module Engine_intf = Nvcaracal.Engine_intf
module Metrics = Nv_obs.Metrics
module Tracer = Nv_obs.Tracer
module Pmem = Nv_nvmm.Pmem

type config = {
  batch_target : int;
  deadline_ticks : int;
  max_pending : int;
  dedup_window : int;
  checkpoint_every : int;
}

let config ?(batch_target = 256) ?(deadline_ticks = 8) ?max_pending ?(dedup_window = 4096)
    ?(checkpoint_every = 0) () =
  if batch_target <= 0 then invalid_arg "Batcher.config: batch_target must be positive";
  if deadline_ticks <= 0 then invalid_arg "Batcher.config: deadline_ticks must be positive";
  if dedup_window <= 0 then invalid_arg "Batcher.config: dedup_window must be positive";
  if checkpoint_every < 0 then invalid_arg "Batcher.config: checkpoint_every must be >= 0";
  let max_pending = match max_pending with Some m -> m | None -> 4 * batch_target in
  if max_pending < batch_target then
    invalid_arg "Batcher.config: max_pending must be >= batch_target";
  { batch_target; deadline_ticks; max_pending; dedup_window; checkpoint_every }

type entry = {
  e_client : int;
  e_req : int;  (** the client's sequence number for this call *)
  e_gen : int;  (** session generation at admission; replies need a match *)
  e_txn : Nvcaracal.Txn.t;
  e_call : string * bytes;
  e_submit_tick : int;
  e_wall : float;  (** host wall ns at admission (latency accounting only) *)
  mutable e_close_tick : int;  (** tick of the first batch that included it; -1 until then *)
}

(* A client is a session, not a connection: it survives disconnects so
   a reconnect with [resume] finds its dedup window and last-acked seq
   intact. [gen] counts fresh (non-resume) restarts of the id; replies
   for entries admitted under an older generation are suppressed. *)
type client = {
  id : int;
  mutable gen : int;
  mutable reply : (Wire.response -> unit) option;  (** [None] while disconnected *)
  mutable owner : int;  (** bumped per attach; stale connections hold old tokens *)
  q : entry Queue.t;
  mutable outstanding : int;  (** admitted, not yet replied (current gen) *)
  mutable last_acked : int;  (** highest acknowledged seq *)
  window : (int, [ `Committed | `Aborted ]) Hashtbl.t;  (** acked seq -> outcome *)
  order : int Queue.t;  (** window eviction order (ack order) *)
  inflight : (int, unit) Hashtbl.t;  (** admitted seqs awaiting their outcome *)
}

type t = {
  cfg : config;
  shards : Shard_set.t;
  registry : Proc.t;
  tables : Nvcaracal.Table.t list;
  tracer : Tracer.t;
  journal : Journal.t option;
  clients : (int, client) Hashtbl.t;
  mutable next_client : int;
  mutable carryover : entry list;  (** engine-deferred; lead the next batch *)
  mutable pending_total : int;
  mutable tick : int;
  mutable open_since : int;  (** tick the oldest pending txn arrived; -1 when idle *)
  mutable epochs : int;
  mutable batches_run : int;  (** total batches executed, replayed ones included *)
  mutable last_checkpoint : int;  (** batches covered by the last durable checkpoint *)
  mutable admitted : int;
  mutable committed : int;
  mutable aborted : int;
  mutable rejected : int;
  mutable replayed : int;  (** retries answered from the dedup window *)
  mutable deferred_total : int;  (** conflict-victim deferrals, cumulative *)
  mutable batches_rev : (string * bytes) array list;
  (* Per-procedure admission-to-reply wall latency. Deliberately NOT in
     the Metrics registry: registry records must stay deterministic for
     the golden checks, and these are host-time readings. Served to
     monitoring via the Stats wire message instead. *)
  lat_by_proc : (string, Nv_util.Histogram.t) Hashtbl.t;
  m_depth : Metrics.gauge;
  m_queue_wait : Metrics.histogram;
  m_batch_size : Metrics.histogram;
  m_exec_ns : Metrics.histogram;
  m_reply_ticks : Metrics.histogram;
  m_rejected : Metrics.counter;
}

let create ?(cfg = config ()) ?(tracer = Tracer.null) ?(metrics = Metrics.null) ?journal
    ~shards ~registry ~tables () =
  if cfg.checkpoint_every > 0 && journal = None then
    invalid_arg "Batcher.create: checkpoint_every needs a journal";
  if cfg.checkpoint_every > 0 && Shard_set.local_engine shards = None then
    (* A checkpoint is one engine's pmem image; a routed cluster has no
       such image here — its durability is each shard's own journal. *)
    invalid_arg "Batcher.create: checkpointing is single-shard only (cluster mode replays)";
  {
    cfg;
    shards;
    registry;
    tables;
    tracer;
    journal;
    clients = Hashtbl.create 64;
    next_client = 0;
    carryover = [];
    pending_total = 0;
    tick = 0;
    open_since = -1;
    epochs = 0;
    batches_run = 0;
    last_checkpoint = 0;
    admitted = 0;
    committed = 0;
    aborted = 0;
    rejected = 0;
    replayed = 0;
    deferred_total = 0;
    batches_rev = [];
    lat_by_proc = Hashtbl.create 16;
    m_depth = Metrics.gauge metrics "frontend.queue_depth";
    m_queue_wait = Metrics.histogram metrics "frontend.queue_wait_ticks";
    m_batch_size = Metrics.histogram metrics "frontend.batch_size";
    m_exec_ns = Metrics.histogram metrics "frontend.epoch_exec_ns";
    m_reply_ticks = Metrics.histogram metrics "frontend.checkpoint_to_reply_ticks";
    m_rejected = Metrics.counter metrics "frontend.rejected";
  }

let shard_set t = t.shards

let engine t =
  match Shard_set.local_engine t.shards with
  | Some e -> e
  | None -> invalid_arg "Batcher.engine: cluster-backed batcher has no local engine"

let pending t = t.pending_total
let epochs_run t = t.epochs
let admitted t = t.admitted
let committed t = t.committed
let aborted t = t.aborted
let rejected t = t.rejected
let replayed_replies t = t.replayed
let current_tick t = t.tick
let deferred_total t = t.deferred_total
let admitted_batches t = List.rev t.batches_rev
let batches_run t = t.batches_run
let journal t = t.journal
let sessions t = Hashtbl.length t.clients
let carryover_len t = List.length t.carryover

let queued t =
  Hashtbl.fold (fun _ c acc -> acc + Queue.length c.q) t.clients 0

let proc_latencies t =
  List.sort
    (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun proc h acc -> (proc, h) :: acc) t.lat_by_proc [])
let client_id c = c.id
let outstanding c = c.outstanding
let last_acked c = c.last_acked

let fresh_session id reply =
  {
    id;
    gen = 0;
    reply;
    owner = 0;
    q = Queue.create ();
    outstanding = 0;
    last_acked = 0;
    window = Hashtbl.create 64;
    order = Queue.create ();
    inflight = Hashtbl.create 16;
  }

let connect ?id ?(resume = false) t ~reply =
  let id =
    match id with
    | Some i ->
        if i < 0 then invalid_arg "Batcher.connect: negative client id";
        i
    | None ->
        while Hashtbl.mem t.clients t.next_client do
          t.next_client <- t.next_client + 1
        done;
        let i = t.next_client in
        t.next_client <- i + 1;
        i
  in
  match Hashtbl.find_opt t.clients id with
  | Some c when resume ->
      c.reply <- reply;
      c.owner <- c.owner + 1;
      c
  | Some c ->
      (* A fresh (non-resume) start on a known id resets the session:
         new generation, empty dedup state. Entries admitted under the
         old generation still execute (admission is a determinism
         commitment) but their replies are suppressed. *)
      c.gen <- c.gen + 1;
      c.reply <- reply;
      c.owner <- c.owner + 1;
      Hashtbl.reset c.window;
      Queue.clear c.order;
      Hashtbl.reset c.inflight;
      c.last_acked <- 0;
      c.outstanding <- 0;
      c
  | None ->
      let c = fresh_session id reply in
      Hashtbl.replace t.clients id c;
      c

(* A disconnect never cancels admitted work, and it no longer forgets
   the session either: the dedup window must survive so a reconnect
   with [resume] gets exactly-once semantics. Only the reply channel
   drops — and only if it still belongs to the disconnecting attach:
   last-Hello-wins takeover means a stale connection's late close must
   not clobber the channel the session's live connection just
   installed. *)
let owner_token c = c.owner

let disconnect ?token _t c =
  match token with
  | Some tok when tok <> c.owner -> ()
  | Some _ | None -> c.reply <- None

let send c resp = match c.reply with Some f -> f resp | None -> ()

let depth_gauge t = Metrics.set_gauge t.m_depth (float_of_int t.pending_total)

(* Record an acknowledged outcome in the session's dedup window. *)
let ack t c seq outcome =
  Hashtbl.remove c.inflight seq;
  if not (Hashtbl.mem c.window seq) then begin
    Hashtbl.replace c.window seq outcome;
    Queue.push seq c.order;
    if Queue.length c.order > t.cfg.dedup_window then begin
      let oldest = Queue.pop c.order in
      Hashtbl.remove c.window oldest
    end
  end;
  if seq > c.last_acked then c.last_acked <- seq

(* Reply to one finished entry; fires only after the entry's epoch has
   been checkpointed by [exec_batch]. *)
let reply_entry t e (outcome : [ `Committed | `Aborted ]) =
  (match outcome with
  | `Committed -> t.committed <- t.committed + 1
  | `Aborted -> t.aborted <- t.aborted + 1);
  Metrics.observe t.m_queue_wait (float_of_int (e.e_close_tick - e.e_submit_tick));
  Metrics.observe t.m_reply_ticks (float_of_int (t.tick - e.e_close_tick));
  (let proc = fst e.e_call in
   let h =
     match Hashtbl.find_opt t.lat_by_proc proc with
     | Some h -> h
     | None ->
         let h = Nv_util.Histogram.create () in
         Hashtbl.add t.lat_by_proc proc h;
         h
   in
   Nv_util.Histogram.add h (Nv_util.Clock.now_ns () -. e.e_wall));
  match Hashtbl.find_opt t.clients e.e_client with
  | None -> ()
  | Some c ->
      if e.e_gen = c.gen then begin
        c.outstanding <- c.outstanding - 1;
        ack t c e.e_req outcome;
        send c (Wire.Result { req = e.e_req; outcome })
      end

(* Form the next batch: engine-deferred carryover first (oldest serial
   order), then round-robin over the per-client FIFOs in client-id
   order — a deterministic function of queue contents, independent of
   hash-table iteration order. *)
let form t =
  let target = max t.cfg.batch_target (List.length t.carryover) in
  let out = ref (List.rev t.carryover) in
  let n = ref (List.length t.carryover) in
  t.carryover <- [];
  let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.clients []) in
  let progress = ref true in
  while !n < target && !progress do
    progress := false;
    List.iter
      (fun id ->
        if !n < target then
          let c = Hashtbl.find t.clients id in
          if not (Queue.is_empty c.q) then begin
            out := Queue.pop c.q :: !out;
            incr n;
            progress := true
          end)
      ids
  done;
  t.pending_total <- t.pending_total - !n;
  Array.of_list (List.rev !out)

(* Execute one formed batch as an engine epoch and fire its replies.
   Shared between live serving and journal replay — recovery runs the
   exact code an uncrashed server ran, which is what makes the
   replayed pmem image bit-identical. *)
let exec_batch t batch =
  Array.iter (fun e -> e.e_close_tick <- t.tick) batch;
  t.batches_rev <- Array.map (fun e -> e.e_call) batch :: t.batches_rev;
  Metrics.observe t.m_batch_size (float_of_int (Array.length batch));
  let calls =
    Array.map
      (fun e ->
        let proc, args = e.e_call in
        { Shard_set.c_client = e.e_client; c_seq = e.e_req; c_proc = proc; c_args = args;
          c_txn = e.e_txn })
      batch
  in
  let before = Shard_set.total_time_ns t.shards in
  let outcomes =
    Tracer.span t.tracer ~core:0 ~name:"frontend.batch" ~cat:"frontend" (fun () ->
        Shard_set.exec t.shards calls)
  in
  Metrics.observe t.m_exec_ns (Shard_set.total_time_ns t.shards -. before);
  t.epochs <- t.epochs + 1;
  t.batches_run <- t.batches_run + 1;
  (* The epoch is checkpointed: outcomes are now visible (section
     6.2.3) and replies may flow. Deferred conflict victims stay
     unanswered and head the next batch under their original order. *)
  Nv_util.Crashpoint.hit "pre-reply";
  let deferred = ref [] in
  Array.iteri
    (fun i e ->
      match outcomes.(i) with
      | `Deferred -> deferred := e :: !deferred
      | (`Committed | `Aborted) as o -> reply_entry t e o)
    batch;
  t.carryover <- List.rev !deferred;
  t.deferred_total <- t.deferred_total + List.length t.carryover;
  t.pending_total <- t.pending_total + List.length t.carryover

let session_states t =
  let ids = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.clients []) in
  List.map
    (fun id ->
      let c = Hashtbl.find t.clients id in
      let window =
        Queue.fold (fun acc seq -> (seq, Hashtbl.find c.window seq) :: acc) [] c.order
        |> List.rev
      in
      { Journal.ss_client = id; ss_last_acked = c.last_acked; ss_window = window })
    ids

(* Checkpoint: engine pmem image + session table, durable before the
   journal truncates to the covering batch. Only when no carryover is
   outstanding — a deferred entry's call lives only in journal records,
   and the truncation must never orphan it. *)
let checkpoint_now t =
  match t.journal with
  | None -> false
  | Some j ->
      if t.carryover <> [] then false
      else begin
        match Shard_set.local_engine t.shards with
        | None -> false
        | Some (Engine_intf.Packed ((module E), db)) ->
        let pm = E.pmem db in
        let image = Pmem.read_bytes pm ~off:0 ~len:(Pmem.size pm) in
        Journal.write_checkpoint j ~batches:t.batches_run ~sessions:(session_states t) ~image;
        Journal.truncate_to j ~batch:t.batches_run;
        t.last_checkpoint <- t.batches_run;
        true
      end

let maybe_checkpoint t =
  if
    t.cfg.checkpoint_every > 0
    && t.batches_run - t.last_checkpoint >= t.cfg.checkpoint_every
  then ignore (checkpoint_now t)

let run t =
  let batch = form t in
  if Array.length batch > 0 then begin
    Nv_util.Crashpoint.hit "post-admit";
    (match t.journal with
    | Some j ->
        let entries =
          List.map
            (fun e ->
              let proc, args = e.e_call in
              { Journal.j_client = e.e_client; j_seq = e.e_req;
                j_call = Proc.encode_call ~proc ~args })
            (Array.to_list batch)
        in
        Journal.append j ~batch:t.batches_run ~entries;
        Nv_util.Crashpoint.hit "post-journal"
    | None -> ());
    exec_batch t batch;
    maybe_checkpoint t
  end;
  t.open_since <- (if t.pending_total > 0 then t.tick else -1);
  depth_gauge t

(* A submit on a disconnected session (reply = None) is admitted
   normally — [send] just drops the replies. It happens when a stale
   connection outlives a takeover: the work executes, the outcome lands
   in the dedup window, and the session's next resume replays it.
   Raising here would let one confused client kill the event loop. *)
let submit t c ~req ~proc ~args =
  match Hashtbl.find_opt c.window req with
  | Some o ->
      (* Exactly-once: a retry of an acknowledged seq returns the
         original outcome from the dedup window, never re-executes. *)
      t.replayed <- t.replayed + 1;
      send c (Wire.Result { req; outcome = o });
      `Replayed o
  | None ->
      if Hashtbl.mem c.inflight req then
        (* Already admitted and still executing: the original reply
           will answer this seq; sending nothing avoids duplicates. *)
        `Duplicate
      else if t.pending_total >= t.cfg.max_pending then begin
        t.rejected <- t.rejected + 1;
        Metrics.add t.m_rejected 1;
        send c (Wire.Rejected { req; reason = `Overloaded });
        `Rejected `Overloaded
      end
      else
        match Proc.build t.registry ~proc ~args with
        | Error `Unknown_proc ->
            t.rejected <- t.rejected + 1;
            Metrics.add t.m_rejected 1;
            send c (Wire.Rejected { req; reason = `Unknown_proc });
            `Rejected `Unknown_proc
        | Ok txn ->
            let e =
              {
                e_client = c.id;
                e_req = req;
                e_gen = c.gen;
                e_txn = txn;
                e_call = (proc, args);
                e_submit_tick = t.tick;
                e_wall = Nv_util.Clock.now_ns ();
                e_close_tick = -1;
              }
            in
            Queue.push e c.q;
            Hashtbl.replace c.inflight req ();
            c.outstanding <- c.outstanding + 1;
            t.admitted <- t.admitted + 1;
            t.pending_total <- t.pending_total + 1;
            if t.open_since < 0 then t.open_since <- t.tick;
            depth_gauge t;
            `Admitted

(* Non-admitting probe for a draining server: retries of acknowledged
   seqs still replay their original outcome (exactly-once survives the
   shutdown window), in-flight seqs are left to the reply their
   admission already owes, and only a genuinely new seq is reported
   back for the caller to reject. *)
let try_replay t c ~req =
  match Hashtbl.find_opt c.window req with
  | Some o ->
      t.replayed <- t.replayed + 1;
      send c (Wire.Result { req; outcome = o });
      `Replayed o
  | None -> if Hashtbl.mem c.inflight req then `Inflight else `New

(* Batches close on ticks, not inside [submit]: submissions arriving
   within one event-loop round pile up (bounded by [max_pending]), and
   the next tick closes a batch once the size target is met or the
   oldest arrival has waited out the deadline. *)
let tick t =
  t.tick <- t.tick + 1;
  if
    t.pending_total >= t.cfg.batch_target
    || (t.pending_total > 0 && t.tick - t.open_since >= t.cfg.deadline_ticks)
  then run t

let flush t = if t.pending_total > 0 then run t

let drain t =
  let guard = ref 0 in
  while t.pending_total > 0 do
    incr guard;
    if !guard > 100_000 then failwith "Batcher.drain: no progress";
    run t
  done

let state_digest t = Shard_set.digest t.shards

(* ------------------------------------------------------------------ *)
(* Restart recovery                                                    *)

(* Replay journaled batches the crash un-happened, in admission order,
   through the same [exec_batch] the live path uses. [batches_done] is
   how many batches the starting engine image already covers (0 for a
   fresh engine, the checkpoint's count otherwise); records below it
   are skipped, records above it must be gapless. Sessions restored
   from a checkpoint come in via [sessions]; replayed outcomes then
   re-ack on top, so the dedup windows end exactly where the crashed
   server's were. *)
let recover t ~records ~sessions:restored ~batches_done =
  if t.admitted > 0 || t.batches_rev <> [] then
    invalid_arg "Batcher.recover: batcher already has traffic";
  (* Replay is repair, not live serving: armed crashpoints stay quiet,
     else a countdown shorter than the replayed tail would crash-loop
     every recovery attempt. *)
  Nv_util.Crashpoint.suppress @@ fun () ->
  List.iter
    (fun (ss : Journal.session_state) ->
      let c = fresh_session ss.Journal.ss_client None in
      c.last_acked <- ss.Journal.ss_last_acked;
      List.iter
        (fun (seq, o) ->
          Hashtbl.replace c.window seq o;
          Queue.push seq c.order)
        ss.Journal.ss_window;
      Hashtbl.replace t.clients c.id c;
      t.next_client <- max t.next_client (c.id + 1))
    restored;
  t.batches_run <- batches_done;
  t.last_checkpoint <- batches_done;
  List.iter
    (fun (r : Journal.record) ->
      if r.Journal.r_batch >= batches_done then begin
        if r.Journal.r_batch <> t.batches_run then
          failwith
            (Printf.sprintf "Batcher.recover: journal gap (record %d, expected %d)"
               r.Journal.r_batch t.batches_run);
        let batch =
          Array.of_list
            (List.map
               (fun (je : Journal.entry) ->
                 let proc, args =
                   match Proc.decode_call je.Journal.j_call with
                   | Some pa -> pa
                   | None -> failwith "Batcher.recover: corrupt journaled call"
                 in
                 let txn = Proc.rebuild t.registry je.Journal.j_call in
                 let c =
                   match Hashtbl.find_opt t.clients je.Journal.j_client with
                   | Some c -> c
                   | None ->
                       let c = fresh_session je.Journal.j_client None in
                       Hashtbl.replace t.clients c.id c;
                       t.next_client <- max t.next_client (c.id + 1);
                       c
                 in
                 (* Carryover re-admissions appear in consecutive
                    records under the same seq: count each admission
                    once, keyed by the in-flight set. *)
                 if not (Hashtbl.mem c.inflight je.Journal.j_seq) then begin
                   Hashtbl.replace c.inflight je.Journal.j_seq ();
                   c.outstanding <- c.outstanding + 1;
                   t.admitted <- t.admitted + 1
                 end;
                 {
                   e_client = je.Journal.j_client;
                   e_req = je.Journal.j_seq;
                   e_gen = 0;
                   e_txn = txn;
                   e_call = (proc, args);
                   e_submit_tick = t.tick;
                   e_wall = Nv_util.Clock.now_ns ();
                   e_close_tick = -1;
                 })
               r.Journal.r_entries)
        in
        exec_batch t batch
      end)
    records;
  (* Entries the final journaled batch deferred are live carryover:
     still in flight, first in the next batch — exactly the state of
     the crashed server after its last completed epoch. *)
  t.open_since <- (if t.pending_total > 0 then t.tick else -1);
  depth_gauge t
