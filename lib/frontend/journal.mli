(** Durable admission journal: the serving pipeline's crash story.

    The batcher persists every batch it is about to run — the framed
    calls plus their [(client, seq)] headers — into a pmem-backed,
    CRC-guarded journal region {e before} the engine executes it.
    After a kill-9, [nvdb serve --recover] replays the journaled
    batches in admission order through a fresh (or checkpoint-restored)
    engine; deterministic replay reproduces the exact pmem image an
    uncrashed server would hold, so the input log — not the client —
    remains the durability story across the process boundary.

    Layout follows the layout-v2 discipline: a header of packed
    self-checking words (distinct salts per role), then framed records
    [[u32 len][u32 crc32c][payload]] appended tail-first — record bytes
    are persisted {e before} the header's used-word advances, so a torn
    append is invisible (NVTraverse's "destination, not journey"). The
    simulated region is mirrored to a real file at every append: the
    simulator's pmem lives in process memory, so surviving a real
    SIGKILL needs a real file standing in for the NVDIMM.

    A checkpoint (engine pmem image + session table, written to
    [path.ckpt] via tmp+rename) bounds replay; the journal is truncated
    to the covering batch only once the checkpoint file is durable. *)

type t

type entry = { j_client : int; j_seq : int; j_call : bytes }
(** One admitted call: session id, client sequence number, and the
    framed call record ({!Proc.encode_call}). *)

type record = { r_batch : int; r_entries : entry list }
(** One journaled batch, in admission order (carryover re-admissions
    included, exactly as the batch was formed). *)

type session_state = {
  ss_client : int;
  ss_last_acked : int;
  ss_window : (int * [ `Committed | `Aborted ]) list;
      (** acked [seq -> outcome] dedup window, oldest first *)
}

type checkpoint = {
  ck_batches : int;  (** batches the image covers (journal batches [< ck_batches] are dead) *)
  ck_sessions : session_state list;
  ck_image : bytes;  (** the engine's full pmem image at the checkpoint *)
}

type opened = {
  journal : t;
  records : record list;  (** CRC-valid records, admission order *)
  torn_tail : bool;  (** a torn/corrupt tail was discarded *)
  checkpoint : checkpoint option;
}

val create : ?size:int -> ?path:string -> meta:string -> unit -> t
(** Fresh journal region (default 8 MiB). [meta] fingerprints the
    serving configuration (workload, engine, seed); {!load} refuses a
    journal whose meta does not match, so replay never runs against the
    wrong dataset. Without [path] the journal is in-memory only (tests);
    with [path] the file is created/truncated and mirrored on every
    append. Raises [Failure] if [meta] exceeds 255 bytes. *)

val load : path:string -> meta:string -> opened
(** Reopen a mirrored journal file: validate header and meta, scan the
    CRC-guarded records (stopping at — and healing — any torn tail),
    and load the covering checkpoint from [path.ckpt] if one is valid.
    Raises [Failure] on a missing/corrupt header or a meta mismatch. *)

val append : t -> batch:int -> entries:entry list -> unit
(** Persist one batch record: record bytes flushed and fenced first,
    then the header's used-word, then the file mirror (fsync'd). On
    return the record survives kill-9. Raises [Failure] when the region
    is full (size the journal up or enable checkpointing). *)

val write_checkpoint : t -> batches:int -> sessions:session_state list -> image:bytes -> unit
(** Write a covering checkpoint durably ([path.ckpt], tmp+rename,
    fsync before rename). The journal itself is not touched — call
    {!truncate_to} after this returns. *)

val truncate_to : t -> batch:int -> unit
(** Drop records with [r_batch < batch] (they are covered by a durable
    checkpoint) and compact the survivors to the front of the region;
    mirror and fsync. Safe against kill-9 at any point: the checkpoint
    already covers everything dropped. *)

val record_count : t -> int
val base_batch : t -> int
(** Lowest batch index the record area may still hold. *)

val used_bytes : t -> int
val size : t -> int
val path : t -> string option
val close : t -> unit

(** {2 Test seams} *)

val pmem : t -> Nv_nvmm.Pmem.t
(** The backing region — tests assert the persistence discipline
    (no dirty lines after {!append}) and build torn tails directly. *)

val records_offset : int
(** Byte offset of the record area (header + meta precede it). *)

val rescan : t -> record list * bool
(** Re-derive [(records, torn_tail)] from the region contents, as a
    fresh {!load} of the same bytes would. *)
