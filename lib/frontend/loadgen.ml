module Rng = Nv_util.Rng

type config = {
  address : Server.address;
  clients : int;
  txns_per_client : int;
  seed : int;
  window : int;
  think_ticks : int;
  shutdown : bool;
}

let config ?(clients = 8) ?(txns_per_client = 100) ?(seed = 42) ?(window = 1)
    ?(think_ticks = 0) ?(shutdown = false) address =
  if clients <= 0 then invalid_arg "Loadgen.config: clients must be positive";
  if window <= 0 then invalid_arg "Loadgen.config: window must be positive";
  { address; clients; txns_per_client; seed; window; think_ticks; shutdown }

type stats = {
  sent : int;
  committed : int;
  aborted : int;
  rejected : int;
  protocol_errors : int;
  digests : int64 list;  (** per-client [Bye_ok] digests, client order *)
  latency : Nv_util.Histogram.t;  (** client-observed submit-to-answer wall ns *)
}

type phase = Awaiting_hello | Running | Awaiting_bye | Done

type client = {
  id : int;
  fd : Unix.file_descr;
  reader : Wire.Reader.t;
  rng : Rng.t;
  mutable phase : phase;
  mutable sent : int;
  mutable acked : int;
  mutable inflight : int;
  mutable think : int;  (** ticks to wait before the next send *)
  mutable committed : int;
  mutable aborted : int;
  mutable rejected : int;
  mutable errors : int;
  mutable digest : int64;
  sent_wall : (int, float) Hashtbl.t;  (** in-flight req -> wall ns at send *)
  latency : Nv_util.Histogram.t;  (** submit-to-answer wall ns, this client *)
}

let connect_fd = function
  | `Unix path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      fd
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ignore (Unix.select [] [ fd ] [] 0.05)
  done

let send c req = write_all c.fd (Wire.encode_request req)

(* Each client draws its own deterministic call stream: seed+id, so a
   rerun against the same server replays identical submissions. *)
let make_client cfg i =
  {
    id = i;
    fd = connect_fd cfg.address;
    reader = Wire.Reader.create ();
    rng = Rng.create (cfg.seed + i);
    phase = Awaiting_hello;
    sent = 0;
    acked = 0;
    inflight = 0;
    think = 0;
    committed = 0;
    aborted = 0;
    rejected = 0;
    errors = 0;
    digest = 0L;
    sent_wall = Hashtbl.create 16;
    latency = Nv_util.Histogram.create ();
  }

(* Closed-loop pump: keep [window] calls in flight, pausing
   [think_ticks] loop rounds after each completion. A rejected call
   counts as answered — the generator does not resubmit, it reports. *)
let pump cfg (w : Nv_workloads.Workload.t) c =
  if c.phase = Running then begin
    if c.think > 0 then c.think <- c.think - 1
    else begin
      while c.sent < cfg.txns_per_client && c.inflight < cfg.window do
        let proc, args = w.gen_call c.rng in
        Hashtbl.replace c.sent_wall c.sent (Nv_util.Clock.now_ns ());
        send c (Wire.Submit { req = c.sent; proc; args });
        c.sent <- c.sent + 1;
        c.inflight <- c.inflight + 1
      done;
      if c.sent >= cfg.txns_per_client && c.acked >= cfg.txns_per_client then begin
        send c Wire.Bye;
        c.phase <- Awaiting_bye
      end
    end
  end

let observe_latency c req =
  match Hashtbl.find_opt c.sent_wall req with
  | Some t0 ->
      Hashtbl.remove c.sent_wall req;
      Nv_util.Histogram.add c.latency (Nv_util.Clock.now_ns () -. t0)
  | None -> ()

let on_response cfg (c : client) (resp : Wire.response) =
  match (resp, c.phase) with
  | Wire.Hello_ok, Awaiting_hello -> c.phase <- Running
  | Wire.Result { req; outcome }, (Running | Awaiting_bye) ->
      c.inflight <- c.inflight - 1;
      c.acked <- c.acked + 1;
      c.think <- cfg.think_ticks;
      observe_latency c req;
      (match outcome with
      | `Committed -> c.committed <- c.committed + 1
      | `Aborted -> c.aborted <- c.aborted + 1)
  | Wire.Rejected { req; _ }, (Running | Awaiting_bye) ->
      c.inflight <- c.inflight - 1;
      c.acked <- c.acked + 1;
      c.think <- cfg.think_ticks;
      observe_latency c req;
      c.rejected <- c.rejected + 1
  | Wire.Bye_ok { digest }, Awaiting_bye ->
      c.digest <- digest;
      c.phase <- Done;
      (try Unix.close c.fd with Unix.Unix_error _ -> ())
  | Wire.Server_error _, _ ->
      c.errors <- c.errors + 1;
      c.phase <- Done;
      (try Unix.close c.fd with Unix.Unix_error _ -> ())
  | _ ->
      c.errors <- c.errors + 1;
      c.phase <- Done;
      (try Unix.close c.fd with Unix.Unix_error _ -> ())

let drain_input cfg c =
  let buf = Bytes.create 65536 in
  match Unix.read c.fd buf 0 (Bytes.length buf) with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ ->
      c.errors <- c.errors + 1;
      c.phase <- Done
  | 0 -> if c.phase <> Done then (c.errors <- c.errors + 1; c.phase <- Done)
  | n -> (
      Wire.Reader.feed c.reader buf ~off:0 ~len:n;
      try
        let continue = ref true in
        while !continue && c.phase <> Done do
          match Wire.Reader.next_payload c.reader with
          | None -> continue := false
          | Some payload -> on_response cfg c (Wire.decode_response payload)
        done
      with Wire.Protocol_error _ ->
        c.errors <- c.errors + 1;
        c.phase <- Done;
        (try Unix.close c.fd with Unix.Unix_error _ -> ()))

let run cfg (w : Nv_workloads.Workload.t) =
  let clients = Array.init cfg.clients (fun i -> make_client cfg i) in
  Array.iter
    (fun c ->
      Unix.set_nonblock c.fd;
      send c (Wire.Hello { client = c.id }))
    clients;
  let all_done () = Array.for_all (fun c -> c.phase = Done) clients in
  while not (all_done ()) do
    let fds =
      Array.to_list clients
      |> List.filter_map (fun c -> if c.phase = Done then None else Some c.fd)
    in
    let readable, _, _ =
      try Unix.select fds [] [] 0.01 with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Array.iter (fun c -> if c.phase <> Done && List.mem c.fd readable then drain_input cfg c) clients;
    Array.iter (fun c -> pump cfg w c) clients
  done;
  if cfg.shutdown then begin
    let fd = connect_fd cfg.address in
    write_all fd (Wire.encode_request Wire.Shutdown);
    (try Unix.close fd with Unix.Unix_error _ -> ())
  end;
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 clients in
  {
    sent = sum (fun c -> c.sent);
    committed = sum (fun c -> c.committed);
    aborted = sum (fun c -> c.aborted);
    rejected = sum (fun c -> c.rejected);
    protocol_errors = sum (fun c -> c.errors);
    digests = Array.to_list (Array.map (fun c -> c.digest) clients);
    latency =
      Array.fold_left
        (fun acc c -> Nv_util.Histogram.merge acc c.latency)
        (Nv_util.Histogram.create ()) clients;
  }
