module Rng = Nv_util.Rng

type config = {
  address : Server.address;
  clients : int;
  txns_per_client : int;
  seed : int;
  window : int;
  think_ticks : int;
  shutdown : bool;
  reconnect : bool;
  retry_timeout_s : float;
}

let config ?(clients = 8) ?(txns_per_client = 100) ?(seed = 42) ?(window = 1)
    ?(think_ticks = 0) ?(shutdown = false) ?(reconnect = false) ?(retry_timeout_s = 30.0)
    address =
  if clients <= 0 then invalid_arg "Loadgen.config: clients must be positive";
  if window <= 0 then invalid_arg "Loadgen.config: window must be positive";
  if retry_timeout_s <= 0.0 then invalid_arg "Loadgen.config: retry_timeout_s must be positive";
  { address; clients; txns_per_client; seed; window; think_ticks; shutdown; reconnect;
    retry_timeout_s }

type stats = {
  sent : int;
  committed : int;
  aborted : int;
  rejected : int;
  protocol_errors : int;
  reconnects : int;
  duplicates : int;
  digests : int64 list;  (** per-client [Bye_ok] digests, client order *)
  latency : Nv_util.Histogram.t;  (** client-observed submit-to-answer wall ns *)
}

type phase = Backoff | Awaiting_hello | Running | Awaiting_bye | Done

exception Conn_lost

type client = {
  id : int;
  mutable fd : Unix.file_descr option;  (** [None] while disconnected *)
  mutable reader : Wire.Reader.t;
  rng : Rng.t;
  brng : Rng.t;
      (** backoff jitter — a separate stream, so reconnects never
          perturb the deterministic call stream drawn from [rng] *)
  mutable phase : phase;
  mutable sent : int;  (** unique calls generated; also the last seq used *)
  mutable inflight : int;
  mutable think : int;  (** ticks to wait before the next send *)
  mutable committed : int;
  mutable aborted : int;
  mutable rejected : int;
  mutable errors : int;
  mutable digest : int64;
  unacked : (int, string * bytes) Hashtbl.t;
      (** seq -> call, kept until answered; what a resume retransmits *)
  mutable max_acked : int;  (** highest seq seen answered (Hello's last_seq) *)
  mutable reconnects : int;
  mutable duplicates : int;  (** answers for already-answered seqs *)
  mutable connected_once : bool;
  mutable attempts : int;  (** consecutive failed (re)connect attempts *)
  mutable wake_at : float;  (** wall s of the next reconnect attempt *)
  mutable down_since : float;  (** wall s the connection dropped; -1 while up *)
  sent_wall : (int, float) Hashtbl.t;  (** in-flight seq -> wall ns at send *)
  latency : Nv_util.Histogram.t;  (** submit-to-answer wall ns, this client *)
}

(* A failed connect must close the socket it opened: the reconnect path
   swallows the error and backs off, and against a crash-looping server
   the leaked descriptors would otherwise climb past FD_SETSIZE and
   turn every later [select] into EINVAL. *)
let connect_to fd addr =
  try
    Unix.connect fd addr;
    fd
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

let connect_fd = function
  | `Unix path ->
      connect_to (Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0) (Unix.ADDR_UNIX path)
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (
          try (Unix.gethostbyname host).Unix.h_addr_list.(0)
          with e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            raise e)
      in
      connect_to fd (Unix.ADDR_INET (addr, port))

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | n -> off := !off + n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
        ignore (Unix.select [] [ fd ] [] 0.05)
    | exception Unix.Unix_error _ -> raise Conn_lost
  done

let send c req =
  match c.fd with None -> raise Conn_lost | Some fd -> write_all fd (Wire.encode_request req)

(* Each client draws its own deterministic call stream: seed+id, so a
   rerun against the same server replays identical submissions. The
   backoff stream is salted differently — jitter must not advance the
   call stream. *)
let make_client cfg i =
  {
    id = i;
    fd = None;
    reader = Wire.Reader.create ();
    rng = Rng.create (cfg.seed + i);
    brng = Rng.create (cfg.seed + i + 0x5bac0ff);
    phase = Backoff;
    sent = 0;
    inflight = 0;
    think = 0;
    committed = 0;
    aborted = 0;
    rejected = 0;
    errors = 0;
    digest = 0L;
    unacked = Hashtbl.create 16;
    max_acked = 0;
    reconnects = 0;
    duplicates = 0;
    connected_once = false;
    attempts = 0;
    wake_at = 0.0;
    down_since = Unix.gettimeofday ();
    sent_wall = Hashtbl.create 16;
    latency = Nv_util.Histogram.create ();
  }

let backoff_base_s = 0.02
let backoff_max_s = 0.5

(* Jittered exponential backoff: 2^attempts steps of the base, capped,
   scaled by a uniform [0.5, 1.5) factor so a fleet of clients does not
   reconnect in lockstep against a restarting server. *)
let schedule_backoff c =
  let exp = min c.attempts 6 in
  let d = Float.min backoff_max_s (backoff_base_s *. float_of_int (1 lsl exp)) in
  c.wake_at <- Unix.gettimeofday () +. (d *. (0.5 +. Rng.float c.brng));
  c.attempts <- c.attempts + 1

let close_fd c =
  (match c.fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  c.fd <- None

let fatal c =
  close_fd c;
  c.errors <- c.errors + 1;
  c.phase <- Done

(* The connection dropped (EOF, EPIPE, reset). Without [reconnect]
   that is fatal, as before; with it, the client backs off and will
   resume its session. *)
let lose_conn cfg c =
  close_fd c;
  if cfg.reconnect && c.phase <> Done then begin
    if c.down_since < 0.0 then c.down_since <- Unix.gettimeofday ();
    c.phase <- Backoff;
    schedule_backoff c
  end
  else fatal c

let observe_latency c req =
  match Hashtbl.find_opt c.sent_wall req with
  | Some t0 ->
      Hashtbl.remove c.sent_wall req;
      Nv_util.Histogram.add c.latency (Nv_util.Clock.now_ns () -. t0)
  | None -> ()

(* (Re)connect and say Hello. The first connection starts the session;
   later ones resume it, advertising the highest acknowledged seq. *)
let try_reconnect cfg c =
  if c.connected_once && not cfg.reconnect then fatal c
  else if Unix.gettimeofday () -. c.down_since > cfg.retry_timeout_s then fatal c
  else
    match connect_fd cfg.address with
    | exception Unix.Unix_error _ -> schedule_backoff c
    | fd -> (
        Unix.set_nonblock fd;
        c.fd <- Some fd;
        c.reader <- Wire.Reader.create ();
        if c.connected_once then c.reconnects <- c.reconnects + 1;
        c.phase <- Awaiting_hello;
        try
          send c
            (Wire.Hello
               {
                 client = c.id;
                 version = Wire.protocol_version;
                 resume = c.connected_once;
                 last_seq = c.max_acked;
               })
        with Conn_lost -> lose_conn cfg c)

(* Closed-loop pump: keep [window] calls in flight, pausing
   [think_ticks] loop rounds after each completion. A rejected call
   counts as answered — the generator does not resubmit, it reports. *)
let pump cfg (w : Nv_workloads.Workload.t) c =
  if c.phase = Running then begin
    if c.think > 0 then c.think <- c.think - 1
    else begin
      while c.sent < cfg.txns_per_client && c.inflight < cfg.window do
        (* Sequence numbers are 1-based: seq 0 is the "nothing acked
           yet" sentinel in the handshake. The call is committed to
           [unacked] — its seq burned — BEFORE the write is attempted:
           if [send] loses the connection the retransmit path owns
           delivery, and this seq must never be reused for a different
           call (the server's dedup window would answer both). *)
        let seq = c.sent + 1 in
        let proc, args = w.gen_call c.rng in
        Hashtbl.replace c.unacked seq (proc, args);
        Hashtbl.replace c.sent_wall seq (Nv_util.Clock.now_ns ());
        c.sent <- c.sent + 1;
        c.inflight <- c.inflight + 1;
        send c (Wire.Submit { req = seq; proc; args })
      done;
      if c.sent >= cfg.txns_per_client && Hashtbl.length c.unacked = 0 then begin
        send c Wire.Bye;
        c.phase <- Awaiting_bye
      end
    end
  end

let answered cfg c req =
  if Hashtbl.mem c.unacked req then begin
    Hashtbl.remove c.unacked req;
    c.inflight <- max 0 (c.inflight - 1);
    if req > c.max_acked then c.max_acked <- req;
    c.think <- cfg.think_ticks;
    observe_latency c req;
    true
  end
  else begin
    (* Exactly-once check, client side: a second answer for a seq we
       already counted would be a duplicate execution surfacing. *)
    c.duplicates <- c.duplicates + 1;
    false
  end

let on_response cfg (c : client) (resp : Wire.response) =
  match (resp, c.phase) with
  | Wire.Hello_ok { last_acked = _; _ }, Awaiting_hello ->
      c.connected_once <- true;
      c.down_since <- -1.0;
      c.attempts <- 0;
      (* Retransmit every unanswered call, oldest first. Already-acked
         seqs come back from the server's dedup window with their
         original outcome; still-in-flight ones are absorbed silently
         and answered once their batch lands. *)
      let seqs =
        List.sort compare (Hashtbl.fold (fun s _ acc -> s :: acc) c.unacked [])
      in
      List.iter
        (fun seq ->
          let proc, args = Hashtbl.find c.unacked seq in
          Hashtbl.replace c.sent_wall seq (Nv_util.Clock.now_ns ());
          send c (Wire.Submit { req = seq; proc; args }))
        seqs;
      c.inflight <- List.length seqs;
      c.phase <- Running
  | Wire.Result { req; outcome }, (Running | Awaiting_bye) ->
      if answered cfg c req then (
        match outcome with
        | `Committed -> c.committed <- c.committed + 1
        | `Aborted -> c.aborted <- c.aborted + 1)
  | Wire.Rejected { req; _ }, (Running | Awaiting_bye) ->
      if answered cfg c req then c.rejected <- c.rejected + 1
  | Wire.Bye_ok { digest }, Awaiting_bye ->
      c.digest <- digest;
      c.phase <- Done;
      close_fd c
  | Wire.Server_error _, _ -> fatal c
  | _ -> fatal c

let drain_input cfg c =
  match c.fd with
  | None -> ()
  | Some fd -> (
      let buf = Bytes.create 65536 in
      match Unix.read fd buf 0 (Bytes.length buf) with
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> lose_conn cfg c
      | 0 -> if c.phase <> Done then lose_conn cfg c
      | n -> (
          Wire.Reader.feed c.reader buf ~off:0 ~len:n;
          try
            let continue = ref true in
            while !continue && c.phase <> Done && c.phase <> Backoff do
              match Wire.Reader.next_payload c.reader with
              | None -> continue := false
              | Some payload -> on_response cfg c (Wire.decode_response payload)
            done
          with
          | Wire.Protocol_error _ -> fatal c
          | Conn_lost -> lose_conn cfg c))

let run cfg (w : Nv_workloads.Workload.t) =
  (* A peer that dies mid-conversation (a crash-injected server, say)
     turns our next write into SIGPIPE; demote it to EPIPE so the
     reconnect path sees [Conn_lost] instead of the process dying. *)
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let clients = Array.init cfg.clients (fun i -> make_client cfg i) in
  (* Without reconnect the first connect is eager and failures raise,
     as before; with it, even the first connect retries with backoff
     (the server may still be binding — or recovering). *)
  Array.iter
    (fun c ->
      if cfg.reconnect then try_reconnect cfg c
      else begin
        let fd = connect_fd cfg.address in
        Unix.set_nonblock fd;
        c.fd <- Some fd;
        c.phase <- Awaiting_hello;
        send c
          (Wire.Hello
             { client = c.id; version = Wire.protocol_version; resume = false; last_seq = 0 })
      end)
    clients;
  let all_done () = Array.for_all (fun c -> c.phase = Done) clients in
  while not (all_done ()) do
    let now = Unix.gettimeofday () in
    Array.iter (fun c -> if c.phase = Backoff && now >= c.wake_at then try_reconnect cfg c) clients;
    let fds =
      Array.to_list clients
      |> List.filter_map (fun c ->
             match (c.phase, c.fd) with Done, _ | Backoff, _ | _, None -> None | _, Some fd -> Some fd)
    in
    let timeout =
      if Array.exists (fun c -> c.phase = Backoff) clients then 0.005 else 0.01
    in
    let readable, _, _ =
      try Unix.select fds [] [] timeout with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    Array.iter
      (fun c ->
        match c.fd with
        | Some fd when c.phase <> Done && List.mem fd readable -> drain_input cfg c
        | _ -> ())
      clients;
    Array.iter (fun c -> try pump cfg w c with Conn_lost -> lose_conn cfg c) clients
  done;
  if cfg.shutdown then begin
    match connect_fd cfg.address with
    | exception Unix.Unix_error _ -> ()
    | fd ->
        (try write_all fd (Wire.encode_request Wire.Shutdown) with Conn_lost -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ())
  end;
  let sum f = Array.fold_left (fun acc c -> acc + f c) 0 clients in
  {
    sent = sum (fun c -> c.sent);
    committed = sum (fun c -> c.committed);
    aborted = sum (fun c -> c.aborted);
    rejected = sum (fun c -> c.rejected);
    protocol_errors = sum (fun c -> c.errors);
    reconnects = sum (fun c -> c.reconnects);
    duplicates = sum (fun c -> c.duplicates);
    digests = Array.to_list (Array.map (fun c -> c.digest) clients);
    latency =
      Array.fold_left
        (fun acc c -> Nv_util.Histogram.merge acc c.latency)
        (Nv_util.Histogram.create ()) clients;
  }
