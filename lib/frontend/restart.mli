(** Crash-restart wiring: from a reopened {!Journal} to a serving
    engine.

    [nvdb serve --recover] (and the chaos harness's reference replays)
    use this to stand an engine back up: {!boot} restores from the
    covering checkpoint when one exists — the saved pmem image becomes
    a cleanly-crashed region for the engine's own recovery — or
    cold-starts a fresh bulk-loaded engine otherwise. The caller then
    attaches the journal to a {!Batcher} and feeds the journal's
    records to {!Batcher.recover}, which replays the tail in admission
    order; deterministic replay makes the result bit-identical to the
    crashed server's pmem image. *)

type boot = {
  engine : Nvcaracal.Engine_intf.packed;
  batches_done : int;  (** batches the engine image already covers *)
  sessions : Journal.session_state list;  (** checkpointed dedup windows *)
  from_checkpoint : bool;
}

val meta : workload:string -> contention:string -> engine:string -> seed:int -> string
(** The canonical journal meta string. {!Journal.load} refuses a
    journal whose meta differs, so a restart with the wrong workload,
    engine or seed fails loudly instead of replaying garbage. *)

val boot :
  Nv_harness.Engine.spec ->
  Nv_harness.Engine.setup ->
  Nv_workloads.Workload.t ->
  registry:Proc.t ->
  Journal.opened ->
  boot
(** Build the starting engine for a recovery. The spec/setup/workload
    must be the ones the journal's meta fingerprints (the crashed
    server's); NVCaracal specs must be crash-safe. *)
