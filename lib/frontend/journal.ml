module Pmem = Nv_nvmm.Pmem
module Crc = Nv_util.Crc32c

type entry = { j_client : int; j_seq : int; j_call : bytes }
type record = { r_batch : int; r_entries : entry list }

type session_state = {
  ss_client : int;
  ss_last_acked : int;
  ss_window : (int * [ `Committed | `Aborted ]) list;
}

type checkpoint = {
  ck_batches : int;
  ck_sessions : session_state list;
  ck_image : bytes;
}

type t = {
  region : Pmem.t;
  stats : Nv_nvmm.Stats.t;  (** journal-private; never charges engine time *)
  file : Unix.file_descr option;
  file_path : string option;
  mutable used : int;  (** bytes of the record area covered by the used-word *)
  mutable base : int;  (** lowest batch index the record area may hold *)
  mutable nrecords : int;
  mutable mem_ckpt : checkpoint option;  (** checkpoint store for pathless journals *)
}

type opened = {
  journal : t;
  records : record list;
  torn_tail : bool;
  checkpoint : checkpoint option;
}

(* Header: four packed self-checking words with role-distinct salts
   (layout-v2 discipline), a packed region-size word, then the meta
   string. Records start at a fixed offset past all of it. *)
let off_magic = 0
let off_base = 8
let off_used = 16
let off_meta_crc = 24
let off_size = 32
let off_meta_len = 40
let off_meta = 44
let records_offset = 320
let salt_magic = 0x4A31
let salt_base = 0x4A32
let salt_used = 0x4A33
let salt_meta = 0x4A34
let salt_size = 0x4A35
let magic = 0x4E564A31L (* "NVJ1" *)
let max_meta = 255
let pad8 n = (n + 7) land lnot 7

let fail fmt = Printf.ksprintf failwith fmt

(* ------------------------------------------------------------------ *)
(* Record encoding                                                     *)

let encode_payload ~batch ~entries =
  let buf = Buffer.create 256 in
  Buffer.add_int64_le buf (Int64.of_int batch);
  Buffer.add_int32_le buf (Int32.of_int (List.length entries));
  List.iter
    (fun e ->
      Buffer.add_int32_le buf (Int32.of_int e.j_client);
      Buffer.add_int64_le buf (Int64.of_int e.j_seq);
      Buffer.add_int32_le buf (Int32.of_int (Bytes.length e.j_call));
      Buffer.add_bytes buf e.j_call)
    entries;
  Buffer.to_bytes buf

let decode_payload b =
  let len = Bytes.length b in
  let u32 off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF in
  if len < 12 then None
  else
    let batch = Int64.to_int (Bytes.get_int64_le b 0) in
    let n = u32 8 in
    let off = ref 12 in
    let ok = ref true in
    let entries = ref [] in
    (try
       for _ = 1 to n do
         if !off + 16 > len then raise Exit;
         let client = u32 !off in
         let seq = Int64.to_int (Bytes.get_int64_le b (!off + 4)) in
         let clen = u32 (!off + 12) in
         if !off + 16 + clen > len then raise Exit;
         let call = Bytes.sub b (!off + 16) clen in
         entries := { j_client = client; j_seq = seq; j_call = call } :: !entries;
         off := !off + 16 + clen
       done
     with Exit -> ok := false);
    if !ok && batch >= 0 then Some { r_batch = batch; r_entries = List.rev !entries }
    else None

(* ------------------------------------------------------------------ *)
(* Region scan                                                         *)

(* Walk the record area: each record is [u32 len][u32 crc][payload]
   rounded to 8 bytes. The used-word bounds the walk; if it is itself
   unreadable the walk degrades to first-invalid-record (belt and
   braces — a correct append never leaves the used-word torn). Returns
   the valid records plus the byte length of the valid prefix. *)
let scan_region region =
  let size = Pmem.size region in
  let used_claim =
    match Crc.unpack_int ~salt:salt_used (Pmem.get_i64 region off_used) with
    | Some u when u >= 0 && records_offset + u <= size -> Some u
    | Some _ | None -> None
  in
  let limit =
    match used_claim with Some u -> records_offset + u | None -> size
  in
  let records = ref [] in
  let off = ref records_offset in
  let stop = ref false in
  while (not !stop) && !off + 8 <= limit do
    let len = Int32.to_int (Pmem.get_i32 region !off) land 0xFFFFFFFF in
    let crc = Pmem.get_i32 region (!off + 4) in
    if len = 0 || !off + 8 + len > limit then stop := true
    else
      let payload = Pmem.read_bytes region ~off:(!off + 8) ~len in
      if Crc.bytes payload 0 len <> crc then stop := true
      else
        match decode_payload payload with
        | None -> stop := true
        | Some r ->
            records := r :: !records;
            off := !off + 8 + pad8 len
  done;
  let valid_end = !off - records_offset in
  let torn =
    match used_claim with Some u -> !stop && valid_end < u | None -> true
  in
  (List.rev !records, valid_end, torn)

(* ------------------------------------------------------------------ *)
(* File mirror                                                         *)

let pwrite_from_region t ~off ~len =
  match t.file with
  | None -> ()
  | Some fd ->
      let b = Pmem.read_bytes t.region ~off ~len in
      ignore (Unix.lseek fd off Unix.SEEK_SET);
      let sent = ref 0 in
      while !sent < len do
        match Unix.write fd b !sent (len - !sent) with
        | n -> sent := !sent + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done

let fsync t = match t.file with None -> () | Some fd -> Unix.fsync fd

(* ------------------------------------------------------------------ *)
(* Header writes                                                       *)

let persist t ~off ~len =
  Pmem.flush t.region t.stats ~off ~len;
  Pmem.fence t.region t.stats

let write_used t used =
  Pmem.set_i64 t.region off_used (Crc.pack_int ~salt:salt_used used);
  persist t ~off:off_used ~len:8;
  t.used <- used

let write_base t base =
  Pmem.set_i64 t.region off_base (Crc.pack_int ~salt:salt_base base);
  persist t ~off:off_base ~len:8;
  t.base <- base

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create ?(size = 8 * 1024 * 1024) ?path ~meta () =
  if String.length meta > max_meta then fail "Journal.create: meta %d bytes > %d" (String.length meta) max_meta;
  if size < records_offset + 64 then fail "Journal.create: region too small (%d bytes)" size;
  let region = Pmem.create ~mode:Pmem.Crash_safe ~size () in
  let file =
    Option.map (fun p -> Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644) path
  in
  let t =
    {
      region;
      stats = Nv_nvmm.Stats.create Nv_nvmm.Memspec.default;
      file;
      file_path = path;
      used = 0;
      base = 0;
      nrecords = 0;
      mem_ckpt = None;
    }
  in
  Pmem.set_i64 region off_magic (Crc.pack ~salt:salt_magic magic);
  Pmem.set_i64 region off_base (Crc.pack_int ~salt:salt_base 0);
  Pmem.set_i64 region off_used (Crc.pack_int ~salt:salt_used 0);
  Pmem.set_i64 region off_meta_crc
    (Crc.pack_int ~salt:salt_meta (Int32.to_int (Crc.string meta) land 0xFFFFFFFF));
  Pmem.set_i64 region off_size (Crc.pack_int ~salt:salt_size size);
  Pmem.set_i32 region off_meta_len (Int32.of_int (String.length meta));
  Pmem.write_bytes region ~off:off_meta (Bytes.of_string meta);
  persist t ~off:0 ~len:records_offset;
  pwrite_from_region t ~off:0 ~len:records_offset;
  fsync t;
  t

(* ------------------------------------------------------------------ *)
(* Checkpoint file                                                     *)

let ckpt_magic = "NVCKPT01"

let ckpt_path t = Option.map (fun p -> p ^ ".ckpt") t.file_path

let encode_checkpoint ~meta ck =
  let buf = Buffer.create (Bytes.length ck.ck_image + 1024) in
  Buffer.add_string buf ckpt_magic;
  Buffer.add_int32_le buf (Int32.of_int (String.length meta));
  Buffer.add_string buf meta;
  Buffer.add_int64_le buf (Int64.of_int ck.ck_batches);
  Buffer.add_int32_le buf (Int32.of_int (List.length ck.ck_sessions));
  List.iter
    (fun s ->
      Buffer.add_int32_le buf (Int32.of_int s.ss_client);
      Buffer.add_int64_le buf (Int64.of_int s.ss_last_acked);
      Buffer.add_int32_le buf (Int32.of_int (List.length s.ss_window));
      List.iter
        (fun (seq, o) ->
          Buffer.add_int64_le buf (Int64.of_int seq);
          Buffer.add_uint8 buf (match o with `Committed -> 0 | `Aborted -> 1))
        s.ss_window)
    ck.ck_sessions;
  Buffer.add_int64_le buf (Int64.of_int (Bytes.length ck.ck_image));
  Buffer.add_bytes buf ck.ck_image;
  let body = Buffer.to_bytes buf in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  Bytes.set_int32_le out (Bytes.length body) (Crc.bytes body 0 (Bytes.length body));
  out

let decode_checkpoint ~meta b =
  let len = Bytes.length b in
  if len < String.length ckpt_magic + 4 + 4 then None
  else if Crc.bytes b 0 (len - 4) <> Bytes.get_int32_le b (len - 4) then None
  else if Bytes.sub_string b 0 8 <> ckpt_magic then None
  else
    try
      let off = ref 8 in
      let u32 () =
        let v = Int32.to_int (Bytes.get_int32_le b !off) land 0xFFFFFFFF in
        off := !off + 4;
        v
      in
      let u64 () =
        let v = Int64.to_int (Bytes.get_int64_le b !off) in
        off := !off + 8;
        v
      in
      let mlen = u32 () in
      let m = Bytes.sub_string b !off mlen in
      off := !off + mlen;
      if m <> meta then None
      else
        let batches = u64 () in
        let nsess = u32 () in
        (* Decoding is cursor-driven: explicit loops, not List.init,
           whose application order is unspecified. *)
        let sessions = ref [] in
        for _ = 1 to nsess do
          let client = u32 () in
          let last_acked = u64 () in
          let n = u32 () in
          let window = ref [] in
          for _ = 1 to n do
            let seq = u64 () in
            let o =
              match Bytes.get_uint8 b !off with
              | 0 -> `Committed
              | 1 -> `Aborted
              | _ -> raise Exit
            in
            off := !off + 1;
            window := (seq, o) :: !window
          done;
          sessions :=
            { ss_client = client; ss_last_acked = last_acked; ss_window = List.rev !window }
            :: !sessions
        done;
        let sessions = List.rev !sessions in
        let ilen = u64 () in
        if !off + ilen > len - 4 then None
        else Some { ck_batches = batches; ck_sessions = sessions; ck_image = Bytes.sub b !off ilen }
    with Exit | Invalid_argument _ -> None

let read_meta region =
  let mlen = Int32.to_int (Pmem.get_i32 region off_meta_len) land 0xFFFFFFFF in
  if mlen > max_meta then None
  else Some (Bytes.to_string (Pmem.read_bytes region ~off:off_meta ~len:mlen))

let write_checkpoint t ~batches ~sessions ~image =
  let ck = { ck_batches = batches; ck_sessions = sessions; ck_image = image } in
  match ckpt_path t with
  | None -> t.mem_ckpt <- Some ck
  | Some p ->
      let meta = match read_meta t.region with Some m -> m | None -> "" in
      let blob = encode_checkpoint ~meta ck in
      let tmp = p ^ ".tmp" in
      let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
      let sent = ref 0 in
      let len = Bytes.length blob in
      while !sent < len do
        match Unix.write fd blob !sent (len - !sent) with
        | n -> sent := !sent + n
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Unix.fsync fd;
      Unix.close fd;
      Unix.rename tmp p;
      (* The rename itself must be durable before the caller truncates
         the journal: under power loss (not just kill-9) a lost rename
         with a surviving truncation would orphan the covered records.
         Directory fsync is the POSIX way to persist the name change;
         some filesystems refuse it, in which case we are back to the
         process-crash durability model. *)
      (match Unix.openfile (Filename.dirname p) [ Unix.O_RDONLY ] 0 with
      | dfd ->
          (try Unix.fsync dfd with Unix.Unix_error _ -> ());
          Unix.close dfd
      | exception Unix.Unix_error _ -> ())

let load_checkpoint ~path ~meta =
  let p = path ^ ".ckpt" in
  if not (Sys.file_exists p) then None
  else
    let ic = open_in_bin p in
    let len = in_channel_length ic in
    let b = Bytes.create len in
    really_input ic b 0 len;
    close_in ic;
    decode_checkpoint ~meta b

(* ------------------------------------------------------------------ *)
(* Append                                                              *)

let append t ~batch ~entries =
  let payload = encode_payload ~batch ~entries in
  let len = Bytes.length payload in
  let total = 8 + pad8 len in
  let off = records_offset + t.used in
  if off + total > Pmem.size t.region then
    fail "Journal.append: region full (%d + %d > %d); enable checkpointing or grow the journal"
      off total (Pmem.size t.region);
  (* Destination, not journey: the record's bytes reach persistence
     before the used-word makes them reachable; a crash between the two
     fences leaves the new record invisible, never torn-but-visible. *)
  Pmem.write_bytes t.region ~off:(off + 8) payload;
  Pmem.set_i32 t.region off (Int32.of_int len);
  Pmem.set_i32 t.region (off + 4) (Crc.bytes payload 0 len);
  persist t ~off ~len:total;
  write_used t (t.used + total);
  t.nrecords <- t.nrecords + 1;
  pwrite_from_region t ~off ~len:total;
  pwrite_from_region t ~off:0 ~len:records_offset;
  fsync t

(* ------------------------------------------------------------------ *)
(* Truncation (after a durable covering checkpoint)                    *)

let truncate_to t ~batch =
  let records, _, _ = scan_region t.region in
  let survivors = List.filter (fun r -> r.r_batch >= batch) records in
  (* Rebuild the record area front-to-back. The covering checkpoint is
     already durable, so a kill-9 anywhere in here loses nothing: every
     dropped record is covered, every surviving record is re-persisted
     before the header words flip. *)
  let off = ref records_offset in
  List.iter
    (fun r ->
      let payload = encode_payload ~batch:r.r_batch ~entries:r.r_entries in
      let len = Bytes.length payload in
      Pmem.write_bytes t.region ~off:(!off + 8) payload;
      Pmem.set_i32 t.region !off (Int32.of_int len);
      Pmem.set_i32 t.region (!off + 4) (Crc.bytes payload 0 len);
      persist t ~off:!off ~len:(8 + pad8 len);
      off := !off + 8 + pad8 len)
    survivors;
  write_used t (!off - records_offset);
  write_base t batch;
  t.nrecords <- List.length survivors;
  (match t.file with
  | None -> ()
  | Some fd ->
      pwrite_from_region t ~off:0 ~len:(records_offset + t.used);
      Unix.ftruncate fd (records_offset + t.used);
      fsync t)

(* ------------------------------------------------------------------ *)
(* Load                                                                *)

let load ~path ~meta =
  if not (Sys.file_exists path) then fail "Journal.load: no journal at %s" path;
  let ic = open_in_bin path in
  let flen = in_channel_length ic in
  let contents = Bytes.create flen in
  really_input ic contents 0 flen;
  close_in ic;
  if flen < off_meta then fail "Journal.load: %s too short (%d bytes)" path flen;
  let size =
    let hdr = Bytes.get_int64_le contents off_size in
    match Crc.unpack_int ~salt:salt_size hdr with
    | Some s when s >= records_offset + 64 && s <= 1 lsl 30 -> s
    | Some _ | None -> fail "Journal.load: %s has a corrupt size header" path
  in
  let region = Pmem.create ~mode:Pmem.Crash_safe ~size () in
  Pmem.write_bytes region ~off:0 (Bytes.sub contents 0 (min flen size));
  (match Crc.unpack ~salt:salt_magic (Pmem.get_i64 region off_magic) with
  | Some m when m = magic -> ()
  | Some _ | None -> fail "Journal.load: %s is not a journal (bad magic)" path);
  (match Crc.unpack_int ~salt:salt_meta (Pmem.get_i64 region off_meta_crc) with
  | Some c when c = Int32.to_int (Crc.string meta) land 0xFFFFFFFF -> ()
  | Some _ | None ->
      fail
        "Journal.load: %s was written under a different serving configuration (meta mismatch); \
         refusing to replay"
        path);
  (match read_meta region with
  | Some m when m = meta -> ()
  | Some _ | None -> fail "Journal.load: %s meta string mismatch" path);
  let base =
    match Crc.unpack_int ~salt:salt_base (Pmem.get_i64 region off_base) with
    | Some b when b >= 0 -> b
    | Some _ | None -> fail "Journal.load: %s has a corrupt base header" path
  in
  let records, valid_end, torn = scan_region region in
  let file = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let t =
    {
      region;
      stats = Nv_nvmm.Stats.create Nv_nvmm.Memspec.default;
      file = Some file;
      file_path = Some path;
      used = valid_end;
      base;
      nrecords = List.length records;
      mem_ckpt = None;
    }
  in
  persist t ~off:0 ~len:(records_offset + valid_end);
  (* Heal a torn tail: the used-word retreats to the valid prefix so
     future appends overwrite the garbage. *)
  if torn then begin
    write_used t valid_end;
    pwrite_from_region t ~off:0 ~len:records_offset;
    fsync t
  end;
  let checkpoint = load_checkpoint ~path ~meta in
  { journal = t; records; torn_tail = torn; checkpoint }

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let record_count t = t.nrecords
let base_batch t = t.base
let used_bytes t = t.used
let size t = Pmem.size t.region
let path t = t.file_path
let pmem t = t.region

let rescan t =
  let records, _, torn = scan_region t.region in
  (records, torn)

let close t =
  match t.file with
  | None -> ()
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
