(** The client/server wire protocol: length-prefixed binary frames.

    Every message is one frame, [[u32_le payload_len][payload]], whose
    payload begins with a one-byte tag. Integers are little-endian.
    Submit carries a framed procedure call; its [(proc, args)] tail is
    exactly what the registry logs ({!Proc.encode_call}), so wire
    capture, input log and replay agree byte for byte.

    Decoders raise {!Protocol_error} on malformed input — servers count
    these and drop the offending connection, they never crash. *)

exception Protocol_error of string

val max_frame : int
(** Upper bound on a payload's size (1 MiB); larger length prefixes are
    protocol errors. *)

val protocol_version : int
(** The protocol version this build speaks (3). Version 1 frames
    (label-only [Hello], bare [Hello_ok]) are still decoded, and a
    [Hello] claiming a {e higher} version is accepted too — the server
    clamps to its own version in [Hello_ok] (min of both sides), so
    future clients can connect and negotiate down. Version 3 adds the
    {e shard plane} ([Shard_hello]/[Route]/[Fence] and their replies):
    router-to-shard traffic for epoch-aligned multi-shard serving.
    Every pre-v3 frame is encoded byte-identically, and a v2 peer
    never sees a shard-plane tag. *)

type routed_call = { rc_client : int; rc_seq : int; rc_call : bytes }
(** One globally-sequenced transaction inside a [Route] frame:
    originating session id, the client's sequence number (together the
    exactly-once identity), and the encoded procedure call
    ({!Proc.encode_call} layout). *)

type shard_read = { sr_table : int; sr_key : int64; sr_value : bytes option }
(** One remote-read answer. [sr_value = None] is a live answer — "that
    key has no committed row" — distinct from the key being absent
    from the table of reads. *)

type shard_outcome = [ `Committed | `Aborted | `Deferred ]
(** Per-transaction verdict a shard reports at the fence. Every shard
    must report the identical vector — the router asserts it. *)

type request =
  | Hello of { client : int; version : int; resume : bool; last_seq : int }
      (** First message on a connection. [client] is the caller-chosen
          {e session id}: reconnecting with the same id and [resume]
          set resumes the session (per-seq dedup window intact), while
          [resume] unset resets it. [last_seq] is the highest sequence
          number this client saw acknowledged (informational; the
          server answers with its own view). Version 1 encodes only
          [client] and implies [resume = false], [last_seq = 0]. *)
  | Submit of { req : int; proc : string; args : bytes }
      (** Call a stored procedure. [req] is the client's {e sequence
          number} for the call (start at 1, increase monotonically);
          the matching [Result]/[Rejected] echoes it, and the server's
          per-session dedup window keys on it, so a retry after
          reconnect returns the original outcome instead of
          re-executing. *)
  | Bye  (** Graceful close: answered with [Bye_ok] once all of this
             connection's admitted transactions have been answered. *)
  | Shutdown
      (** Ask the server to drain every queued transaction and exit. *)
  | Stats
      (** Ask for a live statistics snapshot. Allowed at any point on a
          connection (before [Hello] too: monitoring tools need not
          register as clients). *)
  | Shard_hello of { gen : int; shard : int; shards : int; version : int }
      (** Router-to-shard handshake. [gen] is the router's generation
          number: a shard remembers the highest it has seen and
          rejects handshakes from older generations, fencing off a
          zombie router after failover. [shard]/[shards] state which
          member of how many the router believes it is addressing —
          the shard verifies both. *)
  | Route of { epoch : int; calls : routed_call array; reads : shard_read array }
      (** Round one (possibly iterated): the epoch's complete global
          batch, in the one serial order every shard must agree on,
          plus the partially merged read table so far ([reads] is empty
          on the first pass). The shard executes a reconnaissance pass
          — local reads answered live, remote reads answered from
          [reads] or left unresolved — and replies [Route_reads] with
          the values it owns and whether its pass saw every remote
          value it needed ([complete]). The router repeats Route with a
          richer table until every shard is complete, then fences.
          Re-routing an applied epoch is answered from history — Route
          is idempotent. *)
  | Fence of { epoch : int; reads : shard_read array }
      (** Round two: the merged read table from every shard's
          [Route_reads]. With all remote reads resolved each shard
          re-executes deterministically, reserves, applies its owned
          writes, and replies [Fence_ok]. *)

type reject_reason = [ `Overloaded | `Unknown_proc | `Bad_frame ]

type response =
  | Hello_ok of { version : int; last_acked : int }
      (** Handshake answer: the negotiated protocol version (min of the
          client's and the server's) and the highest sequence number
          the server has acknowledged for this session — after a
          resume, everything above it should be retransmitted. *)
  | Result of { req : int; outcome : [ `Committed | `Aborted ] }
      (** Sent only after the transaction's epoch is checkpointed. *)
  | Rejected of { req : int; reason : reject_reason }
      (** Explicit rejection — admission control never drops silently. *)
  | Bye_ok of { digest : int64 }
      (** Connection closed; [digest] fingerprints the committed state
          at that instant (equal runs give equal digests). *)
  | Server_error of string
  | Stats_ok of { json : string }
      (** Answer to [Stats]: one JSON object — uptime, client and
          admission counters, epoch rate, per-procedure wall-clock
          latency percentiles, domain-pool telemetry (see
          docs/OBSERVABILITY.md for the schema). JSON rather than a
          binary layout: the snapshot is for humans and scripts, not
          the hot path, and the schema can grow without a protocol
          bump. *)
  | Shard_hello_ok of { version : int; shard : int; shards : int; applied : int }
      (** Handshake answer: the shard's protocol version, its identity
          echo, and the highest epoch it has durably applied — the
          router resumes routing from [applied + 1]. *)
  | Route_reads of { epoch : int; reads : shard_read array; complete : bool }
      (** Round-one reply: the values this shard owns among the
          epoch's reads, sorted by (table, key). [complete] is false
          when the reconnaissance pass hit a remote read the supplied
          partial table could not answer — the router must route
          again with the merged table before fencing. *)
  | Fence_ok of { epoch : int; outcomes : shard_outcome array; digest : int64 }
      (** Round-two reply: the per-transaction verdict vector (one
          entry per routed call, in batch order — identical on every
          shard) and the shard's owned-state digest contribution
          (XOR-combinable across shards). *)

val no_req : int
(** The request token used when a rejection cannot name a request
    (malformed frame): [0xFFFFFFFF]. *)

val encode_request : request -> bytes
(** Full frame, ready to write. *)

val encode_response : response -> bytes

val decode_request : bytes -> request
(** Decode one payload (as yielded by {!Reader.next_payload}).
    @raise Protocol_error on malformed input. *)

val decode_response : bytes -> response

val encode_reads : shard_read array -> bytes
(** The bare read-table layout ([[u32 n]] then per read
    [[u32 table][i64 key][u8 present][u32 len][bytes]]), without a
    frame around it. A shard journals its fence's merged reads in this
    form (as a sentinel journal entry), so crash recovery re-executes
    the epoch from the journal alone — no cluster round trip. *)

val decode_reads : bytes -> shard_read array
(** Inverse of {!encode_reads}. @raise Protocol_error on malformed
    input. *)

(** Incremental frame extraction over a byte stream: feed whatever the
    socket yielded, pop complete payloads. *)
module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> off:int -> len:int -> unit
  (** Append [len] bytes of [src] starting at [off]. *)

  val next_payload : t -> bytes option
  (** The next complete frame's payload, or [None] until more bytes
      arrive. @raise Protocol_error on an invalid length prefix. *)
end
