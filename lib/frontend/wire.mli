(** The client/server wire protocol: length-prefixed binary frames.

    Every message is one frame, [[u32_le payload_len][payload]], whose
    payload begins with a one-byte tag. Integers are little-endian.
    Submit carries a framed procedure call; its [(proc, args)] tail is
    exactly what the registry logs ({!Proc.encode_call}), so wire
    capture, input log and replay agree byte for byte.

    Decoders raise {!Protocol_error} on malformed input — servers count
    these and drop the offending connection, they never crash. *)

exception Protocol_error of string

val max_frame : int
(** Upper bound on a payload's size (1 MiB); larger length prefixes are
    protocol errors. *)

val protocol_version : int
(** The protocol version this build speaks (2). Version 1 frames
    (label-only [Hello], bare [Hello_ok]) are still decoded, and a
    [Hello] claiming a {e higher} version is accepted too — the server
    clamps to its own version in [Hello_ok] (min of both sides), so
    future clients can connect and negotiate down. *)

type request =
  | Hello of { client : int; version : int; resume : bool; last_seq : int }
      (** First message on a connection. [client] is the caller-chosen
          {e session id}: reconnecting with the same id and [resume]
          set resumes the session (per-seq dedup window intact), while
          [resume] unset resets it. [last_seq] is the highest sequence
          number this client saw acknowledged (informational; the
          server answers with its own view). Version 1 encodes only
          [client] and implies [resume = false], [last_seq = 0]. *)
  | Submit of { req : int; proc : string; args : bytes }
      (** Call a stored procedure. [req] is the client's {e sequence
          number} for the call (start at 1, increase monotonically);
          the matching [Result]/[Rejected] echoes it, and the server's
          per-session dedup window keys on it, so a retry after
          reconnect returns the original outcome instead of
          re-executing. *)
  | Bye  (** Graceful close: answered with [Bye_ok] once all of this
             connection's admitted transactions have been answered. *)
  | Shutdown
      (** Ask the server to drain every queued transaction and exit. *)
  | Stats
      (** Ask for a live statistics snapshot. Allowed at any point on a
          connection (before [Hello] too: monitoring tools need not
          register as clients). *)

type reject_reason = [ `Overloaded | `Unknown_proc | `Bad_frame ]

type response =
  | Hello_ok of { version : int; last_acked : int }
      (** Handshake answer: the negotiated protocol version (min of the
          client's and the server's) and the highest sequence number
          the server has acknowledged for this session — after a
          resume, everything above it should be retransmitted. *)
  | Result of { req : int; outcome : [ `Committed | `Aborted ] }
      (** Sent only after the transaction's epoch is checkpointed. *)
  | Rejected of { req : int; reason : reject_reason }
      (** Explicit rejection — admission control never drops silently. *)
  | Bye_ok of { digest : int64 }
      (** Connection closed; [digest] fingerprints the committed state
          at that instant (equal runs give equal digests). *)
  | Server_error of string
  | Stats_ok of { json : string }
      (** Answer to [Stats]: one JSON object — uptime, client and
          admission counters, epoch rate, per-procedure wall-clock
          latency percentiles, domain-pool telemetry (see
          docs/OBSERVABILITY.md for the schema). JSON rather than a
          binary layout: the snapshot is for humans and scripts, not
          the hot path, and the schema can grow without a protocol
          bump. *)

val no_req : int
(** The request token used when a rejection cannot name a request
    (malformed frame): [0xFFFFFFFF]. *)

val encode_request : request -> bytes
(** Full frame, ready to write. *)

val encode_response : response -> bytes

val decode_request : bytes -> request
(** Decode one payload (as yielded by {!Reader.next_payload}).
    @raise Protocol_error on malformed input. *)

val decode_response : bytes -> response

(** Incremental frame extraction over a byte stream: feed whatever the
    socket yielded, pop complete payloads. *)
module Reader : sig
  type t

  val create : unit -> t

  val feed : t -> bytes -> off:int -> len:int -> unit
  (** Append [len] bytes of [src] starting at [off]. *)

  val next_payload : t -> bytes option
  (** The next complete frame's payload, or [None] until more bytes
      arrive. @raise Protocol_error on an invalid length prefix. *)
end
