exception Protocol_error of string

let max_frame = 1 lsl 20
let protocol_version = 2

type request =
  | Hello of { client : int; version : int; resume : bool; last_seq : int }
  | Submit of { req : int; proc : string; args : bytes }
  | Bye
  | Shutdown
  | Stats

type reject_reason = [ `Overloaded | `Unknown_proc | `Bad_frame ]

type response =
  | Hello_ok of { version : int; last_acked : int }
  | Result of { req : int; outcome : [ `Committed | `Aborted ] }
  | Rejected of { req : int; reason : reject_reason }
  | Bye_ok of { digest : int64 }
  | Server_error of string
  | Stats_ok of { json : string }

let no_req = 0xFFFFFFFF

(* Tags. Requests are 0x0x, responses 0x8x. *)
let tag_hello = 0x01
let tag_submit = 0x02
let tag_bye = 0x03
let tag_shutdown = 0x04
let tag_stats = 0x05
let tag_hello_ok = 0x81
let tag_result = 0x82
let tag_rejected = 0x83
let tag_bye_ok = 0x84
let tag_server_error = 0x85
let tag_stats_ok = 0x86

let err fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let add_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then err "u32 out of range: %d" v;
  Buffer.add_int32_le buf (Int32.of_int v)

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

(* A frame is [u32_le payload_len][payload]; the payload starts with a
   one-byte tag. [frame] seals a tagged body into a full frame. *)
let frame tag body =
  let payload_len = 1 + Buffer.length body in
  if payload_len > max_frame then err "frame too large: %d" payload_len;
  let buf = Buffer.create (4 + payload_len) in
  Buffer.add_int32_le buf (Int32.of_int payload_len);
  Buffer.add_uint8 buf tag;
  Buffer.add_buffer buf body;
  Buffer.to_bytes buf

let encode_request = function
  | Hello { client; version; resume; last_seq } ->
      (* Version 1 frames carried only the client label; the v2 tail
         adds protocol version, a resume flag and the last sequence
         number the client saw acknowledged, enabling exactly-once
         session resumption after reconnect. *)
      let b = Buffer.create 17 in
      add_u32 b client;
      add_u32 b version;
      Buffer.add_uint8 b (if resume then 1 else 0);
      if last_seq < 0 then err "negative last_seq %d" last_seq;
      Buffer.add_int64_le b (Int64.of_int last_seq);
      frame tag_hello b
  | Submit { req; proc; args } ->
      let n = String.length proc in
      if n = 0 || n > 255 then err "procedure name length %d" n;
      let b = Buffer.create (5 + n + Bytes.length args) in
      add_u32 b req;
      Buffer.add_uint8 b n;
      Buffer.add_string b proc;
      Buffer.add_bytes b args;
      frame tag_submit b
  | Bye -> frame tag_bye (Buffer.create 0)
  | Shutdown -> frame tag_shutdown (Buffer.create 0)
  | Stats -> frame tag_stats (Buffer.create 0)

let reason_code = function `Overloaded -> 0 | `Unknown_proc -> 1 | `Bad_frame -> 2

let reason_of_code = function
  | 0 -> `Overloaded
  | 1 -> `Unknown_proc
  | 2 -> `Bad_frame
  | c -> err "unknown reject reason %d" c

let encode_response = function
  | Hello_ok { version; last_acked } ->
      let b = Buffer.create 12 in
      add_u32 b version;
      if last_acked < 0 then err "negative last_acked %d" last_acked;
      Buffer.add_int64_le b (Int64.of_int last_acked);
      frame tag_hello_ok b
  | Result { req; outcome } ->
      let b = Buffer.create 5 in
      add_u32 b req;
      Buffer.add_uint8 b (match outcome with `Committed -> 0 | `Aborted -> 1);
      frame tag_result b
  | Rejected { req; reason } ->
      let b = Buffer.create 5 in
      add_u32 b req;
      Buffer.add_uint8 b (reason_code reason);
      frame tag_rejected b
  | Bye_ok { digest } ->
      let b = Buffer.create 8 in
      Buffer.add_int64_le b digest;
      frame tag_bye_ok b
  | Server_error msg ->
      let b = Buffer.create (String.length msg) in
      Buffer.add_string b msg;
      frame tag_server_error b
  | Stats_ok { json } ->
      let b = Buffer.create (String.length json) in
      Buffer.add_string b json;
      frame tag_stats_ok b

let need payload n =
  if Bytes.length payload < n then err "truncated payload: %d < %d" (Bytes.length payload) n

let decode_request payload =
  need payload 1;
  let tag = Bytes.get_uint8 payload 0 in
  if tag = tag_hello then begin
    need payload 5;
    let client = get_u32 payload 1 in
    if Bytes.length payload = 5 then
      (* Legacy v1 Hello: label only, no session semantics. *)
      Hello { client; version = 1; resume = false; last_seq = 0 }
    else begin
      need payload 18;
      (* Any version >= 1 decodes: a future v3 client must be able to
         reach the server and negotiate down (the Hello_ok replies with
         min(client, server)). Unknown tail bytes are ignored — newer
         Hellos may only append fields. *)
      let version = get_u32 payload 5 in
      if version < 1 then err "unsupported protocol version %d" version;
      let resume =
        match Bytes.get_uint8 payload 9 with
        | 0 -> false
        | 1 -> true
        | f -> err "bad resume flag %d" f
      in
      let last_seq = Int64.to_int (Bytes.get_int64_le payload 10) in
      if last_seq < 0 then err "negative last_seq";
      Hello { client; version; resume; last_seq }
    end
  end
  else if tag = tag_submit then begin
    need payload 6;
    let req = get_u32 payload 1 in
    let n = Bytes.get_uint8 payload 5 in
    if n = 0 then err "empty procedure name";
    need payload (6 + n);
    let proc = Bytes.sub_string payload 6 n in
    let args = Bytes.sub payload (6 + n) (Bytes.length payload - 6 - n) in
    Submit { req; proc; args }
  end
  else if tag = tag_bye then Bye
  else if tag = tag_shutdown then Shutdown
  else if tag = tag_stats then Stats
  else err "unknown request tag 0x%02x" tag

let decode_response payload =
  need payload 1;
  let tag = Bytes.get_uint8 payload 0 in
  if tag = tag_hello_ok then begin
    if Bytes.length payload = 1 then
      (* Legacy v1 Hello_ok: bare acknowledgement. *)
      Hello_ok { version = 1; last_acked = 0 }
    else begin
      need payload 13;
      let version = get_u32 payload 1 in
      let last_acked = Int64.to_int (Bytes.get_int64_le payload 5) in
      if last_acked < 0 then err "negative last_acked";
      Hello_ok { version; last_acked }
    end
  end
  else if tag = tag_result then begin
    need payload 6;
    let req = get_u32 payload 1 in
    match Bytes.get_uint8 payload 5 with
    | 0 -> Result { req; outcome = `Committed }
    | 1 -> Result { req; outcome = `Aborted }
    | c -> err "unknown outcome code %d" c
  end
  else if tag = tag_rejected then begin
    need payload 6;
    Rejected { req = get_u32 payload 1; reason = reason_of_code (Bytes.get_uint8 payload 5) }
  end
  else if tag = tag_bye_ok then begin
    need payload 9;
    Bye_ok { digest = Bytes.get_int64_le payload 1 }
  end
  else if tag = tag_server_error then
    Server_error (Bytes.sub_string payload 1 (Bytes.length payload - 1))
  else if tag = tag_stats_ok then
    Stats_ok { json = Bytes.sub_string payload 1 (Bytes.length payload - 1) }
  else err "unknown response tag 0x%02x" tag

module Reader = struct
  type t = { mutable buf : bytes; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let ensure t extra =
    let need = t.len + extra in
    if Bytes.length t.buf < need then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end

  let feed t src ~off ~len =
    ensure t len;
    Bytes.blit src off t.buf t.len len;
    t.len <- t.len + len

  let next_payload t =
    if t.len < 4 then None
    else
      let plen = get_u32 t.buf 0 in
      if plen = 0 || plen > max_frame then err "bad frame length %d" plen
      else if t.len < 4 + plen then None
      else begin
        let payload = Bytes.sub t.buf 4 plen in
        let rest = t.len - 4 - plen in
        Bytes.blit t.buf (4 + plen) t.buf 0 rest;
        t.len <- rest;
        Some payload
      end
end
