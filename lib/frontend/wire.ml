exception Protocol_error of string

let max_frame = 1 lsl 20
let protocol_version = 3

type routed_call = { rc_client : int; rc_seq : int; rc_call : bytes }
type shard_read = { sr_table : int; sr_key : int64; sr_value : bytes option }
type shard_outcome = [ `Committed | `Aborted | `Deferred ]

type request =
  | Hello of { client : int; version : int; resume : bool; last_seq : int }
  | Submit of { req : int; proc : string; args : bytes }
  | Bye
  | Shutdown
  | Stats
  | Shard_hello of { gen : int; shard : int; shards : int; version : int }
  | Route of { epoch : int; calls : routed_call array; reads : shard_read array }
  | Fence of { epoch : int; reads : shard_read array }

type reject_reason = [ `Overloaded | `Unknown_proc | `Bad_frame ]

type response =
  | Hello_ok of { version : int; last_acked : int }
  | Result of { req : int; outcome : [ `Committed | `Aborted ] }
  | Rejected of { req : int; reason : reject_reason }
  | Bye_ok of { digest : int64 }
  | Server_error of string
  | Stats_ok of { json : string }
  | Shard_hello_ok of { version : int; shard : int; shards : int; applied : int }
  | Route_reads of { epoch : int; reads : shard_read array; complete : bool }
  | Fence_ok of { epoch : int; outcomes : shard_outcome array; digest : int64 }

let no_req = 0xFFFFFFFF

(* Tags. Requests are 0x0x, responses 0x8x. The 0x06..0x08 / 0x87..0x89
   block is the v3 shard plane: a v2 peer never sees these tags (the
   router only routes to shards that answered Shard_hello_ok with
   version >= 3), and every pre-v3 frame is encoded byte-identically. *)
let tag_hello = 0x01
let tag_submit = 0x02
let tag_bye = 0x03
let tag_shutdown = 0x04
let tag_stats = 0x05
let tag_shard_hello = 0x06
let tag_route = 0x07
let tag_fence = 0x08
let tag_hello_ok = 0x81
let tag_result = 0x82
let tag_rejected = 0x83
let tag_bye_ok = 0x84
let tag_server_error = 0x85
let tag_stats_ok = 0x86
let tag_shard_hello_ok = 0x87
let tag_route_reads = 0x88
let tag_fence_ok = 0x89

let err fmt = Printf.ksprintf (fun s -> raise (Protocol_error s)) fmt

let add_u32 buf v =
  if v < 0 || v > 0xFFFFFFFF then err "u32 out of range: %d" v;
  Buffer.add_int32_le buf (Int32.of_int v)

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF

(* Remote-read tables travel in two frames (Fence, Route_reads) with
   one layout: [u32 n] then per read [u32 table][i64 key][u8 present]
   [u32 len][len bytes]. An absent value ([present] = 0, len omitted)
   is a live answer — "that key has no committed row" — distinct from
   the key not appearing at all. *)
let add_reads b reads =
  add_u32 b (Array.length reads);
  Array.iter
    (fun { sr_table; sr_key; sr_value } ->
      add_u32 b sr_table;
      Buffer.add_int64_le b sr_key;
      match sr_value with
      | None -> Buffer.add_uint8 b 0
      | Some v ->
          Buffer.add_uint8 b 1;
          add_u32 b (Bytes.length v);
          Buffer.add_bytes b v)
    reads

let need payload n =
  if Bytes.length payload < n then err "truncated payload: %d < %d" (Bytes.length payload) n

let get_reads payload off =
  need payload (off + 4);
  let n = get_u32 payload off in
  let pos = ref (off + 4) in
  let reads = Array.make n { sr_table = 0; sr_key = 0L; sr_value = None } in
  for i = 0 to n - 1 do
    need payload (!pos + 13);
    let sr_table = get_u32 payload !pos in
    let sr_key = Bytes.get_int64_le payload (!pos + 4) in
    (match Bytes.get_uint8 payload (!pos + 12) with
    | 0 ->
        pos := !pos + 13;
        reads.(i) <- { sr_table; sr_key; sr_value = None }
    | 1 ->
        need payload (!pos + 17);
        let len = get_u32 payload (!pos + 13) in
        need payload (!pos + 17 + len);
        let v = Bytes.sub payload (!pos + 17) len in
        pos := !pos + 17 + len;
        reads.(i) <- { sr_table; sr_key; sr_value = Some v }
    | f -> err "bad read-present flag %d" f)
  done;
  (reads, !pos)

(* The bare read-table codec, exported for the shard journal: a fence's
   merged reads are journaled as a sentinel entry so recovery can
   re-execute the epoch without re-contacting the cluster. *)
let encode_reads reads =
  let b = Buffer.create 64 in
  add_reads b reads;
  Buffer.to_bytes b

let decode_reads payload = fst (get_reads payload 0)

(* A frame is [u32_le payload_len][payload]; the payload starts with a
   one-byte tag. [frame] seals a tagged body into a full frame. *)
let frame tag body =
  let payload_len = 1 + Buffer.length body in
  if payload_len > max_frame then err "frame too large: %d" payload_len;
  let buf = Buffer.create (4 + payload_len) in
  Buffer.add_int32_le buf (Int32.of_int payload_len);
  Buffer.add_uint8 buf tag;
  Buffer.add_buffer buf body;
  Buffer.to_bytes buf

let encode_request = function
  | Hello { client; version; resume; last_seq } ->
      (* Version 1 frames carried only the client label; the v2 tail
         adds protocol version, a resume flag and the last sequence
         number the client saw acknowledged, enabling exactly-once
         session resumption after reconnect. *)
      let b = Buffer.create 17 in
      add_u32 b client;
      add_u32 b version;
      Buffer.add_uint8 b (if resume then 1 else 0);
      if last_seq < 0 then err "negative last_seq %d" last_seq;
      Buffer.add_int64_le b (Int64.of_int last_seq);
      frame tag_hello b
  | Submit { req; proc; args } ->
      let n = String.length proc in
      if n = 0 || n > 255 then err "procedure name length %d" n;
      let b = Buffer.create (5 + n + Bytes.length args) in
      add_u32 b req;
      Buffer.add_uint8 b n;
      Buffer.add_string b proc;
      Buffer.add_bytes b args;
      frame tag_submit b
  | Bye -> frame tag_bye (Buffer.create 0)
  | Shutdown -> frame tag_shutdown (Buffer.create 0)
  | Stats -> frame tag_stats (Buffer.create 0)
  | Shard_hello { gen; shard; shards; version } ->
      let b = Buffer.create 16 in
      add_u32 b gen;
      add_u32 b shard;
      add_u32 b shards;
      add_u32 b version;
      frame tag_shard_hello b
  | Route { epoch; calls; reads } ->
      let b = Buffer.create 256 in
      add_u32 b epoch;
      add_u32 b (Array.length calls);
      Array.iter
        (fun { rc_client; rc_seq; rc_call } ->
          add_u32 b rc_client;
          add_u32 b rc_seq;
          add_u32 b (Bytes.length rc_call);
          Buffer.add_bytes b rc_call)
        calls;
      add_reads b reads;
      frame tag_route b
  | Fence { epoch; reads } ->
      let b = Buffer.create 256 in
      add_u32 b epoch;
      add_reads b reads;
      frame tag_fence b

let reason_code = function `Overloaded -> 0 | `Unknown_proc -> 1 | `Bad_frame -> 2

let reason_of_code = function
  | 0 -> `Overloaded
  | 1 -> `Unknown_proc
  | 2 -> `Bad_frame
  | c -> err "unknown reject reason %d" c

let encode_response = function
  | Hello_ok { version; last_acked } ->
      let b = Buffer.create 12 in
      add_u32 b version;
      if last_acked < 0 then err "negative last_acked %d" last_acked;
      Buffer.add_int64_le b (Int64.of_int last_acked);
      frame tag_hello_ok b
  | Result { req; outcome } ->
      let b = Buffer.create 5 in
      add_u32 b req;
      Buffer.add_uint8 b (match outcome with `Committed -> 0 | `Aborted -> 1);
      frame tag_result b
  | Rejected { req; reason } ->
      let b = Buffer.create 5 in
      add_u32 b req;
      Buffer.add_uint8 b (reason_code reason);
      frame tag_rejected b
  | Bye_ok { digest } ->
      let b = Buffer.create 8 in
      Buffer.add_int64_le b digest;
      frame tag_bye_ok b
  | Server_error msg ->
      let b = Buffer.create (String.length msg) in
      Buffer.add_string b msg;
      frame tag_server_error b
  | Stats_ok { json } ->
      let b = Buffer.create (String.length json) in
      Buffer.add_string b json;
      frame tag_stats_ok b
  | Shard_hello_ok { version; shard; shards; applied } ->
      let b = Buffer.create 16 in
      add_u32 b version;
      add_u32 b shard;
      add_u32 b shards;
      add_u32 b applied;
      frame tag_shard_hello_ok b
  | Route_reads { epoch; reads; complete } ->
      let b = Buffer.create 256 in
      add_u32 b epoch;
      Buffer.add_uint8 b (if complete then 1 else 0);
      add_reads b reads;
      frame tag_route_reads b
  | Fence_ok { epoch; outcomes; digest } ->
      let b = Buffer.create (13 + Array.length outcomes) in
      add_u32 b epoch;
      Buffer.add_int64_le b digest;
      add_u32 b (Array.length outcomes);
      Array.iter
        (fun o ->
          Buffer.add_uint8 b
            (match o with `Committed -> 0 | `Aborted -> 1 | `Deferred -> 2))
        outcomes;
      frame tag_fence_ok b

let decode_request payload =
  need payload 1;
  let tag = Bytes.get_uint8 payload 0 in
  if tag = tag_hello then begin
    need payload 5;
    let client = get_u32 payload 1 in
    if Bytes.length payload = 5 then
      (* Legacy v1 Hello: label only, no session semantics. *)
      Hello { client; version = 1; resume = false; last_seq = 0 }
    else begin
      need payload 18;
      (* Any version >= 1 decodes: a future v3 client must be able to
         reach the server and negotiate down (the Hello_ok replies with
         min(client, server)). Unknown tail bytes are ignored — newer
         Hellos may only append fields. *)
      let version = get_u32 payload 5 in
      if version < 1 then err "unsupported protocol version %d" version;
      let resume =
        match Bytes.get_uint8 payload 9 with
        | 0 -> false
        | 1 -> true
        | f -> err "bad resume flag %d" f
      in
      let last_seq = Int64.to_int (Bytes.get_int64_le payload 10) in
      if last_seq < 0 then err "negative last_seq";
      Hello { client; version; resume; last_seq }
    end
  end
  else if tag = tag_submit then begin
    need payload 6;
    let req = get_u32 payload 1 in
    let n = Bytes.get_uint8 payload 5 in
    if n = 0 then err "empty procedure name";
    need payload (6 + n);
    let proc = Bytes.sub_string payload 6 n in
    let args = Bytes.sub payload (6 + n) (Bytes.length payload - 6 - n) in
    Submit { req; proc; args }
  end
  else if tag = tag_bye then Bye
  else if tag = tag_shutdown then Shutdown
  else if tag = tag_stats then Stats
  else if tag = tag_shard_hello then begin
    need payload 17;
    Shard_hello
      {
        gen = get_u32 payload 1;
        shard = get_u32 payload 5;
        shards = get_u32 payload 9;
        version = get_u32 payload 13;
      }
  end
  else if tag = tag_route then begin
    need payload 9;
    let epoch = get_u32 payload 1 in
    let n = get_u32 payload 5 in
    let pos = ref 9 in
    let calls = Array.make n { rc_client = 0; rc_seq = 0; rc_call = Bytes.empty } in
    for i = 0 to n - 1 do
      need payload (!pos + 12);
      let rc_client = get_u32 payload !pos in
      let rc_seq = get_u32 payload (!pos + 4) in
      let len = get_u32 payload (!pos + 8) in
      need payload (!pos + 12 + len);
      let rc_call = Bytes.sub payload (!pos + 12) len in
      pos := !pos + 12 + len;
      calls.(i) <- { rc_client; rc_seq; rc_call }
    done;
    let reads, _ = get_reads payload !pos in
    Route { epoch; calls; reads }
  end
  else if tag = tag_fence then begin
    need payload 5;
    let epoch = get_u32 payload 1 in
    let reads, _ = get_reads payload 5 in
    Fence { epoch; reads }
  end
  else err "unknown request tag 0x%02x" tag

let decode_response payload =
  need payload 1;
  let tag = Bytes.get_uint8 payload 0 in
  if tag = tag_hello_ok then begin
    if Bytes.length payload = 1 then
      (* Legacy v1 Hello_ok: bare acknowledgement. *)
      Hello_ok { version = 1; last_acked = 0 }
    else begin
      need payload 13;
      let version = get_u32 payload 1 in
      let last_acked = Int64.to_int (Bytes.get_int64_le payload 5) in
      if last_acked < 0 then err "negative last_acked";
      Hello_ok { version; last_acked }
    end
  end
  else if tag = tag_result then begin
    need payload 6;
    let req = get_u32 payload 1 in
    match Bytes.get_uint8 payload 5 with
    | 0 -> Result { req; outcome = `Committed }
    | 1 -> Result { req; outcome = `Aborted }
    | c -> err "unknown outcome code %d" c
  end
  else if tag = tag_rejected then begin
    need payload 6;
    Rejected { req = get_u32 payload 1; reason = reason_of_code (Bytes.get_uint8 payload 5) }
  end
  else if tag = tag_bye_ok then begin
    need payload 9;
    Bye_ok { digest = Bytes.get_int64_le payload 1 }
  end
  else if tag = tag_server_error then
    Server_error (Bytes.sub_string payload 1 (Bytes.length payload - 1))
  else if tag = tag_stats_ok then
    Stats_ok { json = Bytes.sub_string payload 1 (Bytes.length payload - 1) }
  else if tag = tag_shard_hello_ok then begin
    need payload 17;
    Shard_hello_ok
      {
        version = get_u32 payload 1;
        shard = get_u32 payload 5;
        shards = get_u32 payload 9;
        applied = get_u32 payload 13;
      }
  end
  else if tag = tag_route_reads then begin
    need payload 6;
    let epoch = get_u32 payload 1 in
    let complete =
      match Bytes.get_uint8 payload 5 with
      | 0 -> false
      | 1 -> true
      | f -> err "bad complete flag %d" f
    in
    let reads, _ = get_reads payload 6 in
    Route_reads { epoch; reads; complete }
  end
  else if tag = tag_fence_ok then begin
    need payload 17;
    let epoch = get_u32 payload 1 in
    let digest = Bytes.get_int64_le payload 5 in
    let n = get_u32 payload 13 in
    need payload (17 + n);
    let outcomes =
      Array.init n (fun i ->
          match Bytes.get_uint8 payload (17 + i) with
          | 0 -> `Committed
          | 1 -> `Aborted
          | 2 -> `Deferred
          | c -> err "unknown shard outcome code %d" c)
    in
    Fence_ok { epoch; outcomes; digest }
  end
  else err "unknown response tag 0x%02x" tag

module Reader = struct
  type t = { mutable buf : bytes; mutable len : int }

  let create () = { buf = Bytes.create 4096; len = 0 }

  let ensure t extra =
    let need = t.len + extra in
    if Bytes.length t.buf < need then begin
      let cap = ref (Bytes.length t.buf) in
      while !cap < need do
        cap := !cap * 2
      done;
      let b = Bytes.create !cap in
      Bytes.blit t.buf 0 b 0 t.len;
      t.buf <- b
    end

  let feed t src ~off ~len =
    ensure t len;
    Bytes.blit src off t.buf t.len len;
    t.len <- t.len + len

  let next_payload t =
    if t.len < 4 then None
    else
      let plen = get_u32 t.buf 0 in
      if plen = 0 || plen > max_frame then err "bad frame length %d" plen
      else if t.len < 4 + plen then None
      else begin
        let payload = Bytes.sub t.buf 4 plen in
        let rest = t.len - 4 - plen in
        Bytes.blit t.buf (4 + plen) t.buf 0 rest;
        t.len <- rest;
        Some payload
      end
end
