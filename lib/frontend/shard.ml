module Engine_intf = Nvcaracal.Engine_intf
module Txn = Nvcaracal.Txn
module Table = Nvcaracal.Table
module Sid = Nvcaracal.Sid
module Determinism = Nvcaracal.Determinism
module Fnv = Nv_util.Fnv

(* The sentinel session id under which a fence's merged read table is
   journaled (encodable: Journal round-trips client ids as u32). Real
   sessions are non-negative OCaml ints well below it. *)
let sentinel_client = 0xFFFFFFFF

type history_entry = {
  h_reads : Wire.shard_read array;  (** the epoch's full merged read table *)
  h_outcomes : Wire.shard_outcome array;
  h_digest : int64;
}

(* Reconnaissance state between Route and Fence of one epoch. *)
type recon = { rc_epoch : int; rc_calls : Wire.routed_call array; rc_txns : Txn.t array }

type t = {
  shard_id : int;
  shards : int;
  engine : Engine_intf.packed;
  registry : Proc.t;
  tables : Table.t list;
  journal : Journal.t option;
  mutable router_gen : int;
  mutable applied : int;  (** highest epoch applied; 0 = none *)
  mutable recon : recon option;
  history : (int, history_entry) Hashtbl.t;
}

(* Same placement hash as {!Nvcaracal.Partition.owner}: a routed
   cluster and an in-process partitioned engine agree on ownership. *)
let owner ~shards ~table ~key = Fnv.combine (Fnv.hash_int64 key) table mod shards

let create ~shard_id ~shards ?journal ~engine ~registry ~tables () =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  if shard_id < 0 || shard_id >= shards then
    invalid_arg
      (Printf.sprintf "Shard.create: shard_id %d out of range (%d shards)" shard_id shards);
  {
    shard_id;
    shards;
    engine;
    registry;
    tables;
    journal;
    router_gen = 0;
    applied = 0;
    recon = None;
    history = Hashtbl.create 256;
  }

let shard_id t = t.shard_id
let shards t = t.shards
let applied t = t.applied
let engine t = t.engine
let owns t ~table ~key = owner ~shards:t.shards ~table ~key = t.shard_id

(* Only this shard's owned rows load here: the cluster's initial state
   is the workload's, split by the placement hash. *)
let bulk_load t rows =
  let (Engine_intf.Packed ((module E), e)) = t.engine in
  E.bulk_load e (Seq.filter (fun (table, key, _) -> owns t ~table ~key) rows)

(* Owned-state digest: one hash per committed row, XORed. XOR makes the
   combination order-free and shard-count-free, so the cluster digest
   (XOR over all members) is the same value however the rows are
   placed — the determinism oracle across shard counts. *)
let digest t =
  let (Engine_intf.Packed ((module E), e)) = t.engine in
  List.fold_left
    (fun acc (tb : Table.t) ->
      let h = ref acc in
      E.iter_committed e ~table:tb.Table.id (fun k v ->
          let row =
            Fnv.combine
              (Fnv.combine (Fnv.hash_int64 k) (Fnv.hash_int tb.Table.id))
              (Fnv.hash_string (Bytes.to_string v))
          in
          h := Int64.logxor !h (Int64.of_int row));
      !h)
    0L t.tables

let read_committed t ~table ~key =
  let (Engine_intf.Packed ((module E), e)) = t.engine in
  E.read_committed e ~table ~key

(* --- Round one: reconnaissance ---------------------------------------

   Discover which of this shard's keys the epoch touches. Two sources:
   every owned key in a transaction's declared write set (free — no
   execution needed), and, for transactions with undeclared reads, a
   speculative execution whose reads answer from committed state
   (owned), from the router's partial merged table (remote, if a prior
   pass surfaced the value), or go unresolved. A transaction whose
   [reads_declared] flag promises its reads stay inside its write set
   never executes here — its keys are already seeded — so declared
   workloads converge in one pass. An unresolved remote read marks the
   pass incomplete: the body may have stopped early (workload bodies
   fail on missing rows) or branched wrong, so the router must route
   again with a richer table before it can trust the union. Effects
   stay in per-txn buffers; every exception is swallowed. *)

let unsupported () = invalid_arg "Shard: operation not supported in routed mode"

let recon_pass t ~epoch ~(partial : (int * int64, bytes option) Hashtbl.t) txns =
  let n = Array.length txns in
  let touched = Hashtbl.create 64 in
  let complete = ref true in
  let note ~table ~key = if owns t ~table ~key then Hashtbl.replace touched (table, key) () in
  Array.iter
    (fun (txn : Txn.t) ->
      List.iter
        (function
          | Txn.Update { table; key } | Txn.Delete { table; key } -> note ~table ~key
          | Txn.Insert { table; key; _ } -> note ~table ~key)
        txn.Txn.write_set)
    txns;
  for i = 0 to n - 1 do
    if not txns.(i).Txn.reads_declared then begin
      let buffer = Hashtbl.create 8 in
      let read ~table ~key =
        match Hashtbl.find_opt buffer (table, key) with
        | Some v -> Some v
        | None ->
            if owns t ~table ~key then begin
              Hashtbl.replace touched (table, key) ();
              read_committed t ~table ~key
            end
            else begin
              match Hashtbl.find_opt partial (table, key) with
              | Some v -> v
              | None ->
                  complete := false;
                  None
            end
      in
      let ctx =
        {
          Txn.Ctx.sid = Sid.make ~epoch ~seq:i;
          core = 0;
          read;
          write = (fun ~table ~key data -> Hashtbl.replace buffer (table, key) data);
          delete = (fun ~table:_ ~key:_ -> unsupported ());
          range_read = (fun ~table:_ ~lo:_ ~hi:_ -> unsupported ());
          max_below = (fun ~table:_ _ -> unsupported ());
          min_above = (fun ~table:_ _ -> unsupported ());
          abort = (fun () -> raise Txn.Aborted);
          compute = (fun ~ops:_ -> ());
          counter_next = (fun ~idx:_ -> unsupported ());
          notes = Hashtbl.create 4;
        }
      in
      (try txns.(i).Txn.body ctx with _ -> ())
    end
  done;
  let keys = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) touched []) in
  ( Array.of_list
      (List.map
         (fun (table, key) ->
           { Wire.sr_table = table; sr_key = key; sr_value = read_committed t ~table ~key })
         keys),
    !complete )

let route t ~epoch ~calls ~(reads : Wire.shard_read array) =
  if epoch <= t.applied then
    (* Idempotent re-route (router failover, shard respawn mid-epoch):
       answer with the epoch's FULL merged read table from history. A
       recovering router merges these with fresh members' owned
       answers, so members that already applied the epoch supply the
       epoch-start values nobody can re-read from committed state. *)
    match Hashtbl.find_opt t.history epoch with
    | Some h -> (h.h_reads, true)
    | None ->
        failwith
          (Printf.sprintf "Shard.route: epoch %d already applied and not in history" epoch)
  else if epoch = t.applied + 1 then begin
    let txns =
      (* Later reconnaissance rounds of the same epoch reuse the
         rebuilt transactions; only the partial table grows. *)
      match t.recon with
      | Some rc when rc.rc_epoch = epoch -> rc.rc_txns
      | _ ->
          let txns =
            Array.map
              (fun (c : Wire.routed_call) -> Proc.rebuild t.registry c.Wire.rc_call)
              calls
          in
          t.recon <- Some { rc_epoch = epoch; rc_calls = calls; rc_txns = txns };
          txns
    in
    let partial = Hashtbl.create (Array.length reads) in
    Array.iter
      (fun { Wire.sr_table; sr_key; sr_value } ->
        Hashtbl.replace partial (sr_table, sr_key) sr_value)
      reads;
    recon_pass t ~epoch ~partial txns
  end
  else
    failwith
      (Printf.sprintf "Shard.route: epoch gap (routed %d, applied %d)" epoch t.applied)

(* --- Round two: fenced deterministic execution -----------------------

   With the merged read table in hand the batch re-executes for real:
   every read resolves (buffer, then the fence table, then owned
   committed state), {!Determinism.verdicts} decides each transaction's
   fate — identically on every shard, no voting — and this shard
   journals then applies its owned slice of the committed writes. *)

let run_fence t ~epoch ~txns ~(reads : Wire.shard_read array) =
  let rtbl = Hashtbl.create 64 in
  Array.iter
    (fun { Wire.sr_table; sr_key; sr_value } ->
      Hashtbl.replace rtbl (sr_table, sr_key) sr_value)
    reads;
  let n = Array.length txns in
  let buffers = Array.init n (fun _ -> Hashtbl.create 8) in
  let read_sets = Array.init n (fun _ -> Hashtbl.create 8) in
  let user_aborted = Array.make n false in
  for i = 0 to n - 1 do
    let buffer = buffers.(i) and rset = read_sets.(i) in
    let read ~table ~key =
      match Hashtbl.find_opt buffer (table, key) with
      | Some v -> Some v
      | None -> (
          Hashtbl.replace rset (table, key) ();
          match Hashtbl.find_opt rtbl (table, key) with
          | Some v -> v
          | None ->
              if owns t ~table ~key then read_committed t ~table ~key
              else
                (* A read reached a remote key the reconnaissance pass
                   never saw (control flow depended on a remote value).
                   Resolving it would need another round; fail loudly
                   rather than diverge. docs/CLUSTER.md spells out the
                   static-read-pattern requirement this enforces. *)
                failwith
                  (Printf.sprintf
                     "Shard %d: unresolved remote read (table %d, key %Ld) at fence %d"
                     t.shard_id table key epoch))
    in
    let ctx =
      {
        Txn.Ctx.sid = Sid.make ~epoch ~seq:i;
        core = 0;
        read;
        write = (fun ~table ~key data -> Hashtbl.replace buffer (table, key) data);
        delete = (fun ~table:_ ~key:_ -> unsupported ());
        range_read = (fun ~table:_ ~lo:_ ~hi:_ -> unsupported ());
        max_below = (fun ~table:_ _ -> unsupported ());
        min_above = (fun ~table:_ _ -> unsupported ());
        abort = (fun () -> raise Txn.Aborted);
        compute = (fun ~ops:_ -> ());
        counter_next = (fun ~idx:_ -> unsupported ());
        notes = Hashtbl.create 4;
      }
    in
    match txns.(i).Txn.body ctx with
    | () -> ()
    | exception Txn.Aborted ->
        user_aborted.(i) <- true;
        Hashtbl.reset buffer
  done;
  let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] in
  let verdicts =
    Determinism.verdicts ~writes:(Array.map keys buffers) ~reads:(Array.map keys read_sets)
      ~user_aborted
  in
  let decisions = ref [] in
  let outcomes =
    Array.mapi
      (fun i v ->
        match (v : Determinism.verdict) with
        | Determinism.Abort -> `Aborted
        | Determinism.Defer -> `Deferred
        | Determinism.Commit ->
            Hashtbl.iter (fun key data -> decisions := (key, data) :: !decisions) buffers.(i);
            `Committed)
      verdicts
  in
  (outcomes, List.sort compare !decisions)

(* Commit this shard's slice of the epoch's writes as one blind-write
   batch — the same shape as {!Partition.run_epoch}'s apply pass, but
   with the write set declared so it also runs on engines that enforce
   declarations (Partition's Aria nodes never check; a shard's engine
   may be any variant). *)
let apply_txn ~table ~key data =
  Txn.make
    ~input:(Nvcaracal.Partition.encode_write ~table ~key data)
    ~write_set:[ Txn.Update { table; key } ]
    (fun ctx -> ctx.Txn.Ctx.write ~table ~key data)

let apply_decisions t decisions =
  let batch =
    Array.of_list
      (List.filter_map
         (fun (((table, key) : int * int64), data) ->
           if owns t ~table ~key then Some (apply_txn ~table ~key data) else None)
         decisions)
  in
  let (Engine_intf.Packed ((module E), e)) = t.engine in
  let _, d = E.run_batch e batch in
  assert (Array.length d = 0)

let record_history t ~epoch ~reads ~outcomes =
  let entry = { h_reads = reads; h_outcomes = outcomes; h_digest = digest t } in
  Hashtbl.replace t.history epoch entry;
  entry

let fence t ~epoch ~reads =
  if epoch <= t.applied then
    (* Idempotent: the epoch is already durable; hand back its cached
       verdicts and digest. *)
    match Hashtbl.find_opt t.history epoch with
    | Some h -> (h.h_outcomes, h.h_digest)
    | None ->
        failwith
          (Printf.sprintf "Shard.fence: epoch %d already applied and not in history" epoch)
  else
    match t.recon with
    | Some rc when rc.rc_epoch = epoch ->
        Nv_util.Crashpoint.hit "shard-fence";
        let outcomes, decisions = run_fence t ~epoch ~txns:rc.rc_txns ~reads in
        (* Journal BEFORE applying: after a kill-9 between the two, the
           journaled record replays to the same applied state. The
           merged read table rides along as a sentinel entry so replay
           needs no cluster round trip. *)
        (match t.journal with
        | None -> ()
        | Some j ->
            let entries =
              Array.to_list
                (Array.map
                   (fun (c : Wire.routed_call) ->
                     { Journal.j_client = c.Wire.rc_client; j_seq = c.rc_seq;
                       j_call = c.rc_call })
                   rc.rc_calls)
              @ [ { Journal.j_client = sentinel_client; j_seq = epoch;
                    j_call = Wire.encode_reads reads } ]
            in
            Journal.append j ~batch:epoch ~entries;
            Nv_util.Crashpoint.hit "shard-post-journal");
        apply_decisions t decisions;
        t.applied <- epoch;
        t.recon <- None;
        let h = record_history t ~epoch ~reads ~outcomes in
        Nv_util.Crashpoint.hit "shard-applied";
        (outcomes, h.h_digest)
    | Some rc ->
        failwith
          (Printf.sprintf "Shard.fence: fence %d does not match routed epoch %d" epoch
             rc.rc_epoch)
    | None -> failwith (Printf.sprintf "Shard.fence: no reconnaissance state for epoch %d" epoch)

(* --- Crash recovery ---------------------------------------------------

   Replay the shard's own journal: each record is one fence (the global
   batch plus its sentinel read table), re-executed through the exact
   live path. The engine starts fresh and bulk-loaded, so replay
   reproduces the applied state and refills the history table Route
   consults for idempotent answers. *)

let recover t ~records =
  Nv_util.Crashpoint.suppress @@ fun () ->
  List.iter
    (fun (r : Journal.record) ->
      let epoch = r.Journal.r_batch in
      if epoch > t.applied then begin
        if epoch <> t.applied + 1 then
          failwith
            (Printf.sprintf "Shard.recover: journal gap (record %d, applied %d)" epoch
               t.applied);
        let sentinels, calls =
          List.partition (fun (e : Journal.entry) -> e.Journal.j_client = sentinel_client)
            r.Journal.r_entries
        in
        let reads =
          match sentinels with
          | [ s ] -> Wire.decode_reads s.Journal.j_call
          | _ -> failwith "Shard.recover: record lacks its fence-reads sentinel"
        in
        let txns =
          Array.of_list
            (List.map (fun (e : Journal.entry) -> Proc.rebuild t.registry e.Journal.j_call)
               calls)
        in
        let outcomes, decisions = run_fence t ~epoch ~txns ~reads in
        apply_decisions t decisions;
        t.applied <- epoch;
        ignore (record_history t ~epoch ~reads ~outcomes)
      end)
    records

(* --- Wire dispatch ----------------------------------------------------

   One shard-plane request in, one response out; errors become
   [Server_error] frames (the router treats route/fence errors as fatal
   for the connection and re-drives via respawn + idempotent replay). *)

let handle t (req : Wire.request) : Wire.response =
  match req with
  | Wire.Shard_hello { gen; shard; shards; version } ->
      if shard <> t.shard_id || shards <> t.shards then
        Wire.Server_error
          (Printf.sprintf "shard identity mismatch: you want %d/%d, I am %d/%d" shard shards
             t.shard_id t.shards)
      else if gen < t.router_gen then
        Wire.Server_error
          (Printf.sprintf "fenced: router generation %d superseded by %d" gen t.router_gen)
      else begin
        t.router_gen <- gen;
        Wire.Shard_hello_ok
          {
            version = min version Wire.protocol_version;
            shard = t.shard_id;
            shards = t.shards;
            applied = t.applied;
          }
      end
  | Wire.Route { epoch; calls; reads } -> (
      try
        let reads, complete = route t ~epoch ~calls ~reads in
        Wire.Route_reads { epoch; reads; complete }
      with Failure msg | Invalid_argument msg -> Wire.Server_error msg)
  | Wire.Fence { epoch; reads } -> (
      try
        let outcomes, digest = fence t ~epoch ~reads in
        Wire.Fence_ok { epoch; outcomes; digest }
      with Failure msg | Invalid_argument msg -> Wire.Server_error msg)
  | Wire.Hello _ | Wire.Submit _ | Wire.Bye | Wire.Shutdown | Wire.Stats ->
      Wire.Server_error "client-plane frame on a shard endpoint"

(* --- The shard server loop --------------------------------------------

   A small synchronous select loop: the only peer that matters is the
   one live router, frames are request/response, and the deterministic
   work happens inside [handle]. Each connection must open with
   [Shard_hello]; a connection whose generation has been superseded is
   fenced off — its Route/Fence frames are refused, so a zombie router
   that lost a failover race cannot drive the shard. *)

type conn = { fd : Unix.file_descr; reader : Wire.Reader.t; mutable gen : int option }

let bind_listen = function
  | `Unix path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 16;
      fd
  | `Tcp (host, port) ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      let addr =
        try Unix.inet_addr_of_string host
        with _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
      in
      Unix.bind fd (Unix.ADDR_INET (addr, port));
      Unix.listen fd 16;
      fd

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    match Unix.write fd b !off (len - !off) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | n -> off := !off + n
  done

let serve t ~address ~should_stop =
  if not Sys.win32 then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let listen_fd = bind_listen address in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 4 in
  let close_conn c =
    Hashtbl.remove conns c.fd;
    try Unix.close c.fd with Unix.Unix_error _ -> ()
  in
  let respond c (resp : Wire.response) =
    try write_all c.fd (Wire.encode_response resp)
    with Unix.Unix_error _ -> close_conn c
  in
  let dispatch c payload =
    match Wire.decode_request payload with
    | Wire.Shard_hello { gen; _ } as req ->
        let resp = handle t req in
        (match resp with Wire.Shard_hello_ok _ -> c.gen <- Some gen | _ -> ());
        respond c resp
    | req -> (
        match c.gen with
        | Some g when g >= t.router_gen -> respond c (handle t req)
        | Some _ -> respond c (Wire.Server_error "fenced: a newer router generation took over")
        | None -> respond c (Wire.Server_error "shard-plane frame before Shard_hello"))
  in
  let handle_readable c =
    let buf = Bytes.create 65536 in
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn c
    | 0 -> close_conn c
    | n -> (
        Wire.Reader.feed c.reader buf ~off:0 ~len:n;
        try
          let continue = ref true in
          while !continue && Hashtbl.mem conns c.fd do
            match Wire.Reader.next_payload c.reader with
            | None -> continue := false
            | Some payload -> dispatch c payload
          done
        with Wire.Protocol_error msg ->
          respond c (Wire.Server_error msg);
          close_conn c)
  in
  while not (should_stop ()) do
    let reads = listen_fd :: Hashtbl.fold (fun fd _ acc -> fd :: acc) conns [] in
    let readable, _, _ =
      try Unix.select reads [] [] 0.05
      with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
    in
    List.iter
      (fun fd ->
        if fd = listen_fd then (
          match Unix.accept listen_fd with
          | exception Unix.Unix_error _ -> ()
          | cfd, _ ->
              Hashtbl.replace conns cfd
                { fd = cfd; reader = Wire.Reader.create (); gen = None })
        else
          match Hashtbl.find_opt conns fd with
          | Some c -> handle_readable c
          | None -> ())
      readable
  done;
  Hashtbl.iter (fun _ c -> try Unix.close c.fd with Unix.Unix_error _ -> ()) conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  match address with
  | `Unix path -> ( try Sys.remove path with Sys_error _ -> ())
  | `Tcp _ -> ()
