module Procs = Nv_workloads.Procs
module Txn = Nvcaracal.Txn

type t = { by_name : (string, Procs.registration) Hashtbl.t; names : string list }

let of_workload (w : Nv_workloads.Workload.t) =
  let by_name = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let name = Procs.name r in
      if String.length name > 255 then
        invalid_arg (Printf.sprintf "Proc.of_workload: name %S longer than 255 bytes" name);
      if Hashtbl.mem by_name name then
        invalid_arg (Printf.sprintf "Proc.of_workload: duplicate procedure %S" name);
      Hashtbl.add by_name name r)
    w.procs;
  { by_name; names = List.map Procs.name w.procs }

let names t = t.names
let mem t name = Hashtbl.mem t.by_name name

(* Framed call record: [u8 len(name)][name][args]. This is both the
   wire form of a Submit body's tail and the input record logged by the
   engine, so a recovered log replays through the same registry. *)
let encode_call ~proc ~args =
  let n = String.length proc in
  if n = 0 || n > 255 then invalid_arg "Proc.encode_call: name length";
  let b = Bytes.create (1 + n + Bytes.length args) in
  Bytes.set_uint8 b 0 n;
  Bytes.blit_string proc 0 b 1 n;
  Bytes.blit args 0 b (1 + n) (Bytes.length args);
  b

let decode_call b =
  let total = Bytes.length b in
  if total < 1 then None
  else
    let n = Bytes.get_uint8 b 0 in
    if n = 0 || total < 1 + n then None
    else
      let proc = Bytes.sub_string b 1 n in
      let args = Bytes.sub b (1 + n) (total - 1 - n) in
      Some (proc, args)

let build t ~proc ~args =
  match Hashtbl.find_opt t.by_name proc with
  | None -> Error `Unknown_proc
  | Some r ->
      let txn = Procs.build_from_bytes r args in
      (* Rewrap the input record with the framed call so the engine logs
         the (procedure, args) pair rather than the workload's private
         encoding: [rebuild] then replays logs independently of which
         transaction kind they hold. *)
      Ok { txn with Txn.input = encode_call ~proc ~args }

let rebuild t input =
  match decode_call input with
  | None -> invalid_arg "Proc.rebuild: malformed logged call record"
  | Some (proc, args) -> (
      match build t ~proc ~args with
      | Ok txn -> txn
      | Error `Unknown_proc ->
          invalid_arg (Printf.sprintf "Proc.rebuild: unknown procedure %S in log" proc))
