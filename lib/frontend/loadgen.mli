(** Multi-client load generator: N concurrent wire-protocol clients in
    one [Unix.select] loop.

    Each client draws a deterministic call stream from the workload's
    mix ([gen_call], seeded [seed + client_id]) and runs closed-loop:
    at most [window] calls in flight, with an optional think time
    (loop rounds) after each completion. [window] large relative to the
    server's admission bound turns the generator into an open-loop
    overload source — how the backpressure path is exercised. Rejected
    calls are counted, not resubmitted. *)

type config = private {
  address : Server.address;
  clients : int;
  txns_per_client : int;
  seed : int;
  window : int;  (** max in-flight calls per client (closed loop = 1) *)
  think_ticks : int;  (** loop rounds to pause after each completion *)
  shutdown : bool;  (** send [Shutdown] once every client is done *)
}

val config :
  ?clients:int ->
  ?txns_per_client:int ->
  ?seed:int ->
  ?window:int ->
  ?think_ticks:int ->
  ?shutdown:bool ->
  Server.address ->
  config
(** Defaults: 8 clients x 100 txns, seed 42, window 1, no think time,
    no shutdown. *)

type stats = {
  sent : int;
  committed : int;
  aborted : int;
  rejected : int;
  protocol_errors : int;
  digests : int64 list;  (** per-client [Bye_ok] digests, client order *)
  latency : Nv_util.Histogram.t;
      (** client-observed submit-to-answer wall latency (ns), merged
          across clients; one sample per answered call (results and
          rejections both count — the client waited either way) *)
}

val run : config -> Nv_workloads.Workload.t -> stats
(** Connect, drive every client to completion (Bye/Bye_ok), optionally
    ask the server to shut down, and report aggregate outcomes. *)
