(** Multi-client load generator: N concurrent wire-protocol clients in
    one [Unix.select] loop.

    Each client draws a deterministic call stream from the workload's
    mix ([gen_call], seeded [seed + client_id]) and runs closed-loop:
    at most [window] calls in flight, with an optional think time
    (loop rounds) after each completion. [window] large relative to the
    server's admission bound turns the generator into an open-loop
    overload source — how the backpressure path is exercised. Rejected
    calls are counted, not resubmitted.

    With [reconnect], a dropped connection is not fatal: the client
    backs off (jittered exponential, 20 ms doubling to a 500 ms cap,
    from a jitter stream separate from the call stream) and resumes its
    session — same id, [resume] set — then retransmits every
    unanswered call. Answers for seqs already counted are tallied as
    [duplicates] (zero is the exactly-once check); a server that stays
    unreachable past [retry_timeout_s] fails the client. *)

type config = private {
  address : Server.address;
  clients : int;
  txns_per_client : int;
  seed : int;
  window : int;  (** max in-flight calls per client (closed loop = 1) *)
  think_ticks : int;  (** loop rounds to pause after each completion *)
  shutdown : bool;  (** send [Shutdown] once every client is done *)
  reconnect : bool;  (** survive dropped connections by resuming *)
  retry_timeout_s : float;  (** give up after this long disconnected *)
}

val config :
  ?clients:int ->
  ?txns_per_client:int ->
  ?seed:int ->
  ?window:int ->
  ?think_ticks:int ->
  ?shutdown:bool ->
  ?reconnect:bool ->
  ?retry_timeout_s:float ->
  Server.address ->
  config
(** Defaults: 8 clients x 100 txns, seed 42, window 1, no think time,
    no shutdown, no reconnect, 30 s retry timeout. *)

type stats = {
  sent : int;  (** unique calls generated (retransmissions not counted) *)
  committed : int;
  aborted : int;
  rejected : int;
  protocol_errors : int;
  reconnects : int;  (** successful session resumptions *)
  duplicates : int;
      (** answers for already-answered seqs — must be 0 for a server
          honouring exactly-once *)
  digests : int64 list;  (** per-client [Bye_ok] digests, client order *)
  latency : Nv_util.Histogram.t;
      (** client-observed submit-to-answer wall latency (ns), merged
          across clients; one sample per answered call (results and
          rejections both count — the client waited either way) *)
}

val run : config -> Nv_workloads.Workload.t -> stats
(** Connect, drive every client to completion (Bye/Bye_ok), optionally
    ask the server to shut down, and report aggregate outcomes. *)
