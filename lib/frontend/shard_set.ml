module Engine_intf = Nvcaracal.Engine_intf

(* One admitted call, as the batcher hands it over: the session header
   (the exactly-once identity), the framed call bytes, and the already
   built transaction (used directly on the local fast path; the routed
   path rebuilds from bytes on every shard). *)
type call = {
  c_client : int;
  c_seq : int;
  c_proc : string;
  c_args : bytes;
  c_txn : Nvcaracal.Txn.t;
}

type remote = {
  r_shard : int;
  r_shards : int;
  r_address : Shard_client.address;
  r_retry_s : float;
  r_respawn : (unit -> unit) option;
  r_gen : int;
  mutable r_conn : Shard_client.t option;
  mutable r_digest : int64;  (** last Fence_ok digest; the member's oracle share *)
  mutable r_respawns : int;
}

type member = In_process of Shard.t | Remote of remote

type t =
  | Local of { engine : Engine_intf.packed; tables : Nvcaracal.Table.t list }
  | Cluster of cluster

and cluster = { members : member array; mutable epoch : int }

let local ~engine ~tables = Local { engine; tables }

let in_process s = In_process s

let remote ?(retry_timeout_s = 10.0) ?respawn ~gen ~shard ~shards address =
  Remote
    {
      r_shard = shard;
      r_shards = shards;
      r_address = address;
      r_retry_s = retry_timeout_s;
      r_respawn = respawn;
      r_gen = gen;
      r_conn = None;
      r_digest = 0L;
      r_respawns = 0;
    }

let cluster members =
  if Array.length members = 0 then invalid_arg "Shard_set.cluster: no members";
  Cluster { members; epoch = 0 }

let shards = function Local _ -> 1 | Cluster c -> Array.length c.members
let local_engine = function Local { engine; _ } -> Some engine | Cluster _ -> None

let epoch = function Local _ -> 0 | Cluster c -> c.epoch

let set_epoch t e =
  match t with
  | Local _ -> invalid_arg "Shard_set.set_epoch: single-shard set has no cluster epoch"
  | Cluster c -> c.epoch <- e

let respawns t =
  match t with
  | Local _ -> 0
  | Cluster c ->
      Array.fold_left
        (fun acc m -> match m with Remote r -> acc + r.r_respawns | In_process _ -> acc)
        0 c.members

(* --- Remote member plumbing ------------------------------------------- *)

let drop_conn r =
  (match r.r_conn with Some c -> Shard_client.close c | None -> ());
  r.r_conn <- None

let conn r =
  match r.r_conn with
  | Some c -> c
  | None ->
      let c = Shard_client.connect ~retry_timeout_s:r.r_retry_s r.r_address in
      (* The handshake fences older router generations and tells us the
         shard's applied epoch; the idempotent Route/Fence protocol
         makes explicit catch-up logic unnecessary, so the applied
         value is informational here. *)
      let _applied = Shard_client.hello c ~gen:r.r_gen ~shard:r.r_shard ~shards:r.r_shards in
      r.r_conn <- Some c;
      c

(* Drive one request against a remote member, surviving crashes: a
   [Down] drops the connection, asks the supervisor to respawn the
   process (after the first plain reconnect attempt), and retries — the
   shard plane is idempotent, so re-asking is always safe. *)
let with_remote r f =
  let rec go attempts =
    match f (conn r) with
    | v -> v
    | exception Shard_client.Down msg ->
        drop_conn r;
        if attempts >= 5 then
          failwith (Printf.sprintf "shard %d unreachable: %s" r.r_shard msg)
        else begin
          (* First failure: maybe just a dropped connection — reconnect.
             Still down after that: the process is gone; respawn it. *)
          (if attempts >= 1 then
             match r.r_respawn with
             | Some f ->
                 f ();
                 r.r_respawns <- r.r_respawns + 1
             | None -> ());
          go (attempts + 1)
        end
  in
  go 0

let member_route m ~epoch ~calls ~reads =
  match m with
  | In_process s -> Shard.route s ~epoch ~calls ~reads
  | Remote r -> with_remote r (fun c -> Shard_client.route c ~epoch ~calls ~reads)

(* A fence can land on a member that restarted after Route and so lost
   its reconnaissance state (a [Failure], not a [Down]: the shard is up
   and talking). Re-route it with the final merged table — idempotent —
   and fence again. *)
let member_fence m ~epoch ~calls ~reads =
  match m with
  | In_process s -> Shard.fence s ~epoch ~reads
  | Remote r ->
      let rec go attempts =
        match with_remote r (fun c -> Shard_client.fence c ~epoch ~reads) with
        | v -> v
        | exception Failure msg when attempts < 3 ->
            ignore msg;
            ignore (with_remote r (fun c -> Shard_client.route c ~epoch ~calls ~reads));
            go (attempts + 1)
      in
      go 0

(* --- Execution --------------------------------------------------------- *)

let exec_local engine calls =
  let (Engine_intf.Packed ((module E), db)) = engine in
  let _stats, _deferred = E.run_batch db (Array.map (fun c -> c.c_txn) calls) in
  E.last_batch_outcomes db

(* One routed epoch: iterate Route until reconnaissance converges —
   every member's pass resolved every remote read it attempted — then
   Fence everyone with the final merged table and check — not decide —
   that every verdict vector is identical. Agreement is a theorem of
   determinism here; the assert is a corruption tripwire, never a vote.

   Why iterate: a transaction body with undeclared reads may stop early
   (workloads fail on a missing row) before touching its later owned
   keys, so one pass under-discovers. Each round ships the table merged
   so far; declared-read transactions converge in one round, the rest
   in as many rounds as their read-dependency depth (two for every
   bundled workload). *)
let max_recon_rounds = 32

let exec_cluster c calls =
  c.epoch <- c.epoch + 1;
  let epoch = c.epoch in
  let rcalls =
    Array.map
      (fun cl ->
        {
          Wire.rc_client = cl.c_client;
          rc_seq = cl.c_seq;
          rc_call = Proc.encode_call ~proc:cl.c_proc ~args:cl.c_args;
        })
      calls
  in
  (* Merge with agreement checking: an applied member re-answers with
     the full historical table, which may overlap fresh members' owned
     answers — duplicates must carry equal values. *)
  let merged = Hashtbl.create 64 in
  let merge_answer answer =
    let fresh = ref false in
    Array.iter
      (fun (r : Wire.shard_read) ->
        match Hashtbl.find_opt merged (r.Wire.sr_table, r.Wire.sr_key) with
        | None ->
            Hashtbl.replace merged (r.Wire.sr_table, r.Wire.sr_key) r.Wire.sr_value;
            fresh := true
        | Some v ->
            if v <> r.Wire.sr_value then
              failwith
                (Printf.sprintf
                   "cluster: shards disagree on read (table %d, key %Ld) at epoch %d"
                   r.Wire.sr_table r.Wire.sr_key epoch))
      answer;
    !fresh
  in
  let snapshot () =
    Array.of_list
      (List.map
         (fun ((table, key), v) -> { Wire.sr_table = table; sr_key = key; sr_value = v })
         (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])))
  in
  let rec discover round =
    if round > max_recon_rounds then
      failwith
        (Printf.sprintf "cluster: reconnaissance did not converge at epoch %d" epoch);
    let table = snapshot () in
    let answers =
      Array.map (fun m -> member_route m ~epoch ~calls:rcalls ~reads:table) c.members
    in
    let fresh =
      Array.fold_left (fun acc (a, _) -> if merge_answer a then true else acc) false answers
    in
    let all_complete = Array.for_all (fun (_, complete) -> complete) answers in
    (* Still-incomplete members with nothing fresh left to feed them
       mean a truly value-dependent remote read; stop iterating and let
       the fence fail loudly on the exact key. *)
    if (not all_complete) && fresh then discover (round + 1)
  in
  discover 1;
  let reads = snapshot () in
  let replies = Array.map (fun m -> member_fence m ~epoch ~calls:rcalls ~reads) c.members in
  let outcomes, _ = replies.(0) in
  Array.iteri
    (fun i (o, _) ->
      if o <> outcomes then
        failwith
          (Printf.sprintf "cluster: shard %d's verdict vector diverges at epoch %d" i epoch))
    replies;
  Array.iteri
    (fun i m ->
      match m with Remote r -> r.r_digest <- snd replies.(i) | In_process _ -> ())
    c.members;
  (outcomes :> [ `Committed | `Aborted | `Deferred ] array)

let exec t calls =
  match t with
  | Local { engine; _ } -> exec_local engine calls
  | Cluster c -> exec_cluster c calls

(* --- Inspection -------------------------------------------------------- *)

(* Two digests by design. Local keeps the FNV chain every engine's
   [introspect] reports (golden outputs pin it). Cluster XORs per-row
   hashes across members: order- and placement-independent, so a
   3-shard served run and its 1-shard replay produce the same value —
   the cross-shard determinism oracle. *)
let digest t =
  match t with
  | Local { engine; _ } -> Nv_harness.Engine.state_digest engine
  | Cluster c ->
      Array.fold_left
        (fun acc m ->
          match m with
          | In_process s -> Int64.logxor acc (Shard.digest s)
          | Remote r -> Int64.logxor acc r.r_digest)
        0L c.members

let introspect t =
  match t with
  | Local { engine; _ } ->
      let (Engine_intf.Packed ((module E), db)) = engine in
      E.introspect db
  | Cluster _ ->
      { Engine_intf.wide_execs = 0; serial_reasons = []; state_digest = digest t }

let total_time_ns t =
  match t with
  | Local { engine; _ } ->
      let (Engine_intf.Packed ((module E), db)) = engine in
      E.total_time_ns db
  | Cluster c ->
      (* Only in-process members have a simulated clock to read; remote
         clocks live in other processes. *)
      Array.fold_left
        (fun acc m ->
          match m with
          | In_process s ->
              let (Engine_intf.Packed ((module E), db)) = Shard.engine s in
              Float.max acc (E.total_time_ns db)
          | Remote _ -> acc)
        0.0 c.members

let close t =
  match t with
  | Local _ -> ()
  | Cluster c ->
      Array.iter (fun m -> match m with Remote r -> drop_conn r | In_process _ -> ()) c.members
