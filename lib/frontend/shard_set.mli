(** The execution seam between the batcher and "the database": one
    engine in this process, or N shards behind the shard plane.

    The batcher forms deterministic global batches and calls {!exec};
    whether that batch runs as a single-engine epoch ({!local}) or as a
    two-round routed epoch across a cluster ({!cluster}) is this
    module's business. Single-shard serving is literally the [N = 1]
    case of the same seam, which is what keeps the two paths honest
    against each other.

    Routed execution (see {!Shard} for the shard half): bump the
    cluster epoch, broadcast the batch ([Route]) to every member,
    merge the owned-read answers into one read table (duplicate keys
    must agree — an applied member re-answering from history overlaps
    fresh members), broadcast the table ([Fence]), and require every
    member's verdict vector to be identical. The equality is asserted,
    not voted on: determinism makes agreement a theorem, so divergence
    is corruption and stops the router.

    Remote members are supervised: a dead connection is retried, then
    the member's [respawn] callback is invoked (kill-9 failover) and
    the idempotent Route/Fence rounds are simply re-asked. *)

type call = {
  c_client : int;  (** session id *)
  c_seq : int;  (** client sequence number *)
  c_proc : string;
  c_args : bytes;
  c_txn : Nvcaracal.Txn.t;  (** built transaction (local fast path) *)
}

type member
type t

val local : engine:Nvcaracal.Engine_intf.packed -> tables:Nvcaracal.Table.t list -> t
(** The single-engine case: {!exec} is exactly [run_batch] +
    [last_batch_outcomes]. *)

val in_process : Shard.t -> member
(** A member living in this process (tests, the chaos replay oracle). *)

val remote :
  ?retry_timeout_s:float ->
  ?respawn:(unit -> unit) ->
  gen:int ->
  shard:int ->
  shards:int ->
  Shard_client.address ->
  member
(** A member behind a socket. [gen] is this router's generation (sent
    in every handshake; shards fence older generations). [respawn] is
    invoked when the member stays unreachable after a reconnect
    attempt — typically "fork the shard process again with
    [--recover]". *)

val cluster : member array -> t
(** Members in shard-id order. Raises [Invalid_argument] when empty. *)

val exec : t -> call array -> [ `Committed | `Aborted | `Deferred ] array
(** Run one deterministic batch to its verdict vector, in batch order.
    Local: one engine epoch. Cluster: one two-round routed epoch,
    surviving member crashes via respawn + idempotent replay. Raises
    [Failure] when a member stays unreachable or verdict vectors
    diverge. *)

val digest : t -> int64
(** Local: the engine's FNV-chain state digest (the value golden
    outputs pin, {!Nv_harness.Engine.state_digest}). Cluster: XOR of
    every member's per-row digest — placement-independent, equal for
    equal committed state at {e any} shard count, which is the
    cross-shard determinism oracle. *)

val introspect : t -> Nvcaracal.Engine_intf.introspection
(** Local: the engine's snapshot. Cluster: zero wide-execution
    telemetry (that lives in the shard processes) plus the cluster
    digest. *)

val total_time_ns : t -> float
(** Simulated time: the engine's clock (local), or the max over
    in-process members (cluster; remote clocks are out of reach). *)

val shards : t -> int
val local_engine : t -> Nvcaracal.Engine_intf.packed option
(** [Some engine] only for {!local} sets — checkpointing and pmem
    oracles need the real engine and do not exist in cluster mode. *)

val epoch : t -> int
(** Cluster epoch counter (0 for local sets). *)

val set_epoch : t -> int -> unit
(** Seed the cluster epoch (router recovery replays records 0..n and
    must continue from n). Raises [Invalid_argument] on local sets. *)

val respawns : t -> int
(** Cumulative remote-member respawns — the cluster chaos campaign's
    crash counter. *)

val close : t -> unit
(** Drop remote connections (the processes are the supervisor's to
    reap). *)
