module Rng = Nv_util.Rng

type config = {
  exe : string;
  seed : int;
  iterations : int;
  clients : int;
  txns_per_client : int;
  checkpoint_every : int;
  workload : string;
  contention : string;
  engine : string;
  wseed : int;
  shards : int;
  dir : string option;
  keep : bool;
  timeout_s : float;
  log : string -> unit;
}

let config ?(seed = 1) ?(iterations = 25) ?(clients = 8) ?(txns_per_client = 200)
    ?(checkpoint_every = 0) ?(workload = "ycsb-tiny") ?(contention = "med")
    ?(engine = "nvcaracal") ?(wseed = 42) ?(shards = 1) ?dir ?(keep = false) ?timeout_s
    ?(log = fun _ -> ()) ~exe () =
  if iterations < 0 then invalid_arg "Chaos.config: iterations must be >= 0";
  if clients <= 0 then invalid_arg "Chaos.config: clients must be positive";
  if shards < 1 then invalid_arg "Chaos.config: shards must be >= 1";
  if shards > 1 && checkpoint_every > 0 then
    invalid_arg "Chaos.config: checkpointing is single-shard only (cluster recovery is replay)";
  let timeout_s =
    match timeout_s with Some t -> t | None -> 120.0 +. (10.0 *. float_of_int iterations)
  in
  { exe; seed; iterations; clients; txns_per_client; checkpoint_every; workload; contention;
    engine; wseed; shards; dir; keep; timeout_s; log }

type outcome = {
  crashes : int;  (** kill-9s observed (injected crashpoints that fired) *)
  recoveries : int;  (** server restarts with --recover *)
  sent : int;
  committed : int;
  aborted : int;
  rejected : int;
  reconnects : int;
  duplicates : int;  (** client-observed duplicate answers — 0 or the campaign fails *)
  failures : string list;
  artifacts : string option;  (** artifact directory, kept on failure (or [keep]) *)
}

(* The serving parameters every server generation runs with. The
   offline oracle must derive the exact same engine configuration, so
   they are fixed here rather than spread over two argv builders. *)
let batch_target = 64
let deadline_ticks = 4
let capacity = 200_000

(* Crashpoints with the count range each is armed with. [mid-epoch]
   fires per transaction, the others once per batch. *)
let points = [| ("post-admit", 8); ("post-journal", 8); ("mid-epoch", 384); ("pre-reply", 8) |]

let plan_of cfg =
  let rng = Rng.create cfg.seed in
  Array.init cfg.iterations (fun _ ->
      let point, bound = points.(Rng.int rng (Array.length points)) in
      (point, 1 + Rng.int rng bound))

(* Cluster campaigns kill shard processes instead: each plan entry is a
   SHARD:POINT:N spec. The whole plan is armed once, on the router, via
   NVC_SHARD_CRASHPOINT; the router consumes one spec per (re)spawn of
   the targeted shard, so a multi-spec plan cascades — a shard crashes,
   respawns armed with its next spec, and crashes again. All three
   points straddle the fence's durability boundary (before journaling,
   after journaling, after applying). *)
let shard_points = [| ("shard-fence", 8); ("shard-post-journal", 8); ("shard-applied", 8) |]

let shard_plan_of cfg =
  let rng = Rng.create cfg.seed in
  Array.init cfg.iterations (fun _ ->
      let point, bound = shard_points.(Rng.int rng (Array.length shard_points)) in
      (Rng.int rng cfg.shards, point, 1 + Rng.int rng bound))

(* ------------------------------------------------------------------ *)
(* Child processes                                                     *)

let base_env () =
  let drops = [ "NVC_CRASHPOINT="; "NVC_SHARD_CRASHPOINT=" ] in
  Array.of_list
    (List.filter
       (fun s ->
         not
           (List.exists
              (fun p -> String.length s >= String.length p && String.sub s 0 (String.length p) = p)
              drops))
       (Array.to_list (Unix.environment ())))

let spawn ?crashpoint ?shard_plan exe args ~out =
  let extra =
    (match crashpoint with
    | None -> []
    | Some (point, n) -> [ Printf.sprintf "NVC_CRASHPOINT=%s:%d" point n ])
    @
    match shard_plan with
    | None | Some [||] -> []
    | Some plan ->
        [
          "NVC_SHARD_CRASHPOINT="
          ^ String.concat ","
              (List.map
                 (fun (s, p, n) -> Printf.sprintf "%d:%s:%d" s p n)
                 (Array.to_list plan));
        ]
  in
  let env = Array.append (base_env ()) (Array.of_list extra) in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644 in
  let pid =
    Unix.create_process_env exe (Array.of_list (exe :: args)) env Unix.stdin fd fd
  in
  Unix.close fd;
  pid

let server_args cfg ~sock ~journal ~recover =
  [ "serve"; "--listen"; sock; "--workload"; cfg.workload; "--contention"; cfg.contention;
    "--engine"; cfg.engine; "--seed"; string_of_int cfg.wseed; "--crash-safe"; "--journal";
    journal; "--checkpoint-every"; string_of_int cfg.checkpoint_every; "--batch-target";
    string_of_int batch_target; "--deadline-ticks"; string_of_int deadline_ticks;
    "--capacity"; string_of_int capacity ]
  @ (if cfg.shards > 1 then [ "--shards"; string_of_int cfg.shards ] else [])
  @ (if recover then [ "--recover" ] else [])

let loadgen_args cfg ~sock =
  [ "loadgen"; "--listen"; sock; "--workload"; cfg.workload; "--contention"; cfg.contention;
    "--seed"; string_of_int cfg.wseed; "--clients"; string_of_int cfg.clients; "--txns";
    string_of_int cfg.txns_per_client; "--window"; "4"; "--reconnect"; "--retry-timeout";
    "60"; "--shutdown" ]

let send_shutdown sock =
  match Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 with
  | exception Unix.Unix_error _ -> ()
  | fd -> (
      try
        Unix.connect fd (Unix.ADDR_UNIX sock);
        let frame = Wire.encode_request Wire.Shutdown in
        ignore (Unix.write fd frame 0 (Bytes.length frame));
        Unix.close fd
      with Unix.Unix_error _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))

let kill_quiet pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Output parsing                                                      *)

let counter_keys =
  [ "sent"; "committed"; "aborted"; "rejected"; "protocol errors"; "reconnects";
    "duplicates"; "replayed"; "state digest"; "pmem crc"; "shard respawns" ]

(* Parse "key   value" summary lines as printed by [nvdb serve] and
   [nvdb loadgen]; later occurrences win, so a log holding several
   server generations yields the final generation's numbers. *)
let parse_summary path =
  let tbl = Hashtbl.create 16 in
  (if Sys.file_exists path then
     let ic = open_in path in
     (try
        while true do
          let line = input_line ic in
          List.iter
            (fun key ->
              let kl = String.length key in
              if
                String.length line > kl
                && String.sub line 0 kl = key
                && String.length line > kl
                && line.[kl] = ' '
              then
                let v = String.trim (String.sub line kl (String.length line - kl)) in
                if v <> "" then Hashtbl.replace tbl key v)
            counter_keys
        done
      with End_of_file -> ());
     close_in ic);
  tbl

let int_of tbl key = Option.bind (Hashtbl.find_opt tbl key) int_of_string_opt

(* ------------------------------------------------------------------ *)
(* Offline oracle                                                      *)

(* Recompute the final state from the durable artifacts alone: reopen
   the journal (and checkpoint), boot an engine the way --recover
   does, replay the records, and fingerprint. A graceful server's
   parting digest/CRC must match — the determinism oracle extended
   across process crashes. *)
let oracle cfg ~journal_path =
  let w, growth = Nv_harness.Cli.resolve_workload cfg.workload cfg.contention in
  let spec = Nv_harness.Cli.resolve_engine cfg.engine in
  let spec = { spec with Nv_harness.Engine.crash_safe = true } in
  let setup =
    Nv_harness.Engine.setup
      ~epochs:((capacity / batch_target) + 1)
      ~epoch_txns:batch_target ~seed:cfg.wseed ~insert_growth:growth ()
  in
  let meta =
    Restart.meta ~workload:cfg.workload ~contention:cfg.contention ~engine:cfg.engine
      ~seed:cfg.wseed
  in
  let registry = Proc.of_workload w in
  let opened = Journal.load ~path:journal_path ~meta in
  let boot = Restart.boot spec setup w ~registry opened in
  let b =
    Batcher.create
      ~cfg:(Batcher.config ~batch_target ~deadline_ticks ())
      ~shards:
        (Shard_set.local ~engine:boot.Restart.engine
           ~tables:w.Nv_workloads.Workload.tables)
      ~registry ~tables:w.Nv_workloads.Workload.tables ()
  in
  Batcher.recover b ~records:opened.Journal.records ~sessions:boot.Restart.sessions
    ~batches_done:boot.Restart.batches_done;
  let digest = Batcher.state_digest b in
  let (Nvcaracal.Engine_intf.Packed ((module E), db)) = Batcher.engine b in
  let pm = E.pmem db in
  let image = Nv_nvmm.Pmem.read_bytes pm ~off:0 ~len:(Nv_nvmm.Pmem.size pm) in
  let crc = Nv_util.Crc32c.bytes image 0 (Bytes.length image) in
  Journal.close opened.Journal.journal;
  (digest, crc)

(* The cluster counterpart: replay the ROUTER's journal through a
   1-member in-process cluster. The cluster digest is placement- and
   shard-count-independent by construction, so the 1-shard replay must
   land on the exact XOR digest the N-shard router printed when it
   exited — even though shards crashed and respawned all campaign long.
   No pmem CRC here: a cluster has no single persistent image. *)
let cluster_oracle cfg ~journal_path =
  let w, growth = Nv_harness.Cli.resolve_workload cfg.workload cfg.contention in
  let spec = Nv_harness.Cli.resolve_engine cfg.engine in
  let spec = { spec with Nv_harness.Engine.crash_safe = true } in
  let setup =
    Nv_harness.Engine.setup
      ~epochs:((capacity / batch_target) + 1)
      ~epoch_txns:batch_target ~seed:cfg.wseed ~insert_growth:growth ()
  in
  let meta =
    Restart.meta ~workload:cfg.workload ~contention:cfg.contention ~engine:cfg.engine
      ~seed:cfg.wseed
    ^ Printf.sprintf "#cluster%d" cfg.shards
  in
  let registry = Proc.of_workload w in
  let opened = Journal.load ~path:journal_path ~meta in
  let packed = Nv_harness.Engine.instantiate spec setup w in
  let shard =
    Shard.create ~shard_id:0 ~shards:1 ~engine:packed ~registry
      ~tables:w.Nv_workloads.Workload.tables ()
  in
  Shard.bulk_load shard (w.Nv_workloads.Workload.load ());
  let set = Shard_set.cluster [| Shard_set.in_process shard |] in
  let b =
    Batcher.create
      ~cfg:(Batcher.config ~batch_target ~deadline_ticks ())
      ~shards:set ~registry ~tables:w.Nv_workloads.Workload.tables ()
  in
  Batcher.recover b ~records:opened.Journal.records ~sessions:[] ~batches_done:0;
  let digest = Shard_set.digest set in
  Journal.close opened.Journal.journal;
  digest

(* ------------------------------------------------------------------ *)
(* Campaign                                                            *)

let run cfg =
  let dir =
    match cfg.dir with
    | Some d ->
        (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        d
    | None ->
        let d =
          Filename.concat (Filename.get_temp_dir_name ())
            (Printf.sprintf "nvdb-chaos-%d" (Unix.getpid ()))
        in
        (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        d
  in
  let sock = Filename.concat dir "nvdb.sock" in
  let journal_path = Filename.concat dir "journal" in
  let server_log = Filename.concat dir "server.log" in
  let loadgen_log = Filename.concat dir "loadgen.log" in
  let artifact_files =
    [ sock; journal_path; journal_path ^ ".ckpt"; server_log; loadgen_log ]
    @ (if cfg.shards > 1 then
         List.concat
           (List.init cfg.shards (fun i ->
                [
                  Printf.sprintf "%s.shard%d" sock i;
                  Printf.sprintf "%s.shard%d" journal_path i;
                ]))
       else [])
  in
  List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) artifact_files;
  let plan = if cfg.shards > 1 then [||] else plan_of cfg in
  let shard_plan = if cfg.shards > 1 then shard_plan_of cfg else [||] in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let crashes = ref 0 and recoveries = ref 0 and plan_next = ref 0 in
  let next_crashpoint () =
    if !plan_next < Array.length plan then begin
      let cp = plan.(!plan_next) in
      incr plan_next;
      Some cp
    end
    else None
  in
  let start_server ~recover =
    if cfg.shards > 1 then begin
      (* One router generation carries the whole campaign: the shard
         crash plan is armed up front and the router's own supervisor
         respawns each victim with --recover. *)
      cfg.log
        (Printf.sprintf "router up (%s, %d shard crash specs over %d shards)"
           (if recover then "recover" else "fresh")
           (Array.length shard_plan) cfg.shards);
      spawn ~shard_plan cfg.exe (server_args cfg ~sock ~journal:journal_path ~recover)
        ~out:server_log
    end
    else begin
      let cp = next_crashpoint () in
      (match cp with
      | Some (p, n) ->
          cfg.log
            (Printf.sprintf "server up (%s, crashpoint %s:%d)"
               (if recover then "recover" else "fresh")
               p n)
      | None ->
          cfg.log
            (Printf.sprintf "server up (%s, no crashpoint)"
               (if recover then "recover" else "fresh")));
      spawn ?crashpoint:cp cfg.exe (server_args cfg ~sock ~journal:journal_path ~recover)
        ~out:server_log
    end
  in
  let server_pid = ref (start_server ~recover:false) in
  let loadgen_pid = spawn cfg.exe (loadgen_args cfg ~sock) ~out:loadgen_log in
  let deadline = Unix.gettimeofday () +. cfg.timeout_s in
  let server_exited = ref false and loadgen_done = ref false in
  let last_nudge = ref 0.0 in
  (try
     while not (!server_exited && !loadgen_done) do
       if Unix.gettimeofday () > deadline then begin
         fail "campaign timeout after %.0fs (crashes %d, plan %d/%d)" cfg.timeout_s !crashes
           !plan_next (Array.length plan);
         raise Exit
       end;
       (if not !server_exited then
          match Unix.waitpid [ Unix.WNOHANG ] !server_pid with
          | 0, _ -> ()
          | _, Unix.WSIGNALED s when s = Sys.sigkill && cfg.shards = 1 ->
              (* Cluster mode never falls here: crashpoints kill shard
                 processes, which the router respawns itself — a killed
                 ROUTER would be an external actor, and fails below. *)
              incr crashes;
              cfg.log (Printf.sprintf "server killed (crash %d)" !crashes);
              incr recoveries;
              server_pid := start_server ~recover:true
          | _, Unix.WEXITED 0 -> server_exited := true
          | _, Unix.WEXITED c ->
              fail "server exited with code %d (see %s)" c server_log;
              raise Exit
          | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
              fail "server died on signal %d" s;
              raise Exit);
       (if not !loadgen_done then
          match Unix.waitpid [ Unix.WNOHANG ] loadgen_pid with
          | 0, _ -> ()
          | _, Unix.WEXITED 0 ->
              loadgen_done := true;
              last_nudge := Unix.gettimeofday ()
          | _, Unix.WEXITED c ->
              fail "loadgen exited with code %d (see %s)" c loadgen_log;
              raise Exit
          | _, (Unix.WSIGNALED s | Unix.WSTOPPED s) ->
              fail "loadgen died on signal %d" s;
              raise Exit);
       (* The Shutdown that ends the campaign can die with a killed
          server generation; nudge the replacement until it exits. *)
       if !loadgen_done && not !server_exited then begin
         let now = Unix.gettimeofday () in
         if now -. !last_nudge > 2.0 then begin
           last_nudge := now;
           send_shutdown sock
         end
       end;
       Unix.sleepf 0.01
     done
   with Exit ->
     if not !server_exited then kill_quiet !server_pid;
     if not !loadgen_done then kill_quiet loadgen_pid);
  let lg = parse_summary loadgen_log in
  let sv = parse_summary server_log in
  let sent = Option.value ~default:0 (int_of lg "sent") in
  let committed = Option.value ~default:0 (int_of lg "committed") in
  let aborted = Option.value ~default:0 (int_of lg "aborted") in
  let rejected = Option.value ~default:0 (int_of lg "rejected") in
  let reconnects = Option.value ~default:0 (int_of lg "reconnects") in
  let duplicates = Option.value ~default:0 (int_of lg "duplicates") in
  let lg_errors = Option.value ~default:(-1) (int_of lg "protocol errors") in
  if !failures = [] then begin
    (* Exactly-once, client side. *)
    if lg_errors <> 0 then fail "loadgen protocol errors: %d" lg_errors;
    if duplicates <> 0 then fail "duplicate answers observed: %d" duplicates;
    if sent = 0 then fail "loadgen sent nothing";
    if committed + aborted + rejected <> sent then
      fail "unanswered calls: sent %d, answered %d" sent (committed + aborted + rejected);
    if cfg.shards > 1 then begin
      (* Cluster determinism oracle: the router journal replayed through
         a 1-member in-process cluster must reproduce the N-shard
         router's parting XOR digest, shard crashes and all. *)
      (match int_of sv "shard respawns" with
      | Some n ->
          crashes := n;
          recoveries := n
      | None -> fail "server log holds no shard-respawn count (see %s)" server_log);
      match Hashtbl.find_opt sv "state digest" with
      | None -> fail "server log holds no final digest (see %s)" server_log
      | Some d -> (
          match cluster_oracle cfg ~journal_path with
          | exception e -> fail "offline cluster replay failed: %s" (Printexc.to_string e)
          | digest ->
              let sd = Printf.sprintf "%Lx" digest in
              if not (String.equal d sd) then
                fail "cluster oracle: digest mismatch (router %s, 1-shard replay %s)" d sd)
    end
    else
      (* Determinism oracle: offline replay of the durable artifacts must
         reproduce the dying server's parting digest and pmem image CRC. *)
      match (Hashtbl.find_opt sv "state digest", Hashtbl.find_opt sv "pmem crc") with
      | None, _ | _, None -> fail "server log holds no final digest/CRC (see %s)" server_log
      | Some d, Some c -> (
          match oracle cfg ~journal_path with
          | exception e -> fail "offline replay failed: %s" (Printexc.to_string e)
          | digest, crc ->
              let sd = Printf.sprintf "%Lx" digest in
              let sc = Printf.sprintf "%08lx" crc in
              if not (String.equal d sd) then
                fail "pmem-image oracle: digest mismatch (server %s, replay %s)" d sd;
              if not (String.equal c sc) then
                fail "pmem-image oracle: CRC mismatch (server %s, replay %s)" c sc)
  end;
  let keep = cfg.keep || !failures <> [] in
  if not keep then begin
    List.iter (fun f -> try Sys.remove f with Sys_error _ -> ()) artifact_files;
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end;
  {
    crashes = !crashes;
    recoveries = !recoveries;
    sent;
    committed;
    aborted;
    rejected;
    reconnects;
    duplicates;
    failures = List.rev !failures;
    artifacts = (if keep then Some dir else None);
  }
