module Pmem = Nv_nvmm.Pmem
module Crc = Nv_util.Crc32c

type t = {
  pmem : Pmem.t;
  meta_off : int;
  ring_off : int;
  capacity : int;
  mutable head : int; (* monotone pop counter *)
  mutable tail : int; (* monotone append counter *)
  mutable allowed_tail : int; (* head may not cross this *)
}

type recovery = { gc_frees : int64 list; meta_salvaged : int; corrupt_entries : int }

(* Meta slot layout (8 bytes each):
   0 head1 | 8 head2 | 16 tail1 | 24 tail2 | 32 current_tail | 40 current_tail_epoch
   Every persistent word — the six meta slots and each ring entry — is a
   crc32c-packed word (Crc32c.pack, role-distinct salts), so bit-rot or
   a torn persist decodes as corruption instead of a plausible offset.
   Pointers must therefore fit in 32 bits, which bounds the simulated
   region at 4 GiB — far above anything the harness configures. *)
let meta_bytes = 48
let ring_bytes ~capacity = capacity * 8

let salt_entry = 0x20
let salt_head = 0x21
let salt_tail = 0x22
let salt_ct = 0x23
let salt_ct_epoch = 0x24

let head_slot t epoch = if epoch land 1 = 1 then t.meta_off else t.meta_off + 8
let tail_slot t epoch = if epoch land 1 = 1 then t.meta_off + 16 else t.meta_off + 24
let current_tail_off t = t.meta_off + 32
let current_tail_epoch_off t = t.meta_off + 40

let create pmem ~meta_off ~ring_off ~capacity =
  assert (meta_off land 7 = 0 && ring_off land 7 = 0 && capacity > 0);
  { pmem; meta_off; ring_off; capacity; head = 0; tail = 0; allowed_tail = 0 }

let length t = t.tail - t.head
let allocatable t = t.allowed_tail - t.head

let entry_off t counter = t.ring_off + (counter mod t.capacity * 8)

let rec alloc t stats =
  if t.head >= t.allowed_tail then None
  else begin
    let off = entry_off t t.head in
    let w = Pmem.get_i64 t.pmem off in
    Pmem.charge_read t.pmem stats ~off ~len:8;
    t.head <- t.head + 1;
    match Crc.unpack ~salt:salt_entry w with
    | Some v -> Some v
    | None ->
        (* Corrupt entry (counted by [recover]): skip it — the slot it
           named is leaked, never double-allocated. *)
        alloc t stats
  end

let free t stats v =
  if t.tail - t.head >= t.capacity then failwith "Freelist.free: ring overflow";
  let off = entry_off t t.tail in
  Pmem.set_i64 t.pmem off (Crc.pack ~salt:salt_entry v);
  (* Appends are sequential; charge at streaming rate and write the line
     back immediately so the entry is durable once the next fence hits. *)
  Pmem.charge_seq_write t.pmem stats ~bytes:8;
  Pmem.flush t.pmem stats ~off ~len:8;
  t.tail <- t.tail + 1

let persist_counter t stats off ~salt v =
  Pmem.set_i64 t.pmem off (Crc.pack_int ~salt v);
  Pmem.charge_write t.pmem stats ~off ~len:8;
  Pmem.flush t.pmem stats ~off ~len:8

let checkpoint t stats ~epoch =
  persist_counter t stats (head_slot t epoch) ~salt:salt_head t.head;
  persist_counter t stats (tail_slot t epoch) ~salt:salt_tail t.tail;
  (* Once this epoch commits, every entry (including this epoch's
     transaction frees) may be reused by the next epoch. *)
  t.allowed_tail <- t.tail

let persist_gc_tail t stats ~epoch =
  (* Order matters: the tail value must hit NVMM before the epoch tag
     that validates it, and the ring entries were already flushed by
     [free]. Both stores share a cache line, so the store-order snapshot
     model preserves "tail before tag". *)
  persist_counter t stats (current_tail_off t) ~salt:salt_ct t.tail;
  persist_counter t stats (current_tail_epoch_off t) ~salt:salt_ct_epoch epoch;
  t.allowed_tail <- t.tail

let iter_entries t ~f =
  for c = t.head to t.tail - 1 do
    match Crc.unpack ~salt:salt_entry (Pmem.get_i64 t.pmem (entry_off t c)) with
    | Some v -> f v
    | None -> () (* corrupt entry: not free, not allocated — leaked *)
  done

let recover t ~last_checkpointed_epoch ~crashed_epoch =
  let lce = last_checkpointed_epoch in
  let salvaged = ref 0 in
  let read off ~salt =
    match Crc.unpack_int ~salt (Pmem.get_i64 t.pmem off) with
    | Some v -> Some v
    | None ->
        incr salvaged;
        None
  in
  let head_w = if lce = 0 then Some 0 else read (head_slot t lce) ~salt:salt_head in
  let tail_w = if lce = 0 then Some 0 else read (tail_slot t lce) ~salt:salt_tail in
  let head, base_tail, reset =
    match (head_w, tail_w) with
    | Some h, Some tl -> (h, tl, false)
    | _ ->
        (* A checkpointed offset is unreadable: restart with an empty
           list. Every recorded free is leaked, but nothing can be
           double-allocated, and frees re-issued by replay simply append
           fresh (checksummed) entries. *)
        (0, 0, true)
  in
  let tail, gc_frees =
    if reset then (base_tail, [])
    else
      match
        ( read (current_tail_epoch_off t) ~salt:salt_ct_epoch,
          read (current_tail_off t) ~salt:salt_ct )
      with
      | Some ct_epoch, Some ct when ct_epoch = crashed_epoch && crashed_epoch > 0 ->
          (* Major GC of the crashed epoch completed pass 1: its frees
             are durable and must not be replayed. *)
          let frees = ref [] in
          for c = base_tail to ct - 1 do
            match Crc.unpack ~salt:salt_entry (Pmem.get_i64 t.pmem (entry_off t c)) with
            | Some v -> frees := v :: !frees
            | None -> () (* counted below; replay re-frees it afresh *)
          done;
          (ct, List.rev !frees)
      | Some _, Some _ -> (base_tail, [])
      | _ ->
          (* Corrupt GC-tail record: fall back to the checkpointed tail.
             Durable GC frees beyond it are dropped from the window, so
             replay's re-frees recreate them exactly once. *)
          (base_tail, [])
  in
  t.head <- head;
  t.tail <- tail;
  t.allowed_tail <- tail;
  (* Count corrupt entries in the live window; [alloc] skips them. *)
  let corrupt = ref 0 in
  for c = head to tail - 1 do
    if Crc.unpack ~salt:salt_entry (Pmem.get_i64 t.pmem (entry_off t c)) = None then incr corrupt
  done;
  { gc_frees; meta_salvaged = !salvaged; corrupt_entries = !corrupt }
