(** Size-classed persistent value pools (paper section 5.5).

    The paper's base design uses one fixed-size value pool; it notes
    the extension "to support multiple sizes by using multiple
    persistent value pools, such as one pool for each power of two
    size". This module implements that: a set of {!Slab_pool}s with
    distinct slot sizes; allocation picks the smallest class that fits,
    and frees are routed back by offset range. All crash-consistency
    mechanics (dual checkpointed offsets, the non-revertible GC tail,
    dedup of crashed-epoch GC frees) are per class and composed here. *)

type spec
type t

val reserve :
  Nv_nvmm.Layout.builder ->
  cores:int ->
  slots_per_core:int ->
  classes:int list ->
  freelist_capacity:int ->
  spec
(** [classes] are the slot sizes, ascending (e.g. [[256; 1024; 4096]]);
    each class gets [slots_per_core] slots per core. *)

val attach : Nv_nvmm.Pmem.t -> spec -> t

val classes : t -> int list
val max_value : t -> int
(** Largest allocatable value (the biggest class size). *)

val alloc : t -> Nv_nvmm.Stats.t -> core:int -> len:int -> int
(** Slot offset from the smallest class fitting [len]. Raises [Failure]
    if [len] exceeds the largest class or the class is exhausted. *)

val free : t -> Nv_nvmm.Stats.t -> core:int -> int -> unit
(** Revertible transaction free (routed to the owning class). *)

val free_gc :
  t -> Nv_nvmm.Stats.t -> core:int -> int -> dedup:(int64, unit) Hashtbl.t -> unit

val write_value : t -> Nv_nvmm.Stats.t -> ?charge:bool -> off:int -> data:bytes -> unit -> unit
val persist_gc_tail : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
val checkpoint : t -> (int -> Nv_nvmm.Stats.t) -> epoch:int -> unit

type recovery = {
  dedup : (int64, unit) Hashtbl.t;
  meta_salvaged : int;
  corrupt_entries : int;
}

val recover : t -> last_checkpointed_epoch:int -> crashed_epoch:int -> recovery
(** Combined dedup set and salvage counts across all classes. *)

val allocated_bytes : t -> int
(** Sum over classes of allocated slots x slot size. *)

val nvmm_bytes : t -> int

val debug_reset : unit -> unit
(** Clear the NVDBG double-allocation tracker (testing aid). *)

val meta_bytes : t -> int
(** Rings and allocator metadata (Figure 8's allocator overhead). *)
