module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Crc = Nv_util.Crc32c

type version = { sid : int64; ptr : Vptr.t }

let header_bytes = 88
let min_row_size = header_bytes + 8

let inline_heap_bytes ~row_size =
  assert (row_size >= min_row_size);
  row_size - header_bytes

let half_capacity ~row_size = inline_heap_bytes ~row_size / 2

let inline_half_off ~row_size ~half =
  assert (half = 0 || half = 1);
  half * half_capacity ~row_size

let key_off base = base
let table_off base = base + 8
let flags_off base = base + 12
let sid_off base = function `V1 -> base + 16 | `V2 -> base + 32
let ptr_off base = function `V1 -> base + 24 | `V2 -> base + 40
let id_crc_off base = base + 48
let slot_crc_off base = function `V1 -> base + 52 | `V2 -> base + 56
let heap_off base = base + header_bytes

(* The checksum words at 48..59 share the header's cache line(s), so
   flushing the first 64 bytes covers them at no extra clwb for the
   standard 64-aligned row bases. All crc computation is host-side
   (modelled as media/controller ECC) and charges nothing. *)
let flush_header pmem stats ~base = Pmem.flush pmem stats ~off:base ~len:64

let id_crc pmem ~base = Crc.bytes (Pmem.read_bytes pmem ~off:(key_off base) ~len:16) 0 16

let slot_crc ~sid ~ptr ~vcrc =
  let c = Crc.init () in
  let c = Crc.int64 c sid in
  let c = Crc.int64 c ptr in
  let c = Crc.int32 c vcrc in
  Crc.finish c

let empty_slot_crc = slot_crc ~sid:0L ~ptr:Vptr.null ~vcrc:0l

(* Value checksum for a version pointer, read back from the region's
   volatile view (callers store the value before the version). Null
   pointers checksum as 0. *)
let value_crc pmem ~base ptr =
  match Vptr.classify ptr with
  | Vptr.Null -> 0l
  | Vptr.Inline { heap_off = hoff; len } ->
      let b = Pmem.read_bytes pmem ~off:(heap_off base + hoff) ~len in
      Crc.bytes b 0 len
  | Vptr.Pool { off; len } ->
      let b = Pmem.read_bytes pmem ~off ~len in
      Crc.bytes b 0 len

let store_slot_crc pmem ~base slot ~sid ~ptr =
  Pmem.set_i32 pmem (slot_crc_off base slot) (slot_crc ~sid ~ptr ~vcrc:(value_crc pmem ~base ptr))

let init pmem stats ~base ~key ~table =
  Pmem.set_i64 pmem (key_off base) key;
  Pmem.set_i32 pmem (table_off base) (Int32.of_int table);
  Pmem.set_i32 pmem (flags_off base) 1l;
  Pmem.set_i64 pmem (sid_off base `V1) 0L;
  Pmem.set_i64 pmem (ptr_off base `V1) 0L;
  Pmem.set_i64 pmem (sid_off base `V2) 0L;
  Pmem.set_i64 pmem (ptr_off base `V2) 0L;
  Pmem.set_i32 pmem (id_crc_off base) (id_crc pmem ~base);
  Pmem.set_i32 pmem (slot_crc_off base `V1) empty_slot_crc;
  Pmem.set_i32 pmem (slot_crc_off base `V2) empty_slot_crc;
  Stats.nvmm_write_blocks stats 1;
  flush_header pmem stats ~base

let peek_version pmem ~base slot =
  { sid = Pmem.get_i64 pmem (sid_off base slot); ptr = Pmem.get_i64 pmem (ptr_off base slot) }

let peek_versions pmem ~base = (peek_version pmem ~base `V1, peek_version pmem ~base `V2)
let peek_key pmem ~base = Pmem.get_i64 pmem (key_off base)
let peek_table pmem ~base = Int32.to_int (Pmem.get_i32 pmem (table_off base))

let read_header pmem stats ~base =
  Stats.nvmm_read_blocks stats 1;
  let v1, v2 = peek_versions pmem ~base in
  (peek_key pmem ~base, peek_table pmem ~base, v1, v2)

let set_version pmem stats ~base ~slot ~sid ~ptr ?(charge = true) () =
  (* SID strictly before pointer: recovery relies on this order. *)
  Pmem.set_i64 pmem (sid_off base slot) sid;
  Pmem.set_i64 pmem (ptr_off base slot) ptr;
  store_slot_crc pmem ~base slot ~sid ~ptr;
  if charge then Stats.nvmm_write_blocks stats 1;
  flush_header pmem stats ~base

let set_version_ptr pmem stats ~base ~slot ~ptr ?(charge = true) () =
  Pmem.set_i64 pmem (ptr_off base slot) ptr;
  store_slot_crc pmem ~base slot ~sid:(Pmem.get_i64 pmem (sid_off base slot)) ~ptr;
  if charge then Stats.nvmm_write_blocks stats 1;
  flush_header pmem stats ~base

let gc_move pmem stats ~base ?(charge = true) () =
  let v2 = peek_version pmem ~base `V2 in
  let v2_crc = Pmem.get_i32 pmem (slot_crc_off base `V2) in
  Pmem.set_i64 pmem (sid_off base `V1) v2.sid;
  Pmem.set_i64 pmem (ptr_off base `V1) v2.ptr;
  (* Adopt v2's stored checksum word rather than recomputing: the slot
     crc has no slot identity folded in, so it stays valid across the
     move even if the stored word had itself gone stale. *)
  Pmem.set_i32 pmem (slot_crc_off base `V1) v2_crc;
  Pmem.set_i64 pmem (sid_off base `V2) 0L;
  Pmem.set_i64 pmem (ptr_off base `V2) 0L;
  Pmem.set_i32 pmem (slot_crc_off base `V2) empty_slot_crc;
  if charge then Stats.nvmm_write_blocks stats 1;
  flush_header pmem stats ~base

(* --------------------------------------------------------------- *)
(* Recovery-time torn-update repair (section 4.5).

   Case 1 — [v1.sid = v2.sid ≠ 0]: a [gc_move] persisted its first
   store(s) but not the rest; finish it (v1 adopts v2's pointer and
   checksum word, v2 is nulled). Case 2 — [v2.sid = 0] with a live
   pointer: the null of a gc_move (or a revert) tore between its two
   stores; null the pointer. Both are idempotent: re-running after a
   crash mid-repair converges to the same state. *)

let repair_case1 pmem stats ~base ?(charge = true) () =
  let v1 = peek_version pmem ~base `V1 in
  let v2 = peek_version pmem ~base `V2 in
  if v1.ptr <> v2.ptr then begin
    Pmem.set_i64 pmem (ptr_off base `V1) v2.ptr;
    Pmem.set_i32 pmem (slot_crc_off base `V1) (Pmem.get_i32 pmem (slot_crc_off base `V2));
    if charge then Stats.nvmm_write_blocks stats 1;
    flush_header pmem stats ~base
  end
  else
    (* Pointer already copied before the crash; adopt the checksum word
       (host-side store, persisted by the flush below). *)
    Pmem.set_i32 pmem (slot_crc_off base `V1) (Pmem.get_i32 pmem (slot_crc_off base `V2));
  set_version pmem stats ~base ~slot:`V2 ~sid:0L ~ptr:Vptr.null ~charge ()

let repair_case2 pmem stats ~base ?(charge = true) () =
  set_version_ptr pmem stats ~base ~slot:`V2 ~ptr:Vptr.null ~charge ()

(* --------------------------------------------------------------- *)
(* Scrub-time verification. All checks are host-side and uncharged;
   scrub charges its reads explicitly via [read_value]. *)

type slot_check =
  | Slot_ok
  | Slot_stale_crc  (** empty slot whose crc word went stale (torn null) *)
  | Slot_corrupt

let check_id pmem ~base = Pmem.get_i32 pmem (id_crc_off base) = id_crc pmem ~base

let check_slot pmem ~base ~slot =
  let v = peek_version pmem ~base slot in
  let stored = Pmem.get_i32 pmem (slot_crc_off base slot) in
  if v.sid = 0L && Vptr.classify v.ptr = Vptr.Null then
    if stored = empty_slot_crc then Slot_ok else Slot_stale_crc
  else
    (* A corrupt pointer can point anywhere, including out of bounds. *)
    match value_crc pmem ~base v.ptr with
    | vcrc -> if stored = slot_crc ~sid:v.sid ~ptr:v.ptr ~vcrc then Slot_ok else Slot_corrupt
    | exception Invalid_argument _ -> Slot_corrupt

(* Whether the slot's value bytes overlap lines that were dirty at the
   crash: the crashed epoch was overwriting them (inline-half or pool
   slot reuse after a gc_move freed the old version), and since lines
   tear independently the row header can legally surface a pre-move
   state that still references them. A checksum mismatch on such a
   *stale* version is epoch turnover, not media damage. *)
let value_in_crash_turnover pmem ~base ptr =
  match Vptr.classify ptr with
  | Vptr.Null -> false
  | Vptr.Inline { heap_off = hoff; len } ->
      Pmem.dirty_at_crash pmem ~off:(heap_off base + hoff) ~len
  | Vptr.Pool { off; len } -> Pmem.dirty_at_crash pmem ~off ~len

let rewrite_slot_crc pmem stats ~base ~slot =
  let v = peek_version pmem ~base slot in
  store_slot_crc pmem ~base slot ~sid:v.sid ~ptr:v.ptr;
  flush_header pmem stats ~base

(* Blocks touched by an in-row byte range, excluding the row's first
   block (assumed already charged by the header access). *)
let extra_blocks stats ~base ~off ~len =
  let spec = Stats.spec stats in
  if len <= 0 then 0
  else
    let block = spec.Memspec.nvmm_block in
    let header_block = base / block in
    let first = off / block and last = (off + len - 1) / block in
    let n = last - first + 1 in
    if first = header_block then n - 1 else n

let write_inline_value pmem stats ~base ~row_size ~half ~data ?(charge = true) () =
  let len = Bytes.length data in
  assert (len > 0 && len <= half_capacity ~row_size);
  let hoff = inline_half_off ~row_size ~half in
  let abs = heap_off base + hoff in
  Pmem.blit_to pmem ~src:data ~src_off:0 ~dst_off:abs ~len;
  if charge then Stats.nvmm_write_blocks stats (extra_blocks stats ~base ~off:abs ~len);
  Pmem.flush pmem stats ~off:abs ~len;
  Vptr.inline ~heap_off:hoff ~len

let read_value pmem stats ~base ptr ?(header_charged = true) () =
  match Vptr.classify ptr with
  | Vptr.Null -> invalid_arg "Prow.read_value: null pointer"
  | Vptr.Inline { heap_off = hoff; len } ->
      let abs = heap_off base + hoff in
      let blocks =
        if header_charged then extra_blocks stats ~base ~off:abs ~len
        else Memspec.blocks_touched (Stats.spec stats) ~off:abs ~len
      in
      Stats.nvmm_read_blocks stats blocks;
      Pmem.read_bytes pmem ~off:abs ~len
  | Vptr.Pool { off; len } ->
      Pmem.charge_read pmem stats ~off ~len;
      Pmem.read_bytes pmem ~off ~len
