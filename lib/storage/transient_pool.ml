module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec

(* A vref captures the arena buffer it was written into, not just the
   offset: arenas grow by swapping in a bigger buffer, and when cores
   run on real domains a reader must not chase [arenas.(core).buf]
   while the owning core is mid-swap. The captured buffer keeps the
   value readable either way (growth copies the live prefix). *)
type vref = { buf : bytes; core : int; off : int; len : int }

type arena = { mutable buf : bytes; mutable used : int }
type t = { arenas : arena array; mutable peak : int }

let create ~cores ~initial_capacity =
  {
    arenas = Array.init cores (fun _ -> { buf = Bytes.create initial_capacity; used = 0 });
    peak = 0;
  }

let used_bytes t = Array.fold_left (fun acc a -> acc + a.used) 0 t.arenas

(* Usage only ever grows between resets, so sampling at serial points
   (metric gauges, mem reports, the epoch-end reset) sees the true
   high-water mark; nothing is summed across arenas on the per-write
   hot path, where other cores' [used] fields would race. *)
let peak_bytes t = max t.peak (used_bytes t)

let ensure a len =
  let cap = Bytes.length a.buf in
  if a.used + len > cap then begin
    let ncap = max (cap * 2) (a.used + len) in
    let nb = Bytes.create ncap in
    Bytes.blit a.buf 0 nb 0 a.used;
    a.buf <- nb
  end

let lines stats len = Memspec.lines_touched (Stats.spec stats) ~off:0 ~len

let write t stats ?(charge = true) ~core data =
  let a = t.arenas.(core) in
  let len = Bytes.length data in
  ensure a len;
  Bytes.blit data 0 a.buf a.used len;
  let off = a.used in
  a.used <- a.used + ((len + 7) land lnot 7);
  if charge then Stats.dram_write stats ~lines:(lines stats len) ();
  { buf = a.buf; core; off; len }

let read _t stats ?(charge = true) { buf; off; len; _ } =
  if charge then Stats.dram_read stats ~lines:(lines stats len) ();
  Bytes.sub buf off len

let reset t =
  t.peak <- peak_bytes t;
  Array.iter (fun a -> a.used <- 0) t.arenas
