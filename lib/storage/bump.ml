module Pmem = Nv_nvmm.Pmem
module Crc = Nv_util.Crc32c

type t = { pmem : Pmem.t; meta_off : int; capacity : int; mutable offset : int }

let meta_bytes = 16
let salt = 0x25

let slot_off t epoch = if epoch land 1 = 1 then t.meta_off else t.meta_off + 8

let create pmem ~meta_off ~capacity =
  assert (meta_off land 7 = 0);
  { pmem; meta_off; capacity; offset = 0 }

let offset t = t.offset

let alloc t =
  if t.offset >= t.capacity then failwith "Bump.alloc: pool capacity exhausted";
  let i = t.offset in
  t.offset <- i + 1;
  i

let checkpoint t stats ~epoch =
  let off = slot_off t epoch in
  Pmem.set_i64 t.pmem off (Crc.pack_int ~salt t.offset);
  Pmem.charge_write t.pmem stats ~off ~len:8;
  Pmem.flush t.pmem stats ~off ~len:8

let recover t ~last_checkpointed_epoch =
  if last_checkpointed_epoch = 0 then begin
    t.offset <- 0;
    `Ok
  end
  else
    match Crc.unpack_int ~salt (Pmem.get_i64 t.pmem (slot_off t last_checkpointed_epoch)) with
    | Some v ->
        t.offset <- v;
        `Ok
    | None ->
        (* The live checkpoint word is corrupt. The other parity slot
           (previous epoch) is only a *floor* — trusting it could
           re-issue slots allocated since — so with no way to rescan,
           leak the whole pool rather than risk double-allocation.
           Callers able to rescan their arena (row slabs, whose slots
           carry checksummed identity headers) tighten this to the
           exact offset via [force_offset]. *)
        t.offset <- t.capacity;
        `Salvaged

let force_offset t v = t.offset <- max 0 (min v t.capacity)
