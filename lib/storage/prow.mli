(** Persistent row codec (paper Figure 3 and sections 4.5, 5.3).

    A persistent row is a fixed-size record in NVMM holding the row key,
    a dual-version header, and an inline heap for small values:

    {v
    off  0  key        (int64)
    off  8  table id   (int32)
    off 12  flags      (int32)
    off 16  v1.sid     (int64)   v1 = stale / older checkpointed version
    off 24  v1.ptr     (Vptr)
    off 32  v2.sid     (int64)   v2 = most recent version
    off 40  v2.ptr     (Vptr)
    off 48  id crc32c  (int32)   over bytes 0..15 (key, table, flags)
    off 52  v1 crc32c  (int32)   over (v1.sid, v1.ptr, crc32c(v1 value))
    off 56  v2 crc32c  (int32)   over (v2.sid, v2.ptr, crc32c(v2 value))
    off 60  reserved   (28 bytes)
    off 88  inline heap (row_size - 88 bytes)
    v}

    The three checksum words make media corruption (bit-rot, torn
    multi-line persists, dead lines) detectable by the scrub pass of
    recovery; they live in the header's cache line, are maintained
    transparently by every version update, and are computed host-side
    (modelled as controller ECC — no simulated cost; docs/FAULTS.md).
    A slot's crc has no slot identity folded in, so [gc_move] carries
    v2's stored word to v1 unchanged.

    Both version slots live in the first CPU cache line, and every
    version update stores the SID strictly before the pointer, which is
    what lets recovery disambiguate the three torn-update cases of
    section 4.5. The invariant maintained by the engine is
    [v1.sid < v2.sid] whenever both versions exist; SID 0 means empty.

    The inline heap is split into two halves so the two versions can
    each inline a value without moving bytes when versions rotate:
    with the default 256-byte row the heap is 168 bytes, matching the
    paper, and each half holds values up to 84 bytes.

    Charging: reads/writes of the version header charge one NVMM block;
    inline values charge only the blocks not already covered by the
    header access, so a fully-inline row costs exactly one block per
    access — the locality benefit section 6.4 measures. *)

type version = { sid : int64; ptr : Vptr.t }

val header_bytes : int
(** 88. *)

val inline_heap_bytes : row_size:int -> int
val half_capacity : row_size:int -> int
(** Max value length each inline half can hold. *)

val inline_half_off : row_size:int -> half:int -> int
(** Heap offset of half 0 or 1. *)

val min_row_size : int
(** Smallest legal row size (header plus a non-empty heap). *)

(** {1 Row lifecycle} *)

val init :
  Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> key:int64 -> table:int -> unit
(** Initialize a freshly-allocated row: set key/table, clear both
    versions. Charges one block write and flushes the header line. *)

(** {1 Header access} *)

val read_header :
  Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> int64 * int * version * version
(** [key, table, v1, v2], charging one block read. *)

val peek_versions : Nv_nvmm.Pmem.t -> base:int -> version * version
(** Uncharged versions read — for tests, assertions and code paths that
    already paid for the header block. *)

val peek_key : Nv_nvmm.Pmem.t -> base:int -> int64
val peek_table : Nv_nvmm.Pmem.t -> base:int -> int

(** {1 Version updates}

    Each of these writes the SID before the pointer and flushes the
    header line. [charge] (default true) bills one block write; pass
    false when the caller is coalescing several header stores into one
    row update (e.g. a minor-GC move followed by the final write). *)

val set_version :
  Nv_nvmm.Pmem.t ->
  Nv_nvmm.Stats.t ->
  base:int ->
  slot:[ `V1 | `V2 ] ->
  sid:int64 ->
  ptr:Vptr.t ->
  ?charge:bool ->
  unit ->
  unit

val set_version_ptr :
  Nv_nvmm.Pmem.t ->
  Nv_nvmm.Stats.t ->
  base:int ->
  slot:[ `V1 | `V2 ] ->
  ptr:Vptr.t ->
  ?charge:bool ->
  unit ->
  unit
(** Pointer-only fix-up (recovery torn-case repair). *)

val gc_move :
  Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> ?charge:bool -> unit -> unit
(** The collector step both GCs share: copy v2 into v1 (SID first), then
    null v2 (SID first). Afterwards v1 holds the most recent
    checkpointed version and v2 is free. *)

(** {1 Recovery repair and scrub verification} *)

val repair_case1 :
  Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> ?charge:bool -> unit -> unit
(** Finish a torn [gc_move] ([v1.sid = v2.sid <> 0]): v1 adopts v2's
    pointer and checksum word, v2 is nulled. Idempotent. *)

val repair_case2 :
  Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> ?charge:bool -> unit -> unit
(** Null a pointer whose SID was already nulled (torn null). *)

type slot_check =
  | Slot_ok
  | Slot_stale_crc  (** empty slot whose crc word went stale (torn null) *)
  | Slot_corrupt

val check_id : Nv_nvmm.Pmem.t -> base:int -> bool
(** Verify the key/table/flags checksum (host-side, uncharged). *)

val check_slot : Nv_nvmm.Pmem.t -> base:int -> slot:[ `V1 | `V2 ] -> slot_check
(** Verify one version slot against its checksum word, including the
    value bytes it points to (host-side, uncharged; a pointer leading
    out of bounds counts as corrupt rather than raising). *)

val rewrite_slot_crc : Nv_nvmm.Pmem.t -> Nv_nvmm.Stats.t -> base:int -> slot:[ `V1 | `V2 ] -> unit
(** Recompute and persist a slot's checksum word from its current
    content (scrub normalization of [Slot_stale_crc]). *)

val value_in_crash_turnover : Nv_nvmm.Pmem.t -> base:int -> Vptr.t -> bool
(** Whether the pointer's value bytes overlap lines that were dirty at
    the crash — the crashed epoch was legitimately overwriting them
    (half or pool-slot reuse), so a checksum mismatch on a {e stale}
    version referencing them is epoch turnover, not media damage. *)

val value_crc : Nv_nvmm.Pmem.t -> base:int -> Vptr.t -> int32
(** crc32c of the value a pointer refers to (0 for null). May raise
    [Invalid_argument] if the pointer is corrupt. *)

(** {1 Values} *)

val write_inline_value :
  Nv_nvmm.Pmem.t ->
  Nv_nvmm.Stats.t ->
  base:int ->
  row_size:int ->
  half:int ->
  data:bytes ->
  ?charge:bool ->
  unit ->
  Vptr.t
(** Store [data] into inline half [half], flush it, and return the
    pointer to record. Charges only blocks beyond the header block. *)

val read_value :
  Nv_nvmm.Pmem.t ->
  Nv_nvmm.Stats.t ->
  base:int ->
  Vptr.t ->
  ?header_charged:bool ->
  unit ->
  bytes
(** Fetch the value bytes for a pointer. Inline values charge only
    blocks beyond the header block when [header_charged] (default
    true); pool values charge their full range. Raises [Invalid_argument]
    on [Null]. *)
