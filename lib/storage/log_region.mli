(** Epoch input log (paper section 4.3).

    At the start of each epoch, the serialized inputs of every
    transaction in the batch are appended here and persisted before the
    execution phase begins. Appends are sequential, so they run at
    streaming NVMM bandwidth — the efficiency argument of section 4.3.

    The region holds a single epoch's log: the previous epoch is always
    checkpointed before the next begins, so its log is never needed
    again. Commit protocol: entries are appended and written back,
    then a fence makes them durable, and only then is the entry count
    published (and fenced) — so a committed count implies every entry
    is durable. An epoch whose log never committed is treated by
    recovery as having never been submitted.

    The persistent layout is checksummed (crc32c): the three header
    words are self-checking packed words and every record carries a
    crc salted with its epoch and index, so bit-rot and torn persists
    surface as [Corrupt] at recovery rather than as silent bad replay.
    Checksums are modelled as media-controller metadata: all simulated
    charges are those of the pre-checksum logical layout (see
    docs/FAULTS.md). *)

type t

(** Result of reading back the log region at recovery. *)
type committed =
  | Empty  (** last log never committed — epoch was never submitted *)
  | Committed of int * bytes list  (** committed epoch and its records *)
  | Corrupt of { epoch : int option; reason : string }
      (** checksum mismatch; [epoch] when the header was still readable *)

val header_bytes : int

val reserve : Nv_nvmm.Layout.builder -> capacity_bytes:int -> Nv_nvmm.Layout.region
val attach : Nv_nvmm.Pmem.t -> Nv_nvmm.Layout.region -> t

val begin_epoch : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
(** Invalidate the previous log and start logging [epoch]. *)

val append : t -> Nv_nvmm.Stats.t -> bytes -> unit
(** Append one transaction's input record. Raises [Failure] when the
    region overflows (configuration error). *)

val commit : t -> Nv_nvmm.Stats.t -> unit
(** Fence entries, publish the count, fence again. After this returns,
    the epoch's inputs are recoverable. *)

val read_committed : t -> Nv_nvmm.Stats.t -> committed
(** Read back and verify the last log. Charges sequential reads (at
    logical-layout offsets). *)

val bytes_appended : t -> int
(** Logical bytes appended in the current epoch (logging-volume
    reporting; excludes checksum metadata). *)
