(** Per-core transient pool in DRAM (paper section 5.1).

    Intermediate row versions written within an epoch live here; the
    whole pool is discarded at the end of the epoch by resetting each
    core's bump offset — no per-object deallocation, no garbage
    collection. Value bytes are stored in per-core byte arenas and
    referenced by {!vref}s, and every access charges DRAM cache-line
    costs to the accessing core's stats. *)

type t

type vref = { buf : bytes; core : int; off : int; len : int }
(** Reference to value bytes in some core's arena, valid until the next
    [reset]. The buffer is captured at write time so a reader on
    another domain never races the owning core growing its arena. *)

val create : cores:int -> initial_capacity:int -> t
(** Arenas grow on demand; [initial_capacity] is per core. *)

val write : t -> Nv_nvmm.Stats.t -> ?charge:bool -> core:int -> bytes -> vref
(** Bump-allocate and store one value on [core]'s arena. [charge]
    (default true) bills DRAM line writes; engine variants that model
    NVMM-resident version values pass false and charge NVMM costs
    themselves. *)

val read : t -> Nv_nvmm.Stats.t -> ?charge:bool -> vref -> bytes

val reset : t -> unit
(** Free the entire pool (epoch end). O(cores). *)

val used_bytes : t -> int
(** Bytes currently allocated across all cores. *)

val peak_bytes : t -> int
(** High-water mark across the run (memory reporting, Figure 8). *)
