module Layout = Nv_nvmm.Layout

type class_spec = { size : int; pool_spec : Slab_pool.spec }
type spec = { class_specs : class_spec list }

type cls = { size : int; pool : Slab_pool.t; lo : int; hi : int }
type t = { cls : cls list (* ascending by size *) }

let reserve builder ~cores ~slots_per_core ~classes ~freelist_capacity =
  let sorted = List.sort_uniq compare classes in
  assert (sorted <> [] && List.for_all (fun c -> c > 0 && c mod 8 = 0) sorted);
  {
    class_specs =
      List.map
        (fun size ->
          {
            size;
            pool_spec =
              Slab_pool.reserve builder
                ~name:(Printf.sprintf "values%d" size)
                ~cores ~slots_per_core ~slot_size:size ~freelist_capacity;
          })
        sorted;
  }

let attach pmem spec =
  {
    cls =
      List.map
        (fun cs ->
          let pool = Slab_pool.attach pmem cs.pool_spec in
          let lo, hi = Slab_pool.arena_bounds pool in
          { size = cs.size; pool; lo; hi })
        spec.class_specs;
  }

let classes t = List.map (fun c -> c.size) t.cls
let max_value t = List.fold_left (fun acc c -> max acc c.size) 0 t.cls

let class_for t len =
  match List.find_opt (fun c -> len <= c.size) t.cls with
  | Some c -> c
  | None -> failwith (Printf.sprintf "Value_pools: value of %d bytes exceeds largest class" len)

let owner t off =
  match List.find_opt (fun c -> off >= c.lo && off < c.hi) t.cls with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Value_pools: offset %d not in any class arena" off)

let debug_live : (int, unit) Hashtbl.t = Hashtbl.create 64
let debug = Sys.getenv_opt "NVDBG" <> None
let debug_reset () = Hashtbl.reset debug_live
let watch = match Sys.getenv_opt "NVDBG_WATCH" with Some s -> int_of_string s | None -> -1

let alloc t stats ~core ~len =
  let off = Slab_pool.alloc (class_for t len).pool stats ~core in
  if debug then begin
    if off = watch then Printf.eprintf "WATCH alloc %d\n%!" off;
    if Hashtbl.mem debug_live off then Printf.eprintf "DOUBLE-ALLOC slot %d\n%!" off;
    Hashtbl.replace debug_live off ()
  end;
  off

let free t stats ~core off =
  if debug then begin
    if off = watch then Printf.eprintf "WATCH free %d\n%!" off;
    if not (Hashtbl.mem debug_live off) then Printf.eprintf "FREE-UNTRACKED slot %d\n%!" off;
    Hashtbl.remove debug_live off
  end;
  Slab_pool.free (owner t off).pool stats ~core off

let free_gc t stats ~core off ~dedup =
  if debug && off = watch then
    Printf.eprintf "WATCH free_gc %d (dedup=%b)\n%!" off (Hashtbl.mem dedup (Int64.of_int off));
  Slab_pool.free_gc (owner t off).pool stats ~core off ~dedup

let write_value t stats ?charge ~off ~data () =
  Slab_pool.write_value (owner t off).pool stats ?charge ~off ~data ()

let persist_gc_tail t stats ~epoch =
  List.iter (fun c -> Slab_pool.persist_gc_tail c.pool stats ~epoch) t.cls

let checkpoint t stats_of ~epoch =
  List.iter (fun c -> Slab_pool.checkpoint c.pool stats_of ~epoch) t.cls

type recovery = {
  dedup : (int64, unit) Hashtbl.t;
  meta_salvaged : int;
  corrupt_entries : int;
}

let recover t ~last_checkpointed_epoch ~crashed_epoch =
  let dedup = Hashtbl.create 64 in
  let salvaged = ref 0 and corrupt = ref 0 in
  List.iter
    (fun c ->
      (* Value arenas have no per-slot headers to rescan; a salvaged
         bump falls back to Bump's conservative estimate. *)
      let r = Slab_pool.recover c.pool ~last_checkpointed_epoch ~crashed_epoch () in
      salvaged := !salvaged + r.Slab_pool.meta_salvaged;
      corrupt := !corrupt + r.Slab_pool.corrupt_entries;
      Hashtbl.iter (fun k () -> Hashtbl.replace dedup k ()) r.Slab_pool.dedup)
    t.cls;
  { dedup; meta_salvaged = !salvaged; corrupt_entries = !corrupt }

let allocated_bytes t =
  List.fold_left (fun acc c -> acc + (Slab_pool.allocated_slots c.pool * c.size)) 0 t.cls

let nvmm_bytes t = List.fold_left (fun acc c -> acc + Slab_pool.nvmm_bytes c.pool) 0 t.cls

let meta_bytes t =
  List.fold_left
    (fun acc c ->
      acc + Slab_pool.nvmm_bytes c.pool
      - (Slab_pool.capacity_slots c.pool * c.size))
    0 t.cls
