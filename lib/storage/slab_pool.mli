(** Per-core persistent slab pools (paper sections 5.4 and 5.5).

    One pool manages fixed-size slots (persistent rows, or persistent
    values) across all simulated cores: each core owns a bump-allocated
    arena and a free-list ring, so allocation never synchronizes across
    cores. The pool is crash-consistent at epoch granularity: bump
    offsets and free-list head/tail have dual checkpointed NVMM slots,
    and [recover] reverts every allocation and transaction-free made in
    a crashed epoch while preserving non-revertible GC frees (the value
    pool's "current tail" mechanism).

    The same module implements both the persistent row pool and the
    persistent value pool; the value pool additionally uses
    [write_value]/[read_value] and [persist_gc_tail]/[free_gc]. *)

type spec
(** Offsets reserved in a {!Nv_nvmm.Layout.builder}; a pure function of
    the configuration so recovery recomputes identical addresses. *)

type t

val reserve :
  Nv_nvmm.Layout.builder ->
  name:string ->
  cores:int ->
  slots_per_core:int ->
  slot_size:int ->
  freelist_capacity:int ->
  spec
(** Reserve arena, free-list ring, and metadata space for each core.
    [slot_size] must be a multiple of 8. *)

val attach : Nv_nvmm.Pmem.t -> spec -> t
(** Bind the reservation to a region (fresh or recovered). *)

val slot_size : t -> int
val cores : t -> int

val alloc : t -> Nv_nvmm.Stats.t -> core:int -> int
(** Absolute pmem offset of a free slot: from the core's free list when
    an entry is allocatable, else from its bump arena. Raises [Failure]
    when the core's arena is exhausted. *)

val free : t -> Nv_nvmm.Stats.t -> core:int -> int -> unit
(** Revertible (transaction) free: appended past the checkpointed tail,
    reverted if the epoch crashes, not re-allocatable this epoch. *)

val free_gc : t -> Nv_nvmm.Stats.t -> core:int -> int -> dedup:(int64, unit) Hashtbl.t -> unit
(** GC free during the initialization phase. Skips pointers present in
    [dedup] (frees already made durable by the crashed epoch's GC pass,
    paper section 5.5). *)

val persist_gc_tail : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
(** Make all frees recorded so far durable and non-revertible, and
    allocatable within this epoch. Call after major-GC pass 1. *)

val checkpoint : t -> (int -> Nv_nvmm.Stats.t) -> epoch:int -> unit
(** Persist every core's bump offset and free-list offsets into
    [epoch]'s slots (flush only; caller fences). Each core's metadata
    writes are charged to that core's stats — the checkpoint step runs
    in parallel. *)

type recovery = {
  dedup : (int64, unit) Hashtbl.t;
      (** crashed-epoch GC-freed pointers (replay must not re-free) *)
  meta_salvaged : int;  (** corrupt allocator checkpoint words salvaged *)
  corrupt_entries : int;  (** corrupt free-list ring entries (leaked) *)
}

val recover :
  t ->
  last_checkpointed_epoch:int ->
  crashed_epoch:int ->
  ?row_scan:bool ->
  unit ->
  recovery
(** Reload allocation state as of the last checkpoint (keeping durable
    GC frees of the crashed epoch) and return the dedup set of
    crashed-epoch GC-freed pointers plus corruption-salvage counts.
    With [row_scan] (row slabs only), a corrupt bump checkpoint is
    reconstructed by scanning the arena for the highest slot whose
    {!Prow} identity checksum verifies. *)

(** {1 Value access (value-pool use)} *)

val write_value :
  t -> Nv_nvmm.Stats.t -> ?charge:bool -> off:int -> data:bytes -> unit -> unit
(** Store value bytes into a slot and flush them; charges the blocks
    touched unless [charge] is false (design variants that bill update
    traffic elsewhere). [data] must fit the slot. *)

val read_slot : t -> Nv_nvmm.Stats.t -> off:int -> len:int -> bytes

(** {1 Introspection} *)

val iter_allocated : t -> f:(base:int -> unit) -> unit
(** Visit every allocated slot (bumped and not currently free), in
    arena order per core. Used by the recovery scan; the caller charges
    reads as it touches rows. *)

val allocated_slots : t -> int
(** Slots currently allocated (bumped minus free-list population). *)

val bumped_slots : t -> int

val capacity_slots : t -> int
(** Total slots across all cores. *)

val arena_bounds : t -> int * int
(** [(lo, hi)]: the pmem offset span containing every slot of this pool
    (used to route frees back to their owning size class). *)

val nvmm_bytes : t -> int
(** Total NVMM footprint of the pool (arenas + rings + metadata). *)

val free_list_length : t -> int
