module Pmem = Nv_nvmm.Pmem
module Layout = Nv_nvmm.Layout

type core_spec = { arena_off : int; ring_off : int; meta_off : int }

type spec = {
  cores : int;
  slots_per_core : int;
  slot_size : int;
  freelist_capacity : int;
  per_core : core_spec array;
  total_bytes : int;
}

type core_state = { bump : Bump.t; fl : Freelist.t; arena_off : int }
type t = { spec : spec; pmem : Pmem.t; per_core : core_state array }

let reserve builder ~name ~cores ~slots_per_core ~slot_size ~freelist_capacity =
  assert (slot_size mod 8 = 0 && slot_size > 0 && cores > 0);
  let per_core =
    Array.init cores (fun c ->
        let sub n len ?(align = 256) () =
          (Layout.reserve builder ~name:(Printf.sprintf "%s.%d.%s" name c n) ~len ~align ())
            .Layout.off
        in
        let arena_off = sub "arena" (slots_per_core * slot_size) () in
        let ring_off = sub "ring" (Freelist.ring_bytes ~capacity:freelist_capacity) () in
        let meta_off = sub "meta" (Bump.meta_bytes + Freelist.meta_bytes) ~align:64 () in
        { arena_off; ring_off; meta_off })
  in
  let total_bytes =
    cores
    * ((slots_per_core * slot_size)
      + Freelist.ring_bytes ~capacity:freelist_capacity
      + Bump.meta_bytes + Freelist.meta_bytes)
  in
  { cores; slots_per_core; slot_size; freelist_capacity; per_core; total_bytes }

let attach pmem spec =
  let per_core =
    Array.map
      (fun cs ->
        {
          bump = Bump.create pmem ~meta_off:cs.meta_off ~capacity:spec.slots_per_core;
          fl =
            Freelist.create pmem
              ~meta_off:(cs.meta_off + Bump.meta_bytes)
              ~ring_off:cs.ring_off ~capacity:spec.freelist_capacity;
          arena_off = cs.arena_off;
        })
      spec.per_core
  in
  { spec; pmem; per_core }

let slot_size t = t.spec.slot_size
let cores t = t.spec.cores

let alloc t stats ~core =
  let cs = t.per_core.(core) in
  match Freelist.alloc cs.fl stats with
  | Some off -> Int64.to_int off
  | None ->
      let idx = Bump.alloc cs.bump in
      cs.arena_off + (idx * t.spec.slot_size)

let free t stats ~core off = Freelist.free t.per_core.(core).fl stats (Int64.of_int off)

let free_gc t stats ~core off ~dedup =
  let p = Int64.of_int off in
  if not (Hashtbl.mem dedup p) then Freelist.free t.per_core.(core).fl stats p

let persist_gc_tail t stats ~epoch =
  Array.iter (fun cs -> Freelist.persist_gc_tail cs.fl stats ~epoch) t.per_core

let checkpoint t stats_of ~epoch =
  Array.iteri
    (fun core cs ->
      let stats = stats_of core in
      Bump.checkpoint cs.bump stats ~epoch;
      Freelist.checkpoint cs.fl stats ~epoch)
    t.per_core

type recovery = {
  dedup : (int64, unit) Hashtbl.t;
  meta_salvaged : int;
  corrupt_entries : int;
}

let recover t ~last_checkpointed_epoch ~crashed_epoch ?(row_scan = false) () =
  let dedup = Hashtbl.create 64 in
  let salvaged = ref 0 and corrupt = ref 0 in
  Array.iter
    (fun cs ->
      (match Bump.recover cs.bump ~last_checkpointed_epoch with
      | `Ok -> ()
      | `Salvaged ->
          incr salvaged;
          if row_scan then begin
            (* Row arenas can do better than Bump's conservative
               fallback: every allocated row was initialized with a
               checksummed key/table header, so the highest slot whose
               identity verifies bounds the true bump offset. *)
            let last_valid = ref (-1) in
            for i = 0 to t.spec.slots_per_core - 1 do
              let base = cs.arena_off + (i * t.spec.slot_size) in
              if Prow.check_id t.pmem ~base then last_valid := i
            done;
            Bump.force_offset cs.bump (!last_valid + 1)
          end);
      let r = Freelist.recover cs.fl ~last_checkpointed_epoch ~crashed_epoch in
      salvaged := !salvaged + r.Freelist.meta_salvaged;
      corrupt := !corrupt + r.Freelist.corrupt_entries;
      List.iter (fun p -> Hashtbl.replace dedup p ()) r.Freelist.gc_frees)
    t.per_core;
  { dedup; meta_salvaged = !salvaged; corrupt_entries = !corrupt }

let write_value t stats ?(charge = true) ~off ~data () =
  let len = Bytes.length data in
  assert (len > 0 && len <= t.spec.slot_size);
  Pmem.blit_to t.pmem ~src:data ~src_off:0 ~dst_off:off ~len;
  if charge then Pmem.charge_write t.pmem stats ~off ~len;
  Pmem.flush t.pmem stats ~off ~len

let read_slot t stats ~off ~len =
  Pmem.charge_read t.pmem stats ~off ~len;
  Pmem.read_bytes t.pmem ~off ~len

let iter_allocated t ~f =
  (* Build the free set from each core's ring window. *)
  let free = Hashtbl.create 256 in
  Array.iter
    (fun cs -> Freelist.iter_entries cs.fl ~f:(fun p -> Hashtbl.replace free p ()))
    t.per_core;
  Array.iter
    (fun cs ->
      let n = Bump.offset cs.bump in
      for i = 0 to n - 1 do
        let base = cs.arena_off + (i * t.spec.slot_size) in
        if not (Hashtbl.mem free (Int64.of_int base)) then f ~base
      done)
    t.per_core

let bumped_slots t = Array.fold_left (fun acc cs -> acc + Bump.offset cs.bump) 0 t.per_core

let capacity_slots t = t.spec.cores * t.spec.slots_per_core

let arena_bounds t =
  let lo =
    Array.fold_left (fun acc cs -> min acc cs.arena_off) max_int t.per_core
  in
  let hi =
    Array.fold_left
      (fun acc cs -> max acc (cs.arena_off + (t.spec.slots_per_core * t.spec.slot_size)))
      0 t.per_core
  in
  (lo, hi)

let free_list_length t =
  Array.fold_left (fun acc cs -> acc + Freelist.length cs.fl) 0 t.per_core

let allocated_slots t = bumped_slots t - free_list_length t
let nvmm_bytes t = t.spec.total_bytes
