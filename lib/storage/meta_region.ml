module Pmem = Nv_nvmm.Pmem
module Layout = Nv_nvmm.Layout
module Crc = Nv_util.Crc32c

type t = { pmem : Pmem.t; off : int; n_counters : int }

exception Corrupt of string

(* Layout (layout version 2, checksummed):
     0  epoch            crc32c-packed word — the commit record
     8  magic            crc32c-packed word holding the layout version
    16  reserved         (48 bytes, so counters start line-aligned)
    64  counter pairs    32 bytes per counter:
                           +0  value slot 1 (odd epochs)   int64
                           +8  guard slot 1                packed crc32c of value
                          +16  value slot 2 (even epochs)  int64
                          +24  guard slot 2                packed crc32c of value
   Counters keep full 64-bit range, so each parity slot stores the raw
   value plus a packed guard word carrying the value's crc32c; a pair
   never straddles a cache line. An all-zero pair is valid (fresh). *)
let size ~n_counters = 64 + (n_counters * 32)

let salt_epoch = 0x30
let salt_magic = 0x31
let salt_counter = 0x32

let layout_version = 2

let reserve builder ~n_counters =
  Layout.reserve builder ~name:"meta" ~len:(size ~n_counters) ()

let attach pmem (r : Layout.region) ~n_counters =
  assert (r.Layout.len >= size ~n_counters);
  { pmem; off = r.Layout.off; n_counters }

let persist_epoch t stats ~epoch =
  Pmem.fence t.pmem stats;
  Pmem.set_i64 t.pmem t.off (Crc.pack_int ~salt:salt_epoch epoch);
  Pmem.charge_write t.pmem stats ~off:t.off ~len:8;
  Pmem.persist t.pmem stats ~off:t.off ~len:8

let read_epoch t =
  match Crc.unpack_int ~salt:salt_epoch (Pmem.get_i64 t.pmem t.off) with
  | Some e -> e
  | None ->
      (* Without a trustworthy epoch number nothing else can be
         interpreted; this is the one unrecoverable corruption. *)
      raise (Corrupt "meta region: epoch commit record fails its checksum")

let persist_magic t stats =
  Pmem.set_i64 t.pmem (t.off + 8) (Crc.pack_int ~salt:salt_magic layout_version);
  Pmem.charge_write t.pmem stats ~off:(t.off + 8) ~len:8;
  Pmem.persist t.pmem stats ~off:(t.off + 8) ~len:8

let check_magic t =
  match Crc.unpack_int ~salt:salt_magic (Pmem.get_i64 t.pmem (t.off + 8)) with
  | Some 0 -> `Absent (* never bulk-loaded *)
  | Some v when v = layout_version -> `Ok
  | Some v -> `Version_mismatch v
  | None -> `Corrupt

let counter_slot t i epoch = t.off + 64 + (i * 32) + if epoch land 1 = 1 then 0 else 16

let guard v = Crc.pack ~salt:salt_counter (Int64.logand (Int64.of_int32 (Crc.int64_crc v)) 0xFFFFFFFFL)

let checkpoint_counters t stats ~epoch values =
  assert (Array.length values = t.n_counters);
  Array.iteri
    (fun i v ->
      let off = counter_slot t i epoch in
      Pmem.set_i64 t.pmem off v;
      Pmem.set_i64 t.pmem (off + 8) (guard v);
      (* The guard word is controller metadata: charge and account the
         8-byte value store only, but write back the full pair. *)
      Pmem.charge_write t.pmem stats ~off ~len:8;
      Pmem.flush ~charge:false t.pmem stats ~off ~len:16;
      Nv_nvmm.Stats.flush stats)
    values

let check_counter t i epoch =
  let off = counter_slot t i epoch in
  let v = Pmem.get_i64 t.pmem off in
  let g = Pmem.get_i64 t.pmem (off + 8) in
  if v = 0L && g = 0L then Some 0L (* fresh *)
  else
    match Crc.unpack ~salt:salt_counter g with
    | Some c when c = Int64.logand (Int64.of_int32 (Crc.int64_crc v)) 0xFFFFFFFFL -> Some v
    | _ -> None

type counter_recovery = { values : int64 array; salvaged : int list }

let recover_counters t ~last_checkpointed_epoch =
  let salvaged = ref [] in
  let values =
    Array.init t.n_counters (fun i ->
        if last_checkpointed_epoch = 0 then 0L
        else
          match check_counter t i last_checkpointed_epoch with
          | Some v -> v
          | None -> (
              (* Live slot corrupt: the other parity slot holds the
                 previous epoch's value. Replay of the crashed epoch
                 re-derives the increments of the last epoch only if it
                 is the same epoch, so this is best-effort — recorded as
                 damage either way. *)
              salvaged := i :: !salvaged;
              match check_counter t i (last_checkpointed_epoch + 1) with
              | Some v -> v
              | None -> 0L))
  in
  { values; salvaged = List.rev !salvaged }
