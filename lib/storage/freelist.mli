(** Crash-consistent free list: a persistent ring buffer of freed
    pointers (paper sections 5.4–5.5).

    Head and tail are monotone counters; the working copies live in
    DRAM and each has two checkpointed NVMM slots (odd epochs persist
    slot 1, even epochs slot 2). Allocation pops from the head — a pure
    DRAM increment plus one NVMM read of the ring entry. Freeing
    appends at the tail — one sequential 8-byte NVMM write.

    Two invariants make epoch-granularity undo possible:
    + the checkpointed list is never mutated until the next checkpoint
      completes (appends go past the checkpointed tail; pops only move
      the DRAM head);
    + entries freed in the current epoch are not re-allocated in the
      same epoch: [alloc] refuses to advance the head past
      [allowed_tail].

    [allowed_tail] is normally the last checkpointed tail. The value
    pool additionally persists a {e non-revertible} "current tail"
    after each major-GC pass (section 5.5): GC-freed values are durable
    before execution starts and may be reallocated immediately, while
    transaction frees performed during execution remain revertible. *)

type t

val meta_bytes : int
(** NVMM bytes needed for the six offset slots. *)

val ring_bytes : capacity:int -> int
(** NVMM bytes needed for a ring of [capacity] entries. *)

val create :
  Nv_nvmm.Pmem.t -> meta_off:int -> ring_off:int -> capacity:int -> t

val length : t -> int
(** Entries currently in the list (including not-yet-allocatable ones). *)

val allocatable : t -> int
(** Entries the current epoch may still pop. *)

val alloc : t -> Nv_nvmm.Stats.t -> int64 option
(** Pop the entry at the head, or [None] if none is allocatable. *)

val free : t -> Nv_nvmm.Stats.t -> int64 -> unit
(** Append a pointer at the tail. Raises [Failure] on ring overflow. *)

val checkpoint : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
(** Persist DRAM head/tail into [epoch]'s slots (flush only; the caller
    fences). After the epoch commits, everything becomes allocatable. *)

val persist_gc_tail : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
(** Persist the working tail as the non-revertible current tail, tagged
    with [epoch]. Call after major-GC pass 1 has appended all frees and
    before the execution phase; the caller fences. Frees recorded so
    far become allocatable within this epoch and survive a crash. *)

val iter_entries : t -> f:(int64 -> unit) -> unit
(** Visit entries currently in the list, head to tail, without charging
    (introspection for the recovery scan's free set). *)

type recovery = {
  gc_frees : int64 list;
      (** the crashed epoch's durable GC frees (the dedup set replay
          uses to avoid double-freeing — paper section 5.5) *)
  meta_salvaged : int;  (** corrupt checkpointed offset words salvaged *)
  corrupt_entries : int;  (** corrupt ring entries in the live window *)
}

val recover : t -> last_checkpointed_epoch:int -> crashed_epoch:int -> recovery
(** Reload DRAM offsets from the last checkpointed slots; if the crashed
    epoch's major GC had persisted its current tail, keep those frees.

    Every persistent word is crc32c-packed, so corruption is detected
    and salvaged rather than absorbed: a corrupt checkpointed offset
    resets the list to empty (leaking its entries — nothing can be
    double-allocated, and replay re-frees append fresh entries); a
    corrupt GC-tail record falls back to the checkpointed tail; corrupt
    ring entries stay in the window but are skipped by [alloc] and
    counted here. *)
