module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Layout = Nv_nvmm.Layout
module Crc = Nv_util.Crc32c

(* Header: 0 count | 8 epoch | 16 total_len — each a self-checking
   packed word (value + crc32c in one int64, distinct salts), so a
   bit-rotted or torn header reads as corrupt rather than as a plausible
   count. The count is stored first and zeroed at begin_epoch *before*
   the epoch tag is stored, so every torn prefix is either "stale log"
   or "epoch tagged, count 0" — never a new tag with a stale count.

   Records carry a per-record crc32c salted with (epoch, index): a torn
   header that mixes an old count with a new epoch tag then fails record
   verification instead of replaying a stale epoch's inputs.

   Physical record layout: [len i32][crc i32][payload][pad to 4]. The
   4-byte crc is modelled as media-controller metadata: all simulated
   charges (sequential-write bytes, clwb count, read blocks) are
   computed against the *logical* pre-checksum layout
   [len i32][payload][pad to 4], tracked by [log_pos], so timing and
   counters are identical to a layout without checksums. *)
type t = {
  pmem : Pmem.t;
  off : int;
  capacity : int;
  mutable write_pos : int; (* physical append position *)
  mutable log_pos : int; (* logical (charging) position *)
  mutable count : int;
}

type committed =
  | Empty
  | Committed of int * bytes list
  | Corrupt of { epoch : int option; reason : string }

let header_bytes = 24
let salt_count = 0x10
let salt_epoch = 0x11
let salt_total = 0x12

let reserve builder ~capacity_bytes =
  Layout.reserve builder ~name:"log" ~len:(header_bytes + capacity_bytes) ()

let attach pmem (r : Layout.region) =
  {
    pmem;
    off = r.Layout.off;
    capacity = r.Layout.len - header_bytes;
    write_pos = 0;
    log_pos = 0;
    count = 0;
  }

let record_crc ~epoch ~index record =
  let c = Crc.init () in
  let c = Crc.update c record 0 (Bytes.length record) in
  let c = Crc.int64 c (Int64.of_int epoch) in
  let c = Crc.int64 c (Int64.of_int index) in
  Crc.finish c

let begin_epoch t stats ~epoch =
  Pmem.set_i64 t.pmem t.off 0L;
  Pmem.set_i64 t.pmem (t.off + 8) (Crc.pack_int ~salt:salt_epoch epoch);
  Pmem.set_i64 t.pmem (t.off + 16) 0L;
  Pmem.charge_write t.pmem stats ~off:t.off ~len:24;
  Pmem.persist t.pmem stats ~off:t.off ~len:24;
  t.write_pos <- 0;
  t.log_pos <- 0;
  t.count <- 0

let entry_base t = t.off + header_bytes

let align4 v = (v + 3) land lnot 3

let epoch_of_header t =
  match Crc.unpack_int ~salt:salt_epoch (Pmem.get_i64 t.pmem (t.off + 8)) with
  | Some e -> e
  | None -> 0 (* only used to salt appends; recovery re-validates *)

let append t stats record =
  let len = Bytes.length record in
  let phys = align4 (8 + len) in
  let logical = align4 (4 + len) in
  if t.write_pos + phys > t.capacity then failwith "Log_region.append: log region full";
  let pos = entry_base t + t.write_pos in
  Pmem.set_i32 t.pmem pos (Int32.of_int len);
  Pmem.set_i32 t.pmem (pos + 4) (record_crc ~epoch:(epoch_of_header t) ~index:t.count record);
  Pmem.blit_to t.pmem ~src:record ~src_off:0 ~dst_off:(pos + 8) ~len;
  Pmem.charge_seq_write t.pmem stats ~bytes:logical;
  (* Write back the physical range, but charge the clwb loop of the
     logical layout so flush counts match the pre-checksum baseline. *)
  Pmem.flush ~charge:false t.pmem stats ~off:pos ~len:(8 + len);
  let lines =
    Memspec.lines_touched (Stats.spec stats) ~off:(entry_base t + t.log_pos) ~len:(4 + len)
  in
  for _ = 1 to lines do
    Stats.flush stats
  done;
  t.write_pos <- t.write_pos + phys;
  t.log_pos <- t.log_pos + logical;
  t.count <- t.count + 1

let commit t stats =
  (* Entries were written back by [append]; the first fence makes them
     durable before the count that validates them is published. *)
  Pmem.fence t.pmem stats;
  Pmem.set_i64 t.pmem (t.off + 16) (Crc.pack_int ~salt:salt_total t.write_pos);
  Pmem.set_i64 t.pmem t.off (Crc.pack_int ~salt:salt_count t.count);
  Pmem.charge_write t.pmem stats ~off:t.off ~len:24;
  Pmem.persist t.pmem stats ~off:t.off ~len:24

let read_committed t stats =
  Pmem.charge_read t.pmem stats ~off:t.off ~len:24;
  let count_w = Pmem.get_i64 t.pmem t.off in
  let epoch_w = Pmem.get_i64 t.pmem (t.off + 8) in
  let total_w = Pmem.get_i64 t.pmem (t.off + 16) in
  match
    ( Crc.unpack_int ~salt:salt_count count_w,
      Crc.unpack_int ~salt:salt_epoch epoch_w,
      Crc.unpack_int ~salt:salt_total total_w )
  with
  | None, _, _ -> Corrupt { epoch = None; reason = "log header: corrupt count word" }
  | Some _, None, _ -> Corrupt { epoch = None; reason = "log header: corrupt epoch word" }
  | Some count, Some _, _ when count <= 0 -> Empty
  | Some _, Some epoch, None ->
      Corrupt { epoch = Some epoch; reason = "log header: corrupt total-length word" }
  | Some count, Some epoch, Some total -> (
      let corrupt reason = Corrupt { epoch = Some epoch; reason } in
      let entries = ref [] in
      let pos = ref (entry_base t) in
      let lpos = ref (entry_base t) (* logical position, for charging *) in
      let result = ref None in
      let i = ref 0 in
      while !result = None && !i < count do
        let len = Int32.to_int (Pmem.get_i32 t.pmem !pos) in
        if len < 0 || !pos + align4 (8 + len) > entry_base t + t.capacity then
          result := Some (corrupt (Printf.sprintf "log record %d: bad length %d" !i len))
        else begin
          Pmem.charge_read t.pmem stats ~off:!lpos ~len:(4 + len);
          let stored = Pmem.get_i32 t.pmem (!pos + 4) in
          let record = Pmem.read_bytes t.pmem ~off:(!pos + 8) ~len in
          if stored <> record_crc ~epoch ~index:!i record then
            result := Some (corrupt (Printf.sprintf "log record %d: checksum mismatch" !i))
          else begin
            entries := record :: !entries;
            pos := !pos + align4 (8 + len);
            lpos := !lpos + align4 (4 + len);
            incr i
          end
        end
      done;
      match !result with
      | Some c -> c
      | None ->
          if !pos - entry_base t <> total then
            corrupt
              (Printf.sprintf "log: record bytes %d disagree with committed total %d"
                 (!pos - entry_base t) total)
          else Committed (epoch, List.rev !entries))

let bytes_appended t = t.log_pos
