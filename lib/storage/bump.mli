(** Crash-consistent bump allocator offset (paper section 5.4).

    The working offset lives in DRAM, so allocations cost no NVMM
    writes. Two checkpointed copies live in NVMM: odd epochs persist
    slot 1, even epochs slot 2, so the previous epoch's checkpoint is
    never overwritten before the current epoch commits. Recovery loads
    the slot belonging to the last checkpointed epoch, reverting every
    allocation made in the crashed epoch.

    The unit of the offset is up to the caller (the row pool counts
    rows, the value pool counts slots). *)

type t

val meta_bytes : int
(** NVMM bytes this allocator needs for its two slots. *)

val create : Nv_nvmm.Pmem.t -> meta_off:int -> capacity:int -> t
(** Attach to a fresh region; working offset starts at 0. [meta_off]
    must be 8-byte aligned. *)

val offset : t -> int
(** Current working (DRAM) offset — the number of units ever bumped. *)

val alloc : t -> int
(** Take the next unit; returns its index. Raises [Failure] when
    [capacity] is exhausted (the configuration sized the pool wrong). *)

val checkpoint : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
(** Persist the working offset into the slot for [epoch] (flush only;
    the caller issues the epoch-commit fence). *)

val recover : t -> last_checkpointed_epoch:int -> [ `Ok | `Salvaged ]
(** Reload the working offset from [last_checkpointed_epoch]'s slot.
    An epoch of 0 means nothing was ever checkpointed: offset 0.
    Checkpoint words are crc32c-packed: a corrupt live word returns
    [`Salvaged] with the offset forced to the full capacity. The other
    parity slot is only a floor — trusting it could re-issue slots
    allocated since — so the whole pool is leaked rather than risking
    double-allocation. Callers that can rescan their arena should then
    call [force_offset]. *)

val force_offset : t -> int -> unit
(** Override the working offset after an arena rescan reconstructed a
    better value than [`Salvaged]'s conservative fallback (clamped to
    [0, capacity]). *)
