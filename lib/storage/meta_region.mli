(** Global persistent metadata: the committed epoch number and the
    dual-slot checkpointed counters used by TPC-C's order-id generators
    (paper sections 4.3 and 6.2.3).

    The epoch number is the commit record of the whole epoch: it is
    persisted (fence, store, flush, fence) only after every other write
    of the epoch has been fenced, so recovery reads it to learn the
    last fully-checkpointed epoch.

    Layout version 2 checksums everything: the epoch and magic words
    are crc32c-packed, and each counter parity slot pairs the raw
    64-bit value with a packed guard word holding its crc32c. Guards
    are modelled as controller metadata and charge nothing extra. *)

type t

exception Corrupt of string
(** Raised by {!read_epoch} when the epoch commit record fails its
    checksum — the one corruption recovery cannot work around. *)

val reserve : Nv_nvmm.Layout.builder -> n_counters:int -> Nv_nvmm.Layout.region
val attach : Nv_nvmm.Pmem.t -> Nv_nvmm.Layout.region -> n_counters:int -> t

val layout_version : int

val persist_epoch : t -> Nv_nvmm.Stats.t -> epoch:int -> unit
(** The epoch-commit step of Algorithm 1: fence, publish [epoch],
    flush, fence. *)

val read_epoch : t -> int
(** Last committed epoch; 0 if none. @raise Corrupt on checksum failure. *)

val persist_magic : t -> Nv_nvmm.Stats.t -> unit
(** Stamp the layout-version magic word (done once, at bulk load). *)

val check_magic : t -> [ `Ok | `Absent | `Version_mismatch of int | `Corrupt ]
(** Verify the magic word: [`Absent] means the region was never
    stamped (no bulk load — treated as fine), [`Version_mismatch] a
    layout from a different code version, [`Corrupt] a failed
    checksum. *)

val checkpoint_counters : t -> Nv_nvmm.Stats.t -> epoch:int -> int64 array -> unit
(** Persist counter values into [epoch]'s slots (flush only). *)

type counter_recovery = {
  values : int64 array;
  salvaged : int list;  (** indices whose live slot failed its guard *)
}

val recover_counters : t -> last_checkpointed_epoch:int -> counter_recovery
(** Counter values as of the last checkpoint (zeros if never
    checkpointed). A corrupt live slot falls back to the other parity
    slot (the previous epoch's value) and is reported in [salvaged]. *)
