type handle = int

type entry = { handle : int; txn : Txn.t }

type t = {
  engine : Engine_intf.packed;
  epoch_target : int;
  auto_flush : bool;
  queue : entry Queue.t;
  mutable next_handle : int;
  outcomes : (int, [ `Committed | `Aborted ]) Hashtbl.t;
  mutable on_result : (handle -> [ `Committed | `Aborted ] -> unit) option;
}

let of_engine ~engine ?(epoch_target = 1000) ?(auto_flush = true) () =
  if epoch_target <= 0 then invalid_arg "Session.of_engine: epoch_target must be positive";
  {
    engine;
    epoch_target;
    auto_flush;
    queue = Queue.create ();
    next_handle = 0;
    outcomes = Hashtbl.create 256;
    on_result = None;
  }

let create ~db ?epoch_target ?auto_flush () =
  of_engine
    ~engine:(Engine_intf.Packed ((module Db.Serial_engine), db))
    ?epoch_target ?auto_flush ()

let pending t = Queue.length t.queue
let submitted t = t.next_handle
let on_result t f = t.on_result <- Some f

(* Put conflict-deferred entries back at the head of the queue, in
   their original serial order, ahead of everything submitted since. *)
let requeue_front t deferred =
  let q = Queue.create () in
  List.iter (fun e -> Queue.push e q) deferred;
  Queue.transfer t.queue q;
  Queue.transfer q t.queue

let resolve t e outcome =
  Hashtbl.replace t.outcomes e.handle outcome;
  match t.on_result with Some f -> f e.handle outcome | None -> ()

let flush t =
  if Queue.is_empty t.queue then None
  else begin
    let entries = Array.init (Queue.length t.queue) (fun _ -> Queue.pop t.queue) in
    let (Engine_intf.Packed ((module E), db)) = t.engine in
    let stats, _deferred = E.run_batch db (Array.map (fun e -> e.txn) entries) in
    (* run_batch has checkpointed the epoch; only now do outcomes become
       visible (section 6.2.3). Conflict victims the engine returned for
       resubmission stay pending and lead the next batch. *)
    let outcomes = E.last_batch_outcomes db in
    let deferred = ref [] in
    Array.iteri
      (fun i e ->
        match outcomes.(i) with
        | `Deferred -> deferred := e :: !deferred
        | (`Committed | `Aborted) as o -> resolve t e o)
      entries;
    requeue_front t (List.rev !deferred);
    stats
  end

let submit t txn =
  let h = t.next_handle in
  t.next_handle <- h + 1;
  Queue.push { handle = h; txn } t.queue;
  if t.auto_flush && Queue.length t.queue >= t.epoch_target then ignore (flush t);
  h

let result t h =
  if h < 0 || h >= t.next_handle then invalid_arg "Session.result: unknown handle";
  Hashtbl.find_opt t.outcomes h

let poll t h =
  match result t h with
  | None -> `Pending
  | Some (`Committed | `Aborted as o) -> (o :> [ `Pending | `Committed | `Aborted ])
