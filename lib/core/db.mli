(** The NVCaracal engine: an epoch-based deterministic database with
    hybrid DRAM–NVMM storage.

    This is the public API of the paper's contribution. A database is
    created with a fixed table schema and a {!Config.t} selecting the
    design variant; clients then [bulk_load] initial data and drive it
    one epoch at a time with batches of one-shot transactions
    ({!Txn.t}). Each epoch runs Algorithm 1: log inputs, insert step,
    major GC, cache eviction, append step, execution phase, fence,
    epoch-number persist — after which the epoch is checkpointed.

    {2 Execution model}

    Transactions execute in serial-ID order on [config.cores] simulated
    cores (SID mod cores); every memory access charges the owning
    core's simulated clock, and a read of a version produced on another
    core advances the reader's clock to the writer's timestamp —
    modelling the cross-core waits of a real run. Epoch duration is the
    slowest core's clock between epoch boundaries; throughput numbers
    divide committed transactions by simulated time.

    {2 Crash and recovery}

    With [config.crash_safe], the underlying {!Nv_nvmm.Pmem} region
    tracks persistence exactly, [crash] tears it to a legal crash
    image, and [recover] rebuilds a database from the bytes alone:
    reload allocator checkpoints, scan persistent rows (fixing torn
    version updates), rebuild the DRAM index and GC list, and
    deterministically replay the crashed epoch from the input log.

    {2 Layering}

    This module is a thin façade: the state record and shared substrate
    live in {!Epoch}, the two concurrency-control strategies in
    {!Cc_serial} and {!Cc_aria} (instances of {!Cc_intf.S}), major
    collection in {!Gc} and crash recovery in {!Recovery}. Both CC
    modes are also packaged as {!Engine_intf.S} instances
    ({!Serial_engine}, {!Aria_engine}) for backend-generic harness
    code. *)

type t

val create : config:Config.t -> tables:Table.t list -> unit -> t
(** Fresh database. Table ids must be contiguous from 0. *)

val config : t -> Config.t
val tables : t -> Table.t array
val pmem : t -> Nv_nvmm.Pmem.t
val epoch : t -> int
(** Last committed epoch (0 before any). *)

val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit
(** Populate tables ((table, key, value) triples) before benchmarking;
    commits as epoch 1 and resets all measurement state. Must be called
    at most once, before any [run_epoch]. *)

val run_epoch : t -> Txn.t array -> Report.epoch_stats
(** Process one batch. The batch order defines the serial order. *)

val last_epoch_outcomes : t -> [ `Committed | `Aborted ] array
(** Per-transaction outcome of the last completed [run_epoch], in batch
    order — set only once the epoch has been checkpointed (the
    visibility rule of section 6.2.3). *)

val last_batch_outcomes : t -> [ `Committed | `Aborted | `Deferred ] array
(** Like {!last_epoch_outcomes} but covering both CC modes: Aria marks
    conflict victims [`Deferred] (they were returned for resubmission
    and count neither as committed nor as finally aborted). *)

val run_epoch_aria : t -> Txn.t array -> Report.epoch_stats * Txn.t array
(** Aria-style deterministic execution (the paper's section 7 future
    work, after Lu et al., VLDB 2020): transactions need {e no}
    pre-declared write sets. Every body runs against the epoch-start
    snapshot with its writes buffered; a deterministic reservation pass
    then aborts, in serial order, any transaction that read or wrote a
    key written by an earlier transaction in the batch, and the
    surviving writes are applied through the same dual-version NVMM
    path (one persistent write per row per epoch). Returns the epoch
    stats and the deferred transactions, which the client resubmits in
    a later batch. [write_set], [insert_gen], [dynamic_write_set] and
    [recon] are ignored in this mode; [Txn.Ctx.write] accepts any key,
    and inserts are expressed by writing a missing key. Deletes are
    not supported in this mode. Input logging and crash recovery work
    unchanged — replay reproduces the same commit/abort decisions. *)

val advance_core : t -> core:int -> ns:float -> unit
(** Charge raw simulated nanoseconds to one core (coordination layers
    bill network round-trips this way). *)

val snapshot_read : t -> core:int -> table:int -> key:int64 -> bytes option
(** Committed (epoch-boundary) value of a key, charged to [core]'s
    simulated clock and served through the DRAM cache like any other
    committed read. Used by coordination layers (e.g. {!Partition})
    that read remote partitions against the epoch-start snapshot. *)

(** {1 Inspection} *)

val read_committed : t -> table:int -> key:int64 -> bytes option
(** Committed value of a key as of the last epoch boundary (uncharged;
    tests and validation). *)

val iter_committed : t -> table:int -> (int64 -> bytes -> unit) -> unit
(** Visit all live keys of a table with their committed values,
    in unspecified order (uncharged). *)

val mem_report : t -> Report.mem_report
val committed_txns : t -> int

val wide_execs : t -> int
(** Epochs whose execute phase ran on more than one domain (cumulative;
    always 0 under [config.parallelism = 1]). Inspection only — seeded
    results are identical whether or not an epoch ran wide. *)

val aborted_txns : t -> int
(** Cumulative aborted transactions (user aborts and reconnaissance
    aborts; Aria conflict deferrals are not counted — they commit in a
    later epoch). *)

val total_time_ns : t -> float
(** Simulated time consumed so far (max over core clocks). *)

val counter_value : t -> int -> int64
(** Current value of persistent counter [i]. *)

val debug_row : t -> table:int -> key:int64 -> string
(** Diagnostic rendering of a row's persistent version mirror. *)

val counters_total : t -> Nv_nvmm.Stats.counters
(** Aggregate access counters across all cores (diagnostics). *)

(** {1 Observability} *)

val set_observability :
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  ?profile:Nv_obs.Profile.t ->
  ?name:string ->
  t ->
  unit
(** Attach a span tracer, metrics registry and/or wall-clock profiler.
    The tracer gets this database's simulated clock installed and a new
    trace process opened (named [name], default ["nvcaracal"]); every
    subsequent epoch then records the Algorithm-1 phase spans
    (input-log, insert, major-gc, evict, append, execute, fence,
    epoch-persist), sampled per-transaction spans, and GC / eviction
    instants on per-core tracks. If the tracer also has a wall clock
    ({!Nv_obs.Tracer.set_wall_clock}), phase spans carry a second
    wall-time reading exported as a separate clock domain. The metrics
    registry receives one snapshot per epoch whose counters reconcile
    exactly with the returned {!Report.epoch_stats}. The profiler is
    charged per phase (wall time + Gc deltas) and bracketed per epoch
    (slow-epoch detection). Defaults keep the engine on the no-op
    {!Nv_obs.Tracer.null} / {!Nv_obs.Metrics.null} /
    {!Nv_obs.Profile.null} sinks. *)

(** {1 Crash / recovery} *)

type phase = Epoch.phase =
  | Log_done
  | Insert_done
  | Gc_pass1_done
  | Gc_done
  | Append_done
  | Exec_txn of int
  | Exec_done
  | Checkpointed
      (** Epoch-processing milestones, in order. [Exec_txn i] fires
          after transaction [i] finishes (commit or abort). *)

val set_phase_hook : ?defer:bool -> t -> (phase -> unit) -> unit
(** Test instrumentation: called at each milestone of every epoch.
    Crash-injection tests raise from the hook to stop the epoch at a
    precise point and then call [crash]. [defer] (default false) marks
    the hook as blind to intermediate engine state: its [Exec_txn]
    deliveries may then be journaled and fired at the execute phase's
    join barrier, in serial order, instead of forcing the execute phase
    onto one stripe. *)

val serial_reasons : t -> (string * int) list
(** Cumulative [(reason, count)] telemetry of epochs whose execute
    phase was forced onto one stripe, nonzero reasons only (see
    docs/PARALLELISM.md for the reason labels). Empty when every epoch
    ran wide. *)


type recovery_phase = Epoch.recovery_phase =
  | Rec_meta_recovered  (** allocator and counter state rebuilt *)
  | Rec_log_loaded  (** input log read back and verified *)
  | Rec_scan_done  (** index rebuilt; repairs and reverts persisted *)
  | Rec_replay_done  (** crashed epoch re-executed (or dropped) *)
      (** Recovery milestones, in order — the recovery-side analogue of
          {!phase}. *)

val crash : ?faults:Nv_nvmm.Pmem.fault_model -> t -> rng:Nv_util.Rng.t -> Nv_nvmm.Pmem.t
(** Tear the region to a crash image and return it; the database object
    must not be used afterwards. Without [faults] the image is a random
    {e legal} one; with a {!Nv_nvmm.Pmem.fault_model} it additionally
    suffers torn lines, bit-rot and dead lines (recover with
    [~scrub:true] to detect them). Requires [config.crash_safe].
    @raise Invalid_argument otherwise. *)

val recover :
  config:Config.t ->
  tables:Table.t list ->
  pmem:Nv_nvmm.Pmem.t ->
  rebuild:(bytes -> Txn.t) ->
  ?replay_mode:[ `Caracal | `Aria ] ->
  ?phase_hook:(phase -> unit) ->
  ?recovery_hook:(recovery_phase -> unit) ->
  ?scrub:bool ->
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  unit ->
  t * Report.recovery_report
(** Reconstruct a database from a (crashed) region. [rebuild]
    deserializes a logged input record back into its transaction; it
    must be deterministic and agree with what was originally submitted.
    If the crashed epoch's input log committed, the epoch is replayed
    to completion with the concurrency control the database was running
    ([replay_mode], default [`Caracal]). A [tracer] is installed before
    any work (see {!set_observability}), so the four recovery phases
    (load-log, scan, revert, replay) appear as spans, with the replay's
    epoch phases nested inside.

    [recovery_hook] is called at each {!recovery_phase} milestone; tests
    raise from it to simulate a crash in the middle of recovery (all
    recovery-time writes are idempotent, so recovering again converges).

    [scrub] (default false) forces the eager scan and verifies every
    checksum in the persistent layout: stale checksum words are
    rewritten, corrupt stale versions dropped, corrupt current versions
    dropped {e and} reported in [damage], a corrupt committed log makes
    the crashed epoch revert instead of replay ([log_dropped]), and
    corrupt allocator or counter checkpoints are salvaged conservatively
    (leaking slots, never double-allocating). See docs/FAULTS.md.

    Requires [config.crash_safe]. @raise Invalid_argument otherwise.
    @raise Nv_storage.Meta_region.Corrupt if the epoch commit record
    itself is unreadable — the one unrecoverable corruption. *)

(** {1 Engine instances}

    Both CC modes packaged behind the shared {!Engine_intf.S} seam.
    [run_batch] maps to {!run_epoch} (serial; never defers) or
    {!run_epoch_aria} (deferred transactions returned for
    resubmission); [recover] replays with the matching CC strategy and
    drops the recovery report. *)

module Serial_engine : Engine_intf.S with type t = t and type config = Config.t
module Aria_engine : Engine_intf.S with type t = t and type config = Config.t
