type epoch_stats = {
  epoch : int;
  txns : int;
  aborted : int;
  version_writes : int;
  persistent_writes : int;
  transient_only_writes : int;
  minor_gc : int;
  major_gc : int;
  evicted : int;
  cache_hits : int;
  cache_misses : int;
  log_bytes : int;
  duration_ns : float;
  phases : (string * float) list;
}

type mem_report = {
  nvmm_rows : int;
  nvmm_values : int;
  nvmm_log : int;
  nvmm_freelists : int;
  dram_index : int;
  dram_transient : int;
  dram_cache : int;
}

type damage_kind =
  [ `Header  (** row identity header failed its checksum *)
  | `Current_version  (** a stable (pre-crash) version failed; data lost *)
  | `Stale_version  (** an old version failed; dropped, current survives *)
  | `Counter  (** a persistent counter slot failed both parities *)
  | `Log  (** the committed input log failed; crashed epoch dropped *)
  | `Allocator  (** allocator metadata failed; salvaged conservatively *) ]

type damage = { d_table : int; d_key : int64; d_kind : damage_kind }

type recovery_report = {
  load_log_ns : float;
  scan_ns : float;
  revert_ns : float;
  replay_ns : float;
  total_ns : float;
  scanned_rows : int;
  reverted_rows : int;
  replayed_txns : int;
  scrubbed : bool;  (** eager verification scan was forced *)
  log_dropped : bool;  (** committed log failed checksums; epoch not replayed *)
  crc_repaired : int;  (** stale slot checksums rewritten in place *)
  stale_dropped : int;  (** corrupt stale versions dropped (current survives) *)
  alloc_salvaged : int;  (** allocator metadata words rebuilt from fallbacks *)
  alloc_corrupt_entries : int;  (** freelist ring entries skipped *)
  counter_salvaged : int;  (** counters recovered from the older parity slot *)
  damage : damage list;  (** unrecoverable losses, reported loudly *)
}

let zero_epoch_stats =
  {
    epoch = 0;
    txns = 0;
    aborted = 0;
    version_writes = 0;
    persistent_writes = 0;
    transient_only_writes = 0;
    minor_gc = 0;
    major_gc = 0;
    evicted = 0;
    cache_hits = 0;
    cache_misses = 0;
    log_bytes = 0;
    duration_ns = 0.0;
    phases = [];
  }

(* Sum phase durations by name. Names keep their order of first
   appearance (left operand first), so folding shards in core order
   gives one deterministic result, and the grouping of the fold does
   not change which names appear or their order. *)
let merge_phases a b =
  let merged =
    List.map
      (fun (name, v) ->
        match List.assoc_opt name b with None -> (name, v) | Some w -> (name, v +. w))
      a
  in
  merged @ List.filter (fun (name, _) -> not (List.mem_assoc name a)) b

(* Combine two shards of one epoch's statistics. Counters add; the
   duration is the slowest shard (cores run the epoch's phases between
   shared barriers, so epoch duration is a max, not a sum); [epoch] and
   [txns] describe the whole epoch, identical in every real shard, so
   max keeps them stable against zero shards. Associative, with
   [zero_epoch_stats] as identity. *)
let merge_epoch_stats a b =
  {
    epoch = max a.epoch b.epoch;
    txns = max a.txns b.txns;
    aborted = a.aborted + b.aborted;
    version_writes = a.version_writes + b.version_writes;
    persistent_writes = a.persistent_writes + b.persistent_writes;
    transient_only_writes = a.transient_only_writes + b.transient_only_writes;
    minor_gc = a.minor_gc + b.minor_gc;
    major_gc = a.major_gc + b.major_gc;
    evicted = a.evicted + b.evicted;
    cache_hits = a.cache_hits + b.cache_hits;
    cache_misses = a.cache_misses + b.cache_misses;
    log_bytes = a.log_bytes + b.log_bytes;
    duration_ns = Float.max a.duration_ns b.duration_ns;
    phases = merge_phases a.phases b.phases;
  }

let pp_phases ppf phases =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (name, ns) -> Format.fprintf ppf "%s %.0fus" name (ns /. 1e3))
    ppf phases

let pp_epoch_stats ppf s =
  Format.fprintf ppf
    "epoch %d: %d txns (%d aborted), %d version writes (%d persistent, %d transient), gc \
     minor/major %d/%d, evicted %d, cache %d/%d, log %dB, %.0f us"
    s.epoch s.txns s.aborted s.version_writes s.persistent_writes s.transient_only_writes
    s.minor_gc s.major_gc s.evicted s.cache_hits s.cache_misses s.log_bytes
    (s.duration_ns /. 1e3)

let total_nvmm m = m.nvmm_rows + m.nvmm_values + m.nvmm_log + m.nvmm_freelists
let total_dram m = m.dram_index + m.dram_transient + m.dram_cache

let pp_mem_report ppf m =
  Format.fprintf ppf
    "NVMM: rows %d, values %d, log %d, alloc-meta %d | DRAM: index %d, transient %d, cache %d"
    m.nvmm_rows m.nvmm_values m.nvmm_log m.nvmm_freelists m.dram_index m.dram_transient
    m.dram_cache

let pp_damage_kind ppf = function
  | `Header -> Format.pp_print_string ppf "header"
  | `Current_version -> Format.pp_print_string ppf "current-version"
  | `Stale_version -> Format.pp_print_string ppf "stale-version"
  | `Counter -> Format.pp_print_string ppf "counter"
  | `Log -> Format.pp_print_string ppf "log"
  | `Allocator -> Format.pp_print_string ppf "allocator"

let pp_damage ppf d =
  if d.d_table >= 0 then
    Format.fprintf ppf "%a table=%d key=%Ld" pp_damage_kind d.d_kind d.d_table d.d_key
  else Format.fprintf ppf "%a" pp_damage_kind d.d_kind

let has_salvage r =
  r.log_dropped || r.crc_repaired > 0 || r.stale_dropped > 0 || r.alloc_salvaged > 0
  || r.alloc_corrupt_entries > 0 || r.counter_salvaged > 0 || r.damage <> []

let damage_count ~table r =
  List.length (List.filter (fun d -> d.d_table = table) r.damage)

let pp_recovery_report ppf r =
  Format.fprintf ppf
    "recovery: load-log %.0fus, scan %.0fus (%d rows), revert %.0fus (%d rows), replay %.0fus \
     (%d txns), total %.0fus"
    (r.load_log_ns /. 1e3) (r.scan_ns /. 1e3) r.scanned_rows (r.revert_ns /. 1e3)
    r.reverted_rows (r.replay_ns /. 1e3) r.replayed_txns (r.total_ns /. 1e3);
  if r.scrubbed || has_salvage r then begin
    Format.fprintf ppf "@\nscrub:";
    if r.scrubbed then Format.fprintf ppf " verified";
    if r.log_dropped then Format.fprintf ppf " log-dropped";
    if r.crc_repaired > 0 then Format.fprintf ppf " crc-repaired %d" r.crc_repaired;
    if r.stale_dropped > 0 then Format.fprintf ppf " stale-dropped %d" r.stale_dropped;
    if r.alloc_salvaged > 0 then Format.fprintf ppf " alloc-salvaged %d" r.alloc_salvaged;
    if r.alloc_corrupt_entries > 0 then
      Format.fprintf ppf " alloc-corrupt-entries %d" r.alloc_corrupt_entries;
    if r.counter_salvaged > 0 then
      Format.fprintf ppf " counter-salvaged %d" r.counter_salvaged;
    if r.damage <> [] then begin
      Format.fprintf ppf "@\nDAMAGE (%d):" (List.length r.damage);
      List.iter (fun d -> Format.fprintf ppf "@\n  %a" pp_damage d) r.damage
    end
  end

let transient_fraction s =
  if s.version_writes = 0 then nan
  else float_of_int s.transient_only_writes /. float_of_int s.version_writes
