(** Per-row, per-epoch sorted version array (paper section 3.1.2).

    The initialization phase appends one PENDING slot per declared
    write; the execution phase fills slots in serial order. Unlike a
    linked-list MVCC chain, the array is kept sorted by SID so readers
    binary-search for their visible version. Appends use sorted
    insertion — cheap for short arrays, and deliberately O(n) per
    append for very hot rows, which reproduces the long-version-array
    slowdown the paper observes for contended YCSB-smallrow at large
    epochs (section 6.9).

    Each slot records the simulated time at which its value was
    written; a reader's core clock advances to that time, modelling the
    PENDING-wait of a real concurrent run (readers block until the
    writer produces the value). *)

type value =
  | Pending  (** placeholder created by the initialization phase *)
  | Written of Nv_storage.Transient_pool.vref  (** value bytes in the transient pool *)
  | Tombstone  (** a delete became visible at this SID *)
  | Ignored  (** writer aborted (section 4.6) *)

type slot = { sid : Sid.t; mutable value : value; mutable write_time : float }

type t

val create : epoch:int -> nvmm_resident:bool -> ?batch_append:bool -> unit -> t
(** [nvmm_resident] makes slot traffic charge NVMM block costs instead
    of DRAM lines (the all-NVMM baseline of section 6.4).
    [batch_append] applies Caracal's batch-append cost model: O(1) per
    append instead of a sorted insert into a possibly long array. *)

val epoch : t -> int
val length : t -> int

val finalized : t -> bool
val set_finalized : t -> unit
(** Guard so the epoch-final persistent write runs exactly once per row
    even when a transaction declared the same key several times. *)

val append : t -> Nv_nvmm.Stats.t -> Sid.t -> unit
(** Sorted-insert a PENDING slot. Duplicate SIDs are not allowed. *)

val find : t -> Nv_nvmm.Stats.t -> Sid.t -> slot
(** Exact slot for a writer about to fill its placeholder. Raises
    [Not_found]. *)

val latest_visible :
  ?wait_for:(Sid.t -> unit) -> t -> Nv_nvmm.Stats.t -> before:Sid.t -> slot option
(** Latest non-PENDING, non-IGNORED slot with [sid < before] — what a
    reader at serial position [before] observes. PENDING slots below
    [before] violate serial-order execution and raise [Invalid_argument].

    [wait_for sid] is invoked before each inspected slot whose SID is
    real; parallel execution passes a blocking wait on the writer
    transaction's completion flag so the slot's fields are published
    (see docs/PARALLELISM.md). Serial execution omits it. *)

val latest_resolved : ?wait_for:(Sid.t -> unit) -> t -> Nv_nvmm.Stats.t -> slot option
(** Latest non-IGNORED slot overall, treating PENDING as absent — used
    when an aborted final writer must determine the replacement final
    version (section 4.6). [wait_for] as in {!latest_visible}. *)

val max_sid : t -> Sid.t
(** Largest SID in the array ([Sid.none] when empty). *)

val iter : t -> (slot -> unit) -> unit
(** Uncharged ascending traversal (tests, abort marking). *)

val dram_bytes : t -> int
