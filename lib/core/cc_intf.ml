(** The concurrency-control strategy seam.

    A strategy owns one epoch end to end — from the input log through
    execution to the checkpoint — over the shared substrate in
    {!Epoch}. Two instances exist: {!Cc_serial} (Caracal's write-set
    initialization + serial-order execution, Algorithm 1) and
    {!Cc_aria} (Aria-style snapshot execution + deterministic
    reservations). Crash recovery replays the crashed epoch through
    whichever strategy produced it, picked as a first-class module. *)

module type S = sig
  (** Strategy name, for labels and diagnostics. *)
  val name : string

  (** [run ?replay t txns] executes one epoch over [txns] in batch
      order and returns its report plus the transactions deferred to
      the next epoch ([[||]] for strategies without retry).

      [replay] marks deterministic re-execution during recovery: the
      input log is not rewritten, and the crashed epoch's durable-GC
      dedup set is consumed. *)
  val run : ?replay:bool -> Epoch.t -> Txn.t array -> Report.epoch_stats * Txn.t array
end
