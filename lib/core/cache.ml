module Stats = Nv_nvmm.Stats

type t = {
  max_entries : int;
  lists : (int, Row.t list ref) Hashtbl.t; (* eviction list per epoch *)
  mutable entries : int;
  mutable data_bytes : int;
  (* Hit/miss counters are atomic: wide execution touches rows from
     several domains at once, and the per-epoch report only needs the
     (commutative) totals. Structural state stays plain — inserts,
     drops and eviction run serially between or around executions. *)
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ~max_entries =
  {
    max_entries;
    lists = Hashtbl.create 64;
    entries = 0;
    data_bytes = 0;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let push_list t epoch row =
  let l =
    match Hashtbl.find_opt t.lists epoch with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.lists epoch l;
        l
  in
  l := row :: !l

let lines stats len = Nv_nvmm.Memspec.lines_touched (Stats.spec stats) ~off:0 ~len

(* The single admission predicate: an insert lands (and charges DRAM)
   iff the row is already cached (in-place refresh) or the cache has
   headroom. [insert] consults exactly this rule, so any code that
   needs to predict an admission shares it instead of re-deriving it. *)
let admits t (row : Row.t) = row.Row.cached <> None || t.entries < t.max_entries

let insert t stats (row : Row.t) ~data ~epoch =
  if admits t row then
    match row.Row.cached with
    | Some c ->
        t.data_bytes <- t.data_bytes - Bytes.length c.Row.data + Bytes.length data;
        c.Row.data <- data;
        c.Row.last_epoch <- epoch;
        Stats.dram_write stats ~lines:(lines stats (Bytes.length data)) ()
    | None ->
        row.Row.cached <- Some { Row.data; last_epoch = epoch };
        t.entries <- t.entries + 1;
        t.data_bytes <- t.data_bytes + Bytes.length data;
        Stats.dram_write stats ~lines:(lines stats (Bytes.length data)) ();
        push_list t epoch row

let touch t (row : Row.t) ~epoch =
  match row.Row.cached with
  | Some c ->
      Atomic.incr t.hits;
      (* Concurrent touches of a hot row may race here; they all write
         the same (current) epoch, so the outcome is unaffected. *)
      if c.Row.last_epoch < epoch then c.Row.last_epoch <- epoch
  | None -> ()

let note_miss t = Atomic.incr t.misses

let drop t stats (row : Row.t) =
  match row.Row.cached with
  | None -> ()
  | Some c ->
      row.Row.cached <- None;
      t.entries <- t.entries - 1;
      t.data_bytes <- t.data_bytes - Bytes.length c.Row.data;
      Stats.dram_write stats ()

let evict t stats ~current_epoch ~k =
  let target = current_epoch - k - 1 in
  match Hashtbl.find_opt t.lists target with
  | None -> 0
  | Some l ->
      Hashtbl.remove t.lists target;
      let evicted = ref 0 in
      let visit (row : Row.t) =
        Stats.dram_read stats ();
        match row.Row.cached with
        | None -> () (* dropped by the append step or a delete *)
        | Some c ->
            if c.Row.last_epoch <= target then begin
              row.Row.cached <- None;
              t.entries <- t.entries - 1;
              t.data_bytes <- t.data_bytes - Bytes.length c.Row.data;
              incr evicted
            end
            else push_list t c.Row.last_epoch row
      in
      List.iter visit !l;
      !evicted

let entries t = t.entries
let data_bytes t = t.data_bytes
let dram_bytes t = t.data_bytes + (t.entries * 32)
let hits t = Atomic.get t.hits
let misses t = Atomic.get t.misses
