(* The one copy of the Aria-style reservation rule. Partition (the
   in-process sharded executor) and the served cluster path
   (Nv_frontend.Shard) both decide commit/defer with this function, so
   a rule change cannot desynchronise the two. *)

type verdict = Commit | Defer | Abort

let verdicts ~(writes : (int * int64) list array) ~(reads : (int * int64) list array)
    ~(user_aborted : bool array) =
  let n = Array.length writes in
  if Array.length reads <> n || Array.length user_aborted <> n then
    invalid_arg "Determinism.verdicts: array lengths differ";
  (* Reservations: each written key records the smallest transaction
     index (= SID position in the batch) that writes it. User-aborted
     transactions write nothing and reserve nothing. *)
  let reservations : (int * int64, int) Hashtbl.t = Hashtbl.create (4 * n) in
  for i = 0 to n - 1 do
    if not user_aborted.(i) then
      List.iter
        (fun key ->
          match Hashtbl.find_opt reservations key with
          | Some j when j <= i -> ()
          | Some _ | None -> Hashtbl.replace reservations key i)
        writes.(i)
  done;
  (* A transaction defers when any key it read or wrote carries a
     smaller reservation — the same test on every node, no
     coordination. *)
  Array.init n (fun i ->
      if user_aborted.(i) then Abort
      else
        let earlier key =
          match Hashtbl.find_opt reservations key with Some j -> j < i | None -> false
        in
        if List.exists earlier writes.(i) || List.exists earlier reads.(i) then Defer
        else Commit)
