(** Major garbage collection (paper sections 4.4, 5.5).

    Runs during the initialization phase of each epoch, before the
    append step: every row whose previous-epoch write left a stale
    non-inline v1 has that value freed into the value pool's ring
    (durable via the non-revertible current tail) and its versions
    rotated (v1 ← v2, v2 nulled).

    The pass order inverts under the persistent index — rows are
    cleared {e before} frees are appended — so a crash in between leaks
    at most one epoch's stale values instead of leaving dangling
    pointers a later lazy recovery could double-free. *)

(** Collect [t.gc_list], firing [Gc_pass1_done] between the two passes.
    No-op when the list is empty. *)
val major_gc : Epoch.t -> unit
