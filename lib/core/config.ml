type variant = Nvcaracal | All_nvmm | Hybrid | No_logging | All_dram | Wal
type ordered_index = Avl | Btree

type t = {
  variant : variant;
  cores : int;
  row_size : int;
  value_slot_size : int;
  value_size_classes : int list;
  cache_k : int;
  minor_gc : bool;
  cached_versions : bool;
  crash_safe : bool;
  rows_per_core : int;
  values_per_core : int;
  freelist_capacity : int;
  log_capacity : int;
  n_counters : int;
  revert_on_recovery : bool;
  cache_entries_max : int;
  ordered_index : ordered_index;
  batch_append : bool;
  selective_caching : bool;
  persistent_index : bool;
  pindex_capacity : int;
  parallelism : int;
  spec : Nv_nvmm.Memspec.t;
}

let default =
  {
    variant = Nvcaracal;
    cores = 8;
    row_size = 256;
    value_slot_size = 1024;
    value_size_classes = [];
    cache_k = 20;
    minor_gc = true;
    cached_versions = true;
    crash_safe = false;
    rows_per_core = 65536;
    values_per_core = 65536;
    freelist_capacity = 65536;
    log_capacity = 1 lsl 22;
    n_counters = 0;
    revert_on_recovery = false;
    cache_entries_max = max_int;
    ordered_index = Btree;
    batch_append = false;
    selective_caching = false;
    persistent_index = false;
    pindex_capacity = 0;
    parallelism = 1;
    spec = Nv_nvmm.Memspec.default;
  }

let make ?(variant = default.variant) ?(cores = default.cores) ?(row_size = default.row_size)
    ?(value_slot_size = default.value_slot_size)
    ?(value_size_classes = default.value_size_classes) ?(cache_k = default.cache_k)
    ?(minor_gc = default.minor_gc) ?(cached_versions = default.cached_versions)
    ?(crash_safe = default.crash_safe) ?(rows_per_core = default.rows_per_core)
    ?(values_per_core = default.values_per_core)
    ?(freelist_capacity = default.freelist_capacity) ?(log_capacity = default.log_capacity)
    ?(n_counters = default.n_counters) ?(revert_on_recovery = default.revert_on_recovery)
    ?(cache_entries_max = default.cache_entries_max) ?(ordered_index = default.ordered_index)
    ?(batch_append = default.batch_append) ?(selective_caching = default.selective_caching)
    ?(persistent_index = default.persistent_index)
    ?(pindex_capacity = default.pindex_capacity) ?(parallelism = default.parallelism) () =
  assert (row_size >= Nv_storage.Prow.min_row_size);
  {
    variant;
    cores;
    row_size;
    value_slot_size;
    value_size_classes;
    cache_k;
    minor_gc;
    cached_versions;
    crash_safe;
    rows_per_core;
    values_per_core;
    freelist_capacity;
    log_capacity;
    n_counters;
    revert_on_recovery;
    cache_entries_max;
    ordered_index;
    batch_append;
    selective_caching;
    persistent_index;
    pindex_capacity;
    parallelism = max 1 parallelism;
    spec = (if variant = All_dram then Nv_nvmm.Memspec.dram_only else Nv_nvmm.Memspec.default);
  }

let logging_enabled t = match t.variant with Nvcaracal -> true | _ -> false
let caching_enabled t = t.cached_versions && t.variant <> All_nvmm
let uses_dram_version_arrays t = t.variant <> All_nvmm

let writes_all_updates_to_nvmm t =
  match t.variant with
  | All_nvmm | Hybrid -> true
  | Nvcaracal | No_logging | All_dram | Wal -> false

let redo_logs_updates t = t.variant = Wal

let variant_name = function
  | Nvcaracal -> "nvcaracal"
  | All_nvmm -> "all-nvmm"
  | Hybrid -> "hybrid"
  | No_logging -> "no-logging"
  | All_dram -> "all-dram"
  | Wal -> "wal"

let pp_variant ppf v = Format.pp_print_string ppf (variant_name v)
