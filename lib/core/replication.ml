type side = { packed : Engine_intf.packed; db : Db.t option }

type t = {
  primary : side;
  replica : side;
  tables : Table.t array;
  rebuild : bytes -> Txn.t;
  queue : bytes array Queue.t; (* one entry per shipped epoch *)
  mutable shipped_bytes : int;
}

let create_packed ~mk ~tables ~rebuild () =
  {
    primary = { packed = mk (); db = None };
    replica = { packed = mk (); db = None };
    tables = Array.of_list tables;
    rebuild;
    queue = Queue.create ();
    shipped_bytes = 0;
  }

let create ~config ~tables ~rebuild () =
  let side () =
    let db = Db.create ~config ~tables () in
    { packed = Engine_intf.Packed ((module Db.Serial_engine), db); db = Some db }
  in
  {
    primary = side ();
    replica = side ();
    tables = Array.of_list tables;
    rebuild;
    queue = Queue.create ();
    shipped_bytes = 0;
  }

let bulk_load t rows =
  (* Two passes over the sequence; workloads produce pure Seqs. *)
  let load { packed = Engine_intf.Packed ((module E), e); _ } = E.bulk_load e rows in
  load t.primary;
  load t.replica

let submit t txns =
  (* Inputs ship only after the primary commits the epoch: a primary
     crash mid-epoch loses the in-flight epoch on both sides (clients
     retry), and the replica can never run ahead of the primary. Once
     shipped, an epoch survives failover — the queue drains before
     promotion. *)
  let inputs = Array.map (fun (txn : Txn.t) -> txn.Txn.input) txns in
  let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
  let stats, deferred = E.run_batch e txns in
  Array.iter (fun b -> t.shipped_bytes <- t.shipped_bytes + Bytes.length b) inputs;
  Queue.push inputs t.queue;
  (stats, deferred)

let replica_lag t = Queue.length t.queue

let apply_one t =
  match Queue.take_opt t.queue with
  | None -> ()
  | Some inputs ->
      let (Engine_intf.Packed ((module E), e)) = t.replica.packed in
      ignore (E.run_batch e (Array.map t.rebuild inputs))

let sync t ?upto () =
  let n = match upto with Some n -> min n (Queue.length t.queue) | None -> Queue.length t.queue in
  for _ = 1 to n do
    apply_one t
  done

let shipped_bytes t = t.shipped_bytes
let primary t = t.primary.packed
let replica t = t.replica.packed

let side_db which = function
  | { db = Some db; _ } -> db
  | { db = None; _ } ->
      invalid_arg (Printf.sprintf "Replication.%s_db: pair is not Db-backed" which)

let primary_db t = side_db "primary" t.primary
let replica_db t = side_db "replica" t.replica

let failover t =
  sync t ();
  t.replica.packed

let failover_db t =
  sync t ();
  side_db "replica" t.replica

let table_state (Engine_intf.Packed ((module E), e)) ~table =
  let out = ref [] in
  E.iter_committed e ~table (fun k v -> out := (k, Bytes.to_string v) :: !out);
  List.sort compare !out

let states_equal t =
  sync t ();
  Array.for_all
    (fun (tb : Table.t) ->
      table_state t.primary.packed ~table:tb.Table.id
      = table_state t.replica.packed ~table:tb.Table.id)
    t.tables

(* ------------------------------------------------------------------ *)
(* Engine instance: a replicated pair behind the engine seam — every
   batch executes on the primary and ships to the replica, reads come
   from the primary.                                                   *)

type engine_config = { e_config : Config.t; e_rebuild : bytes -> Txn.t }

module Engine : Engine_intf.S with type t = t and type config = engine_config = struct
  type nonrec t = t
  type config = engine_config

  let name = "replication"

  let create ~config:{ e_config; e_rebuild } ~tables () =
    create ~config:e_config ~tables ~rebuild:e_rebuild ()

  let bulk_load = bulk_load
  let run_batch = submit

  let read_committed t ~table ~key =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.read_committed e ~table ~key

  let iter_committed t ~table f =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.iter_committed e ~table f

  let last_batch_outcomes t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.last_batch_outcomes e

  let committed_txns t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.committed_txns e

  let aborted_txns t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.aborted_txns e

  let total_time_ns t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.total_time_ns e

  let introspect t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.introspect e

  let mem_report t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.mem_report e

  let counters_total t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.counters_total e

  let set_observability ?tracer ?metrics ?profile ?name t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.set_observability ?tracer ?metrics ?profile ?name e

  let pmem t =
    let (Engine_intf.Packed ((module E), e)) = t.primary.packed in
    E.pmem e

  let crash ?faults:_ _ ~rng:_ =
    invalid_arg "Replication.Engine.crash: crash the primary and failover instead"

  let recover ~config:_ ~tables:_ ~pmem:_ ~rebuild:_ () =
    invalid_arg "Replication.Engine.recover: recovery is failover to the replica"
end
