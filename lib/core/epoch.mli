(** Epoch state and the shared substrate of the phase pipeline.

    This module owns the engine's state record and everything the phase
    drivers have in common: construction and NVMM layout, observability
    plumbing, the version-store access paths (committed reads, version
    arrays, the dual-version final write), bulk load and inspection.

    It is an {e internal seam}: the state record is exposed field by
    field so that the concurrency-control strategies ({!Cc_serial},
    {!Cc_aria}), the garbage collector ({!Gc}) and crash recovery
    ({!Recovery}) can be separate compilation units. External code
    should go through {!Db} (the public façade) or a first-class
    {!Engine_intf.S} instance instead. *)

module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module TP = Nv_storage.Transient_pool
module Prow = Nv_storage.Prow
module Vptr = Nv_storage.Vptr
module Slab = Nv_storage.Slab_pool
module VPools = Nv_storage.Value_pools
module PIdx = Nv_storage.Pindex
module Log = Nv_storage.Log_region
module Meta = Nv_storage.Meta_region
module HIdx = Nv_index.Hash_index
module OIdx = Nv_index.Ordered_index
module BIdx = Nv_index.Btree_index
module VA = Version_array
module Tracer = Nv_obs.Tracer
module Metrics = Nv_obs.Metrics
module Dpool = Nv_util.Dpool

(** One DRAM index per table, chosen by the table's kind and the
    configured ordered-index implementation. *)
type index = Hash of Row.t HIdx.t | Ord of Row.t OIdx.t | Bt of Row.t BIdx.t

(** Milestones of one epoch, in pipeline order; a phase hook installed
    with {!set_phase_hook} is called at each and may raise to simulate
    a crash mid-epoch. *)
type phase =
  | Log_done
  | Insert_done
  | Gc_pass1_done
  | Gc_done
  | Append_done
  | Exec_txn of int
  | Exec_done
  | Checkpointed

(** Why an epoch's execute phase stayed on one stripe. Recorded per
    gated epoch ({!note_serial_reason}) and surfaced cumulatively
    ({!serial_reasons}, plus [serial.<label>] metrics counters), so
    gating regressions show up in telemetry instead of silently zeroing
    {!wide_execs}. *)
type serial_reason =
  | R_width  (** pool width or core count yields a single stripe *)
  | R_small_batch  (** one transaction (or none): nothing to overlap *)
  | R_nested  (** already inside a pool task (e.g. a partition node) *)
  | R_phase_hook  (** a non-deferrable hook observes intermediate state *)
  | R_unmirrored_rows  (** lazy pindex recovery left rows mirror-less *)
  | R_row_align  (** crash-safe mode with rows not cache-line aligned *)

val serial_reason_label : serial_reason -> string
val all_serial_reasons : serial_reason list

(** One journaled side effect of the execution phase — a statement the
    serial-order loop would have executed in place, recorded instead
    and replayed in ascending serial position at the join barrier. See
    {!Effects}. *)
type effect_ =
  | E_gc_push of Row.t  (** major-GC list push *)
  | E_cache_fill of { st : Stats.t; row : Row.t; data : bytes }
      (** committed-value cache insert; admission runs against the true
          cache state at apply time and charges [st], the recording
          core's meter *)
  | E_delete of { core : int; row : Row.t }
      (** the whole persistent delete (frees, index removal, cache
          drop) is deferred to the barrier *)
  | E_hook of phase  (** a deferrable phase hook's delivery *)
  | E_observe of { hist : Nv_obs.Metrics.histogram; v : float }
      (** histogram observation (float sums are order-sensitive) *)
  | E_trace of (unit -> unit)  (** sampled txn span emission *)

(** The per-stripe journal: stripe [s] holds records of serial
    positions congruent to [s] (mod [ej_d]), newest first. *)
type effects_journal = { ej_d : int; ej_shards : (int * effect_) list array }

(** A phase hook and whether its delivery may be deferred to the join
    barrier; non-deferrable hooks force the execute phase serial. *)
type phase_hook = { hk_fn : phase -> unit; hk_defer : bool }

(** Recovery milestones, mirroring [phase] for the recovery pipeline. *)
type recovery_phase =
  | Rec_meta_recovered  (** allocator and counter state rebuilt *)
  | Rec_log_loaded  (** input log read back and verified *)
  | Rec_scan_done  (** index rebuilt; repairs and reverts persisted *)
  | Rec_replay_done  (** crashed epoch re-executed (or dropped) *)

(** The engine state. Every field is visible to the sibling phase
    modules; treat it as private elsewhere. *)
type t = {
  config : Config.t;
  tables : Table.t array;
  pmem : Pmem.t;
  core_stats : Stats.t array;
  scratch : Stats.t;  (** uncharged inspection accesses *)
  row_pool : Slab.t;
  value_pool : VPools.t;
  pindex : PIdx.t option;
  pix_delta : (int * int64, [ `Ins of int | `Del ]) Hashtbl.t;
      (** net index changes of the current epoch, batched to NVMM at
          epoch end when the persistent index is enabled *)
  log : Log.t;
  meta : Meta.t;
  indexes : index array;
  tpool : TP.t;
  cache : Cache.t;
  counters : int64 array;
  mutable epoch : int;
      (** epoch currently being processed (= last committed between
          epochs) *)
  mutable gc_list : Row.t list;
  mutable gc_dedup : (int64, unit) Hashtbl.t;
  mutable touched : Row.t list;
      (** rows holding a version array this epoch *)
  mutable retain_gc_dedup : bool;
      (** lazy (persistent-index) recovery: stale versions are
          collected on first touch, possibly many epochs later, so the
          crashed epoch's durable-GC dedup set must outlive the replay *)
  mutable loaded : bool;
  pool : Dpool.t;
      (** domain pool driving eligible per-core phase loops (width =
          {!Config.t.parallelism}) *)
  mutable effects : effects_journal option;
      (** the execute phase's effect journal; installed at every width
          (one code path, one behaviour), [None] outside the phase *)
  mutable unmirrored_rows : bool;
      (** lazy (persistent-index) recovery left rows whose DRAM mirror
          loads on first touch; execution stays serial until cleared *)
  serial_reasons : int array;
      (** cumulative per-reason counts of serially-gated epochs *)
  mutable wide_execs : int;
      (** epochs whose execute phase actually ran wide (cumulative) *)
  committed : int array;  (** cumulative, sharded by core *)
  total_aborted : int array;  (** cumulative, sharded by core *)
  mutable log_high_water : int;
  m_aborted : int array;
  m_version_writes : int array;
  m_persistent_writes : int array;
  m_minor_gc : int array;
  m_major_gc : int array;
  mutable m_evicted : int;
  mutable m_cache_hits0 : int;
  mutable m_cache_misses0 : int;
  mutable last_outcomes : [ `Committed | `Aborted | `Deferred ] array;
      (** per-txn outcome of the last batch, set at its checkpoint *)
  mutable phase_hook : phase_hook option;
  mutable tracer : Tracer.t;
  mutable metrics : Metrics.t;
  mutable profile : Nv_obs.Profile.t;
  mutable m_access0 : Stats.counters;
      (** access-counter totals at epoch start *)
}

val config : t -> Config.t
val tables : t -> Table.t array
val pmem : t -> Pmem.t

(** {1 Construction} *)

(** [attach config tables pmem] builds engine state over an existing
    NVMM arena (used by {!create} and by recovery). *)
val attach : Config.t -> Table.t list -> Pmem.t -> t

(** [create ~config ~tables ()] sizes an NVMM arena from the config's
    layout and attaches fresh engine state to it. *)
val create : config:Config.t -> tables:Table.t list -> unit -> t

val epoch : t -> int

(** Install a phase hook. [defer] (default false) permits the hook's
    {!phase} deliveries from inside the execute phase to be journaled
    and fired at the join barrier, in serial order — a non-deferrable
    hook instead forces execution serial ({!R_phase_hook}), because it
    may observe intermediate engine state. *)
val set_phase_hook : ?defer:bool -> t -> (phase -> unit) -> unit

(** Fire the installed phase hook, if any (journaled when the hook is
    deferrable and a transaction is recording). The [Exec_txn] chaos
    crashpoint fires inline at every width. *)
val hook : t -> phase -> unit

(** Count one serially-gated epoch against [reason]. *)
val note_serial_reason : t -> serial_reason -> unit

(** Cumulative [(label, count)] of serially-gated epochs, nonzero
    reasons only, in declaration order. *)
val serial_reasons : t -> (string * int) list

(** {1 Observability} *)

(** Merged access counters of all simulated cores. *)
val counters_total : t -> Stats.counters

(** Install trace/metrics sinks; [name] labels the Perfetto process. *)
val set_observability :
  ?tracer:Tracer.t ->
  ?metrics:Metrics.t ->
  ?profile:Nv_obs.Profile.t ->
  ?name:string ->
  t ->
  unit

(** [phase_span t name f] runs [f] and records one span per core from
    each core's clock at entry to its clock at exit (no span if [f]
    raises — crash injection), plus the phase's wall window when the
    tracer has a wall clock, and charges the phase to the attached
    profiler. *)
val phase_span : t -> string -> (unit -> 'a) -> 'a

(** Publish one epoch's report plus access-counter deltas and allocator
    gauges to the metrics sink. *)
val publish_epoch_metrics : t -> Report.epoch_stats -> unit

(** {1 Cores, clocks and indexes} *)

(** Home core of serial position [seq] ([seq mod cores]). *)
val core_of : t -> int -> int

(** The per-core simulated clock and counters. *)
val stats_of : t -> int -> Stats.t

(** The engine's domain pool ({!Nv_util.Dpool}); width 1 means every
    phase loop runs serially on the calling domain. *)
val pool : t -> Dpool.t

(** Synchronize all core clocks to the maximum; returns it. Phase
    boundaries are barriers. *)
val barrier : t -> float

val find_row : t -> Stats.t -> table:int -> key:int64 -> Row.t option
val index_insert : t -> Stats.t -> table:int -> key:int64 -> Row.t -> unit
val index_remove : t -> Stats.t -> table:int -> key:int64 -> unit
val is_pool : Vptr.t -> bool
val is_inline : Vptr.t -> bool

(** {1 Version-store access} *)

(** Store one version value into the transient pool, charging per the
    design variant (NVMM for designs that persist every update). *)
val store_version_value :
  t -> Stats.t -> core:int -> ?initial:bool -> bytes -> TP.vref

(** Load a version value back, with the matching charge. *)
val load_version_value : t -> Stats.t -> initial:bool -> TP.vref -> bytes

(** The latest persistent version visible at checkpoint granularity
    (bounded by [max_epoch], default the previous epoch). *)
val checkpoint_pversion : ?max_epoch:int -> t -> Row.t -> Row.pversion option

(** Lazily load a row's DRAM mirror from its NVMM header, completing
    any torn version update found there (section 4.5 repairs). *)
val ensure_mirror : t -> Stats.t -> Row.t -> unit

(** Read a row's committed value from the DRAM cache or NVMM,
    optionally filling the cache on a miss. *)
val committed_read :
  ?max_epoch:int -> t -> Stats.t -> Row.t -> fill_cache:bool -> bytes option

(** Get (or create, registering the row in [touched] and seeding the
    initial version) the row's version array for the current epoch. *)
val ensure_varray : t -> Stats.t -> core:int -> Row.t -> VA.t

(** Free a pool value (no-op for inline/null pointers); [guard_dedup]
    skips values the crashed epoch's GC already freed durably. *)
val free_pool_value :
  ?guard_dedup:bool -> t -> Stats.t -> core:int -> Vptr.t -> unit

(** Write (sid, data) as the row's new recent version, rotating the
    dual-version slots as required (sections 4.4–4.6, 5.3). *)
val do_prow_final_write :
  t -> Stats.t -> core:int -> Row.t -> sid:Sid.t -> data:bytes -> unit

(** Persistently delete a row: free its values and slot, unhook the
    DRAM state. *)
val do_prow_delete : t -> Stats.t -> core:int -> Row.t -> unit

(** Flush the epoch's net index changes to the persistent index in one
    batch (part of the epoch checkpoint). *)
val apply_pindex_delta : t -> Stats.t -> unit

(** {1 The effect-journal layer}

    The engine's single mechanism for running the execute phase on
    multiple domains. The CC strategy installs a journal with
    {!Effects.begin_exec} (at {e every} width, so one code path yields
    one behaviour); transaction bodies record order-sensitive side
    effects under their serial position ({!record_effect}, called via
    the finalizer helpers above and directly by the strategies); the
    join barrier replays the merged journal in ascending serial
    position ({!Effects.drain}), leaving exactly the structures,
    charges and pmem bytes the serial-order loop would. *)

(** Set the calling domain's current serial position ([-1] = not inside
    a transaction body). The strategies bracket each transaction body
    with this. *)
val set_cur_seq : int -> unit

(** Record [e] under the current serial position. Returns [false] — and
    records nothing — when no journal is installed or the caller is not
    inside a transaction body; the caller then applies the effect
    immediately (serial semantics). *)
val record_effect : t -> effect_ -> bool

(** Insert a finalized value into the committed-value cache: journaled
    during execution, immediate otherwise. *)
val cache_insert_final : t -> Stats.t -> Row.t -> data:bytes -> unit

module Effects : sig
  (** Install a fresh [d]-stripe journal (and count a wide execution
      when [d > 1]). *)
  val begin_exec : t -> d:int -> unit

  (** Replay the journal in ascending serial position and uninstall it.
      The journal is uninstalled before replay, so effects recorded
      from inside an apply fall through to their immediate form. *)
  val drain : t -> unit

  (** Discard the journal without applying (execution died; recovery's
      deterministic replay rebuilds the state). *)
  val abort : t -> unit

  (** Alias of {!record_effect}. *)
  val record : t -> effect_ -> bool
end

(** {1 Shared epoch scaffolding}

    The pieces of Algorithm 1 common to both CC strategies; the
    strategies sequence them. *)

(** Reset the per-epoch meters (kept separate from {!begin_epoch} for
    recovery, which re-runs an epoch at the same number). *)
val reset_epoch_measurements : t -> unit

(** Bump the epoch number and reset per-epoch state. *)
val begin_epoch : t -> unit

(** Log transaction inputs (section 4.3); skipped during replay. *)
val log_inputs : t -> replay:bool -> Txn.t array -> unit

(** First half of the epoch checkpoint: persist allocators and
    counters, apply the persistent-index delta. The caller persists the
    epoch number. *)
val checkpoint_allocators : t -> unit

(** Assemble the epoch's report from the per-epoch meters and publish
    it to the metrics sink. *)
val epoch_report :
  t ->
  txns:int ->
  replay:bool ->
  duration:float ->
  phases:(string * float) list ->
  Report.epoch_stats

(** {1 Bulk load} *)

(** Load the initial database as epoch 1, then reset the simulated
    clocks (loading is setup, not workload). *)
val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit

(** {1 Inspection} *)

val latest_pversion : t -> Row.t -> Row.pversion option
val advance_core : t -> core:int -> ns:float -> unit
val snapshot_read : t -> core:int -> table:int -> key:int64 -> bytes option
val read_committed : t -> table:int -> key:int64 -> bytes option
val iter_committed : t -> table:int -> (int64 -> bytes -> unit) -> unit
val mem_report : t -> Report.mem_report
val committed_txns : t -> int
val aborted_txns : t -> int

(** Epochs whose execute phase ran on more than one domain (cumulative;
    0 under [parallelism = 1]). Inspection only — tests assert the wide
    path engages where expected. *)
val wide_execs : t -> int
val total_time_ns : t -> float
val counter_value : t -> int -> int64
val last_epoch_outcomes : t -> [ `Committed | `Aborted ] array

(** Per-transaction outcome of the last batch, in batch order, set only
    once the batch's epoch has been checkpointed. Serial CC reports
    [`Committed]/[`Aborted]; Aria additionally marks conflict victims
    [`Deferred] (they were returned for resubmission). *)
val last_batch_outcomes : t -> [ `Committed | `Aborted | `Deferred ] array

val debug_row : t -> table:int -> key:int64 -> string
