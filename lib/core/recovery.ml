(* Crash and recovery (paper sections 4.5, 5.x; scrub/salvage per
   docs/FAULTS.md). Moved verbatim out of the Db monolith; the replay
   step re-enters whichever CC strategy produced the crashed epoch,
   picked as a first-class {!Cc_intf.S}. *)

module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Prow = Nv_storage.Prow
module Vptr = Nv_storage.Vptr
module Slab = Nv_storage.Slab_pool
module VPools = Nv_storage.Value_pools
module PIdx = Nv_storage.Pindex
module Log = Nv_storage.Log_region
module Meta = Nv_storage.Meta_region
module Tracer = Nv_obs.Tracer

open Epoch

let crash ?faults t ~rng =
  if not t.config.Config.crash_safe then
    invalid_arg "Db.crash: requires a crash_safe configuration";
  (match faults with
  | None -> Pmem.crash t.pmem ~rng
  | Some model -> ignore (Pmem.crash_with_faults t.pmem ~rng ~model));
  t.pmem

(* The CC strategy that produced (and therefore replays) the crashed
   epoch. *)
let cc_of_mode = function
  | `Caracal -> (module Cc_serial : Cc_intf.S)
  | `Aria -> (module Cc_aria : Cc_intf.S)

let recover ~config ~tables ~pmem ~rebuild ?(replay_mode = `Caracal) ?phase_hook
    ?recovery_hook ?(scrub = false) ?tracer ?metrics () =
  if not config.Config.crash_safe then
    invalid_arg "Db.recover: requires a crash_safe configuration";
  let t = attach config tables pmem in
  (match phase_hook with Some h -> set_phase_hook t h | None -> ());
  let rhook p = match recovery_hook with Some f -> f p | None -> () in
  set_observability ?tracer ?metrics ~name:"recovery" t;
  t.loaded <- true;
  let stats0 = stats_of t 0 in
  (* Damage and salvage accounting (populated by the scrub checks; all
     zero/empty on a clean legal-crash recovery). *)
  let damage = ref [] in
  let crc_repaired = ref 0 in
  let stale_dropped = ref 0 in
  let report_damage ~table ~key kind =
    damage := { Report.d_table = table; d_key = key; d_kind = kind } :: !damage
  in
  (match Meta.check_magic t.meta with
  | `Ok | `Absent -> ()
  | `Version_mismatch v ->
      failwith
        (Printf.sprintf "Db.recover: persistent layout version %d, this build expects %d" v
           Meta.layout_version)
  | `Corrupt ->
      (* Advisory only — the epoch word is the commit record. Restamp. *)
      Meta.persist_magic t.meta stats0;
      incr crc_repaired);
  let lce = Meta.read_epoch t.meta in
  let crashed = lce + 1 in
  t.epoch <- lce;
  (* Allocator state reverts to the last checkpoint; durable GC frees of
     the crashed epoch are kept and feed the dedup set. *)
  let row_rec =
    Slab.recover t.row_pool ~last_checkpointed_epoch:lce ~crashed_epoch:crashed ~row_scan:true
      ()
  in
  let val_rec =
    VPools.recover t.value_pool ~last_checkpointed_epoch:lce ~crashed_epoch:crashed
  in
  t.gc_dedup <- val_rec.VPools.dedup;
  let alloc_salvaged = row_rec.Slab.meta_salvaged + val_rec.VPools.meta_salvaged in
  let alloc_corrupt = row_rec.Slab.corrupt_entries + val_rec.VPools.corrupt_entries in
  if alloc_salvaged > 0 then report_damage ~table:(-1) ~key:0L `Allocator;
  let counter_salvaged = ref 0 in
  if config.Config.n_counters > 0 then begin
    let cr = Meta.recover_counters t.meta ~last_checkpointed_epoch:lce in
    Array.blit cr.Meta.values 0 t.counters 0 (Array.length cr.Meta.values);
    counter_salvaged := List.length cr.Meta.salvaged;
    List.iter
      (fun i -> report_damage ~table:(-1) ~key:(Int64.of_int i) `Counter)
      cr.Meta.salvaged
  end;
  rhook Rec_meta_recovered;
  (* Load the crashed epoch's input log, if it committed. *)
  let t0 = Stats.now stats0 in
  let log_dropped = ref false in
  let log_entries =
    match Log.read_committed t.log stats0 with
    | Log.Committed (ep, entries) when ep = crashed -> Some entries
    | Log.Committed _ | Log.Empty -> None
    | Log.Corrupt { epoch = Some ep; reason = _ } when ep <> crashed ->
        (* A superseded epoch's log went bad; it was never going to be
           read again. *)
        None
    | Log.Corrupt _ ->
        (* The crashed epoch committed but its inputs are unreadable:
           it cannot be replayed. Drop the epoch — reverting its row
           writes below — and report the loss loudly. *)
        log_dropped := true;
        report_damage ~table:(-1) ~key:0L `Log;
        None
  in
  let t_load = Stats.now stats0 -. t0 in
  rhook Rec_log_loaded;
  (* Rebuild the DRAM index. With the persistent index enabled (and no
     revert pass required), recovery reads the sequential NVMM bucket
     table and defers per-row version state to first touch — the
     section 7 fast path. Otherwise, scan every persistent row: fix
     torn version updates, rebuild the index and the GC list, and
     optionally revert crashed-epoch writes. *)
  let scanned = ref 0 in
  let reverted = ref 0 in
  let revert_ns = ref 0.0 in
  let t1 = Stats.now stats0 in
  (* Scrub and a dropped log both force the eager scan: the former to
     verify every row, the latter to revert the unreplayable epoch. *)
  let lazy_path =
    config.Config.persistent_index && (not config.Config.revert_on_recovery)
    && (not scrub) && (not !log_dropped)
    && t.pindex <> None
  in
  let do_revert = config.Config.revert_on_recovery || !log_dropped in
  (* Rows whose v2 carries the crashed epoch's SID but fails its
     checksum. A genuine torn write of the crashed epoch is made whole
     by the replay; one fabricated by bit-rot (a stable SID rotted into
     the crashed epoch) is not, so judgement is deferred to after the
     replay. Until then the slot is left untouched — in particular the
     revert below skips it, so the post-replay check can still tell the
     two apart. *)
  let suspects = ref [] in
  if lazy_path then begin
    let pix = match t.pindex with Some p -> p | None -> assert false in
    PIdx.iter_recovered pix stats0 ~crashed_epoch:crashed ~f:(fun ~key ~table ~base ->
        incr scanned;
        let row = Row.make ~key ~table ~home_core:0 ~prow_base:base ~created_epoch:0 in
        row.Row.mirror_loaded <- false;
        row.Row.lazily_recovered <- true;
        index_insert t stats0 ~table ~key row);
    (* Stale versions are now collected lazily, so the crashed epoch's
       durable-GC dedup set must survive past the replay. Mirror loads
       (and their torn-header repairs) now happen on first touch — a
       shared-structure mutation outside the effect journal — so the
       execute phase stays serial from here on. *)
    t.retain_gc_dedup <- true;
    t.unmirrored_rows <- true
  end
  else begin
    (* With a persistent index maintained but the scan path taken (the
       TPC-C revert mode), still repair crashed-epoch bucket tags so
       the table stays consistent for future recoveries. *)
    (match t.pindex with
    | Some pix ->
        PIdx.iter_recovered pix stats0 ~crashed_epoch:crashed ~f:(fun ~key:_ ~table:_ ~base:_ ->
            ())
    | None -> ());
  Slab.iter_allocated t.row_pool ~f:(fun ~base ->
      incr scanned;
      if scrub && not (Prow.check_id t.pmem ~base) then
        (* The identity header fails its checksum: nothing about this
           slot can be trusted. Leave it unindexed and report it —
           the key as read may itself be garbage. *)
        report_damage ~table:(-1) ~key:(Prow.peek_key t.pmem ~base) `Header
      else begin
      let key, table, v1, v2 = Prow.read_header t.pmem stats0 ~base in
      (* Torn case 1: a GC move copied the SID (and possibly the
         pointer) to v1 but did not finish nulling v2. Complete it. *)
      let v1, v2 =
        if
          (not (Sid.is_none v1.Prow.sid))
          && Sid.compare v1.Prow.sid v2.Prow.sid = 0
          && Sid.epoch_of v1.Prow.sid <> crashed
        then begin
          Prow.repair_case1 t.pmem stats0 ~base ();
          Prow.peek_versions t.pmem ~base
        end
        else (v1, v2)
      in
      (* Torn case 2: v2's SID was nulled but not its pointer. *)
      let v2 =
        if Sid.is_none v2.Prow.sid && not (Vptr.is_null v2.Prow.ptr) then begin
          Prow.repair_case2 t.pmem stats0 ~base ();
          { Prow.sid = Sid.none; ptr = Vptr.null }
        end
        else v2
      in
      (* Scrub: verify v2 against its checksum word. Slots carrying the
         crashed epoch's SID are judged after the replay instead. *)
      let suspect = ref false in
      let v2 =
        if not scrub then v2
        else if (not (Sid.is_none v2.Prow.sid)) && Sid.epoch_of v2.Prow.sid = crashed
        then begin
          if Prow.check_slot t.pmem ~base ~slot:`V2 = Prow.Slot_corrupt then
            suspect := true;
          v2
        end
        else
          match Prow.check_slot t.pmem ~base ~slot:`V2 with
          | Prow.Slot_ok -> v2
          | Prow.Slot_stale_crc ->
              Prow.rewrite_slot_crc t.pmem stats0 ~base ~slot:`V2;
              incr crc_repaired;
              v2
          | Prow.Slot_corrupt ->
              (* A stable current version fails its checksum: the data
                 is lost. Drop the version so reads fall back to v1 (or
                 to absence) and report the damage loudly. *)
              report_damage ~table ~key `Current_version;
              Prow.set_version t.pmem stats0 ~base ~slot:`V2 ~sid:Sid.none ~ptr:Vptr.null ();
              { Prow.sid = Sid.none; ptr = Vptr.null }
      in
      (* Revert of crashed-epoch writes: configured (TPC-C, section
         6.2.3) or forced because the epoch's log was dropped. *)
      let v2 =
        if
          do_revert && (not !suspect)
          && (not (Sid.is_none v2.Prow.sid))
          && Sid.epoch_of v2.Prow.sid = crashed
        then begin
          let r0 = Stats.now stats0 in
          Prow.set_version t.pmem stats0 ~base ~slot:`V2 ~sid:Sid.none ~ptr:Vptr.null ();
          incr reverted;
          revert_ns := !revert_ns +. (Stats.now stats0 -. r0);
          { Prow.sid = Sid.none; ptr = Vptr.null }
        end
        else v2
      in
      (* Scrub: verify v1. With a live v2 it is only the stale version;
         without one it was the row's current value. *)
      let v1 =
        if not scrub then v1
        else
          match Prow.check_slot t.pmem ~base ~slot:`V1 with
          | Prow.Slot_ok -> v1
          | Prow.Slot_stale_crc ->
              Prow.rewrite_slot_crc t.pmem stats0 ~base ~slot:`V1;
              incr crc_repaired;
              v1
          | Prow.Slot_corrupt ->
              let was_current = Sid.is_none v2.Prow.sid && not !suspect in
              (* A stale version whose value bytes were in flight at the
                 crash was being overwritten by the crashed epoch (half
                 or pool-slot reuse behind a torn-back header): drop it
                 silently — the turnover was legal and the current
                 version survives. Anything else is media damage. *)
              let turnover =
                (not was_current)
                && Prow.value_in_crash_turnover t.pmem ~base v1.Prow.ptr
              in
              if not turnover then
                report_damage ~table ~key
                  (if was_current then `Current_version else `Stale_version);
              if not was_current then incr stale_dropped;
              Prow.set_version t.pmem stats0 ~base ~slot:`V1 ~sid:Sid.none ~ptr:Vptr.null ();
              { Prow.sid = Sid.none; ptr = Vptr.null }
      in
      let row = Row.make ~key ~table ~home_core:0 ~prow_base:base ~created_epoch:0 in
      row.Row.pv1 <- { Row.psid = v1.Prow.sid; pptr = v1.Prow.ptr; fresh = false };
      row.Row.pv2 <- { Row.psid = v2.Prow.sid; pptr = v2.Prow.ptr; fresh = false };
      index_insert t stats0 ~table ~key row;
      if !suspect then suspects := (base, table, key, row) :: !suspects;
      (* Rebuild the GC list (section 5.5): two live versions whose
         recent one predates the crash and whose stale one needs the
         major collector. *)
      if
        (not (Sid.is_none v1.Prow.sid))
        && (not (Sid.is_none v2.Prow.sid))
        && Sid.epoch_of v2.Prow.sid <> crashed
        && (is_pool v1.Prow.ptr || not config.Config.minor_gc)
      then begin
        t.gc_list <- row :: t.gc_list;
        row.Row.in_gc_list <- true
      end
      end)
  end;
  let t_scan = Stats.now stats0 -. t1 -. !revert_ns in
  if Tracer.enabled t.tracer then begin
    Tracer.complete t.tracer ~core:0 ~name:"load-log" ~cat:"recovery" ~ts:t0 ~dur:t_load ();
    Tracer.complete t.tracer ~core:0 ~name:"revert" ~cat:"recovery"
      ~args:[ ("rows", Nv_obs.Jsonx.Int !reverted) ]
      ~ts:t1 ~dur:!revert_ns ();
    Tracer.complete t.tracer ~core:0 ~name:"scan" ~cat:"recovery"
      ~args:[ ("rows", Nv_obs.Jsonx.Int !scanned) ]
      ~ts:t1
      ~dur:(t_scan +. !revert_ns)
      ()
  end;
  rhook Rec_scan_done;
  (* Deterministic replay of the crashed epoch. *)
  let t2 = Stats.now stats0 in
  ignore (barrier t);
  let replayed =
    match log_entries with
    | None -> 0
    | Some entries ->
        let txns = Array.of_list (List.map rebuild entries) in
        let (module Cc) = cc_of_mode replay_mode in
        ignore (Cc.run ~replay:true t txns);
        Array.length txns
  in
  let t_replay = total_time_ns t -. t2 in
  (* Judge the deferred suspects. A genuine torn crashed-epoch write
     was just rewritten by the replay (deterministic inputs produce the
     same write set), so its slot now verifies; one that still fails
     was fabricated by media corruption — or belongs to an epoch whose
     log was dropped — and is reverted and reported. *)
  List.iter
    (fun (base, table, key, (row : Row.t)) ->
      match Prow.check_slot t.pmem ~base ~slot:`V2 with
      | Prow.Slot_ok -> ()
      | Prow.Slot_stale_crc ->
          Prow.rewrite_slot_crc t.pmem stats0 ~base ~slot:`V2;
          incr crc_repaired
      | Prow.Slot_corrupt ->
          report_damage ~table ~key `Current_version;
          Prow.set_version t.pmem stats0 ~base ~slot:`V2 ~sid:Sid.none ~ptr:Vptr.null ();
          row.Row.pv2 <- { Row.psid = Sid.none; pptr = Vptr.null; fresh = false })
    !suspects;
  if Tracer.enabled t.tracer then
    Tracer.complete t.tracer ~core:0 ~name:"replay" ~cat:"recovery"
      ~args:[ ("txns", Nv_obs.Jsonx.Int replayed) ]
      ~ts:t2 ~dur:t_replay ();
  rhook Rec_replay_done;
  let report =
    {
      Report.load_log_ns = t_load;
      scan_ns = t_scan;
      revert_ns = !revert_ns;
      replay_ns = t_replay;
      total_ns = total_time_ns t;
      scanned_rows = !scanned;
      reverted_rows = !reverted;
      replayed_txns = replayed;
      scrubbed = scrub;
      log_dropped = !log_dropped;
      crc_repaired = !crc_repaired;
      stale_dropped = !stale_dropped;
      alloc_salvaged;
      alloc_corrupt_entries = alloc_corrupt;
      counter_salvaged = !counter_salvaged;
      damage = List.rev !damage;
    }
  in
  (t, report)
