(** Crash and recovery (paper section 4.5; scrub/salvage per
    docs/FAULTS.md).

    Recovery reconstructs engine state from the NVMM bytes alone:
    reload allocator and counter checkpoints (keeping the crashed
    epoch's durable GC frees as a dedup set), read back the crashed
    epoch's input log, rebuild the DRAM index — eagerly by scanning
    allocated row slots and repairing the three torn version states of
    section 4.5, or lazily through the persistent index — and
    deterministically replay the crashed epoch through the CC strategy
    that produced it. *)

(** Tear the region to a crash image and return it; the engine state
    must not be used afterwards. Without [faults] the image is a random
    {e legal} one; with a {!Nv_nvmm.Pmem.fault_model} it additionally
    suffers torn lines, bit-rot and dead lines. Requires
    [config.crash_safe]. @raise Invalid_argument otherwise. *)
val crash :
  ?faults:Nv_nvmm.Pmem.fault_model -> Epoch.t -> rng:Nv_util.Rng.t -> Nv_nvmm.Pmem.t

(** Reconstruct engine state from a (crashed) region. [rebuild]
    deserializes a logged input record back into its transaction;
    [replay_mode] picks the {!Cc_intf.S} instance that replays the
    crashed epoch; [scrub] verifies every persistent checksum and
    salvages what fails. See {!Db.recover} for the full contract. *)
val recover :
  config:Config.t ->
  tables:Table.t list ->
  pmem:Nv_nvmm.Pmem.t ->
  rebuild:(bytes -> Txn.t) ->
  ?replay_mode:[ `Caracal | `Aria ] ->
  ?phase_hook:(Epoch.phase -> unit) ->
  ?recovery_hook:(Epoch.recovery_phase -> unit) ->
  ?scrub:bool ->
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  unit ->
  Epoch.t * Report.recovery_report
