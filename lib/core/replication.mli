(** Primary/replica replication by input-log shipping.

    Deterministic databases replicate by shipping each epoch's
    transaction inputs and serial order, not its effects (paper
    sections 1 and 2.2, after SLOG/Calvin): the replica replays the
    batch with the same deterministic concurrency control and reaches
    a bit-identical committed state. The epoch's input record is tiny
    compared to redo traffic, and no two-phase commit is needed.

    This module wires two {!Engine_intf.S} instances together: the
    primary executes a batch, the serialized inputs are appended to a
    ship queue, and the replica consumes them — synchronously ([sync])
    or with a configurable apply lag. Failover promotes the replica
    after draining the queue; epochs whose inputs were shipped are
    never lost, and the promoted database continues from the same
    committed state the primary had. *)

type t

val create :
  config:Config.t ->
  tables:Table.t list ->
  rebuild:(bytes -> Txn.t) ->
  unit ->
  t
(** A Db-backed (serial CC) pair. Primary and replica share the
    configuration and schema; [rebuild] deserializes a logged input
    back into its transaction (the same function {!Db.recover} uses). *)

val create_packed :
  mk:(unit -> Engine_intf.packed) ->
  tables:Table.t list ->
  rebuild:(bytes -> Txn.t) ->
  unit ->
  t
(** Engine-generic pair: [mk] builds each side (called twice; both
    sides must be configured identically or replay diverges). *)

val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit
(** Load both sides (initial state is shipped out of band, as when
    seeding a new replica from a checkpoint). *)

val submit : t -> Txn.t array -> Report.epoch_stats option * Txn.t array
(** Execute one batch on the primary and enqueue its input record for
    the replica. Returns the primary's epoch report and deferred
    transactions ({!Engine_intf.S.run_batch}); deferred transactions
    ship again when resubmitted, and the replica — running the same
    deterministic engine — defers them identically. *)

val replica_lag : t -> int
(** Shipped-but-unapplied epochs. *)

val sync : t -> ?upto:int -> unit -> unit
(** Apply up to [upto] queued epochs on the replica (default: all). *)

val shipped_bytes : t -> int
(** Total input-record bytes shipped so far. *)

val primary : t -> Engine_intf.packed
val replica : t -> Engine_intf.packed
(** Direct access (e.g. serving stale reads from the replica). *)

val primary_db : t -> Db.t
val replica_db : t -> Db.t
(** The raw NVCaracal handles of a Db-backed pair ({!create}).
    @raise Invalid_argument for generic pairs. *)

val failover : t -> Engine_intf.packed
(** Drain the queue and promote the replica: returns a database equal
    to the primary's last submitted state, ready to execute epochs.
    Every shipped-but-unapplied epoch is applied before promotion, so
    failover racing an in-flight shipment never loses an epoch. The
    pair must not be used afterwards. *)

val failover_db : t -> Db.t
(** {!failover} for a Db-backed pair, unwrapped. *)

val states_equal : t -> bool
(** True when primary and the fully-synced replica agree on every
    table's committed contents (testing/verification; drains the
    queue). *)

(** A replicated pair behind the engine seam: [run_batch] is
    {!submit}, reads come from the primary. [crash]/[recover] raise
    [Invalid_argument] — recovery is {!failover}. *)

type engine_config = { e_config : Config.t; e_rebuild : bytes -> Txn.t }

module Engine : Engine_intf.S with type t = t and type config = engine_config
