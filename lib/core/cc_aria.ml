(* Aria-style concurrency control (section 7 future work, after Lu et
   al.): snapshot execution + deterministic reservations, no declared
   write sets. Moved verbatim out of the Db monolith; reuses the same
   dual-version final-write path as the serial strategy via {!Epoch}. *)

module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Prow = Nv_storage.Prow
module Slab = Nv_storage.Slab_pool
module Meta = Nv_storage.Meta_region
module OIdx = Nv_index.Ordered_index
module BIdx = Nv_index.Btree_index
module Tracer = Nv_obs.Tracer

open Epoch

let name = "aria"

exception Found of (int64 * bytes)

let run ?(replay = false) t txns =
  let cfg = t.config in
  begin_epoch t;
  let n = Array.length txns in
  let t_start = barrier t in
  log_inputs t ~replay txns;
  let t_log = barrier t in
  (* Initialization housekeeping is unchanged: collect the previous
     epoch's stale versions, evict cold cached versions. *)
  phase_span t "major-gc" (fun () ->
      Gc.major_gc t;
      hook t Gc_done);
  phase_span t "evict" (fun () ->
      if Config.caching_enabled cfg then
        t.m_evicted <-
          Cache.evict t.cache (stats_of t (t.epoch mod cfg.Config.cores)) ~current_epoch:t.epoch
            ~k:cfg.Config.cache_k);
  let t_gc = barrier t in
  (* Phase 1: every transaction executes against the epoch-start
     snapshot; writes are buffered privately; read sets are recorded. *)
  let buffers = Array.init n (fun _ -> Hashtbl.create 8) in
  let read_sets = Array.init n (fun _ -> Hashtbl.create 8) in
  let user_aborted = Array.make n false in
  let exec_one ?wait_preds i =
    let core = core_of t i in
    let stats = stats_of t core in
    let sid = Sid.make ~epoch:t.epoch ~seq:i in
    let buffer = buffers.(i) and rset = read_sets.(i) in
    set_cur_seq i;
    let snapshot_read ~table ~key =
      match find_row t stats ~table ~key with
      | None -> None
      | Some row -> committed_read t stats row ~fill_cache:true
    in
    let read ~table ~key =
      Stats.compute stats ();
      match Hashtbl.find_opt buffer (table, key) with
      | Some v -> Some v (* read-your-own-buffered-writes *)
      | None ->
          Hashtbl.replace rset (table, key) ();
          snapshot_read ~table ~key
    in
    let write ~table ~key data =
      Stats.compute stats ();
      Stats.dram_write stats
        ~lines:(Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length data))
        ();
      t.m_version_writes.(core) <- t.m_version_writes.(core) + 1;
      Hashtbl.replace buffer (table, key) data
    in
    let delete ~table:_ ~key:_ = invalid_arg "Db.run_epoch_aria: deletes are not supported" in
    let ordered_fold table ~lo ~hi ~init ~f =
      match t.indexes.(table) with
      | Ord o -> OIdx.fold_range o stats ~lo ~hi ~init ~f
      | Bt b -> BIdx.fold_range b stats ~lo ~hi ~init ~f
      | Hash _ -> invalid_arg "Db.run_epoch_aria: range operation on a hash-indexed table"
    in
    let range_read ~table ~lo ~hi =
      List.rev
        (ordered_fold table ~lo ~hi ~init:[] ~f:(fun acc key row ->
             Hashtbl.replace rset (table, key) ();
             match committed_read t stats row ~fill_cache:true with
             | Some data -> (key, data) :: acc
             | None -> acc))
    in
    let first ~table ~lo ~hi =
      try
        ordered_fold table ~lo ~hi ~init:() ~f:(fun () key row ->
            Hashtbl.replace rset (table, key) ();
            match committed_read t stats row ~fill_cache:true with
            | Some data -> raise (Found (key, data))
            | None -> ());
        None
      with Found kv -> Some kv
    in
    let min_above ~table bound = first ~table ~lo:bound ~hi:Int64.max_int in
    let max_below ~table bound =
      (* Committed snapshot, so index max_below suffices. *)
      match t.indexes.(table) with
      | Ord o -> (
          match OIdx.max_below o stats bound with
          | Some (key, row) ->
              Hashtbl.replace rset (table, key) ();
              Option.map (fun d -> (key, d)) (committed_read t stats row ~fill_cache:true)
          | None -> None)
      | Bt b -> (
          match BIdx.max_below b stats bound with
          | Some (key, row) ->
              Hashtbl.replace rset (table, key) ();
              Option.map (fun d -> (key, d)) (committed_read t stats row ~fill_cache:true)
          | None -> None)
      | Hash _ -> invalid_arg "Db.run_epoch_aria: range operation on a hash-indexed table"
    in
    let ctx =
      {
        Txn.Ctx.sid;
        core;
        read;
        write;
        delete;
        range_read;
        max_below;
        min_above;
        abort = (fun () -> raise Txn.Aborted);
        compute = (fun ~ops -> Stats.compute stats ~ops ());
        counter_next =
          (fun ~idx ->
            Stats.compute stats ();
            (* Shared-array draws serialize in serial position order:
               under wide execution, wait for every earlier transaction
               to finish first. *)
            (match wait_preds with Some wait -> wait () | None -> ());
            let v = t.counters.(idx) in
            t.counters.(idx) <- Int64.add v 1L;
            v);
        notes = Hashtbl.create 4;
      }
    in
    (match txns.(i).Txn.body ctx with
    | () -> ()
    | exception Txn.Aborted ->
        user_aborted.(i) <- true;
        Hashtbl.reset buffer);
    hook t (Exec_txn i);
    set_cur_seq (-1)
  in
  (* Snapshot execution has no cross-transaction dependencies: reads hit
     the epoch-start snapshot, writes buffer privately, and nothing here
     stores to pmem — so there is no row-alignment concern. The effect
     journal carries the order-sensitive outputs (cache fills, deferred
     hook deliveries) to the join, and counter draws serialize through
     the stripes' progress atomics; only the structural gates below
     force the serial loop. *)
  let wide_d =
    let d = Dpool.stripes (pool t) ~cores:cfg.Config.cores in
    let gate =
      if n <= 1 then Some R_small_batch
      else if d <= 1 then Some R_width
      else if Dpool.in_task () then Some R_nested
      else if match t.phase_hook with Some h -> not h.hk_defer | None -> false then
        Some R_phase_hook
      else if t.unmirrored_rows then Some R_unmirrored_rows
      else None
    in
    match gate with
    | None -> d
    | Some r ->
        note_serial_reason t r;
        1
  in
  phase_span t "execute" (fun () ->
      Effects.begin_exec t ~d:wide_d;
      (try
         if wide_d = 1 then
           for i = 0 to n - 1 do
             exec_one i
           done
         else begin
           let progress = Array.init wide_d (fun _ -> Atomic.make (-1)) in
           let await s bound =
             let spins = ref 0 in
             while Atomic.get progress.(s) < bound do
               Dpool.backoff !spins;
               incr spins
             done
           in
           ignore
             (Dpool.run (pool t) ~n:wide_d (fun s ->
                  let cur = ref s in
                  let wait_preds () =
                    let i = !cur in
                    for p = 0 to wide_d - 1 do
                      if p <> s && i - 1 >= p then
                        await p (i - 1 - ((i - 1 - p) mod wide_d))
                    done
                  in
                  try
                    while !cur < n do
                      exec_one ~wait_preds !cur;
                      Atomic.set progress.(s) !cur;
                      cur := !cur + wide_d
                    done
                  with e ->
                    (* Release any stripe stuck in a counter wait before
                       re-raising (Dpool re-raises after the join). *)
                    let bt = Printexc.get_raw_backtrace () in
                    Atomic.set progress.(s) (n + wide_d);
                    Printexc.raise_with_backtrace e bt))
         end
       with e ->
         Effects.abort t;
         raise e);
      Effects.drain t);
  let t_exec = barrier t in
  (* Phase 2: Aria's deterministic reservations. Each key records the
     smallest SID that wrote it; a transaction aborts (for retry) if
     any key it wrote or read carries a smaller reservation. *)
  let reserve_apply_begins =
    if Tracer.enabled t.tracer then Array.map Stats.now t.core_stats else [||]
  in
  let reservations : (int * int64, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i buffer ->
      if not user_aborted.(i) then
        Hashtbl.iter
          (fun key _ ->
            Stats.compute (stats_of t (core_of t i)) ();
            match Hashtbl.find_opt reservations key with
            | Some j when j <= i -> ()
            | Some _ | None -> Hashtbl.replace reservations key i)
          buffer)
    buffers;
  let deferred = ref [] in
  let outcomes = Array.make n `Committed in
  let decisions : ((int * int64) * int * bytes) list ref = ref [] in
  for i = 0 to n - 1 do
    let core = core_of t i in
    let stats = stats_of t core in
    if user_aborted.(i) then begin
      outcomes.(i) <- `Aborted;
      t.m_aborted.(core) <- t.m_aborted.(core) + 1;
      t.total_aborted.(core) <- t.total_aborted.(core) + 1
    end
    else begin
      let reserved_earlier key =
        match Hashtbl.find_opt reservations key with Some j -> j < i | None -> false
      in
      let conflict =
        Hashtbl.fold (fun key _ acc -> acc || reserved_earlier key) buffers.(i) false
        || Hashtbl.fold (fun key () acc -> acc || reserved_earlier key) read_sets.(i) false
      in
      Stats.compute stats ~ops:(1 + Hashtbl.length read_sets.(i)) ();
      if conflict then begin
        outcomes.(i) <- `Deferred;
        deferred := txns.(i) :: !deferred;
        t.m_aborted.(core) <- t.m_aborted.(core) + 1
      end
      else begin
        t.committed.(core) <- t.committed.(core) + 1;
        Hashtbl.iter (fun key data -> decisions := (key, i, data) :: !decisions) buffers.(i)
      end
    end
  done;
  (* Apply the surviving writes through the dual-version NVMM path, in
     deterministic key order (one persistent write per row). *)
  let decisions = List.sort compare !decisions in
  List.iter
    (fun (((table, key) : int * int64), i, data) ->
      let core = core_of t i in
      let stats = stats_of t core in
      let sid = Sid.make ~epoch:t.epoch ~seq:i in
      let row =
        match find_row t stats ~table ~key with
        | Some row -> row
        | None ->
            (* Writing a missing key inserts it. *)
            let base = Slab.alloc t.row_pool stats ~core in
            Prow.init t.pmem stats ~base ~key ~table;
            let row = Row.make ~key ~table ~home_core:core ~prow_base:base ~created_epoch:t.epoch in
            index_insert t stats ~table ~key row;
            if t.pindex <> None then Hashtbl.replace t.pix_delta (table, key) (`Ins base);
            row
      in
      do_prow_final_write t stats ~core row ~sid ~data;
      if Config.caching_enabled cfg then Cache.insert t.cache stats row ~data ~epoch:t.epoch;
      t.touched <- row :: t.touched)
    decisions;
  hook t Exec_done;
  if Tracer.enabled t.tracer then
    Array.iteri
      (fun core s ->
        Tracer.complete t.tracer ~core ~name:"reserve+apply" ~cat:"epoch"
          ~ts:reserve_apply_begins.(core)
          ~dur:(Stats.now s -. reserve_apply_begins.(core))
          ())
      t.core_stats;
  let t_apply = barrier t in
  (* Checkpoint, exactly as in the Caracal mode. *)
  let stats0 = stats_of t 0 in
  checkpoint_allocators t;
  phase_span t "epoch-persist" (fun () ->
      Meta.persist_epoch t.meta stats0 ~epoch:t.epoch;
      t.last_outcomes <- outcomes;
      hook t Checkpointed);
  List.iter
    (fun (row : Row.t) ->
      if row.Row.pv2.Row.fresh then row.Row.pv2 <- { row.Row.pv2 with Row.fresh = false };
      if row.Row.pv1.Row.fresh then row.Row.pv1 <- { row.Row.pv1 with Row.fresh = false })
    t.touched;
  t.touched <- [];
  if replay && not t.retain_gc_dedup then t.gc_dedup <- Hashtbl.create 16;
  let t_end = barrier t in
  let report =
    epoch_report t ~txns:n ~replay ~duration:(t_end -. t_start)
      ~phases:
        [
          ("log", t_log -. t_start);
          ("gc+evict", t_gc -. t_log);
          ("execute", t_exec -. t_gc);
          ("reserve+apply", t_apply -. t_exec);
          ("checkpoint", t_end -. t_apply);
        ]
  in
  (report, Array.of_list (List.rev !deferred))
