(** Measurement records produced by the engine.

    [epoch_stats] is returned by every epoch run; [mem_report] breaks
    down DRAM/NVMM consumption (Figure 8); [recovery_report] breaks
    down recovery time (Figure 11). *)

type epoch_stats = {
  epoch : int;
  txns : int;
  aborted : int;
  version_writes : int;  (** all version-value writes this epoch *)
  persistent_writes : int;  (** final writes that reached NVMM *)
  transient_only_writes : int;
      (** version writes absorbed by DRAM — the paper's "% transient"
          metric is [transient_only_writes / version_writes] *)
  minor_gc : int;
  major_gc : int;
  evicted : int;
  cache_hits : int;
  cache_misses : int;
  log_bytes : int;
  duration_ns : float;  (** simulated wall time of the epoch *)
  phases : (string * float) list;
      (** per-phase simulated durations, in pipeline order (log /
          insert / gc+evict / append / execute / checkpoint) *)
}

val zero_epoch_stats : epoch_stats
(** Identity element of {!merge_epoch_stats}. *)

val merge_epoch_stats : epoch_stats -> epoch_stats -> epoch_stats
(** Combine two shards of epoch statistics: counters add, [duration_ns]
    takes the slower shard (phases run between shared barriers),
    [epoch]/[txns] take the max (identical in every non-zero shard),
    and [phases] are summed by name keeping first-appearance order.
    Associative with identity {!zero_epoch_stats}, so per-core shards
    may be folded in any grouping — the engine folds them in core
    order. *)

type mem_report = {
  nvmm_rows : int;  (** persistent row bytes in use *)
  nvmm_values : int;  (** persistent value-pool bytes in use *)
  nvmm_log : int;  (** input-log high-water mark, bytes *)
  nvmm_freelists : int;  (** ring-buffer and allocator metadata bytes *)
  dram_index : int;
  dram_transient : int;  (** transient-pool high-water mark *)
  dram_cache : int;
}

type damage_kind =
  [ `Header  (** row identity header failed its checksum *)
  | `Current_version  (** a stable (pre-crash) version failed; data lost *)
  | `Stale_version  (** an old version failed; dropped, current survives *)
  | `Counter  (** a persistent counter slot failed both parities *)
  | `Log  (** the committed input log failed; crashed epoch dropped *)
  | `Allocator  (** allocator metadata failed; salvaged conservatively *) ]

type damage = {
  d_table : int;  (** -1 when the loss is not attributable to a row *)
  d_key : int64;
  d_kind : damage_kind;
}

type recovery_report = {
  load_log_ns : float;
  scan_ns : float;
  revert_ns : float;
  replay_ns : float;
  total_ns : float;
  scanned_rows : int;
  reverted_rows : int;
  replayed_txns : int;
  scrubbed : bool;  (** eager verification scan was forced *)
  log_dropped : bool;  (** committed log failed checksums; epoch not replayed *)
  crc_repaired : int;  (** stale slot checksums rewritten in place *)
  stale_dropped : int;  (** corrupt stale versions dropped (current survives) *)
  alloc_salvaged : int;  (** allocator metadata words rebuilt from fallbacks *)
  alloc_corrupt_entries : int;  (** freelist ring entries skipped *)
  counter_salvaged : int;  (** counters recovered from the older parity slot *)
  damage : damage list;  (** unrecoverable losses, reported loudly *)
}

val has_salvage : recovery_report -> bool
(** True when any corruption was repaired, salvaged, or reported —
    i.e. the recovery was not a clean crash-image recovery. *)

val damage_count : table:int -> recovery_report -> int
(** Number of damage entries attributed to [table]. *)

val pp_damage : Format.formatter -> damage -> unit

val pp_epoch_stats : Format.formatter -> epoch_stats -> unit
val pp_phases : Format.formatter -> (string * float) list -> unit
val pp_mem_report : Format.formatter -> mem_report -> unit
val pp_recovery_report : Format.formatter -> recovery_report -> unit

val total_nvmm : mem_report -> int
val total_dram : mem_report -> int

val transient_fraction : epoch_stats -> float
(** Fraction of version writes that stayed in DRAM; [nan] when no
    writes happened. *)
