(** DRAM cache of persistent row values with epoch-based LRU eviction
    (paper sections 4.2 and 5.2).

    Each cached version carries the epoch of its last access and lives
    on the eviction list of that epoch. During the initialization phase
    of epoch [E] the engine processes the list of epoch [E - K - 1]:
    entries whose last access really is that old are evicted; entries
    that were touched since simply migrate to their newer epoch's list.
    Because eviction runs while no transactions execute, it needs no
    synchronization with row accesses.

    The cache is capacity-bounded in entries (Table 4); an insertion
    into a full cache is refused — the entry stays uncached until
    eviction makes room. *)

type t

val create : max_entries:int -> t

val admits : t -> Row.t -> bool
(** The admission rule, shared by {!insert} and by anything that must
    predict it: an insert lands (and charges DRAM) iff the row is
    already cached or the cache has headroom. Keeping the predicate in
    one place means a plan and the loop it predicts cannot diverge. *)

val insert : t -> Nv_nvmm.Stats.t -> Row.t -> data:bytes -> epoch:int -> unit
(** Create (or refresh) the cached version of a row with [data] when
    {!admits} allows it; a full cache refuses new rows silently. *)

val touch : t -> Row.t -> epoch:int -> unit
(** Record an access: bumps the cached version's last-access epoch. *)

val drop : t -> Nv_nvmm.Stats.t -> Row.t -> unit
(** Delete a row's cached version (append step consumes it; deletes
    discard it). No-op when uncached. *)

val evict : t -> Nv_nvmm.Stats.t -> current_epoch:int -> k:int -> int
(** Run epoch-based eviction for [current_epoch]; returns the number of
    entries evicted. *)

val entries : t -> int
val data_bytes : t -> int
val dram_bytes : t -> int
(** Data plus bookkeeping overhead (Figure 8). *)

val hits : t -> int
val misses : t -> int
val note_miss : t -> unit
(** Engine reporting hooks: [touch] counts a hit automatically. *)
