(* The public façade of the NVCaracal engine. The implementation lives
   in the layered modules: {!Epoch} (state + shared substrate),
   {!Cc_serial} / {!Cc_aria} (the two concurrency-control strategies),
   {!Gc} (major collection) and {!Recovery} (crash + recover). This
   module re-exports the stable surface and packages both CC modes as
   {!Engine_intf.S} instances. *)

type t = Epoch.t

type phase = Epoch.phase =
  | Log_done
  | Insert_done
  | Gc_pass1_done
  | Gc_done
  | Append_done
  | Exec_txn of int
  | Exec_done
  | Checkpointed

type recovery_phase = Epoch.recovery_phase =
  | Rec_meta_recovered
  | Rec_log_loaded
  | Rec_scan_done
  | Rec_replay_done

let create = Epoch.create
let config = Epoch.config
let tables = Epoch.tables
let pmem = Epoch.pmem
let epoch = Epoch.epoch
let bulk_load = Epoch.bulk_load

let run_epoch t txns =
  if not t.Epoch.loaded then invalid_arg "Db.run_epoch: call bulk_load first";
  fst (Cc_serial.run t txns)

let run_epoch_aria t txns =
  if not t.Epoch.loaded then invalid_arg "Db.run_epoch_aria: call bulk_load first";
  Cc_aria.run t txns

let last_epoch_outcomes = Epoch.last_epoch_outcomes
let last_batch_outcomes = Epoch.last_batch_outcomes
let advance_core = Epoch.advance_core
let snapshot_read = Epoch.snapshot_read
let read_committed = Epoch.read_committed
let iter_committed = Epoch.iter_committed
let mem_report = Epoch.mem_report
let committed_txns = Epoch.committed_txns
let wide_execs = Epoch.wide_execs
let aborted_txns = Epoch.aborted_txns
let total_time_ns = Epoch.total_time_ns
let counter_value = Epoch.counter_value
let debug_row = Epoch.debug_row
let counters_total = Epoch.counters_total
let set_observability = Epoch.set_observability
let set_phase_hook = Epoch.set_phase_hook
let serial_reasons = Epoch.serial_reasons
let crash = Recovery.crash
let recover = Recovery.recover

(* ------------------------------------------------------------------ *)
(* Engine instances                                                    *)

(* Shared by both CC modes; only [name] and [run_batch] differ. *)
module Engine_common = struct
  type nonrec t = t
  type config = Config.t

  let create = create
  let bulk_load = bulk_load
  let read_committed = read_committed
  let iter_committed = iter_committed
  let committed_txns = committed_txns
  let aborted_txns = aborted_txns
  let total_time_ns = total_time_ns

  let introspect t =
    {
      Engine_intf.wide_execs = wide_execs t;
      serial_reasons = serial_reasons t;
      state_digest =
        Engine_intf.digest_committed
          ~tables:(Array.to_list (tables t))
          ~iter:(fun ~table f -> iter_committed t ~table f);
    }

  let mem_report = mem_report
  let counters_total = counters_total
  let set_observability = set_observability
  let last_batch_outcomes = last_batch_outcomes
  let pmem = pmem
  let crash = crash
end

module Serial_engine : Engine_intf.S with type t = t and type config = Config.t = struct
  include Engine_common

  let name = "nvcaracal"
  let run_batch t txns = (Some (run_epoch t txns), [||])

  let recover ~config ~tables ~pmem ~rebuild () =
    fst (recover ~config ~tables ~pmem ~rebuild ~replay_mode:`Caracal ())
end

module Aria_engine : Engine_intf.S with type t = t and type config = Config.t = struct
  include Engine_common

  let name = "aria"

  let run_batch t txns =
    let stats, deferred = run_epoch_aria t txns in
    (Some stats, deferred)

  let recover ~config ~tables ~pmem ~rebuild () =
    fst (recover ~config ~tables ~pmem ~rebuild ~replay_mode:`Aria ())
end
