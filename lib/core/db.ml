module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Layout = Nv_nvmm.Layout
module TP = Nv_storage.Transient_pool
module Prow = Nv_storage.Prow
module Vptr = Nv_storage.Vptr
module Slab = Nv_storage.Slab_pool
module VPools = Nv_storage.Value_pools
module PIdx = Nv_storage.Pindex
module Log = Nv_storage.Log_region
module Meta = Nv_storage.Meta_region
module HIdx = Nv_index.Hash_index
module OIdx = Nv_index.Ordered_index
module BIdx = Nv_index.Btree_index
module VA = Version_array
module Tracer = Nv_obs.Tracer
module Metrics = Nv_obs.Metrics

type index = Hash of Row.t HIdx.t | Ord of Row.t OIdx.t | Bt of Row.t BIdx.t

(* Work declared for one transaction on one row: the registry built by
   the initialization phase, consumed by the execution phase. *)
type entry = {
  e_op : [ `Insert | `Update | `Delete ];
  e_table : int;
  e_key : int64;
  e_row : Row.t;
  e_slot : VA.slot;
}

type phase =
  | Log_done
  | Insert_done
  | Gc_pass1_done
  | Gc_done
  | Append_done
  | Exec_txn of int
  | Exec_done
  | Checkpointed

(* Recovery milestones, mirroring [phase] for the epoch pipeline: a
   [recovery_hook] is called at each one, and may raise to simulate a
   crash in the middle of recovery (every recovery-time write is
   idempotent, so recovering again from the resulting image must
   converge to the same state). *)
type recovery_phase =
  | Rec_meta_recovered  (* allocator and counter state rebuilt *)
  | Rec_log_loaded  (* input log read back and verified *)
  | Rec_scan_done  (* index rebuilt; repairs and reverts persisted *)
  | Rec_replay_done  (* crashed epoch re-executed (or dropped) *)

type t = {
  config : Config.t;
  tables : Table.t array;
  pmem : Pmem.t;
  core_stats : Stats.t array;
  scratch : Stats.t; (* uncharged inspection accesses *)
  row_pool : Slab.t;
  value_pool : VPools.t;
  pindex : PIdx.t option;
  pix_delta : (int * int64, [ `Ins of int | `Del ]) Hashtbl.t;
      (* net index changes of the current epoch, batched to NVMM at
         epoch end when the persistent index is enabled *)
  log : Log.t;
  meta : Meta.t;
  indexes : index array;
  tpool : TP.t;
  cache : Cache.t;
  counters : int64 array;
  mutable epoch : int; (* epoch currently being processed (= last committed between epochs) *)
  mutable gc_list : Row.t list;
  mutable gc_dedup : (int64, unit) Hashtbl.t;
  mutable touched : Row.t list; (* rows holding a version array this epoch *)
  mutable retain_gc_dedup : bool;
      (* lazy (persistent-index) recovery: stale versions are collected
         on first touch, possibly many epochs later, so the crashed
         epoch's durable-GC dedup set must outlive the replay *)
  mutable loaded : bool;
  (* Cumulative measurements. *)
  mutable committed : int;
  mutable total_aborted : int;
  mutable log_high_water : int;
  (* Per-epoch measurements (reset each epoch). *)
  mutable m_aborted : int;
  mutable m_version_writes : int;
  mutable m_persistent_writes : int;
  mutable m_minor_gc : int;
  mutable m_major_gc : int;
  mutable m_evicted : int;
  mutable m_cache_hits0 : int;
  mutable m_cache_misses0 : int;
  mutable last_outcomes : bool array; (* per-txn aborted flags, last epoch *)
  mutable phase_hook : (phase -> unit) option;
  (* Observability (no-op sinks unless installed). *)
  mutable tracer : Tracer.t;
  mutable metrics : Metrics.t;
  mutable m_access0 : Stats.counters; (* access-counter totals at epoch start *)
}

let config t = t.config
let tables t = t.tables
let pmem t = t.pmem

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let build_layout (cfg : Config.t) =
  let b = Layout.builder () in
  let meta_r = Meta.reserve b ~n_counters:cfg.n_counters in
  let log_r = Log.reserve b ~capacity_bytes:cfg.log_capacity in
  let row_spec =
    Slab.reserve b ~name:"rows" ~cores:cfg.cores ~slots_per_core:cfg.rows_per_core
      ~slot_size:cfg.row_size ~freelist_capacity:cfg.freelist_capacity
  in
  let classes =
    match cfg.value_size_classes with [] -> [ cfg.value_slot_size ] | cs -> cs
  in
  let value_spec =
    VPools.reserve b ~cores:cfg.cores ~slots_per_core:cfg.values_per_core ~classes
      ~freelist_capacity:cfg.freelist_capacity
  in
  let pindex_r =
    if cfg.persistent_index then begin
      let capacity =
        if cfg.pindex_capacity > 0 then cfg.pindex_capacity
        else 2 * cfg.cores * cfg.rows_per_core
      in
      Some (PIdx.reserve b ~capacity)
    end
    else None
  in
  (Layout.total_size b, meta_r, log_r, row_spec, value_spec, pindex_r)

let attach (cfg : Config.t) tables pmem =
  let tables = Array.of_list tables in
  Array.iteri (fun i (tb : Table.t) -> assert (tb.Table.id = i)) tables;
  let _, meta_r, log_r, row_spec, value_spec, pindex_r = build_layout cfg in
  {
    config = cfg;
    tables;
    pmem;
    core_stats = Array.init cfg.cores (fun _ -> Stats.create cfg.spec);
    scratch = Stats.create cfg.spec;
    row_pool = Slab.attach pmem row_spec;
    value_pool = VPools.attach pmem value_spec;
    pindex = Option.map (PIdx.attach pmem) pindex_r;
    pix_delta = Hashtbl.create 256;
    log = Log.attach pmem log_r;
    meta = Meta.attach pmem meta_r ~n_counters:cfg.n_counters;
    indexes =
      Array.map
        (fun (tb : Table.t) ->
          match (tb.Table.index, cfg.Config.ordered_index) with
          | Table.Hash, _ -> Hash (HIdx.create ())
          | Table.Ordered, Config.Avl -> Ord (OIdx.create ())
          | Table.Ordered, Config.Btree -> Bt (BIdx.create ()))
        tables;
    tpool = TP.create ~cores:cfg.cores ~initial_capacity:(1 lsl 16);
    cache = Cache.create ~max_entries:cfg.cache_entries_max;
    counters = Array.make cfg.n_counters 0L;
    epoch = 0;
    gc_list = [];
    gc_dedup = Hashtbl.create 16;
    touched = [];
    retain_gc_dedup = false;
    loaded = false;
    committed = 0;
    total_aborted = 0;
    log_high_water = 0;
    m_aborted = 0;
    m_version_writes = 0;
    m_persistent_writes = 0;
    m_minor_gc = 0;
    m_major_gc = 0;
    m_evicted = 0;
    m_cache_hits0 = 0;
    m_cache_misses0 = 0;
    last_outcomes = [||];
    phase_hook = None;
    tracer = Tracer.null;
    metrics = Metrics.null;
    m_access0 = Stats.zero_counters;
  }

let create ~config ~tables () =
  let size, _, _, _, _, _ = build_layout config in
  let mode = if config.Config.crash_safe then Pmem.Crash_safe else Pmem.Fast in
  attach config tables (Pmem.create ~mode ~size ())

let epoch t = t.epoch
let set_phase_hook t hook = t.phase_hook <- Some hook
let hook t phase = match t.phase_hook with Some f -> f phase | None -> ()

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let counters_total t =
  Array.fold_left
    (fun acc s -> Stats.merge_counters acc (Stats.counters s))
    Stats.zero_counters t.core_stats

let set_observability ?tracer ?metrics ?name t =
  (match tracer with
  | Some tr ->
      t.tracer <- tr;
      Tracer.set_clock tr (fun core ->
          Stats.now t.core_stats.(core mod Array.length t.core_stats));
      Tracer.open_process tr ~name:(Option.value name ~default:"nvcaracal")
  | None -> ());
  match metrics with
  | Some m ->
      t.metrics <- m;
      if Metrics.enabled m then t.m_access0 <- counters_total t
  | None -> ()

(* Record one epoch-phase span per core: each begins at the core's
   clock when the phase starts (cores are aligned by the preceding
   barrier) and ends at that core's clock when the phase's work is done
   — so per-core skew inside a phase is visible in the trace. If [f]
   raises (crash injection), no span is recorded. *)
let phase_span t name f =
  let tr = t.tracer in
  if not (Tracer.enabled tr) then f ()
  else begin
    let begins = Array.map Stats.now t.core_stats in
    let r = f () in
    Array.iteri
      (fun core s ->
        Tracer.complete tr ~core ~name ~cat:"epoch" ~ts:begins.(core)
          ~dur:(Stats.now s -. begins.(core)) ())
      t.core_stats;
    r
  end

(* Per-epoch metrics snapshot: engine counters come straight from the
   epoch report (so JSONL records reconcile exactly with what the
   harness prints); access counters are the per-epoch delta of the
   merged per-core {!Stats}; allocator/cache levels are gauges. *)
let publish_epoch_metrics t (r : Report.epoch_stats) =
  let m = t.metrics in
  if Metrics.enabled m then begin
    let c name v = Metrics.set_counter (Metrics.counter m name) v in
    let g name v = Metrics.set_gauge (Metrics.gauge m name) v in
    c "txns" r.Report.txns;
    c "committed" (r.Report.txns - r.Report.aborted);
    c "aborted" r.Report.aborted;
    c "version_writes" r.Report.version_writes;
    c "persistent_writes" r.Report.persistent_writes;
    c "transient_only_writes" r.Report.transient_only_writes;
    c "minor_gc" r.Report.minor_gc;
    c "major_gc" r.Report.major_gc;
    c "evicted" r.Report.evicted;
    c "cache_hits" r.Report.cache_hits;
    c "cache_misses" r.Report.cache_misses;
    c "log_bytes" r.Report.log_bytes;
    g "duration_ns" r.Report.duration_ns;
    let tot = counters_total t in
    let d = t.m_access0 in
    c "dram_reads" (tot.Stats.dram_reads - d.Stats.dram_reads);
    c "dram_writes" (tot.Stats.dram_writes - d.Stats.dram_writes);
    c "nvmm_block_reads" (tot.Stats.nvmm_block_reads - d.Stats.nvmm_block_reads);
    c "nvmm_block_writes" (tot.Stats.nvmm_block_writes - d.Stats.nvmm_block_writes);
    c "nvmm_seq_bytes" (tot.Stats.nvmm_seq_bytes - d.Stats.nvmm_seq_bytes);
    c "pmem_flushes" (tot.Stats.flushes - d.Stats.flushes);
    c "pmem_fences" (tot.Stats.fences - d.Stats.fences);
    c "compute_ops" (tot.Stats.compute_ops - d.Stats.compute_ops);
    t.m_access0 <- tot;
    g "rows_allocated" (float_of_int (Slab.allocated_slots t.row_pool));
    g "value_bytes_allocated" (float_of_int (VPools.allocated_bytes t.value_pool));
    g "transient_peak_bytes" (float_of_int (TP.peak_bytes t.tpool));
    g "cache_entries" (float_of_int (Cache.entries t.cache));
    g "cache_bytes" (float_of_int (Cache.data_bytes t.cache));
    g "log_high_water_bytes" (float_of_int t.log_high_water);
    (* Fault gauges only exist once faults have been injected, so
       fault-free runs emit byte-identical metric records. *)
    if Pmem.faults_injected t.pmem then begin
      let fr = Pmem.faults t.pmem in
      c "media_fault_reads" (counters_total t).Stats.media_faults;
      g "faults_torn_lines" (float_of_int fr.Pmem.torn_lines);
      g "faults_rotted_lines" (float_of_int fr.Pmem.rotted_lines);
      g "faults_flipped_bits" (float_of_int fr.Pmem.flipped_bits);
      g "faults_dead_lines" (float_of_int fr.Pmem.dead_lines)
    end;
    ignore (Metrics.snapshot m ~epoch:t.epoch)
  end

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let core_of t seq = seq mod t.config.Config.cores
let stats_of t core = t.core_stats.(core)

let barrier t =
  let m = Array.fold_left (fun acc s -> Float.max acc (Stats.now s)) 0.0 t.core_stats in
  Array.iter (fun s -> Stats.set_now s m) t.core_stats;
  m

let find_row t stats ~table ~key =
  match t.indexes.(table) with
  | Hash h -> HIdx.find h stats key
  | Ord o -> OIdx.find o stats key
  | Bt b -> BIdx.find b stats key

let index_insert t stats ~table ~key row =
  match t.indexes.(table) with
  | Hash h -> HIdx.insert h stats key row
  | Ord o -> OIdx.insert o stats key row
  | Bt b -> BIdx.insert b stats key row

let index_remove t stats ~table ~key =
  match t.indexes.(table) with
  | Hash h -> HIdx.remove h stats key
  | Ord o -> OIdx.remove o stats key
  | Bt b -> BIdx.remove b stats key

let is_pool ptr = match Vptr.classify ptr with Vptr.Pool _ -> true | _ -> false
let is_inline ptr = match Vptr.classify ptr with Vptr.Inline _ -> true | _ -> false

(* Store one version value into the transient pool, charging per the
   design variant: DRAM for NVCaracal/all-DRAM, NVMM for designs that
   persist every update. The initial-version copy counts as a DRAM
   cache fill for the hybrid design (its cache works like Zen's). *)
let store_version_value t stats ~core ?(initial = false) data =
  let nvmm_path =
    Config.writes_all_updates_to_nvmm t.config
    && not (initial && t.config.Config.variant = Config.Hybrid)
  in
  let vref = TP.write t.tpool stats ~charge:(not nvmm_path) ~core data in
  if nvmm_path then begin
    (* Every update is individually made durable (these designs recover
       from the updates themselves): a flush per update costs a full
       NVMM block write — Optane's 256-byte internal write — even for
       small values. *)
    let len = Bytes.length data in
    Stats.nvmm_write_blocks stats (Memspec.blocks_touched (Stats.spec stats) ~off:0 ~len)
  end;
  if Config.redo_logs_updates t.config then
    (* Traditional WAL (section 2.1): every committed update is
       redo-logged to NVMM before it is checkpointed in place. *)
    Stats.nvmm_seq_write stats ~bytes:(24 + Bytes.length data);
  t.m_version_writes <- t.m_version_writes + 1;
  vref

let load_version_value t stats ~initial vref =
  let nvmm_path =
    Config.writes_all_updates_to_nvmm t.config
    && not (initial && t.config.Config.variant = Config.Hybrid)
  in
  let data = TP.read t.tpool stats ~charge:(not nvmm_path) vref in
  if nvmm_path then
    Stats.nvmm_read_lines stats
      (Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length data));
  data

(* The latest persistent version visible at checkpoint granularity:
   v2 unless it is empty or newer than [max_epoch] — during epoch
   execution the bound is the previous epoch (a replayed epoch must not
   read its own pre-crash writes); between epochs it is the committed
   epoch itself. *)
let checkpoint_pversion ?max_epoch t (row : Row.t) =
  let limit = match max_epoch with Some e -> e | None -> t.epoch - 1 in
  let usable (v : Row.pversion) =
    (not (Sid.is_none v.Row.psid)) && Sid.epoch_of v.Row.psid <= limit
  in
  if usable row.Row.pv2 then Some row.Row.pv2
  else if usable row.Row.pv1 then Some row.Row.pv1
  else None

(* Lazily load the DRAM mirror of a row recovered via the persistent
   index, completing any torn version update found in the header (the
   same section 4.5 repairs the recovery scan performs eagerly). *)
let ensure_mirror t stats (row : Row.t) =
  if not row.Row.mirror_loaded then begin
    let _key, _table, v1, v2 = Prow.read_header t.pmem stats ~base:row.Row.prow_base in
    let base = row.Row.prow_base in
    (* Torn case 1: equal SIDs = an interrupted GC move; complete it. *)
    let v1, v2 =
      if (not (Sid.is_none v1.Prow.sid)) && Sid.compare v1.Prow.sid v2.Prow.sid = 0 then begin
        Prow.repair_case1 t.pmem stats ~base ();
        let v1, v2 = Prow.peek_versions t.pmem ~base in
        (v1, v2)
      end
      else (v1, v2)
    in
    (* Torn case 2: SID nulled but not the pointer. *)
    let v2 =
      if Sid.is_none v2.Prow.sid && not (Vptr.is_null v2.Prow.ptr) then begin
        Prow.repair_case2 t.pmem stats ~base ();
        { Prow.sid = Sid.none; ptr = Vptr.null }
      end
      else v2
    in
    row.Row.pv1 <- { Row.psid = v1.Prow.sid; pptr = v1.Prow.ptr; fresh = false };
    row.Row.pv2 <- { Row.psid = v2.Prow.sid; pptr = v2.Prow.ptr; fresh = false };
    row.Row.mirror_loaded <- true
  end

(* Read a row's committed value from the DRAM cache or from NVMM,
   optionally filling the cache on a miss. *)
let committed_read ?max_epoch t stats (row : Row.t) ~fill_cache =
  ensure_mirror t stats row;
  let caching = Config.caching_enabled t.config in
  match row.Row.cached with
  | Some c when caching ->
      Cache.touch t.cache row ~epoch:t.epoch;
      Stats.dram_read stats
        ~lines:(Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length c.Row.data))
        ();
      Some c.Row.data
  | _ -> (
      match checkpoint_pversion ?max_epoch t row with
      | None -> None
      | Some pv ->
          if caching then Cache.note_miss t.cache;
          Stats.nvmm_read_blocks stats 1;
          let data =
            Prow.read_value t.pmem stats ~base:row.Row.prow_base pv.Row.pptr
              ~header_charged:true ()
          in
          (* Selective caching (section 7 future work): cold reads do
             not populate the cache; only written rows do. *)
          if caching && fill_cache && not t.config.Config.selective_caching then
            Cache.insert t.cache stats row ~data ~epoch:t.epoch;
          Some data)

(* ------------------------------------------------------------------ *)
(* Version arrays                                                      *)

let ensure_varray t stats ~core (row : Row.t) =
  if row.Row.varray_epoch <> t.epoch || row.Row.varray = None then begin
    let va =
      VA.create ~epoch:t.epoch
        ~nvmm_resident:(not (Config.uses_dram_version_arrays t.config))
        ~batch_append:t.config.Config.batch_append ()
    in
    row.Row.varray <- Some va;
    row.Row.varray_epoch <- t.epoch;
    t.touched <- row :: t.touched;
    ensure_mirror t stats row;
    (* Copy the committed value in as the initial version; the cached
       version, if any, is consumed (paper section 4.1). *)
    let init_data =
      match row.Row.cached with
      | Some c when Config.caching_enabled t.config ->
          Stats.dram_read stats
            ~lines:
              (Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length c.Row.data))
            ();
          let data = c.Row.data in
          Cache.drop t.cache stats row;
          Some data
      | _ -> (
          match checkpoint_pversion t row with
          | None -> None
          | Some pv ->
              Stats.nvmm_read_blocks stats 1;
              Some
                (Prow.read_value t.pmem stats ~base:row.Row.prow_base pv.Row.pptr
                   ~header_charged:true ()))
    in
    match init_data with
    | None -> ()
    | Some data ->
        VA.append va stats Sid.none;
        let slot = VA.find va stats Sid.none in
        slot.VA.value <- VA.Written (store_version_value t stats ~core ~initial:true data);
        slot.VA.write_time <- Stats.now stats;
        (* The copy is bookkeeping, not an update. *)
        t.m_version_writes <- t.m_version_writes - 1
  end;
  match row.Row.varray with Some va -> va | None -> assert false

(* ------------------------------------------------------------------ *)
(* Final persistent write (sections 4.4–4.6, 5.3)                      *)

let free_pool_value ?(guard_dedup = false) t stats ~core ptr =
  match Vptr.classify ptr with
  | Vptr.Pool { off; _ } ->
      (* A lazily-recovered row may still reference a value the crashed
         epoch's GC already freed durably (its pass 2 never cleared the
         version slot): freeing it again would hand the slot out twice. *)
      if not (guard_dedup && Hashtbl.mem t.gc_dedup (Int64.of_int off)) then
        VPools.free t.value_pool stats ~core off
  | Vptr.Null | Vptr.Inline _ -> ()

(* Write (sid, data) as the row's new recent version, rotating the
   dual-version slots as required and preserving the previous epoch's
   checkpointed version. *)
let do_prow_final_write t stats ~core (row : Row.t) ~sid ~data =
  ensure_mirror t stats row;
  let cfg = t.config in
  let charge = not (Config.writes_all_updates_to_nvmm cfg) in
  let base = row.Row.prow_base in
  if Sid.epoch_of row.Row.pv2.Row.psid = t.epoch then begin
    (* Overwrite: the slot was written this epoch (insert-step data
       followed by an update, or a pre-crash write found during replay).
       A value slot we allocated ourselves is freed (revertible free); a
       slot inherited from the crashed epoch was already reverted by the
       pool recovery and must not be freed. *)
    if row.Row.pv2.Row.fresh then free_pool_value t stats ~core row.Row.pv2.Row.pptr
  end
  else if not (Sid.is_none row.Row.pv2.Row.psid) then begin
    (* Rotate v2 (the previous checkpoint) into v1 before overwriting.
       A stale v1 can only be inline here: stale pool values are always
       collected by the major collector during initialization. *)
    let v1 = row.Row.pv1 in
    if not (Sid.is_none v1.Row.psid) then begin
      if is_inline v1.Row.pptr && cfg.Config.minor_gc then t.m_minor_gc <- t.m_minor_gc + 1
      else if row.Row.lazily_recovered then begin
        (* Lazy (persistent-index) recovery skips the scan that rebuilds
           the major-GC list, so a stale version is collected here, on
           first touch. The dedup set guards against re-freeing a value
           the crashed epoch's GC already made durable. *)
        (match Vptr.classify v1.Row.pptr with
        | Vptr.Pool { off; _ } when not (Hashtbl.mem t.gc_dedup (Int64.of_int off)) ->
            VPools.free t.value_pool stats ~core off
        | Vptr.Pool _ | Vptr.Null | Vptr.Inline _ -> ());
        t.m_major_gc <- t.m_major_gc + 1
      end
      else if not (is_inline v1.Row.pptr) then
        failwith "Db: stale non-inline v1 at write time (major GC missed a row)"
      else failwith "Db: stale v1 at write time with minor GC disabled"
    end;
    Prow.gc_move t.pmem stats ~base ~charge:false ();
    row.Row.pv1 <- { row.Row.pv2 with Row.fresh = false };
    row.Row.pv2 <- Row.no_version
  end;
  let len = Bytes.length data in
  let ptr, fresh =
    if len <= Prow.half_capacity ~row_size:cfg.Config.row_size then begin
      let half = Row.free_half ~row_size:cfg.Config.row_size row.Row.pv1 in
      ( Prow.write_inline_value t.pmem stats ~base ~row_size:cfg.Config.row_size ~half ~data
          ~charge (),
        false )
    end
    else begin
      let off = VPools.alloc t.value_pool stats ~core ~len in
      VPools.write_value t.value_pool stats ~charge ~off ~data ();
      (Vptr.pool ~off ~len, true)
    end
  in
  Prow.set_version t.pmem stats ~base ~slot:`V2 ~sid ~ptr ~charge ();
  row.Row.pv2 <- { Row.psid = sid; pptr = ptr; fresh };
  t.m_persistent_writes <- t.m_persistent_writes + 1;
  (* Track the now-stale v1 for the major collector; inline stale
     versions are left for the minor collector instead. *)
  if
    (not (Sid.is_none row.Row.pv1.Row.psid))
    && (not row.Row.in_gc_list)
    && (is_pool row.Row.pv1.Row.pptr || not cfg.Config.minor_gc)
  then begin
    t.gc_list <- row :: t.gc_list;
    row.Row.in_gc_list <- true
  end

(* Persistently delete a row: free its value slots and the row itself
   (all revertible transaction frees), and unhook the DRAM state. *)
let do_prow_delete t stats ~core (row : Row.t) =
  ensure_mirror t stats row;
  let guard_dedup = row.Row.lazily_recovered in
  free_pool_value ~guard_dedup t stats ~core row.Row.pv1.Row.pptr;
  free_pool_value ~guard_dedup t stats ~core row.Row.pv2.Row.pptr;
  Slab.free t.row_pool stats ~core row.Row.prow_base;
  index_remove t stats ~table:row.Row.table ~key:row.Row.key;
  if t.pindex <> None then begin
    (* Net delta: an insert and delete of the same key in one epoch
       cancel out; a delete of a pre-existing key becomes a tombstone. *)
    let k = (row.Row.table, row.Row.key) in
    match Hashtbl.find_opt t.pix_delta k with
    | Some (`Ins _) -> Hashtbl.remove t.pix_delta k
    | Some `Del | None -> Hashtbl.replace t.pix_delta k `Del
  end;
  Cache.drop t.cache stats row;
  row.Row.pv1 <- Row.no_version;
  row.Row.pv2 <- Row.no_version;
  t.m_persistent_writes <- t.m_persistent_writes + 1

(* Selective caching (section 7): the write-set information gathered
   during initialization identifies hot rows — rows with several
   versions this epoch are worth caching; rows written once are not. *)
let worth_caching t va =
  (not t.config.Config.selective_caching) || VA.length va > 2

(* Resolve the epoch-final version of a row once its last declared
   writer has executed (handles aborted final writers, section 4.6). *)
let finalize_row t stats ~core (row : Row.t) =
  let va = match row.Row.varray with Some va -> va | None -> assert false in
  match VA.latest_resolved va stats with
  | None -> () (* a fresh insert whose every version aborted *)
  | Some slot -> (
      match slot.VA.value with
      | VA.Written vref when Sid.is_none slot.VA.sid ->
          (* Every real write aborted; the initial version stands. The
             persistent row is untouched; restore the cached version the
             append step consumed (section 4.6). *)
          if Config.caching_enabled t.config && worth_caching t va then begin
            let data = load_version_value t stats ~initial:true vref in
            Cache.insert t.cache stats row ~data ~epoch:t.epoch
          end
      | VA.Written vref ->
          let data = load_version_value t stats ~initial:false vref in
          do_prow_final_write t stats ~core row ~sid:slot.VA.sid ~data;
          if Config.caching_enabled t.config && worth_caching t va then
            Cache.insert t.cache stats row ~data ~epoch:t.epoch
      | VA.Tombstone -> do_prow_delete t stats ~core row
      | VA.Pending | VA.Ignored -> assert false)

(* ------------------------------------------------------------------ *)
(* Major GC (sections 4.4, 5.5)                                        *)

let major_gc t =
  let list = t.gc_list in
  t.gc_list <- [];
  if list <> [] then begin
    let n = List.length list in
    let stale_ptrs = List.map (fun (row : Row.t) -> row.Row.pv1.Row.pptr) list in
    let collect_frees () =
      (* Make every stale pool value durable in the free list, skipping
         pointers the crashed epoch's GC already freed. *)
      List.iteri
        (fun i ptr ->
          let stats = stats_of t (i mod t.config.Config.cores) in
          match Vptr.classify ptr with
          | Vptr.Pool { off; _ } ->
              VPools.free_gc t.value_pool stats ~core:(i mod t.config.Config.cores) off
                ~dedup:t.gc_dedup
          | Vptr.Null | Vptr.Inline _ -> ())
        stale_ptrs;
      VPools.persist_gc_tail t.value_pool (stats_of t 0) ~epoch:t.epoch;
      Pmem.fence t.pmem (stats_of t 0);
      hook t Gc_pass1_done
    in
    let rotate_rows () =
      (* Rotate each row so v2 is free for this epoch's write. *)
      List.iteri
        (fun i (row : Row.t) ->
          let stats = stats_of t (i mod t.config.Config.cores) in
          Prow.gc_move t.pmem stats ~base:row.Row.prow_base ~charge:true ();
          row.Row.pv1 <- { row.Row.pv2 with Row.fresh = false };
          row.Row.pv2 <- Row.no_version;
          row.Row.in_gc_list <- false)
        list
    in
    if t.config.Config.persistent_index then begin
      (* Lazy (persistent-index) recovery never rebuilds the GC list,
         so a row must never reference a value that is already in the
         free list. Clearing rows BEFORE appending frees guarantees
         that: a crash in between leaks at most one epoch's stale
         values, instead of leaving dangling pointers that a later lazy
         recovery could double-free. *)
      rotate_rows ();
      collect_frees ()
    end
    else begin
      (* Paper order (section 5.5): frees first, made durable via the
         current tail; the recovery scan rebuilds the GC list and the
         dedup set resolves a crash in between. *)
      collect_frees ();
      rotate_rows ()
    end;
    t.m_major_gc <- t.m_major_gc + n;
    Tracer.instant t.tracer ~core:0 ~name:"major-gc rows" ~cat:"gc"
      ~args:[ ("rows", Nv_obs.Jsonx.Int n) ]
      ()
  end

(* Flush the epoch's net index changes to the persistent index in one
   batch (section 7 future work): part of the epoch checkpoint, before
   the epoch number is persisted. *)
let apply_pindex_delta t stats =
  match t.pindex with
  | None -> ()
  | Some pix ->
      if Hashtbl.length t.pix_delta > 0 then begin
        let inserts = ref [] and deletes = ref [] in
        Hashtbl.iter
          (fun (table, key) change ->
            match change with
            | `Ins base -> inserts := (key, base, table) :: !inserts
            | `Del -> deletes := (key, table) :: !deletes)
          t.pix_delta;
        PIdx.apply_batch pix stats ~epoch:t.epoch ~inserts:!inserts ~deletes:!deletes;
        Hashtbl.reset t.pix_delta
      end

(* ------------------------------------------------------------------ *)
(* Transaction contexts                                                *)

type ctx_mode = Init | Exec of Sid.t

(* Visibility of a row's value at a serial position (Exec) or at
   initialization time (Init: everything resolved so far, which is how
   dynamic write sets observe insert-step data). *)
let visible_value t stats (row : Row.t) ~mode =
  if row.Row.varray_epoch = t.epoch && row.Row.varray <> None then begin
    let va = match row.Row.varray with Some va -> va | None -> assert false in
    let slot =
      match mode with
      | Exec before -> VA.latest_visible va stats ~before
      | Init -> VA.latest_resolved va stats
    in
    match slot with
    | Some ({ VA.value = VA.Written vref; _ } as s) ->
        Stats.set_now stats s.VA.write_time;
        Some (load_version_value t stats ~initial:(Sid.is_none s.VA.sid) vref)
    | Some { VA.value = VA.Tombstone; _ } -> None
    | Some { VA.value = VA.Pending | VA.Ignored; _ } -> assert false
    | None ->
        if row.Row.created_epoch = t.epoch then None
        else committed_read t stats row ~fill_cache:true
  end
  else committed_read t stats row ~fill_cache:true

exception Found of (int64 * bytes)

let make_ctx t ~core ~sid ~mode ~entries_of_txn ~notes ~wrote =
  let stats = stats_of t core in
  let read ~table ~key =
    Stats.compute stats ();
    (* Keys in the write set were already resolved during the
       initialization phase; the execution phase holds direct row
       references (as Caracal does) and only probes the index for
       read-only keys. *)
    let row =
      match
        List.find_opt (fun e -> e.e_table = table && e.e_key = key) !entries_of_txn
      with
      | Some e -> Some e.e_row
      | None -> find_row t stats ~table ~key
    in
    match row with None -> None | Some row -> visible_value t stats row ~mode
  in
  let write ~table ~key data =
    (match mode with Exec _ -> () | Init -> invalid_arg "Txn.Ctx.write: not in execution phase");
    Stats.compute stats ();
    let entry =
      try
        List.find
          (fun e -> e.e_table = table && e.e_key = key && e.e_op <> `Delete)
          !entries_of_txn
      with Not_found ->
        invalid_arg
          (Printf.sprintf "Txn.Ctx.write: key (%d, %Ld) is not in the write set" table key)
    in
    entry.e_slot.VA.value <- VA.Written (store_version_value t stats ~core data);
    entry.e_slot.VA.write_time <- Stats.now stats;
    wrote := true
  in
  let delete ~table ~key =
    (match mode with Exec _ -> () | Init -> invalid_arg "Txn.Ctx.delete: not in execution phase");
    Stats.compute stats ();
    let entry =
      try
        List.find (fun e -> e.e_table = table && e.e_key = key && e.e_op = `Delete) !entries_of_txn
      with Not_found ->
        invalid_arg
          (Printf.sprintf "Txn.Ctx.delete: key (%d, %Ld) is not in the delete set" table key)
    in
    entry.e_slot.VA.value <- VA.Tombstone;
    entry.e_slot.VA.write_time <- Stats.now stats;
    t.m_version_writes <- t.m_version_writes + 1;
    wrote := true
  in
  (* Ordered-table operations, uniform over the AVL and B+-tree
     implementations. *)
  let ordered_fold table ~lo ~hi ~init ~f =
    match t.indexes.(table) with
    | Ord o -> OIdx.fold_range o stats ~lo ~hi ~init ~f
    | Bt b -> BIdx.fold_range b stats ~lo ~hi ~init ~f
    | Hash _ -> invalid_arg "Txn.Ctx: range operation on a hash-indexed table"
  in
  let ordered_max_below table bound =
    match t.indexes.(table) with
    | Ord o -> OIdx.max_below o stats bound
    | Bt b -> BIdx.max_below b stats bound
    | Hash _ -> invalid_arg "Txn.Ctx: range operation on a hash-indexed table"
  in
  let range_read ~table ~lo ~hi =
    List.rev
      (ordered_fold table ~lo ~hi ~init:[] ~f:(fun acc key row ->
           match visible_value t stats row ~mode with
           | Some data -> (key, data) :: acc
           | None -> acc))
  in
  let min_above ~table bound =
    (* Ascending scan with early exit on the first visible entry. *)
    try
      ordered_fold table ~lo:bound ~hi:Int64.max_int ~init:() ~f:(fun () key row ->
          match visible_value t stats row ~mode with
          | Some data -> raise (Found (key, data))
          | None -> ());
      None
    with Found kv -> Some kv
  in
  let max_below ~table bound =
    (* Descend from the bound; visibility is rechecked walking down in
       key order. *)
    let rec go bound =
      match ordered_max_below table bound with
      | None -> None
      | Some (key, row) -> (
          match visible_value t stats row ~mode with
          | Some data -> Some (key, data)
          | None -> if key = Int64.min_int then None else go (Int64.pred key))
    in
    go bound
  in
  let abort () =
    if !wrote then failwith "Txn.Ctx.abort: user aborts must precede the first write";
    raise Txn.Aborted
  in
  let compute ~ops = Stats.compute stats ~ops () in
  let counter_next ~idx =
    Stats.compute stats ();
    let v = t.counters.(idx) in
    t.counters.(idx) <- Int64.add v 1L;
    v
  in
  {
    Txn.Ctx.sid;
    core;
    read;
    write;
    delete;
    range_read;
    max_below;
    min_above;
    abort;
    compute;
    counter_next;
    notes;
  }

(* ------------------------------------------------------------------ *)
(* Initialization phase                                                *)

let do_insert t stats ~core ~sid ~table ~key ~data entries =
  Stats.compute stats ();
  (match find_row t stats ~table ~key with
  | Some _ -> invalid_arg (Printf.sprintf "Db: duplicate insert of key (%d, %Ld)" table key)
  | None -> ());
  let base = Slab.alloc t.row_pool stats ~core in
  Prow.init t.pmem stats ~base ~key ~table;
  let row = Row.make ~key ~table ~home_core:core ~prow_base:base ~created_epoch:t.epoch in
  index_insert t stats ~table ~key row;
  if t.pindex <> None then Hashtbl.replace t.pix_delta (table, key) (`Ins base);
  let va = ensure_varray t stats ~core row in
  VA.append va stats sid;
  let slot = VA.find va stats sid in
  (match data with
  | Some d ->
      slot.VA.value <- VA.Written (store_version_value t stats ~core d);
      slot.VA.write_time <- Stats.now stats
  | None -> ());
  entries := { e_op = `Insert; e_table = table; e_key = key; e_row = row; e_slot = slot } :: !entries

let do_append t stats ~core ~sid ~table ~key ~(kind : [ `Update | `Delete ]) entries =
  Stats.compute stats ();
  match find_row t stats ~table ~key with
  | None -> invalid_arg (Printf.sprintf "Db: update/delete of missing key (%d, %Ld)" table key)
  | Some row ->
      let va = ensure_varray t stats ~core row in
      (* A transaction may declare the same key more than once (multiple
         writes per item, section 3.1.1): reuse its slot. *)
      let slot =
        match VA.find va stats sid with
        | slot -> slot
        | exception Not_found ->
            VA.append va stats sid;
            VA.find va stats sid
      in
      entries :=
        { e_op = (kind :> [ `Insert | `Update | `Delete ]); e_table = table; e_key = key;
          e_row = row; e_slot = slot }
        :: !entries

(* ------------------------------------------------------------------ *)
(* Epoch driver (Algorithm 1)                                          *)

let reset_epoch_measurements t =
  t.m_aborted <- 0;
  t.m_version_writes <- 0;
  t.m_persistent_writes <- 0;
  t.m_minor_gc <- 0;
  t.m_major_gc <- 0;
  t.m_evicted <- 0;
  t.m_cache_hits0 <- Cache.hits t.cache;
  t.m_cache_misses0 <- Cache.misses t.cache

let run_epoch_internal ?(replay = false) t txns =
  let cfg = t.config in
  t.epoch <- t.epoch + 1;
  reset_epoch_measurements t;
  t.touched <- [];
  let n = Array.length txns in
  let t_start = barrier t in
  (* --- Log transaction inputs (section 4.3). --- *)
  phase_span t "input-log" (fun () ->
      if Config.logging_enabled cfg && not replay then begin
        Log.begin_epoch t.log (stats_of t 0) ~epoch:t.epoch;
        Array.iteri
          (fun i (txn : Txn.t) -> Log.append t.log (stats_of t (core_of t i)) txn.Txn.input)
          txns;
        Log.commit t.log (stats_of t 0);
        t.log_high_water <- max t.log_high_water (Log.bytes_appended t.log)
      end;
      hook t Log_done);
  let t_log = barrier t in
  (* --- Insert step. --- *)
  let entries = Array.make n (ref []) in
  let notes = Array.init n (fun _ -> Hashtbl.create 4) in
  let outcomes = Array.make n false in
  for i = 0 to n - 1 do
    entries.(i) <- ref []
  done;
  phase_span t "insert" (fun () ->
      for i = 0 to n - 1 do
        let core = core_of t i in
        let stats = stats_of t core in
        let sid = Sid.make ~epoch:t.epoch ~seq:i in
        let static_inserts =
          List.filter_map
            (function
              | Txn.Insert { table; key; data } -> Some (table, key, data)
              | Txn.Update _ | Txn.Delete _ -> None)
            txns.(i).Txn.write_set
        in
        let generated =
          match txns.(i).Txn.insert_gen with
          | None -> []
          | Some gen ->
              let ctx =
                make_ctx t ~core ~sid ~mode:Init ~entries_of_txn:entries.(i) ~notes:notes.(i)
                  ~wrote:(ref true)
              in
              List.map
                (function
                  | Txn.Insert { table; key; data } -> (table, key, data)
                  | Txn.Update _ | Txn.Delete _ ->
                      invalid_arg "Db: insert_gen may only produce Insert ops")
                (gen ctx)
        in
        List.iter
          (fun (table, key, data) -> do_insert t stats ~core ~sid ~table ~key ~data entries.(i))
          (static_inserts @ generated)
      done;
      hook t Insert_done);
  let t_insert = barrier t in
  (* --- Major GC, then cache eviction (initialization phase). --- *)
  phase_span t "major-gc" (fun () ->
      major_gc t;
      hook t Gc_done);
  phase_span t "evict" (fun () ->
      if Config.caching_enabled cfg then begin
        t.m_evicted <-
          Cache.evict t.cache (stats_of t (t.epoch mod cfg.Config.cores)) ~current_epoch:t.epoch
            ~k:cfg.Config.cache_k;
        Tracer.instant t.tracer ~core:(t.epoch mod cfg.Config.cores) ~name:"cache-evict"
          ~cat:"cache"
          ~args:[ ("evicted", Nv_obs.Jsonx.Int t.m_evicted) ]
          ()
      end);
  let t_gc = barrier t in
  (* --- Append step. --- *)
  let recon_reads = Array.make n [] in
  phase_span t "append" (fun () ->
  for i = 0 to n - 1 do
    let core = core_of t i in
    let stats = stats_of t core in
    let sid = Sid.make ~epoch:t.epoch ~seq:i in
    let static_ops =
      List.filter_map
        (function
          | Txn.Update { table; key } -> Some (table, key, `Update)
          | Txn.Delete { table; key } -> Some (table, key, `Delete)
          | Txn.Insert _ -> None)
        txns.(i).Txn.write_set
    in
    let ops_of gen =
      let ctx =
        make_ctx t ~core ~sid ~mode:Init ~entries_of_txn:entries.(i) ~notes:notes.(i)
          ~wrote:(ref true)
      in
      List.map
        (function
          | Txn.Update { table; key } -> (table, key, `Update)
          | Txn.Delete { table; key } -> (table, key, `Delete)
          | Txn.Insert _ -> invalid_arg "Db: computed write sets may not produce Insert ops")
        (gen ctx)
    in
    let dynamic_ops =
      match txns.(i).Txn.dynamic_write_set with None -> [] | Some gen -> ops_of gen
    in
    (* Reconnaissance (section 3.1.1): run the read-only pass, record
       every value it observes, and derive the write set from it. The
       reads are re-validated just before execution. *)
    let recon_ops =
      match txns.(i).Txn.recon with
      | None -> []
      | Some gen ->
          ops_of (fun ctx ->
              let recorded = ref [] in
              let recording_read ~table ~key =
                let v = ctx.Txn.Ctx.read ~table ~key in
                recorded := (table, key, Option.map Bytes.copy v) :: !recorded;
                v
              in
              let ops = gen { ctx with Txn.Ctx.read = recording_read } in
              recon_reads.(i) <- !recorded;
              ops)
    in
    List.iter
      (fun (table, key, kind) -> do_append t stats ~core ~sid ~table ~key ~kind entries.(i))
      (static_ops @ dynamic_ops @ recon_ops)
  done;
  hook t Append_done);
  let t_append = barrier t in
  (* --- Execution phase. --- *)
  let txn_sample = if Tracer.enabled t.tracer then Tracer.txn_sample t.tracer else 0 in
  let exec_hist =
    if Metrics.enabled t.metrics then Some (Metrics.histogram t.metrics "txn_exec_ns") else None
  in
  phase_span t "execute" (fun () ->
  for i = 0 to n - 1 do
    let core = core_of t i in
    let stats = stats_of t core in
    let sid = Sid.make ~epoch:t.epoch ~seq:i in
    let traced = txn_sample > 0 && i mod txn_sample = 0 in
    let ts0 = if traced || exec_hist <> None then Stats.now stats else 0.0 in
    let wrote = ref false in
    let ctx =
      make_ctx t ~core ~sid ~mode:(Exec sid) ~entries_of_txn:entries.(i) ~notes:notes.(i) ~wrote
    in
    (* Validate reconnaissance reads: if any value the recon pass
       observed was changed by an earlier transaction in this epoch,
       abort deterministically. *)
    let recon_valid =
      List.for_all
        (fun (table, key, observed) ->
          match (ctx.Txn.Ctx.read ~table ~key, observed) with
          | None, None -> true
          | Some a, Some b -> Bytes.equal a b
          | _ -> false)
        recon_reads.(i)
    in
    let aborted =
      (not recon_valid)
      ||
      try
        txns.(i).Txn.body ctx;
        false
      with Txn.Aborted -> true
    in
    outcomes.(i) <- aborted;
    if aborted then begin
      t.m_aborted <- t.m_aborted + 1;
      t.total_aborted <- t.total_aborted + 1;
      List.iter (fun e -> e.e_slot.VA.value <- VA.Ignored) !(entries.(i))
    end
    else t.committed <- t.committed + 1;
    (* Declared writes the body never issued are equivalent to aborted
       single writes: mark them IGNORE so readers skip them. *)
    List.iter
      (fun e -> if e.e_slot.VA.value = VA.Pending then e.e_slot.VA.value <- VA.Ignored)
      !(entries.(i));
    (* Rows whose last declared writer is this transaction get their
       final version persisted now. *)
    List.iter
      (fun e ->
        match e.e_row.Row.varray with
        | Some va
          when Sid.compare (VA.max_sid va) sid = 0
               && Sid.compare e.e_slot.VA.sid sid = 0
               && not (VA.finalized va) ->
            VA.set_finalized va;
            finalize_row t stats ~core e.e_row
        | Some _ | None -> ())
      !(entries.(i));
    (if traced || exec_hist <> None then begin
       let dur = Stats.now stats -. ts0 in
       if traced then
         Tracer.complete t.tracer ~core ~name:"txn" ~cat:"txn"
           ~args:[ ("seq", Nv_obs.Jsonx.Int i); ("aborted", Nv_obs.Jsonx.Bool aborted) ]
           ~ts:ts0 ~dur ();
       match exec_hist with Some h -> Metrics.observe h dur | None -> ()
     end);
    hook t (Exec_txn i)
  done;
  hook t Exec_done);
  let t_exec = barrier t in
  (* --- Checkpoint: persist allocators (fence), then the epoch number. --- *)
  let stats0 = stats_of t 0 in
  phase_span t "fence" (fun () ->
      Slab.checkpoint t.row_pool (stats_of t) ~epoch:t.epoch;
      VPools.checkpoint t.value_pool (stats_of t) ~epoch:t.epoch;
      if cfg.Config.n_counters > 0 then
        Meta.checkpoint_counters t.meta stats0 ~epoch:t.epoch (Array.copy t.counters);
      apply_pindex_delta t stats0);
  phase_span t "epoch-persist" (fun () ->
      Meta.persist_epoch t.meta stats0 ~epoch:t.epoch;
      t.last_outcomes <- outcomes;
      hook t Checkpointed);
  (* --- Discard the transient pool and per-epoch row state. --- *)
  List.iter
    (fun (row : Row.t) ->
      row.Row.varray <- None;
      if row.Row.pv2.Row.fresh then row.Row.pv2 <- { row.Row.pv2 with Row.fresh = false };
      if row.Row.pv1.Row.fresh then row.Row.pv1 <- { row.Row.pv1 with Row.fresh = false })
    t.touched;
  t.touched <- [];
  TP.reset t.tpool;
  if replay && not t.retain_gc_dedup then t.gc_dedup <- Hashtbl.create 16;
  let t_end = barrier t in
  let report =
    {
      Report.epoch = t.epoch;
      txns = n;
      aborted = t.m_aborted;
      version_writes = t.m_version_writes;
      persistent_writes = t.m_persistent_writes;
      transient_only_writes = t.m_version_writes - t.m_persistent_writes;
      minor_gc = t.m_minor_gc;
      major_gc = t.m_major_gc;
      evicted = t.m_evicted;
      cache_hits = Cache.hits t.cache - t.m_cache_hits0;
      cache_misses = Cache.misses t.cache - t.m_cache_misses0;
      log_bytes =
        (if Config.logging_enabled cfg && not replay then Log.bytes_appended t.log else 0);
      duration_ns = t_end -. t_start;
      phases =
        [
          ("log", t_log -. t_start);
          ("insert", t_insert -. t_log);
          ("gc+evict", t_gc -. t_insert);
          ("append", t_append -. t_gc);
          ("execute", t_exec -. t_append);
          ("checkpoint", t_end -. t_exec);
        ];
    }
  in
  publish_epoch_metrics t report;
  report

let run_epoch t txns =
  if not t.loaded then invalid_arg "Db.run_epoch: call bulk_load first";
  run_epoch_internal t txns

(* ------------------------------------------------------------------ *)
(* Aria-style execution (section 7 future work, after Lu et al.):      *)
(* snapshot execution + deterministic reservations, no write sets.     *)

let run_epoch_aria_internal ?(replay = false) t txns =
  let cfg = t.config in
  t.epoch <- t.epoch + 1;
  reset_epoch_measurements t;
  t.touched <- [];
  let n = Array.length txns in
  let t_start = barrier t in
  phase_span t "input-log" (fun () ->
      if Config.logging_enabled cfg && not replay then begin
        Log.begin_epoch t.log (stats_of t 0) ~epoch:t.epoch;
        Array.iteri
          (fun i (txn : Txn.t) -> Log.append t.log (stats_of t (core_of t i)) txn.Txn.input)
          txns;
        Log.commit t.log (stats_of t 0);
        t.log_high_water <- max t.log_high_water (Log.bytes_appended t.log)
      end;
      hook t Log_done);
  let t_log = barrier t in
  (* Initialization housekeeping is unchanged: collect the previous
     epoch's stale versions, evict cold cached versions. *)
  phase_span t "major-gc" (fun () ->
      major_gc t;
      hook t Gc_done);
  phase_span t "evict" (fun () ->
      if Config.caching_enabled cfg then
        t.m_evicted <-
          Cache.evict t.cache (stats_of t (t.epoch mod cfg.Config.cores)) ~current_epoch:t.epoch
            ~k:cfg.Config.cache_k);
  let t_gc = barrier t in
  (* Phase 1: every transaction executes against the epoch-start
     snapshot; writes are buffered privately; read sets are recorded. *)
  let buffers = Array.init n (fun _ -> Hashtbl.create 8) in
  let read_sets = Array.init n (fun _ -> Hashtbl.create 8) in
  let user_aborted = Array.make n false in
  phase_span t "execute" (fun () ->
  for i = 0 to n - 1 do
    let core = core_of t i in
    let stats = stats_of t core in
    let sid = Sid.make ~epoch:t.epoch ~seq:i in
    let buffer = buffers.(i) and rset = read_sets.(i) in
    let snapshot_read ~table ~key =
      match find_row t stats ~table ~key with
      | None -> None
      | Some row -> committed_read t stats row ~fill_cache:true
    in
    let read ~table ~key =
      Stats.compute stats ();
      match Hashtbl.find_opt buffer (table, key) with
      | Some v -> Some v (* read-your-own-buffered-writes *)
      | None ->
          Hashtbl.replace rset (table, key) ();
          snapshot_read ~table ~key
    in
    let write ~table ~key data =
      Stats.compute stats ();
      Stats.dram_write stats
        ~lines:(Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length data))
        ();
      t.m_version_writes <- t.m_version_writes + 1;
      Hashtbl.replace buffer (table, key) data
    in
    let delete ~table:_ ~key:_ = invalid_arg "Db.run_epoch_aria: deletes are not supported" in
    let ordered_fold table ~lo ~hi ~init ~f =
      match t.indexes.(table) with
      | Ord o -> OIdx.fold_range o stats ~lo ~hi ~init ~f
      | Bt b -> BIdx.fold_range b stats ~lo ~hi ~init ~f
      | Hash _ -> invalid_arg "Db.run_epoch_aria: range operation on a hash-indexed table"
    in
    let range_read ~table ~lo ~hi =
      List.rev
        (ordered_fold table ~lo ~hi ~init:[] ~f:(fun acc key row ->
             Hashtbl.replace rset (table, key) ();
             match committed_read t stats row ~fill_cache:true with
             | Some data -> (key, data) :: acc
             | None -> acc))
    in
    let first ~table ~lo ~hi =
      try
        ordered_fold table ~lo ~hi ~init:() ~f:(fun () key row ->
            Hashtbl.replace rset (table, key) ();
            match committed_read t stats row ~fill_cache:true with
            | Some data -> raise (Found (key, data))
            | None -> ());
        None
      with Found kv -> Some kv
    in
    let min_above ~table bound = first ~table ~lo:bound ~hi:Int64.max_int in
    let max_below ~table bound =
      (* Committed snapshot, so index max_below suffices. *)
      match t.indexes.(table) with
      | Ord o -> (
          match OIdx.max_below o stats bound with
          | Some (key, row) ->
              Hashtbl.replace rset (table, key) ();
              Option.map (fun d -> (key, d)) (committed_read t stats row ~fill_cache:true)
          | None -> None)
      | Bt b -> (
          match BIdx.max_below b stats bound with
          | Some (key, row) ->
              Hashtbl.replace rset (table, key) ();
              Option.map (fun d -> (key, d)) (committed_read t stats row ~fill_cache:true)
          | None -> None)
      | Hash _ -> invalid_arg "Db.run_epoch_aria: range operation on a hash-indexed table"
    in
    let ctx =
      {
        Txn.Ctx.sid;
        core;
        read;
        write;
        delete;
        range_read;
        max_below;
        min_above;
        abort = (fun () -> raise Txn.Aborted);
        compute = (fun ~ops -> Stats.compute stats ~ops ());
        counter_next =
          (fun ~idx ->
            Stats.compute stats ();
            let v = t.counters.(idx) in
            t.counters.(idx) <- Int64.add v 1L;
            v);
        notes = Hashtbl.create 4;
      }
    in
    (match txns.(i).Txn.body ctx with
    | () -> ()
    | exception Txn.Aborted ->
        user_aborted.(i) <- true;
        Hashtbl.reset buffer);
    hook t (Exec_txn i)
  done);
  let t_exec = barrier t in
  (* Phase 2: Aria's deterministic reservations. Each key records the
     smallest SID that wrote it; a transaction aborts (for retry) if
     any key it wrote or read carries a smaller reservation. *)
  let reserve_apply_begins =
    if Tracer.enabled t.tracer then Array.map Stats.now t.core_stats else [||]
  in
  let reservations : (int * int64, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i buffer ->
      if not user_aborted.(i) then
        Hashtbl.iter
          (fun key _ ->
            Stats.compute (stats_of t (core_of t i)) ();
            match Hashtbl.find_opt reservations key with
            | Some j when j <= i -> ()
            | Some _ | None -> Hashtbl.replace reservations key i)
          buffer)
    buffers;
  let deferred = ref [] in
  let decisions : ((int * int64) * int * bytes) list ref = ref [] in
  for i = 0 to n - 1 do
    let stats = stats_of t (core_of t i) in
    if user_aborted.(i) then begin
      t.m_aborted <- t.m_aborted + 1;
      t.total_aborted <- t.total_aborted + 1
    end
    else begin
      let reserved_earlier key =
        match Hashtbl.find_opt reservations key with Some j -> j < i | None -> false
      in
      let conflict =
        Hashtbl.fold (fun key _ acc -> acc || reserved_earlier key) buffers.(i) false
        || Hashtbl.fold (fun key () acc -> acc || reserved_earlier key) read_sets.(i) false
      in
      Stats.compute stats ~ops:(1 + Hashtbl.length read_sets.(i)) ();
      if conflict then begin
        deferred := txns.(i) :: !deferred;
        t.m_aborted <- t.m_aborted + 1
      end
      else begin
        t.committed <- t.committed + 1;
        Hashtbl.iter (fun key data -> decisions := (key, i, data) :: !decisions) buffers.(i)
      end
    end
  done;
  (* Apply the surviving writes through the dual-version NVMM path, in
     deterministic key order (one persistent write per row). *)
  let decisions = List.sort compare !decisions in
  List.iter
    (fun (((table, key) : int * int64), i, data) ->
      let core = core_of t i in
      let stats = stats_of t core in
      let sid = Sid.make ~epoch:t.epoch ~seq:i in
      let row =
        match find_row t stats ~table ~key with
        | Some row -> row
        | None ->
            (* Writing a missing key inserts it. *)
            let base = Slab.alloc t.row_pool stats ~core in
            Prow.init t.pmem stats ~base ~key ~table;
            let row = Row.make ~key ~table ~home_core:core ~prow_base:base ~created_epoch:t.epoch in
            index_insert t stats ~table ~key row;
            if t.pindex <> None then Hashtbl.replace t.pix_delta (table, key) (`Ins base);
            row
      in
      do_prow_final_write t stats ~core row ~sid ~data;
      if Config.caching_enabled cfg then Cache.insert t.cache stats row ~data ~epoch:t.epoch;
      t.touched <- row :: t.touched)
    decisions;
  hook t Exec_done;
  if Tracer.enabled t.tracer then
    Array.iteri
      (fun core s ->
        Tracer.complete t.tracer ~core ~name:"reserve+apply" ~cat:"epoch"
          ~ts:reserve_apply_begins.(core)
          ~dur:(Stats.now s -. reserve_apply_begins.(core))
          ())
      t.core_stats;
  let t_apply = barrier t in
  (* Checkpoint, exactly as in the Caracal mode. *)
  let stats0 = stats_of t 0 in
  phase_span t "fence" (fun () ->
      Slab.checkpoint t.row_pool (stats_of t) ~epoch:t.epoch;
      VPools.checkpoint t.value_pool (stats_of t) ~epoch:t.epoch;
      if cfg.Config.n_counters > 0 then
        Meta.checkpoint_counters t.meta stats0 ~epoch:t.epoch (Array.copy t.counters);
      apply_pindex_delta t stats0);
  phase_span t "epoch-persist" (fun () ->
      Meta.persist_epoch t.meta stats0 ~epoch:t.epoch;
      hook t Checkpointed);
  List.iter
    (fun (row : Row.t) ->
      if row.Row.pv2.Row.fresh then row.Row.pv2 <- { row.Row.pv2 with Row.fresh = false };
      if row.Row.pv1.Row.fresh then row.Row.pv1 <- { row.Row.pv1 with Row.fresh = false })
    t.touched;
  t.touched <- [];
  if replay && not t.retain_gc_dedup then t.gc_dedup <- Hashtbl.create 16;
  let t_end = barrier t in
  let report =
    {
      Report.epoch = t.epoch;
      txns = n;
      aborted = t.m_aborted;
      version_writes = t.m_version_writes;
      persistent_writes = t.m_persistent_writes;
      transient_only_writes = t.m_version_writes - t.m_persistent_writes;
      minor_gc = t.m_minor_gc;
      major_gc = t.m_major_gc;
      evicted = t.m_evicted;
      cache_hits = Cache.hits t.cache - t.m_cache_hits0;
      cache_misses = Cache.misses t.cache - t.m_cache_misses0;
      log_bytes =
        (if Config.logging_enabled cfg && not replay then Log.bytes_appended t.log else 0);
      duration_ns = t_end -. t_start;
      phases =
        [
          ("log", t_log -. t_start);
          ("gc+evict", t_gc -. t_log);
          ("execute", t_exec -. t_gc);
          ("reserve+apply", t_apply -. t_exec);
          ("checkpoint", t_end -. t_apply);
        ];
    }
  in
  publish_epoch_metrics t report;
  (report, Array.of_list (List.rev !deferred))

let run_epoch_aria t txns =
  if not t.loaded then invalid_arg "Db.run_epoch_aria: call bulk_load first";
  run_epoch_aria_internal t txns

(* ------------------------------------------------------------------ *)
(* Bulk load                                                           *)

let bulk_load t rows =
  if t.loaded then invalid_arg "Db.bulk_load: already loaded";
  t.epoch <- 1;
  let cfg = t.config in
  let i = ref 0 in
  Seq.iter
    (fun (table, key, data) ->
      let core = core_of t !i in
      incr i;
      let stats = stats_of t core in
      let base = Slab.alloc t.row_pool stats ~core in
      Prow.init t.pmem stats ~base ~key ~table;
      let row = Row.make ~key ~table ~home_core:core ~prow_base:base ~created_epoch:0 in
      index_insert t stats ~table ~key row;
      if t.pindex <> None then Hashtbl.replace t.pix_delta (table, key) (`Ins base);
      let sid = Sid.make ~epoch:1 ~seq:0 in
      let len = Bytes.length data in
      let ptr =
        if len <= Prow.half_capacity ~row_size:cfg.Config.row_size then
          Prow.write_inline_value t.pmem stats ~base ~row_size:cfg.Config.row_size ~half:0 ~data
            ()
        else begin
          let off = VPools.alloc t.value_pool stats ~core ~len in
          VPools.write_value t.value_pool stats ~off ~data ();
          Vptr.pool ~off ~len
        end
      in
      Prow.set_version t.pmem stats ~base ~slot:`V2 ~sid ~ptr ();
      row.Row.pv2 <- { Row.psid = sid; pptr = ptr; fresh = false })
    rows;
  let stats0 = stats_of t 0 in
  Slab.checkpoint t.row_pool (stats_of t) ~epoch:1;
  VPools.checkpoint t.value_pool (stats_of t) ~epoch:1;
  if cfg.Config.n_counters > 0 then
    Meta.checkpoint_counters t.meta stats0 ~epoch:1 (Array.copy t.counters);
  apply_pindex_delta t stats0;
  Meta.persist_magic t.meta stats0;
  Meta.persist_epoch t.meta stats0 ~epoch:1;
  (* Loading is setup, not workload: forget its costs. *)
  Array.iter Stats.reset t.core_stats;
  t.committed <- 0;
  t.total_aborted <- 0;
  t.loaded <- true

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

let latest_pversion t (row : Row.t) =
  ensure_mirror t t.scratch row;
  if not (Sid.is_none row.Row.pv2.Row.psid) then Some row.Row.pv2
  else if not (Sid.is_none row.Row.pv1.Row.psid) then Some row.Row.pv1
  else None

let advance_core t ~core ~ns = Stats.advance (stats_of t core) ns

let snapshot_read t ~core ~table ~key =
  let stats = stats_of t core in
  match find_row t stats ~table ~key with
  | None -> None
  | Some row -> committed_read ~max_epoch:t.epoch t stats row ~fill_cache:true

let read_committed t ~table ~key =
  match find_row t t.scratch ~table ~key with
  | None -> None
  | Some row -> (
      match latest_pversion t row with
      | None -> None
      | Some pv -> Some (Prow.read_value t.pmem t.scratch ~base:row.Row.prow_base pv.Row.pptr ()))

let iter_committed t ~table f =
  let visit key (row : Row.t) =
    match latest_pversion t row with
    | None -> ()
    | Some pv -> f key (Prow.read_value t.pmem t.scratch ~base:row.Row.prow_base pv.Row.pptr ())
  in
  match t.indexes.(table) with
  | Hash h -> HIdx.iter h visit
  | Ord o -> OIdx.iter o visit
  | Bt b -> BIdx.iter b visit

let mem_report t =
  let index_bytes =
    Array.fold_left
      (fun acc idx ->
        acc
        + (match idx with
          | Hash h -> HIdx.dram_bytes h
          | Ord o -> OIdx.dram_bytes o
          | Bt b -> BIdx.dram_bytes b))
      0 t.indexes
  in
  {
    Report.nvmm_rows = Slab.allocated_slots t.row_pool * t.config.Config.row_size;
    nvmm_values = VPools.allocated_bytes t.value_pool;
    nvmm_log = t.log_high_water;
    nvmm_freelists =
      Slab.nvmm_bytes t.row_pool
      - (t.config.Config.rows_per_core * t.config.Config.cores * t.config.Config.row_size)
      + VPools.meta_bytes t.value_pool
      + (match t.pindex with Some p -> PIdx.nvmm_bytes p | None -> 0);
    dram_index = index_bytes;
    dram_transient = TP.peak_bytes t.tpool;
    dram_cache = Cache.dram_bytes t.cache;
  }

let committed_txns t = t.committed

let total_time_ns t =
  Array.fold_left (fun acc s -> Float.max acc (Stats.now s)) 0.0 t.core_stats

let counter_value t i = t.counters.(i)

let last_epoch_outcomes t =
  Array.map (fun aborted -> if aborted then `Aborted else `Committed) t.last_outcomes

let debug_row t ~table ~key =
  match find_row t t.scratch ~table ~key with
  | None -> "absent"
  | Some row ->
      ensure_mirror t t.scratch row;
      Format.asprintf "v1=(%a,%a) v2=(%a,%a)%s" Sid.pp row.Row.pv1.Row.psid Vptr.pp
        row.Row.pv1.Row.pptr Sid.pp row.Row.pv2.Row.psid Vptr.pp row.Row.pv2.Row.pptr
        (if row.Row.lazily_recovered then " lazy" else "")

(* ------------------------------------------------------------------ *)
(* Crash and recovery                                                  *)

let crash ?faults t ~rng =
  if not t.config.Config.crash_safe then
    invalid_arg "Db.crash: requires a crash_safe configuration";
  (match faults with
  | None -> Pmem.crash t.pmem ~rng
  | Some model -> ignore (Pmem.crash_with_faults t.pmem ~rng ~model));
  t.pmem

let recover ~config ~tables ~pmem ~rebuild ?(replay_mode = `Caracal) ?phase_hook
    ?recovery_hook ?(scrub = false) ?tracer ?metrics () =
  if not config.Config.crash_safe then
    invalid_arg "Db.recover: requires a crash_safe configuration";
  let t = attach config tables pmem in
  (match phase_hook with Some h -> set_phase_hook t h | None -> ());
  let rhook p = match recovery_hook with Some f -> f p | None -> () in
  set_observability ?tracer ?metrics ~name:"recovery" t;
  t.loaded <- true;
  let stats0 = stats_of t 0 in
  (* Damage and salvage accounting (populated by the scrub checks; all
     zero/empty on a clean legal-crash recovery). *)
  let damage = ref [] in
  let crc_repaired = ref 0 in
  let stale_dropped = ref 0 in
  let report_damage ~table ~key kind =
    damage := { Report.d_table = table; d_key = key; d_kind = kind } :: !damage
  in
  (match Meta.check_magic t.meta with
  | `Ok | `Absent -> ()
  | `Version_mismatch v ->
      failwith
        (Printf.sprintf "Db.recover: persistent layout version %d, this build expects %d" v
           Meta.layout_version)
  | `Corrupt ->
      (* Advisory only — the epoch word is the commit record. Restamp. *)
      Meta.persist_magic t.meta stats0;
      incr crc_repaired);
  let lce = Meta.read_epoch t.meta in
  let crashed = lce + 1 in
  t.epoch <- lce;
  (* Allocator state reverts to the last checkpoint; durable GC frees of
     the crashed epoch are kept and feed the dedup set. *)
  let row_rec =
    Slab.recover t.row_pool ~last_checkpointed_epoch:lce ~crashed_epoch:crashed ~row_scan:true
      ()
  in
  let val_rec =
    VPools.recover t.value_pool ~last_checkpointed_epoch:lce ~crashed_epoch:crashed
  in
  t.gc_dedup <- val_rec.VPools.dedup;
  let alloc_salvaged = row_rec.Slab.meta_salvaged + val_rec.VPools.meta_salvaged in
  let alloc_corrupt = row_rec.Slab.corrupt_entries + val_rec.VPools.corrupt_entries in
  if alloc_salvaged > 0 then report_damage ~table:(-1) ~key:0L `Allocator;
  let counter_salvaged = ref 0 in
  if config.Config.n_counters > 0 then begin
    let cr = Meta.recover_counters t.meta ~last_checkpointed_epoch:lce in
    Array.blit cr.Meta.values 0 t.counters 0 (Array.length cr.Meta.values);
    counter_salvaged := List.length cr.Meta.salvaged;
    List.iter
      (fun i -> report_damage ~table:(-1) ~key:(Int64.of_int i) `Counter)
      cr.Meta.salvaged
  end;
  rhook Rec_meta_recovered;
  (* Load the crashed epoch's input log, if it committed. *)
  let t0 = Stats.now stats0 in
  let log_dropped = ref false in
  let log_entries =
    match Log.read_committed t.log stats0 with
    | Log.Committed (ep, entries) when ep = crashed -> Some entries
    | Log.Committed _ | Log.Empty -> None
    | Log.Corrupt { epoch = Some ep; reason = _ } when ep <> crashed ->
        (* A superseded epoch's log went bad; it was never going to be
           read again. *)
        None
    | Log.Corrupt _ ->
        (* The crashed epoch committed but its inputs are unreadable:
           it cannot be replayed. Drop the epoch — reverting its row
           writes below — and report the loss loudly. *)
        log_dropped := true;
        report_damage ~table:(-1) ~key:0L `Log;
        None
  in
  let t_load = Stats.now stats0 -. t0 in
  rhook Rec_log_loaded;
  (* Rebuild the DRAM index. With the persistent index enabled (and no
     revert pass required), recovery reads the sequential NVMM bucket
     table and defers per-row version state to first touch — the
     section 7 fast path. Otherwise, scan every persistent row: fix
     torn version updates, rebuild the index and the GC list, and
     optionally revert crashed-epoch writes. *)
  let scanned = ref 0 in
  let reverted = ref 0 in
  let revert_ns = ref 0.0 in
  let t1 = Stats.now stats0 in
  (* Scrub and a dropped log both force the eager scan: the former to
     verify every row, the latter to revert the unreplayable epoch. *)
  let lazy_path =
    config.Config.persistent_index && (not config.Config.revert_on_recovery)
    && (not scrub) && (not !log_dropped)
    && t.pindex <> None
  in
  let do_revert = config.Config.revert_on_recovery || !log_dropped in
  (* Rows whose v2 carries the crashed epoch's SID but fails its
     checksum. A genuine torn write of the crashed epoch is made whole
     by the replay; one fabricated by bit-rot (a stable SID rotted into
     the crashed epoch) is not, so judgement is deferred to after the
     replay. Until then the slot is left untouched — in particular the
     revert below skips it, so the post-replay check can still tell the
     two apart. *)
  let suspects = ref [] in
  if lazy_path then begin
    let pix = match t.pindex with Some p -> p | None -> assert false in
    PIdx.iter_recovered pix stats0 ~crashed_epoch:crashed ~f:(fun ~key ~table ~base ->
        incr scanned;
        let row = Row.make ~key ~table ~home_core:0 ~prow_base:base ~created_epoch:0 in
        row.Row.mirror_loaded <- false;
        row.Row.lazily_recovered <- true;
        index_insert t stats0 ~table ~key row);
    (* Stale versions are now collected lazily, so the crashed epoch's
       durable-GC dedup set must survive past the replay. *)
    t.retain_gc_dedup <- true
  end
  else begin
    (* With a persistent index maintained but the scan path taken (the
       TPC-C revert mode), still repair crashed-epoch bucket tags so
       the table stays consistent for future recoveries. *)
    (match t.pindex with
    | Some pix ->
        PIdx.iter_recovered pix stats0 ~crashed_epoch:crashed ~f:(fun ~key:_ ~table:_ ~base:_ ->
            ())
    | None -> ());
  Slab.iter_allocated t.row_pool ~f:(fun ~base ->
      incr scanned;
      if scrub && not (Prow.check_id t.pmem ~base) then
        (* The identity header fails its checksum: nothing about this
           slot can be trusted. Leave it unindexed and report it —
           the key as read may itself be garbage. *)
        report_damage ~table:(-1) ~key:(Prow.peek_key t.pmem ~base) `Header
      else begin
      let key, table, v1, v2 = Prow.read_header t.pmem stats0 ~base in
      (* Torn case 1: a GC move copied the SID (and possibly the
         pointer) to v1 but did not finish nulling v2. Complete it. *)
      let v1, v2 =
        if
          (not (Sid.is_none v1.Prow.sid))
          && Sid.compare v1.Prow.sid v2.Prow.sid = 0
          && Sid.epoch_of v1.Prow.sid <> crashed
        then begin
          Prow.repair_case1 t.pmem stats0 ~base ();
          Prow.peek_versions t.pmem ~base
        end
        else (v1, v2)
      in
      (* Torn case 2: v2's SID was nulled but not its pointer. *)
      let v2 =
        if Sid.is_none v2.Prow.sid && not (Vptr.is_null v2.Prow.ptr) then begin
          Prow.repair_case2 t.pmem stats0 ~base ();
          { Prow.sid = Sid.none; ptr = Vptr.null }
        end
        else v2
      in
      (* Scrub: verify v2 against its checksum word. Slots carrying the
         crashed epoch's SID are judged after the replay instead. *)
      let suspect = ref false in
      let v2 =
        if not scrub then v2
        else if (not (Sid.is_none v2.Prow.sid)) && Sid.epoch_of v2.Prow.sid = crashed
        then begin
          if Prow.check_slot t.pmem ~base ~slot:`V2 = Prow.Slot_corrupt then
            suspect := true;
          v2
        end
        else
          match Prow.check_slot t.pmem ~base ~slot:`V2 with
          | Prow.Slot_ok -> v2
          | Prow.Slot_stale_crc ->
              Prow.rewrite_slot_crc t.pmem stats0 ~base ~slot:`V2;
              incr crc_repaired;
              v2
          | Prow.Slot_corrupt ->
              (* A stable current version fails its checksum: the data
                 is lost. Drop the version so reads fall back to v1 (or
                 to absence) and report the damage loudly. *)
              report_damage ~table ~key `Current_version;
              Prow.set_version t.pmem stats0 ~base ~slot:`V2 ~sid:Sid.none ~ptr:Vptr.null ();
              { Prow.sid = Sid.none; ptr = Vptr.null }
      in
      (* Revert of crashed-epoch writes: configured (TPC-C, section
         6.2.3) or forced because the epoch's log was dropped. *)
      let v2 =
        if
          do_revert && (not !suspect)
          && (not (Sid.is_none v2.Prow.sid))
          && Sid.epoch_of v2.Prow.sid = crashed
        then begin
          let r0 = Stats.now stats0 in
          Prow.set_version t.pmem stats0 ~base ~slot:`V2 ~sid:Sid.none ~ptr:Vptr.null ();
          incr reverted;
          revert_ns := !revert_ns +. (Stats.now stats0 -. r0);
          { Prow.sid = Sid.none; ptr = Vptr.null }
        end
        else v2
      in
      (* Scrub: verify v1. With a live v2 it is only the stale version;
         without one it was the row's current value. *)
      let v1 =
        if not scrub then v1
        else
          match Prow.check_slot t.pmem ~base ~slot:`V1 with
          | Prow.Slot_ok -> v1
          | Prow.Slot_stale_crc ->
              Prow.rewrite_slot_crc t.pmem stats0 ~base ~slot:`V1;
              incr crc_repaired;
              v1
          | Prow.Slot_corrupt ->
              let was_current = Sid.is_none v2.Prow.sid && not !suspect in
              (* A stale version whose value bytes were in flight at the
                 crash was being overwritten by the crashed epoch (half
                 or pool-slot reuse behind a torn-back header): drop it
                 silently — the turnover was legal and the current
                 version survives. Anything else is media damage. *)
              let turnover =
                (not was_current)
                && Prow.value_in_crash_turnover t.pmem ~base v1.Prow.ptr
              in
              if not turnover then
                report_damage ~table ~key
                  (if was_current then `Current_version else `Stale_version);
              if not was_current then incr stale_dropped;
              Prow.set_version t.pmem stats0 ~base ~slot:`V1 ~sid:Sid.none ~ptr:Vptr.null ();
              { Prow.sid = Sid.none; ptr = Vptr.null }
      in
      let row = Row.make ~key ~table ~home_core:0 ~prow_base:base ~created_epoch:0 in
      row.Row.pv1 <- { Row.psid = v1.Prow.sid; pptr = v1.Prow.ptr; fresh = false };
      row.Row.pv2 <- { Row.psid = v2.Prow.sid; pptr = v2.Prow.ptr; fresh = false };
      index_insert t stats0 ~table ~key row;
      if !suspect then suspects := (base, table, key, row) :: !suspects;
      (* Rebuild the GC list (section 5.5): two live versions whose
         recent one predates the crash and whose stale one needs the
         major collector. *)
      if
        (not (Sid.is_none v1.Prow.sid))
        && (not (Sid.is_none v2.Prow.sid))
        && Sid.epoch_of v2.Prow.sid <> crashed
        && (is_pool v1.Prow.ptr || not config.Config.minor_gc)
      then begin
        t.gc_list <- row :: t.gc_list;
        row.Row.in_gc_list <- true
      end
      end)
  end;
  let t_scan = Stats.now stats0 -. t1 -. !revert_ns in
  if Tracer.enabled t.tracer then begin
    Tracer.complete t.tracer ~core:0 ~name:"load-log" ~cat:"recovery" ~ts:t0 ~dur:t_load ();
    Tracer.complete t.tracer ~core:0 ~name:"revert" ~cat:"recovery"
      ~args:[ ("rows", Nv_obs.Jsonx.Int !reverted) ]
      ~ts:t1 ~dur:!revert_ns ();
    Tracer.complete t.tracer ~core:0 ~name:"scan" ~cat:"recovery"
      ~args:[ ("rows", Nv_obs.Jsonx.Int !scanned) ]
      ~ts:t1
      ~dur:(t_scan +. !revert_ns)
      ()
  end;
  rhook Rec_scan_done;
  (* Deterministic replay of the crashed epoch. *)
  let t2 = Stats.now stats0 in
  ignore (barrier t);
  let replayed =
    match log_entries with
    | None -> 0
    | Some entries ->
        let txns = Array.of_list (List.map rebuild entries) in
        (match replay_mode with
        | `Caracal -> ignore (run_epoch_internal ~replay:true t txns)
        | `Aria -> ignore (run_epoch_aria_internal ~replay:true t txns));
        Array.length txns
  in
  let t_replay = total_time_ns t -. t2 in
  (* Judge the deferred suspects. A genuine torn crashed-epoch write
     was just rewritten by the replay (deterministic inputs produce the
     same write set), so its slot now verifies; one that still fails
     was fabricated by media corruption — or belongs to an epoch whose
     log was dropped — and is reverted and reported. *)
  List.iter
    (fun (base, table, key, (row : Row.t)) ->
      match Prow.check_slot t.pmem ~base ~slot:`V2 with
      | Prow.Slot_ok -> ()
      | Prow.Slot_stale_crc ->
          Prow.rewrite_slot_crc t.pmem stats0 ~base ~slot:`V2;
          incr crc_repaired
      | Prow.Slot_corrupt ->
          report_damage ~table ~key `Current_version;
          Prow.set_version t.pmem stats0 ~base ~slot:`V2 ~sid:Sid.none ~ptr:Vptr.null ();
          row.Row.pv2 <- { Row.psid = Sid.none; pptr = Vptr.null; fresh = false })
    !suspects;
  if Tracer.enabled t.tracer then
    Tracer.complete t.tracer ~core:0 ~name:"replay" ~cat:"recovery"
      ~args:[ ("txns", Nv_obs.Jsonx.Int replayed) ]
      ~ts:t2 ~dur:t_replay ();
  rhook Rec_replay_done;
  let report =
    {
      Report.load_log_ns = t_load;
      scan_ns = t_scan;
      revert_ns = !revert_ns;
      replay_ns = t_replay;
      total_ns = total_time_ns t;
      scanned_rows = !scanned;
      reverted_rows = !reverted;
      replayed_txns = replayed;
      scrubbed = scrub;
      log_dropped = !log_dropped;
      crc_repaired = !crc_repaired;
      stale_dropped = !stale_dropped;
      alloc_salvaged;
      alloc_corrupt_entries = alloc_corrupt;
      counter_salvaged = !counter_salvaged;
      damage = List.rev !damage;
    }
  in
  (t, report)
