(** Multi-partition deterministic execution without two-phase commit.

    The introduction's distributed-transactions argument (after
    Calvin): because the serial order is fixed before execution and
    transactions cannot abort for concurrency reasons, a batch can
    commit across partitions with {e no} two-phase commit — every node
    independently reaches the same decisions.

    This module shards tables by key hash across N nodes — any
    {!Engine_intf.S} instances — and processes batches with Aria-style
    deterministic concurrency control:

    + {b snapshot execution}: every transaction runs against the
      epoch-start snapshot; reads are routed to the owning partition
      (remote reads bill a configurable network round-trip to the
      reader's core on Db-backed nodes) and writes are buffered;
    + {b deterministic reservations}: the shared {!Determinism} rule —
      each key records the smallest transaction SID that wrote it; a
      transaction defers (for client retry) if any key it read or wrote
      carries a smaller reservation — the same rule on every node, no
      coordination;
    + {b apply}: each partition commits its share of the surviving
      writes as a local epoch (logged and checkpointed by its own
      engine), so per-node crash recovery works unchanged.

    The coordinator retains recent apply batches so a node that crashed
    before applying an epoch can be caught up ([recover_node]), exactly
    like a lagging replica.

    {!Engine} packages a whole cluster as one {!Engine_intf.S}
    instance, so harness code (and the conformance suite) can drive a
    sharded deployment exactly like a single engine. *)

type t

val create :
  config:Config.t ->
  tables:Table.t list ->
  nodes:int ->
  ?remote_read_ns:float ->
  unit ->
  t
(** [nodes] Db-backed (Aria CC) engines sharing a schema; keys are
    sharded by hash. [remote_read_ns] (default 2000 — a fast datacenter
    RTT) is added to every cross-partition read. Installs the Db crash
    + catch-up recovery capability. *)

val create_packed :
  tables:Table.t list ->
  nodes:int ->
  mk:(int -> Engine_intf.packed) ->
  ?recover_node_fn:(int -> pmem:Nv_nvmm.Pmem.t -> (Engine_intf.packed * Db.t option) * int) ->
  ?remote_read_ns:float ->
  ?cores:int ->
  ?parallelism:int ->
  unit ->
  t
(** Engine-generic cluster: node [i] is [mk i]. [recover_node_fn]
    rebuilds a crashed node from its torn arena and reports the epoch
    it recovered to (the coordinator replays retained apply batches
    above it); without it, [recover_node] raises. [cores]/[parallelism]
    size the simulated core rotation and the coordinator's domain
    pool. *)

val nodes : t -> int

val node : t -> int -> Engine_intf.packed
(** Direct access to one partition's engine (reads, reports).
    @raise Invalid_argument while the node is down. *)

val node_db : t -> int -> Db.t
(** The raw NVCaracal handle of a Db-backed node ({!create}).
    @raise Invalid_argument for generic nodes or while down. *)

val owner : t -> table:int -> key:int64 -> int
(** The partition a key lives on. *)

val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit
(** Rows are routed to their owners. *)

val run_epoch : t -> Txn.t array -> Report.epoch_stats * Txn.t array
(** Process one batch across all partitions; returns merged stats
    (duration = the slowest node) and the deferred transactions. *)

val read : t -> table:int -> key:int64 -> bytes option
(** Committed read, routed to the owner (uncharged; client-side). *)

val iter_committed : t -> table:int -> (int64 -> bytes -> unit) -> unit
(** Visit every live node's committed rows of [table] (owners are
    disjoint, so each key appears once). *)

val last_batch_outcomes : t -> [ `Committed | `Aborted | `Deferred ] array
(** Per-transaction outcome of the last [run_epoch], in batch order. *)

val epoch : t -> int

val crash_node : t -> int -> rng:Nv_util.Rng.t -> unit
(** Tear one node's NVMM to a crash image (requires a crash-safe
    configuration). The node is unusable until [recover_node]. *)

val recover_node : t -> int -> unit
(** Rebuild the node from its NVMM image and replay retained apply
    batches until it rejoins at the cluster epoch. *)

val total_time_ns : t -> float
val committed_txns : t -> int

val aborted_txns : t -> int
(** Cumulative user aborts (deferrals are not aborts: they commit on
    resubmission). *)

val introspect : t -> Engine_intf.introspection
(** Cluster-wide inspection: wide-execution telemetry summed over live
    nodes and the digest of the union of all partitions' committed
    rows — equal to a single node's digest over the same committed
    state, whatever the node count. *)

val encode_write : table:int -> key:int64 -> bytes -> bytes
(** Serialize one blind apply-write (the input record shipped to a
    partition's engine); {!apply_txn_of_input} is its inverse. The
    served shard path reuses this codec, so a routed cluster's journals
    replay with the same [rebuild] as an in-process one. *)

val apply_txn_of_input : bytes -> Txn.t

(** The cluster as one {!Engine_intf.S} instance. [pmem], [crash] and
    [recover] raise [Invalid_argument] — arenas are per-node; use
    {!crash_node}/{!recover_node}. *)

type engine_config = { e_config : Config.t; e_nodes : int }

module Engine : Engine_intf.S with type t = t and type config = engine_config
