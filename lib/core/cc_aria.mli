(** Aria-style concurrency control (section 7 future work, after Lu et
    al.): snapshot execution + deterministic reservations.

    An epoch runs: input log → major GC + cache eviction → phase 1
    (every transaction executes against the epoch-start snapshot,
    buffering writes privately and recording its read set) → phase 2
    (each key keeps the smallest SID that wrote it; a transaction whose
    read or write set hits a smaller reservation is deferred to the
    next epoch) → apply surviving writes through the shared
    dual-version NVMM path in deterministic key order → checkpoint.

    No declared write sets; deletes are not supported. [run]'s second
    component is the deferred transactions, which the harness feeds
    into the next batch. *)

include Cc_intf.S
