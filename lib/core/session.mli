(** Client session: submission queue, epoch batching, and
    checkpoint-gated result visibility.

    Clients of a deterministic database submit one-shot transactions
    and get their outcome later; results must not be exposed before the
    epoch is durably checkpointed (paper section 6.2.3 — otherwise a
    crash could revoke an answer the client already saw). A session
    queues submissions, runs an epoch when [flush]ed (or automatically
    once [epoch_target] submissions are queued, if [auto_flush]), and
    answers [result] only for transactions whose epoch has committed.

    A session is engine-generic: it drives any {!Engine_intf.S}
    implementation through the packed form, so the same client code
    runs against the deterministic engine, Aria, or the Zen baseline.
    Transactions an engine defers to the next epoch (Aria's conflict
    victims) stay pending under their original handle and lead the next
    batch, preserving submission order.

    A transaction's effects on values captured by its body's closures
    follow the same rule: act on them only after [result] reports
    [`Committed]. *)

type t

type handle
(** Ticket for one submitted transaction. *)

val of_engine : engine:Engine_intf.packed -> ?epoch_target:int -> ?auto_flush:bool -> unit -> t
(** Wrap any loaded engine. [epoch_target] (default 1000) is the queue
    depth at which [auto_flush] (default true) runs an epoch: the flush
    happens immediately once the [epoch_target]-th transaction is
    queued. Raises [Invalid_argument] if [epoch_target <= 0]. *)

val create : db:Db.t -> ?epoch_target:int -> ?auto_flush:bool -> unit -> t
(** Wrap an existing (loaded) serial deterministic database; shorthand
    for [of_engine] over {!Db.Serial_engine}. *)

val submit : t -> Txn.t -> handle
(** Queue a transaction; runs an epoch afterwards if auto-flush
    triggers. *)

val flush : t -> Report.epoch_stats option
(** Run an epoch with everything queued; [None] when the queue is empty
    (or the engine reports no epoch statistics, as Zen does not). After
    [flush] returns, the epoch is checkpointed and its results are
    visible; engine-deferred transactions remain pending. *)

val result : t -> handle -> [ `Committed | `Aborted ] option
(** [None] while the transaction's epoch has not yet run (or the engine
    deferred it); the final outcome afterwards. Raises
    [Invalid_argument] on a handle this session never issued. *)

val poll : t -> handle -> [ `Pending | `Committed | `Aborted ]
(** Non-blocking view of [result]: [`Pending] until the transaction's
    epoch has checkpointed. *)

val on_result : t -> (handle -> [ `Committed | `Aborted ] -> unit) -> unit
(** Register a callback fired once per transaction, at the moment its
    outcome becomes visible (after its epoch's checkpoint, during
    [flush]). Replaces any previously registered callback. *)

val pending : t -> int
(** Queued, not-yet-executed transactions (including engine-deferred
    resubmissions). *)

val submitted : t -> int
