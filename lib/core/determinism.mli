(** Aria-style deterministic commit/defer verdicts (paper section 2.2,
    after Calvin/Aria): because the serial order is fixed before
    execution, every node can decide each transaction's fate from the
    batch alone — no voting, no two-phase commit.

    This is the {e single} copy of the rule. {!Partition} (in-process
    sharding) and the served multi-shard path ([Nv_frontend.Shard])
    both call it, which is what makes a routed cluster and its
    single-node replay bit-for-bit equivalent. *)

type verdict = Commit | Defer | Abort

val verdicts :
  writes:(int * int64) list array ->
  reads:(int * int64) list array ->
  user_aborted:bool array ->
  verdict array
(** Per-transaction verdicts for one batch in serial (array) order.
    [writes.(i)]/[reads.(i)] are the (table, key) sets transaction [i]
    buffered/observed during snapshot execution; duplicates are
    harmless. Each written key is reserved by the smallest-index
    non-aborted writer; a transaction defers when any key it read or
    wrote carries a smaller reservation, aborts when [user_aborted.(i)],
    and commits otherwise.
    @raise Invalid_argument when the arrays disagree in length. *)
