module Rng = Nv_util.Rng
module Dpool = Nv_util.Dpool

(* A live node is any {!Engine_intf.S} instance. Db-backed nodes keep
   the raw handle too: it enables the simulated-cost extras (charged
   snapshot reads, remote-read RTT billing) that the generic seam does
   not expose. Generic nodes read committed state uncharged — the
   values are identical, only the simulated clocks differ. *)
type node_up = { packed : Engine_intf.packed; db : Db.t option }
type node_state = Up of node_up | Down of Nv_nvmm.Pmem.t

type t = {
  tables : Table.t list;
  n_nodes : int;
  remote_read_ns : float;
  cores : int;
  mutable nodes : node_state array;
  mutable epoch : int;
  mutable committed : int;
  mutable aborted_total : int;
  mutable last_outcomes : [ `Committed | `Aborted | `Deferred ] array;
  pool : Dpool.t;
  (* Replaying a crashed node needs its engine back plus its epoch
     counter; both are engine-specific, so the recovery recipe is a
     capability installed by the constructor. *)
  recover_node_fn : (int -> pmem:Nv_nvmm.Pmem.t -> node_up * int) option;
  (* Retained apply batches for node catch-up: (epoch, per-node inputs). *)
  retained : (int * bytes array array) Queue.t;
  retention : int;
}

(* --- Apply-batch transactions: one blind write per key, with a
   self-describing input so per-node recovery can replay them. --- *)

let encode_write ~table ~key data =
  let len = Bytes.length data in
  let b = Bytes.create (16 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int table);
  Bytes.set_int64_le b 4 key;
  Bytes.set_int32_le b 12 (Int32.of_int len);
  Bytes.blit data 0 b 16 len;
  b

let apply_txn_of_input input =
  let table = Int32.to_int (Bytes.get_int32_le input 0) in
  let key = Bytes.get_int64_le input 4 in
  let len = Int32.to_int (Bytes.get_int32_le input 12) in
  let data = Bytes.sub input 16 len in
  Txn.make ~input ~write_set:[] (fun ctx -> ctx.Txn.Ctx.write ~table ~key data)

(* --- Construction --- *)

let create_raw ~tables ~nodes ~mk ~recover_node_fn ~remote_read_ns ~cores ~parallelism =
  assert (nodes > 0);
  {
    tables;
    n_nodes = nodes;
    remote_read_ns;
    cores;
    nodes = Array.init nodes (fun i -> Up (mk i));
    epoch = 0;
    committed = 0;
    aborted_total = 0;
    last_outcomes = [||];
    pool = Dpool.shared ~width:parallelism;
    recover_node_fn;
    retained = Queue.create ();
    retention = 64;
  }

let create_packed ~tables ~nodes ~mk ?recover_node_fn ?(remote_read_ns = 2000.0)
    ?(cores = 1) ?(parallelism = 1) () =
  let recover_node_fn =
    Option.map
      (fun f i ~pmem ->
        let (packed, db), ep = f i ~pmem in
        ({ packed; db }, ep))
      recover_node_fn
  in
  create_raw ~tables ~nodes
    ~mk:(fun i -> { packed = mk i; db = None })
    ~recover_node_fn ~remote_read_ns ~cores ~parallelism

let create ~config ~tables ~nodes ?(remote_read_ns = 2000.0) () =
  let mk _ =
    let db = Db.create ~config ~tables () in
    { packed = Engine_intf.Packed ((module Db.Aria_engine), db); db = Some db }
  in
  let recover_node_fn _ ~pmem =
    let recovered, _ =
      Db.recover ~config ~tables ~pmem ~rebuild:apply_txn_of_input ~replay_mode:`Aria ()
    in
    ( { packed = Engine_intf.Packed ((module Db.Aria_engine), recovered); db = Some recovered },
      Db.epoch recovered )
  in
  create_raw ~tables ~nodes ~mk ~recover_node_fn:(Some recover_node_fn) ~remote_read_ns
    ~cores:config.Config.cores ~parallelism:config.Config.parallelism

(* Fan [f 0 .. f (n_nodes - 1)] over the pool: nodes are independent
   engines, so per-node work (bulk load, local apply epochs) carries no
   shared state beyond each node's own engine. Node [i] stays on stripe
   [i mod d] in ascending order, so each node's work sequence is the
   serial one at any width. *)
let each_node t f =
  let d = min (Dpool.width t.pool) t.n_nodes in
  if d <= 1 then
    for i = 0 to t.n_nodes - 1 do
      f i
    done
  else
    ignore
      (Dpool.run t.pool ~n:d (fun s ->
           let i = ref s in
           while !i < t.n_nodes do
             f !i;
             i := !i + d
           done))

let nodes t = t.n_nodes

let up t i =
  match t.nodes.(i) with
  | Up n -> n
  | Down _ -> invalid_arg (Printf.sprintf "Partition: node %d is down" i)

let node t i = (up t i).packed

let node_db t i =
  match (up t i).db with
  | Some db -> db
  | None -> invalid_arg "Partition.node_db: node is not Db-backed"

let owner t ~table ~key = Nv_util.Fnv.combine (Nv_util.Fnv.hash_int64 key) table mod t.n_nodes
let epoch t = t.epoch
let committed_txns t = t.committed
let aborted_txns t = t.aborted_total
let last_batch_outcomes t = t.last_outcomes

let total_time_ns t =
  Array.fold_left
    (fun acc n ->
      match n with
      | Up { packed = Engine_intf.Packed ((module E), e); _ } ->
          Float.max acc (E.total_time_ns e)
      | Down _ -> acc)
    0.0 t.nodes

let bulk_load t rows =
  let per_node = Array.make t.n_nodes [] in
  Seq.iter
    (fun ((table, key, _) as row) ->
      let o = owner t ~table ~key in
      per_node.(o) <- row :: per_node.(o))
    rows;
  each_node t (fun i ->
      let (Engine_intf.Packed ((module E), e)) = node t i in
      E.bulk_load e (List.to_seq (List.rev per_node.(i))));
  t.epoch <- 1

(* Reads during snapshot execution: the epoch-start snapshot of the
   owning node. Db-backed nodes go through the charged snapshot-read
   path; generic engines serve the (identical) committed value
   uncharged. *)
let snapshot_read t o ~core ~table ~key =
  match up t o with
  | { db = Some db; _ } -> Db.snapshot_read db ~core ~table ~key
  | { packed = Engine_intf.Packed ((module E), e); _ } -> E.read_committed e ~table ~key

let bill t home ~core ~ns =
  match (up t home).db with Some db -> Db.advance_core db ~core ~ns | None -> ()

(* --- Epoch processing --- *)

let run_epoch t txns =
  t.epoch <- t.epoch + 1;
  let n = Array.length txns in
  let cores = t.cores in
  let t_before = total_time_ns t in
  (* Phase 1: snapshot execution. Reads route to the owning partition;
     remote reads bill a network round trip on top. *)
  let buffers = Array.init n (fun _ -> Hashtbl.create 8) in
  let read_sets = Array.init n (fun _ -> Hashtbl.create 8) in
  let user_aborted = Array.make n false in
  for i = 0 to n - 1 do
    let home = i mod t.n_nodes in
    let core = i / t.n_nodes mod cores in
    let buffer = buffers.(i) and rset = read_sets.(i) in
    let read ~table ~key =
      match Hashtbl.find_opt buffer (table, key) with
      | Some v -> Some v
      | None ->
          Hashtbl.replace rset (table, key) ();
          let o = owner t ~table ~key in
          if o <> home then bill t home ~core ~ns:t.remote_read_ns;
          snapshot_read t o ~core ~table ~key
    in
    let write ~table ~key data =
      bill t home ~core ~ns:25.0;
      Hashtbl.replace buffer (table, key) data
    in
    let unsupported _ = invalid_arg "Partition: operation not supported in partitioned mode" in
    let ctx =
      {
        Txn.Ctx.sid = Sid.make ~epoch:t.epoch ~seq:i;
        core;
        read;
        write;
        delete = (fun ~table:_ ~key:_ -> unsupported ());
        range_read = (fun ~table:_ ~lo:_ ~hi:_ -> unsupported ());
        max_below = (fun ~table:_ _ -> unsupported ());
        min_above = (fun ~table:_ _ -> unsupported ());
        abort = (fun () -> raise Txn.Aborted);
        compute = (fun ~ops -> bill t home ~core ~ns:(float_of_int ops *. 25.0));
        counter_next = (fun ~idx:_ -> unsupported ());
        notes = Hashtbl.create 4;
      }
    in
    match txns.(i).Txn.body ctx with
    | () -> ()
    | exception Txn.Aborted ->
        user_aborted.(i) <- true;
        Hashtbl.reset buffer
  done;
  (* Phase 2: the shared reservation rule — computed identically (and
     without coordination) from the deterministic batch. *)
  let keys h = Hashtbl.fold (fun k _ acc -> k :: acc) h [] in
  let verdicts =
    Determinism.verdicts
      ~writes:(Array.map keys buffers)
      ~reads:(Array.map keys read_sets)
      ~user_aborted
  in
  let deferred = ref [] in
  let aborted = ref 0 in
  let decisions = ref [] in
  let outcomes = Array.make n `Committed in
  for i = 0 to n - 1 do
    match verdicts.(i) with
    | Determinism.Abort ->
        incr aborted;
        t.aborted_total <- t.aborted_total + 1;
        outcomes.(i) <- `Aborted
    | Determinism.Defer ->
        deferred := txns.(i) :: !deferred;
        incr aborted;
        outcomes.(i) <- `Deferred
    | Determinism.Commit ->
        t.committed <- t.committed + 1;
        Hashtbl.iter (fun key data -> decisions := (key, data) :: !decisions) buffers.(i)
  done;
  t.last_outcomes <- outcomes;
  (* Apply: each partition commits its share as a local (logged,
     checkpointed) epoch — no two-phase commit. *)
  let per_node = Array.make t.n_nodes [] in
  List.iter
    (fun (((table, key) : int * int64), data) ->
      let o = owner t ~table ~key in
      per_node.(o) <- encode_write ~table ~key data :: per_node.(o))
    (List.sort compare !decisions);
  let retained_inputs = Array.map (fun l -> Array.of_list (List.rev l)) per_node in
  each_node t (fun o ->
      let (Engine_intf.Packed ((module E), e)) = node t o in
      let batch = Array.map apply_txn_of_input retained_inputs.(o) in
      let _, d = E.run_batch e batch in
      assert (Array.length d = 0));
  Queue.push (t.epoch, retained_inputs) t.retained;
  if Queue.length t.retained > t.retention then ignore (Queue.pop t.retained);
  let t_after = total_time_ns t in
  ( {
      Report.epoch = t.epoch;
      txns = n;
      aborted = !aborted;
      version_writes = n;
      persistent_writes = List.length !decisions;
      transient_only_writes = 0;
      minor_gc = 0;
      major_gc = 0;
      evicted = 0;
      cache_hits = 0;
      cache_misses = 0;
      log_bytes = 0;
      duration_ns = t_after -. t_before;
      phases = [];
    },
    Array.of_list (List.rev !deferred) )

let read t ~table ~key =
  let (Engine_intf.Packed ((module E), e)) = node t (owner t ~table ~key) in
  E.read_committed e ~table ~key

(* --- Node failure and catch-up --- *)

let crash_node t i ~rng =
  let (Engine_intf.Packed ((module E), e)) = node t i in
  let pmem = E.crash e ~rng in
  t.nodes.(i) <- Down pmem

let recover_node t i =
  match t.nodes.(i) with
  | Up _ -> ()
  | Down pmem ->
      let recover_fn =
        match t.recover_node_fn with
        | Some f -> f
        | None -> invalid_arg "Partition.recover_node: no recovery capability installed"
      in
      let recovered, node_epoch = recover_fn i ~pmem in
      (* Catch up from retained apply batches. *)
      let node_epoch = ref node_epoch in
      let (Engine_intf.Packed ((module E), e)) = recovered.packed in
      Queue.iter
        (fun (ep, per_node) ->
          if ep > !node_epoch then begin
            let batch = Array.map apply_txn_of_input per_node.(i) in
            let _, d = E.run_batch e batch in
            assert (Array.length d = 0);
            node_epoch := ep
          end)
        t.retained;
      if !node_epoch <> t.epoch then
        failwith
          (Printf.sprintf "Partition.recover_node: node %d at epoch %d, cluster at %d \
                           (retention too short)"
             i !node_epoch t.epoch);
      t.nodes.(i) <- Up recovered

(* --- Uniform inspection over all live nodes --- *)

let iter_committed t ~table f =
  Array.iter
    (fun n ->
      match n with
      | Up { packed = Engine_intf.Packed ((module E), e); _ } -> E.iter_committed e ~table f
      | Down _ -> ())
    t.nodes

let introspect t =
  let wide = ref 0 and reasons = Hashtbl.create 8 in
  Array.iter
    (fun n ->
      match n with
      | Up { packed; _ } ->
          let i = match packed with Engine_intf.Packed ((module E), e) -> E.introspect e in
          wide := !wide + i.Engine_intf.wide_execs;
          List.iter
            (fun (label, c) ->
              Hashtbl.replace reasons label
                (c + Option.value ~default:0 (Hashtbl.find_opt reasons label)))
            i.Engine_intf.serial_reasons
      | Down _ -> ())
    t.nodes;
  {
    Engine_intf.wide_execs = !wide;
    serial_reasons =
      List.sort compare (Hashtbl.fold (fun l c acc -> (l, c) :: acc) reasons []);
    state_digest =
      Engine_intf.digest_committed ~tables:t.tables ~iter:(fun ~table f ->
          iter_committed t ~table f);
  }

(* ------------------------------------------------------------------ *)
(* Engine instance: the whole cluster behind the engine seam, so the
   conformance suite (and any harness) can drive a sharded deployment
   exactly like a single node.                                         *)

type engine_config = { e_config : Config.t; e_nodes : int }

module Engine : Engine_intf.S with type t = t and type config = engine_config = struct
  type nonrec t = t
  type config = engine_config

  let name = "partition"

  let create ~config:{ e_config; e_nodes } ~tables () =
    create ~config:e_config ~tables ~nodes:e_nodes ()

  let bulk_load = bulk_load

  let run_batch t txns =
    let stats, deferred = run_epoch t txns in
    (Some stats, deferred)

  let read_committed = read
  let iter_committed = iter_committed
  let last_batch_outcomes = last_batch_outcomes
  let committed_txns = committed_txns
  let aborted_txns = aborted_txns
  let total_time_ns = total_time_ns
  let introspect = introspect

  let mem_report t =
    let zero =
      {
        Report.nvmm_rows = 0;
        nvmm_values = 0;
        nvmm_log = 0;
        nvmm_freelists = 0;
        dram_index = 0;
        dram_transient = 0;
        dram_cache = 0;
      }
    in
    Array.fold_left
      (fun (acc : Report.mem_report) n ->
        match n with
        | Up { packed = Engine_intf.Packed ((module E), e); _ } ->
            let m = E.mem_report e in
            {
              Report.nvmm_rows = acc.Report.nvmm_rows + m.Report.nvmm_rows;
              nvmm_values = acc.nvmm_values + m.Report.nvmm_values;
              nvmm_log = acc.nvmm_log + m.Report.nvmm_log;
              nvmm_freelists = acc.nvmm_freelists + m.Report.nvmm_freelists;
              dram_index = acc.dram_index + m.Report.dram_index;
              dram_transient = acc.dram_transient + m.Report.dram_transient;
              dram_cache = acc.dram_cache + m.Report.dram_cache;
            }
        | Down _ -> acc)
      zero t.nodes

  let counters_total t =
    let zero =
      {
        Nv_nvmm.Stats.dram_reads = 0;
        dram_writes = 0;
        nvmm_block_reads = 0;
        nvmm_block_writes = 0;
        nvmm_seq_bytes = 0;
        flushes = 0;
        fences = 0;
        compute_ops = 0;
        media_faults = 0;
      }
    in
    Array.fold_left
      (fun (acc : Nv_nvmm.Stats.counters) n ->
        match n with
        | Up { packed = Engine_intf.Packed ((module E), e); _ } ->
            let c = E.counters_total e in
            {
              Nv_nvmm.Stats.dram_reads = acc.Nv_nvmm.Stats.dram_reads + c.Nv_nvmm.Stats.dram_reads;
              dram_writes = acc.dram_writes + c.Nv_nvmm.Stats.dram_writes;
              nvmm_block_reads = acc.nvmm_block_reads + c.Nv_nvmm.Stats.nvmm_block_reads;
              nvmm_block_writes = acc.nvmm_block_writes + c.Nv_nvmm.Stats.nvmm_block_writes;
              nvmm_seq_bytes = acc.nvmm_seq_bytes + c.Nv_nvmm.Stats.nvmm_seq_bytes;
              flushes = acc.flushes + c.Nv_nvmm.Stats.flushes;
              fences = acc.fences + c.Nv_nvmm.Stats.fences;
              compute_ops = acc.compute_ops + c.Nv_nvmm.Stats.compute_ops;
              media_faults = acc.media_faults + c.Nv_nvmm.Stats.media_faults;
            }
        | Down _ -> acc)
      zero t.nodes

  let set_observability ?tracer ?metrics ?profile ?name t =
    Array.iteri
      (fun i n ->
        match n with
        | Up { packed = Engine_intf.Packed ((module E), e); _ } ->
            let name = Option.map (fun nm -> Printf.sprintf "%s/node%d" nm i) name in
            E.set_observability ?tracer ?metrics ?profile ?name e
        | Down _ -> ())
      t.nodes

  let pmem _ = invalid_arg "Partition.Engine.pmem: per-node arenas, use node accessors"

  let crash ?faults:_ _ ~rng:_ =
    invalid_arg "Partition.Engine.crash: crash individual nodes with crash_node"

  let recover ~config:_ ~tables:_ ~pmem:_ ~rebuild:_ () =
    invalid_arg "Partition.Engine.recover: recover individual nodes with recover_node"
end
