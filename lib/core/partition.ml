module Rng = Nv_util.Rng
module Dpool = Nv_util.Dpool

type node_state = Up of Db.t | Down of Nv_nvmm.Pmem.t

type t = {
  config : Config.t;
  tables : Table.t list;
  n_nodes : int;
  remote_read_ns : float;
  mutable nodes : node_state array;
  mutable epoch : int;
  mutable committed : int;
  pool : Dpool.t;
  (* Retained apply batches for node catch-up: (epoch, per-node inputs). *)
  retained : (int * bytes array array) Queue.t;
  retention : int;
}

let create ~config ~tables ~nodes ?(remote_read_ns = 2000.0) () =
  assert (nodes > 0);
  {
    config;
    tables;
    n_nodes = nodes;
    remote_read_ns;
    nodes = Array.init nodes (fun _ -> Up (Db.create ~config ~tables ()));
    epoch = 0;
    committed = 0;
    pool = Dpool.shared ~width:config.Config.parallelism;
    retained = Queue.create ();
    retention = 64;
  }

(* Fan [f 0 .. f (n_nodes - 1)] over the pool: nodes are independent
   engines, so per-node work (bulk load, local apply epochs) carries no
   shared state beyond each node's own [Db.t]. Node [i] stays on stripe
   [i mod d] in ascending order, so each node's work sequence is the
   serial one at any width. *)
let each_node t f =
  let d = min (Dpool.width t.pool) t.n_nodes in
  if d <= 1 then
    for i = 0 to t.n_nodes - 1 do
      f i
    done
  else
    ignore
      (Dpool.run t.pool ~n:d (fun s ->
           let i = ref s in
           while !i < t.n_nodes do
             f !i;
             i := !i + d
           done))

let nodes t = t.n_nodes

let db t i =
  match t.nodes.(i) with
  | Up db -> db
  | Down _ -> invalid_arg (Printf.sprintf "Partition: node %d is down" i)

let node = db
let owner t ~table ~key = Nv_util.Fnv.combine (Nv_util.Fnv.hash_int64 key) table mod t.n_nodes
let epoch t = t.epoch
let committed_txns t = t.committed

let total_time_ns t =
  Array.fold_left
    (fun acc n -> match n with Up db -> Float.max acc (Db.total_time_ns db) | Down _ -> acc)
    0.0 t.nodes

let bulk_load t rows =
  let per_node = Array.make t.n_nodes [] in
  Seq.iter
    (fun ((table, key, _) as row) ->
      let o = owner t ~table ~key in
      per_node.(o) <- row :: per_node.(o))
    rows;
  each_node t (fun i -> Db.bulk_load (db t i) (List.to_seq (List.rev per_node.(i))));
  t.epoch <- 1

(* --- Apply-batch transactions: one blind write per key, with a
   self-describing input so per-node recovery can replay them. --- *)

let encode_write ~table ~key data =
  let len = Bytes.length data in
  let b = Bytes.create (16 + len) in
  Bytes.set_int32_le b 0 (Int32.of_int table);
  Bytes.set_int64_le b 4 key;
  Bytes.set_int32_le b 12 (Int32.of_int len);
  Bytes.blit data 0 b 16 len;
  b

let apply_txn_of_input input =
  let table = Int32.to_int (Bytes.get_int32_le input 0) in
  let key = Bytes.get_int64_le input 4 in
  let len = Int32.to_int (Bytes.get_int32_le input 12) in
  let data = Bytes.sub input 16 len in
  Txn.make ~input ~write_set:[] (fun ctx -> ctx.Txn.Ctx.write ~table ~key data)

(* --- Epoch processing --- *)

let run_epoch t txns =
  t.epoch <- t.epoch + 1;
  let n = Array.length txns in
  let cores = t.config.Config.cores in
  let t_before = total_time_ns t in
  (* Phase 1: snapshot execution. Reads route to the owning partition;
     remote reads bill a network round trip on top. *)
  let buffers = Array.init n (fun _ -> Hashtbl.create 8) in
  let read_sets = Array.init n (fun _ -> Hashtbl.create 8) in
  let user_aborted = Array.make n false in
  for i = 0 to n - 1 do
    let home = i mod t.n_nodes in
    let core = i / t.n_nodes mod cores in
    let buffer = buffers.(i) and rset = read_sets.(i) in
    let read ~table ~key =
      match Hashtbl.find_opt buffer (table, key) with
      | Some v -> Some v
      | None ->
          Hashtbl.replace rset (table, key) ();
          let o = owner t ~table ~key in
          if o <> home then Db.advance_core (db t home) ~core ~ns:t.remote_read_ns;
          Db.snapshot_read (db t o) ~core ~table ~key
    in
    let write ~table ~key data =
      Db.advance_core (db t home) ~core ~ns:25.0;
      Hashtbl.replace buffer (table, key) data
    in
    let unsupported _ = invalid_arg "Partition: operation not supported in partitioned mode" in
    let ctx =
      {
        Txn.Ctx.sid = Sid.make ~epoch:t.epoch ~seq:i;
        core;
        read;
        write;
        delete = (fun ~table:_ ~key:_ -> unsupported ());
        range_read = (fun ~table:_ ~lo:_ ~hi:_ -> unsupported ());
        max_below = (fun ~table:_ _ -> unsupported ());
        min_above = (fun ~table:_ _ -> unsupported ());
        abort = (fun () -> raise Txn.Aborted);
        compute = (fun ~ops -> Db.advance_core (db t home) ~core ~ns:(float_of_int ops *. 25.0));
        counter_next = (fun ~idx:_ -> unsupported ());
        notes = Hashtbl.create 4;
      }
    in
    match txns.(i).Txn.body ctx with
    | () -> ()
    | exception Txn.Aborted ->
        user_aborted.(i) <- true;
        Hashtbl.reset buffer
  done;
  (* Phase 2: Aria reservations — computed identically (and without
     coordination) from the deterministic batch. *)
  let reservations : (int * int64, int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun i buffer ->
      if not user_aborted.(i) then
        Hashtbl.iter
          (fun key _ ->
            match Hashtbl.find_opt reservations key with
            | Some j when j <= i -> ()
            | Some _ | None -> Hashtbl.replace reservations key i)
          buffer)
    buffers;
  let deferred = ref [] in
  let aborted = ref 0 in
  let decisions = ref [] in
  for i = 0 to n - 1 do
    if user_aborted.(i) then incr aborted
    else begin
      let earlier key =
        match Hashtbl.find_opt reservations key with Some j -> j < i | None -> false
      in
      let conflict =
        Hashtbl.fold (fun key _ acc -> acc || earlier key) buffers.(i) false
        || Hashtbl.fold (fun key () acc -> acc || earlier key) read_sets.(i) false
      in
      if conflict then begin
        deferred := txns.(i) :: !deferred;
        incr aborted
      end
      else begin
        t.committed <- t.committed + 1;
        Hashtbl.iter (fun key data -> decisions := (key, data) :: !decisions) buffers.(i)
      end
    end
  done;
  (* Apply: each partition commits its share as a local (logged,
     checkpointed) epoch — no two-phase commit. *)
  let per_node = Array.make t.n_nodes [] in
  List.iter
    (fun (((table, key) : int * int64), data) ->
      let o = owner t ~table ~key in
      per_node.(o) <- encode_write ~table ~key data :: per_node.(o))
    (List.sort compare !decisions);
  let retained_inputs = Array.map (fun l -> Array.of_list (List.rev l)) per_node in
  each_node t (fun o ->
      let batch = Array.map apply_txn_of_input retained_inputs.(o) in
      let _, d = Db.run_epoch_aria (db t o) batch in
      assert (Array.length d = 0));
  Queue.push (t.epoch, retained_inputs) t.retained;
  if Queue.length t.retained > t.retention then ignore (Queue.pop t.retained);
  let t_after = total_time_ns t in
  ( {
      Report.epoch = t.epoch;
      txns = n;
      aborted = !aborted;
      version_writes = n;
      persistent_writes = List.length !decisions;
      transient_only_writes = 0;
      minor_gc = 0;
      major_gc = 0;
      evicted = 0;
      cache_hits = 0;
      cache_misses = 0;
      log_bytes = 0;
      duration_ns = t_after -. t_before;
      phases = [];
    },
    Array.of_list (List.rev !deferred) )

let read t ~table ~key = Db.read_committed (db t (owner t ~table ~key)) ~table ~key

(* --- Node failure and catch-up --- *)

let crash_node t i ~rng =
  let pmem = Db.crash (db t i) ~rng in
  t.nodes.(i) <- Down pmem

let recover_node t i =
  match t.nodes.(i) with
  | Up _ -> ()
  | Down pmem ->
      let recovered, _ =
        Db.recover ~config:t.config ~tables:t.tables ~pmem ~rebuild:apply_txn_of_input
          ~replay_mode:`Aria ()
      in
      (* Catch up from retained apply batches. *)
      Queue.iter
        (fun (e, per_node) ->
          if e > Db.epoch recovered then begin
            let batch = Array.map apply_txn_of_input per_node.(i) in
            let _, d = Db.run_epoch_aria recovered batch in
            assert (Array.length d = 0)
          end)
        t.retained;
      if Db.epoch recovered <> t.epoch then
        failwith
          (Printf.sprintf "Partition.recover_node: node %d at epoch %d, cluster at %d \
                           (retention too short)"
             i (Db.epoch recovered) t.epoch);
      t.nodes.(i) <- Up recovered
