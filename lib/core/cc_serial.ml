(* Caracal's serial concurrency control (Algorithm 1): the write-set
   initialization phases (insert step, append step) build per-row
   version arrays, then bodies execute in SID order against them.
   Moved verbatim out of the Db monolith; the shared substrate —
   version arrays, committed reads, the final persistent write — is in
   {!Epoch}. *)

module Stats = Nv_nvmm.Stats
module Prow = Nv_storage.Prow
module Slab = Nv_storage.Slab_pool
module Meta = Nv_storage.Meta_region
module TP = Nv_storage.Transient_pool
module OIdx = Nv_index.Ordered_index
module BIdx = Nv_index.Btree_index
module VA = Version_array
module Tracer = Nv_obs.Tracer
module Metrics = Nv_obs.Metrics

open Epoch

let name = "caracal"

(* Work declared for one transaction on one row: the registry built by
   the initialization phase, consumed by the execution phase. *)
type entry = {
  e_op : [ `Insert | `Update | `Delete ];
  e_table : int;
  e_key : int64;
  e_row : Row.t;
  e_slot : VA.slot;
}

(* ------------------------------------------------------------------ *)
(* Transaction contexts                                                *)

type ctx_mode = Init | Exec of Sid.t

(* Visibility of a row's value at a serial position (Exec) or at
   initialization time (Init: everything resolved so far, which is how
   dynamic write sets observe insert-step data). [wait_for] is the wide
   execution hook: it blocks until the slot's writer has resolved it. *)
let visible_value ?wait_for t stats (row : Row.t) ~mode =
  if row.Row.varray_epoch = t.epoch && row.Row.varray <> None then begin
    let va = match row.Row.varray with Some va -> va | None -> assert false in
    let slot =
      match mode with
      | Exec before -> VA.latest_visible ?wait_for va stats ~before
      | Init -> VA.latest_resolved va stats
    in
    match slot with
    | Some ({ VA.value = VA.Written vref; _ } as s) ->
        Stats.set_now stats s.VA.write_time;
        Some (load_version_value t stats ~initial:(Sid.is_none s.VA.sid) vref)
    | Some { VA.value = VA.Tombstone; _ } -> None
    | Some { VA.value = VA.Pending | VA.Ignored; _ } -> assert false
    | None ->
        if row.Row.created_epoch = t.epoch then None
        else committed_read t stats row ~fill_cache:true
  end
  else committed_read t stats row ~fill_cache:true

exception Found of (int64 * bytes)

let make_ctx ?wait_for ?wait_preds t ~core ~sid ~mode ~entries_of_txn ~notes ~wrote =
  let stats = stats_of t core in
  let read ~table ~key =
    Stats.compute stats ();
    (* Keys in the write set were already resolved during the
       initialization phase; the execution phase holds direct row
       references (as Caracal does) and only probes the index for
       read-only keys. *)
    let row =
      match
        List.find_opt (fun e -> e.e_table = table && e.e_key = key) !entries_of_txn
      with
      | Some e -> Some e.e_row
      | None -> find_row t stats ~table ~key
    in
    match row with None -> None | Some row -> visible_value ?wait_for t stats row ~mode
  in
  let write ~table ~key data =
    (match mode with Exec _ -> () | Init -> invalid_arg "Txn.Ctx.write: not in execution phase");
    Stats.compute stats ();
    let entry =
      try
        List.find
          (fun e -> e.e_table = table && e.e_key = key && e.e_op <> `Delete)
          !entries_of_txn
      with Not_found ->
        invalid_arg
          (Printf.sprintf "Txn.Ctx.write: key (%d, %Ld) is not in the write set" table key)
    in
    entry.e_slot.VA.value <- VA.Written (store_version_value t stats ~core data);
    entry.e_slot.VA.write_time <- Stats.now stats;
    wrote := true
  in
  let delete ~table ~key =
    (match mode with Exec _ -> () | Init -> invalid_arg "Txn.Ctx.delete: not in execution phase");
    Stats.compute stats ();
    let entry =
      try
        List.find (fun e -> e.e_table = table && e.e_key = key && e.e_op = `Delete) !entries_of_txn
      with Not_found ->
        invalid_arg
          (Printf.sprintf "Txn.Ctx.delete: key (%d, %Ld) is not in the delete set" table key)
    in
    entry.e_slot.VA.value <- VA.Tombstone;
    entry.e_slot.VA.write_time <- Stats.now stats;
    t.m_version_writes.(core) <- t.m_version_writes.(core) + 1;
    wrote := true
  in
  (* Ordered-table operations, uniform over the AVL and B+-tree
     implementations. *)
  let ordered_fold table ~lo ~hi ~init ~f =
    match t.indexes.(table) with
    | Ord o -> OIdx.fold_range o stats ~lo ~hi ~init ~f
    | Bt b -> BIdx.fold_range b stats ~lo ~hi ~init ~f
    | Hash _ -> invalid_arg "Txn.Ctx: range operation on a hash-indexed table"
  in
  let ordered_max_below table bound =
    match t.indexes.(table) with
    | Ord o -> OIdx.max_below o stats bound
    | Bt b -> BIdx.max_below b stats bound
    | Hash _ -> invalid_arg "Txn.Ctx: range operation on a hash-indexed table"
  in
  let range_read ~table ~lo ~hi =
    List.rev
      (ordered_fold table ~lo ~hi ~init:[] ~f:(fun acc key row ->
           match visible_value ?wait_for t stats row ~mode with
           | Some data -> (key, data) :: acc
           | None -> acc))
  in
  let min_above ~table bound =
    (* Ascending scan with early exit on the first visible entry. *)
    try
      ordered_fold table ~lo:bound ~hi:Int64.max_int ~init:() ~f:(fun () key row ->
          match visible_value ?wait_for t stats row ~mode with
          | Some data -> raise (Found (key, data))
          | None -> ());
      None
    with Found kv -> Some kv
  in
  let max_below ~table bound =
    (* Descend from the bound; visibility is rechecked walking down in
       key order. *)
    let rec go bound =
      match ordered_max_below table bound with
      | None -> None
      | Some (key, row) -> (
          match visible_value ?wait_for t stats row ~mode with
          | Some data -> Some (key, data)
          | None -> if key = Int64.min_int then None else go (Int64.pred key))
    in
    go bound
  in
  let abort () =
    if !wrote then failwith "Txn.Ctx.abort: user aborts must precede the first write";
    raise Txn.Aborted
  in
  let compute ~ops = Stats.compute stats ~ops () in
  let counter_next ~idx =
    Stats.compute stats ();
    (* Counters draw from a shared array in serial order. Under wide
       execution the draw runs only after every earlier transaction has
       finished ([wait_preds]), which serializes all draws in serial
       position order — the progress atomics make the predecessors'
       draws visible. *)
    (match wait_preds with Some wait -> wait () | None -> ());
    let v = t.counters.(idx) in
    t.counters.(idx) <- Int64.add v 1L;
    v
  in
  {
    Txn.Ctx.sid;
    core;
    read;
    write;
    delete;
    range_read;
    max_below;
    min_above;
    abort;
    compute;
    counter_next;
    notes;
  }

(* ------------------------------------------------------------------ *)
(* Initialization phase                                                *)

let do_insert t stats ~core ~sid ~table ~key ~data entries =
  Stats.compute stats ();
  (match find_row t stats ~table ~key with
  | Some _ -> invalid_arg (Printf.sprintf "Db: duplicate insert of key (%d, %Ld)" table key)
  | None -> ());
  let base = Slab.alloc t.row_pool stats ~core in
  Prow.init t.pmem stats ~base ~key ~table;
  let row = Row.make ~key ~table ~home_core:core ~prow_base:base ~created_epoch:t.epoch in
  index_insert t stats ~table ~key row;
  if t.pindex <> None then Hashtbl.replace t.pix_delta (table, key) (`Ins base);
  let va = ensure_varray t stats ~core row in
  VA.append va stats sid;
  let slot = VA.find va stats sid in
  (match data with
  | Some d ->
      slot.VA.value <- VA.Written (store_version_value t stats ~core d);
      slot.VA.write_time <- Stats.now stats
  | None -> ());
  entries := { e_op = `Insert; e_table = table; e_key = key; e_row = row; e_slot = slot } :: !entries

let do_append t stats ~core ~sid ~table ~key ~(kind : [ `Update | `Delete ]) entries =
  Stats.compute stats ();
  match find_row t stats ~table ~key with
  | None -> invalid_arg (Printf.sprintf "Db: update/delete of missing key (%d, %Ld)" table key)
  | Some row ->
      let va = ensure_varray t stats ~core row in
      (* A transaction may declare the same key more than once (multiple
         writes per item, section 3.1.1): reuse its slot. *)
      let slot =
        match VA.find va stats sid with
        | slot -> slot
        | exception Not_found ->
            VA.append va stats sid;
            VA.find va stats sid
      in
      entries :=
        { e_op = (kind :> [ `Insert | `Update | `Delete ]); e_table = table; e_key = key;
          e_row = row; e_slot = slot }
        :: !entries

(* ------------------------------------------------------------------ *)
(* Finalization (section 4.6)                                          *)

(* Selective caching (section 7): the write-set information gathered
   during initialization identifies hot rows — rows with several
   versions this epoch are worth caching; rows written once are not. *)
let worth_caching t va =
  (not t.config.Config.selective_caching) || VA.length va > 2

(* Resolve the epoch-final version of a row once its last declared
   writer has executed (handles aborted final writers, section 4.6).
   [wait_for] blocks on slots whose writers — earlier transactions the
   finalizer never read from, e.g. before a blind write — are still in
   flight. Order-sensitive outcomes (cache fills, deletes) go through
   the effect journal; the final persistent write itself is row-local,
   so it runs here, on the finalizing stripe. *)
let finalize_row ?wait_for t stats ~core (row : Row.t) =
  let va = match row.Row.varray with Some va -> va | None -> assert false in
  match VA.latest_resolved ?wait_for va stats with
  | None -> () (* a fresh insert whose every version aborted *)
  | Some slot -> (
      match slot.VA.value with
      | VA.Written vref when Sid.is_none slot.VA.sid ->
          (* Every real write aborted; the initial version stands. The
             persistent row is untouched; restore the cached version the
             append step consumed (section 4.6). *)
          if Config.caching_enabled t.config && worth_caching t va then begin
            let data = load_version_value t stats ~initial:true vref in
            cache_insert_final t stats row ~data
          end
      | VA.Written vref ->
          let data = load_version_value t stats ~initial:false vref in
          do_prow_final_write t stats ~core row ~sid:slot.VA.sid ~data;
          if Config.caching_enabled t.config && worth_caching t va then
            cache_insert_final t stats row ~data
      | VA.Tombstone ->
          if not (record_effect t (E_delete { core; row })) then
            do_prow_delete t stats ~core row
      | VA.Pending | VA.Ignored -> assert false)

(* ------------------------------------------------------------------ *)
(* Epoch driver (Algorithm 1)                                          *)

let run ?(replay = false) t txns =
  let cfg = t.config in
  begin_epoch t;
  let n = Array.length txns in
  let t_start = barrier t in
  (* --- Log transaction inputs (section 4.3). --- *)
  log_inputs t ~replay txns;
  let t_log = barrier t in
  (* --- Insert step. --- *)
  let entries = Array.make n (ref []) in
  let notes = Array.init n (fun _ -> Hashtbl.create 4) in
  let outcomes = Array.make n `Committed in
  for i = 0 to n - 1 do
    entries.(i) <- ref []
  done;
  phase_span t "insert" (fun () ->
      for i = 0 to n - 1 do
        let core = core_of t i in
        let stats = stats_of t core in
        let sid = Sid.make ~epoch:t.epoch ~seq:i in
        let static_inserts =
          List.filter_map
            (function
              | Txn.Insert { table; key; data } -> Some (table, key, data)
              | Txn.Update _ | Txn.Delete _ -> None)
            txns.(i).Txn.write_set
        in
        let generated =
          match txns.(i).Txn.insert_gen with
          | None -> []
          | Some gen ->
              let ctx =
                make_ctx t ~core ~sid ~mode:Init ~entries_of_txn:entries.(i) ~notes:notes.(i)
                  ~wrote:(ref true)
              in
              List.map
                (function
                  | Txn.Insert { table; key; data } -> (table, key, data)
                  | Txn.Update _ | Txn.Delete _ ->
                      invalid_arg "Db: insert_gen may only produce Insert ops")
                (gen ctx)
        in
        List.iter
          (fun (table, key, data) -> do_insert t stats ~core ~sid ~table ~key ~data entries.(i))
          (static_inserts @ generated)
      done;
      hook t Insert_done);
  let t_insert = barrier t in
  (* --- Major GC, then cache eviction (initialization phase). --- *)
  phase_span t "major-gc" (fun () ->
      Gc.major_gc t;
      hook t Gc_done);
  phase_span t "evict" (fun () ->
      if Config.caching_enabled cfg then begin
        t.m_evicted <-
          Cache.evict t.cache (stats_of t (t.epoch mod cfg.Config.cores)) ~current_epoch:t.epoch
            ~k:cfg.Config.cache_k;
        Tracer.instant t.tracer ~core:(t.epoch mod cfg.Config.cores) ~name:"cache-evict"
          ~cat:"cache"
          ~args:[ ("evicted", Nv_obs.Jsonx.Int t.m_evicted) ]
          ()
      end);
  let t_gc = barrier t in
  (* --- Append step. --- *)
  let recon_reads = Array.make n [] in
  phase_span t "append" (fun () ->
  for i = 0 to n - 1 do
    let core = core_of t i in
    let stats = stats_of t core in
    let sid = Sid.make ~epoch:t.epoch ~seq:i in
    let static_ops =
      List.filter_map
        (function
          | Txn.Update { table; key } -> Some (table, key, `Update)
          | Txn.Delete { table; key } -> Some (table, key, `Delete)
          | Txn.Insert _ -> None)
        txns.(i).Txn.write_set
    in
    let ops_of gen =
      let ctx =
        make_ctx t ~core ~sid ~mode:Init ~entries_of_txn:entries.(i) ~notes:notes.(i)
          ~wrote:(ref true)
      in
      List.map
        (function
          | Txn.Update { table; key } -> (table, key, `Update)
          | Txn.Delete { table; key } -> (table, key, `Delete)
          | Txn.Insert _ -> invalid_arg "Db: computed write sets may not produce Insert ops")
        (gen ctx)
    in
    let dynamic_ops =
      match txns.(i).Txn.dynamic_write_set with None -> [] | Some gen -> ops_of gen
    in
    (* Reconnaissance (section 3.1.1): run the read-only pass, record
       every value it observes, and derive the write set from it. The
       reads are re-validated just before execution. *)
    let recon_ops =
      match txns.(i).Txn.recon with
      | None -> []
      | Some gen ->
          ops_of (fun ctx ->
              let recorded = ref [] in
              let recording_read ~table ~key =
                let v = ctx.Txn.Ctx.read ~table ~key in
                recorded := (table, key, Option.map Bytes.copy v) :: !recorded;
                v
              in
              let ops = gen { ctx with Txn.Ctx.read = recording_read } in
              recon_reads.(i) <- !recorded;
              ops)
    in
    List.iter
      (fun (table, key, kind) -> do_append t stats ~core ~sid ~table ~key ~kind entries.(i))
      (static_ops @ dynamic_ops @ recon_ops)
  done;
  hook t Append_done);
  let t_append = barrier t in
  (* --- Execution phase. --- *)
  let txn_sample = if Tracer.enabled t.tracer then Tracer.txn_sample t.tracer else 0 in
  let exec_hist =
    if Metrics.enabled t.metrics then Some (Metrics.histogram t.metrics "txn_exec_ns") else None
  in
  (* One transaction at serial position [i]. [wait_for] is the wide
     execution hook (block until an earlier transaction's slot is
     resolved); [wait_preds] blocks until every earlier transaction has
     finished (counter draws). Order-sensitive outputs — sampled txn
     spans, histogram observations, deferred hook deliveries, cache
     fills, deletes — are recorded in the effect journal under serial
     position [i] and replayed in order at the join. *)
  let exec_one ?wait_for ?wait_preds i =
    let core = core_of t i in
    let stats = stats_of t core in
    let sid = Sid.make ~epoch:t.epoch ~seq:i in
    let traced = txn_sample > 0 && i mod txn_sample = 0 in
    let ts0 = if traced || exec_hist <> None then Stats.now stats else 0.0 in
    let wrote = ref false in
    set_cur_seq i;
    let ctx =
      make_ctx ?wait_for ?wait_preds t ~core ~sid ~mode:(Exec sid) ~entries_of_txn:entries.(i)
        ~notes:notes.(i) ~wrote
    in
    (* Validate reconnaissance reads: if any value the recon pass
       observed was changed by an earlier transaction in this epoch,
       abort deterministically. *)
    let recon_valid =
      List.for_all
        (fun (table, key, observed) ->
          match (ctx.Txn.Ctx.read ~table ~key, observed) with
          | None, None -> true
          | Some a, Some b -> Bytes.equal a b
          | _ -> false)
        recon_reads.(i)
    in
    let aborted =
      (not recon_valid)
      ||
      try
        txns.(i).Txn.body ctx;
        false
      with Txn.Aborted -> true
    in
    if aborted then outcomes.(i) <- `Aborted;
    if aborted then begin
      t.m_aborted.(core) <- t.m_aborted.(core) + 1;
      t.total_aborted.(core) <- t.total_aborted.(core) + 1;
      List.iter (fun e -> e.e_slot.VA.value <- VA.Ignored) !(entries.(i))
    end
    else t.committed.(core) <- t.committed.(core) + 1;
    (* Declared writes the body never issued are equivalent to aborted
       single writes: mark them IGNORE so readers skip them. *)
    List.iter
      (fun e -> if e.e_slot.VA.value = VA.Pending then e.e_slot.VA.value <- VA.Ignored)
      !(entries.(i));
    (* Rows whose last declared writer is this transaction get their
       final version persisted now. *)
    List.iter
      (fun e ->
        match e.e_row.Row.varray with
        | Some va
          when Sid.compare (VA.max_sid va) sid = 0
               && Sid.compare e.e_slot.VA.sid sid = 0
               && not (VA.finalized va) ->
            VA.set_finalized va;
            finalize_row ?wait_for t stats ~core e.e_row
        | Some _ | None -> ())
      !(entries.(i));
    (if traced || exec_hist <> None then begin
       let dur = Stats.now stats -. ts0 in
       (if traced then begin
          (* Sampled txn spans carry explicit timestamps, so emitting
             from the journal in ascending serial position reproduces
             the serial event stream byte for byte. *)
          let emit () =
            Tracer.complete t.tracer ~core ~name:"txn" ~cat:"txn"
              ~args:[ ("seq", Nv_obs.Jsonx.Int i); ("aborted", Nv_obs.Jsonx.Bool aborted) ]
              ~ts:ts0 ~dur ()
          in
          if not (record_effect t (E_trace emit)) then emit ()
        end);
       match exec_hist with
       | Some hist ->
           if not (record_effect t (E_observe { hist; v = dur })) then Metrics.observe hist dur
       | None -> ()
     end);
    hook t (Exec_txn i);
    set_cur_seq (-1)
  in
  (* Wide execution is a pure performance path: it must be bit-for-bit
     equivalent to the serial-order loop at any pool width. The effect
     journal carries everything order-sensitive to the join barrier, so
     the gate no longer depends on what the batch does — only on
     structural conditions the journal cannot absorb (each noted in the
     serial-reason telemetry). Transactions synchronize through
     version-array slots: stripe [s] runs positions congruent to [s]
     modulo [wide_d] in ascending order, and a read of a slot written by
     another stripe spins on that stripe's progress counter. Declared
     reads, undeclared probes and finalizer scans all wait only on
     earlier serial positions, so every stripe is always runnable
     (docs/PARALLELISM.md develops the full argument). *)
  let wide_d =
    let d = Dpool.stripes (pool t) ~cores:cfg.Config.cores in
    let gate =
      if n <= 1 then Some R_small_batch
      else if d <= 1 then Some R_width
      else if Dpool.in_task () then
        (* Nested in a pool task (a partition node): Dpool.run would
           inline-serialize the stripes, deadlocking any cross-stripe
           wait. *)
        Some R_nested
      else if match t.phase_hook with Some h -> not h.hk_defer | None -> false then
        Some R_phase_hook
      else if t.unmirrored_rows then Some R_unmirrored_rows
      else if cfg.Config.crash_safe && cfg.Config.row_size mod 64 <> 0 then
        (* Adjacent row slots in one arena may share a cache line, and
           rows finalize on their last writer's stripe — only line-
           aligned rows make stripes' stores line-disjoint. *)
        Some R_row_align
      else None
    in
    match gate with
    | None -> d
    | Some r ->
        note_serial_reason t r;
        1
  in
  phase_span t "execute" (fun () ->
      Effects.begin_exec t ~d:wide_d;
      (try
         if wide_d = 1 then
           for i = 0 to n - 1 do
             exec_one i
           done
         else begin
           (* progress.(s) = highest serial position stripe [s] has
              finished (-1 initially): one atomic per stripe instead of
              a done flag per transaction, so the common wait is a
              single load that usually already satisfies. *)
           let progress = Array.init wide_d (fun _ -> Atomic.make (-1)) in
           let await s bound =
             let spins = ref 0 in
             while Atomic.get progress.(s) < bound do
               Dpool.backoff !spins;
               incr spins
             done
           in
           if cfg.Config.crash_safe then Pmem.begin_stripes t.pmem ~n:wide_d;
           Fun.protect
             ~finally:(fun () -> if cfg.Config.crash_safe then Pmem.end_stripes t.pmem)
             (fun () ->
               ignore
                 (Dpool.run (pool t) ~n:wide_d (fun s ->
                      Pmem.set_stripe t.pmem s;
                      let cur = ref s in
                      let wait_for sid =
                        let seq = Sid.seq_of sid in
                        if Sid.epoch_of sid = t.epoch && seq <> !cur && seq < n then
                          await (seq mod wide_d) seq
                      in
                      (* Block until every serial position below [cur]
                         has finished: stripe [p] is done with them once
                         it has finished its largest position below
                         [cur]. *)
                      let wait_preds () =
                        let i = !cur in
                        for p = 0 to wide_d - 1 do
                          if p <> s && i - 1 >= p then
                            await p (i - 1 - ((i - 1 - p) mod wide_d))
                        done
                      in
                      try
                        while !cur < n do
                          exec_one ~wait_for ~wait_preds !cur;
                          Atomic.set progress.(s) !cur;
                          cur := !cur + wide_d
                        done
                      with e ->
                        (* Poison the rest of the stripe — resolve its
                           slots and push its progress past every
                           position — so the other stripes' waits
                           terminate; Dpool re-raises after the join. *)
                        let bt = Printexc.get_raw_backtrace () in
                        let j = ref !cur in
                        while !j < n do
                          List.iter
                            (fun e ->
                              if e.e_slot.VA.value = VA.Pending then
                                e.e_slot.VA.value <- VA.Ignored)
                            !(entries.(!j));
                          j := !j + wide_d
                        done;
                        Atomic.set progress.(s) (n + wide_d);
                        Printexc.raise_with_backtrace e bt)))
         end
       with e ->
         Effects.abort t;
         raise e);
      Effects.drain t;
      hook t Exec_done);
  let t_exec = barrier t in
  (* --- Checkpoint: persist allocators (fence), then the epoch number. --- *)
  let stats0 = stats_of t 0 in
  checkpoint_allocators t;
  phase_span t "epoch-persist" (fun () ->
      Meta.persist_epoch t.meta stats0 ~epoch:t.epoch;
      t.last_outcomes <- outcomes;
      hook t Checkpointed);
  (* --- Discard the transient pool and per-epoch row state. --- *)
  List.iter
    (fun (row : Row.t) ->
      row.Row.varray <- None;
      if row.Row.pv2.Row.fresh then row.Row.pv2 <- { row.Row.pv2 with Row.fresh = false };
      if row.Row.pv1.Row.fresh then row.Row.pv1 <- { row.Row.pv1 with Row.fresh = false })
    t.touched;
  t.touched <- [];
  TP.reset t.tpool;
  if replay && not t.retain_gc_dedup then t.gc_dedup <- Hashtbl.create 16;
  let t_end = barrier t in
  let report =
    epoch_report t ~txns:n ~replay ~duration:(t_end -. t_start)
      ~phases:
        [
          ("log", t_log -. t_start);
          ("insert", t_insert -. t_log);
          ("gc+evict", t_gc -. t_insert);
          ("append", t_append -. t_gc);
          ("execute", t_exec -. t_append);
          ("checkpoint", t_end -. t_exec);
        ]
  in
  (report, [||])
