(* Major garbage collection (paper sections 4.4, 5.5): collect the
   stale versions left by the previous epoch's writes before this
   epoch's append step runs. Moved verbatim out of the Db monolith; the
   minor collector is not a pass — it is the inline-slot reuse inside
   {!Epoch.do_prow_final_write}. *)

module Pmem = Nv_nvmm.Pmem
module Prow = Nv_storage.Prow
module Vptr = Nv_storage.Vptr
module VPools = Nv_storage.Value_pools
module Tracer = Nv_obs.Tracer

open Epoch

let major_gc t =
  let list = t.gc_list in
  t.gc_list <- [];
  if list <> [] then begin
    let n = List.length list in
    let rows = Array.of_list list in
    let stale_ptrs = Array.map (fun (row : Row.t) -> row.Row.pv1.Row.pptr) rows in
    let cores = t.config.Config.cores in
    (* Both passes charge item [i] to core [i mod cores] and touch only
       that core's freelist (or row [i]'s own bytes), so striping by
       [i mod d] with [d] dividing [cores] keeps every core's work on
       one stripe, in list order — identical charges at any width. Under
       crash-safe tracking, newly-dirtied lines accumulate per stripe
       and are unioned at the join; that needs the stripes' stores to be
       line-disjoint, which holds whenever rows are cache-line aligned
       (list neighbours may be arena neighbours on different stripes).
       The dedup table is read-only here. *)
    let d =
      if t.config.Config.crash_safe && t.config.Config.row_size mod 64 <> 0 then 1
      else Dpool.stripes (pool t) ~cores
    in
    let striped_iter f =
      if d = 1 then
        for i = 0 to n - 1 do
          f i
        done
      else begin
        Pmem.begin_stripes t.pmem ~n:d;
        ignore
          (Dpool.run (pool t) ~n:d (fun s ->
               Pmem.set_stripe t.pmem s;
               let i = ref s in
               while !i < n do
                 f !i;
                 i := !i + d
               done));
        Pmem.end_stripes t.pmem
      end
    in
    let collect_frees () =
      (* Make every stale pool value durable in the free list, skipping
         pointers the crashed epoch's GC already freed. *)
      striped_iter (fun i ->
          let core = i mod cores in
          let stats = stats_of t core in
          match Vptr.classify stale_ptrs.(i) with
          | Vptr.Pool { off; _ } ->
              VPools.free_gc t.value_pool stats ~core off ~dedup:t.gc_dedup
          | Vptr.Null | Vptr.Inline _ -> ());
      VPools.persist_gc_tail t.value_pool (stats_of t 0) ~epoch:t.epoch;
      Pmem.fence t.pmem (stats_of t 0);
      hook t Gc_pass1_done
    in
    let rotate_rows () =
      (* Rotate each row so v2 is free for this epoch's write. *)
      striped_iter (fun i ->
          let row = rows.(i) in
          let stats = stats_of t (i mod cores) in
          Prow.gc_move t.pmem stats ~base:row.Row.prow_base ~charge:true ();
          row.Row.pv1 <- { row.Row.pv2 with Row.fresh = false };
          row.Row.pv2 <- Row.no_version;
          row.Row.in_gc_list <- false)
    in
    if t.config.Config.persistent_index then begin
      (* Lazy (persistent-index) recovery never rebuilds the GC list,
         so a row must never reference a value that is already in the
         free list. Clearing rows BEFORE appending frees guarantees
         that: a crash in between leaks at most one epoch's stale
         values, instead of leaving dangling pointers that a later lazy
         recovery could double-free. *)
      rotate_rows ();
      collect_frees ()
    end
    else begin
      (* Paper order (section 5.5): frees first, made durable via the
         current tail; the recovery scan rebuilds the GC list and the
         dedup set resolves a crash in between. *)
      collect_frees ();
      rotate_rows ()
    end;
    t.m_major_gc.(0) <- t.m_major_gc.(0) + n;
    Tracer.instant t.tracer ~core:0 ~name:"major-gc rows" ~cat:"gc"
      ~args:[ ("rows", Nv_obs.Jsonx.Int n) ]
      ()
  end
