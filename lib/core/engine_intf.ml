(** The storage-engine seam.

    The paper frames NVCaracal and Zen as interchangeable storage
    engines under one deterministic front end; this signature is that
    claim in code. Both the NVCaracal {!Db} (serial and Aria CC) and
    [Nv_zen.Zen_db] implement [S], and harness code drives either
    through a first-class module — see [Nv_harness.Engine] for the
    packing and config derivation.

    The contract every instance obeys:

    - {b Determinism.} Equal configs, loads and batches produce equal
      committed state and equal simulated-time accounting, byte for
      byte.
    - {b Batch order is serial order.} [run_batch] commits effects as
      if transactions ran one at a time in array order; strategies that
      defer conflicting transactions return them for resubmission
      instead of reordering.
    - {b Committed reads see checkpoint state.} [read_committed] /
      [iter_committed] observe the last batch boundary, uncharged. *)

(** One uniform inspection snapshot of an engine: everything harness
    code may want to know about committed state and execution shape
    without reaching into engine-specific accessors.

    - [wide_execs]: batches whose execute phase ran on more than one
      domain (cumulative). Results are identical whether or not a batch
      ran wide; engines without wide execution report 0.
    - [serial_reasons]: cumulative [(reason, count)] telemetry of
      batches forced onto one stripe, nonzero reasons only (labels in
      docs/PARALLELISM.md). Always empty for engines without wide
      execution.
    - [state_digest]: deterministic fingerprint of the committed state
      across all tables; equal committed states give equal digests (the
      same value {!Nv_harness.Engine.state_digest} reports). *)
type introspection = {
  wide_execs : int;
  serial_reasons : (string * int) list;
  state_digest : int64;
}

(** The digest every engine's [introspect] reports: an FNV chain over
    each table's committed rows in sorted (key, value) order, seeded
    per table with the table id. [iter] is the engine's
    [iter_committed] partially applied to the instance. *)
let digest_committed ~(tables : Table.t list)
    ~(iter : table:int -> (int64 -> bytes -> unit) -> unit) =
  let module Fnv = Nv_util.Fnv in
  let h = ref (Fnv.hash_string "committed-state") in
  List.iter
    (fun (tb : Table.t) ->
      let rows = ref [] in
      iter ~table:tb.Table.id (fun k v -> rows := (k, Bytes.to_string v) :: !rows);
      h := Fnv.combine !h (Fnv.hash_int tb.Table.id);
      List.iter
        (fun (k, v) ->
          h := Fnv.combine !h (Fnv.hash_int64 k);
          h := Fnv.combine !h (Fnv.hash_string v))
        (List.sort compare !rows))
    tables;
  Int64.of_int !h

module type S = sig
  type t
  (** One engine instance. *)

  type config
  (** Engine-specific configuration. *)

  val name : string
  (** Engine family name ("nvcaracal", "aria", "zen", ...). *)

  val create : config:config -> tables:Table.t list -> unit -> t
  (** Fresh engine over a fresh NVMM arena. Table ids must be
      contiguous from 0. *)

  val bulk_load : t -> (int * int64 * bytes) Seq.t -> unit
  (** Populate tables ((table, key, value) triples) before driving
      batches; resets measurement state. At most once, before any
      [run_batch]. *)

  val run_batch : t -> Txn.t array -> Report.epoch_stats option * Txn.t array
  (** Process one batch in serial order. Returns the epoch report
      (engines without epoch-granular accounting return [None]) and the
      transactions deferred to the next batch ([[||]] for
      non-deferring engines). *)

  val read_committed : t -> table:int -> key:int64 -> bytes option
  (** Committed value of a key as of the last batch boundary
      (uncharged; tests and validation). *)

  val iter_committed : t -> table:int -> (int64 -> bytes -> unit) -> unit
  (** Visit all live keys of a table with their committed values, in
      unspecified order (uncharged). *)

  val last_batch_outcomes : t -> [ `Committed | `Aborted | `Deferred ] array
  (** Per-transaction outcome of the last [run_batch], in batch order —
      populated only once that batch's epoch is checkpointed (the
      visibility rule of paper section 6.2.3), so front ends may hand
      these outcomes straight to clients. [`Deferred] marks the
      transactions the engine returned for resubmission; engines that
      never defer report only [`Committed]/[`Aborted]. [[||]] before
      the first batch. *)

  val committed_txns : t -> int
  val aborted_txns : t -> int
  (** Cumulative commit/abort counts. Deferred-then-committed
      transactions count once as committed; what "aborted" counts is
      engine-specific (user aborts always; conflict deferrals only
      until they commit). *)

  val total_time_ns : t -> float
  (** Simulated time consumed so far (max over core clocks). *)

  val introspect : t -> introspection
  (** One inspection snapshot — see {!type:introspection}. Replaces the
      per-engine [wide_execs]/[serial_reasons]/digest accessors so
      routers, [nvdb stats] and the fuzzer read every engine the same
      way. Inspection only: values never influence execution. *)

  val mem_report : t -> Report.mem_report
  val counters_total : t -> Nv_nvmm.Stats.counters

  val set_observability :
    ?tracer:Nv_obs.Tracer.t ->
    ?metrics:Nv_obs.Metrics.t ->
    ?profile:Nv_obs.Profile.t ->
    ?name:string ->
    t ->
    unit
  (** Attach trace/metrics/profiler sinks. Engines without
      instrumentation accept and ignore the sinks, so harness code
      never branches. *)

  val pmem : t -> Nv_nvmm.Pmem.t

  val crash : ?faults:Nv_nvmm.Pmem.fault_model -> t -> rng:Nv_util.Rng.t -> Nv_nvmm.Pmem.t
  (** Tear the arena to a legal crash image and return it; the engine
      must not be used afterwards. Requires a crash-safe config.
      @raise Invalid_argument otherwise. *)

  val recover :
    config:config ->
    tables:Table.t list ->
    pmem:Nv_nvmm.Pmem.t ->
    rebuild:(bytes -> Txn.t) ->
    unit ->
    t
  (** Reconstruct an engine from a (crashed) arena. [rebuild]
      deserializes a logged input record back into its transaction;
      engines that recover from data alone (no input log) ignore it. *)
end

(** An engine instance packed with its operations: the existential that
    lets harness code hold a heterogeneous engine without knowing which
    one. *)
type packed = Packed : (module S with type t = 'e) * 'e -> packed
