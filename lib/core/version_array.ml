module Stats = Nv_nvmm.Stats

type value =
  | Pending
  | Written of Nv_storage.Transient_pool.vref
  | Tombstone
  | Ignored

type slot = { sid : Sid.t; mutable value : value; mutable write_time : float }

type t = {
  mutable slots : slot array;
  mutable n : int;
  epoch : int;
  nvmm_resident : bool;
  batch_append : bool;
  mutable finalized : bool;
}

let create ~epoch ~nvmm_resident ?(batch_append = false) () =
  { slots = [||]; n = 0; epoch; nvmm_resident; batch_append; finalized = false }

let finalized t = t.finalized
let set_finalized t = t.finalized <- true

let epoch t = t.epoch
let length t = t.n

(* Charge [units] structure touches: DRAM cache lines normally, NVMM
   blocks for the all-NVMM baseline. *)
let charge t stats ~write units =
  if units > 0 then
    if t.nvmm_resident then
      (* NVMM-resident arrays: slot lines are hot within the epoch, so
         traffic coalesces; charge at line granularity. *)
      if write then Stats.nvmm_write_lines stats units else Stats.nvmm_read_lines stats units
    else if write then Stats.dram_write stats ~lines:units ()
    else Stats.dram_read stats ~lines:units ()

(* Index of the first slot with sid >= key (binary search). *)
let lower_bound t key =
  let lo = ref 0 and hi = ref t.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Sid.compare t.slots.(mid).sid key < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let grow t =
  if t.n >= Array.length t.slots then begin
    let ncap = max 4 (Array.length t.slots * 2) in
    let ns = Array.make ncap { sid = Sid.none; value = Pending; write_time = 0.0 } in
    Array.blit t.slots 0 ns 0 t.n;
    t.slots <- ns
  end

let append t stats sid =
  grow t;
  let pos = lower_bound t sid in
  if pos < t.n && Sid.compare t.slots.(pos).sid sid = 0 then
    invalid_arg "Version_array.append: duplicate SID";
  let shifted = t.n - pos in
  Array.blit t.slots pos t.slots (pos + 1) shifted;
  t.slots.(pos) <- { sid; value = Pending; write_time = 0.0 };
  t.n <- t.n + 1;
  (* Cost model: concurrent appends binary-search the sorted array
     (log n cache-line touches on a cold, growing array) and displace a
     bounded number of slots (per-core streams are individually
     ordered). Long version arrays of very hot rows therefore slow the
     append step — the section 6.9 effect. (The host-serial simulation
     inserts in SID order, so the actual displacement is usually zero;
     charge the expected cost.) *)
  (if t.batch_append then
     (* Caracal's batch-append optimization: appends accumulate in
        per-core buffers and are merged into the sorted array in one
        pass, so each append costs O(1) regardless of array length. *)
     charge t stats ~write:true 2
   else begin
     let search_lines =
       (* ~log2 n *)
       let rec bits acc n = if n <= 1 then acc else bits (acc + 1) (n / 2) in
       bits 0 (t.n + 1)
     in
     (* Expected displacement with 8-way out-of-order arrival is a
        fraction of the array. *)
     let displaced_lines = t.n * 24 / 64 / 4 in
     charge t stats ~write:true (2 + search_lines + displaced_lines)
   end);
  Stats.compute stats ()

let find t stats sid =
  let pos = lower_bound t sid in
  charge t stats ~write:false 1;
  if pos < t.n && Sid.compare t.slots.(pos).sid sid = 0 then t.slots.(pos) else raise Not_found

(* When the execution phase runs wide, a reader may reach a slot whose
   writer transaction is still executing on another domain; [wait_for]
   blocks until that writer has published its outcome (it is the
   caller's happens-before edge, so the subsequent plain reads of
   [value]/[write_time] are well-defined). The initial slot (Sid.none)
   was published by the serial append phase and needs no wait. *)
let wait_slot wait_for (s : slot) =
  match wait_for with
  | Some w when not (Sid.is_none s.sid) -> w s.sid
  | _ -> ()

let latest_visible ?wait_for t stats ~before =
  let pos = lower_bound t before in
  charge t stats ~write:false 1;
  let rec scan i =
    if i < 0 then None
    else begin
      wait_slot wait_for t.slots.(i);
      match t.slots.(i).value with
      | Ignored -> scan (i - 1)
      | Pending ->
          invalid_arg "Version_array.latest_visible: PENDING predecessor (serial order violated)"
      | Written _ | Tombstone -> Some t.slots.(i)
    end
  in
  scan (pos - 1)

let latest_resolved ?wait_for t stats =
  charge t stats ~write:false 1;
  let rec scan i =
    if i < 0 then None
    else begin
      wait_slot wait_for t.slots.(i);
      match t.slots.(i).value with
      | Ignored | Pending -> scan (i - 1)
      | Written _ | Tombstone -> Some t.slots.(i)
    end
  in
  scan (t.n - 1)

let max_sid t = if t.n = 0 then Sid.none else t.slots.(t.n - 1).sid

let iter t f =
  for i = 0 to t.n - 1 do
    f t.slots.(i)
  done

let dram_bytes t = Array.length t.slots * 24
