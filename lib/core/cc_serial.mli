(** Caracal's serial concurrency control — the write-set architecture
    of Algorithm 1.

    An epoch runs: input log → insert step → major GC + cache eviction
    → append step (building per-row version arrays from declared,
    dynamic and reconnaissance-derived write sets) → execution in SID
    order (writes fill pre-appended version slots; a row's last
    declared writer triggers its final persistent write) → checkpoint.

    Never defers transactions: [run] always returns [[||]] as its
    second component. *)

include Cc_intf.S

(** {1 Internals shared with recovery-free callers}

    Exposed for white-box tests; regular clients should only use
    {!run}. *)

(** Work declared for one transaction on one row: the registry built by
    the initialization phase, consumed by the execution phase. *)
type entry = {
  e_op : [ `Insert | `Update | `Delete ];
  e_table : int;
  e_key : int64;
  e_row : Row.t;
  e_slot : Version_array.slot;
}

(** [Init] resolves everything declared so far (how dynamic write sets
    observe insert-step data); [Exec sid] resolves at a serial
    position. *)
type ctx_mode = Init | Exec of Sid.t

(** The value of [row] visible under [mode]: the version array when the
    row was touched this epoch, the committed read otherwise. [wait_for]
    is the wide-execution hook — it receives the SID of every non-empty
    slot inspected and blocks until that writer has resolved it. *)
val visible_value :
  ?wait_for:(Sid.t -> unit) ->
  Epoch.t ->
  Nv_nvmm.Stats.t ->
  Row.t ->
  mode:ctx_mode ->
  bytes option
