type op =
  | Insert of { table : int; key : int64; data : bytes option }
  | Update of { table : int; key : int64 }
  | Delete of { table : int; key : int64 }

module Ctx = struct
  type t = {
    sid : Sid.t;
    core : int;
    read : table:int -> key:int64 -> bytes option;
    write : table:int -> key:int64 -> bytes -> unit;
    delete : table:int -> key:int64 -> unit;
    range_read : table:int -> lo:int64 -> hi:int64 -> (int64 * bytes) list;
    max_below : table:int -> int64 -> (int64 * bytes) option;
    min_above : table:int -> int64 -> (int64 * bytes) option;
    abort : unit -> unit;
    compute : ops:int -> unit;
    counter_next : idx:int -> int64;
    notes : (int, int64) Hashtbl.t;
  }
end

exception Aborted

type t = {
  input : bytes;
  write_set : op list;
  recon : (Ctx.t -> op list) option;
  insert_gen : (Ctx.t -> op list) option;
  dynamic_write_set : (Ctx.t -> op list) option;
  reads_declared : bool;
  body : Ctx.t -> unit;
}

let make ?recon ?insert_gen ?dynamic_write_set ?(reads_declared = false) ~input ~write_set
    body =
  { input; write_set; recon; insert_gen; dynamic_write_set; reads_declared; body }

let op_key = function
  | Insert { table; key; _ } | Update { table; key } | Delete { table; key } -> (table, key)
