(** One-shot deterministic transactions (paper section 3.1.1).

    A transaction arrives with all of its inputs: a serialized input
    record (what gets logged for deterministic replay), a write set
    known before execution, and a body that performs reads and the
    declared writes. Write sets whose keys depend on rows inserted in
    the same epoch (TPC-C Delivery) are declared with
    [dynamic_write_set], which the engine evaluates during the append
    step — after the insert step — mirroring Caracal's two-step
    initialization phase.

    Bodies may abort ({!Ctx.abort}) only before issuing their first
    write, the user-level-abort discipline of section 3.1.1; the engine
    enforces this. *)

type op =
  | Insert of { table : int; key : int64; data : bytes option }
      (** Create a row; if [data] is given the insert step initializes
          the version's value (the section 3.1.2 optimization). *)
  | Update of { table : int; key : int64 }
  | Delete of { table : int; key : int64 }

module Ctx : sig
  (** Capabilities handed to a transaction body by the engine. *)

  type t = {
    sid : Sid.t;
    core : int;
    read : table:int -> key:int64 -> bytes option;
        (** Latest version visible at this transaction's serial
            position; [None] if the key does not exist (or was deleted
            by an earlier transaction). *)
    write : table:int -> key:int64 -> bytes -> unit;
        (** Write a declared Update/Insert key. Raises [Invalid_argument]
            for keys missing from the write set. *)
    delete : table:int -> key:int64 -> unit;
        (** Execute a declared Delete. *)
    range_read : table:int -> lo:int64 -> hi:int64 -> (int64 * bytes) list;
        (** Ordered-table scan, inclusive bounds. *)
    max_below : table:int -> int64 -> (int64 * bytes) option;
        (** Greatest existing key <= bound in an ordered table. *)
    min_above : table:int -> int64 -> (int64 * bytes) option;
        (** Smallest existing key >= bound in an ordered table. *)
    abort : unit -> unit;
        (** User-level abort; raises {!Aborted}. Only legal before the
            body's first write. *)
    compute : ops:int -> unit;  (** Charge extra CPU work. *)
    counter_next : idx:int -> int64;
        (** Draw from a persistent monotone counter (TPC-C order ids,
            paper section 6.2.3). Counters are checkpointed per epoch
            and recovered, making them deterministic across epochs but
            not within a replayed epoch — hence the paper's revert
            mechanism. *)
    notes : (int, int64) Hashtbl.t;
        (** Per-transaction scratch shared between [insert_gen],
            [dynamic_write_set] and the body (e.g. Delivery stashes the
            order keys its write set resolved to). *)
  }
end

exception Aborted

type t = {
  input : bytes;  (** serialized inputs, logged each epoch *)
  write_set : op list;
  recon : (Ctx.t -> op list) option;
      (** Reconnaissance (section 3.1.1): for transactions whose write
          set cannot be inferred from their inputs, a read-only pass
          runs during the append step to compute it. Every value the
          pass reads is recorded, and re-validated when the transaction
          executes; if an earlier-SID transaction changed any of them,
          the transaction deterministically aborts (and would be
          resubmitted by the client). *)
  insert_gen : (Ctx.t -> op list) option;
      (** Evaluated in the insert step with a read-only context (plus
          counters); must return only [Insert] ops — how TPC-C NewOrder
          obtains its order id from the atomic counter. *)
  dynamic_write_set : (Ctx.t -> op list) option;
      (** Evaluated in the append step with a read-only context; the
          returned Update/Delete ops extend the write set. May consult
          rows and insert-step data but not execution-phase writes. *)
  reads_declared : bool;
      (** Workload promise: the body's point reads ([Ctx.read]) touch
          only keys in [write_set], and it uses no range operations.
          Such transactions synchronize purely through version-array
          slots, which lets the execution phase run them on parallel
          domains (default false — serial execution is always safe). *)
  body : Ctx.t -> unit;
}

val make :
  ?recon:(Ctx.t -> op list) ->
  ?insert_gen:(Ctx.t -> op list) ->
  ?dynamic_write_set:(Ctx.t -> op list) ->
  ?reads_declared:bool ->
  input:bytes ->
  write_set:op list ->
  (Ctx.t -> unit) ->
  t

val op_key : op -> int * int64
(** (table, key) of an op. *)
