(* Epoch state and the shared substrate of the phase pipeline: the
   engine record, construction/attachment, observability plumbing,
   version-store access paths, bulk load and inspection. The phase
   *drivers* live in {!Cc_serial} and {!Cc_aria}; GC in {!Gc}; crash
   recovery in {!Recovery}; {!Db} re-exports the public surface. *)

module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Layout = Nv_nvmm.Layout
module TP = Nv_storage.Transient_pool
module Prow = Nv_storage.Prow
module Vptr = Nv_storage.Vptr
module Slab = Nv_storage.Slab_pool
module VPools = Nv_storage.Value_pools
module PIdx = Nv_storage.Pindex
module Log = Nv_storage.Log_region
module Meta = Nv_storage.Meta_region
module HIdx = Nv_index.Hash_index
module OIdx = Nv_index.Ordered_index
module BIdx = Nv_index.Btree_index
module VA = Version_array
module Tracer = Nv_obs.Tracer
module Metrics = Nv_obs.Metrics
module Profile = Nv_obs.Profile
module Dpool = Nv_util.Dpool

type index = Hash of Row.t HIdx.t | Ord of Row.t OIdx.t | Bt of Row.t BIdx.t

type phase =
  | Log_done
  | Insert_done
  | Gc_pass1_done
  | Gc_done
  | Append_done
  | Exec_txn of int
  | Exec_done
  | Checkpointed

(* Recovery milestones, mirroring [phase] for the epoch pipeline: a
   [recovery_hook] is called at each one, and may raise to simulate a
   crash in the middle of recovery (every recovery-time write is
   idempotent, so recovering again from the resulting image must
   converge to the same state). *)
type recovery_phase =
  | Rec_meta_recovered  (* allocator and counter state rebuilt *)
  | Rec_log_loaded  (* input log read back and verified *)
  | Rec_scan_done  (* index rebuilt; repairs and reverts persisted *)
  | Rec_replay_done  (* crashed epoch re-executed (or dropped) *)

(* Why an epoch's execute phase stayed on one stripe. Recorded once per
   gated epoch so gating regressions show up in telemetry instead of
   silently zeroing [wide_execs] (the counters surface in metrics,
   [nvdb stats] and the profiler report). *)
type serial_reason =
  | R_width  (* pool width or core count yields a single stripe *)
  | R_small_batch  (* one transaction (or none): nothing to overlap *)
  | R_nested  (* already inside a pool task (e.g. a partition node) *)
  | R_phase_hook  (* a non-deferrable hook observes intermediate state *)
  | R_unmirrored_rows  (* lazy pindex recovery left rows mirror-less *)
  | R_row_align  (* crash-safe mode with rows not cache-line aligned *)

let serial_reason_label = function
  | R_width -> "width"
  | R_small_batch -> "small-batch"
  | R_nested -> "nested"
  | R_phase_hook -> "phase-hook"
  | R_unmirrored_rows -> "unmirrored-rows"
  | R_row_align -> "row-align"

let serial_reason_index = function
  | R_width -> 0
  | R_small_batch -> 1
  | R_nested -> 2
  | R_phase_hook -> 3
  | R_unmirrored_rows -> 4
  | R_row_align -> 5

let all_serial_reasons =
  [ R_width; R_small_batch; R_nested; R_phase_hook; R_unmirrored_rows; R_row_align ]

(* One journaled side effect of the execution phase. The journal is the
   engine's single mechanism for running execution wide: anything the
   serial loop would mutate in serial order — shared structures,
   order-sensitive sinks — is recorded as an effect instead, and the
   join barrier replays the merged journal in ascending serial position
   (see the [Effects] module at the bottom of this file). Adding an
   effect kind means adding a constructor here and one arm to
   [Effects.apply] — registration happens exactly once, in that match. *)
type effect_ =
  | E_gc_push of Row.t  (* major-GC list push (serial loop prepends) *)
  | E_cache_fill of { st : Stats.t; row : Row.t; data : bytes }
      (* committed-value cache insert; admission runs against the true
         cache state at apply time and charges [st] — the recording
         core's meter — exactly as the serial loop would *)
  | E_delete of { core : int; row : Row.t }
      (* the whole persistent delete is deferred: value slots stay
         readable by earlier serial positions, the index stays
         immutable during execution, and freelist rings are only
         written at the (serial) barrier *)
  | E_hook of phase  (* a deferrable phase hook's delivery *)
  | E_observe of { hist : Metrics.histogram; v : float }
      (* histogram observation (float sums are order-sensitive) *)
  | E_trace of (unit -> unit)
      (* sampled txn span emission (carries explicit timestamps) *)

(* The per-stripe journal: stripe [s] appends records for serial
   positions congruent to [s] (mod [d]), newest first. Shards never
   share a serial position (a transaction executes on one stripe), so a
   stable ascending merge reproduces the serial loop's effect order. *)
type effects_journal = { ej_d : int; ej_shards : (int * effect_) list array }

(* A phase hook and whether its delivery may be deferred to the join
   barrier. Non-deferrable hooks (the default — tests use them to
   observe intermediate state) force the execute phase serial. *)
type phase_hook = { hk_fn : phase -> unit; hk_defer : bool }

type t = {
  config : Config.t;
  tables : Table.t array;
  pmem : Pmem.t;
  core_stats : Stats.t array;
  scratch : Stats.t; (* uncharged inspection accesses *)
  row_pool : Slab.t;
  value_pool : VPools.t;
  pindex : PIdx.t option;
  pix_delta : (int * int64, [ `Ins of int | `Del ]) Hashtbl.t;
      (* net index changes of the current epoch, batched to NVMM at
         epoch end when the persistent index is enabled *)
  log : Log.t;
  meta : Meta.t;
  indexes : index array;
  tpool : TP.t;
  cache : Cache.t;
  counters : int64 array;
  mutable epoch : int; (* epoch currently being processed (= last committed between epochs) *)
  mutable gc_list : Row.t list;
  mutable gc_dedup : (int64, unit) Hashtbl.t;
  mutable touched : Row.t list; (* rows holding a version array this epoch *)
  mutable retain_gc_dedup : bool;
      (* lazy (persistent-index) recovery: stale versions are collected
         on first touch, possibly many epochs later, so the crashed
         epoch's durable-GC dedup set must outlive the replay *)
  mutable loaded : bool;
  pool : Dpool.t; (* domain pool driving eligible per-core phase loops *)
  mutable effects : effects_journal option;
      (* installed for the whole execute phase (at every width, so one
         code path produces one behaviour); [None] outside it *)
  mutable unmirrored_rows : bool;
      (* lazy (persistent-index) recovery left rows whose DRAM mirror
         loads on first touch — a shared-structure mutation the journal
         does not cover, so execution stays serial until cleared *)
  serial_reasons : int array;
      (* cumulative per-reason counts of serially-gated epochs, indexed
         by [serial_reason_index] *)
  mutable wide_execs : int;
      (* epochs whose execute phase actually ran wide (cumulative) —
         inspection only, so tests can assert the eligibility gate does
         not silently disengage *)
  (* Cumulative measurements, sharded by core so wide execution meters
     without contention (each stripe owns a disjoint set of cores). *)
  committed : int array;
  total_aborted : int array;
  mutable log_high_water : int;
  (* Per-epoch measurements (reset each epoch), sharded like the above. *)
  m_aborted : int array;
  m_version_writes : int array;
  m_persistent_writes : int array;
  m_minor_gc : int array;
  m_major_gc : int array;
  mutable m_evicted : int;
  mutable m_cache_hits0 : int;
  mutable m_cache_misses0 : int;
  mutable last_outcomes : [ `Committed | `Aborted | `Deferred ] array;
      (* per-txn outcome of the last batch, set at its checkpoint *)
  mutable phase_hook : phase_hook option;
  (* Observability (no-op sinks unless installed). *)
  mutable tracer : Tracer.t;
  mutable metrics : Metrics.t;
  mutable profile : Profile.t;
  mutable m_access0 : Stats.counters; (* access-counter totals at epoch start *)
}

let config t = t.config
let tables t = t.tables
let pmem t = t.pmem

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let build_layout (cfg : Config.t) =
  let b = Layout.builder () in
  let meta_r = Meta.reserve b ~n_counters:cfg.n_counters in
  let log_r = Log.reserve b ~capacity_bytes:cfg.log_capacity in
  let row_spec =
    Slab.reserve b ~name:"rows" ~cores:cfg.cores ~slots_per_core:cfg.rows_per_core
      ~slot_size:cfg.row_size ~freelist_capacity:cfg.freelist_capacity
  in
  let classes =
    match cfg.value_size_classes with [] -> [ cfg.value_slot_size ] | cs -> cs
  in
  let value_spec =
    VPools.reserve b ~cores:cfg.cores ~slots_per_core:cfg.values_per_core ~classes
      ~freelist_capacity:cfg.freelist_capacity
  in
  let pindex_r =
    if cfg.persistent_index then begin
      let capacity =
        if cfg.pindex_capacity > 0 then cfg.pindex_capacity
        else 2 * cfg.cores * cfg.rows_per_core
      in
      Some (PIdx.reserve b ~capacity)
    end
    else None
  in
  (Layout.total_size b, meta_r, log_r, row_spec, value_spec, pindex_r)

let attach (cfg : Config.t) tables pmem =
  let tables = Array.of_list tables in
  Array.iteri (fun i (tb : Table.t) -> assert (tb.Table.id = i)) tables;
  let _, meta_r, log_r, row_spec, value_spec, pindex_r = build_layout cfg in
  {
    config = cfg;
    tables;
    pmem;
    core_stats = Array.init cfg.cores (fun _ -> Stats.create cfg.spec);
    scratch = Stats.create cfg.spec;
    row_pool = Slab.attach pmem row_spec;
    value_pool = VPools.attach pmem value_spec;
    pindex = Option.map (PIdx.attach pmem) pindex_r;
    pix_delta = Hashtbl.create 256;
    log = Log.attach pmem log_r;
    meta = Meta.attach pmem meta_r ~n_counters:cfg.n_counters;
    indexes =
      Array.map
        (fun (tb : Table.t) ->
          match (tb.Table.index, cfg.Config.ordered_index) with
          | Table.Hash, _ -> Hash (HIdx.create ())
          | Table.Ordered, Config.Avl -> Ord (OIdx.create ())
          | Table.Ordered, Config.Btree -> Bt (BIdx.create ()))
        tables;
    tpool = TP.create ~cores:cfg.cores ~initial_capacity:(1 lsl 16);
    cache = Cache.create ~max_entries:cfg.cache_entries_max;
    counters = Array.make cfg.n_counters 0L;
    epoch = 0;
    gc_list = [];
    gc_dedup = Hashtbl.create 16;
    touched = [];
    retain_gc_dedup = false;
    loaded = false;
    pool = Dpool.shared ~width:cfg.parallelism;
    effects = None;
    unmirrored_rows = false;
    serial_reasons = Array.make (List.length all_serial_reasons) 0;
    wide_execs = 0;
    committed = Array.make cfg.cores 0;
    total_aborted = Array.make cfg.cores 0;
    log_high_water = 0;
    m_aborted = Array.make cfg.cores 0;
    m_version_writes = Array.make cfg.cores 0;
    m_persistent_writes = Array.make cfg.cores 0;
    m_minor_gc = Array.make cfg.cores 0;
    m_major_gc = Array.make cfg.cores 0;
    m_evicted = 0;
    m_cache_hits0 = 0;
    m_cache_misses0 = 0;
    last_outcomes = [||];
    phase_hook = None;
    tracer = Tracer.null;
    metrics = Metrics.null;
    profile = Profile.null;
    m_access0 = Stats.zero_counters;
  }

let create ~config ~tables () =
  let size, _, _, _, _, _ = build_layout config in
  let mode = if config.Config.crash_safe then Pmem.Crash_safe else Pmem.Fast in
  attach config tables (Pmem.create ~mode ~size ())

let epoch t = t.epoch

let set_phase_hook ?(defer = false) t hook =
  t.phase_hook <- Some { hk_fn = hook; hk_defer = defer }

(* ------------------------------------------------------------------ *)
(* Effect recording (the journal's write side; the apply side lives in
   [Effects] below, once the finalizer helpers it replays exist)        *)

(* The serial position of the transaction currently executing on this
   domain, or -1 outside a transaction body. Domain-local because wide
   execution runs transaction bodies on pool domains. *)
let cur_seq_key = Domain.DLS.new_key (fun () -> -1)
let set_cur_seq seq = Domain.DLS.set cur_seq_key seq

(* Record [e] under the current serial position. Returns false — and
   records nothing — when no journal is installed or the caller is not
   inside a transaction body (inspection reads, bulk load, recovery
   scaffolding); the caller then applies the effect immediately, which
   is exactly the serial semantics those paths want. *)
let record_effect t e =
  match t.effects with
  | None -> false
  | Some j ->
      let seq = Domain.DLS.get cur_seq_key in
      if seq < 0 then false
      else begin
        let s = seq mod j.ej_d in
        j.ej_shards.(s) <- (seq, e) :: j.ej_shards.(s);
        true
      end

let note_serial_reason t r =
  let i = serial_reason_index r in
  t.serial_reasons.(i) <- t.serial_reasons.(i) + 1;
  (* Mirror into the profiler's note counters so `--profile` shows why
     wide execution didn't happen right next to where the time went. *)
  Profile.note t.profile ("serial." ^ serial_reason_label r)

let serial_reasons t =
  List.filter_map
    (fun r ->
      let n = t.serial_reasons.(serial_reason_index r) in
      if n > 0 then Some (serial_reason_label r, n) else None)
    all_serial_reasons

let hook t phase =
  (* The chaos harness's in-epoch kill-9 point: between transactions of
     a running batch, where the most execution state is in flight. Never
     deferred — the whole point is to die with execution state in
     flight. *)
  (match phase with Exec_txn _ -> Nv_util.Crashpoint.hit "mid-epoch" | _ -> ());
  match t.phase_hook with
  | None -> ()
  | Some h -> if not (h.hk_defer && record_effect t (E_hook phase)) then h.hk_fn phase

(* Insert a finalized value into the committed-value cache: journaled
   during execution (the join barrier replays fills in ascending serial
   order, so admission sees the cache state the serial loop would and
   the DRAM cost lands on the recording core's meter), immediate
   otherwise. *)
let cache_insert_final t stats (row : Row.t) ~data =
  if not (record_effect t (E_cache_fill { st = stats; row; data })) then
    Cache.insert t.cache stats row ~data ~epoch:t.epoch

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)

let counters_total t =
  Array.fold_left
    (fun acc s -> Stats.merge_counters acc (Stats.counters s))
    Stats.zero_counters t.core_stats

let set_observability ?tracer ?metrics ?profile ?name t =
  (match tracer with
  | Some tr ->
      t.tracer <- tr;
      Tracer.set_clock tr (fun core ->
          Stats.now t.core_stats.(core mod Array.length t.core_stats));
      Tracer.open_process tr ~name:(Option.value name ~default:"nvcaracal")
  | None -> ());
  (match profile with Some p -> t.profile <- p | None -> ());
  match metrics with
  | Some m ->
      t.metrics <- m;
      if Metrics.enabled m then t.m_access0 <- counters_total t
  | None -> ()

(* Record one epoch-phase span per core: each begins at the core's
   clock when the phase starts (cores are aligned by the preceding
   barrier) and ends at that core's clock when the phase's work is done
   — so per-core skew inside a phase is visible in the trace. If [f]
   raises (crash injection), no span is recorded. *)
let phase_span t name f =
  let tr = t.tracer in
  let traced () =
    if not (Tracer.enabled tr) then f ()
    else begin
      let begins = Array.map Stats.now t.core_stats in
      let wts = Tracer.wall_now tr in
      let r = f () in
      let wdur = Tracer.wall_now tr -. wts in
      (* The wall clock is process-wide (the phase runs the cores'
         work in one fan-out), so every core's span carries the same
         wall window; skew between cores is a simulated-time notion. *)
      Array.iteri
        (fun core s ->
          Tracer.complete tr ~core ~name ~cat:"epoch" ~wts ~wdur ~ts:begins.(core)
            ~dur:(Stats.now s -. begins.(core)) ())
        t.core_stats;
      r
    end
  in
  Profile.phase t.profile name traced

(* Per-epoch metrics snapshot: engine counters come straight from the
   epoch report (so JSONL records reconcile exactly with what the
   harness prints); access counters are the per-epoch delta of the
   merged per-core {!Stats}; allocator/cache levels are gauges. *)
let publish_epoch_metrics t (r : Report.epoch_stats) =
  let m = t.metrics in
  if Metrics.enabled m then begin
    let c name v = Metrics.set_counter (Metrics.counter m name) v in
    let g name v = Metrics.set_gauge (Metrics.gauge m name) v in
    c "txns" r.Report.txns;
    c "committed" (r.Report.txns - r.Report.aborted);
    c "aborted" r.Report.aborted;
    c "version_writes" r.Report.version_writes;
    c "persistent_writes" r.Report.persistent_writes;
    c "transient_only_writes" r.Report.transient_only_writes;
    c "minor_gc" r.Report.minor_gc;
    c "major_gc" r.Report.major_gc;
    c "evicted" r.Report.evicted;
    c "cache_hits" r.Report.cache_hits;
    c "cache_misses" r.Report.cache_misses;
    c "log_bytes" r.Report.log_bytes;
    g "duration_ns" r.Report.duration_ns;
    let tot = counters_total t in
    let d = t.m_access0 in
    c "dram_reads" (tot.Stats.dram_reads - d.Stats.dram_reads);
    c "dram_writes" (tot.Stats.dram_writes - d.Stats.dram_writes);
    c "nvmm_block_reads" (tot.Stats.nvmm_block_reads - d.Stats.nvmm_block_reads);
    c "nvmm_block_writes" (tot.Stats.nvmm_block_writes - d.Stats.nvmm_block_writes);
    c "nvmm_seq_bytes" (tot.Stats.nvmm_seq_bytes - d.Stats.nvmm_seq_bytes);
    c "pmem_flushes" (tot.Stats.flushes - d.Stats.flushes);
    c "pmem_fences" (tot.Stats.fences - d.Stats.fences);
    c "compute_ops" (tot.Stats.compute_ops - d.Stats.compute_ops);
    t.m_access0 <- tot;
    g "rows_allocated" (float_of_int (Slab.allocated_slots t.row_pool));
    g "value_bytes_allocated" (float_of_int (VPools.allocated_bytes t.value_pool));
    g "transient_peak_bytes" (float_of_int (TP.peak_bytes t.tpool));
    g "cache_entries" (float_of_int (Cache.entries t.cache));
    g "cache_bytes" (float_of_int (Cache.data_bytes t.cache));
    g "log_high_water_bytes" (float_of_int t.log_high_water);
    (* Fault gauges only exist once faults have been injected, so
       fault-free runs emit byte-identical metric records. *)
    if Pmem.faults_injected t.pmem then begin
      let fr = Pmem.faults t.pmem in
      c "media_fault_reads" (counters_total t).Stats.media_faults;
      g "faults_torn_lines" (float_of_int fr.Pmem.torn_lines);
      g "faults_rotted_lines" (float_of_int fr.Pmem.rotted_lines);
      g "faults_flipped_bits" (float_of_int fr.Pmem.flipped_bits);
      g "faults_dead_lines" (float_of_int fr.Pmem.dead_lines)
    end;
    (* Serial-gate telemetry is deliberately NOT published here: the
       registry's records are byte-identical at any --jobs, and which
       gate fired (e.g. [width]) depends on the pool width. The
       width-dependent counters live on the monitoring surfaces instead
       — {!serial_reasons}, the profiler's note counters, and the
       server's live-stats snapshot. *)
    ignore (Metrics.snapshot m ~epoch:t.epoch)
  end

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let core_of t seq = seq mod t.config.Config.cores
let stats_of t core = t.core_stats.(core)
let pool t = t.pool

let barrier t =
  let m = Array.fold_left (fun acc s -> Float.max acc (Stats.now s)) 0.0 t.core_stats in
  Array.iter (fun s -> Stats.set_now s m) t.core_stats;
  m

let find_row t stats ~table ~key =
  match t.indexes.(table) with
  | Hash h -> HIdx.find h stats key
  | Ord o -> OIdx.find o stats key
  | Bt b -> BIdx.find b stats key

let index_insert t stats ~table ~key row =
  match t.indexes.(table) with
  | Hash h -> HIdx.insert h stats key row
  | Ord o -> OIdx.insert o stats key row
  | Bt b -> BIdx.insert b stats key row

let index_remove t stats ~table ~key =
  match t.indexes.(table) with
  | Hash h -> HIdx.remove h stats key
  | Ord o -> OIdx.remove o stats key
  | Bt b -> BIdx.remove b stats key

let is_pool ptr = match Vptr.classify ptr with Vptr.Pool _ -> true | _ -> false
let is_inline ptr = match Vptr.classify ptr with Vptr.Inline _ -> true | _ -> false

(* Store one version value into the transient pool, charging per the
   design variant: DRAM for NVCaracal/all-DRAM, NVMM for designs that
   persist every update. The initial-version copy counts as a DRAM
   cache fill for the hybrid design (its cache works like Zen's). *)
let store_version_value t stats ~core ?(initial = false) data =
  let nvmm_path =
    Config.writes_all_updates_to_nvmm t.config
    && not (initial && t.config.Config.variant = Config.Hybrid)
  in
  let vref = TP.write t.tpool stats ~charge:(not nvmm_path) ~core data in
  if nvmm_path then begin
    (* Every update is individually made durable (these designs recover
       from the updates themselves): a flush per update costs a full
       NVMM block write — Optane's 256-byte internal write — even for
       small values. *)
    let len = Bytes.length data in
    Stats.nvmm_write_blocks stats (Memspec.blocks_touched (Stats.spec stats) ~off:0 ~len)
  end;
  if Config.redo_logs_updates t.config then
    (* Traditional WAL (section 2.1): every committed update is
       redo-logged to NVMM before it is checkpointed in place. *)
    Stats.nvmm_seq_write stats ~bytes:(24 + Bytes.length data);
  t.m_version_writes.(core) <- t.m_version_writes.(core) + 1;
  vref

let load_version_value t stats ~initial vref =
  let nvmm_path =
    Config.writes_all_updates_to_nvmm t.config
    && not (initial && t.config.Config.variant = Config.Hybrid)
  in
  let data = TP.read t.tpool stats ~charge:(not nvmm_path) vref in
  if nvmm_path then
    Stats.nvmm_read_lines stats
      (Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length data));
  data

(* The latest persistent version visible at checkpoint granularity:
   v2 unless it is empty or newer than [max_epoch] — during epoch
   execution the bound is the previous epoch (a replayed epoch must not
   read its own pre-crash writes); between epochs it is the committed
   epoch itself. *)
let checkpoint_pversion ?max_epoch t (row : Row.t) =
  let limit = match max_epoch with Some e -> e | None -> t.epoch - 1 in
  let usable (v : Row.pversion) =
    (not (Sid.is_none v.Row.psid)) && Sid.epoch_of v.Row.psid <= limit
  in
  if usable row.Row.pv2 then Some row.Row.pv2
  else if usable row.Row.pv1 then Some row.Row.pv1
  else None

(* Lazily load the DRAM mirror of a row recovered via the persistent
   index, completing any torn version update found in the header (the
   same section 4.5 repairs the recovery scan performs eagerly). *)
let ensure_mirror t stats (row : Row.t) =
  if not row.Row.mirror_loaded then begin
    let _key, _table, v1, v2 = Prow.read_header t.pmem stats ~base:row.Row.prow_base in
    let base = row.Row.prow_base in
    (* Torn case 1: equal SIDs = an interrupted GC move; complete it. *)
    let v1, v2 =
      if (not (Sid.is_none v1.Prow.sid)) && Sid.compare v1.Prow.sid v2.Prow.sid = 0 then begin
        Prow.repair_case1 t.pmem stats ~base ();
        let v1, v2 = Prow.peek_versions t.pmem ~base in
        (v1, v2)
      end
      else (v1, v2)
    in
    (* Torn case 2: SID nulled but not the pointer. *)
    let v2 =
      if Sid.is_none v2.Prow.sid && not (Vptr.is_null v2.Prow.ptr) then begin
        Prow.repair_case2 t.pmem stats ~base ();
        { Prow.sid = Sid.none; ptr = Vptr.null }
      end
      else v2
    in
    row.Row.pv1 <- { Row.psid = v1.Prow.sid; pptr = v1.Prow.ptr; fresh = false };
    row.Row.pv2 <- { Row.psid = v2.Prow.sid; pptr = v2.Prow.ptr; fresh = false };
    row.Row.mirror_loaded <- true
  end

(* Read a row's committed value from the DRAM cache or from NVMM,
   optionally filling the cache on a miss. *)
let committed_read ?max_epoch t stats (row : Row.t) ~fill_cache =
  ensure_mirror t stats row;
  let caching = Config.caching_enabled t.config in
  match row.Row.cached with
  | Some c when caching ->
      Cache.touch t.cache row ~epoch:t.epoch;
      Stats.dram_read stats
        ~lines:(Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length c.Row.data))
        ();
      Some c.Row.data
  | _ -> (
      match checkpoint_pversion ?max_epoch t row with
      | None -> None
      | Some pv ->
          if caching then Cache.note_miss t.cache;
          Stats.nvmm_read_blocks stats 1;
          let data =
            Prow.read_value t.pmem stats ~base:row.Row.prow_base pv.Row.pptr
              ~header_charged:true ()
          in
          (* Selective caching (section 7 future work): cold reads do
             not populate the cache; only written rows do. *)
          if caching && fill_cache && not t.config.Config.selective_caching then
            cache_insert_final t stats row ~data;
          Some data)

(* ------------------------------------------------------------------ *)
(* Version arrays                                                      *)

let ensure_varray t stats ~core (row : Row.t) =
  if row.Row.varray_epoch <> t.epoch || row.Row.varray = None then begin
    let va =
      VA.create ~epoch:t.epoch
        ~nvmm_resident:(not (Config.uses_dram_version_arrays t.config))
        ~batch_append:t.config.Config.batch_append ()
    in
    row.Row.varray <- Some va;
    row.Row.varray_epoch <- t.epoch;
    t.touched <- row :: t.touched;
    ensure_mirror t stats row;
    (* Copy the committed value in as the initial version; the cached
       version, if any, is consumed (paper section 4.1). *)
    let init_data =
      match row.Row.cached with
      | Some c when Config.caching_enabled t.config ->
          Stats.dram_read stats
            ~lines:
              (Memspec.lines_touched (Stats.spec stats) ~off:0 ~len:(Bytes.length c.Row.data))
            ();
          let data = c.Row.data in
          Cache.drop t.cache stats row;
          Some data
      | _ -> (
          match checkpoint_pversion t row with
          | None -> None
          | Some pv ->
              Stats.nvmm_read_blocks stats 1;
              Some
                (Prow.read_value t.pmem stats ~base:row.Row.prow_base pv.Row.pptr
                   ~header_charged:true ()))
    in
    match init_data with
    | None -> ()
    | Some data ->
        VA.append va stats Sid.none;
        let slot = VA.find va stats Sid.none in
        slot.VA.value <- VA.Written (store_version_value t stats ~core ~initial:true data);
        slot.VA.write_time <- Stats.now stats;
        (* The copy is bookkeeping, not an update. *)
        t.m_version_writes.(core) <- t.m_version_writes.(core) - 1
  end;
  match row.Row.varray with Some va -> va | None -> assert false

(* ------------------------------------------------------------------ *)
(* Final persistent write (sections 4.4–4.6, 5.3)                      *)

let free_pool_value ?(guard_dedup = false) t stats ~core ptr =
  match Vptr.classify ptr with
  | Vptr.Pool { off; _ } ->
      (* A lazily-recovered row may still reference a value the crashed
         epoch's GC already freed durably (its pass 2 never cleared the
         version slot): freeing it again would hand the slot out twice. *)
      if not (guard_dedup && Hashtbl.mem t.gc_dedup (Int64.of_int off)) then
        VPools.free t.value_pool stats ~core off
  | Vptr.Null | Vptr.Inline _ -> ()

(* Write (sid, data) as the row's new recent version, rotating the
   dual-version slots as required and preserving the previous epoch's
   checkpointed version. *)
let do_prow_final_write t stats ~core (row : Row.t) ~sid ~data =
  ensure_mirror t stats row;
  let cfg = t.config in
  let charge = not (Config.writes_all_updates_to_nvmm cfg) in
  let base = row.Row.prow_base in
  if Sid.epoch_of row.Row.pv2.Row.psid = t.epoch then begin
    (* Overwrite: the slot was written this epoch (insert-step data
       followed by an update, or a pre-crash write found during replay).
       A value slot we allocated ourselves is freed (revertible free); a
       slot inherited from the crashed epoch was already reverted by the
       pool recovery and must not be freed. *)
    if row.Row.pv2.Row.fresh then free_pool_value t stats ~core row.Row.pv2.Row.pptr
  end
  else if not (Sid.is_none row.Row.pv2.Row.psid) then begin
    (* Rotate v2 (the previous checkpoint) into v1 before overwriting.
       A stale v1 can only be inline here: stale pool values are always
       collected by the major collector during initialization. *)
    let v1 = row.Row.pv1 in
    if not (Sid.is_none v1.Row.psid) then begin
      if is_inline v1.Row.pptr && cfg.Config.minor_gc then
        t.m_minor_gc.(core) <- t.m_minor_gc.(core) + 1
      else if row.Row.lazily_recovered then begin
        (* Lazy (persistent-index) recovery skips the scan that rebuilds
           the major-GC list, so a stale version is collected here, on
           first touch. The dedup set guards against re-freeing a value
           the crashed epoch's GC already made durable. *)
        (match Vptr.classify v1.Row.pptr with
        | Vptr.Pool { off; _ } when not (Hashtbl.mem t.gc_dedup (Int64.of_int off)) ->
            VPools.free t.value_pool stats ~core off
        | Vptr.Pool _ | Vptr.Null | Vptr.Inline _ -> ());
        t.m_major_gc.(core) <- t.m_major_gc.(core) + 1
      end
      else if not (is_inline v1.Row.pptr) then
        failwith "Db: stale non-inline v1 at write time (major GC missed a row)"
      else failwith "Db: stale v1 at write time with minor GC disabled"
    end;
    Prow.gc_move t.pmem stats ~base ~charge:false ();
    row.Row.pv1 <- { row.Row.pv2 with Row.fresh = false };
    row.Row.pv2 <- Row.no_version
  end;
  let len = Bytes.length data in
  let ptr, fresh =
    if len <= Prow.half_capacity ~row_size:cfg.Config.row_size then begin
      let half = Row.free_half ~row_size:cfg.Config.row_size row.Row.pv1 in
      ( Prow.write_inline_value t.pmem stats ~base ~row_size:cfg.Config.row_size ~half ~data
          ~charge (),
        false )
    end
    else begin
      let off = VPools.alloc t.value_pool stats ~core ~len in
      VPools.write_value t.value_pool stats ~charge ~off ~data ();
      (Vptr.pool ~off ~len, true)
    end
  in
  Prow.set_version t.pmem stats ~base ~slot:`V2 ~sid ~ptr ~charge ();
  row.Row.pv2 <- { Row.psid = sid; pptr = ptr; fresh };
  t.m_persistent_writes.(core) <- t.m_persistent_writes.(core) + 1;
  (* Track the now-stale v1 for the major collector; inline stale
     versions are left for the minor collector instead. The push mutates
     a shared list in serial order, so during execution it is journaled
     (a row finalizes on exactly one stripe, so the [in_gc_list] guard
     is stripe-local). *)
  if
    (not (Sid.is_none row.Row.pv1.Row.psid))
    && (not row.Row.in_gc_list)
    && (is_pool row.Row.pv1.Row.pptr || not cfg.Config.minor_gc)
  then begin
    if not (record_effect t (E_gc_push row)) then t.gc_list <- row :: t.gc_list;
    row.Row.in_gc_list <- true
  end

(* Persistently delete a row: free its value slots and the row itself
   (all revertible transaction frees), and unhook the DRAM state. *)
let do_prow_delete t stats ~core (row : Row.t) =
  ensure_mirror t stats row;
  let guard_dedup = row.Row.lazily_recovered in
  free_pool_value ~guard_dedup t stats ~core row.Row.pv1.Row.pptr;
  free_pool_value ~guard_dedup t stats ~core row.Row.pv2.Row.pptr;
  Slab.free t.row_pool stats ~core row.Row.prow_base;
  index_remove t stats ~table:row.Row.table ~key:row.Row.key;
  if t.pindex <> None then begin
    (* Net delta: an insert and delete of the same key in one epoch
       cancel out; a delete of a pre-existing key becomes a tombstone. *)
    let k = (row.Row.table, row.Row.key) in
    match Hashtbl.find_opt t.pix_delta k with
    | Some (`Ins _) -> Hashtbl.remove t.pix_delta k
    | Some `Del | None -> Hashtbl.replace t.pix_delta k `Del
  end;
  Cache.drop t.cache stats row;
  row.Row.pv1 <- Row.no_version;
  row.Row.pv2 <- Row.no_version;
  t.m_persistent_writes.(core) <- t.m_persistent_writes.(core) + 1

(* Flush the epoch's net index changes to the persistent index in one
   batch (section 7 future work): part of the epoch checkpoint, before
   the epoch number is persisted. *)
let apply_pindex_delta t stats =
  match t.pindex with
  | None -> ()
  | Some pix ->
      if Hashtbl.length t.pix_delta > 0 then begin
        let inserts = ref [] and deletes = ref [] in
        Hashtbl.iter
          (fun (table, key) change ->
            match change with
            | `Ins base -> inserts := (key, base, table) :: !inserts
            | `Del -> deletes := (key, table) :: !deletes)
          t.pix_delta;
        PIdx.apply_batch pix stats ~epoch:t.epoch ~inserts:!inserts ~deletes:!deletes;
        Hashtbl.reset t.pix_delta
      end

(* ------------------------------------------------------------------ *)
(* The effect journal's apply side                                      *)

(* Execution-phase side effects that must land in serial order are
   recorded per stripe (see [record_effect]) and replayed here at the
   join barrier, in ascending serial position. The journal is installed
   at every width — one code path, one behaviour — so the wide run's
   structures, charges and pmem bytes match the serial run's by
   construction rather than by per-feature argument. *)
module Effects = struct
  let begin_exec t ~d =
    assert (t.effects = None);
    t.effects <- Some { ej_d = d; ej_shards = Array.make d [] };
    if d > 1 then t.wide_execs <- t.wide_execs + 1

  (* Exactly the statement the serial-order loop would have executed in
     the transaction's place. Charges land on the meter captured at
     record time (the executing core's), so per-core costs are
     width-independent. *)
  let apply t = function
    | E_gc_push row -> t.gc_list <- row :: t.gc_list
    | E_cache_fill { st; row; data } -> Cache.insert t.cache st row ~data ~epoch:t.epoch
    | E_delete { core; row } -> do_prow_delete t (stats_of t core) ~core row
    | E_hook p -> (match t.phase_hook with Some h -> h.hk_fn p | None -> ())
    | E_observe { hist; v } -> Metrics.observe hist v
    | E_trace emit -> emit ()

  (* Replay and uninstall. Shards are newest-first, so each reverses to
     ascending serial position; a stable merge then interleaves them.
     Entries sharing a seq never span shards (a transaction runs on one
     stripe), so within-transaction record order survives the sort. The
     journal is uninstalled *before* replay: an effect recorded from
     inside an apply (none today) would fall through to its immediate
     serial form instead of landing in a journal being drained. *)
  let drain t =
    match t.effects with
    | None -> ()
    | Some j ->
        t.effects <- None;
        let merged =
          if j.ej_d = 1 then List.rev j.ej_shards.(0)
          else
            List.stable_sort
              (fun (a, _) (b, _) -> compare a b)
              (List.concat_map List.rev (Array.to_list j.ej_shards))
        in
        List.iter (fun (_, e) -> apply t e) merged

  (* Discard without applying: execution died (crash injection). The
     replacement state is rebuilt by recovery's deterministic replay,
     which re-records and re-applies the same effects. *)
  let abort t = t.effects <- None

  let record = record_effect
end

(* ------------------------------------------------------------------ *)
(* Shared epoch scaffolding (used by both CC strategies)               *)

let reset_epoch_measurements t =
  Array.fill t.m_aborted 0 (Array.length t.m_aborted) 0;
  Array.fill t.m_version_writes 0 (Array.length t.m_version_writes) 0;
  Array.fill t.m_persistent_writes 0 (Array.length t.m_persistent_writes) 0;
  Array.fill t.m_minor_gc 0 (Array.length t.m_minor_gc) 0;
  Array.fill t.m_major_gc 0 (Array.length t.m_major_gc) 0;
  t.m_evicted <- 0;
  t.m_cache_hits0 <- Cache.hits t.cache;
  t.m_cache_misses0 <- Cache.misses t.cache

(* Open the next epoch: bump the number, reset the per-epoch meters and
   the touched-row list. *)
let begin_epoch t =
  t.epoch <- t.epoch + 1;
  Profile.epoch_begin t.profile ~epoch:t.epoch;
  reset_epoch_measurements t;
  t.touched <- []

(* Log transaction inputs (section 4.3): length-prefixed records,
   clwb'd, fence, publish the count, fence. Skipped during replay (the
   log being replayed must not be overwritten). *)
let log_inputs t ~replay txns =
  phase_span t "input-log" (fun () ->
      if Config.logging_enabled t.config && not replay then begin
        Log.begin_epoch t.log (stats_of t 0) ~epoch:t.epoch;
        Array.iteri
          (fun i (txn : Txn.t) -> Log.append t.log (stats_of t (core_of t i)) txn.Txn.input)
          txns;
        Log.commit t.log (stats_of t 0);
        t.log_high_water <- max t.log_high_water (Log.bytes_appended t.log)
      end;
      hook t Log_done)

(* The epoch checkpoint's first half: persist each core's allocator
   bump offsets and free-list head/tail into the epoch-parity slots,
   persist counters, apply the persistent-index delta. The caller
   persists the epoch number afterwards. *)
let checkpoint_allocators t =
  let stats0 = stats_of t 0 in
  phase_span t "fence" (fun () ->
      Slab.checkpoint t.row_pool (stats_of t) ~epoch:t.epoch;
      VPools.checkpoint t.value_pool (stats_of t) ~epoch:t.epoch;
      if t.config.Config.n_counters > 0 then
        Meta.checkpoint_counters t.meta stats0 ~epoch:t.epoch (Array.copy t.counters);
      apply_pindex_delta t stats0)

(* Assemble the epoch's report from the per-epoch meters and publish it
   to the metrics sink. [phases] is the CC strategy's barrier-to-barrier
   breakdown. *)
let epoch_report t ~txns:n ~replay ~duration ~phases =
  let cache_hits = Cache.hits t.cache - t.m_cache_hits0 in
  let cache_misses = Cache.misses t.cache - t.m_cache_misses0 in
  let log_bytes =
    if Config.logging_enabled t.config && not replay then Log.bytes_appended t.log else 0
  in
  (* Fold the per-core meter shards with the associative merge: shard
     [c] carries core [c]'s counters, and the epoch-global pieces ride
     on shard 0. Folding in core order gives one deterministic result at
     any pool width. *)
  let shard c =
    {
      Report.epoch = t.epoch;
      txns = n;
      aborted = t.m_aborted.(c);
      version_writes = t.m_version_writes.(c);
      persistent_writes = t.m_persistent_writes.(c);
      transient_only_writes = t.m_version_writes.(c) - t.m_persistent_writes.(c);
      minor_gc = t.m_minor_gc.(c);
      major_gc = t.m_major_gc.(c);
      evicted = (if c = 0 then t.m_evicted else 0);
      cache_hits = (if c = 0 then cache_hits else 0);
      cache_misses = (if c = 0 then cache_misses else 0);
      log_bytes = (if c = 0 then log_bytes else 0);
      duration_ns = duration;
      phases = (if c = 0 then phases else []);
    }
  in
  let report =
    Array.fold_left Report.merge_epoch_stats Report.zero_epoch_stats
      (Array.init t.config.Config.cores shard)
  in
  publish_epoch_metrics t report;
  Profile.epoch_end t.profile;
  report

(* ------------------------------------------------------------------ *)
(* Bulk load                                                           *)

(* Materialize one initial row (slab slot, persistent header, value,
   version) on its home core; indexing is the caller's job. Everything
   here touches only core-local allocators and this row's NVMM bytes,
   so distinct rows may load on distinct domains. *)
let bulk_load_row t idx (table, key, data) =
  let cfg = t.config in
  let core = core_of t idx in
  let stats = stats_of t core in
  let base = Slab.alloc t.row_pool stats ~core in
  Prow.init t.pmem stats ~base ~key ~table;
  let row = Row.make ~key ~table ~home_core:core ~prow_base:base ~created_epoch:0 in
  let sid = Sid.make ~epoch:1 ~seq:0 in
  let len = Bytes.length data in
  let ptr =
    if len <= Prow.half_capacity ~row_size:cfg.Config.row_size then
      Prow.write_inline_value t.pmem stats ~base ~row_size:cfg.Config.row_size ~half:0 ~data ()
    else begin
      let off = VPools.alloc t.value_pool stats ~core ~len in
      VPools.write_value t.value_pool stats ~off ~data ();
      Vptr.pool ~off ~len
    end
  in
  Prow.set_version t.pmem stats ~base ~slot:`V2 ~sid ~ptr ();
  row.Row.pv2 <- { Row.psid = sid; pptr = ptr; fresh = false };
  row

let bulk_load t rows =
  if t.loaded then invalid_arg "Db.bulk_load: already loaded";
  t.epoch <- 1;
  let cfg = t.config in
  let arr = Array.of_seq rows in
  let n = Array.length arr in
  let wide =
    Dpool.width t.pool > 1 && n > 1
    && ((not cfg.Config.crash_safe) || cfg.Config.row_size mod 64 = 0)
    && not (Dpool.in_task ())
  in
  if not wide then
    Array.iteri
      (fun idx ((table, key, _) as spec) ->
        let row = bulk_load_row t idx spec in
        index_insert t (stats_of t (core_of t idx)) ~table ~key row;
        if t.pindex <> None then
          Hashtbl.replace t.pix_delta (table, key) (`Ins row.Row.prow_base))
      arr
  else begin
    (* Wide load: stripes own disjoint cores, so allocators, clocks and
       persistent row bytes are domain-confined (rows on one core's
       arena load on one stripe, and cache-line-aligned rows never share
       a line across cores — the crash-safe gate above); newly-dirtied
       pmem lines accumulate per stripe and are unioned at the join. The
       DRAM index and persistent-index delta are then built serially in
       ascending order — the exact structures the serial loop builds.
       (Load-time access charges are reset below either way.) *)
    let made = Array.make n None in
    let d = Dpool.stripes t.pool ~cores:cfg.Config.cores in
    Pmem.begin_stripes t.pmem ~n:d;
    ignore
      (Dpool.run t.pool ~n:d (fun s ->
           Pmem.set_stripe t.pmem s;
           let i = ref s in
           while !i < n do
             made.(!i) <- Some (bulk_load_row t !i arr.(!i));
             i := !i + d
           done));
    Pmem.end_stripes t.pmem;
    Array.iteri
      (fun idx (table, key, _) ->
        match made.(idx) with
        | Some row ->
            index_insert t (stats_of t (core_of t idx)) ~table ~key row;
            if t.pindex <> None then
              Hashtbl.replace t.pix_delta (table, key) (`Ins row.Row.prow_base)
        | None -> assert false)
      arr
  end;
  let stats0 = stats_of t 0 in
  Slab.checkpoint t.row_pool (stats_of t) ~epoch:1;
  VPools.checkpoint t.value_pool (stats_of t) ~epoch:1;
  if cfg.Config.n_counters > 0 then
    Meta.checkpoint_counters t.meta stats0 ~epoch:1 (Array.copy t.counters);
  apply_pindex_delta t stats0;
  Meta.persist_magic t.meta stats0;
  Meta.persist_epoch t.meta stats0 ~epoch:1;
  (* Loading is setup, not workload: forget its costs. *)
  Array.iter Stats.reset t.core_stats;
  Array.fill t.committed 0 (Array.length t.committed) 0;
  Array.fill t.total_aborted 0 (Array.length t.total_aborted) 0;
  t.loaded <- true

(* ------------------------------------------------------------------ *)
(* Inspection                                                          *)

let latest_pversion t (row : Row.t) =
  ensure_mirror t t.scratch row;
  if not (Sid.is_none row.Row.pv2.Row.psid) then Some row.Row.pv2
  else if not (Sid.is_none row.Row.pv1.Row.psid) then Some row.Row.pv1
  else None

let advance_core t ~core ~ns = Stats.advance (stats_of t core) ns

let snapshot_read t ~core ~table ~key =
  let stats = stats_of t core in
  match find_row t stats ~table ~key with
  | None -> None
  | Some row -> committed_read ~max_epoch:t.epoch t stats row ~fill_cache:true

let read_committed t ~table ~key =
  match find_row t t.scratch ~table ~key with
  | None -> None
  | Some row -> (
      match latest_pversion t row with
      | None -> None
      | Some pv -> Some (Prow.read_value t.pmem t.scratch ~base:row.Row.prow_base pv.Row.pptr ()))

let iter_committed t ~table f =
  let visit key (row : Row.t) =
    match latest_pversion t row with
    | None -> ()
    | Some pv -> f key (Prow.read_value t.pmem t.scratch ~base:row.Row.prow_base pv.Row.pptr ())
  in
  match t.indexes.(table) with
  | Hash h -> HIdx.iter h visit
  | Ord o -> OIdx.iter o visit
  | Bt b -> BIdx.iter b visit

let mem_report t =
  let index_bytes =
    Array.fold_left
      (fun acc idx ->
        acc
        + (match idx with
          | Hash h -> HIdx.dram_bytes h
          | Ord o -> OIdx.dram_bytes o
          | Bt b -> BIdx.dram_bytes b))
      0 t.indexes
  in
  {
    Report.nvmm_rows = Slab.allocated_slots t.row_pool * t.config.Config.row_size;
    nvmm_values = VPools.allocated_bytes t.value_pool;
    nvmm_log = t.log_high_water;
    nvmm_freelists =
      Slab.nvmm_bytes t.row_pool
      - (t.config.Config.rows_per_core * t.config.Config.cores * t.config.Config.row_size)
      + VPools.meta_bytes t.value_pool
      + (match t.pindex with Some p -> PIdx.nvmm_bytes p | None -> 0);
    dram_index = index_bytes;
    dram_transient = TP.peak_bytes t.tpool;
    dram_cache = Cache.dram_bytes t.cache;
  }

let committed_txns t = Array.fold_left ( + ) 0 t.committed
let aborted_txns t = Array.fold_left ( + ) 0 t.total_aborted
let wide_execs t = t.wide_execs

let total_time_ns t =
  Array.fold_left (fun acc s -> Float.max acc (Stats.now s)) 0.0 t.core_stats

let counter_value t i = t.counters.(i)

let last_batch_outcomes t = t.last_outcomes

let last_epoch_outcomes t =
  (* The historical two-variant view: serial CC never defers, so the
     collapse below only matters if callers mix it with Aria batches. *)
  Array.map
    (function `Committed -> `Committed | `Aborted | `Deferred -> `Aborted)
    t.last_outcomes

let debug_row t ~table ~key =
  match find_row t t.scratch ~table ~key with
  | None -> "absent"
  | Some row ->
      ensure_mirror t t.scratch row;
      Format.asprintf "v1=(%a,%a) v2=(%a,%a)%s" Sid.pp row.Row.pv1.Row.psid Vptr.pp
        row.Row.pv1.Row.pptr Sid.pp row.Row.pv2.Row.psid Vptr.pp row.Row.pv2.Row.pptr
        (if row.Row.lazily_recovered then " lazy" else "")
