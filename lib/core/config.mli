(** Engine configuration: design variant, sizing, and feature toggles.

    The design variants are the systems compared in the paper's
    evaluation (sections 6.4 and 6.7); all run on the same engine code
    with different storage/charging policies:

    - [Nvcaracal] — the full design: transient versions in DRAM,
      dual-version persistent rows, input logging, caching, GC.
    - [All_nvmm] — baseline: version arrays and all version values live
      in NVMM; no DRAM cache; no logging (Figure 7).
    - [Hybrid] — version arrays in DRAM but {e every} update is written
      to NVMM; Zen-style DRAM cache; no logging (Figure 7).
    - [No_logging] — NVCaracal without input logging; cannot recover
      (Figure 10).
    - [All_dram] — NVCaracal's code with DRAM costs for everything and
      no logging; the upper-bound configuration of Figure 10.
    - [Wal] — traditional write-ahead logging in NVMM (section 2.1):
      every update is redo-logged and later checkpointed in place, two
      NVMM writes per update; an extension baseline, not in the paper's
      figures. *)

type variant = Nvcaracal | All_nvmm | Hybrid | No_logging | All_dram | Wal

type ordered_index = Avl | Btree
(** Implementation backing [Table.Ordered] tables: an AVL tree or a
    wide-node B+-tree (the default — closer to Caracal's Masstree
    access pattern). *)

type t = {
  variant : variant;
  cores : int;
  row_size : int;  (** persistent row size, bytes (paper default 256) *)
  value_slot_size : int;  (** persistent value pool slot, bytes (1024) *)
  value_size_classes : int list;
      (** optional size-classed value pools (section 5.5's power-of-two
          extension); empty = a single [value_slot_size] class *)
  cache_k : int;  (** evict cached versions unused for K epochs (20) *)
  minor_gc : bool;  (** minor collector enabled (section 4.4) *)
  cached_versions : bool;  (** DRAM cached versions enabled (section 4.2) *)
  crash_safe : bool;  (** track persistence for crash injection *)
  rows_per_core : int;  (** persistent row pool capacity per core *)
  values_per_core : int;  (** persistent value pool capacity per core *)
  freelist_capacity : int;  (** ring entries per core per pool *)
  log_capacity : int;  (** input-log region bytes *)
  n_counters : int;  (** persistent counters (TPC-C order ids) *)
  revert_on_recovery : bool;  (** revert crashed-epoch persistent writes during the recovery scan
      (TPC-C's non-deterministic-counter fix, section 6.2.3) *)
  cache_entries_max : int;  (** DRAM cache entry limit (Table 4) *)
  ordered_index : ordered_index;
  batch_append : bool;
      (** Caracal's batch-append optimization: version-array appends are
          buffered per core and merged in one pass, removing the
          long-sorted-array penalty of section 6.9 *)
  selective_caching : bool;
      (** Future-work policy from section 7: only create cached versions
          for rows being written (no cache fills on read misses) *)
  persistent_index : bool;
      (** Future-work design from section 7: maintain a persistent hash
          index in NVMM, updated in one batch per epoch; recovery then
          rebuilds the DRAM index from a sequential bucket scan and
          loads per-row version state lazily, instead of scanning every
          persistent row up front *)
  pindex_capacity : int;
      (** buckets in the persistent index; 0 derives 2x the row-pool
          capacity *)
  parallelism : int;
      (** run eligible per-core phase loops on up to this many OCaml
          domains ({!Nv_util.Dpool}); 1 (the default) is the serial
          engine, and seeded outputs are identical at any setting *)
  spec : Nv_nvmm.Memspec.t;
}

val default : t
(** NVCaracal, 8 cores, 256-byte rows, K=20 — the paper's defaults,
    with pool capacities sized for the scaled-down benchmarks. *)

val make :
  ?variant:variant ->
  ?cores:int ->
  ?row_size:int ->
  ?value_slot_size:int ->
  ?value_size_classes:int list ->
  ?cache_k:int ->
  ?minor_gc:bool ->
  ?cached_versions:bool ->
  ?crash_safe:bool ->
  ?rows_per_core:int ->
  ?values_per_core:int ->
  ?freelist_capacity:int ->
  ?log_capacity:int ->
  ?n_counters:int ->
  ?revert_on_recovery:bool ->
  ?cache_entries_max:int ->
  ?ordered_index:ordered_index ->
  ?batch_append:bool ->
  ?selective_caching:bool ->
  ?persistent_index:bool ->
  ?pindex_capacity:int ->
  ?parallelism:int ->
  unit ->
  t
(** [default] with overrides. The [All_dram] variant forces the
    DRAM-cost memory spec. *)

val logging_enabled : t -> bool
val caching_enabled : t -> bool
val uses_dram_version_arrays : t -> bool
(** False only for [All_nvmm], whose version arrays are charged as NVMM
    traffic. *)

val writes_all_updates_to_nvmm : t -> bool
(** True for [All_nvmm] and [Hybrid]: intermediate version values are
    charged as NVMM writes. *)

val redo_logs_updates : t -> bool
(** True for [Wal]: every version write is also appended to a redo log
    in NVMM. *)

val pp_variant : Format.formatter -> variant -> unit
val variant_name : variant -> string
