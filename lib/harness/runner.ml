module Config = Nvcaracal.Config
module Db = Nvcaracal.Db
module Engine_intf = Nvcaracal.Engine_intf
module Report = Nvcaracal.Report
module W = Nv_workloads.Workload

type result = {
  label : string;
  txns : int;
  committed : int;
  aborted : int;
  sim_seconds : float;
  throughput : float;
  transient_frac : float;
  minor_gc : int;
  major_gc : int;
  cache_hits : int;
  cache_misses : int;
  log_bytes : int;
  epoch_latency : Nv_util.Histogram.t;
  last_epoch_phases : (string * float) list;
  mem : Report.mem_report;
}

type setup = Engine.setup = {
  epochs : int;
  epoch_txns : int;
  seed : int;
  row_size : int;
  cache_entries : int;
  insert_growth : int;
}

let setup = Engine.setup

(* Observability sinks shared by every run in the process. The bench /
   CLI front-ends point these at real instances when --trace/--metrics
   is given; the defaults are the no-op sinks, so experiment code never
   has to thread them through. *)
let default_tracer : Nv_obs.Tracer.t ref = ref Nv_obs.Tracer.null
let default_metrics : Nv_obs.Metrics.t ref = ref Nv_obs.Metrics.null
let default_profile : Nv_obs.Profile.t ref = ref Nv_obs.Profile.null

let collect ~label ~txns ~committed ~aborted ~sim_ns ~stats_list ~mem =
  let last_epoch_phases =
    match stats_list with [] -> [] | (e : Report.epoch_stats) :: _ -> e.Report.phases
  in
  let latency = Nv_util.Histogram.create () in
  List.iter (fun (e : Report.epoch_stats) -> Nv_util.Histogram.add latency e.Report.duration_ns)
    stats_list;
  (* Counter totals come from the associative epoch-stats merge (the
     same fold the engine applies to its per-core shards), not from
     per-field sums. *)
  let total =
    List.fold_left Report.merge_epoch_stats Report.zero_epoch_stats stats_list
  in
  let version_writes = total.Report.version_writes in
  let persistent = total.Report.persistent_writes in
  {
    label;
    txns;
    committed;
    aborted;
    sim_seconds = sim_ns /. 1e9;
    throughput = (if sim_ns > 0.0 then float_of_int committed /. (sim_ns /. 1e9) else 0.0);
    transient_frac =
      (if version_writes > 0 then
         float_of_int (version_writes - persistent) /. float_of_int version_writes
       else 0.0);
    minor_gc = total.Report.minor_gc;
    major_gc = total.Report.major_gc;
    cache_hits = total.Report.cache_hits;
    cache_misses = total.Report.cache_misses;
    log_bytes = total.Report.log_bytes;
    epoch_latency = latency;
    last_epoch_phases;
    mem;
  }

(* The one generic driver: every backend runs the same loop through the
   Engine_intf seam; only the meaning of "aborted" is backend-specific
   (serial CC aborts in place, Aria defers and retries, Zen counts its
   own user aborts). *)
let run ?label ?tracer ?metrics ?profile (sp : Engine.spec) s (w : W.t) =
  let label = match label with Some l -> l | None -> Engine.label sp w in
  let (Engine_intf.Packed ((module E), db)) = Engine.instantiate sp s w in
  let tracer = match tracer with Some t -> t | None -> !default_tracer in
  let metrics = match metrics with Some m -> m | None -> !default_metrics in
  let profile = match profile with Some p -> p | None -> !default_profile in
  E.set_observability ~tracer ~metrics ~profile ~name:label db;
  E.bulk_load db (w.W.load ());
  let rng = Nv_util.Rng.create s.seed in
  let stats_list = ref [] in
  let deferred = ref [||] in
  let total_deferred = ref 0 in
  for _ = 1 to s.epochs do
    let fresh = w.W.gen_batch rng s.epoch_txns in
    let batch =
      if Engine.feeds_deferred sp then Array.append !deferred fresh else fresh
    in
    let st, d = E.run_batch db batch in
    (match st with Some st -> stats_list := st :: !stats_list | None -> ());
    total_deferred := !total_deferred + Array.length d;
    deferred := d
  done;
  let txns = s.epochs * s.epoch_txns in
  let committed = E.committed_txns db in
  let aborted =
    match sp.Engine.backend with
    | Engine.Caracal _ -> txns - committed
    | Engine.Caracal_aria -> !total_deferred
    | Engine.Zen -> E.aborted_txns db
  in
  collect ~label ~txns ~committed ~aborted ~sim_ns:(E.total_time_ns db)
    ~stats_list:!stats_list ~mem:(E.mem_report db)

(* Thin spec-building wrappers keeping the experiment code's call sites
   stable. *)

let nvcaracal_config s w ~variant ?minor_gc ?cached_versions ?crash_safe ?batch_append
    ?selective_caching ?ordered_index () =
  Engine.caracal_config s w
    (Engine.spec ?minor_gc ?cached_versions ?crash_safe ?batch_append ?selective_caching
       ?ordered_index (Engine.Caracal variant))

let run_nvcaracal s w ~variant ?minor_gc ?cached_versions ?batch_append
    ?selective_caching ?ordered_index ?label ?tracer ?metrics () =
  run ?label ?tracer ?metrics
    (Engine.spec ?minor_gc ?cached_versions ?batch_append ?selective_caching ?ordered_index
       (Engine.Caracal variant))
    s w

let run_zen s w ?record_size ?label () =
  run ?label (Engine.spec ?record_size Engine.Zen) s w

let run_aria s w ?label ?tracer ?metrics () =
  run ?label ?tracer ?metrics (Engine.spec Engine.Caracal_aria) s w

type recovery_result = { r_label : string; report : Report.recovery_report }

exception Crash_now

let run_recovery s (w : W.t) ~crash_after_txns ?(persistent_index = false) ?label ?tracer
    ?metrics () =
  let config =
    Engine.caracal_config s w
      (Engine.spec ~crash_safe:true ~persistent_index (Engine.Caracal Config.Nvcaracal))
  in
  let db = Db.create ~config ~tables:w.W.tables () in
  Db.bulk_load db (w.W.load ());
  let rng = Nv_util.Rng.create s.seed in
  for _ = 1 to s.epochs - 1 do
    ignore (Db.run_epoch db (w.W.gen_batch rng s.epoch_txns))
  done;
  let crash_at = min crash_after_txns (s.epoch_txns - 1) in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn crash_at then raise Crash_now);
  (try ignore (Db.run_epoch db (w.W.gen_batch rng s.epoch_txns)) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create (s.seed + 1)) in
  let tracer = match tracer with Some t -> t | None -> !default_tracer in
  let metrics = match metrics with Some m -> m | None -> !default_metrics in
  let _db2, report =
    Db.recover ~config ~tables:w.W.tables ~pmem ~rebuild:w.W.rebuild ~tracer ~metrics ()
  in
  { r_label = (match label with Some l -> l | None -> w.W.name); report }

let run_scrub s (w : W.t) ~crash_after_txns ~faults ?label () =
  let config =
    Engine.caracal_config s w
      (Engine.spec ~crash_safe:true (Engine.Caracal Config.Nvcaracal))
  in
  let db = Db.create ~config ~tables:w.W.tables () in
  Db.bulk_load db (w.W.load ());
  let rng = Nv_util.Rng.create s.seed in
  for _ = 1 to s.epochs - 1 do
    ignore (Db.run_epoch db (w.W.gen_batch rng s.epoch_txns))
  done;
  let crash_at = min crash_after_txns (s.epoch_txns - 1) in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn crash_at then raise Crash_now);
  (try ignore (Db.run_epoch db (w.W.gen_batch rng s.epoch_txns)) with Crash_now -> ());
  let pmem = Db.crash ~faults db ~rng:(Nv_util.Rng.create (s.seed + 1)) in
  let _db2, report =
    Db.recover ~config ~tables:w.W.tables ~pmem ~rebuild:w.W.rebuild ~scrub:true ()
  in
  { r_label = (match label with Some l -> l | None -> w.W.name); report }
