module Config = Nvcaracal.Config
module Db = Nvcaracal.Db
module Report = Nvcaracal.Report
module W = Nv_workloads.Workload

type result = {
  label : string;
  txns : int;
  committed : int;
  aborted : int;
  sim_seconds : float;
  throughput : float;
  transient_frac : float;
  minor_gc : int;
  major_gc : int;
  cache_hits : int;
  cache_misses : int;
  log_bytes : int;
  epoch_latency : Nv_util.Histogram.t;
  last_epoch_phases : (string * float) list;
  mem : Report.mem_report;
}

type setup = {
  epochs : int;
  epoch_txns : int;
  seed : int;
  row_size : int;
  cache_entries : int;
  insert_growth : int;
}

let setup ?(epochs = 12) ?(epoch_txns = 1500) ?(seed = 42) ?(row_size = 256)
    ?(cache_entries = 0) ?(insert_growth = 0) () =
  { epochs; epoch_txns; seed; row_size; cache_entries; insert_growth }

let cores = 8

(* Observability sinks shared by every run in the process. The bench /
   CLI front-ends point these at real instances when --trace/--metrics
   is given; the defaults are the no-op sinks, so experiment code never
   has to thread them through. *)
let default_tracer : Nv_obs.Tracer.t ref = ref Nv_obs.Tracer.null
let default_metrics : Nv_obs.Metrics.t ref = ref Nv_obs.Metrics.null

let observe ?tracer ?metrics ~label db =
  let tracer = match tracer with Some t -> t | None -> !default_tracer in
  let metrics = match metrics with Some m -> m | None -> !default_metrics in
  Db.set_observability ~tracer ~metrics ~name:label db

(* Derive pool capacities: the loaded dataset, plus insert growth, plus
   one epoch of value churn (freed slots are not reusable within the
   epoch that freed them). *)
let sizing s (w : W.t) =
  let base_rows = W.total_rows w in
  let grown = base_rows + (s.epochs * s.epoch_txns * s.insert_growth) + 1024 in
  let rows_per_core = (grown * 3 / 2 / cores) + 64 in
  let values_per_core =
    let pool_valued =
      if w.W.typical_value > Nv_storage.Prow.half_capacity ~row_size:s.row_size then grown
      else 1024
    in
    ((pool_valued + (s.epoch_txns * 12)) * 3 / 2 / cores) + 64
  in
  let freelist_capacity = 2 * (max rows_per_core values_per_core) in
  (base_rows, rows_per_core, values_per_core, freelist_capacity)

let nvcaracal_config s (w : W.t) ~variant ?(minor_gc = true) ?(cached_versions = true)
    ?(crash_safe = false) ?(batch_append = false) ?(selective_caching = false)
    ?(ordered_index = Config.Btree) () =
  let base_rows, rows_per_core, values_per_core, freelist_capacity = sizing s w in
  let cache_entries = if s.cache_entries > 0 then s.cache_entries else base_rows in
  Config.make ~variant ~cores ~row_size:s.row_size
    ~value_slot_size:(max 1024 (w.W.typical_value + 24))
    ~minor_gc ~cached_versions ~crash_safe ~rows_per_core ~values_per_core
    ~freelist_capacity
    ~log_capacity:(max (1 lsl 20) (s.epoch_txns * 256))
    ~n_counters:w.W.n_counters ~revert_on_recovery:w.W.revert_on_recovery
    ~cache_entries_max:cache_entries ~ordered_index ~batch_append ~selective_caching ()

let collect ~label ~txns ~committed ~aborted ~sim_ns ~stats_list ~mem =
  let last_epoch_phases =
    match stats_list with [] -> [] | (e : Report.epoch_stats) :: _ -> e.Report.phases
  in
  let latency = Nv_util.Histogram.create () in
  List.iter (fun (e : Report.epoch_stats) -> Nv_util.Histogram.add latency e.Report.duration_ns)
    stats_list;
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 stats_list in
  let version_writes = sum (fun e -> e.Report.version_writes) in
  let persistent = sum (fun e -> e.Report.persistent_writes) in
  {
    label;
    txns;
    committed;
    aborted;
    sim_seconds = sim_ns /. 1e9;
    throughput = (if sim_ns > 0.0 then float_of_int committed /. (sim_ns /. 1e9) else 0.0);
    transient_frac =
      (if version_writes > 0 then
         float_of_int (version_writes - persistent) /. float_of_int version_writes
       else 0.0);
    minor_gc = sum (fun e -> e.Report.minor_gc);
    major_gc = sum (fun e -> e.Report.major_gc);
    cache_hits = sum (fun e -> e.Report.cache_hits);
    cache_misses = sum (fun e -> e.Report.cache_misses);
    log_bytes = sum (fun e -> e.Report.log_bytes);
    epoch_latency = latency;
    last_epoch_phases;
    mem;
  }

let run_nvcaracal s (w : W.t) ~variant ?minor_gc ?cached_versions ?batch_append
    ?selective_caching ?ordered_index ?label ?tracer ?metrics () =
  let config =
    nvcaracal_config s w ~variant ?minor_gc ?cached_versions ?batch_append ?selective_caching
      ?ordered_index ()
  in
  let label =
    match label with Some l -> l | None -> Config.variant_name variant ^ "/" ^ w.W.name
  in
  let db = Db.create ~config ~tables:w.W.tables () in
  observe ?tracer ?metrics ~label db;
  Db.bulk_load db (w.W.load ());
  let rng = Nv_util.Rng.create s.seed in
  let stats_list = ref [] in
  for _ = 1 to s.epochs do
    let st = Db.run_epoch db (w.W.gen_batch rng s.epoch_txns) in
    stats_list := st :: !stats_list
  done;
  collect ~label ~txns:(s.epochs * s.epoch_txns) ~committed:(Db.committed_txns db)
    ~aborted:(s.epochs * s.epoch_txns - Db.committed_txns db)
    ~sim_ns:(Db.total_time_ns db) ~stats_list:!stats_list ~mem:(Db.mem_report db)

let run_zen s (w : W.t) ?record_size ?label () =
  let record_size =
    match record_size with
    | Some r -> r
    | None ->
        (* Zen's optimal record size: value plus header, rounded up to
           a multiple of 8 (Table 4). *)
        (w.W.typical_value + Zen_record_size.header + 7) / 8 * 8
  in
  let base_rows = W.total_rows w in
  let slots_per_core =
    ((base_rows + (s.epochs * s.epoch_txns * (s.insert_growth + 2))) * 2 / cores) + 64
  in
  let cache_entries = if s.cache_entries > 0 then s.cache_entries else base_rows in
  let config =
    {
      Nv_zen.Zen_db.cores;
      record_size;
      cache_entries;
      slots_per_core;
      spec = Nv_nvmm.Memspec.default;
    }
  in
  let db = Nv_zen.Zen_db.create ~config ~tables:w.W.tables () in
  Nv_zen.Zen_db.bulk_load db (w.W.load ());
  let rng = Nv_util.Rng.create s.seed in
  for _ = 1 to s.epochs do
    Nv_zen.Zen_db.exec_batch db (w.W.gen_batch rng s.epoch_txns)
  done;
  let committed = Nv_zen.Zen_db.committed_txns db in
  let sim_ns = Nv_zen.Zen_db.total_time_ns db in
  {
    label = (match label with Some l -> l | None -> "zen/" ^ w.W.name);
    txns = s.epochs * s.epoch_txns;
    committed;
    aborted = Nv_zen.Zen_db.aborted_txns db;
    sim_seconds = sim_ns /. 1e9;
    throughput = (if sim_ns > 0.0 then float_of_int committed /. (sim_ns /. 1e9) else 0.0);
    transient_frac = 0.0;
    minor_gc = 0;
    major_gc = 0;
    cache_hits = 0;
    cache_misses = 0;
    log_bytes = 0;
    epoch_latency = Nv_util.Histogram.create ();
    last_epoch_phases = [];
    mem = Nv_zen.Zen_db.mem_report db;
  }

(* Aria-mode run: deferred transactions carry over into the next batch. *)
let run_aria s (w : W.t) ?label ?tracer ?metrics () =
  let config = nvcaracal_config s w ~variant:Config.Nvcaracal () in
  let db = Db.create ~config ~tables:w.W.tables () in
  observe ?tracer ?metrics
    ~label:(match label with Some l -> l | None -> "aria/" ^ w.W.name)
    db;
  Db.bulk_load db (w.W.load ());
  let rng = Nv_util.Rng.create s.seed in
  let stats_list = ref [] in
  let deferred = ref [||] in
  let total_deferred = ref 0 in
  for _ = 1 to s.epochs do
    let fresh = w.W.gen_batch rng s.epoch_txns in
    let st, d = Db.run_epoch_aria db (Array.append !deferred fresh) in
    stats_list := st :: !stats_list;
    total_deferred := !total_deferred + Array.length d;
    deferred := d
  done;
  let label = match label with Some l -> l | None -> "aria/" ^ w.W.name in
  collect ~label ~txns:(s.epochs * s.epoch_txns) ~committed:(Db.committed_txns db)
    ~aborted:!total_deferred ~sim_ns:(Db.total_time_ns db) ~stats_list:!stats_list
    ~mem:(Db.mem_report db)

type recovery_result = { r_label : string; report : Report.recovery_report }

exception Crash_now

let run_recovery s (w : W.t) ~crash_after_txns ?(persistent_index = false) ?label ?tracer
    ?metrics () =
  let base_rows = W.total_rows w in
  let config =
    let c = nvcaracal_config s w ~variant:Config.Nvcaracal ~crash_safe:true () in
    if persistent_index then
      { c with Config.persistent_index = true; pindex_capacity = 4 * base_rows }
    else c
  in
  let db = Db.create ~config ~tables:w.W.tables () in
  Db.bulk_load db (w.W.load ());
  let rng = Nv_util.Rng.create s.seed in
  for _ = 1 to s.epochs - 1 do
    ignore (Db.run_epoch db (w.W.gen_batch rng s.epoch_txns))
  done;
  let crash_at = min crash_after_txns (s.epoch_txns - 1) in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn crash_at then raise Crash_now);
  (try ignore (Db.run_epoch db (w.W.gen_batch rng s.epoch_txns)) with Crash_now -> ());
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create (s.seed + 1)) in
  let tracer = match tracer with Some t -> t | None -> !default_tracer in
  let metrics = match metrics with Some m -> m | None -> !default_metrics in
  let _db2, report =
    Db.recover ~config ~tables:w.W.tables ~pmem ~rebuild:w.W.rebuild ~tracer ~metrics ()
  in
  { r_label = (match label with Some l -> l | None -> w.W.name); report }

let run_scrub s (w : W.t) ~crash_after_txns ~faults ?label () =
  let config = nvcaracal_config s w ~variant:Config.Nvcaracal ~crash_safe:true () in
  let db = Db.create ~config ~tables:w.W.tables () in
  Db.bulk_load db (w.W.load ());
  let rng = Nv_util.Rng.create s.seed in
  for _ = 1 to s.epochs - 1 do
    ignore (Db.run_epoch db (w.W.gen_batch rng s.epoch_txns))
  done;
  let crash_at = min crash_after_txns (s.epoch_txns - 1) in
  Db.set_phase_hook db (fun p -> if p = Db.Exec_txn crash_at then raise Crash_now);
  (try ignore (Db.run_epoch db (w.W.gen_batch rng s.epoch_txns)) with Crash_now -> ());
  let pmem = Db.crash ~faults db ~rng:(Nv_util.Rng.create (s.seed + 1)) in
  let _db2, report =
    Db.recover ~config ~tables:w.W.tables ~pmem ~rebuild:w.W.rebuild ~scrub:true ()
  in
  { r_label = (match label with Some l -> l | None -> w.W.name); report }
