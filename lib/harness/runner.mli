(** Experiment runner: drives a workload against an engine
    configuration and collects the measurements the paper's figures
    report.

    Throughput is committed transactions divided by simulated seconds
    (the cost model's clock, not wall time); epoch latency feeds the
    Figure 12 trade-off. Pool capacities are derived from the
    workload's size plus an insert-growth allowance, so runs never
    trip allocator capacity. *)

type result = {
  label : string;
  txns : int;
  committed : int;
  aborted : int;
  sim_seconds : float;
  throughput : float;  (** committed txns per simulated second *)
  transient_frac : float;  (** fraction of version writes kept in DRAM *)
  minor_gc : int;
  major_gc : int;
  cache_hits : int;
  cache_misses : int;
  log_bytes : int;
  epoch_latency : Nv_util.Histogram.t;  (** per-epoch simulated durations, ns *)
  last_epoch_phases : (string * float) list;  (** phase breakdown, final epoch *)
  mem : Nvcaracal.Report.mem_report;
}

type setup = Engine.setup = {
  epochs : int;
  epoch_txns : int;
  seed : int;
  row_size : int;  (** persistent row size (paper default 256; Table 4 overrides) *)
  cache_entries : int;  (** DRAM cache entry cap; 0 = dataset size *)
  insert_growth : int;  (** upper bound on rows inserted per transaction *)
}

val setup :
  ?epochs:int ->
  ?epoch_txns:int ->
  ?seed:int ->
  ?row_size:int ->
  ?cache_entries:int ->
  ?insert_growth:int ->
  unit ->
  setup
(** Defaults: 12 epochs x 1500 txns, seed 42, 256-byte rows, cache
    capped at the dataset size, no insert growth. *)

val default_tracer : Nv_obs.Tracer.t ref
val default_metrics : Nv_obs.Metrics.t ref
val default_profile : Nv_obs.Profile.t ref
(** Observability sinks used when a run is not given explicit ones.
    Initially the no-op {!Nv_obs.Tracer.null} / {!Nv_obs.Metrics.null}
    / {!Nv_obs.Profile.null}; the bench and CLI front-ends repoint them
    when [--trace] / [--metrics] / [--profile] is requested, so
    existing experiment code picks up instrumentation without
    signature churn. *)

val run :
  ?label:string ->
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  ?profile:Nv_obs.Profile.t ->
  Engine.spec ->
  setup ->
  Nv_workloads.Workload.t ->
  result
(** Drive any backend through the {!Nvcaracal.Engine_intf.S} seam: one
    instantiation from the spec, one batch per epoch (Aria-deferred
    transactions resubmitted with the next batch), measurements
    collected from the shared engine surface. The [run_*] entry points
    below are thin spec-building wrappers over this driver. *)

val nvcaracal_config :
  setup -> Nv_workloads.Workload.t -> variant:Nvcaracal.Config.variant ->
  ?minor_gc:bool -> ?cached_versions:bool -> ?crash_safe:bool -> ?batch_append:bool ->
  ?selective_caching:bool -> ?ordered_index:Nvcaracal.Config.ordered_index -> unit ->
  Nvcaracal.Config.t
(** The derived engine configuration (exposed for the recovery
    experiment, which needs it again for [Db.recover]). *)

val run_nvcaracal :
  setup ->
  Nv_workloads.Workload.t ->
  variant:Nvcaracal.Config.variant ->
  ?minor_gc:bool ->
  ?cached_versions:bool ->
  ?batch_append:bool ->
  ?selective_caching:bool ->
  ?ordered_index:Nvcaracal.Config.ordered_index ->
  ?label:string ->
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  unit ->
  result

val run_zen :
  setup -> Nv_workloads.Workload.t -> ?record_size:int -> ?label:string -> unit -> result
(** Zen gets the same batches; [record_size] defaults to the workload's
    typical value plus the record header (Table 4's optimal sizes). *)

val run_aria :
  setup ->
  Nv_workloads.Workload.t ->
  ?label:string ->
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  unit ->
  result
(** Aria-mode run ({!Nvcaracal.Db.run_epoch_aria}): deferred
    transactions are resubmitted with the next batch; [aborted] reports
    cumulative deferrals. *)

type recovery_result = {
  r_label : string;
  report : Nvcaracal.Report.recovery_report;
}

val run_recovery :
  setup ->
  Nv_workloads.Workload.t ->
  crash_after_txns:int ->
  ?persistent_index:bool ->
  ?label:string ->
  ?tracer:Nv_obs.Tracer.t ->
  ?metrics:Nv_obs.Metrics.t ->
  unit ->
  recovery_result
(** Run the workload, crash the final epoch after [crash_after_txns]
    transactions executed, tear the region, recover, and report the
    breakdown (Figure 11). Observability is attached to the {e
    recovery} ([Db.recover]), so the trace shows the four recovery
    phases plus the replayed epoch. *)

val run_scrub :
  setup ->
  Nv_workloads.Workload.t ->
  crash_after_txns:int ->
  faults:Nv_nvmm.Pmem.fault_model ->
  ?label:string ->
  unit ->
  recovery_result
(** Like {!run_recovery}, but the crash goes through the given
    media-fault model and recovery runs with [~scrub:true], so the
    report includes what the verification scan repaired, salvaged or
    lost (see docs/FAULTS.md).
    @raise Nv_storage.Meta_region.Corrupt if the faults destroyed the
    epoch commit record — the one unrecoverable corruption. *)
