open Cmdliner
module W = Nv_workloads.Workload

let workload =
  let doc = "Benchmark: ycsb, ycsb-smallrow, smallbank, or tpcc." in
  Arg.(value & opt string "ycsb" & info [ "w"; "workload" ] ~docv:"NAME" ~doc)

let contention =
  let doc = "Contention level: low, med (YCSB only), or high." in
  Arg.(value & opt string "low" & info [ "c"; "contention" ] ~docv:"LEVEL" ~doc)

let epochs =
  Arg.(value & opt int 8 & info [ "epochs" ] ~docv:"N" ~doc:"Number of epochs to run.")

let txns =
  Arg.(value & opt int 1000 & info [ "txns" ] ~docv:"N" ~doc:"Transactions per epoch.")

let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Workload seed.")

let jobs =
  let doc =
    "Domain-pool width for the engine's per-core phase loops (default from \\$(b,NVC_JOBS), \
     else 1 = serial). Seeded results are byte-identical at any value."
  in
  Arg.(value & opt int !Engine.default_jobs & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* The pool width is global harness state, set once at parse time. *)
let set_jobs jobs = Engine.default_jobs := max 1 jobs

let engine =
  let doc =
    "Engine or design variant: nvcaracal, all-nvmm, hybrid, no-logging, all-dram, wal, aria, \
     or zen."
  in
  Arg.(value & opt string "nvcaracal" & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let trace =
  let doc = "Record simulated-time spans and write a Perfetto/Chrome trace to $(docv)." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics =
  let doc = "Write per-epoch metric snapshots (JSON lines) to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let trace_wall =
  let doc =
    "With $(b,--trace): also capture the host monotonic clock on every span, exported as a \
     second \"(wall time)\" clock domain next to the simulated one. Wall readings vary run to \
     run — leave this off when comparing traces byte for byte."
  in
  Arg.(value & flag & info [ "trace-wall" ] ~doc)

let profile =
  let doc =
    "Profile where host time and allocation actually go: per-phase wall time and GC word \
     deltas, plus domain-pool telemetry, printed as a table after the run."
  in
  Arg.(value & flag & info [ "profile" ] ~doc)

let profile_out =
  let doc = "Write the profile snapshot (phases, slow epochs, domains) as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "profile-out" ] ~docv:"FILE" ~doc)

let slow_epoch_ms =
  let doc =
    "Log any epoch whose wall time exceeds $(docv) milliseconds, with its per-phase \
     breakdown (implies profiling)."
  in
  Arg.(value & opt (some float) None & info [ "slow-epoch-ms" ] ~docv:"MS" ~doc)

let listen =
  let doc =
    "Serving endpoint: a Unix-domain socket path, or $(b,HOST:PORT) / $(b,PORT) for TCP."
  in
  Arg.(value & opt string "/tmp/nvdb.sock" & info [ "l"; "listen" ] ~docv:"ADDR" ~doc)

let shards =
  let doc =
    "Serve as an $(docv)-shard cluster: spawn $(docv) shard engine processes, hash-route \
     every key, and run each batch as one epoch-fenced two-round transaction across them. \
     1 (default) is classic single-shard serving."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let shard_id =
  let doc =
    "(internal) Run as shard $(docv) of a $(b,--shards) cluster, speaking the shard plane \
     on $(b,--listen). Routers spawn these; invoking one by hand is only useful for \
     debugging."
  in
  Arg.(value & opt (some int) None & info [ "shard-id" ] ~docv:"I" ~doc)

let router =
  let doc =
    "Address of the cluster router to drive (overrides $(b,--listen)); clients of a routed \
     cluster talk to the router only."
  in
  Arg.(value & opt (some string) None & info [ "router" ] ~docv:"ADDR" ~doc)

let parse_address s =
  match String.rindex_opt s ':' with
  | Some i ->
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      (match int_of_string_opt port with
      | Some p -> `Tcp ((if host = "" then "127.0.0.1" else host), p)
      | None -> failwith (Printf.sprintf "bad port in address %S" s))
  | None -> (
      match int_of_string_opt s with
      | Some p -> `Tcp ("127.0.0.1", p)
      | None -> `Unix s)

let resolve_engine name =
  match Engine.of_string name with
  | Some spec -> spec
  | None -> failwith (Printf.sprintf "unknown engine %S" name)

let resolve_workload name contention =
  let level3 =
    match contention with
    | "low" -> `Low
    | "med" | "medium" -> `Medium
    | "high" -> `High
    | other -> failwith (Printf.sprintf "unknown contention %S" other)
  in
  let level2 = match level3 with `Medium -> `High | (`Low | `High) as l -> l in
  match name with
  | "ycsb" -> (Nv_workloads.Ycsb.(make (with_contention level3 default)), 0 (* insert growth *))
  (* A few-hundred-row YCSB for fast process-restart cycles: the chaos
     harness cold-starts (and re-bulk-loads) the server dozens of times
     per campaign, so load time dominates everything else. *)
  | "ycsb-tiny" ->
      ( Nv_workloads.Ycsb.(
          make
            (with_contention level3
               { default with rows = 512; value_size = 64; update_bytes = 64; hot_rows = 32;
                 ops_per_txn = 4 })),
        0 )
  | "ycsb-smallrow" -> (Nv_workloads.Ycsb.(make (smallrow (with_contention level3 default))), 0)
  | "smallbank" -> (Nv_workloads.Smallbank.(make (with_contention level2 default)), 0)
  | "tpcc" -> (Nv_workloads.Tpcc.(make (with_contention level2 default)), 15)
  | other -> failwith (Printf.sprintf "unknown workload %S" other)

type obs = {
  tracer : Nv_obs.Tracer.t option;
  metrics : Nv_obs.Metrics.t option;
  profile : Nv_obs.Profile.t option;
  flush : unit -> unit;
}

(* Build the sinks requested on the command line; [flush] writes the
   files / prints the tables once the run completed. *)
let observability ?(prog = "nvdb") ?(ppf = Format.std_formatter) ?(trace_wall = false)
    ?(profile = false) ?profile_out ?slow_epoch_ms ~trace:trace_file ~metrics:metrics_file () =
  let tracer = match trace_file with None -> None | Some _ -> Some (Nv_obs.Tracer.create ()) in
  (match tracer with
  | Some tr when trace_wall -> Nv_obs.Tracer.set_wall_clock tr (Some Nv_util.Clock.now_ns)
  | _ -> ());
  let metrics =
    match metrics_file with None -> None | Some _ -> Some (Nv_obs.Metrics.create ())
  in
  let profiler =
    if profile || profile_out <> None || slow_epoch_ms <> None then begin
      let slow_threshold_ns = Option.map (fun ms -> ms *. 1e6) slow_epoch_ms in
      let on_slow (se : Nv_obs.Profile.slow_epoch) =
        Format.eprintf "%s: slow epoch %d: %.2f ms wall (%s)@." prog se.Nv_obs.Profile.epoch
          (se.Nv_obs.Profile.wall_ns /. 1e6)
          (String.concat ", "
             (List.map
                (fun (name, ns) -> Printf.sprintf "%s %.2f ms" name (ns /. 1e6))
                se.Nv_obs.Profile.phases))
      in
      Some (Nv_obs.Profile.create ?slow_threshold_ns ~on_slow ())
    end
    else None
  in
  let write what f file =
    try f file
    with Sys_error msg ->
      Format.eprintf "%s: cannot write %s file: %s@." prog what msg;
      exit 1
  in
  let flush () =
    (match (trace_file, tracer) with
    | Some file, Some tr ->
        write "trace" (Nv_obs.Trace_export.write_file tr) file;
        Format.fprintf ppf "wrote %d trace events to %s (open in ui.perfetto.dev)@."
          (Nv_obs.Tracer.event_count tr) file
    | _ -> ());
    (match (metrics_file, metrics) with
    | Some file, Some m ->
        write "metrics" (Nv_obs.Metrics.write_jsonl m) file;
        Format.fprintf ppf "wrote %d epoch metric records to %s@."
          (List.length (Nv_obs.Metrics.records m))
          file
    | _ -> ());
    match profiler with
    | None -> ()
    | Some p ->
        if profile then Format.fprintf ppf "@,%a@." Nv_obs.Profile.pp_table p;
        (match profile_out with
        | Some file ->
            write "profile"
              (fun file ->
                let oc = open_out file in
                Fun.protect
                  ~finally:(fun () -> close_out oc)
                  (fun () ->
                    output_string oc (Nv_obs.Jsonx.to_string (Nv_obs.Profile.to_json p));
                    output_char oc '\n'))
              file;
            Format.fprintf ppf "wrote profile snapshot to %s@." file
        | None -> ())
  in
  { tracer; metrics; profile = profiler; flush }
