(** Backend selection and configuration derivation for the harness.

    A {!spec} names a backend plus the design toggles the experiments
    sweep; {!instantiate} turns it into a packed
    {!Nvcaracal.Engine_intf.S} instance over a concrete configuration
    derived from the benchmark {!setup} and the workload's shape. All
    engine-specific configuration plumbing (pool sizing, Zen record
    sizing, persistent-index capacity) lives here, so {!Runner}, the
    fuzzer, the bench tables and the CLI stay backend-generic. *)

type backend =
  | Caracal of Nvcaracal.Config.variant
      (** The deterministic engine under a design variant
          (nvcaracal, all-nvmm, hybrid, no-logging, all-dram, wal). *)
  | Caracal_aria
      (** Aria-style CC on the NVCaracal substrate: no pre-declared
          write sets; conflicting transactions are deferred and must be
          resubmitted with the next batch. *)
  | Zen  (** The log-free per-commit-durability comparator. *)

type setup = {
  epochs : int;
  epoch_txns : int;
  seed : int;
  row_size : int;  (** persistent row size (paper default 256; Table 4 overrides) *)
  cache_entries : int;  (** DRAM cache entry cap; 0 = dataset size *)
  insert_growth : int;  (** upper bound on rows inserted per transaction *)
}

val setup :
  ?epochs:int ->
  ?epoch_txns:int ->
  ?seed:int ->
  ?row_size:int ->
  ?cache_entries:int ->
  ?insert_growth:int ->
  unit ->
  setup
(** Defaults: 12 epochs x 1500 txns, seed 42, 256-byte rows, cache
    capped at the dataset size, no insert growth. *)

val cores : int
(** Simulated cores every derived configuration uses (8, as in the
    paper's evaluation). *)

val default_jobs : int ref
(** Domain-pool width ({!Nvcaracal.Config.t.parallelism}) every derived
    configuration requests. Initialised from the [NVC_JOBS] environment
    variable (default 1 — serial); the CLI front-ends overwrite it once
    at argument-parse time ([--jobs]). Seeded runs produce byte-identical
    results at any value. *)

type spec = {
  backend : backend;
  minor_gc : bool;
  cached_versions : bool;
  crash_safe : bool;
  batch_append : bool;
  selective_caching : bool;
  ordered_index : Nvcaracal.Config.ordered_index;
  persistent_index : bool;
  record_size : int option;  (** Zen record size; [None] = Table 4 optimal *)
}

val spec :
  ?minor_gc:bool ->
  ?cached_versions:bool ->
  ?crash_safe:bool ->
  ?batch_append:bool ->
  ?selective_caching:bool ->
  ?ordered_index:Nvcaracal.Config.ordered_index ->
  ?persistent_index:bool ->
  ?record_size:int ->
  backend ->
  spec
(** Defaults match the paper's full system: minor GC and version
    caching on, everything else off, B+-tree ordered index. *)

val of_string : string -> spec option
(** Parse a CLI engine name: "zen", "aria", or a design-variant name
    ("nvcaracal", "all-nvmm", "hybrid", "no-logging", "all-dram",
    "wal"). *)

val label : spec -> Nv_workloads.Workload.t -> string
(** Default result label, ["<backend>/<workload>"]. *)

val feeds_deferred : spec -> bool
(** Whether [run_batch]'s deferred transactions must be resubmitted
    with the next batch (Aria mode). *)

val caracal_config :
  setup -> Nv_workloads.Workload.t -> spec -> Nvcaracal.Config.t
(** The derived NVCaracal configuration: pool capacities sized from the
    workload plus an insert-growth allowance so runs never trip
    allocator capacity, persistent-index capacity at 4x the dataset
    when [spec.persistent_index] is set. *)

val zen_config :
  setup -> Nv_workloads.Workload.t -> spec -> Nv_zen.Zen_db.config
(** The derived Zen configuration; record size per
    {!Zen_record_size.optimal} unless [spec.record_size] overrides. *)

val instantiate :
  spec -> setup -> Nv_workloads.Workload.t -> Nvcaracal.Engine_intf.packed
(** Create a fresh engine for the spec over the derived
    configuration. *)

val recover :
  spec ->
  setup ->
  Nv_workloads.Workload.t ->
  pmem:Nv_nvmm.Pmem.t ->
  rebuild:(bytes -> Nvcaracal.Txn.t) ->
  Nvcaracal.Engine_intf.packed
(** Reconstruct an engine of the spec from an existing arena image
    (a crash image or a checkpoint's saved pmem). The derived
    configuration must match the one the arena was created under —
    same spec, setup and workload — and for NVCaracal backends that
    configuration must be crash-safe. *)

val introspect : Nvcaracal.Engine_intf.packed -> Nvcaracal.Engine_intf.introspection
(** The engine's uniform inspection snapshot (wide-execution telemetry
    plus the committed-state digest), unpacked. *)

val state_digest : Nvcaracal.Engine_intf.packed -> int64
(** Deterministic fingerprint of the engine's committed state: FNV over
    each table's sorted (key, value) rows. Engines holding equal
    committed state digest equally — what [Bye_ok] reports to clients
    and what the served-vs-replayed determinism checks compare.
    Shorthand for [(introspect e).state_digest]. *)
