(* The harness-side engine seam: one spec record describing which
   backend to run with which design toggles, and the derivation of
   every engine-specific configuration number from it. Runner, the
   fuzzer, the bench tables and the CLI all instantiate engines here,
   so adding a backend (or a toggle) touches exactly this module. *)

module Config = Nvcaracal.Config
module Engine_intf = Nvcaracal.Engine_intf
module W = Nv_workloads.Workload

type backend = Caracal of Config.variant | Caracal_aria | Zen

type setup = {
  epochs : int;
  epoch_txns : int;
  seed : int;
  row_size : int;
  cache_entries : int;
  insert_growth : int;
}

let setup ?(epochs = 12) ?(epoch_txns = 1500) ?(seed = 42) ?(row_size = 256)
    ?(cache_entries = 0) ?(insert_growth = 0) () =
  { epochs; epoch_txns; seed; row_size; cache_entries; insert_growth }

let cores = 8

(* Domain-pool width every derived configuration requests. CLI layers
   set this once at parse time (--jobs); NVC_JOBS seeds the default so
   test and CI runs can go wide without threading a flag through every
   call site. *)
let default_jobs =
  ref
    (match Option.bind (Sys.getenv_opt "NVC_JOBS") int_of_string_opt with
    | Some n when n > 0 -> n
    | Some _ | None -> 1)

type spec = {
  backend : backend;
  minor_gc : bool;
  cached_versions : bool;
  crash_safe : bool;
  batch_append : bool;
  selective_caching : bool;
  ordered_index : Config.ordered_index;
  persistent_index : bool;
  record_size : int option;
}

let spec ?(minor_gc = true) ?(cached_versions = true) ?(crash_safe = false)
    ?(batch_append = false) ?(selective_caching = false)
    ?(ordered_index = Config.Btree) ?(persistent_index = false) ?record_size backend =
  {
    backend;
    minor_gc;
    cached_versions;
    crash_safe;
    batch_append;
    selective_caching;
    ordered_index;
    persistent_index;
    record_size;
  }

let of_string name =
  match name with
  | "zen" -> Some (spec Zen)
  | "aria" -> Some (spec Caracal_aria)
  | _ ->
      Option.map
        (fun v -> spec (Caracal v))
        (List.find_opt
           (fun v -> Config.variant_name v = name)
           [ Config.Nvcaracal; Config.All_nvmm; Config.Hybrid; Config.No_logging;
             Config.All_dram; Config.Wal ])

let label sp (w : W.t) =
  match sp.backend with
  | Caracal v -> Config.variant_name v ^ "/" ^ w.W.name
  | Caracal_aria -> "aria/" ^ w.W.name
  | Zen -> "zen/" ^ w.W.name

let feeds_deferred sp = sp.backend = Caracal_aria

(* Derive pool capacities: the loaded dataset, plus insert growth, plus
   one epoch of value churn (freed slots are not reusable within the
   epoch that freed them). *)
let sizing s (w : W.t) =
  let base_rows = W.total_rows w in
  let grown = base_rows + (s.epochs * s.epoch_txns * s.insert_growth) + 1024 in
  let rows_per_core = (grown * 3 / 2 / cores) + 64 in
  let values_per_core =
    let pool_valued =
      if w.W.typical_value > Nv_storage.Prow.half_capacity ~row_size:s.row_size then grown
      else 1024
    in
    ((pool_valued + (s.epoch_txns * 12)) * 3 / 2 / cores) + 64
  in
  let freelist_capacity = 2 * max rows_per_core values_per_core in
  (base_rows, rows_per_core, values_per_core, freelist_capacity)

let variant_of sp =
  match sp.backend with Caracal v -> v | Caracal_aria | Zen -> Config.Nvcaracal

let caracal_config s (w : W.t) sp =
  let base_rows, rows_per_core, values_per_core, freelist_capacity = sizing s w in
  let cache_entries = if s.cache_entries > 0 then s.cache_entries else base_rows in
  let c =
    Config.make ~variant:(variant_of sp) ~cores ~row_size:s.row_size
      ~value_slot_size:(max 1024 (w.W.typical_value + 24))
      ~minor_gc:sp.minor_gc ~cached_versions:sp.cached_versions
      ~crash_safe:sp.crash_safe ~rows_per_core ~values_per_core ~freelist_capacity
      ~log_capacity:(max (1 lsl 20) (s.epoch_txns * 256))
      ~n_counters:w.W.n_counters ~revert_on_recovery:w.W.revert_on_recovery
      ~cache_entries_max:cache_entries ~ordered_index:sp.ordered_index
      ~batch_append:sp.batch_append ~selective_caching:sp.selective_caching
      ~parallelism:!default_jobs ()
  in
  if sp.persistent_index then
    { c with Config.persistent_index = true; pindex_capacity = 4 * base_rows }
  else c

let zen_config s (w : W.t) sp =
  let record_size =
    match sp.record_size with Some r -> r | None -> Zen_record_size.optimal w
  in
  let base_rows = W.total_rows w in
  let slots_per_core =
    ((base_rows + (s.epochs * s.epoch_txns * (s.insert_growth + 2))) * 2 / cores) + 64
  in
  let cache_entries = if s.cache_entries > 0 then s.cache_entries else base_rows in
  {
    Nv_zen.Zen_db.cores;
    record_size;
    cache_entries;
    slots_per_core;
    crash_safe = sp.crash_safe;
    spec = Nv_nvmm.Memspec.default;
  }

let instantiate sp s (w : W.t) =
  match sp.backend with
  | Caracal _ ->
      let config = caracal_config s w sp in
      Engine_intf.Packed
        ( (module Nvcaracal.Db.Serial_engine),
          Nvcaracal.Db.Serial_engine.create ~config ~tables:w.W.tables () )
  | Caracal_aria ->
      let config = caracal_config s w sp in
      Engine_intf.Packed
        ( (module Nvcaracal.Db.Aria_engine),
          Nvcaracal.Db.Aria_engine.create ~config ~tables:w.W.tables () )
  | Zen ->
      let config = zen_config s w sp in
      Engine_intf.Packed
        ( (module Nv_zen.Zen_db.Engine),
          Nv_zen.Zen_db.Engine.create ~config ~tables:w.W.tables () )

let recover sp s (w : W.t) ~pmem ~rebuild =
  match sp.backend with
  | Caracal _ ->
      let config = caracal_config s w sp in
      Engine_intf.Packed
        ( (module Nvcaracal.Db.Serial_engine),
          Nvcaracal.Db.Serial_engine.recover ~config ~tables:w.W.tables ~pmem ~rebuild () )
  | Caracal_aria ->
      let config = caracal_config s w sp in
      Engine_intf.Packed
        ( (module Nvcaracal.Db.Aria_engine),
          Nvcaracal.Db.Aria_engine.recover ~config ~tables:w.W.tables ~pmem ~rebuild () )
  | Zen ->
      let config = zen_config s w sp in
      Engine_intf.Packed
        ( (module Nv_zen.Zen_db.Engine),
          Nv_zen.Zen_db.Engine.recover ~config ~tables:w.W.tables ~pmem ~rebuild () )

let introspect (Engine_intf.Packed ((module E), db)) = E.introspect db
let state_digest packed = (introspect packed).Engine_intf.state_digest
