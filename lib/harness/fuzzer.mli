(** Randomized crash-recovery fuzzing.

    Each iteration builds a database from a randomly-chosen workload
    and configuration (design toggles, index implementation, persistent
    index on/off), runs a few epochs, injects a crash at a random phase
    of a random epoch with a random crash image, recovers, and compares
    the recovered state — table by table — against an oracle database
    that executed the same batches without crashing. Any mismatch is a
    correctness bug.

    With [~faults:true] each iteration instead crashes through a random
    media-fault model (legal image, torn lines, bit-rot, dead lines —
    see {!Nv_nvmm.Pmem.fault_model}), sometimes crashes {e again} in
    the middle of recovery, and recovers with [~scrub:true]. The oracle
    comparison then accounts for what the scrub loudly reported: keys
    listed in the damage report are excluded, a dropped log shrinks the
    oracle by the crashed epoch, and corruption the scrub can only
    detect (destroyed row identity, unreadable epoch record) is
    verified by the report alone. Silent divergence is always a
    failure.

    With [~diff:true] each iteration instead runs the same seeded
    batches through the deterministic NVCaracal engine {e and} through
    Zen via the shared {!Nvcaracal.Engine_intf.S} seam, comparing
    committed state and commit counts — a differential check that the
    two backends agree on what a serial-order batch means. Restricted
    to YCSB and SmallBank (Zen supports neither dynamic write sets nor
    persistent counters).

    Exposed as `nvdb fuzz`; the test suite runs a handful of
    iterations, the CLI as many as you like. *)

type outcome = {
  iterations : int;
  crashes_injected : int;
  replays : int;  (** iterations whose crashed epoch was replayed *)
  faulted : int;  (** iterations that injected media faults *)
  recrashes : int;  (** crashes injected in the middle of recovery *)
  salvages : int;  (** recoveries that repaired, salvaged or reported corruption *)
  detection_only : int;  (** iterations verified by the damage report alone *)
  diffed : int;  (** iterations that cross-checked NVCaracal against Zen *)
  failures : string list;  (** human-readable mismatch descriptions *)
}

val run :
  seed:int ->
  iterations:int ->
  ?faults:bool ->
  ?diff:bool ->
  ?jobs:int ->
  ?log:(string -> unit) ->
  unit ->
  outcome
(** Deterministic for a given [seed] — at any [jobs]. [faults] (default
    false) switches every iteration to the media-fault campaign; [diff]
    (default false) to the NVCaracal-vs-Zen differential campaign
    ([diff] wins if both are set). [jobs] (default: the harness-global
    {!Engine.default_jobs}) is the domain-pool width every engine in
    every campaign runs at — victims, oracles, recoveries and both
    differential backends — so a wide sweep checks the same behaviour
    on more domains. [log] receives one line per iteration. *)
