module Config = Nvcaracal.Config
module Report = Nvcaracal.Report
module W = Nv_workloads.Workload
module Ycsb = Nv_workloads.Ycsb
module Smallbank = Nv_workloads.Smallbank
module Tpcc = Nv_workloads.Tpcc
module T = Tablefmt

(* ------------------------------------------------------------------ *)
(* Shared scaled configurations                                        *)

let ycsb level = Ycsb.make (Ycsb.with_contention level Ycsb.default)
let ycsb_large level = Ycsb.make (Ycsb.large (Ycsb.with_contention level Ycsb.default))
let ycsb_smallrow level = Ycsb.make (Ycsb.smallrow (Ycsb.with_contention level Ycsb.default))

let smallbank level = Smallbank.make (Smallbank.with_contention level Smallbank.default)

let smallbank_large level =
  Smallbank.make (Smallbank.with_contention level (Smallbank.large Smallbank.default))

let tpcc level = Tpcc.make (Tpcc.with_contention level Tpcc.default)

let contention3 = [ ("low", `Low); ("med", `Medium); ("high", `High) ]
let contention2 = [ ("low", `Low); ("high", `High) ]

(* Table 4's "optimal" NVCaracal row sizes: everything inlines. *)
let ycsb_row_size = 2304
let smallbank_row_size = 128

(* ------------------------------------------------------------------ *)
(* Configuration tables (Tables 1-4)                                   *)

let table1 ppf =
  let d = Ycsb.default in
  T.print ppf ~title:"Table 1: YCSB configurations (scaled ~1/80, ratios preserved)"
    ~header:[ "parameter"; "value" ]
    [
      [ "dataset size"; Printf.sprintf "%d rows (paper: 16M)" d.Ycsb.rows ];
      [ "dataset size (YCSB-large)"; Printf.sprintf "%d rows (paper: 64M)" (d.Ycsb.rows * 4) ];
      [ "value size"; string_of_int d.Ycsb.value_size ];
      [ "value size (YCSB-smallrow)"; "64" ];
      [ "hotspot rows"; string_of_int d.Ycsb.hot_rows ];
      [ "low contention"; "0/10 accesses to hotspot rows" ];
      [ "medium contention"; "4/10 accesses to hotspot rows" ];
      [ "high contention"; "7/10 accesses to hotspot rows" ];
    ]

let table2 ppf =
  let d = Smallbank.default in
  T.print ppf ~title:"Table 2: SmallBank configurations (scaled ~1/1000, ratios preserved)"
    ~header:[ "parameter"; "value" ]
    [
      [ "dataset size"; Printf.sprintf "%d customers (paper: 18M)" d.Smallbank.customers ];
      [
        "dataset size (large)";
        Printf.sprintf "%d customers (paper: 180M)" (d.Smallbank.customers * 10);
      ];
      [ "value size"; "8" ];
      [ "low contention"; Printf.sprintf "%d hotspot customers" (d.Smallbank.customers / 18) ];
      [
        "high contention";
        Printf.sprintf "%d hotspot customers (paper ratio 1/1800; scaled to keep updates per                         hot row per epoch paper-like)"
          (d.Smallbank.customers / 360);
      ];
    ]

let table3 ppf =
  T.print ppf ~title:"Table 3: TPC-C configurations (scaled warehouses)"
    ~header:[ "parameter"; "value" ]
    [
      [ "low contention"; "8 warehouses (paper: 256)" ];
      [ "high contention"; "1 warehouse" ];
    ]

let table4 ppf =
  T.print ppf ~title:"Table 4: NVCaracal and Zen configurations"
    ~header:[ "parameter"; "YCSB"; "SmallBank" ]
    [
      [ "NVCaracal persistent row size"; string_of_int ycsb_row_size; string_of_int smallbank_row_size ];
      [
        "Zen persistent row size";
        string_of_int (1000 + Nv_zen.Zen_store.header_bytes);
        string_of_int (8 + Nv_zen.Zen_store.header_bytes);
      ];
      [
        "max cache entries";
        string_of_int Ycsb.default.Ycsb.rows;
        string_of_int (Smallbank.default.Smallbank.customers / 3);
      ];
    ]

(* ------------------------------------------------------------------ *)
(* Figures 5 and 6: NVCaracal vs Zen                                   *)

let vs_zen_row setup w =
  let nv = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
  let zen = Runner.run_zen setup w () in
  (nv, zen)

let fig5 ppf =
  let run ~large (name, level) =
    let w = if large then ycsb_large level else ycsb level in
    let base_rows = if large then Ycsb.default.Ycsb.rows * 4 else Ycsb.default.Ycsb.rows in
    (* Paper Table 4: the cache covers the whole default dataset but
       only ~1/3 of the large one. *)
    let cache_entries = if large then base_rows * 20 / 64 else base_rows in
    let setup =
      Runner.setup ~epochs:10 ~epoch_txns:1200 ~row_size:ycsb_row_size ~cache_entries ()
    in
    let nv, zen = vs_zen_row setup w in
    [
      (if large then "64M-scaled (large)" else "16M-scaled (default)");
      name;
      T.mtps nv.Runner.throughput;
      T.mtps zen.Runner.throughput;
      Printf.sprintf "%.2fx" (nv.Runner.throughput /. zen.Runner.throughput);
      T.pct nv.Runner.transient_frac;
    ]
  in
  let rows =
    List.map (run ~large:false) contention3 @ List.map (run ~large:true) contention3
  in
  T.print ppf
    ~title:
      "Figure 5: YCSB throughput, NVCaracal vs Zen (paper shape: Zen wins at low contention, \
       NVCaracal wins at high)"
    ~header:[ "dataset"; "contention"; "NVCaracal"; "Zen"; "NVCaracal/Zen"; "transient" ]
    rows

let fig6 ppf =
  let run ~large (name, level) =
    let w = if large then smallbank_large level else smallbank level in
    let customers =
      if large then Smallbank.default.Smallbank.customers * 10
      else Smallbank.default.Smallbank.customers
    in
    (* Table 4: 6M cache entries for 18M customers (x2 tables). *)
    let cache_entries = Smallbank.default.Smallbank.customers / 3 in
    let setup =
      Runner.setup ~epochs:10 ~epoch_txns:1200 ~row_size:smallbank_row_size ~cache_entries ()
    in
    let nv, zen = vs_zen_row setup w in
    [
      Printf.sprintf "%d customers%s" customers (if large then " (large)" else "");
      name;
      T.mtps nv.Runner.throughput;
      T.mtps zen.Runner.throughput;
      Printf.sprintf "%.2fx" (nv.Runner.throughput /. zen.Runner.throughput);
      T.pct nv.Runner.transient_frac;
    ]
  in
  let rows =
    List.map (run ~large:false) contention2 @ List.map (run ~large:true) contention2
  in
  T.print ppf
    ~title:
      "Figure 6: SmallBank throughput, NVCaracal vs Zen (paper shape: NVCaracal wins \
       everywhere, more under contention)"
    ~header:[ "dataset"; "contention"; "NVCaracal"; "Zen"; "NVCaracal/Zen"; "transient" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 7: design comparison at the default 256-byte row size        *)

let fig7_benchmarks =
  [
    ("tpcc", (fun l -> tpcc (match l with `Low -> `Low | `High -> `High)), 15, 6, 800);
    ("ycsb", (fun l -> ycsb (l :> [ `Low | `Medium | `High ])), 0, 8, 1000);
    ("ycsb-smallrow", (fun l -> ycsb_smallrow (l :> [ `Low | `Medium | `High ])), 0, 8, 1000);
    ("smallbank", (fun l -> smallbank l), 0, 8, 1200);
  ]

let fig7 ppf =
  let rows =
    List.concat_map
      (fun (bname, mk, growth, epochs, epoch_txns) ->
        List.map
          (fun (cname, level) ->
            let w = mk level in
            let setup = Runner.setup ~epochs ~epoch_txns ~insert_growth:growth () in
            let run variant = Runner.run_nvcaracal setup w ~variant () in
            let nv = run Config.Nvcaracal in
            let hybrid = run Config.Hybrid in
            let all_nvmm = run Config.All_nvmm in
            [
              bname;
              cname;
              T.mtps nv.Runner.throughput;
              T.mtps hybrid.Runner.throughput;
              T.mtps all_nvmm.Runner.throughput;
              Printf.sprintf "%.2fx" (nv.Runner.throughput /. all_nvmm.Runner.throughput);
              T.pct nv.Runner.transient_frac;
            ])
          contention2)
      fig7_benchmarks
  in
  T.print ppf
    ~title:
      "Figure 7: NVCaracal vs alternative NVMM designs (paper shape: all-NVMM worst; \
       NVCaracal ~ hybrid at low contention and ahead at high)"
    ~header:
      [ "benchmark"; "contention"; "NVCaracal"; "hybrid"; "all-NVMM"; "vs all-NVMM"; "transient" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 8: memory consumption                                        *)

let fig8 ppf =
  let rows =
    List.map
      (fun (bname, w, growth) ->
        let setup = Runner.setup ~epochs:8 ~epoch_txns:1000 ~insert_growth:growth () in
        let r = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
        let m = r.Runner.mem in
        let nvmm = Report.total_nvmm m and dram = Report.total_dram m in
        [
          bname;
          T.bytes m.Report.nvmm_rows;
          T.bytes m.Report.nvmm_values;
          T.bytes m.Report.nvmm_log;
          T.bytes m.Report.dram_index;
          T.bytes m.Report.dram_transient;
          T.bytes m.Report.dram_cache;
          T.pct (float_of_int (m.Report.dram_index + m.Report.dram_transient)
                 /. float_of_int (nvmm + dram));
        ])
      [
        ("tpcc", tpcc `Low, 15);
        ("ycsb", ycsb `Medium, 0);
        ("ycsb-smallrow", ycsb_smallrow `Medium, 0);
        ("smallbank", smallbank `Low, 0);
      ]
  in
  T.print ppf
    ~title:
      "Figure 8: DRAM and NVMM consumption (paper shape: storage mostly NVMM; index+transient \
       ~12% of total)"
    ~header:
      [
        "benchmark"; "nvmm rows"; "nvmm values"; "nvmm log"; "dram index"; "dram transient";
        "dram cache"; "index+transient share";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 9: optimizations ablation                                    *)

let fig9 ppf =
  let rows =
    List.concat_map
      (fun (bname, mk, growth) ->
        List.map
          (fun (cname, level) ->
            let w = mk level in
            let setup = Runner.setup ~epochs:8 ~epoch_txns:1000 ~insert_growth:growth () in
            let full = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
            let no_minor =
              Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal ~minor_gc:false ()
            in
            let no_cache =
              Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal ~cached_versions:false ()
            in
            let delta a b = T.pct ((a -. b) /. b) in
            [
              bname;
              cname;
              T.mtps full.Runner.throughput;
              delta full.Runner.throughput no_minor.Runner.throughput;
              delta full.Runner.throughput no_cache.Runner.throughput;
              string_of_int full.Runner.minor_gc;
            ])
          contention2)
      [
        ("tpcc", (fun l -> tpcc l), 15);
        ("ycsb", (fun l -> ycsb (l :> [ `Low | `Medium | `High ])), 0);
        ("ycsb-smallrow", (fun l -> ycsb_smallrow (l :> [ `Low | `Medium | `High ])), 0);
        ("smallbank", (fun l -> smallbank l), 0);
      ]
  in
  T.print ppf
    ~title:
      "Figure 9: impact of optimizations (paper shape: minor GC helps where values inline — \
       not plain YCSB; cache helps modestly, can hurt smallrow)"
    ~header:
      [
        "benchmark"; "contention"; "full"; "gain vs no-minor-gc"; "gain vs no-cache";
        "minor-gc runs";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 10: cost of failure recovery                                 *)

let fig10 ppf =
  let rows =
    List.concat_map
      (fun (bname, mk, growth) ->
        List.map
          (fun (cname, level) ->
            let w = mk level in
            let setup = Runner.setup ~epochs:8 ~epoch_txns:1000 ~insert_growth:growth () in
            let run variant = Runner.run_nvcaracal setup w ~variant () in
            let nv = run Config.Nvcaracal in
            let nolog = run Config.No_logging in
            let dram = run Config.All_dram in
            [
              bname;
              cname;
              T.mtps nv.Runner.throughput;
              T.mtps nolog.Runner.throughput;
              T.mtps dram.Runner.throughput;
              T.pct ((nolog.Runner.throughput -. nv.Runner.throughput)
                     /. nolog.Runner.throughput);
              Printf.sprintf "%.0f%% of DRAM"
                (100.0 *. nv.Runner.throughput /. dram.Runner.throughput);
            ])
          contention2)
      [
        ("tpcc", (fun l -> tpcc l), 15);
        ("ycsb", (fun l -> ycsb (l :> [ `Low | `Medium | `High ])), 0);
        ("ycsb-smallrow", (fun l -> ycsb_smallrow (l :> [ `Low | `Medium | `High ])), 0);
        ("smallbank", (fun l -> smallbank l), 0);
      ]
  in
  T.print ppf
    ~title:
      "Figure 10: impact of supporting failure recovery (paper shape: logging costs ~2% on \
       TPC-C, 4-17% elsewhere; NVCaracal reaches up to ~79% of all-DRAM)"
    ~header:
      [
        "benchmark"; "contention"; "NVCaracal"; "no-logging"; "all-DRAM"; "logging overhead";
        "vs all-DRAM";
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 11: recovery time breakdown                                  *)

let fig11 ppf =
  let rows =
    List.map
      (fun (bname, w, growth) ->
        let setup = Runner.setup ~epochs:4 ~epoch_txns:1000 ~insert_growth:growth () in
        let { Runner.r_label = _; report = r } =
          Runner.run_recovery setup w ~crash_after_txns:900 ()
        in
        [
          bname;
          T.ms r.Report.load_log_ns;
          Printf.sprintf "%s (%d rows)" (T.ms r.Report.scan_ns) r.Report.scanned_rows;
          T.ms r.Report.revert_ns;
          Printf.sprintf "%s (%d txns)" (T.ms r.Report.replay_ns) r.Report.replayed_txns;
          T.ms r.Report.total_ns;
        ])
      [
        ("ycsb low", ycsb `Low, 0);
        ("ycsb high", ycsb `High, 0);
        ("smallbank low", smallbank `Low, 0);
        ("smallbank high", smallbank `High, 0);
        ("tpcc low", tpcc `Low, 15);
        ("tpcc high", tpcc `High, 15);
      ]
  in
  T.print ppf
    ~title:
      "Figure 11: recovery time breakdown (paper shape: the row scan dominates; replay is \
       bounded by the epoch; TPC-C reverts cost mainly at low contention)"
    ~header:[ "workload"; "load log"; "scan+index"; "revert"; "replay"; "total" ]
    rows;
  (* Section 6.8's comparison: Zen rebuilds by scanning its record
     arenas more than once, so its recovery scales with capacity. *)
  let zen_rows =
    List.map
      (fun (bname, w) ->
        let base_rows = Nv_workloads.Workload.total_rows w in
        let config =
          {
            Nv_zen.Zen_db.default_config with
            cores = 8;
            record_size = w.Nv_workloads.Workload.typical_value + Nv_zen.Zen_store.header_bytes;
            cache_entries = base_rows;
            slots_per_core = base_rows * 2 / 8;
          }
        in
        let db = Nv_zen.Zen_db.create ~config ~tables:w.Nv_workloads.Workload.tables () in
        Nv_zen.Zen_db.bulk_load db (w.Nv_workloads.Workload.load ());
        let rng = Nv_util.Rng.create 42 in
        for _ = 1 to 4 do
          Nv_zen.Zen_db.exec_batch db (w.Nv_workloads.Workload.gen_batch rng 1000)
        done;
        let _, r =
          Nv_zen.Zen_db.recover ~config ~tables:w.Nv_workloads.Workload.tables
            ~pmem:(Nv_zen.Zen_db.pmem db) ()
        in
        [
          bname;
          T.ms r.Nv_zen.Zen_db.scan1_ns;
          T.ms r.Nv_zen.Zen_db.scan2_ns;
          Printf.sprintf "%d slots (%d live)" r.Nv_zen.Zen_db.scanned_slots
            r.Nv_zen.Zen_db.live_rows;
          T.ms r.Nv_zen.Zen_db.total_ns;
        ])
      [ ("zen ycsb", ycsb `Low); ("zen smallbank", smallbank `Low) ]
  in
  T.print ppf
    ~title:
      "Figure 11 (cont.): Zen recovery needs two passes over the whole record arena (section \
       6.8: scales with capacity, not live data)"
    ~header:[ "workload"; "scan pass 1"; "scan pass 2"; "slots scanned"; "total" ]
    zen_rows

(* ------------------------------------------------------------------ *)
(* Figure 12: epoch-size sweep                                         *)

let fig12 ppf =
  let total_txns = 8000 in
  let sizes = [ 250; 500; 1000; 2000; 4000; 8000 ] in
  let rows =
    List.concat_map
      (fun (bname, w, growth) ->
        List.map
          (fun epoch_txns ->
            let setup =
              Runner.setup ~epochs:(total_txns / epoch_txns) ~epoch_txns
                ~insert_growth:growth ()
            in
            let r = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
            [
              bname;
              string_of_int epoch_txns;
              T.mtps r.Runner.throughput;
              T.ms (Nv_util.Histogram.mean r.Runner.epoch_latency);
              T.pct r.Runner.transient_frac;
            ])
          sizes)
      [
        ("ycsb high", ycsb `High, 0);
        ("ycsb-smallrow high", ycsb_smallrow `High, 0);
        ("smallbank high", smallbank `High, 0);
        ("tpcc high", tpcc `High, 15);
      ]
  in
  T.print ppf
    ~title:
      "Figure 12: effect of epoch size (paper shape: larger epochs raise throughput and \
       latency; contended smallrow regresses at the largest epoch)"
    ~header:[ "benchmark"; "txns/epoch"; "throughput"; "epoch latency"; "transient" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablations: design choices beyond the paper's figures                 *)

let ablations ppf =
  (* (a) Batch append: removes the long-version-array regression at
     large epochs (section 6.9 / Caracal's optimization). *)
  let smallrow = ycsb_smallrow `High in
  let sweep batch =
    List.map
      (fun epoch_txns ->
        let setup = Runner.setup ~epochs:(8000 / epoch_txns) ~epoch_txns () in
        let r =
          Runner.run_nvcaracal setup smallrow ~variant:Config.Nvcaracal ~batch_append:batch ()
        in
        (epoch_txns, r.Runner.throughput))
      [ 1000; 8000 ]
  in
  let plain = sweep false and batched = sweep true in
  T.print ppf
    ~title:
      "Ablation A: batch append vs sorted insert (contended YCSB-smallrow; batch append        removes the large-epoch regression)"
    ~header:[ "txns/epoch"; "sorted insert"; "batch append" ]
    (List.map2
       (fun (n, p) (_, b) -> [ string_of_int n; T.mtps p; T.mtps b ])
       plain batched);
  (* (b) Selective caching: avoid cache fills on cold reads (section 7
     future work). *)
  let selective_rows =
    List.map
      (fun (bname, w) ->
        let setup = Runner.setup ~epochs:8 ~epoch_txns:1000 () in
        let base = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
        let sel =
          Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal ~selective_caching:true ()
        in
        [
          bname;
          T.mtps base.Runner.throughput;
          T.mtps sel.Runner.throughput;
          T.pct
            ((sel.Runner.throughput -. base.Runner.throughput) /. base.Runner.throughput);
        ])
      [
        ("ycsb-smallrow low", ycsb_smallrow `Low);
        ("ycsb-smallrow high", ycsb_smallrow `High);
        ("ycsb low", ycsb `Low);
        ("smallbank high", smallbank `High);
      ]
  in
  T.print ppf
    ~title:
      "Ablation B: selective caching (cache only rows with several versions this epoch, \
       never cold reads) — helps only under heavy write skew"
    ~header:[ "workload"; "cache-all"; "selective"; "delta" ]
    selective_rows;
  (* (c) Ordered-index implementation: AVL vs wide-node B+-tree on the
     range-heavy TPC-C workload. *)
  let idx_rows =
    List.map
      (fun (name, ordered_index) ->
        let setup = Runner.setup ~epochs:6 ~epoch_txns:800 ~insert_growth:15 () in
        let r =
          Runner.run_nvcaracal setup (tpcc `Low) ~variant:Config.Nvcaracal ~ordered_index ()
        in
        [ name; T.mtps r.Runner.throughput ])
      [ ("AVL", Config.Avl); ("B+-tree (fanout 32)", Config.Btree) ]
  in
  T.print ppf ~title:"Ablation C: ordered-index implementation (TPC-C low contention)"
    ~header:[ "index"; "throughput" ] idx_rows;
  (* (d) Traditional WAL (section 2.1): redo-log every update and
     checkpoint in place — two NVMM writes per update. *)
  let wal_rows =
    List.concat_map
      (fun (bname, w) ->
        List.map
          (fun (cname, wl) ->
            let setup = Runner.setup ~epochs:8 ~epoch_txns:1000 () in
            let nv = Runner.run_nvcaracal setup wl ~variant:Config.Nvcaracal () in
            let wal = Runner.run_nvcaracal setup wl ~variant:Config.Wal () in
            [
              bname ^ " " ^ cname;
              T.mtps nv.Runner.throughput;
              T.mtps wal.Runner.throughput;
              Printf.sprintf "%.2fx" (nv.Runner.throughput /. wal.Runner.throughput);
            ])
          [ ("low", w `Low); ("high", w `High) ])
      [
        ("ycsb", fun l -> ycsb (l :> [ `Low | `Medium | `High ]));
        ("smallbank", fun l -> smallbank l);
      ]
  in
  T.print ppf
    ~title:
      "Ablation D: NVCaracal vs traditional NVMM write-ahead logging (redo log + in-place        checkpoint; two NVMM writes per update, section 2.1)"
    ~header:[ "workload"; "NVCaracal"; "WAL"; "speedup" ]
    wal_rows;
  (* (e) Persistent NVMM index (section 7 future work): recovery reads
     the bucket table instead of scanning and block-reading every
     persistent row; per-row state loads lazily afterwards. *)
  let pix_rows =
    List.map
      (fun (bname, w) ->
        let setup = Runner.setup ~epochs:4 ~epoch_txns:1000 () in
        let eager = (Runner.run_recovery setup w ~crash_after_txns:900 ()).Runner.report in
        let lazy_r =
          (Runner.run_recovery setup w ~crash_after_txns:900 ~persistent_index:true ())
            .Runner.report
        in
        [
          bname;
          T.ms eager.Report.scan_ns;
          T.ms lazy_r.Report.scan_ns;
          T.ms eager.Report.total_ns;
          T.ms lazy_r.Report.total_ns;
          Printf.sprintf "%.1fx" (eager.Report.total_ns /. lazy_r.Report.total_ns);
        ])
      [ ("ycsb low", ycsb `Low); ("smallbank low", smallbank `Low) ]
  in
  T.print ppf
    ~title:
      "Ablation E: persistent NVMM index (section 7) - recovery scans the index buckets \
       instead of every row"
    ~header:
      [
        "workload"; "scan (eager)"; "scan (pindex)"; "total (eager)"; "total (pindex)";
        "total speedup";
      ]
    pix_rows;
  (* (f) Aria-style concurrency control (section 7 future work): no
     pre-declared write sets; conflicting transactions defer and retry
     in the next batch. *)
  let aria_rows =
    (* Conflict probability scales with batch/keyspace; 250-txn epochs
       over the scaled 50k-row table match the paper-scale rate. *)
    List.map
      (fun (cname, level) ->
        let w = ycsb level in
        let setup = Runner.setup ~epochs:16 ~epoch_txns:250 () in
        let caracal = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
        (* Aria run with deferred-retry carry-over. *)
        let config = Runner.nvcaracal_config setup w ~variant:Config.Nvcaracal () in
        let db = Nvcaracal.Db.create ~config ~tables:w.W.tables () in
        Nvcaracal.Db.bulk_load db (w.W.load ());
        let rng = Nv_util.Rng.create 42 in
        let deferred = ref [||] in
        let total_deferred = ref 0 in
        for _ = 1 to 16 do
          let fresh = w.W.gen_batch rng 250 in
          let batch = Array.append !deferred fresh in
          let _, d = Nvcaracal.Db.run_epoch_aria db batch in
          total_deferred := !total_deferred + Array.length d;
          deferred := d
        done;
        let committed = Nvcaracal.Db.committed_txns db in
        let tput = float_of_int committed /. Nvcaracal.Db.total_time_ns db *. 1e9 in
        [
          "ycsb " ^ cname;
          T.mtps caracal.Runner.throughput;
          T.mtps tput;
          Printf.sprintf "%d" !total_deferred;
          T.pct (float_of_int !total_deferred /. 4000.0);
        ])
      contention2
  in
  T.print ppf
    ~title:
      "Ablation F: Caracal-style vs Aria-style deterministic concurrency control (section 7 \
       future work). Aria needs no write sets but defers conflicting transactions - and \
       collapses under extreme contention, which is exactly the contention-handling gap \
       Caracal was built to close"
    ~header:[ "workload"; "Caracal mode"; "Aria mode"; "deferrals"; "deferral rate" ]
    aria_rows

(* ------------------------------------------------------------------ *)
(* Headline numbers for the committed benchmark snapshot
   (bench --snapshot): the fig5 default-dataset YCSB matchup and the
   fig8-config throughput and memory totals. Deterministic — the same
   seeded runs the figures print. *)

let snapshot () =
  let fig5_rows =
    List.concat_map
      (fun (name, level) ->
        let w = ycsb level in
        let setup =
          Runner.setup ~epochs:10 ~epoch_txns:1200 ~row_size:ycsb_row_size
            ~cache_entries:Ycsb.default.Ycsb.rows ()
        in
        let nv, zen = vs_zen_row setup w in
        [
          ("fig5/ycsb-" ^ name ^ "/nvcaracal_tps", nv.Runner.throughput);
          ("fig5/ycsb-" ^ name ^ "/zen_tps", zen.Runner.throughput);
        ])
      contention3
  in
  let fig8_rows =
    List.concat_map
      (fun (bname, w, growth) ->
        let setup = Runner.setup ~epochs:8 ~epoch_txns:1000 ~insert_growth:growth () in
        let r = Runner.run_nvcaracal setup w ~variant:Config.Nvcaracal () in
        let m = r.Runner.mem in
        [
          ("fig8/" ^ bname ^ "/throughput_tps", r.Runner.throughput);
          ("fig8/" ^ bname ^ "/nvmm_bytes", float_of_int (Report.total_nvmm m));
          ("fig8/" ^ bname ^ "/dram_bytes", float_of_int (Report.total_dram m));
        ])
      [ ("ycsb", ycsb `Medium, 0); ("smallbank", smallbank `Low, 0); ("tpcc", tpcc `Low, 15) ]
  in
  fig5_rows @ fig8_rows

let all =
  [
    ("table1", "YCSB configurations", table1);
    ("table2", "SmallBank configurations", table2);
    ("table3", "TPC-C configurations", table3);
    ("table4", "NVCaracal and Zen configurations", table4);
    ("fig5", "YCSB: NVCaracal vs Zen", fig5);
    ("fig6", "SmallBank: NVCaracal vs Zen", fig6);
    ("fig7", "Design comparison vs all-NVMM / hybrid", fig7);
    ("fig8", "Memory consumption breakdown", fig8);
    ("fig9", "Optimization ablation", fig9);
    ("fig10", "Cost of failure recovery", fig10);
    ("fig11", "Recovery time breakdown", fig11);
    ("fig12", "Epoch size sweep", fig12);
    ( "ablations",
      "Extensions: batch append, selective caching, index choice, WAL, persistent index, Aria",
      ablations );
  ]
