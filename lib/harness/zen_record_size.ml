(* Zen record sizing (Table 4), kept out of store internals so the
   engine-spec layer owns every derived configuration number. *)

let header = Nv_zen.Zen_store.header_bytes

let optimal (w : Nv_workloads.Workload.t) =
  (w.Nv_workloads.Workload.typical_value + header + 7) / 8 * 8
