(** One function per table and figure of the paper's evaluation
    (section 6). Each prints the regenerated rows/series; EXPERIMENTS.md
    records how the measured shapes compare with the paper's. All runs
    use scaled-down datasets (DESIGN.md) and simulated time. *)

val table1 : Format.formatter -> unit
val table2 : Format.formatter -> unit
val table3 : Format.formatter -> unit
val table4 : Format.formatter -> unit

val fig5 : Format.formatter -> unit
(** YCSB throughput, NVCaracal vs Zen, default and large datasets. *)

val fig6 : Format.formatter -> unit
(** SmallBank throughput, NVCaracal vs Zen. *)

val fig7 : Format.formatter -> unit
(** NVCaracal vs the all-NVMM and hybrid Caracal designs. *)

val fig8 : Format.formatter -> unit
(** DRAM and NVMM consumption breakdown. *)

val fig9 : Format.formatter -> unit
(** Impact of the minor-GC and cached-versions optimizations. *)

val fig10 : Format.formatter -> unit
(** Cost of supporting failure recovery: NVCaracal vs no-logging vs
    all-DRAM. *)

val fig11 : Format.formatter -> unit
(** Recovery-time breakdown after a mid-epoch crash. *)

val fig12 : Format.formatter -> unit
(** Epoch-size sweep: throughput vs epoch latency. *)

val ablations : Format.formatter -> unit
(** Extension ablations beyond the paper's figures: Caracal's batch
    append, selective caching (section 7 future work), AVL vs B+-tree
    row index, and a traditional-WAL baseline (section 2.1). *)

val all : (string * string * (Format.formatter -> unit)) list
(** (id, description, run) for every experiment, in paper order. *)

val snapshot : unit -> (string * float) list
(** Headline metrics for the committed benchmark snapshot
    ([bench --snapshot]): the fig5 default-dataset NVCaracal-vs-Zen
    throughputs and the fig8-config throughput and memory totals, as
    (metric name, value) pairs. Deterministic — the same seeded runs
    the figures print. *)
