(** Shared command-line vocabulary of the front-end executables.

    [bin/nvdb], [bench/main] and the fuzz entry points all speak the
    same flags (--workload/--contention/--epochs/--txns/--seed/--jobs/
    --engine/--trace/--metrics); this module is their single
    definition, plus the resolution helpers turning flag strings into
    workloads, engine specs and observability sinks. *)

val workload : string Cmdliner.Term.t
val contention : string Cmdliner.Term.t
val epochs : int Cmdliner.Term.t
val txns : int Cmdliner.Term.t
val seed : int Cmdliner.Term.t
val jobs : int Cmdliner.Term.t
val engine : string Cmdliner.Term.t
val trace : string option Cmdliner.Term.t
val metrics : string option Cmdliner.Term.t
val trace_wall : bool Cmdliner.Term.t
val profile : bool Cmdliner.Term.t
val profile_out : string option Cmdliner.Term.t
val slow_epoch_ms : float option Cmdliner.Term.t
val listen : string Cmdliner.Term.t

val shards : int Cmdliner.Term.t
(** [--shards N]: serve as (or drive) an N-shard routed cluster;
    1 (default) is single-shard serving. Shared by serve, loadgen,
    chaos and bench-style drivers so the cluster vocabulary stays
    uniform. *)

val shard_id : int option Cmdliner.Term.t
(** [--shard-id I] (internal): run as shard I of a [--shards] cluster —
    what a router passes to the shard processes it spawns. *)

val router : string option Cmdliner.Term.t
(** [--router ADDR]: address of the cluster router to drive (overrides
    [--listen] in client tools). *)

val set_jobs : int -> unit
(** Install the domain-pool width ({!Engine.default_jobs}); call once
    at argument-parse time. *)

val parse_address : string -> [ `Unix of string | `Tcp of string * int ]
(** "HOST:PORT" or "PORT" is TCP (host defaults to 127.0.0.1);
    anything else is a Unix-domain socket path. *)

val resolve_engine : string -> Engine.spec
(** Raises [Failure] on unknown names. *)

val resolve_workload : string -> string -> Nv_workloads.Workload.t * int
(** Workload plus its insert-growth allowance; raises [Failure] on
    unknown names or contention levels. *)

(** The observability sinks one invocation requested, plus the thunk
    that writes/prints them after the run. *)
type obs = {
  tracer : Nv_obs.Tracer.t option;
  metrics : Nv_obs.Metrics.t option;
  profile : Nv_obs.Profile.t option;
  flush : unit -> unit;
}

val observability :
  ?prog:string ->
  ?ppf:Format.formatter ->
  ?trace_wall:bool ->
  ?profile:bool ->
  ?profile_out:string ->
  ?slow_epoch_ms:float ->
  trace:string option ->
  metrics:string option ->
  unit ->
  obs
(** Build the sinks the flags requested: a tracer for [trace] (with the
    wall clock installed when [trace_wall]), a metrics registry for
    [metrics], and a profiler when any of [profile] / [profile_out] /
    [slow_epoch_ms] asks for one (slow epochs log to stderr as they
    happen). [flush] writes the collected files, prints the profile
    table when [profile] was set, and reports on [ppf] (default
    std_formatter); call it after the run. *)
