module Config = Nvcaracal.Config
module Db = Nvcaracal.Db
module Table = Nvcaracal.Table
module W = Nv_workloads.Workload
module Rng = Nv_util.Rng

module Pmem = Nv_nvmm.Pmem
module Report = Nvcaracal.Report

type outcome = {
  iterations : int;
  crashes_injected : int;
  replays : int;
  faulted : int;  (* iterations that injected media faults *)
  recrashes : int;  (* crashes injected in the middle of recovery *)
  salvages : int;  (* recoveries that repaired/salvaged/reported corruption *)
  detection_only : int;  (* iterations verified by damage report alone *)
  diffed : int;  (* iterations that cross-checked NVCaracal against Zen *)
  failures : string list;
}

(* Every 5th iteration fuzzes the sharded cluster instead: random node
   count, cross-partition transfers, a random node crash + catch-up,
   checked against money conservation and a single-node cluster run of
   the same batches. *)
let fuzz_partition rng iter ~jobs failures =
  let nodes = 2 + Rng.int rng 3 in
  let accounts = 40 + Rng.int rng 80 in
  let config =
    Config.make ~cores:(Rng.pick rng [| 2; 4 |]) ~row_size:128 ~crash_safe:true
      ~rows_per_core:4096 ~values_per_core:4096 ~freelist_capacity:8192 ~parallelism:jobs ()
  in
  let tables = [ Nvcaracal.Table.make ~id:0 ~name:"a" () ] in
  let balance v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    b
  in
  let transfer src dst amount =
    Nvcaracal.Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        let bal key =
          match ctx.Nvcaracal.Txn.Ctx.read ~table:0 ~key with
          | Some v -> Bytes.get_int64_le v 0
          | None -> failwith "missing"
        in
        let s = bal src in
        if Int64.compare s amount < 0 then ctx.Nvcaracal.Txn.Ctx.abort ();
        let d = bal dst in
        ctx.Nvcaracal.Txn.Ctx.write ~table:0 ~key:src (balance (Int64.sub s amount));
        ctx.Nvcaracal.Txn.Ctx.write ~table:0 ~key:dst (balance (Int64.add d amount)))
  in
  let batch seed n =
    let brng = Rng.create seed in
    Array.init n (fun _ ->
        let src = Int64.of_int (Rng.int brng accounts) in
        let rec dst () =
          let d = Int64.of_int (Rng.int brng accounts) in
          if d = src then dst () else d
        in
        transfer src (dst ()) (Int64.of_int (1 + Rng.int brng 15)))
  in
  let run nodes crash_at =
    let c = Nvcaracal.Partition.create ~config ~tables ~nodes () in
    Nvcaracal.Partition.bulk_load c
      (Seq.init accounts (fun i -> (0, Int64.of_int i, balance 100L)));
    let seeds = List.init 4 (fun e -> 1000 + e) in
    List.iteri
      (fun e seed ->
        let rec retry b rounds =
          if Array.length b > 0 && rounds < 10 then begin
            let _, d = Nvcaracal.Partition.run_epoch c b in
            retry d (rounds + 1)
          end
        in
        retry (batch seed 25) 0;
        match crash_at with
        | Some (ce, node) when ce = e && node < nodes ->
            Nvcaracal.Partition.crash_node c node ~rng;
            Nvcaracal.Partition.recover_node c node
        | _ -> ())
      seeds;
    List.init accounts (fun k ->
        match Nvcaracal.Partition.read c ~table:0 ~key:(Int64.of_int k) with
        | Some v -> Bytes.get_int64_le v 0
        | None -> -1L)
  in
  let crash_at = Some (Rng.int rng 4, Rng.int rng nodes) in
  let sharded = run nodes crash_at in
  let reference = run 1 None in
  let conserved =
    List.fold_left Int64.add 0L sharded = Int64.of_int (accounts * 100)
  in
  if (not conserved) || sharded <> reference then
    failures :=
      Printf.sprintf "iter %d: partition fuzz mismatch (nodes=%d accounts=%d)" iter nodes
        accounts
      :: !failures

exception Crash_now

let pick_workload rng =
  match Rng.int rng 3 with
  | 0 ->
      Nv_workloads.Tpcc.make
        {
          Nv_workloads.Tpcc.warehouses = 1 + Rng.int rng 2;
          districts = 10;
          customers_per_district = 8 + Rng.int rng 8;
          items = 40;
          max_order_lines = 8;
          invalid_item_rate = 0.02;
        }
  | 1 ->
    Nv_workloads.Ycsb.make
      {
        Nv_workloads.Ycsb.rows = 200 + Rng.int rng 400;
        value_size = Rng.pick rng [| 16; 64; 200; 600 |];
        update_bytes = 16;
        hot_rows = 16;
        hot_per_txn = Rng.int rng 8;
        ops_per_txn = 4;
        distribution =
          (if Rng.bool rng then Nv_workloads.Ycsb.Hotspot
           else Nv_workloads.Ycsb.Zipfian 0.99);
      }
  | _ ->
    Nv_workloads.Smallbank.make
      {
        Nv_workloads.Smallbank.default with
        Nv_workloads.Smallbank.customers = 200 + Rng.int rng 400;
        hot_customers = 10 + Rng.int rng 20;
      }

let pick_config rng (w : W.t) ~jobs =
  Config.make ~cores:(Rng.pick rng [| 1; 2; 4; 8 |])
    ~row_size:(Rng.pick rng [| 128; 256; 512 |])
    ~crash_safe:true ~cache_k:(1 + Rng.int rng 4) ~minor_gc:(Rng.bool rng)
    ~cached_versions:(Rng.bool rng) ~batch_append:(Rng.bool rng)
    ~selective_caching:(Rng.bool rng) ~persistent_index:(Rng.bool rng)
    ~pindex_capacity:8192
    ~ordered_index:(if Rng.bool rng then Config.Avl else Config.Btree)
    ~rows_per_core:8192 ~values_per_core:8192 ~freelist_capacity:16384
    ~log_capacity:(1 lsl 20) ~n_counters:w.W.n_counters
    ~revert_on_recovery:w.W.revert_on_recovery ~parallelism:jobs ()

let pick_phase rng ~epoch_txns =
  match Rng.int rng 8 with
  | 0 -> Db.Log_done
  | 1 -> Db.Insert_done
  | 2 -> Db.Gc_pass1_done
  | 3 -> Db.Gc_done
  | 4 -> Db.Append_done
  | 5 -> Db.Exec_txn (Rng.int rng epoch_txns)
  | 6 -> Db.Exec_done
  | _ -> Db.Checkpointed

(* One oracle for every backend: the committed state as a sorted
   (table, key, value) list, read through the shared engine seam. *)
let engine_state (type e) (module E : Nvcaracal.Engine_intf.S with type t = e) (db : e)
    (w : W.t) =
  List.concat_map
    (fun (tb : Table.t) ->
      let out = ref [] in
      E.iter_committed db ~table:tb.Table.id (fun k v ->
          out := (tb.Table.id, k, Bytes.to_string v) :: !out);
      List.sort compare !out)
    w.W.tables

let state db (w : W.t) = engine_state (module Db.Serial_engine) db w

(* ------------------------------------------------------------------ *)
(* Differential campaign ([~diff:true]): each iteration runs the same
   seeded batches through the deterministic NVCaracal engine and
   through Zen via the shared {!Nvcaracal.Engine_intf.S} seam, and
   compares committed state and commit counts. Both engines execute
   batches in serial order, so any divergence is an engine bug (or a
   seam bug — which is the point of the campaign). Restricted to YCSB
   and SmallBank: Zen supports neither dynamic write sets nor the
   persistent counters TPC-C needs. *)

let pick_diff_workload rng =
  if Rng.bool rng then
    Nv_workloads.Ycsb.make
      {
        Nv_workloads.Ycsb.rows = 200 + Rng.int rng 400;
        value_size = Rng.pick rng [| 16; 64; 200; 600 |];
        update_bytes = 16;
        hot_rows = 16;
        hot_per_txn = Rng.int rng 8;
        ops_per_txn = 4;
        distribution =
          (if Rng.bool rng then Nv_workloads.Ycsb.Hotspot
           else Nv_workloads.Ycsb.Zipfian 0.99);
      }
  else
    Nv_workloads.Smallbank.make
      {
        Nv_workloads.Smallbank.default with
        Nv_workloads.Smallbank.customers = 200 + Rng.int rng 400;
        hot_customers = 10 + Rng.int rng 20;
      }

let run_packed packed (w : W.t) batches =
  match (packed : Nvcaracal.Engine_intf.packed) with
  | Nvcaracal.Engine_intf.Packed ((module E), db) ->
      E.bulk_load db (w.W.load ());
      List.iter (fun b -> ignore (E.run_batch db b)) batches;
      ((E.introspect db).Nvcaracal.Engine_intf.state_digest, E.committed_txns db)

let fuzz_diff iter_rng iter ~failures ~log =
  let w = pick_diff_workload iter_rng in
  let epochs = 2 + Rng.int iter_rng 3 in
  let epoch_txns = 30 + Rng.int iter_rng 50 in
  let batch_seed = Rng.int iter_rng 1_000_000 in
  let batches =
    let brng = Rng.create batch_seed in
    List.init epochs (fun _ -> w.W.gen_batch brng epoch_txns)
  in
  let s = Engine.setup ~epochs ~epoch_txns () in
  let run spec = run_packed (Engine.instantiate spec s w) w batches in
  let nv_digest, nv_committed = run (Engine.spec (Engine.Caracal Config.Nvcaracal)) in
  let zen_digest, zen_committed = run (Engine.spec Engine.Zen) in
  let ok = nv_digest = zen_digest && nv_committed = zen_committed in
  if not ok then
    failures :=
      Printf.sprintf "iter %d: %s (epochs=%d txns=%d) nvcaracal/zen divergence (committed %d vs %d)"
        iter w.W.name epochs epoch_txns nv_committed zen_committed
      :: !failures;
  log
    (Printf.sprintf "iter %3d: %-32s epochs=%d txns=%d diff %s" iter w.W.name epochs
       epoch_txns
       (if ok then "ok" else "MISMATCH"))

(* ------------------------------------------------------------------ *)
(* Media-fault campaign ([~faults:true]): each iteration crashes the
   victim through a random fault model — legal image, torn lines,
   bit-rot into cold media, dead lines — optionally crashes again in
   the middle of recovery, then recovers with [~scrub:true]. What the
   verdict checks depends on what the scrub found:

   - no damage: recovered state must equal the oracle exactly;
   - [log_dropped]: the crashed epoch reverted, so the oracle is
     rebuilt without its final batch;
   - damage attributed to a (table, key): the key is excluded from the
     comparison on both sides — the scrub already reported it lost;
   - [`Header] damage (row identity destroyed, loss not attributable):
     the iteration is verified by the damage report alone;
   - [Meta_region.Corrupt] or [Failure] escaping recovery counts as a
     loud detection when faults were injected, and as a failure on a
     legal image.

   Allocator and counter salvage never touch committed row state, so
   they leave the comparison strict. Crash-during-recovery is only
   paired with the legal and torn models: rot and dead lines can null
   stable versions in the first attempt, and the rerun's report would
   then under-state the damage those keys already suffered. *)

type fault_kind = F_legal | F_torn | F_rot | F_dead

let kind_name = function
  | F_legal -> "legal"
  | F_torn -> "torn"
  | F_rot -> "rot"
  | F_dead -> "dead"

let pick_fault rng =
  match Rng.int rng 4 with
  | 0 -> (F_legal, Pmem.no_faults)
  | 1 -> (F_torn, { Pmem.no_faults with Pmem.torn_frac = 0.5 })
  | 2 ->
      ( F_rot,
        {
          Pmem.no_faults with
          Pmem.rot_lines = 1 + Rng.int rng 4;
          rot_max_bits = 1 + Rng.int rng 3;
        } )
  | _ -> (F_dead, { Pmem.no_faults with Pmem.dead = 1 + Rng.int rng 2 })

let pick_rec_phase rng =
  match Rng.int rng 4 with
  | 0 -> Db.Rec_meta_recovered
  | 1 -> Db.Rec_log_loaded
  | 2 -> Db.Rec_scan_done
  | _ -> Db.Rec_replay_done

let fuzz_faults iter_rng iter ~jobs ~crashes ~replays ~recrashes ~salvages ~detections
    ~failures ~log =
  let w = pick_workload iter_rng in
  let config = pick_config iter_rng w ~jobs in
  let epochs = 2 + Rng.int iter_rng 3 in
  let epoch_txns = 30 + Rng.int iter_rng 50 in
  let batch_seed = Rng.int iter_rng 1_000_000 in
  let batches =
    let brng = Rng.create batch_seed in
    List.init epochs (fun _ -> w.W.gen_batch brng epoch_txns)
  in
  let oracle_without_last () =
    let o = Db.create ~config ~tables:w.W.tables () in
    Db.bulk_load o (w.W.load ());
    List.iteri (fun i b -> if i < epochs - 1 then ignore (Db.run_epoch o b)) batches;
    o
  in
  let oracle = Db.create ~config ~tables:w.W.tables () in
  Db.bulk_load oracle (w.W.load ());
  List.iter (fun b -> ignore (Db.run_epoch oracle b)) batches;
  let db = Db.create ~config ~tables:w.W.tables () in
  Db.bulk_load db (w.W.load ());
  List.iteri (fun i b -> if i < epochs - 1 then ignore (Db.run_epoch db b)) batches;
  let phase = pick_phase iter_rng ~epoch_txns in
  let log_committed = ref false in
  Db.set_phase_hook db (fun p ->
      if p = Db.Log_done then log_committed := true;
      if p = phase then raise Crash_now);
  let completed =
    try
      ignore (Db.run_epoch db (List.nth batches (epochs - 1)));
      true
    with Crash_now -> false
  in
  let kind, model = pick_fault iter_rng in
  let recrash = (kind = F_legal || kind = F_torn) && Rng.int iter_rng 3 = 0 in
  let recrash_at = pick_rec_phase iter_rng in
  incr crashes;
  let pmem =
    match kind with
    | F_legal -> Db.crash db ~rng:iter_rng
    | _ -> Db.crash ~faults:model db ~rng:iter_rng
  in
  let attempt ?recovery_hook () =
    Db.recover ~config ~tables:w.W.tables ~pmem ~rebuild:w.W.rebuild ?recovery_hook
      ~scrub:true ()
  in
  let verdict = ref "ok" in
  let fail msg =
    verdict := "MISMATCH";
    failures :=
      Printf.sprintf "iter %d: %s [%s%s] (epochs=%d txns=%d) %s" iter w.W.name
        (kind_name kind)
        (if recrash then "+recrash" else "")
        epochs epoch_txns msg
      :: !failures
  in
  let result =
    try
      let r =
        if recrash then begin
          match
            attempt ~recovery_hook:(fun p -> if p = recrash_at then raise Crash_now) ()
          with
          | r -> r
          | exception Crash_now ->
              incr recrashes;
              incr crashes;
              Pmem.crash pmem ~rng:iter_rng;
              attempt ()
        end
        else attempt ()
      in
      `Recovered r
    with
    | Nv_storage.Meta_region.Corrupt msg -> `Detected ("meta corrupt: " ^ msg)
    | Failure msg -> `Detected ("failure: " ^ msg)
  in
  (match result with
  | `Detected msg ->
      if kind = F_legal then fail ("raised on a legal image: " ^ msg)
      else begin
        incr detections;
        verdict := "detected"
      end
  | `Recovered (db2, report) ->
      if report.Report.replayed_txns > 0 then incr replays;
      if Report.has_salvage report then incr salvages;
      let damage = report.Report.damage in
      if kind = F_legal && (damage <> [] || report.Report.log_dropped) then
        fail
          (Printf.sprintf "false-positive damage on a legal crash image (log_dropped=%b %s)"
             report.Report.log_dropped
             (String.concat ","
                (List.map
                   (fun d ->
                     Format.asprintf "%a@%d/%Ld" Report.pp_damage d d.Report.d_table
                       d.Report.d_key)
                   damage)))
      else if List.exists (fun d -> d.Report.d_kind = `Header) damage then begin
        (* A destroyed row identity can't be attributed to a table, so
           the state comparison is meaningless; the loud report is the
           verdict. *)
        incr detections;
        verdict := Printf.sprintf "detected (%d damage)" (List.length damage)
      end
      else begin
        let oracle =
          if report.Report.log_dropped || not (completed || !log_committed) then
            oracle_without_last ()
          else oracle
        in
        let excluded =
          List.filter_map
            (fun d ->
              if d.Report.d_table >= 0 then Some (d.Report.d_table, d.Report.d_key)
              else None)
            damage
        in
        let filter st =
          List.filter (fun (tb, k, _) -> not (List.mem (tb, k) excluded)) st
        in
        if filter (state db2 w) <> filter (state oracle w) then
          fail "state mismatch after faulted crash"
        else if excluded <> [] then
          verdict := Printf.sprintf "ok (%d keys reported lost)" (List.length excluded)
      end);
  log
    (Printf.sprintf "iter %3d: %-32s epochs=%d txns=%d fault=%-5s%s %s" iter w.W.name
       epochs epoch_txns (kind_name kind)
       (if recrash then "+recrash" else "")
       !verdict)

let run ~seed ~iterations ?(faults = false) ?(diff = false) ?jobs ?(log = fun _ -> ()) () =
  (* Every campaign's engines — victims, oracles, recoveries, both diff
     backends — run at the same pool width, so a wide fuzz sweep is the
     same campaign as a serial one, just executed on more domains.
     Oracles and recoveries carry no phase hook and go genuinely wide;
     hooked victim epochs gate themselves serial, identically at any
     width. *)
  let jobs = match jobs with Some j -> max 1 j | None -> !Engine.default_jobs in
  let saved_jobs = !Engine.default_jobs in
  Engine.default_jobs := jobs;
  Fun.protect ~finally:(fun () -> Engine.default_jobs := saved_jobs) @@ fun () ->
  let rng = Rng.create seed in
  let crashes = ref 0 and replays = ref 0 and failures = ref [] in
  let faulted = ref 0
  and recrashes = ref 0
  and salvages = ref 0
  and detections = ref 0
  and diffs = ref 0 in
  for iter = 1 to iterations do
    let iter_rng = Rng.split rng in
    if diff then begin
      incr diffs;
      fuzz_diff iter_rng iter ~failures ~log
    end
    else if faults then begin
      incr faulted;
      fuzz_faults iter_rng iter ~jobs ~crashes ~replays ~recrashes ~salvages ~detections
        ~failures ~log
    end
    else if iter mod 5 = 0 then begin
      incr crashes;
      fuzz_partition iter_rng iter ~jobs failures;
      log (Printf.sprintf "iter %3d: partition cluster fuzz %s" iter
             (if !failures = [] then "ok" else "MISMATCH"))
    end
    else begin
    let w = pick_workload iter_rng in
    let config = pick_config iter_rng w ~jobs in
    let epochs = 2 + Rng.int iter_rng 3 in
    let epoch_txns = 30 + Rng.int iter_rng 50 in
    let batch_seed = Rng.int iter_rng 1_000_000 in
    let batches =
      let brng = Rng.create batch_seed in
      List.init epochs (fun _ -> w.W.gen_batch brng epoch_txns)
    in
    (* Oracle: same batches, no crash. *)
    let oracle = Db.create ~config ~tables:w.W.tables () in
    Db.bulk_load oracle (w.W.load ());
    List.iter (fun b -> ignore (Db.run_epoch oracle b)) batches;
    (* Victim: crash in the final epoch at a random phase. *)
    let db = Db.create ~config ~tables:w.W.tables () in
    Db.bulk_load db (w.W.load ());
    List.iteri (fun i b -> if i < epochs - 1 then ignore (Db.run_epoch db b)) batches;
    let phase = pick_phase iter_rng ~epoch_txns in
    let log_committed = ref false in
    Db.set_phase_hook db (fun p ->
        if p = Db.Log_done then log_committed := true;
        if p = phase then raise Crash_now);
    let completed =
      try
        ignore (Db.run_epoch db (List.nth batches (epochs - 1)));
        true
      with Crash_now -> false
    in
    incr crashes;
    let pmem = Db.crash db ~rng:iter_rng in
    let db2, report = Db.recover ~config ~tables:w.W.tables ~pmem ~rebuild:w.W.rebuild () in
    if report.Nvcaracal.Report.replayed_txns > 0 then incr replays;
    (* If the final epoch never logged, the oracle comparison must drop
       it: rebuild an oracle without it. *)
    let oracle =
      if completed || !log_committed then oracle
      else begin
        let o = Db.create ~config ~tables:w.W.tables () in
        Db.bulk_load o (w.W.load ());
        List.iteri (fun i b -> if i < epochs - 1 then ignore (Db.run_epoch o b)) batches;
        o
      end
    in
    if state db2 w <> state oracle w then
      failures :=
        Printf.sprintf "iter %d: %s (epochs=%d txns=%d) state mismatch after crash" iter
          w.W.name epochs epoch_txns
        :: !failures;
    log
      (Printf.sprintf "iter %3d: %-32s epochs=%d txns=%d crash=%s %s" iter w.W.name epochs
         epoch_txns
         (match phase with
         | Db.Log_done -> "log"
         | Db.Insert_done -> "insert"
         | Db.Gc_pass1_done -> "gc1"
         | Db.Gc_done -> "gc"
         | Db.Append_done -> "append"
         | Db.Exec_txn k -> Printf.sprintf "exec@%d" k
         | Db.Exec_done -> "exec-end"
         | Db.Checkpointed -> "checkpointed")
         (if state db2 w = state oracle w then "ok" else "MISMATCH"))
    end
  done;
  {
    iterations;
    crashes_injected = !crashes;
    replays = !replays;
    faulted = !faulted;
    recrashes = !recrashes;
    salvages = !salvages;
    detection_only = !detections;
    diffed = !diffs;
    failures = List.rev !failures;
  }
