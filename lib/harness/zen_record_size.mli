(** Zen record sizing.

    Zen stores one fixed-size NVMM record per committed update; Table 4
    of the paper picks the record size per workload so the typical
    value just fits. This module owns that derivation for the harness,
    so configuration plumbing (see {!Engine.spec}) never reaches into
    [Nv_zen.Zen_store] internals. *)

val header : int
(** Per-record header bytes ([Nv_zen.Zen_store.header_bytes]). *)

val optimal : Nv_workloads.Workload.t -> int
(** Table 4's "optimal" record size for a workload: its typical value
    plus the record header, rounded up to a multiple of 8. *)
