type 'a codec = { encode : 'a -> bytes; decode : bytes -> 'a }

type registration =
  | Reg : {
      name : string;
      codec : 'a codec;
      build : 'a -> Nvcaracal.Txn.t;
    }
      -> registration

let reg ~name codec build = Reg { name; codec; build }
let name (Reg r) = r.name
let build_from_bytes (Reg r) args = r.build (r.codec.decode args)

(* --- Common codecs -------------------------------------------------- *)

let bytes_codec = { encode = Fun.id; decode = Fun.id }

let i64 =
  {
    encode =
      (fun v ->
        let b = Bytes.create 8 in
        Bytes.set_int64_le b 0 v;
        b);
    decode = (fun b -> Bytes.get_int64_le b 0);
  }

let i64_pair =
  {
    encode =
      (fun (a, b) ->
        let buf = Bytes.create 16 in
        Bytes.set_int64_le buf 0 a;
        Bytes.set_int64_le buf 8 b;
        buf);
    decode = (fun b -> (Bytes.get_int64_le b 0, Bytes.get_int64_le b 8));
  }
