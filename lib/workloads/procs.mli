(** Stored-procedure registrations.

    A deterministic database's client contract (paper section 6.2.3)
    requires every admitted transaction to be expressible as loggable
    {e input bytes} — an OCaml closure cannot cross a wire or be
    replayed after a crash. A {!registration} therefore names a
    procedure, pairs it with a codec for its argument type, and keeps
    the [args -> Txn.t] constructor private to the server side: clients
    send [(procedure, encoded args)], the front end builds the
    transaction, and recovery rebuilds it from the logged call.

    Each workload exposes its transaction kinds as registrations
    ({!Workload.t.procs}); the front-end registry
    ([Nv_frontend.Proc]) indexes them by name. *)

type 'a codec = { encode : 'a -> bytes; decode : bytes -> 'a }
(** Byte codec for one procedure's argument type. [decode] must accept
    exactly what [encode] produced (and may raise on junk); both must
    be deterministic, since encoded arguments are what the input log
    replays. *)

type registration =
  | Reg : {
      name : string;  (** wire name, e.g. ["smallbank.amalgamate"] *)
      codec : 'a codec;
      build : 'a -> Nvcaracal.Txn.t;
    }
      -> registration
      (** One named procedure with its argument codec and transaction
          constructor, packed existentially so heterogeneous argument
          types share one registry. *)

val reg : name:string -> 'a codec -> ('a -> Nvcaracal.Txn.t) -> registration
val name : registration -> string

val build_from_bytes : registration -> bytes -> Nvcaracal.Txn.t
(** Decode the argument bytes and build the transaction.
    @raise Invalid_argument (or any codec exception) on junk bytes. *)

(** Ready-made codecs. *)

val bytes_codec : bytes codec
(** Identity — for procedures whose argument is already a serialized
    record (e.g. a workload's native input encoding). *)

val i64 : int64 codec
val i64_pair : (int64 * int64) codec
