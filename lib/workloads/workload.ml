type t = {
  name : string;
  tables : Nvcaracal.Table.t list;
  n_counters : int;
  revert_on_recovery : bool;
  typical_value : int;
  load : unit -> (int * int64 * bytes) Seq.t;
  gen_batch : Nv_util.Rng.t -> int -> Nvcaracal.Txn.t array;
  rebuild : bytes -> Nvcaracal.Txn.t;
  procs : Procs.registration list;
  gen_call : Nv_util.Rng.t -> string * bytes;
}

let total_rows t = Seq.fold_left (fun acc _ -> acc + 1) 0 (t.load ())
