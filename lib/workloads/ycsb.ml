module Txn = Nvcaracal.Txn
module Table = Nvcaracal.Table

type distribution = Hotspot | Zipfian of float

type config = {
  rows : int;
  value_size : int;
  update_bytes : int;
  hot_rows : int;
  hot_per_txn : int;
  ops_per_txn : int;
  distribution : distribution;
}

let default =
  {
    rows = 50_000;
    value_size = 1000;
    update_bytes = 100;
    hot_rows = 256;
    hot_per_txn = 0;
    ops_per_txn = 10;
    distribution = Hotspot;
  }

let smallrow c = { c with value_size = 64; update_bytes = 64 }
let large c = { c with rows = c.rows * 4 }

let with_contention level c =
  { c with hot_per_txn = (match level with `Low -> 0 | `Medium -> 4 | `High -> 7) }

let zipfian ~theta c = { c with distribution = Zipfian theta }

let table = Table.make ~id:0 ~name:"usertable" ()

(* Input record: [nonce:8][key:8 x ops]. The nonce seeds the rewritten
   prefix so replay regenerates identical bytes. *)
let encode ~nonce keys =
  let buf = Buffer.create (8 + (8 * Array.length keys)) in
  Buffer.add_int64_le buf nonce;
  Array.iter (fun k -> Buffer.add_int64_le buf k) keys;
  Buffer.to_bytes buf

let decode b =
  let nonce = Bytes.get_int64_le b 0 in
  let n = (Bytes.length b - 8) / 8 in
  (nonce, Array.init n (fun i -> Bytes.get_int64_le b (8 + (8 * i))))

(* Rewrite the first [update_bytes] of [old] with a pattern derived
   from (nonce, key): deterministic, distinct per write. *)
let apply_update cfg ~nonce ~key old =
  let v = Bytes.copy old in
  let n = min cfg.update_bytes (Bytes.length v) in
  let seed = Int64.logxor nonce key in
  for i = 0 to n - 1 do
    Bytes.set v i
      (Char.chr ((Int64.to_int (Int64.shift_right_logical seed (i mod 8 * 8)) + i) land 0xFF))
  done;
  v

let txn_of cfg ~nonce keys =
  let write_set =
    Array.to_list (Array.map (fun key -> Txn.Update { table = 0; key }) keys)
  in
  (* Read-modify-write over exactly the declared update keys: eligible
     for parallel execution. *)
  Txn.make ~reads_declared:true ~input:(encode ~nonce keys) ~write_set (fun ctx ->
      Array.iter
        (fun key ->
          match ctx.Txn.Ctx.read ~table:0 ~key with
          | None -> failwith "ycsb: missing row"
          | Some old -> ctx.Txn.Ctx.write ~table:0 ~key (apply_update cfg ~nonce ~key old))
        keys)

let initial_value cfg i =
  let v = Bytes.make cfg.value_size '\000' in
  Bytes.set_int64_le v 0 (Int64.of_int i);
  v

let gen_keys cfg ?zipf rng =
  (* Unique keys per transaction, drawn per the configured distribution:
     the paper's hotspot knob, or classic YCSB Zipfian skew. *)
  let keys = Array.make cfg.ops_per_txn 0L in
  let seen = Hashtbl.create 16 in
  let unique draw =
    let rec go () =
      let k = draw () in
      if Hashtbl.mem seen k then go ()
      else begin
        Hashtbl.replace seen k ();
        k
      end
    in
    go ()
  in
  (match (cfg.distribution, zipf) with
  | Hotspot, _ ->
      for i = 0 to cfg.ops_per_txn - 1 do
        let bound = if i < cfg.hot_per_txn then cfg.hot_rows else cfg.rows in
        keys.(i) <- unique (fun () -> Int64.of_int (Nv_util.Rng.int rng bound))
      done
  | Zipfian _, Some z ->
      for i = 0 to cfg.ops_per_txn - 1 do
        (* Scramble ranks so popular keys spread over the keyspace. *)
        keys.(i) <-
          unique (fun () ->
              let rank = Nv_util.Zipf.sample z rng in
              Int64.of_int (Nv_util.Fnv.hash_int rank mod cfg.rows))
      done
  | Zipfian _, None -> assert false);
  keys

(* One stored procedure: a read-modify-write group over explicit keys.
   Arguments are the (nonce, keys) pair the input record carries, so
   the wire form, the logged input and replay all agree byte for
   byte. *)
let rmw_codec =
  {
    Procs.encode = (fun (nonce, keys) -> encode ~nonce keys);
    decode;
  }

let make cfg =
  let zipf =
    match cfg.distribution with
    | Hotspot -> None
    | Zipfian theta -> Some (Nv_util.Zipf.create ~n:cfg.rows ~theta)
  in
  {
    Workload.name =
      (match cfg.distribution with
      | Hotspot ->
          Printf.sprintf "ycsb(rows=%d,val=%d,hot=%d/%d)" cfg.rows cfg.value_size
            cfg.hot_per_txn cfg.ops_per_txn
      | Zipfian theta ->
          Printf.sprintf "ycsb(rows=%d,val=%d,zipf=%.2f)" cfg.rows cfg.value_size theta);
    tables = [ table ];
    n_counters = 0;
    revert_on_recovery = false;
    typical_value = cfg.value_size;
    load = (fun () -> Seq.init cfg.rows (fun i -> (0, Int64.of_int i, initial_value cfg i)));
    gen_batch =
      (fun rng n ->
        Array.init n (fun _ ->
            let nonce = Nv_util.Rng.next_int64 rng in
            txn_of cfg ~nonce (gen_keys cfg ?zipf rng)));
    rebuild =
      (fun input ->
        let nonce, keys = decode input in
        txn_of cfg ~nonce keys);
    procs =
      [ Procs.reg ~name:"ycsb.rmw" rmw_codec (fun (nonce, keys) -> txn_of cfg ~nonce keys) ];
    gen_call =
      (fun rng ->
        let nonce = Nv_util.Rng.next_int64 rng in
        ("ycsb.rmw", encode ~nonce (gen_keys cfg ?zipf rng)));
  }
