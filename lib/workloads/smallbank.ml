module Txn = Nvcaracal.Txn
module Table = Nvcaracal.Table

type config = {
  customers : int;
  hot_customers : int;
  hot_probability : float;
  abort_probability : float;
}

let default =
  { customers = 18_000; hot_customers = 1_000; hot_probability = 0.9; abort_probability = 0.1 }

let large c = { c with customers = c.customers * 10; hot_customers = c.hot_customers * 10 }

let with_contention level c =
  (* Low keeps the paper's 1M-of-18M hotspot ratio. High uses 1/360
     rather than the paper's 1/1800: with our ~80x-smaller epochs this
     keeps the number of versions a hot row accumulates per epoch close
     to the paper's, which is what the measured effects depend on. *)
  {
    c with
    hot_customers =
      (match level with `Low -> max 1 (c.customers / 18) | `High -> max 1 (c.customers / 360));
  }

let checking_table = 0
let savings_table = 1

let tables =
  [ Table.make ~id:0 ~name:"checking" (); Table.make ~id:1 ~name:"savings" () ]

let initial_balance = 10_000L

let balance_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let balance_of b = Bytes.get_int64_le b 0

type op =
  | Balance of int64
  | Deposit_checking of int64 * int64
  | Transact_savings of int64 * int64
  | Amalgamate of int64 * int64
  | Write_check of int64 * int64

let encode op =
  let buf = Buffer.create 25 in
  let add tag c1 c2 amt =
    Buffer.add_uint8 buf tag;
    Buffer.add_int64_le buf c1;
    Buffer.add_int64_le buf c2;
    Buffer.add_int64_le buf amt
  in
  (match op with
  | Balance c -> add 0 c 0L 0L
  | Deposit_checking (c, a) -> add 1 c 0L a
  | Transact_savings (c, a) -> add 2 c 0L a
  | Amalgamate (c1, c2) -> add 3 c1 c2 0L
  | Write_check (c, a) -> add 4 c 0L a);
  Buffer.to_bytes buf

let decode b =
  let tag = Char.code (Bytes.get b 0) in
  let c1 = Bytes.get_int64_le b 1 in
  let c2 = Bytes.get_int64_le b 9 in
  let amt = Bytes.get_int64_le b 17 in
  match tag with
  | 0 -> Balance c1
  | 1 -> Deposit_checking (c1, amt)
  | 2 -> Transact_savings (c1, amt)
  | 3 -> Amalgamate (c1, c2)
  | 4 -> Write_check (c1, amt)
  | _ -> invalid_arg "Smallbank.decode"

let read_balance ctx ~table ~key =
  match ctx.Txn.Ctx.read ~table ~key with
  | Some v -> balance_of v
  | None -> failwith "smallbank: missing account"

let txn_of op =
  let write_set =
    match op with
    | Balance _ -> []
    | Deposit_checking (c, _) -> [ Txn.Update { table = checking_table; key = c } ]
    | Transact_savings (c, _) -> [ Txn.Update { table = savings_table; key = c } ]
    | Amalgamate (c1, c2) ->
        [
          Txn.Update { table = checking_table; key = c1 };
          Txn.Update { table = savings_table; key = c1 };
          Txn.Update { table = checking_table; key = c2 };
        ]
    | Write_check (c, _) -> [ Txn.Update { table = checking_table; key = c } ]
  in
  let body ctx =
    match op with
    | Balance c ->
        let _total =
          Int64.add
            (read_balance ctx ~table:checking_table ~key:c)
            (read_balance ctx ~table:savings_table ~key:c)
        in
        ()
    | Deposit_checking (c, amount) ->
        let bal = read_balance ctx ~table:checking_table ~key:c in
        ctx.Txn.Ctx.write ~table:checking_table ~key:c (balance_bytes (Int64.add bal amount))
    | Transact_savings (c, amount) ->
        (* Signed amount: deposit or withdrawal. A withdrawal far beyond
           any plausible balance models the benchmark's insufficient-
           funds abort (issued before any write); ordinary overdrafts
           clamp to zero so the abort rate tracks the configured 10%
           instead of drifting with the balance distribution. *)
        let bal = read_balance ctx ~table:savings_table ~key:c in
        let result = Int64.add bal amount in
        if Int64.compare result (-1_000_000L) < 0 then ctx.Txn.Ctx.abort ();
        ctx.Txn.Ctx.write ~table:savings_table ~key:c
          (balance_bytes (Int64.max 0L result))
    | Amalgamate (c1, c2) ->
        let chk = read_balance ctx ~table:checking_table ~key:c1 in
        let sav = read_balance ctx ~table:savings_table ~key:c1 in
        let dst = read_balance ctx ~table:checking_table ~key:c2 in
        ctx.Txn.Ctx.write ~table:checking_table ~key:c1 (balance_bytes 0L);
        ctx.Txn.Ctx.write ~table:savings_table ~key:c1 (balance_bytes 0L);
        ctx.Txn.Ctx.write ~table:checking_table ~key:c2
          (balance_bytes (Int64.add dst (Int64.add chk sav)))
    | Write_check (c, amount) ->
        (* Overdrafts are allowed with a penalty (as in the original
           benchmark); only a check vastly exceeding the total balance
           aborts — the benchmark's forced ~10%% abort path. *)
        let chk = read_balance ctx ~table:checking_table ~key:c in
        let sav = read_balance ctx ~table:savings_table ~key:c in
        if Int64.compare (Int64.sub amount (Int64.add chk sav)) 1_000_000L > 0 then
          ctx.Txn.Ctx.abort ();
        let penalty = if Int64.compare chk amount < 0 then 1L else 0L in
        ctx.Txn.Ctx.write ~table:checking_table ~key:c
          (balance_bytes (Int64.sub (Int64.sub chk amount) penalty))
  in
  (* Balance reads two undeclared keys and Write_check reads an
     undeclared savings row; the other three transaction kinds read
     exactly the keys they declare, so only they may run wide. *)
  let reads_declared =
    match op with
    | Deposit_checking _ | Transact_savings _ | Amalgamate _ -> true
    | Balance _ | Write_check _ -> false
  in
  Txn.make ~reads_declared ~input:(encode op) ~write_set body

let gen_op cfg rng =
  let pick_customer () =
    if Nv_util.Rng.float rng < cfg.hot_probability then
      Int64.of_int (Nv_util.Rng.int rng cfg.hot_customers)
    else Int64.of_int (Nv_util.Rng.int rng cfg.customers)
  in
  let amount abortable =
    if abortable && Nv_util.Rng.float rng < cfg.abort_probability then 1_000_000_000L
    else Int64.of_int (1 + Nv_util.Rng.int rng 50)
  in
  (* TransactSavings amounts are signed: deposits keep hot savings
     accounts solvent so the abort rate stays near the configured 10%
     instead of drifting up as accounts drain. *)
  let signed_amount () =
    if Nv_util.Rng.float rng < cfg.abort_probability then (-1_000_000_000L)
    else
      let a = Int64.of_int (1 + Nv_util.Rng.int rng 50) in
      if Nv_util.Rng.bool rng then a else Int64.neg a
  in
  match Nv_util.Rng.int rng 5 with
  | 0 -> Balance (pick_customer ())
  | 1 -> Deposit_checking (pick_customer (), amount false)
  | 2 -> Transact_savings (pick_customer (), signed_amount ())
  | 3 ->
      let c1 = pick_customer () in
      let rec other () =
        let c2 = pick_customer () in
        if c2 = c1 then other () else c2
      in
      Amalgamate (c1, other ())
  | _ -> Write_check (pick_customer (), amount true)

(* The five SmallBank transaction kinds as named stored procedures.
   Each carries exactly its own arguments (not the tagged union the
   input log uses), so the wire form is self-describing per name. *)
let procs =
  [
    Procs.reg ~name:"smallbank.balance" Procs.i64 (fun c -> txn_of (Balance c));
    Procs.reg ~name:"smallbank.deposit_checking" Procs.i64_pair (fun (c, a) ->
        txn_of (Deposit_checking (c, a)));
    Procs.reg ~name:"smallbank.transact_savings" Procs.i64_pair (fun (c, a) ->
        txn_of (Transact_savings (c, a)));
    Procs.reg ~name:"smallbank.amalgamate" Procs.i64_pair (fun (c1, c2) ->
        txn_of (Amalgamate (c1, c2)));
    Procs.reg ~name:"smallbank.write_check" Procs.i64_pair (fun (c, a) ->
        txn_of (Write_check (c, a)));
  ]

let call_of_op = function
  | Balance c -> ("smallbank.balance", Procs.i64.Procs.encode c)
  | Deposit_checking (c, a) -> ("smallbank.deposit_checking", Procs.i64_pair.Procs.encode (c, a))
  | Transact_savings (c, a) -> ("smallbank.transact_savings", Procs.i64_pair.Procs.encode (c, a))
  | Amalgamate (c1, c2) -> ("smallbank.amalgamate", Procs.i64_pair.Procs.encode (c1, c2))
  | Write_check (c, a) -> ("smallbank.write_check", Procs.i64_pair.Procs.encode (c, a))

let make cfg =
  {
    Workload.name = Printf.sprintf "smallbank(cust=%d,hot=%d)" cfg.customers cfg.hot_customers;
    tables;
    n_counters = 0;
    revert_on_recovery = false;
    typical_value = 8;
    load =
      (fun () ->
        Seq.concat
          (List.to_seq
             [
               Seq.init cfg.customers (fun i ->
                   (checking_table, Int64.of_int i, balance_bytes initial_balance));
               Seq.init cfg.customers (fun i ->
                   (savings_table, Int64.of_int i, balance_bytes initial_balance));
             ]));
    gen_batch = (fun rng n -> Array.init n (fun _ -> txn_of (gen_op cfg rng)));
    rebuild = (fun input -> txn_of (decode input));
    procs;
    gen_call = (fun rng -> call_of_op (gen_op cfg rng));
  }
