module Txn = Nvcaracal.Txn
module Table = Nvcaracal.Table

type config = {
  warehouses : int;
  districts : int;
  customers_per_district : int;
  items : int;
  max_order_lines : int;
  invalid_item_rate : float;
}

let default =
  {
    warehouses = 8;
    districts = 10;
    customers_per_district = 60;
    items = 1000;
    max_order_lines = 15;
    invalid_item_rate = 0.01;
  }

let with_contention level c =
  { c with warehouses = (match level with `Low -> 8 | `High -> 1) }

let warehouse_t = 0
let district_t = 1
let customer_t = 2
let item_t = 3
let stock_t = 4
let order_t = 5
let new_order_t = 6
let order_line_t = 7
let history_t = 8
let last_order_t = 9

let tables =
  [
    Table.make ~id:warehouse_t ~name:"warehouse" ();
    Table.make ~id:district_t ~name:"district" ();
    Table.make ~id:customer_t ~name:"customer" ();
    Table.make ~id:item_t ~name:"item" ();
    Table.make ~id:stock_t ~name:"stock" ();
    Table.make ~id:order_t ~name:"order" ~index:Table.Ordered ();
    Table.make ~id:new_order_t ~name:"new_order" ~index:Table.Ordered ();
    Table.make ~id:order_line_t ~name:"order_line" ~index:Table.Ordered ();
    Table.make ~id:history_t ~name:"history" ();
    Table.make ~id:last_order_t ~name:"last_order" ();
  ]

(* --- Keys ---------------------------------------------------------- *)

let dcode ~w ~d = (w * 10) + d
let warehouse_key w = Int64.of_int w
let district_key ~w ~d = Int64.of_int (dcode ~w ~d)
let customer_key ~w ~d ~c = Int64.of_int ((dcode ~w ~d * 1_000_000) + c)
let item_key i = Int64.of_int i
let stock_key ~w ~i = Int64.of_int ((w * 10_000_000) + i)
let order_key ~w ~d ~o = Int64.logor (Int64.shift_left (Int64.of_int (dcode ~w ~d)) 32) (Int64.of_int o)

let order_line_key ~w ~d ~o ~line =
  Int64.logor
    (Int64.shift_left (Int64.of_int (dcode ~w ~d)) 36)
    (Int64.of_int ((o * 16) + line))

(* --- Values: fixed vectors of int64 fields ------------------------- *)

let mk_fields vals =
  let b = Bytes.create (8 * Array.length vals) in
  Array.iteri (fun i v -> Bytes.set_int64_le b (8 * i) v) vals;
  b

let field b i = Bytes.get_int64_le b (8 * i)

let set_field b i v =
  let b = Bytes.copy b in
  Bytes.set_int64_le b (8 * i) v;
  b

(* warehouse: [ytd]                customer: [balance; ytd_payment; payment_cnt; delivery_cnt]
   district:  [ytd]                item:     [price]
   stock:     [quantity; ytd; order_cnt]
   order:     [customer; ol_cnt; carrier]
   new_order: [o]                  order_line: [item; supply_w; qty; amount; delivery_flag]
   history:   [w; d; c; amount]    last_order: [o] *)

(* --- Counters ------------------------------------------------------ *)

(* One persistent order-id counter per district, plus one for history
   primary keys. *)
let counter_of_district cfg ~w ~d =
  ignore cfg;
  dcode ~w ~d

let history_counter cfg = cfg.warehouses * 10

let n_counters cfg = history_counter cfg + 1

(* --- Inputs -------------------------------------------------------- *)

type input =
  | New_order of { w : int; d : int; c : int; lines : (int * int * int) list; invalid : bool }
      (** lines: (item, supply warehouse, quantity) *)
  | Payment of { w : int; d : int; c : int; amount : int }
  | Order_status of { w : int; d : int; c : int }
  | Delivery of { w : int; carrier : int }
  | Stock_level of { w : int; d : int; threshold : int }

let encode input =
  let buf = Buffer.create 64 in
  let add_i v = Buffer.add_int32_le buf (Int32.of_int v) in
  (match input with
  | New_order { w; d; c; lines; invalid } ->
      Buffer.add_uint8 buf 0;
      add_i w;
      add_i d;
      add_i c;
      Buffer.add_uint8 buf (if invalid then 1 else 0);
      Buffer.add_uint8 buf (List.length lines);
      List.iter
        (fun (item, sw, qty) ->
          add_i item;
          add_i sw;
          add_i qty)
        lines
  | Payment { w; d; c; amount } ->
      Buffer.add_uint8 buf 1;
      add_i w;
      add_i d;
      add_i c;
      add_i amount
  | Order_status { w; d; c } ->
      Buffer.add_uint8 buf 2;
      add_i w;
      add_i d;
      add_i c
  | Delivery { w; carrier } ->
      Buffer.add_uint8 buf 3;
      add_i w;
      add_i carrier
  | Stock_level { w; d; threshold } ->
      Buffer.add_uint8 buf 4;
      add_i w;
      add_i d;
      add_i threshold);
  Buffer.to_bytes buf

let decode b =
  let geti pos = Int32.to_int (Bytes.get_int32_le b pos) in
  match Char.code (Bytes.get b 0) with
  | 0 ->
      let w = geti 1 and d = geti 5 and c = geti 9 in
      let invalid = Bytes.get b 13 <> '\000' in
      let n = Char.code (Bytes.get b 14) in
      let lines =
        List.init n (fun i ->
            let base = 15 + (12 * i) in
            (geti base, geti (base + 4), geti (base + 8)))
      in
      New_order { w; d; c; lines; invalid }
  | 1 -> Payment { w = geti 1; d = geti 5; c = geti 9; amount = geti 13 }
  | 2 -> Order_status { w = geti 1; d = geti 5; c = geti 9 }
  | 3 -> Delivery { w = geti 1; carrier = geti 5 }
  | 4 -> Stock_level { w = geti 1; d = geti 5; threshold = geti 9 }
  | _ -> invalid_arg "Tpcc.decode"

(* --- Transactions --------------------------------------------------- *)

let require = function Some v -> v | None -> failwith "tpcc: missing row"

let new_order_txn cfg ~w ~d ~c ~lines ~invalid =
  let input = encode (New_order { w; d; c; lines; invalid }) in
  let write_set =
    Txn.Update { table = last_order_t; key = customer_key ~w ~d ~c }
    :: List.map
         (fun (item, sw, _) -> Txn.Update { table = stock_t; key = stock_key ~w:sw ~i:item })
         lines
  in
  let insert_gen ctx =
    let o = Int64.to_int (ctx.Txn.Ctx.counter_next ~idx:(counter_of_district cfg ~w ~d)) in
    Hashtbl.replace ctx.Txn.Ctx.notes 0 (Int64.of_int o);
    let okey = order_key ~w ~d ~o in
    Txn.Insert
      {
        table = order_t;
        key = okey;
        data = Some (mk_fields [| Int64.of_int c; Int64.of_int (List.length lines); -1L |]);
      }
    :: Txn.Insert { table = new_order_t; key = okey; data = Some (mk_fields [| Int64.of_int o |]) }
    :: List.mapi
         (fun line _ ->
           Txn.Insert { table = order_line_t; key = order_line_key ~w ~d ~o ~line; data = None })
         lines
  in
  let body ctx =
    if invalid then begin
      (* Unused item id: TPC-C's 1% user abort, issued before writes. *)
      ignore (ctx.Txn.Ctx.read ~table:item_t ~key:(item_key 0));
      ctx.Txn.Ctx.abort ()
    end;
    let o = Int64.to_int (Hashtbl.find ctx.Txn.Ctx.notes 0) in
    List.iteri
      (fun line (item, sw, qty) ->
        let price = field (require (ctx.Txn.Ctx.read ~table:item_t ~key:(item_key item))) 0 in
        let skey = stock_key ~w:sw ~i:item in
        let stock = require (ctx.Txn.Ctx.read ~table:stock_t ~key:skey) in
        let quantity = field stock 0 in
        let quantity =
          if Int64.to_int quantity >= qty + 10 then Int64.sub quantity (Int64.of_int qty)
          else Int64.of_int (Int64.to_int quantity - qty + 91)
        in
        let stock = set_field stock 0 quantity in
        let stock = set_field stock 1 (Int64.add (field stock 1) (Int64.of_int qty)) in
        let stock = set_field stock 2 (Int64.add (field stock 2) 1L) in
        ctx.Txn.Ctx.write ~table:stock_t ~key:skey stock;
        let amount = Int64.mul price (Int64.of_int qty) in
        ctx.Txn.Ctx.write ~table:order_line_t ~key:(order_line_key ~w ~d ~o ~line)
          (mk_fields [| Int64.of_int item; Int64.of_int sw; Int64.of_int qty; amount; 0L |]))
      lines;
    ctx.Txn.Ctx.write ~table:last_order_t ~key:(customer_key ~w ~d ~c)
      (mk_fields [| Int64.of_int o |])
  in
  Txn.make ~insert_gen ~input ~write_set body

let payment_txn cfg ~w ~d ~c ~amount =
  let input = encode (Payment { w; d; c; amount }) in
  let write_set =
    [
      Txn.Update { table = warehouse_t; key = warehouse_key w };
      Txn.Update { table = district_t; key = district_key ~w ~d };
      Txn.Update { table = customer_t; key = customer_key ~w ~d ~c };
    ]
  in
  let insert_gen ctx =
    let h = ctx.Txn.Ctx.counter_next ~idx:(history_counter cfg) in
    [
      Txn.Insert
        {
          table = history_t;
          key = h;
          data =
            Some
              (mk_fields
                 [| Int64.of_int w; Int64.of_int d; Int64.of_int c; Int64.of_int amount |]);
        };
    ]
  in
  let body ctx =
    let amt = Int64.of_int amount in
    let wh = require (ctx.Txn.Ctx.read ~table:warehouse_t ~key:(warehouse_key w)) in
    ctx.Txn.Ctx.write ~table:warehouse_t ~key:(warehouse_key w)
      (set_field wh 0 (Int64.add (field wh 0) amt));
    let di = require (ctx.Txn.Ctx.read ~table:district_t ~key:(district_key ~w ~d)) in
    ctx.Txn.Ctx.write ~table:district_t ~key:(district_key ~w ~d)
      (set_field di 0 (Int64.add (field di 0) amt));
    let ckey = customer_key ~w ~d ~c in
    let cust = require (ctx.Txn.Ctx.read ~table:customer_t ~key:ckey) in
    let cust = set_field cust 0 (Int64.sub (field cust 0) amt) in
    let cust = set_field cust 1 (Int64.add (field cust 1) amt) in
    let cust = set_field cust 2 (Int64.add (field cust 2) 1L) in
    ctx.Txn.Ctx.write ~table:customer_t ~key:ckey cust
  in
  Txn.make ~insert_gen ~input ~write_set body

let order_status_txn ~w ~d ~c =
  let input = encode (Order_status { w; d; c }) in
  let body ctx =
    match ctx.Txn.Ctx.read ~table:last_order_t ~key:(customer_key ~w ~d ~c) with
    | None -> ()
    | Some lo ->
        let o = Int64.to_int (field lo 0) in
        if o >= 0 then begin
          ignore (ctx.Txn.Ctx.read ~table:order_t ~key:(order_key ~w ~d ~o));
          ignore
            (ctx.Txn.Ctx.range_read ~table:order_line_t
               ~lo:(order_line_key ~w ~d ~o ~line:0)
               ~hi:(order_line_key ~w ~d ~o ~line:15))
        end
  in
  Txn.make ~input ~write_set:[] body

let delivery_txn cfg ~w ~carrier =
  let input = encode (Delivery { w; carrier }) in
  (* The oldest undelivered order per district is only known once the
     insert step has run — a dynamic write set (Caracal's two-step
     initialization). *)
  let dynamic_write_set ctx =
    List.concat_map
      (fun d ->
        let lo_bound = order_key ~w ~d ~o:0 in
        let hi_code = Int64.of_int (dcode ~w ~d) in
        match ctx.Txn.Ctx.min_above ~table:new_order_t lo_bound with
        | Some (key, _) when Int64.shift_right_logical key 32 = hi_code ->
            let o = Int64.to_int (Int64.logand key 0xFFFFFFFFL) in
            Hashtbl.replace ctx.Txn.Ctx.notes d (Int64.of_int o);
            let order = ctx.Txn.Ctx.read ~table:order_t ~key:(order_key ~w ~d ~o) in
            let ol_cnt, c =
              match order with
              | Some data -> (Int64.to_int (field data 1), Int64.to_int (field data 0))
              | None -> (0, -1)
            in
            Txn.Delete { table = new_order_t; key }
            :: Txn.Update { table = order_t; key = order_key ~w ~d ~o }
            :: Txn.Update { table = customer_t; key = customer_key ~w ~d ~c }
            :: List.init ol_cnt (fun line ->
                   Txn.Update { table = order_line_t; key = order_line_key ~w ~d ~o ~line })
        | Some _ | None -> [])
      (List.init cfg.districts (fun d -> d))
  in
  let body ctx =
    for d = 0 to cfg.districts - 1 do
      match Hashtbl.find_opt ctx.Txn.Ctx.notes d with
      | None -> ()
      | Some o64 -> (
          let o = Int64.to_int o64 in
          let nkey = order_key ~w ~d ~o in
          (* If an earlier Delivery in this epoch already took this
             order, its tombstone is visible: skip the district. *)
          match ctx.Txn.Ctx.read ~table:new_order_t ~key:nkey with
          | None -> ()
          | Some _ ->
              ctx.Txn.Ctx.delete ~table:new_order_t ~key:nkey;
              let order = require (ctx.Txn.Ctx.read ~table:order_t ~key:nkey) in
              let c = Int64.to_int (field order 0) in
              let ol_cnt = Int64.to_int (field order 1) in
              ctx.Txn.Ctx.write ~table:order_t ~key:nkey
                (set_field order 2 (Int64.of_int carrier));
              let total = ref 0L in
              for line = 0 to ol_cnt - 1 do
                let olkey = order_line_key ~w ~d ~o ~line in
                match ctx.Txn.Ctx.read ~table:order_line_t ~key:olkey with
                | None -> ()
                | Some ol ->
                    total := Int64.add !total (field ol 3);
                    ctx.Txn.Ctx.write ~table:order_line_t ~key:olkey (set_field ol 4 1L)
              done;
              let ckey = customer_key ~w ~d ~c in
              let cust = require (ctx.Txn.Ctx.read ~table:customer_t ~key:ckey) in
              let cust = set_field cust 0 (Int64.add (field cust 0) !total) in
              let cust = set_field cust 3 (Int64.add (field cust 3) 1L) in
              ctx.Txn.Ctx.write ~table:customer_t ~key:ckey cust)
    done
  in
  Txn.make ~dynamic_write_set ~input ~write_set:[] body

let stock_level_txn ~w ~d ~threshold =
  let input = encode (Stock_level { w; d; threshold }) in
  let body ctx =
    match ctx.Txn.Ctx.max_below ~table:order_t (order_key ~w ~d ~o:0xFFFFFFF) with
    | Some (key, _) when Int64.shift_right_logical key 32 = Int64.of_int (dcode ~w ~d) ->
        let o_hi = Int64.to_int (Int64.logand key 0xFFFFFFFFL) in
        let o_lo = max 0 (o_hi - 19) in
        let lines =
          ctx.Txn.Ctx.range_read ~table:order_line_t
            ~lo:(order_line_key ~w ~d ~o:o_lo ~line:0)
            ~hi:(order_line_key ~w ~d ~o:o_hi ~line:15)
        in
        let items = Hashtbl.create 32 in
        List.iter (fun (_, ol) -> Hashtbl.replace items (field ol 0) ()) lines;
        let low = ref 0 in
        Hashtbl.iter
          (fun item () ->
            let skey = stock_key ~w ~i:(Int64.to_int item) in
            match ctx.Txn.Ctx.read ~table:stock_t ~key:skey with
            | Some stock -> if Int64.to_int (field stock 0) < threshold then incr low
            | None -> ())
          items;
        ignore !low
    | Some _ | None -> ()
  in
  Txn.make ~input ~write_set:[] body

let txn_of cfg input =
  match input with
  | New_order { w; d; c; lines; invalid } -> new_order_txn cfg ~w ~d ~c ~lines ~invalid
  | Payment { w; d; c; amount } -> payment_txn cfg ~w ~d ~c ~amount
  | Order_status { w; d; c } -> order_status_txn ~w ~d ~c
  | Delivery { w; carrier } -> delivery_txn cfg ~w ~carrier
  | Stock_level { w; d; threshold } -> stock_level_txn ~w ~d ~threshold

(* --- Generation ----------------------------------------------------- *)

let gen_input cfg rng =
  let w = Nv_util.Rng.int rng cfg.warehouses in
  let d = Nv_util.Rng.int rng cfg.districts in
  let c = Nv_util.Rng.int rng cfg.customers_per_district in
  (* Standard mix: 45% NewOrder, 43% Payment, 4% each of the rest. *)
  let roll = Nv_util.Rng.int rng 100 in
  if roll < 45 then begin
    let n_lines = 5 + Nv_util.Rng.int rng (cfg.max_order_lines - 4) in
    let lines =
      List.init n_lines (fun _ ->
          let item = Nv_util.Rng.int rng cfg.items in
          (* 1% remote warehouse, as in the spec. *)
          let sw =
            if cfg.warehouses > 1 && Nv_util.Rng.int rng 100 = 0 then
              (w + 1 + Nv_util.Rng.int rng (cfg.warehouses - 1)) mod cfg.warehouses
            else w
          in
          (item, sw, 1 + Nv_util.Rng.int rng 10))
    in
    let invalid = Nv_util.Rng.float rng < cfg.invalid_item_rate in
    New_order { w; d; c; lines; invalid }
  end
  else if roll < 88 then Payment { w; d; c; amount = 1 + Nv_util.Rng.int rng 5000 }
  else if roll < 92 then Order_status { w; d; c }
  else if roll < 96 then Delivery { w; carrier = 1 + Nv_util.Rng.int rng 10 }
  else Stock_level { w; d; threshold = 10 + Nv_util.Rng.int rng 10 }

let load cfg () =
  let warehouses = Seq.init cfg.warehouses (fun w -> (warehouse_t, warehouse_key w, mk_fields [| 0L |])) in
  let districts =
    Seq.concat_map
      (fun w ->
        Seq.init cfg.districts (fun d -> (district_t, district_key ~w ~d, mk_fields [| 0L |])))
      (Seq.init cfg.warehouses Fun.id)
  in
  let customers =
    Seq.concat_map
      (fun w ->
        Seq.concat_map
          (fun d ->
            Seq.init cfg.customers_per_district (fun c ->
                ( customer_t,
                  customer_key ~w ~d ~c,
                  mk_fields [| 0L; 0L; 0L; 0L |] )))
          (Seq.init cfg.districts Fun.id))
      (Seq.init cfg.warehouses Fun.id)
  in
  let last_orders =
    Seq.concat_map
      (fun w ->
        Seq.concat_map
          (fun d ->
            Seq.init cfg.customers_per_district (fun c ->
                (last_order_t, customer_key ~w ~d ~c, mk_fields [| -1L |])))
          (Seq.init cfg.districts Fun.id))
      (Seq.init cfg.warehouses Fun.id)
  in
  let items =
    Seq.init cfg.items (fun i ->
        (item_t, item_key i, mk_fields [| Int64.of_int (1 + (i * 7 mod 100)) |]))
  in
  let stock =
    Seq.concat_map
      (fun w ->
        Seq.init cfg.items (fun i -> (stock_t, stock_key ~w ~i, mk_fields [| 50L; 0L; 0L |])))
      (Seq.init cfg.warehouses Fun.id)
  in
  Seq.concat
    (List.to_seq [ warehouses; districts; customers; last_orders; items; stock ])

(* The five TPC-C transaction kinds as named stored procedures. They
   share the tagged input codec (the same bytes the input log carries);
   the name still routes per kind so a front end can rate or trace the
   mix without decoding. *)
let input_codec = { Procs.encode; decode }

let proc_name = function
  | New_order _ -> "tpcc.new_order"
  | Payment _ -> "tpcc.payment"
  | Order_status _ -> "tpcc.order_status"
  | Delivery _ -> "tpcc.delivery"
  | Stock_level _ -> "tpcc.stock_level"

let procs cfg =
  List.map
    (fun name -> Procs.reg ~name input_codec (fun input -> txn_of cfg input))
    [ "tpcc.new_order"; "tpcc.payment"; "tpcc.order_status"; "tpcc.delivery";
      "tpcc.stock_level" ]

let make cfg =
  {
    Workload.name = Printf.sprintf "tpcc(w=%d)" cfg.warehouses;
    tables;
    n_counters = n_counters cfg;
    revert_on_recovery = true;
    typical_value = 40;
    load = load cfg;
    gen_batch = (fun rng n -> Array.init n (fun _ -> txn_of cfg (gen_input cfg rng)));
    rebuild = (fun input -> txn_of cfg (decode input));
    procs = procs cfg;
    gen_call =
      (fun rng ->
        let input = gen_input cfg rng in
        (proc_name input, encode input));
  }
