(** Common shape of the three benchmarks (paper section 6.2).

    A workload is engine-agnostic: it yields initial table contents and
    deterministic batches of {!Nvcaracal.Txn.t}, which both the
    deterministic engine and the Zen baseline execute. [rebuild]
    deserializes a logged input record back into its transaction, which
    is what deterministic replay uses after a crash.

    For networked serving, every transaction kind is also exposed as a
    named stored procedure ([procs]) so a client can submit
    [(procedure, encoded args)] bytes instead of an OCaml closure, and
    [gen_call] draws from the workload's transaction mix in that wire
    form (what [nvdb loadgen] sends). *)

type t = {
  name : string;
  tables : Nvcaracal.Table.t list;
  n_counters : int;  (** persistent counters the workload needs *)
  revert_on_recovery : bool;  (** TPC-C's non-deterministic order ids *)
  typical_value : int;  (** representative value size, bytes *)
  load : unit -> (int * int64 * bytes) Seq.t;
  gen_batch : Nv_util.Rng.t -> int -> Nvcaracal.Txn.t array;
  rebuild : bytes -> Nvcaracal.Txn.t;
  procs : Procs.registration list;
      (** The workload's stored procedures, one per transaction kind. *)
  gen_call : Nv_util.Rng.t -> string * bytes;
      (** Draw one call from the workload's mix: a procedure name from
          [procs] plus its encoded arguments. Equal seeds draw equal
          call streams. *)
}

val total_rows : t -> int
(** Number of rows [load] yields (memoized on first call is NOT done;
    callers should treat this as O(load)). *)
