(* Sharded cluster: distributed transactions without two-phase commit —
   the deterministic-database argument from the paper's introduction.
   Keys are hash-sharded over three nodes; cross-partition transfers
   commit in one deterministic round, and a crashed node recovers from
   its own NVMM and catches up from retained apply batches.

     dune exec examples/sharded_cluster.exe *)

open Nvcaracal

let accounts = 300

let balance_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let transfer ~src ~dst ~amount =
  Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
      let bal key =
        match ctx.Txn.Ctx.read ~table:0 ~key with
        | Some v -> Bytes.get_int64_le v 0
        | None -> failwith "missing account"
      in
      let s = bal src in
      if Int64.compare s amount < 0 then ctx.Txn.Ctx.abort ();
      let d = bal dst in
      ctx.Txn.Ctx.write ~table:0 ~key:src (balance_bytes (Int64.sub s amount));
      ctx.Txn.Ctx.write ~table:0 ~key:dst (balance_bytes (Int64.add d amount)))

let () =
  let config = Config.make ~cores:4 ~row_size:128 ~crash_safe:true () in
  let tables = [ Table.make ~id:0 ~name:"accounts" () ] in
  let cluster = Partition.create ~config ~tables ~nodes:3 () in
  Partition.bulk_load cluster
    (Seq.init accounts (fun i -> (0, Int64.of_int i, balance_bytes 100L)));

  let rng = Nv_util.Rng.create 2026 in
  let batch n =
    Array.init n (fun _ ->
        let src = Int64.of_int (Nv_util.Rng.int rng accounts) in
        let rec dst () =
          let d = Int64.of_int (Nv_util.Rng.int rng accounts) in
          if d = src then dst () else d
        in
        transfer ~src ~dst:(dst ()) ~amount:(Int64.of_int (1 + Nv_util.Rng.int rng 30)))
  in

  let total_txns = 200 in
  for _ = 1 to 4 do
    let _, deferred = Partition.run_epoch cluster (batch 50) in
    (* Deferred (conflicting) transfers retry next epoch. *)
    if Array.length deferred > 0 then ignore (Partition.run_epoch cluster deferred)
  done;

  let total () =
    let sum = ref 0L in
    for k = 0 to accounts - 1 do
      match Partition.read cluster ~table:0 ~key:(Int64.of_int k) with
      | Some v -> sum := Int64.add !sum (Bytes.get_int64_le v 0)
      | None -> ()
    done;
    !sum
  in
  Format.printf "after %d submitted transfers across 3 partitions: total = %Ld (expected %d)@."
    total_txns (total ()) (accounts * 100);
  Format.printf "committed: %d, cluster epoch: %d@."
    (Partition.committed_txns cluster) (Partition.epoch cluster);

  (* Node 2 loses power; its NVMM tears; it recovers from its own log
     and checkpoint, then catches up from retained apply batches. *)
  Partition.crash_node cluster 2 ~rng:(Nv_util.Rng.create 5);
  Format.printf "node 2 crashed...@.";
  Partition.recover_node cluster 2;
  Format.printf "node 2 recovered at epoch %d; total = %Ld (still conserved)@."
    (Db.epoch (Partition.node_db cluster 2))
    (total ());

  ignore (Partition.run_epoch cluster (batch 50));
  Format.printf "cluster continues: epoch %d@." (Partition.epoch cluster)
