(* Replication by input-log shipping: the deterministic-database
   superpower the paper points at in its introduction. The primary
   ships each epoch's *inputs* (a few bytes per transaction) instead of
   redo records; the replica replays them deterministically and stays
   bit-identical. Failover is just promotion.

     dune exec examples/replicated_pair.exe *)

open Nvcaracal

let table = 0

(* Shippable transactions: inputs must round-trip through bytes. *)
let encode key delta =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 key;
  Bytes.set_int64_le b 8 delta;
  b

let txn_of_input input =
  let key = Bytes.get_int64_le input 0 in
  let delta = Bytes.get_int64_le input 8 in
  Txn.make ~input ~write_set:[ Txn.Update { table; key } ] (fun ctx ->
      match ctx.Txn.Ctx.read ~table ~key with
      | Some v ->
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 (Int64.add (Bytes.get_int64_le v 0) delta);
          ctx.Txn.Ctx.write ~table ~key b
      | None -> failwith "missing row")

let () =
  let config = Config.make ~cores:4 ~row_size:128 () in
  let tables = [ Table.make ~id:table ~name:"accounts" () ] in
  let pair = Replication.create ~config ~tables ~rebuild:txn_of_input () in
  Replication.bulk_load pair
    (Seq.init 1000 (fun i ->
         let b = Bytes.create 8 in
         Bytes.set_int64_le b 0 100L;
         (table, Int64.of_int i, b)));

  let rng = Nv_util.Rng.create 11 in
  let batch () =
    Array.init 400 (fun _ ->
        txn_of_input
          (encode
             (Int64.of_int (Nv_util.Rng.int rng 1000))
             (Int64.of_int (Nv_util.Rng.int rng 20 - 10))))
  in

  (* The primary runs ahead; the replica applies with a lag. *)
  for epoch = 1 to 6 do
    ignore (Replication.submit pair (batch ()));
    if epoch mod 2 = 0 then Replication.sync pair ~upto:1 ();
    Format.printf "epoch %d submitted; replica lag = %d epochs, %d input bytes shipped so far@."
      epoch (Replication.replica_lag pair) (Replication.shipped_bytes pair)
  done;

  (* Stale reads are fine on the replica... *)
  let show db name =
    match Db.read_committed db ~table ~key:7L with
    | Some v -> Format.printf "%s: account 7 = %Ld@." name (Bytes.get_int64_le v 0)
    | None -> ()
  in
  show (Replication.primary_db pair) "primary";
  show (Replication.replica_db pair) "replica (lagged)";

  (* ...and once synced, the two are bit-identical. *)
  Format.printf "states equal after sync: %b@." (Replication.states_equal pair);

  (* Primary dies; promote the replica and keep going. *)
  let promoted = Replication.failover_db pair in
  ignore (Db.run_epoch promoted (batch ()));
  Format.printf "promoted replica committed epoch %d after failover@." (Db.epoch promoted)
