(* Aggregates all suites into one alcotest runner. *)

let () =
  Alcotest.run "nvcaracal"
    (List.concat
       [
         Test_util.suites;
         Test_nvmm.suites;
         Test_storage.suites;
         Test_index.suites;
         Test_core.suites;
         Test_recovery.suites;
         Test_workloads.suites;
         Test_zen.suites;
         Test_harness.suites;
         Test_units_extra.suites;
         Test_faults.suites;
         Test_aria.suites;
         Test_partition.suites;
         Test_parallel.suites;
         Test_obs.suites;
         Test_engine_conf.suites;
         Test_frontend.suites;
         Test_cluster.suites;
       ])
