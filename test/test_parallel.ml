(* Wide-execution determinism: the same seeded run must be byte-identical
   at any domain-pool width (--jobs), the wide path must actually engage
   where the eligibility gate promises it, and the shard-merge algebra
   the engine folds its per-core meters with must be associative. *)

open Nvcaracal
module Engine = Nv_harness.Engine
module Runner = Nv_harness.Runner
module Ycsb = Nv_workloads.Ycsb
module W = Nv_workloads.Workload
module Histogram = Nv_util.Histogram
module Tracer = Nv_obs.Tracer
module Pmem = Nv_nvmm.Pmem

let jobs_sweep = [ 1; 2; 4 ]

let with_jobs jobs f =
  let saved = !Engine.default_jobs in
  Engine.default_jobs := jobs;
  Fun.protect ~finally:(fun () -> Engine.default_jobs := saved) f

let tiny_ycsb = Ycsb.make { Ycsb.default with Ycsb.rows = 2000; hot_rows = 64 }
let setup = Runner.setup ~epochs:4 ~epoch_txns:240 ()

(* Everything observable about one run, folded to comparable values. *)
type fingerprint = {
  reports : string list;  (** pp_epoch_stats per epoch, oldest first *)
  committed : int;
  time_ns : float;
  table_digest : string;  (** committed keys and values, sorted *)
  pmem_digest : string;  (** every byte of the NVMM arena *)
  trace : Tracer.event list;
  wide : int;
}

let digest_table db ~table =
  let rows = ref [] in
  Db.iter_committed db ~table (fun key data -> rows := (key, Bytes.to_string data) :: !rows);
  let rows = List.sort compare !rows in
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          (List.map (fun (k, v) -> Printf.sprintf "%Ld=%s" k (Digest.string v)) rows)))

let digest_pmem db =
  let pmem = Db.pmem db in
  Digest.to_hex (Digest.bytes (Pmem.read_bytes pmem ~off:0 ~len:(Pmem.size pmem)))

(* One serial-engine run with the committed-value cache and the tracer
   live (the genuinely wide configuration — the golden-output check only
   covers metrics runs, which force the serial path). *)
let run_serial_engine ~jobs =
  with_jobs jobs (fun () ->
      let w = tiny_ycsb in
      let config =
        Engine.caracal_config setup w (Engine.spec (Engine.Caracal Config.Nvcaracal))
      in
      let db = Db.create ~config ~tables:w.W.tables () in
      let tracer = Tracer.create ~txn_sample:4 () in
      Db.set_observability ~tracer ~name:"parallel-test" db;
      Db.bulk_load db (w.W.load ());
      let rng = Nv_util.Rng.create setup.Runner.seed in
      let reports = ref [] in
      for _ = 1 to setup.Runner.epochs do
        let st = Db.run_epoch db (w.W.gen_batch rng setup.Runner.epoch_txns) in
        reports := Format.asprintf "%a" Report.pp_epoch_stats st :: !reports
      done;
      {
        reports = List.rev !reports;
        committed = Db.committed_txns db;
        time_ns = Db.total_time_ns db;
        table_digest = digest_table db ~table:0;
        pmem_digest = digest_pmem db;
        trace = Tracer.events tracer;
        wide = Db.wide_execs db;
      })

let run_aria_engine ~jobs =
  with_jobs jobs (fun () ->
      let w = tiny_ycsb in
      (* Caching off: Aria's snapshot phase fills the committed cache on
         reads, which only the serial loop may do. *)
      let config =
        Engine.caracal_config setup w
          (Engine.spec ~cached_versions:false Engine.Caracal_aria)
      in
      let db = Db.create ~config ~tables:w.W.tables () in
      Db.bulk_load db (w.W.load ());
      let rng = Nv_util.Rng.create setup.Runner.seed in
      let reports = ref [] in
      let deferred = ref [||] in
      for _ = 1 to setup.Runner.epochs do
        let batch = Array.append !deferred (w.W.gen_batch rng setup.Runner.epoch_txns) in
        let st, d = Db.run_epoch_aria db batch in
        deferred := d;
        reports := Format.asprintf "%a" Report.pp_epoch_stats st :: !reports
      done;
      {
        reports = List.rev !reports;
        committed = Db.committed_txns db;
        time_ns = Db.total_time_ns db;
        table_digest = digest_table db ~table:0;
        pmem_digest = digest_pmem db;
        trace = [];
        wide = Db.wide_execs db;
      })

let check_identical what (base : fingerprint) (fp : fingerprint) ~jobs =
  let tag s = Printf.sprintf "%s jobs=%d: %s" what jobs s in
  Alcotest.(check (list string)) (tag "epoch reports") base.reports fp.reports;
  Alcotest.(check int) (tag "committed") base.committed fp.committed;
  Alcotest.(check (float 0.0)) (tag "simulated time") base.time_ns fp.time_ns;
  Alcotest.(check string) (tag "committed state") base.table_digest fp.table_digest;
  Alcotest.(check string) (tag "pmem bytes") base.pmem_digest fp.pmem_digest;
  Alcotest.(check int) (tag "trace event count") (List.length base.trace)
    (List.length fp.trace);
  (* [compare], not [=]: events carry wall-clock fields that are [nan]
     when no wall clock is installed, and [nan = nan] is false while
     [compare nan nan = 0]. *)
  Alcotest.(check bool) (tag "trace events byte-identical") true (compare base.trace fp.trace = 0)

let test_serial_engine_determinism () =
  let base = run_serial_engine ~jobs:1 in
  Alcotest.(check int) "jobs=1 never wide" 0 base.wide;
  Alcotest.(check bool) "trace recorded" true (base.trace <> []);
  List.iter
    (fun jobs ->
      let fp = run_serial_engine ~jobs in
      check_identical "serial-cc" base fp ~jobs;
      if jobs > 1 then
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d ran wide" jobs)
          true (fp.wide > 0))
    jobs_sweep

let test_aria_engine_determinism () =
  let base = run_aria_engine ~jobs:1 in
  Alcotest.(check int) "jobs=1 never wide" 0 base.wide;
  List.iter
    (fun jobs ->
      let fp = run_aria_engine ~jobs in
      check_identical "aria-cc" base fp ~jobs;
      if jobs > 1 then
        Alcotest.(check bool)
          (Printf.sprintf "jobs=%d ran wide" jobs)
          true (fp.wide > 0))
    jobs_sweep

(* --- Partitioned runs: per-node work fans out over the pool. --- *)

let accounts = 96

let balance_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let transfer ~src ~dst ~amount =
  Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
      let bal key =
        match ctx.Txn.Ctx.read ~table:0 ~key with
        | Some v -> Bytes.get_int64_le v 0
        | None -> failwith "missing account"
      in
      let s = bal src in
      if Int64.compare s amount < 0 then ctx.Txn.Ctx.abort ();
      let d = bal dst in
      ctx.Txn.Ctx.write ~table:0 ~key:src (balance_bytes (Int64.sub s amount));
      ctx.Txn.Ctx.write ~table:0 ~key:dst (balance_bytes (Int64.add d amount)))

let gen_transfers seed n =
  let rng = Nv_util.Rng.create seed in
  Array.init n (fun _ ->
      let src = Int64.of_int (Nv_util.Rng.int rng accounts) in
      let rec dst () =
        let d = Int64.of_int (Nv_util.Rng.int rng accounts) in
        if d = src then dst () else d
      in
      transfer ~src ~dst:(dst ()) ~amount:(Int64.of_int (1 + Nv_util.Rng.int rng 20)))

let run_partitioned ~jobs =
  let config =
    Config.make ~cores:4 ~rows_per_core:4096 ~values_per_core:4096
      ~freelist_capacity:4096 ~parallelism:jobs ()
  in
  let tables = [ Table.make ~id:0 ~name:"accounts" () ] in
  let c = Partition.create ~config ~tables ~nodes:3 () in
  Partition.bulk_load c
    (Seq.init accounts (fun i -> (0, Int64.of_int i, balance_bytes 100L)));
  for seed = 1 to 5 do
    let rec go batch rounds =
      if Array.length batch > 0 && rounds <= 20 then
        let _, deferred = Partition.run_epoch c (batch : Txn.t array) in
        go deferred (rounds + 1)
    in
    go (gen_transfers seed 40) 0
  done;
  let balances =
    List.init accounts (fun k ->
        match Partition.read c ~table:0 ~key:(Int64.of_int k) with
        | Some v -> Bytes.get_int64_le v 0
        | None -> -1L)
  in
  (balances, Partition.committed_txns c, Partition.total_time_ns c)

let test_partition_determinism () =
  let base = run_partitioned ~jobs:1 in
  List.iter
    (fun jobs ->
      let balances, committed, time_ns = run_partitioned ~jobs in
      let b0, c0, t0 = base in
      Alcotest.(check (list int64))
        (Printf.sprintf "jobs=%d balances" jobs)
        b0 balances;
      Alcotest.(check int) (Printf.sprintf "jobs=%d committed" jobs) c0 committed;
      Alcotest.(check (float 0.0)) (Printf.sprintf "jobs=%d time" jobs) t0 time_ns)
    jobs_sweep

(* --- Crash + recovery under a wide pool: crash-safe mode always runs
   serial, so a parallelism setting must change nothing. --- *)

let run_recovery ~jobs =
  with_jobs jobs (fun () ->
      let r =
        Runner.run_recovery setup tiny_ycsb ~crash_after_txns:120 ()
      in
      Format.asprintf "%a" Report.pp_recovery_report r.Runner.report)

let test_recovery_determinism () =
  let base = run_recovery ~jobs:1 in
  List.iter
    (fun jobs ->
      Alcotest.(check string)
        (Printf.sprintf "jobs=%d recovery report" jobs)
        base (run_recovery ~jobs))
    jobs_sweep

(* --- Newly-widened shapes: configurations the effect-journal layer
   made wide-eligible (each previously forced the execute phase onto
   one stripe). Every shape must be byte-identical across jobs AND
   actually engage the wide path at jobs >= 2 — including through a
   crash and recovery where the shape supports it. --- *)

exception Crash_now_shape

type shape = {
  sh_name : string;
  sh_tables : Table.t list;
  sh_config : unit -> Config.t;  (** reads [!Engine.default_jobs] *)
  sh_load : unit -> (int * int64 * bytes) Seq.t;
  sh_gen : epoch:int -> Nv_util.Rng.t -> int -> Txn.t array;
  sh_metrics : bool;
  sh_rebuild : (bytes -> Txn.t) option;  (** [Some] adds a crash+recover leg *)
}

type shape_fp = {
  s_reports : string list;
  s_committed : int;
  s_time_ns : float;
  s_table : string;
  s_pmem : string;
  s_trace : Tracer.event list;
  s_metrics : string;
  s_recovery : string;  (** recovery report + recovered digests; "" when n/a *)
  s_wide : int;
}

let shape_epochs = 3
let shape_txns = 160
let shape_setup = Runner.setup ~epochs:shape_epochs ~epoch_txns:shape_txns ()

let run_shape sh ~jobs =
  with_jobs jobs (fun () ->
      let config = sh.sh_config () in
      let db = Db.create ~config ~tables:sh.sh_tables () in
      let tracer = Tracer.create ~txn_sample:8 () in
      let metrics = if sh.sh_metrics then Nv_obs.Metrics.create () else Nv_obs.Metrics.null in
      Db.set_observability ~tracer ~metrics ~name:sh.sh_name db;
      Db.bulk_load db (sh.sh_load ());
      let rng = Nv_util.Rng.create 7 in
      let reports = ref [] in
      for e = 1 to shape_epochs do
        let st = Db.run_epoch db (sh.sh_gen ~epoch:e rng shape_txns) in
        reports := Format.asprintf "%a" Report.pp_epoch_stats st :: !reports
      done;
      let wide = Db.wide_execs db in
      let fp =
        {
          s_reports = List.rev !reports;
          s_committed = Db.committed_txns db;
          s_time_ns = Db.total_time_ns db;
          s_table = digest_table db ~table:0;
          s_pmem = digest_pmem db;
          s_trace = Tracer.events tracer;
          s_metrics = (if sh.sh_metrics then Nv_obs.Metrics.to_jsonl metrics else "");
          s_recovery = "";
          s_wide = wide;
        }
      in
      match sh.sh_rebuild with
      | None -> fp
      | Some rebuild ->
          (* Crash mid-epoch and recover with the same parallelism:
             deterministic replay must also be width-independent. *)
          Db.set_phase_hook db (fun p ->
              if p = Db.Exec_txn 40 then raise Crash_now_shape);
          (try
             ignore (Db.run_epoch db (sh.sh_gen ~epoch:(shape_epochs + 1) rng shape_txns))
           with Crash_now_shape -> ());
          let image = Db.crash db ~rng:(Nv_util.Rng.create 11) in
          let db2, report =
            Db.recover ~config ~tables:sh.sh_tables ~pmem:image ~rebuild ()
          in
          {
            fp with
            s_recovery =
              Format.asprintf "%a/%s/%s" Report.pp_recovery_report report
                (digest_table db2 ~table:0) (digest_pmem db2);
          })

let check_shape sh =
  let base = run_shape sh ~jobs:1 in
  Alcotest.(check int) (sh.sh_name ^ " jobs=1 never wide") 0 base.s_wide;
  List.iter
    (fun jobs ->
      let fp = run_shape sh ~jobs in
      let tag s = Printf.sprintf "%s jobs=%d: %s" sh.sh_name jobs s in
      Alcotest.(check (list string)) (tag "epoch reports") base.s_reports fp.s_reports;
      Alcotest.(check int) (tag "committed") base.s_committed fp.s_committed;
      Alcotest.(check (float 0.0)) (tag "simulated time") base.s_time_ns fp.s_time_ns;
      Alcotest.(check string) (tag "committed state") base.s_table fp.s_table;
      Alcotest.(check string) (tag "pmem bytes") base.s_pmem fp.s_pmem;
      Alcotest.(check string) (tag "metrics jsonl") base.s_metrics fp.s_metrics;
      Alcotest.(check string) (tag "recovery") base.s_recovery fp.s_recovery;
      Alcotest.(check int) (tag "trace event count") (List.length base.s_trace)
        (List.length fp.s_trace);
      Alcotest.(check bool) (tag "trace events byte-identical") true
        (compare base.s_trace fp.s_trace = 0);
      Alcotest.(check bool) (tag "ran wide") true (fp.s_wide > 0))
    (List.filter (fun j -> j > 1) jobs_sweep)

let ycsb_shape ?(crash_safe = false) ?(persistent_index = false) ?(metrics = false) name =
  let w = tiny_ycsb in
  {
    sh_name = name;
    sh_tables = w.W.tables;
    sh_config =
      (fun () ->
        Engine.caracal_config shape_setup w
          (Engine.spec ~crash_safe ~persistent_index (Engine.Caracal Config.Nvcaracal)));
    sh_load = w.W.load;
    sh_gen = (fun ~epoch:_ rng n -> w.W.gen_batch rng n);
    sh_metrics = metrics;
    sh_rebuild = (if crash_safe then Some w.W.rebuild else None);
  }

(* Counter draws serialize through their predecessors, so a workload
   mixing counter draws with cross-transaction reads is the sharpest
   ordering test the wide path has. *)
let shape_rows = 384

let ctr_txn ~key ~peer ~idx =
  Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key } ] (fun ctx ->
      let v = ctx.Txn.Ctx.counter_next ~idx in
      let p =
        match ctx.Txn.Ctx.read ~table:0 ~key:peer with
        | Some b -> Bytes.get_int64_le b 0
        | None -> 0L
      in
      ctx.Txn.Ctx.write ~table:0 ~key (balance_bytes (Int64.add v p)))

let counters_shape =
  {
    sh_name = "counters";
    sh_tables = [ Table.make ~id:0 ~name:"rows" () ];
    sh_config =
      (fun () ->
        Config.make ~cores:4 ~rows_per_core:2048 ~values_per_core:2048
          ~freelist_capacity:4096 ~n_counters:4 ~parallelism:!Engine.default_jobs ());
    sh_load =
      (fun () -> Seq.init shape_rows (fun i -> (0, Int64.of_int i, balance_bytes 100L)));
    sh_gen =
      (fun ~epoch:_ rng n ->
        Array.init n (fun _ ->
            let key = Int64.of_int (Nv_util.Rng.int rng shape_rows) in
            let peer = Int64.of_int (Nv_util.Rng.int rng shape_rows) in
            ctr_txn ~key ~peer ~idx:(Nv_util.Rng.int rng 4)));
    sh_metrics = false;
    sh_rebuild = None;
  }

(* Delete-heavy, crash-safe: tombstones are journaled effects, and the
   input encoding makes the batch replayable after a crash. *)
let dd_enc tag key v =
  let b = Bytes.create 17 in
  Bytes.set_uint8 b 0 tag;
  Bytes.set_int64_le b 1 key;
  Bytes.set_int64_le b 9 v;
  b

let dd_del key =
  Txn.make ~input:(dd_enc 0 key 0L) ~write_set:[ Txn.Delete { table = 0; key } ]
    (fun ctx -> ctx.Txn.Ctx.delete ~table:0 ~key)

let dd_ins key v =
  Txn.make ~input:(dd_enc 1 key v)
    ~write_set:[ Txn.Insert { table = 0; key; data = None } ]
    (fun ctx -> ctx.Txn.Ctx.write ~table:0 ~key (balance_bytes v))

let dd_upd key v =
  Txn.make ~input:(dd_enc 2 key v) ~write_set:[ Txn.Update { table = 0; key } ]
    (fun ctx ->
      let cur =
        match ctx.Txn.Ctx.read ~table:0 ~key with
        | Some b -> Bytes.get_int64_le b 0
        | None -> 0L
      in
      ctx.Txn.Ctx.write ~table:0 ~key (balance_bytes (Int64.add cur v)))

let dd_rebuild input =
  let key = Bytes.get_int64_le input 1 and v = Bytes.get_int64_le input 9 in
  match Bytes.get_uint8 input 0 with
  | 0 -> dd_del key
  | 1 -> dd_ins key v
  | _ -> dd_upd key v

let pick_distinct rng ~bound m =
  let seen = Hashtbl.create m in
  let rec go acc k =
    if k = 0 then List.rev acc
    else
      let v = Nv_util.Rng.int rng bound in
      if Hashtbl.mem seen v then go acc k
      else begin
        Hashtbl.add seen v ();
        go (v :: acc) (k - 1)
      end
  in
  go [] m

let deletes_shape =
  {
    sh_name = "delete-heavy";
    sh_tables = [ Table.make ~id:0 ~name:"rows" () ];
    sh_config =
      (fun () ->
        Config.make ~cores:4 ~crash_safe:true ~rows_per_core:2048 ~values_per_core:2048
          ~freelist_capacity:4096 ~parallelism:!Engine.default_jobs ());
    sh_load =
      (fun () -> Seq.init shape_rows (fun i -> (0, Int64.of_int i, balance_bytes 100L)));
    sh_gen =
      (fun ~epoch rng n ->
        (* The insert step precedes execution, so a key deleted this
           epoch can only be re-inserted next epoch: epoch [e] deletes
           the set derived from [e] and re-inserts the set derived from
           [e - 1], with updates on untouched keys filling the batch.
           The sets come from an epoch-seeded rng, keeping the
           generator stateless (the crash leg replays epoch N+1). *)
        let m = n / 4 in
        let dd_set e =
          if e < 1 then []
          else pick_distinct (Nv_util.Rng.create (7000 + e)) ~bound:shape_rows m
        in
        let prev = dd_set (epoch - 1) and cur = dd_set epoch in
        let inss =
          List.map
            (fun k -> dd_ins (Int64.of_int k) (Int64.of_int (Nv_util.Rng.int rng 1000)))
            prev
        in
        let dels = List.map (fun k -> dd_del (Int64.of_int k)) cur in
        let avoid = prev @ cur in
        let fill =
          List.init (n - List.length inss - m) (fun _ ->
              let rec pick () =
                let k = Nv_util.Rng.int rng shape_rows in
                if List.mem k avoid then pick () else k
              in
              dd_upd (Int64.of_int (pick ())) (Int64.of_int (Nv_util.Rng.int rng 1000)))
        in
        Array.of_list (inss @ dels @ fill));
    sh_metrics = false;
    sh_rebuild = Some dd_rebuild;
  }

let test_crash_safe_shape () = check_shape (ycsb_shape ~crash_safe:true "crash-safe")

let test_pindex_shape () =
  check_shape (ycsb_shape ~crash_safe:true ~persistent_index:true "persistent-index")

let test_metrics_shape () = check_shape (ycsb_shape ~metrics:true "metrics-enabled")
let test_counters_shape () = check_shape counters_shape
let test_deletes_shape () = check_shape deletes_shape

(* --- Merge algebra: the folds wide execution relies on. --- *)

let mk_stats ~epoch ~txns ~vw ~dur ~phases =
  {
    Report.zero_epoch_stats with
    Report.epoch;
    txns;
    aborted = epoch;
    version_writes = vw;
    persistent_writes = vw / 2;
    minor_gc = epoch * 2;
    cache_hits = vw + 1;
    log_bytes = vw * 64;
    duration_ns = dur;
    phases;
  }

let test_epoch_stats_merge () =
  let a = mk_stats ~epoch:3 ~txns:100 ~vw:10 ~dur:50.0 ~phases:[ ("log", 1.0); ("execute", 4.0) ] in
  let b = mk_stats ~epoch:3 ~txns:100 ~vw:7 ~dur:75.0 ~phases:[ ("execute", 2.0); ("gc", 1.5) ] in
  let c = mk_stats ~epoch:3 ~txns:100 ~vw:1 ~dur:60.0 ~phases:[ ("log", 0.5) ] in
  let m = Report.merge_epoch_stats in
  let ab = m a b in
  Alcotest.(check int) "counters add" 17 ab.Report.version_writes;
  Alcotest.(check int) "epoch maxes" 3 ab.Report.epoch;
  Alcotest.(check (float 0.0)) "duration maxes" 75.0 ab.Report.duration_ns;
  Alcotest.(check (list (pair string (float 0.0))))
    "phases sum by name, first-appearance order"
    [ ("log", 1.0); ("execute", 6.0); ("gc", 1.5) ]
    ab.Report.phases;
  (* Identity. *)
  Alcotest.(check bool) "left identity" true (m Report.zero_epoch_stats a = a);
  Alcotest.(check bool) "right identity" true (m a Report.zero_epoch_stats = a);
  (* Associativity — the property that lets per-core shards fold in any
     grouping. *)
  Alcotest.(check bool) "associative" true (m (m a b) c = m a (m b c));
  Alcotest.(check bool) "associative (rotated)" true (m (m b c) a = m b (m c a))

let test_histogram_merge () =
  let of_samples l =
    let h = Histogram.create () in
    List.iter (Histogram.add h) l;
    h
  in
  let a = of_samples [ 1.0; 10.0; 100.0 ] in
  let b = of_samples [ 5.0; 50.0 ] in
  let c = of_samples [ 0.5; 2000.0; 7.0 ] in
  let m = Histogram.merge in
  let ab = m a b in
  Alcotest.(check int) "counts add" 5 (Histogram.count ab);
  Alcotest.(check (float 1e-9)) "mean combines" 33.2 (Histogram.mean ab);
  Alcotest.(check (float 0.0)) "min combines" 1.0 (Histogram.min_value ab);
  Alcotest.(check (float 0.0)) "max combines" 100.0 (Histogram.max_value ab);
  let fp h =
    ( Histogram.count h,
      Histogram.mean h,
      Histogram.min_value h,
      Histogram.max_value h,
      Histogram.buckets h )
  in
  (* Identity and associativity, up to the bucketed representation. *)
  Alcotest.(check bool) "left identity" true (fp (m (Histogram.create ()) a) = fp a);
  Alcotest.(check bool) "right identity" true (fp (m a (Histogram.create ())) = fp a);
  Alcotest.(check bool) "associative" true (fp (m (m a b) c) = fp (m a (m b c)));
  (* Merging must not alias or mutate its inputs. *)
  ignore (m a b);
  Alcotest.(check int) "left input untouched" 3 (Histogram.count a);
  Alcotest.(check int) "right input untouched" 2 (Histogram.count b)

let suites =
  [
    ( "parallel",
      [
        Alcotest.test_case "serial CC determinism across jobs" `Slow
          test_serial_engine_determinism;
        Alcotest.test_case "aria CC determinism across jobs" `Slow
          test_aria_engine_determinism;
        Alcotest.test_case "partitioned determinism across jobs" `Slow
          test_partition_determinism;
        Alcotest.test_case "recovery determinism across jobs" `Slow
          test_recovery_determinism;
        Alcotest.test_case "crash-safe shape runs wide, identically" `Slow
          test_crash_safe_shape;
        Alcotest.test_case "persistent-index shape runs wide, identically" `Slow
          test_pindex_shape;
        Alcotest.test_case "metrics-enabled shape runs wide, identically" `Slow
          test_metrics_shape;
        Alcotest.test_case "counters shape runs wide, identically" `Slow
          test_counters_shape;
        Alcotest.test_case "delete-heavy shape runs wide, identically" `Slow
          test_deletes_shape;
        Alcotest.test_case "epoch-stats merge algebra" `Quick test_epoch_stats_merge;
        Alcotest.test_case "histogram merge algebra" `Quick test_histogram_merge;
      ] );
  ]
