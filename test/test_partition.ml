(* Multi-partition deterministic execution: cross-partition
   transactions without two-phase commit, node crash + catch-up. *)

open Nvcaracal

let config =
  Config.make ~cores:4 ~crash_safe:true ~rows_per_core:4096 ~values_per_core:4096
    ~freelist_capacity:4096 ()

let tables = [ Table.make ~id:0 ~name:"accounts" () ]
let accounts = 64

let balance_bytes v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  b

let mk_cluster ?(nodes = 3) () =
  let c = Partition.create ~config ~tables ~nodes () in
  Partition.bulk_load c
    (Seq.init accounts (fun i -> (0, Int64.of_int i, balance_bytes 100L)));
  c

(* Move [amount] from one account to another — frequently spanning
   partitions. *)
let transfer ~src ~dst ~amount =
  Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
      let bal key =
        match ctx.Txn.Ctx.read ~table:0 ~key with
        | Some v -> Bytes.get_int64_le v 0
        | None -> failwith "missing account"
      in
      let s = bal src in
      if Int64.compare s amount < 0 then ctx.Txn.Ctx.abort ();
      let d = bal dst in
      ctx.Txn.Ctx.write ~table:0 ~key:src (balance_bytes (Int64.sub s amount));
      ctx.Txn.Ctx.write ~table:0 ~key:dst (balance_bytes (Int64.add d amount)))

let total c =
  let sum = ref 0L in
  for k = 0 to accounts - 1 do
    match Partition.read c ~table:0 ~key:(Int64.of_int k) with
    | Some v -> sum := Int64.add !sum (Bytes.get_int64_le v 0)
    | None -> ()
  done;
  !sum

let gen_batch seed n =
  let rng = Nv_util.Rng.create seed in
  Array.init n (fun _ ->
      let src = Int64.of_int (Nv_util.Rng.int rng accounts) in
      let rec dst () =
        let d = Int64.of_int (Nv_util.Rng.int rng accounts) in
        if d = src then dst () else d
      in
      transfer ~src ~dst:(dst ()) ~amount:(Int64.of_int (1 + Nv_util.Rng.int rng 20)))

let run_with_retry c batch =
  let rec go batch rounds =
    if Array.length batch = 0 || rounds > 20 then ()
    else
      let _, deferred = Partition.run_epoch c batch in
      go deferred (rounds + 1)
  in
  go batch 0

let test_cross_partition_transfers () =
  let c = mk_cluster () in
  Alcotest.(check int) "3 nodes" 3 (Partition.nodes c);
  for seed = 1 to 5 do
    run_with_retry c (gen_batch seed 30)
  done;
  (* Money is conserved across partitions despite cross-node transfers
     and no 2PC. *)
  Alcotest.(check int64) "conserved" (Int64.of_int (accounts * 100)) (total c);
  Alcotest.(check bool) "committed txns" true (Partition.committed_txns c > 50);
  Alcotest.(check bool) "time advanced" true (Partition.total_time_ns c > 0.0)

let test_keys_are_sharded () =
  let c = mk_cluster () in
  let counts = Array.make 3 0 in
  for k = 0 to accounts - 1 do
    let o = Partition.owner c ~table:0 ~key:(Int64.of_int k) in
    counts.(o) <- counts.(o) + 1
  done;
  Array.iter (fun n -> Alcotest.(check bool) "non-degenerate shard" true (n > 5)) counts;
  (* Each node only stores its shard. *)
  for node = 0 to 2 do
    let local = ref 0 in
    Db.iter_committed (Partition.node_db c node) ~table:0 (fun k _ ->
        incr local;
        Alcotest.(check int) "row on its owner" node (Partition.owner c ~table:0 ~key:k));
    Alcotest.(check int) "shard size" counts.(node) !local
  done

let test_conflicts_defer_deterministically () =
  let run () =
    let c = mk_cluster () in
    let batch =
      Array.init 10 (fun i ->
          transfer ~src:1L ~dst:(Int64.of_int (10 + i)) ~amount:5L)
    in
    let _, deferred = Partition.run_epoch c batch in
    (Array.length deferred, total c)
  in
  let d1, t1 = run () and d2, t2 = run () in
  Alcotest.(check int) "same deferrals" d1 d2;
  Alcotest.(check int64) "same totals" t1 t2;
  (* All ten conflict on account 1: only the first commits per epoch. *)
  Alcotest.(check int) "nine deferred" 9 d1

let test_node_crash_and_catchup () =
  let c = mk_cluster () in
  for seed = 1 to 3 do
    run_with_retry c (gen_batch seed 30)
  done;
  let before = total c in
  let cluster_epoch = Partition.epoch c in
  (* Node 1 dies; its NVMM tears; it recovers and catches up. *)
  Partition.crash_node c 1 ~rng:(Nv_util.Rng.create 5);
  Partition.recover_node c 1;
  Alcotest.(check int) "rejoined at cluster epoch" cluster_epoch
    (Db.epoch (Partition.node_db c 1));
  Alcotest.(check int64) "state intact" before (total c);
  (* The cluster keeps processing. *)
  run_with_retry c (gen_batch 9 30);
  Alcotest.(check int64) "still conserved" before (total c)

let test_node_crash_behind_cluster () =
  (* Crash a node, keep the cluster running... not possible while the
     node is down (its shard is unreachable); instead crash, recover,
     and verify the recovered node replayed its own crashed epoch from
     its local input log. *)
  let c = mk_cluster () in
  run_with_retry c (gen_batch 1 40);
  Partition.crash_node c 0 ~rng:(Nv_util.Rng.create 11);
  Partition.recover_node c 0;
  run_with_retry c (gen_batch 2 40);
  Alcotest.(check int64) "conserved" (Int64.of_int (accounts * 100)) (total c)

let test_cluster_size_invariance () =
  (* The committed state is a pure function of the batch sequence:
     1-, 2- and 4-node clusters must agree key for key. *)
  let state_of nodes =
    let c = Partition.create ~config ~tables ~nodes () in
    Partition.bulk_load c
      (Seq.init accounts (fun i -> (0, Int64.of_int i, balance_bytes 100L)));
    for seed = 1 to 4 do
      run_with_retry c (gen_batch seed 25)
    done;
    List.init accounts (fun k ->
        match Partition.read c ~table:0 ~key:(Int64.of_int k) with
        | Some v -> Bytes.get_int64_le v 0
        | None -> -1L)
  in
  let one = state_of 1 in
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "%d nodes agree with 1" n)
        true
        (state_of n = one))
    [ 2; 4 ]

let suites =
  [
    ( "partition",
      [
        Alcotest.test_case "cross-partition transfers" `Quick test_cross_partition_transfers;
        Alcotest.test_case "sharding" `Quick test_keys_are_sharded;
        Alcotest.test_case "deterministic deferral" `Quick test_conflicts_defer_deterministically;
        Alcotest.test_case "node crash + catch-up" `Quick test_node_crash_and_catchup;
        Alcotest.test_case "crash replays local log" `Quick test_node_crash_behind_cluster;
        Alcotest.test_case "cluster-size invariance" `Quick test_cluster_size_invariance;
      ] );
  ]
