(* Utility-layer tests: RNG determinism, Zipf shape, histogram
   percentiles, priority-queue ordering, hash properties. *)

let test_rng_determinism () =
  let a = Nv_util.Rng.create 42 and b = Nv_util.Rng.create 42 in
  for _ = 1 to 1000 do
    Alcotest.(check int64) "same stream" (Nv_util.Rng.next_int64 a) (Nv_util.Rng.next_int64 b)
  done

let test_rng_split_independent () =
  let a = Nv_util.Rng.create 42 in
  let c = Nv_util.Rng.split a in
  let x = Nv_util.Rng.next_int64 a and y = Nv_util.Rng.next_int64 c in
  Alcotest.(check bool) "split streams differ" true (x <> y)

let test_rng_bounds () =
  let rng = Nv_util.Rng.create 1 in
  for _ = 1 to 10000 do
    let v = Nv_util.Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17);
    let w = Nv_util.Rng.int_in rng 5 9 in
    Alcotest.(check bool) "in closed range" true (w >= 5 && w <= 9);
    let f = Nv_util.Rng.float rng in
    Alcotest.(check bool) "unit float" true (f >= 0.0 && f < 1.0)
  done

let test_rng_uniformity () =
  let rng = Nv_util.Rng.create 9 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Nv_util.Rng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let expected = n / 10 in
      Alcotest.(check bool) "within 5% of uniform" true (abs (c - expected) < expected / 20))
    buckets

let test_shuffle_permutes () =
  let rng = Nv_util.Rng.create 5 in
  let a = Array.init 100 Fun.id in
  Nv_util.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_zipf_skew () =
  let z = Nv_util.Zipf.create ~n:10_000 ~theta:0.99 in
  let rng = Nv_util.Rng.create 77 in
  let top10 = ref 0 and n = 50_000 in
  for _ = 1 to n do
    let r = Nv_util.Zipf.sample z rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 10_000);
    if r < 10 then incr top10
  done;
  (* With theta = 0.99 over 10k items, the top-10 ranks draw roughly a
     quarter of the mass; uniform would give 0.1%. *)
  Alcotest.(check bool) "skewed towards head" true (float_of_int !top10 /. float_of_int n > 0.15)

let test_zipf_uniform_degenerate () =
  let z = Nv_util.Zipf.create ~n:100 ~theta:0.0 in
  let rng = Nv_util.Rng.create 3 in
  let buckets = Array.make 100 0 in
  for _ = 1 to 100_000 do
    buckets.(Nv_util.Zipf.sample z rng) <- buckets.(Nv_util.Zipf.sample z rng) + 1
  done;
  let max_b = Array.fold_left max 0 buckets and min_b = Array.fold_left min max_int buckets in
  Alcotest.(check bool) "roughly uniform" true (float_of_int max_b /. float_of_int min_b < 2.0)

let test_histogram_basic () =
  let h = Nv_util.Histogram.create () in
  for i = 1 to 1000 do
    Nv_util.Histogram.add h (float_of_int i)
  done;
  Alcotest.(check int) "count" 1000 (Nv_util.Histogram.count h);
  Alcotest.(check bool) "mean near 500" true (abs_float (Nv_util.Histogram.mean h -. 500.5) < 1.0);
  let p50 = Nv_util.Histogram.percentile h 50.0 in
  Alcotest.(check bool) "p50 within bucket error" true (p50 > 400.0 && p50 < 620.0);
  let p99 = Nv_util.Histogram.percentile h 99.0 in
  Alcotest.(check bool) "p99 near max" true (p99 > 900.0 && p99 <= 1000.0)

let test_histogram_merge () =
  let a = Nv_util.Histogram.create () and b = Nv_util.Histogram.create () in
  Nv_util.Histogram.add a 10.0;
  Nv_util.Histogram.add b 20.0;
  let m = Nv_util.Histogram.merge a b in
  Alcotest.(check int) "merged count" 2 (Nv_util.Histogram.count m);
  Alcotest.(check (float 0.01)) "merged mean" 15.0 (Nv_util.Histogram.mean m)

let test_pqueue_ordering () =
  let q = Nv_util.Pqueue.create () in
  let rng = Nv_util.Rng.create 11 in
  let items = List.init 500 (fun i -> (Nv_util.Rng.float rng, i)) in
  List.iter (fun (p, v) -> Nv_util.Pqueue.push q ~prio:p v) items;
  Alcotest.(check int) "size" 500 (Nv_util.Pqueue.size q);
  let rec drain last acc =
    match Nv_util.Pqueue.peek_prio q with
    | None -> acc
    | Some p ->
        Alcotest.(check bool) "non-decreasing" true (p >= last);
        ignore (Nv_util.Pqueue.pop q);
        drain p (acc + 1)
  in
  Alcotest.(check int) "drained all" 500 (drain neg_infinity 0)

let test_pqueue_fifo_ties () =
  let q = Nv_util.Pqueue.create () in
  List.iter (fun v -> Nv_util.Pqueue.push q ~prio:1.0 v) [ 1; 2; 3; 4 ];
  let order = List.init 4 (fun _ -> Option.get (Nv_util.Pqueue.pop q)) in
  Alcotest.(check (list int)) "ties pop in insertion order" [ 1; 2; 3; 4 ] order

(* ------------------------------------------------------------------ *)
(* Domain-pool telemetry and spin/sleep backoff configuration.         *)

let test_dpool_telemetry () =
  let module D = Nv_util.Dpool in
  D.reset_telemetry ();
  List.iter
    (fun (s : D.Telemetry.stat) ->
      Alcotest.(check int) "reset zeroes tasks" 0 s.D.Telemetry.tasks;
      Alcotest.(check (float 0.0)) "reset zeroes busy" 0.0 s.D.Telemetry.busy_ns)
    (Array.to_list (D.telemetry ()));
  let pool = D.shared ~width:4 in
  let n = 8 in
  let out =
    D.run pool ~n (fun i ->
        (* Enough work per index to register on the wall clock. *)
        let acc = ref 0 in
        for k = 0 to 50_000 do
          acc := !acc + ((k * (i + 1)) land 0xff)
        done;
        !acc)
  in
  Alcotest.(check int) "all indices evaluated" n (Array.length out);
  let tele = D.telemetry () in
  let tasks = Array.fold_left (fun acc s -> acc + s.D.Telemetry.tasks) 0 tele in
  let busy = Array.fold_left (fun acc s -> acc +. s.D.Telemetry.busy_ns) 0.0 tele in
  Alcotest.(check int) "every task metered exactly once" n tasks;
  Alcotest.(check bool) "busy wall time accrued" true (busy > 0.0);
  Array.iter
    (fun (s : D.Telemetry.stat) ->
      Alcotest.(check bool) "meters are non-negative" true
        (s.D.Telemetry.busy_ns >= 0.0 && s.D.Telemetry.spin_ns >= 0.0
        && s.D.Telemetry.sleep_ns >= 0.0 && s.D.Telemetry.escalations >= 0))
    tele;
  D.reset_telemetry ()

let test_dpool_spin_config () =
  let module D = Nv_util.Dpool in
  let saved_threshold, saved_sleep = D.spin_config () in
  Fun.protect
    ~finally:(fun () ->
      D.set_spin ~threshold:saved_threshold ~sleep_us:(saved_sleep *. 1e6) ())
  @@ fun () ->
  (* NVC_SPIN value parsing: "SPINS" or "SPINS:SLEEP_US". *)
  (match D.parse_spin "2048" with
  | Some (t, s) ->
      Alcotest.(check int) "threshold alone" 2048 t;
      Alcotest.(check (float 1e-12)) "sleep keeps default" 5e-5 s
  | None -> Alcotest.fail "\"2048\" should parse");
  (match D.parse_spin "256:20" with
  | Some (t, s) ->
      Alcotest.(check int) "threshold with sleep" 256 t;
      Alcotest.(check (float 1e-12)) "sleep_us converts to seconds" 20e-6 s
  | None -> Alcotest.fail "\"256:20\" should parse");
  List.iter
    (fun bad ->
      match D.parse_spin bad with
      | None -> ()
      | Some _ -> Alcotest.failf "%S should not parse" bad)
    [ ""; "abc"; "-5"; "12:"; ":9"; "1:2:3"; "64:-1"; "64:zz" ];
  (* set_spin installs, spin_config reads back (sleep in seconds). *)
  D.set_spin ~threshold:128 ~sleep_us:10.0 ();
  let t, s = D.spin_config () in
  Alcotest.(check int) "installed threshold" 128 t;
  Alcotest.(check (float 1e-12)) "installed sleep" 10e-6 s;
  (* Backoff past the threshold still terminates and meters the wait. *)
  Nv_util.Dpool.reset_telemetry ();
  for spins = 0 to 200 do
    D.backoff spins
  done;
  let tele = D.telemetry () in
  let spin_ns = Array.fold_left (fun acc st -> acc +. st.D.Telemetry.spin_ns) 0.0 tele in
  let sleep_ns = Array.fold_left (fun acc st -> acc +. st.D.Telemetry.sleep_ns) 0.0 tele in
  let esc = Array.fold_left (fun acc st -> acc + st.D.Telemetry.escalations) 0 tele in
  Alcotest.(check bool) "spin wall metered" true (spin_ns > 0.0);
  Alcotest.(check bool) "sleep wall metered past threshold" true (sleep_ns > 0.0);
  Alcotest.(check bool) "escalations counted" true (esc >= 1);
  D.reset_telemetry ()

let prop_fnv_nonnegative =
  QCheck.Test.make ~name:"fnv hashes are non-negative" ~count:1000 QCheck.int64 (fun k ->
      Nv_util.Fnv.hash_int64 k >= 0)

let prop_fnv_deterministic =
  QCheck.Test.make ~name:"fnv deterministic" ~count:1000 QCheck.string (fun s ->
      Nv_util.Fnv.hash_string s = Nv_util.Fnv.hash_string s)

let prop_pqueue_sorted =
  QCheck.Test.make ~name:"pqueue pops sorted" ~count:100
    QCheck.(list (float_bound_exclusive 1.0))
    (fun prios ->
      let q = Nv_util.Pqueue.create () in
      List.iteri (fun i p -> Nv_util.Pqueue.push q ~prio:p i) prios;
      let rec drain acc =
        match Nv_util.Pqueue.peek_prio q with
        | None -> List.rev acc
        | Some p ->
            ignore (Nv_util.Pqueue.pop q);
            drain (p :: acc)
      in
      let out = drain [] in
      out = List.sort compare prios)

let suites =
  [
    ( "util",
      [
        Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
        Alcotest.test_case "rng split" `Quick test_rng_split_independent;
        Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
        Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
        Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
        Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
        Alcotest.test_case "zipf uniform" `Quick test_zipf_uniform_degenerate;
        Alcotest.test_case "histogram basic" `Quick test_histogram_basic;
        Alcotest.test_case "histogram merge" `Quick test_histogram_merge;
        Alcotest.test_case "pqueue ordering" `Quick test_pqueue_ordering;
        Alcotest.test_case "pqueue fifo ties" `Quick test_pqueue_fifo_ties;
        Alcotest.test_case "dpool telemetry meters tasks" `Quick test_dpool_telemetry;
        Alcotest.test_case "dpool spin config and backoff" `Quick test_dpool_spin_config;
        QCheck_alcotest.to_alcotest prop_fnv_nonnegative;
        QCheck_alcotest.to_alcotest prop_fnv_deterministic;
        QCheck_alcotest.to_alcotest prop_pqueue_sorted;
      ] );
  ]
