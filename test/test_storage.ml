(* Storage-layer tests: value pointers, allocators, free lists,
   persistent rows, log region, metadata, transient pool — including
   crash/recovery behaviour of each component in isolation. *)

module Pmem = Nv_nvmm.Pmem
module Stats = Nv_nvmm.Stats
module Memspec = Nv_nvmm.Memspec
module Layout = Nv_nvmm.Layout
module Vptr = Nv_storage.Vptr
module Bump = Nv_storage.Bump
module Freelist = Nv_storage.Freelist
module Prow = Nv_storage.Prow
module Slab = Nv_storage.Slab_pool
module Log = Nv_storage.Log_region
module Meta = Nv_storage.Meta_region
module TP = Nv_storage.Transient_pool

let stats () = Stats.create Memspec.default

(* --- Vptr --- *)

let test_vptr_roundtrip () =
  Alcotest.(check bool) "null" true (Vptr.is_null Vptr.null);
  (match Vptr.classify (Vptr.inline ~heap_off:84 ~len:30) with
  | Vptr.Inline { heap_off; len } ->
      Alcotest.(check int) "inline off" 84 heap_off;
      Alcotest.(check int) "inline len" 30 len
  | _ -> Alcotest.fail "expected inline");
  match Vptr.classify (Vptr.pool ~off:123456 ~len:1000) with
  | Vptr.Pool { off; len } ->
      Alcotest.(check int) "pool off" 123456 off;
      Alcotest.(check int) "pool len" 1000 len
  | _ -> Alcotest.fail "expected pool"

let prop_vptr_inline_roundtrip =
  QCheck.Test.make ~name:"vptr inline roundtrip" ~count:500
    QCheck.(pair (int_range 0 2_000_000) (int_range 1 4_000_000))
    (fun (heap_off, len) ->
      QCheck.assume (heap_off <= 2_097_151 && len <= 4_194_303);
      match Vptr.classify (Vptr.inline ~heap_off ~len) with
      | Vptr.Inline { heap_off = o; len = l } -> o = heap_off && l = len
      | _ -> false)

let prop_vptr_pool_roundtrip =
  QCheck.Test.make ~name:"vptr pool roundtrip" ~count:500
    QCheck.(pair (int_range 1 1_000_000_000) (int_range 1 1_000_000))
    (fun (off, len) ->
      let off = off * 2 in
      QCheck.assume (len <= (1 lsl 20) - 1);
      match Vptr.classify (Vptr.pool ~off ~len) with
      | Vptr.Pool { off = o; len = l } -> o = off && l = len
      | _ -> false)

(* --- Bump allocator --- *)

let test_bump_checkpoint_recover () =
  let s = stats () in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:1024 () in
  let b = Bump.create p ~meta_off:0 ~capacity:100 in
  for _ = 1 to 5 do
    ignore (Bump.alloc b)
  done;
  Bump.checkpoint b s ~epoch:2;
  Pmem.fence p s;
  for _ = 1 to 3 do
    ignore (Bump.alloc b)
  done;
  Alcotest.(check int) "offset advanced" 8 (Bump.offset b);
  (* Crash: uncheckpointed allocations are reverted. *)
  Pmem.crash_all_persisted p;
  ignore (Bump.recover b ~last_checkpointed_epoch:2);
  Alcotest.(check int) "reverted to checkpoint" 5 (Bump.offset b)

let test_bump_parity_slots () =
  let s = stats () in
  let p = Pmem.create ~size:1024 () in
  let b = Bump.create p ~meta_off:0 ~capacity:100 in
  ignore (Bump.alloc b);
  Bump.checkpoint b s ~epoch:1;
  ignore (Bump.alloc b);
  Bump.checkpoint b s ~epoch:2;
  (* Both checkpoints remain readable. *)
  ignore (Bump.recover b ~last_checkpointed_epoch:1);
  Alcotest.(check int) "epoch-1 slot" 1 (Bump.offset b);
  ignore (Bump.recover b ~last_checkpointed_epoch:2);
  Alcotest.(check int) "epoch-2 slot" 2 (Bump.offset b)

let test_bump_capacity () =
  let p = Pmem.create ~size:1024 () in
  let b = Bump.create p ~meta_off:0 ~capacity:2 in
  ignore (Bump.alloc b);
  ignore (Bump.alloc b);
  Alcotest.check_raises "exhausted" (Failure "Bump.alloc: pool capacity exhausted") (fun () ->
      ignore (Bump.alloc b))

(* --- Freelist --- *)

let mk_freelist ?(capacity = 64) () =
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:8192 () in
  (p, Freelist.create p ~meta_off:0 ~ring_off:1024 ~capacity)

let test_freelist_basic () =
  let s = stats () in
  let p, fl = mk_freelist () in
  Alcotest.(check (option int64)) "empty" None (Freelist.alloc fl s);
  Freelist.free fl s 111L;
  Freelist.free fl s 222L;
  (* Freed this epoch: not yet allocatable. *)
  Alcotest.(check (option int64)) "not allocatable yet" None (Freelist.alloc fl s);
  Freelist.checkpoint fl s ~epoch:2;
  Pmem.fence p s;
  Alcotest.(check (option int64)) "fifo 1" (Some 111L) (Freelist.alloc fl s);
  Alcotest.(check (option int64)) "fifo 2" (Some 222L) (Freelist.alloc fl s);
  Alcotest.(check (option int64)) "drained" None (Freelist.alloc fl s)

let test_freelist_crash_reverts_txn_frees () =
  let s = stats () in
  let p, fl = mk_freelist () in
  Freelist.free fl s 1L;
  Freelist.checkpoint fl s ~epoch:2;
  Pmem.fence p s;
  (* Epoch 3: free 2L (revertible), alloc 1L. *)
  Freelist.free fl s 2L;
  Alcotest.(check (option int64)) "alloc 1" (Some 1L) (Freelist.alloc fl s);
  Pmem.crash_all_persisted p;
  let gc = Freelist.recover fl ~last_checkpointed_epoch:2 ~crashed_epoch:3 in
  Alcotest.(check int) "no gc frees" 0 (List.length gc.Freelist.gc_frees);
  (* The free of 2L is gone; the alloc of 1L is undone. *)
  Alcotest.(check (option int64)) "1L back" (Some 1L) (Freelist.alloc fl s);
  Alcotest.(check (option int64)) "2L gone" None (Freelist.alloc fl s)

let test_freelist_gc_tail_survives () =
  let s = stats () in
  let p, fl = mk_freelist () in
  Freelist.checkpoint fl s ~epoch:2;
  Pmem.fence p s;
  (* Epoch 3 GC pass 1: free 7L, 8L, persist the GC tail. *)
  Freelist.free fl s 7L;
  Freelist.free fl s 8L;
  Freelist.persist_gc_tail fl s ~epoch:3;
  Pmem.fence p s;
  (* GC frees are immediately allocatable within the epoch. *)
  Alcotest.(check (option int64)) "gc free allocatable" (Some 7L) (Freelist.alloc fl s);
  (* Transaction free during execution. *)
  Freelist.free fl s 9L;
  Pmem.crash_all_persisted p;
  let gc = Freelist.recover fl ~last_checkpointed_epoch:2 ~crashed_epoch:3 in
  Alcotest.(check (list int64)) "gc dedup set" [ 7L; 8L ] gc.Freelist.gc_frees;
  (* GC frees survive; the txn free of 9L is reverted; the alloc of 7L
     is reverted (replay will redo it deterministically). *)
  Alcotest.(check (option int64)) "7L still there" (Some 7L) (Freelist.alloc fl s);
  Alcotest.(check (option int64)) "8L still there" (Some 8L) (Freelist.alloc fl s);
  Alcotest.(check (option int64)) "9L reverted" None (Freelist.alloc fl s)

let test_freelist_gc_tail_stale_epoch_ignored () =
  let s = stats () in
  let p, fl = mk_freelist () in
  Freelist.free fl s 7L;
  Freelist.persist_gc_tail fl s ~epoch:3;
  Freelist.checkpoint fl s ~epoch:3;
  Pmem.fence p s;
  (* Crash in epoch 4 before its GC persisted: epoch-3 current tail must
     not be mistaken for epoch 4's. *)
  Pmem.crash_all_persisted p;
  let gc = Freelist.recover fl ~last_checkpointed_epoch:3 ~crashed_epoch:4 in
  Alcotest.(check int) "no gc frees of epoch 4" 0 (List.length gc.Freelist.gc_frees);
  Alcotest.(check (option int64)) "epoch-3 free intact" (Some 7L) (Freelist.alloc fl s)

let test_freelist_wraparound () =
  let s = stats () in
  let p, fl = mk_freelist ~capacity:4 () in
  for round = 0 to 9 do
    Freelist.free fl s (Int64.of_int round);
    Freelist.checkpoint fl s ~epoch:(round + 2);
    Pmem.fence p s;
    Alcotest.(check (option int64))
      (Printf.sprintf "round %d" round)
      (Some (Int64.of_int round))
      (Freelist.alloc fl s)
  done

let test_freelist_overflow () =
  let s = stats () in
  let _, fl = mk_freelist ~capacity:2 () in
  Freelist.free fl s 1L;
  Freelist.free fl s 2L;
  Alcotest.check_raises "overflow" (Failure "Freelist.free: ring overflow") (fun () ->
      Freelist.free fl s 3L)

(* --- Persistent rows --- *)

let test_prow_init_and_versions () =
  let s = stats () in
  let p = Pmem.create ~size:4096 () in
  Prow.init p s ~base:256 ~key:77L ~table:3;
  let key, table, v1, v2 = Prow.read_header p s ~base:256 in
  Alcotest.(check int64) "key" 77L key;
  Alcotest.(check int) "table" 3 table;
  Alcotest.(check bool) "versions empty" true (v1.Prow.sid = 0L && v2.Prow.sid = 0L);
  Prow.set_version p s ~base:256 ~slot:`V2 ~sid:5L ~ptr:(Vptr.inline ~heap_off:0 ~len:8) ();
  let _, _, _, v2 = Prow.read_header p s ~base:256 in
  Alcotest.(check int64) "sid set" 5L v2.Prow.sid

let test_prow_inline_value_roundtrip () =
  let s = stats () in
  let p = Pmem.create ~size:4096 () in
  Prow.init p s ~base:0 ~key:1L ~table:0;
  let data = Bytes.of_string "inline-payload" in
  let ptr = Prow.write_inline_value p s ~base:0 ~row_size:256 ~half:1 ~data () in
  Alcotest.(check string) "roundtrip" "inline-payload"
    (Bytes.to_string (Prow.read_value p s ~base:0 ptr ()))

let test_prow_gc_move () =
  let s = stats () in
  let p = Pmem.create ~size:4096 () in
  Prow.init p s ~base:0 ~key:1L ~table:0;
  let ptr = Vptr.inline ~heap_off:0 ~len:4 in
  Prow.set_version p s ~base:0 ~slot:`V1 ~sid:3L ~ptr:(Vptr.inline ~heap_off:84 ~len:4) ();
  Prow.set_version p s ~base:0 ~slot:`V2 ~sid:9L ~ptr ();
  Prow.gc_move p s ~base:0 ();
  let v1, v2 = Prow.peek_versions p ~base:0 in
  Alcotest.(check int64) "v1 now recent" 9L v1.Prow.sid;
  Alcotest.(check bool) "v1 ptr moved" true (Vptr.equal v1.Prow.ptr ptr);
  Alcotest.(check int64) "v2 cleared" 0L v2.Prow.sid;
  Alcotest.(check bool) "v2 ptr cleared" true (Vptr.is_null v2.Prow.ptr)

let test_prow_sid_before_pointer_on_crash () =
  (* Crash between the SID store and the pointer store of a version
     update: the image may hold (old sid, old ptr) or (new sid, old
     ptr) or (new sid, new ptr) — never (old sid, new ptr). *)
  let observed_states = Hashtbl.create 4 in
  for seed = 1 to 100 do
    let s = stats () in
    let p = Pmem.create ~mode:Pmem.Crash_safe ~size:4096 () in
    Prow.init p s ~base:0 ~key:1L ~table:0;
    Pmem.persist p s ~off:0 ~len:256;
    let new_ptr = Vptr.inline ~heap_off:0 ~len:4 in
    Prow.set_version p s ~base:0 ~slot:`V2 ~sid:9L ~ptr:new_ptr ();
    Pmem.crash p ~rng:(Nv_util.Rng.create seed);
    let _, v2 = Prow.peek_versions p ~base:0 in
    let state =
      match (v2.Prow.sid, Vptr.is_null v2.Prow.ptr) with
      | 0L, true -> "old-old"
      | 9L, true -> "new-old"
      | 9L, false -> "new-new"
      | _, false -> "OLD-SID-NEW-PTR (ILLEGAL)"
      | _ -> "other"
    in
    Hashtbl.replace observed_states state ();
    Alcotest.(check bool) ("legal state: " ^ state) true (state <> "OLD-SID-NEW-PTR (ILLEGAL)")
  done;
  Alcotest.(check bool) "torn state observed" true (Hashtbl.mem observed_states "new-old")

let test_prow_inline_charge_coalesced () =
  (* A fully-inline row costs exactly one block per read (header plus
     inline value in the same 256-byte block). *)
  let s = stats () in
  let p = Pmem.create ~size:4096 () in
  Prow.init p s ~base:0 ~key:1L ~table:0;
  let data = Bytes.make 64 'x' in
  let ptr = Prow.write_inline_value p s ~base:0 ~row_size:256 ~half:0 ~data () in
  let before = (Stats.counters s).Stats.nvmm_block_reads in
  let _, _, _, _ = Prow.read_header p s ~base:0 in
  let _ = Prow.read_value p s ~base:0 ptr () in
  let after = (Stats.counters s).Stats.nvmm_block_reads in
  Alcotest.(check int) "one block for header+inline value" 1 (after - before)

(* --- Slab pool --- *)

let mk_slab ?(cores = 2) ?(slots = 16) ?(slot_size = 256) () =
  let b = Layout.builder () in
  let spec =
    Slab.reserve b ~name:"t" ~cores ~slots_per_core:slots ~slot_size ~freelist_capacity:32
  in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:(Layout.total_size b) () in
  (p, Slab.attach p spec)

let test_slab_alloc_unique () =
  let s = stats () in
  let _, pool = mk_slab () in
  let seen = Hashtbl.create 32 in
  for core = 0 to 1 do
    for _ = 1 to 16 do
      let off = Slab.alloc pool s ~core in
      Alcotest.(check bool) "unique" false (Hashtbl.mem seen off);
      Hashtbl.replace seen off ()
    done
  done;
  Alcotest.(check int) "all allocated" 32 (Slab.allocated_slots pool)

let test_slab_free_reuse_after_checkpoint () =
  let s = stats () in
  let p, pool = mk_slab () in
  let a = Slab.alloc pool s ~core:0 in
  Slab.checkpoint pool (fun _ -> s) ~epoch:2;
  Pmem.fence p s;
  Slab.free pool s ~core:0 a;
  (* Same epoch: not reusable. *)
  let b = Slab.alloc pool s ~core:0 in
  Alcotest.(check bool) "no same-epoch reuse" true (b <> a);
  Slab.checkpoint pool (fun _ -> s) ~epoch:3;
  Pmem.fence p s;
  let c = Slab.alloc pool s ~core:0 in
  Alcotest.(check int) "reused next epoch" a c

let test_slab_crash_recovery_allocation_state () =
  let s = stats () in
  let p, pool = mk_slab () in
  let a = Slab.alloc pool s ~core:0 in
  let _b = Slab.alloc pool s ~core:1 in
  Slab.checkpoint pool (fun _ -> s) ~epoch:2;
  Pmem.fence p s;
  (* Epoch 3: more allocations and a free, then crash. *)
  let _c = Slab.alloc pool s ~core:0 in
  Slab.free pool s ~core:0 a;
  Pmem.crash_all_persisted p;
  let r = Slab.recover pool ~last_checkpointed_epoch:2 ~crashed_epoch:3 () in
  Alcotest.(check int) "no gc frees" 0 (Hashtbl.length r.Slab.dedup);
  Alcotest.(check int) "allocation state reverted" 2 (Slab.allocated_slots pool);
  (* [a] remains allocated (its free reverted). *)
  let visited = ref [] in
  Slab.iter_allocated pool ~f:(fun ~base -> visited := base :: !visited);
  Alcotest.(check bool) "a still allocated" true (List.mem a !visited)

let test_slab_value_roundtrip () =
  let s = stats () in
  let _, pool = mk_slab ~slot_size:1024 () in
  let off = Slab.alloc pool s ~core:0 in
  Slab.write_value pool s ~off ~data:(Bytes.of_string "payload") ();
  Alcotest.(check string) "roundtrip" "payload"
    (Bytes.to_string (Slab.read_slot pool s ~off ~len:7))

(* --- Size-classed value pools --- *)

module VP = Nv_storage.Value_pools

let mk_vpools ?(classes = [ 256; 1024; 4096 ]) () =
  let b = Layout.builder () in
  let spec = VP.reserve b ~cores:2 ~slots_per_core:16 ~classes ~freelist_capacity:64 in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:(Layout.total_size b) () in
  (p, VP.attach p spec)

let test_vpools_class_selection () =
  let s = stats () in
  let _, vp = mk_vpools () in
  Alcotest.(check (list int)) "classes" [ 256; 1024; 4096 ] (VP.classes vp);
  Alcotest.(check int) "max value" 4096 (VP.max_value vp);
  let a = VP.alloc vp s ~core:0 ~len:100 in
  let b = VP.alloc vp s ~core:0 ~len:300 in
  let c = VP.alloc vp s ~core:0 ~len:4000 in
  VP.write_value vp s ~off:a ~data:(Bytes.make 100 'a') ();
  VP.write_value vp s ~off:b ~data:(Bytes.make 300 'b') ();
  VP.write_value vp s ~off:c ~data:(Bytes.make 4000 'c') ();
  (* Distinct arenas. *)
  Alcotest.(check bool) "distinct offsets" true (a <> b && b <> c && a <> c);
  Alcotest.(check int) "allocated bytes" (256 + 1024 + 4096) (VP.allocated_bytes vp)

let test_vpools_free_routes_to_class () =
  let s = stats () in
  let p, vp = mk_vpools () in
  let a = VP.alloc vp s ~core:0 ~len:100 in
  let b = VP.alloc vp s ~core:0 ~len:2000 in
  VP.checkpoint vp (fun _ -> s) ~epoch:2;
  Pmem.fence p s;
  VP.free vp s ~core:0 a;
  VP.free vp s ~core:0 b;
  VP.checkpoint vp (fun _ -> s) ~epoch:3;
  Pmem.fence p s;
  (* Reuse lands back in the right class. *)
  Alcotest.(check int) "small class reused" a (VP.alloc vp s ~core:0 ~len:50);
  Alcotest.(check int) "large class reused" b (VP.alloc vp s ~core:0 ~len:1500)

let test_vpools_oversize_rejected () =
  let s = stats () in
  let _, vp = mk_vpools () in
  Alcotest.check_raises "oversize"
    (Failure "Value_pools: value of 5000 bytes exceeds largest class") (fun () ->
      ignore (VP.alloc vp s ~core:0 ~len:5000))

let test_vpools_crash_recovery () =
  let s = stats () in
  let p, vp = mk_vpools () in
  let a = VP.alloc vp s ~core:0 ~len:100 in
  VP.checkpoint vp (fun _ -> s) ~epoch:2;
  Pmem.fence p s;
  (* Epoch 3: GC-free [a] durably, then transaction-free another slot. *)
  let b = VP.alloc vp s ~core:1 ~len:100 in
  let dedup = Hashtbl.create 4 in
  VP.free_gc vp s ~core:0 a ~dedup;
  VP.persist_gc_tail vp s ~epoch:3;
  Pmem.fence p s;
  VP.free vp s ~core:1 b;
  Pmem.crash_all_persisted p;
  let r = VP.recover vp ~last_checkpointed_epoch:2 ~crashed_epoch:3 in
  Alcotest.(check bool) "gc free in dedup" true (Hashtbl.mem r.VP.dedup (Int64.of_int a));
  (* [b]'s alloc reverted; [a]'s GC free survived and is allocatable. *)
  Alcotest.(check int) "gc-freed slot allocatable" a (VP.alloc vp s ~core:0 ~len:100)

(* --- Persistent index --- *)

module PIdx = Nv_storage.Pindex

let mk_pindex ?(capacity = 64) () =
  let b = Layout.builder () in
  let r = PIdx.reserve b ~capacity in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:(Layout.total_size b) () in
  (p, PIdx.attach p r)

let recovered_entries pix s ~crashed_epoch =
  let out = ref [] in
  PIdx.iter_recovered pix s ~crashed_epoch ~f:(fun ~key ~table ~base ->
      out := (key, table, base) :: !out);
  List.sort compare !out

let test_pindex_roundtrip () =
  let s = stats () in
  let _, pix = mk_pindex () in
  PIdx.apply_batch pix s ~epoch:2 ~inserts:[ (1L, 100, 0); (2L, 200, 0); (1L, 300, 1) ]
    ~deletes:[];
  Alcotest.(check int) "live" 3 (PIdx.live_entries pix);
  Alcotest.(check (list (triple int64 int int)))
    "entries (same key, two tables)"
    [ (1L, 0, 100); (1L, 1, 300); (2L, 0, 200) ]
    (recovered_entries pix s ~crashed_epoch:3)

let test_pindex_delete_and_reuse () =
  let s = stats () in
  let _, pix = mk_pindex () in
  PIdx.apply_batch pix s ~epoch:2 ~inserts:[ (1L, 100, 0); (2L, 200, 0) ] ~deletes:[];
  PIdx.apply_batch pix s ~epoch:3 ~inserts:[] ~deletes:[ (1L, 0) ];
  Alcotest.(check (list (triple int64 int int)))
    "deleted" [ (2L, 0, 200) ]
    (recovered_entries pix s ~crashed_epoch:4);
  (* Re-insert reuses the tombstone. *)
  PIdx.apply_batch pix s ~epoch:5 ~inserts:[ (1L, 500, 0) ] ~deletes:[];
  Alcotest.(check (list (triple int64 int int)))
    "reinserted"
    [ (1L, 0, 500); (2L, 0, 200) ]
    (recovered_entries pix s ~crashed_epoch:6)

let test_pindex_crashed_epoch_tags () =
  let s = stats () in
  let _, pix = mk_pindex () in
  PIdx.apply_batch pix s ~epoch:2 ~inserts:[ (1L, 100, 0); (2L, 200, 0) ] ~deletes:[];
  (* Epoch 3 crashes after its batch was applied: its insert must be
     ignored and its delete resurrected. *)
  PIdx.apply_batch pix s ~epoch:3 ~inserts:[ (9L, 900, 0) ] ~deletes:[ (2L, 0) ];
  Alcotest.(check (list (triple int64 int int)))
    "crashed tags resolved"
    [ (1L, 0, 100); (2L, 0, 200) ]
    (recovered_entries pix s ~crashed_epoch:3);
  (* The repair is persistent: a later recovery (different crashed
     epoch) sees the same state. *)
  Alcotest.(check (list (triple int64 int int)))
    "repair persisted"
    [ (1L, 0, 100); (2L, 0, 200) ]
    (recovered_entries pix s ~crashed_epoch:7)

let test_pindex_capacity_guard () =
  let s = stats () in
  let _, pix = mk_pindex ~capacity:8 () in
  Alcotest.check_raises "overload" (Failure "Pindex: capacity exceeded (resize not supported)")
    (fun () ->
      PIdx.apply_batch pix s ~epoch:2
        ~inserts:(List.init 8 (fun i -> (Int64.of_int i, i, 0)))
        ~deletes:[])

let prop_pindex_matches_model =
  QCheck.Test.make ~name:"pindex matches model across epochs" ~count:40
    QCheck.(list (list (pair (int_range 0 40) bool)))
    (fun epochs ->
      let s = stats () in
      let _, pix = mk_pindex ~capacity:256 () in
      let model = Hashtbl.create 64 in
      List.iteri
        (fun e ops ->
          let epoch = e + 2 in
          let delta = Hashtbl.create 16 in
          List.iteri
            (fun i (k, ins) ->
              let k64 = Int64.of_int k in
              if ins then begin
                (* Model the engine's net-delta discipline: insert only
                   keys that do not exist. *)
                if (not (Hashtbl.mem model k64)) && not (Hashtbl.mem delta k64) then begin
                  Hashtbl.replace delta k64 (`Ins (i + 1));
                  Hashtbl.replace model k64 (i + 1)
                end
              end
              else if Hashtbl.mem model k64 then begin
                (match Hashtbl.find_opt delta k64 with
                | Some (`Ins _) -> Hashtbl.remove delta k64
                | _ -> Hashtbl.replace delta k64 `Del);
                Hashtbl.remove model k64
              end)
            ops;
          let inserts = ref [] and deletes = ref [] in
          Hashtbl.iter
            (fun k -> function
              | `Ins b -> inserts := (k, b, 0) :: !inserts
              | `Del -> deletes := (k, 0) :: !deletes)
            delta;
          PIdx.apply_batch pix s ~epoch ~inserts:!inserts ~deletes:!deletes)
        epochs;
      let got = recovered_entries pix s ~crashed_epoch:(List.length epochs + 2) in
      let expect =
        List.sort compare (Hashtbl.fold (fun k b acc -> (k, 0, b) :: acc) model [])
      in
      got = expect)

(* --- Log region --- *)

let mk_log () =
  let b = Layout.builder () in
  let r = Log.reserve b ~capacity_bytes:4096 in
  let p = Pmem.create ~mode:Pmem.Crash_safe ~size:(Layout.total_size b) () in
  (p, Log.attach p r)

let test_log_roundtrip () =
  let s = stats () in
  let _, log = mk_log () in
  Log.begin_epoch log s ~epoch:5;
  Log.append log s (Bytes.of_string "txn-one");
  Log.append log s (Bytes.of_string "txn-two");
  Log.commit log s;
  match Log.read_committed log s with
  | Log.Committed (5, [ a; b ]) ->
      Alcotest.(check string) "entry 1" "txn-one" (Bytes.to_string a);
      Alcotest.(check string) "entry 2" "txn-two" (Bytes.to_string b)
  | _ -> Alcotest.fail "expected committed log with 2 entries"

let test_log_uncommitted_invisible () =
  let s = stats () in
  let p, log = mk_log () in
  Log.begin_epoch log s ~epoch:5;
  Log.append log s (Bytes.of_string "lost");
  (* no commit *)
  Pmem.crash_all_persisted p;
  Alcotest.(check bool) "uncommitted log unreadable" true (Log.read_committed log s = Log.Empty)

let test_log_commit_then_crash () =
  let s = stats () in
  let p, log = mk_log () in
  Log.begin_epoch log s ~epoch:6;
  Log.append log s (Bytes.of_string "kept");
  Log.commit log s;
  Pmem.crash_with p ~choose:(fun ~line:_ ~options:_ -> 0);
  (* Commit fenced everything: even the harshest adversary keeps it. *)
  match Log.read_committed log s with
  | Log.Committed (6, [ e ]) -> Alcotest.(check string) "entry" "kept" (Bytes.to_string e)
  | _ -> Alcotest.fail "committed log lost"

let test_log_new_epoch_invalidates () =
  let s = stats () in
  let _, log = mk_log () in
  Log.begin_epoch log s ~epoch:5;
  Log.append log s (Bytes.of_string "old");
  Log.commit log s;
  Log.begin_epoch log s ~epoch:6;
  Alcotest.(check bool) "previous log invalidated" true (Log.read_committed log s = Log.Empty)

(* --- Meta region --- *)

let test_meta_epoch_and_counters () =
  let s = stats () in
  let b = Layout.builder () in
  let r = Meta.reserve b ~n_counters:2 in
  let p = Pmem.create ~size:(Layout.total_size b) () in
  let m = Meta.attach p r ~n_counters:2 in
  Alcotest.(check int) "initial epoch" 0 (Meta.read_epoch m);
  Meta.persist_epoch m s ~epoch:7;
  Alcotest.(check int) "epoch" 7 (Meta.read_epoch m);
  Meta.checkpoint_counters m s ~epoch:7 [| 10L; 20L |];
  Meta.checkpoint_counters m s ~epoch:8 [| 11L; 21L |];
  Alcotest.(check (array int64)) "epoch-7 slot" [| 10L; 20L |]
    (Meta.recover_counters m ~last_checkpointed_epoch:7).Meta.values;
  Alcotest.(check (array int64)) "epoch-8 slot" [| 11L; 21L |]
    (Meta.recover_counters m ~last_checkpointed_epoch:8).Meta.values

(* --- Transient pool --- *)

let test_transient_pool () =
  let s = stats () in
  let tp = TP.create ~cores:2 ~initial_capacity:64 in
  let r1 = TP.write tp s ~core:0 (Bytes.of_string "alpha") in
  let r2 = TP.write tp s ~core:1 (Bytes.of_string "beta") in
  Alcotest.(check string) "read r1" "alpha" (Bytes.to_string (TP.read tp s r1));
  Alcotest.(check string) "read r2" "beta" (Bytes.to_string (TP.read tp s r2));
  Alcotest.(check bool) "usage tracked" true (TP.used_bytes tp > 0);
  (* Growth beyond the initial capacity. *)
  let big = TP.write tp s ~core:0 (Bytes.make 1000 'z') in
  Alcotest.(check int) "big value" 1000 (Bytes.length (TP.read tp s big));
  let peak = TP.peak_bytes tp in
  TP.reset tp;
  Alcotest.(check int) "reset frees" 0 (TP.used_bytes tp);
  Alcotest.(check int) "peak survives reset" peak (TP.peak_bytes tp)

let suites =
  [
    ( "storage",
      [
        Alcotest.test_case "vptr roundtrip" `Quick test_vptr_roundtrip;
        QCheck_alcotest.to_alcotest prop_vptr_inline_roundtrip;
        QCheck_alcotest.to_alcotest prop_vptr_pool_roundtrip;
        Alcotest.test_case "bump checkpoint/recover" `Quick test_bump_checkpoint_recover;
        Alcotest.test_case "bump parity slots" `Quick test_bump_parity_slots;
        Alcotest.test_case "bump capacity" `Quick test_bump_capacity;
        Alcotest.test_case "freelist basic" `Quick test_freelist_basic;
        Alcotest.test_case "freelist crash reverts" `Quick test_freelist_crash_reverts_txn_frees;
        Alcotest.test_case "freelist gc tail" `Quick test_freelist_gc_tail_survives;
        Alcotest.test_case "freelist stale gc tail" `Quick
          test_freelist_gc_tail_stale_epoch_ignored;
        Alcotest.test_case "freelist wraparound" `Quick test_freelist_wraparound;
        Alcotest.test_case "freelist overflow" `Quick test_freelist_overflow;
        Alcotest.test_case "prow init/versions" `Quick test_prow_init_and_versions;
        Alcotest.test_case "prow inline value" `Quick test_prow_inline_value_roundtrip;
        Alcotest.test_case "prow gc move" `Quick test_prow_gc_move;
        Alcotest.test_case "prow sid-before-ptr" `Quick test_prow_sid_before_pointer_on_crash;
        Alcotest.test_case "prow inline charge" `Quick test_prow_inline_charge_coalesced;
        Alcotest.test_case "slab unique alloc" `Quick test_slab_alloc_unique;
        Alcotest.test_case "slab free/reuse" `Quick test_slab_free_reuse_after_checkpoint;
        Alcotest.test_case "slab crash recovery" `Quick
          test_slab_crash_recovery_allocation_state;
        Alcotest.test_case "slab value roundtrip" `Quick test_slab_value_roundtrip;
        Alcotest.test_case "vpools class selection" `Quick test_vpools_class_selection;
        Alcotest.test_case "vpools free routing" `Quick test_vpools_free_routes_to_class;
        Alcotest.test_case "vpools oversize" `Quick test_vpools_oversize_rejected;
        Alcotest.test_case "vpools crash recovery" `Quick test_vpools_crash_recovery;
        Alcotest.test_case "pindex roundtrip" `Quick test_pindex_roundtrip;
        Alcotest.test_case "pindex delete/reuse" `Quick test_pindex_delete_and_reuse;
        Alcotest.test_case "pindex crashed tags" `Quick test_pindex_crashed_epoch_tags;
        Alcotest.test_case "pindex capacity" `Quick test_pindex_capacity_guard;
        QCheck_alcotest.to_alcotest prop_pindex_matches_model;
        Alcotest.test_case "log roundtrip" `Quick test_log_roundtrip;
        Alcotest.test_case "log uncommitted" `Quick test_log_uncommitted_invisible;
        Alcotest.test_case "log commit crash" `Quick test_log_commit_then_crash;
        Alcotest.test_case "log invalidation" `Quick test_log_new_epoch_invalidates;
        Alcotest.test_case "meta epoch/counters" `Quick test_meta_epoch_and_counters;
        Alcotest.test_case "transient pool" `Quick test_transient_pool;
      ] );
  ]
