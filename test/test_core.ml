(* Engine-level tests: epoch processing, visibility, aborts, deletes,
   GC behaviour, caching, design variants. *)

open Nvcaracal

let bytes_of_string = Bytes.of_string

let small_config ?(variant = Config.Nvcaracal) ?(crash_safe = false) ?(cores = 4)
    ?(minor_gc = true) ?(cached_versions = true) ?(row_size = 256) () =
  Config.make ~variant ~cores ~row_size ~cache_k:3 ~minor_gc ~cached_versions ~crash_safe
    ~rows_per_core:4096 ~values_per_core:4096 ~freelist_capacity:4096
    ~log_capacity:(1 lsl 20) ()

let one_table = [ Table.make ~id:0 ~name:"t" () ]

let mk_db ?variant ?crash_safe ?cores ?minor_gc ?cached_versions ?row_size () =
  let config = small_config ?variant ?crash_safe ?cores ?minor_gc ?cached_versions ?row_size () in
  let db = Db.create ~config ~tables:one_table () in
  db

let load_n db n =
  Db.bulk_load db
    (Seq.init n (fun i -> (0, Int64.of_int i, bytes_of_string (Printf.sprintf "v0-%d" i))))

let update_txn key data =
  Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key } ] (fun ctx ->
      ctx.Txn.Ctx.write ~table:0 ~key data)

let rmw_txn key f =
  Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key } ] (fun ctx ->
      match ctx.Txn.Ctx.read ~table:0 ~key with
      | None -> failwith "rmw: missing row"
      | Some v -> ctx.Txn.Ctx.write ~table:0 ~key (f v))

let check_committed db key expected =
  match Db.read_committed db ~table:0 ~key with
  | None -> Alcotest.failf "key %Ld missing" key
  | Some v -> Alcotest.(check string) (Printf.sprintf "key %Ld" key) expected (Bytes.to_string v)

let test_basic_update () =
  let db = mk_db () in
  load_n db 16;
  check_committed db 3L "v0-3";
  let stats = Db.run_epoch db [| update_txn 3L (bytes_of_string "new3") |] in
  Alcotest.(check int) "txns" 1 stats.Report.txns;
  Alcotest.(check int) "persistent writes" 1 stats.Report.persistent_writes;
  check_committed db 3L "new3";
  check_committed db 4L "v0-4"

let test_last_writer_wins () =
  let db = mk_db () in
  load_n db 4;
  let txns = Array.init 10 (fun i -> update_txn 1L (bytes_of_string (Printf.sprintf "w%d" i))) in
  let stats = Db.run_epoch db txns in
  check_committed db 1L "w9";
  (* Ten writes to one row: only the last goes to NVMM. *)
  Alcotest.(check int) "version writes" 10 stats.Report.version_writes;
  Alcotest.(check int) "persistent writes" 1 stats.Report.persistent_writes;
  Alcotest.(check int) "transient" 9 stats.Report.transient_only_writes

let test_serial_visibility () =
  let db = mk_db () in
  load_n db 4;
  (* A chain of read-modify-writes within one epoch must observe each
     predecessor's write (early write visibility). *)
  let txns =
    Array.init 8 (fun _ -> rmw_txn 2L (fun v -> bytes_of_string (Bytes.to_string v ^ "+")))
  in
  ignore (Db.run_epoch db txns);
  check_committed db 2L "v0-2++++++++"

let test_read_before_write_sees_old () =
  let db = mk_db () in
  load_n db 4;
  let observed = ref None in
  let reader =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        observed := ctx.Txn.Ctx.read ~table:0 ~key:1L)
  in
  (* Reader has SID 0, writer SID 1: the reader must see the pre-epoch
     value even though the writer also runs in this epoch. *)
  let txns = [| reader; update_txn 1L (bytes_of_string "later") |] in
  ignore (Db.run_epoch db txns);
  Alcotest.(check (option string))
    "reader saw old value" (Some "v0-1")
    (Option.map Bytes.to_string !observed);
  check_committed db 1L "later"

let test_insert_then_read_next_epoch () =
  let db = mk_db () in
  load_n db 4;
  let ins =
    Txn.make ~input:Bytes.empty
      ~write_set:[ Txn.Insert { table = 0; key = 100L; data = Some (bytes_of_string "fresh") } ]
      (fun _ -> ())
  in
  ignore (Db.run_epoch db [| ins |]);
  check_committed db 100L "fresh";
  (* And visible within the inserting epoch to later SIDs. *)
  let seen = ref None in
  let reader =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        seen := ctx.Txn.Ctx.read ~table:0 ~key:200L)
  in
  let ins2 =
    Txn.make ~input:Bytes.empty
      ~write_set:[ Txn.Insert { table = 0; key = 200L; data = Some (bytes_of_string "f2") } ]
      (fun _ -> ())
  in
  ignore (Db.run_epoch db [| ins2; reader |]);
  Alcotest.(check (option string)) "in-epoch insert visible" (Some "f2")
    (Option.map Bytes.to_string !seen)

let test_insert_invisible_to_earlier_sid () =
  let db = mk_db () in
  load_n db 4;
  let seen = ref (Some (bytes_of_string "sentinel")) in
  let reader =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        seen := ctx.Txn.Ctx.read ~table:0 ~key:300L)
  in
  let ins =
    Txn.make ~input:Bytes.empty
      ~write_set:[ Txn.Insert { table = 0; key = 300L; data = Some (bytes_of_string "f3") } ]
      (fun _ -> ())
  in
  ignore (Db.run_epoch db [| reader; ins |]);
  Alcotest.(check (option string)) "earlier reader sees nothing" None
    (Option.map Bytes.to_string !seen)

let test_abort_restores_previous () =
  let db = mk_db () in
  load_n db 4;
  let aborter =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key = 1L } ] (fun ctx ->
        ctx.Txn.Ctx.abort ())
  in
  let stats = Db.run_epoch db [| aborter |] in
  Alcotest.(check int) "aborted" 1 stats.Report.aborted;
  Alcotest.(check int) "no persistent writes" 0 stats.Report.persistent_writes;
  check_committed db 1L "v0-1"

let test_abort_final_falls_back () =
  let db = mk_db () in
  load_n db 4;
  (* Writer w1 commits, w2 (the final writer) aborts: w1's value must be
     the epoch's persistent version (section 4.6). *)
  let w1 = update_txn 1L (bytes_of_string "keep-me") in
  let w2 =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key = 1L } ] (fun ctx ->
        ctx.Txn.Ctx.abort ())
  in
  let stats = Db.run_epoch db [| w1; w2 |] in
  Alcotest.(check int) "one persistent write" 1 stats.Report.persistent_writes;
  check_committed db 1L "keep-me"

let test_abort_reader_skips_ignored () =
  let db = mk_db () in
  load_n db 4;
  let w1 =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key = 1L } ] (fun ctx ->
        ctx.Txn.Ctx.abort ())
  in
  let seen = ref None in
  let reader =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        seen := ctx.Txn.Ctx.read ~table:0 ~key:1L)
  in
  ignore (Db.run_epoch db [| w1; reader |]);
  Alcotest.(check (option string))
    "reader skipped IGNORE" (Some "v0-1")
    (Option.map Bytes.to_string !seen)

let test_delete () =
  let db = mk_db () in
  load_n db 4;
  let del =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Delete { table = 0; key = 2L } ] (fun ctx ->
        ctx.Txn.Ctx.delete ~table:0 ~key:2L)
  in
  ignore (Db.run_epoch db [| del |]);
  Alcotest.(check (option string)) "deleted" None
    (Option.map Bytes.to_string (Db.read_committed db ~table:0 ~key:2L));
  (* Deleted keys can be re-inserted in a later epoch. *)
  let ins =
    Txn.make ~input:Bytes.empty
      ~write_set:[ Txn.Insert { table = 0; key = 2L; data = Some (bytes_of_string "back") } ]
      (fun _ -> ())
  in
  ignore (Db.run_epoch db [| ins |]);
  check_committed db 2L "back"

let test_tombstone_visible_in_epoch () =
  let db = mk_db () in
  load_n db 4;
  let del =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Delete { table = 0; key = 2L } ] (fun ctx ->
        ctx.Txn.Ctx.delete ~table:0 ~key:2L)
  in
  let seen = ref (Some (bytes_of_string "sentinel")) in
  let reader =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        seen := ctx.Txn.Ctx.read ~table:0 ~key:2L)
  in
  ignore (Db.run_epoch db [| del; reader |]);
  Alcotest.(check (option string)) "tombstone read as absent" None
    (Option.map Bytes.to_string !seen)

let test_minor_gc_counts () =
  let db = mk_db () in
  load_n db 4;
  (* Small values inline; consecutive-epoch updates to the same row
     trigger the minor collector from the third update on (the first
     creates v2, the second rotates a null v1, the third must displace a
     stale inline v1). *)
  ignore (Db.run_epoch db [| update_txn 1L (bytes_of_string "a") |]);
  ignore (Db.run_epoch db [| update_txn 1L (bytes_of_string "b") |]);
  let s3 = Db.run_epoch db [| update_txn 1L (bytes_of_string "c") |] in
  Alcotest.(check int) "minor gc ran" 1 s3.Report.minor_gc;
  Alcotest.(check int) "no major gc" 0 s3.Report.major_gc;
  check_committed db 1L "c"

let test_major_gc_for_pool_values () =
  let db = mk_db () in
  let big s = Bytes.make 400 s in
  Db.bulk_load db (Seq.init 4 (fun i -> (0, Int64.of_int i, big 'x')));
  ignore (Db.run_epoch db [| update_txn 1L (big 'a') |]);
  ignore (Db.run_epoch db [| update_txn 1L (big 'b') |]);
  (* The epoch after an update of a pool-valued row must major-GC it. *)
  let s3 = Db.run_epoch db [| update_txn 2L (big 'z') |] in
  Alcotest.(check bool) "major gc ran" true (s3.Report.major_gc >= 1);
  Alcotest.(check string) "value" (Bytes.to_string (big 'b'))
    (Bytes.to_string (Option.get (Db.read_committed db ~table:0 ~key:1L)))

let test_cache_hits () =
  let db = mk_db () in
  load_n db 8;
  let read_only key =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        ignore (ctx.Txn.Ctx.read ~table:0 ~key))
  in
  let s1 = Db.run_epoch db [| read_only 5L |] in
  Alcotest.(check int) "first read misses" 1 s1.Report.cache_misses;
  let s2 = Db.run_epoch db [| read_only 5L |] in
  Alcotest.(check int) "second read hits" 1 s2.Report.cache_hits

let test_cache_eviction () =
  let db = mk_db () in
  load_n db 8;
  let read_only key =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        ignore (ctx.Txn.Ctx.read ~table:0 ~key))
  in
  ignore (Db.run_epoch db [| read_only 5L |]);
  (* K = 3 in the test config: after 5 idle epochs the entry is gone. *)
  let evicted = ref 0 in
  for _ = 1 to 6 do
    let s = Db.run_epoch db [| read_only 7L |] in
    evicted := !evicted + s.Report.evicted
  done;
  Alcotest.(check bool) "eviction happened" true (!evicted >= 1);
  let s = Db.run_epoch db [| read_only 5L |] in
  Alcotest.(check int) "read misses again after eviction" 1 s.Report.cache_misses

let test_counters_persist () =
  let config =
    Config.make ~cores:2 ~n_counters:2 ~rows_per_core:1024 ~values_per_core:1024
      ~freelist_capacity:1024 ()
  in
  let db = Db.create ~config ~tables:one_table () in
  load_n db 2;
  let t =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        ignore (ctx.Txn.Ctx.counter_next ~idx:0);
        ignore (ctx.Txn.Ctx.counter_next ~idx:0);
        ignore (ctx.Txn.Ctx.counter_next ~idx:1))
  in
  ignore (Db.run_epoch db [| t |]);
  Alcotest.(check int64) "counter 0" 2L (Db.counter_value db 0);
  Alcotest.(check int64) "counter 1" 1L (Db.counter_value db 1)

let test_variants_agree_on_state () =
  (* All design variants must produce identical database contents; they
     only differ in cost accounting. *)
  let run variant =
    let db = mk_db ~variant () in
    load_n db 16;
    let rng = Nv_util.Rng.create 7 in
    for _ = 1 to 5 do
      let txns =
        Array.init 20 (fun _ ->
            let key = Int64.of_int (Nv_util.Rng.int rng 16) in
            rmw_txn key (fun v -> bytes_of_string (Bytes.to_string v ^ "x")))
      in
      ignore (Db.run_epoch db txns)
    done;
    let out = ref [] in
    Db.iter_committed db ~table:0 (fun k v -> out := (k, Bytes.to_string v) :: !out);
    List.sort compare !out
  in
  let reference = run Config.Nvcaracal in
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "%s matches nvcaracal" (Config.variant_name v))
        true
        (run v = reference))
    [ Config.All_nvmm; Config.Hybrid; Config.No_logging; Config.All_dram; Config.Wal ]

let test_toggles_agree_on_state () =
  (* Cost-model toggles never change the committed state. *)
  let run ~batch_append ~selective_caching ~minor_gc =
    let config =
      Config.make ~cores:4 ~rows_per_core:4096 ~values_per_core:4096 ~freelist_capacity:4096
        ~batch_append ~selective_caching ~minor_gc ()
    in
    let db = Db.create ~config ~tables:one_table () in
    load_n db 16;
    let rng = Nv_util.Rng.create 9 in
    for _ = 1 to 4 do
      let txns =
        Array.init 20 (fun _ ->
            let key = Int64.of_int (Nv_util.Rng.int rng 16) in
            rmw_txn key (fun v -> bytes_of_string (Bytes.to_string v ^ "t")))
      in
      ignore (Db.run_epoch db txns)
    done;
    let out = ref [] in
    Db.iter_committed db ~table:0 (fun k v -> out := (k, Bytes.to_string v) :: !out);
    List.sort compare !out
  in
  let reference = run ~batch_append:false ~selective_caching:false ~minor_gc:true in
  List.iter
    (fun (ba, sc, mg) ->
      Alcotest.(check bool) "toggle-equal" true
        (run ~batch_append:ba ~selective_caching:sc ~minor_gc:mg = reference))
    [ (true, false, true); (false, true, true); (false, false, false); (true, true, false) ]

let test_all_nvmm_slower () =
  let throughput variant =
    let db = mk_db ~variant ~cached_versions:(variant <> Config.All_nvmm) () in
    load_n db 64;
    let rng = Nv_util.Rng.create 3 in
    for _ = 1 to 5 do
      let txns =
        Array.init 64 (fun _ ->
            (* Contended: half the writes hit 4 hot keys. *)
            let key =
              if Nv_util.Rng.bool rng then Int64.of_int (Nv_util.Rng.int rng 4)
              else Int64.of_int (Nv_util.Rng.int rng 64)
            in
            update_txn key (Bytes.make 100 'q'))
      in
      ignore (Db.run_epoch db txns)
    done;
    float_of_int (Db.committed_txns db) /. Db.total_time_ns db
  in
  let nv = throughput Config.Nvcaracal in
  let all_nvmm = throughput Config.All_nvmm in
  let all_dram = throughput Config.All_dram in
  Alcotest.(check bool) "all-NVMM slower than NVCaracal" true (all_nvmm < nv);
  Alcotest.(check bool) "NVCaracal slower than all-DRAM" true (nv < all_dram)

let test_mem_report () =
  let db = mk_db () in
  load_n db 32;
  ignore (Db.run_epoch db [| update_txn 1L (bytes_of_string "x") |]);
  let m = Db.mem_report db in
  Alcotest.(check bool) "rows accounted" true (m.Report.nvmm_rows >= 32 * 256);
  Alcotest.(check bool) "index accounted" true (m.Report.dram_index > 0);
  Alcotest.(check bool) "transient accounted" true (m.Report.dram_transient > 0)

let test_write_outside_write_set_rejected () =
  let db = mk_db () in
  load_n db 4;
  let bad =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key = 1L } ] (fun ctx ->
        ctx.Txn.Ctx.write ~table:0 ~key:2L (bytes_of_string "sneak"))
  in
  Alcotest.check_raises "undeclared write rejected"
    (Invalid_argument "Txn.Ctx.write: key (0, 2) is not in the write set") (fun () ->
      ignore (Db.run_epoch db [| bad |]))

let test_abort_after_write_rejected () =
  let db = mk_db () in
  load_n db 4;
  let bad =
    Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key = 1L } ] (fun ctx ->
        ctx.Txn.Ctx.write ~table:0 ~key:1L (bytes_of_string "w");
        ctx.Txn.Ctx.abort ())
  in
  (match Db.run_epoch db [| bad |] with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure _ -> ());
  ()

let test_ordered_table_ranges () =
  let tables = [ Table.make ~id:0 ~name:"ord" ~index:Table.Ordered () ] in
  let config = small_config () in
  let db = Db.create ~config ~tables () in
  Db.bulk_load db
    (Seq.init 10 (fun i -> (0, Int64.of_int (i * 10), bytes_of_string (string_of_int i))));
  let seen = ref [] in
  let reader =
    Txn.make ~input:Bytes.empty ~write_set:[] (fun ctx ->
        seen := ctx.Txn.Ctx.range_read ~table:0 ~lo:15L ~hi:45L;
        Alcotest.(check (option (pair int64 string)))
          "min_above" (Some (50L, "5"))
          (Option.map (fun (k, v) -> (k, Bytes.to_string v)) (ctx.Txn.Ctx.min_above ~table:0 46L));
        Alcotest.(check (option (pair int64 string)))
          "max_below" (Some (40L, "4"))
          (Option.map (fun (k, v) -> (k, Bytes.to_string v)) (ctx.Txn.Ctx.max_below ~table:0 45L)))
  in
  ignore (Db.run_epoch db [| reader |]);
  Alcotest.(check (list (pair int64 string)))
    "range" [ (20L, "2"); (30L, "3"); (40L, "4") ]
    (List.map (fun (k, v) -> (k, Bytes.to_string v)) !seen)

(* Reconnaissance transactions (paper section 3.1.1): key 0 holds a
   pointer naming the row to update; the recon pass reads it to build
   the write set and execution validates the read. *)
let recon_txn data =
  let target ctx =
    match ctx.Txn.Ctx.read ~table:0 ~key:0L with
    | Some v -> Int64.of_string (Bytes.to_string v)
    | None -> failwith "missing pointer row"
  in
  Txn.make ~input:Bytes.empty ~write_set:[]
    ~recon:(fun ctx -> [ Txn.Update { table = 0; key = target ctx } ])
    (fun ctx -> ctx.Txn.Ctx.write ~table:0 ~key:(target ctx) data)

let test_recon_write_set () =
  let db = mk_db () in
  Db.bulk_load db
    (Seq.cons (0, 0L, bytes_of_string "3")
       (Seq.init 8 (fun i -> (0, Int64.of_int (i + 1), bytes_of_string "old"))));
  let stats = Db.run_epoch db [| recon_txn (bytes_of_string "via-recon") |] in
  Alcotest.(check int) "committed" 0 stats.Report.aborted;
  check_committed db 3L "via-recon";
  check_committed db 4L "old"

let test_recon_validation_aborts () =
  let db = mk_db () in
  Db.bulk_load db
    (Seq.cons (0, 0L, bytes_of_string "3")
       (Seq.init 8 (fun i -> (0, Int64.of_int (i + 1), bytes_of_string "old"))));
  (* An earlier transaction redirects the pointer row, invalidating the
     recon read: the recon transaction must abort deterministically. *)
  let redirect = update_txn 0L (bytes_of_string "5") in
  let stats = Db.run_epoch db [| redirect; recon_txn (bytes_of_string "stale") |] in
  Alcotest.(check int) "recon txn aborted" 1 stats.Report.aborted;
  check_committed db 3L "old";
  check_committed db 5L "old";
  (* Resubmitted next epoch, it sees the new pointer and succeeds. *)
  let stats2 = Db.run_epoch db [| recon_txn (bytes_of_string "retried") |] in
  Alcotest.(check int) "retry committed" 0 stats2.Report.aborted;
  check_committed db 5L "retried"

let test_recon_untouched_read_commits () =
  let db = mk_db () in
  Db.bulk_load db
    (Seq.cons (0, 0L, bytes_of_string "3")
       (Seq.init 8 (fun i -> (0, Int64.of_int (i + 1), bytes_of_string "old"))));
  (* A concurrent writer touching an unrelated key does not invalidate
     the recon. *)
  let unrelated = update_txn 7L (bytes_of_string "x") in
  let stats = Db.run_epoch db [| unrelated; recon_txn (bytes_of_string "fine") |] in
  Alcotest.(check int) "no aborts" 0 stats.Report.aborted;
  check_committed db 3L "fine"

let test_btree_and_avl_engines_agree () =
  let run ordered_index =
    let config =
      Config.make ~cores:4 ~rows_per_core:4096 ~values_per_core:4096 ~freelist_capacity:4096
        ~ordered_index ()
    in
    let tables = [ Table.make ~id:0 ~name:"ord" ~index:Table.Ordered () ] in
    let db = Db.create ~config ~tables () in
    Db.bulk_load db
      (Seq.init 64 (fun i -> (0, Int64.of_int (i * 3), bytes_of_string (string_of_int i))));
    let rng = Nv_util.Rng.create 17 in
    for _ = 1 to 4 do
      let txns =
        Array.init 30 (fun _ ->
            let key = Int64.of_int (Nv_util.Rng.int rng 64 * 3) in
            rmw_txn key (fun v -> bytes_of_string (Bytes.to_string v ^ "y")))
      in
      ignore (Db.run_epoch db txns)
    done;
    let out = ref [] in
    Db.iter_committed db ~table:0 (fun k v -> out := (k, Bytes.to_string v) :: !out);
    List.sort compare !out
  in
  Alcotest.(check bool) "identical state" true (run Config.Avl = run Config.Btree)

let test_size_classed_value_pools () =
  (* Mixed value sizes across three classes, including growth across
     epochs and crash recovery. *)
  let config =
    Config.make ~cores:2 ~crash_safe:true ~rows_per_core:1024 ~values_per_core:256
      ~freelist_capacity:1024
      ~value_size_classes:[ 256; 1024; 4096 ]
      ()
  in
  let db = Db.create ~config ~tables:one_table () in
  let size_of i = match i mod 3 with 0 -> 100 | 1 -> 900 | _ -> 3000 in
  Db.bulk_load db (Seq.init 12 (fun i -> (0, Int64.of_int i, Bytes.make (size_of i) 'i')));
  let batch tag =
    Array.init 12 (fun i -> update_txn (Int64.of_int i) (Bytes.make (size_of (i + 1)) tag))
  in
  ignore (Db.run_epoch db (batch 'a'));
  ignore (Db.run_epoch db (batch 'b'));
  for i = 0 to 11 do
    let v = Option.get (Db.read_committed db ~table:0 ~key:(Int64.of_int i)) in
    Alcotest.(check int) (Printf.sprintf "len of %d" i) (size_of (i + 1)) (Bytes.length v);
    Alcotest.(check char) "tag" 'b' (Bytes.get v 0)
  done;
  (* Crash and recover with multiple classes in play. *)
  let pmem = Db.crash db ~rng:(Nv_util.Rng.create 3) in
  let db2, _ =
    Db.recover ~config ~tables:one_table ~pmem ~rebuild:(fun _ -> failwith "no log") ()
  in
  for i = 0 to 11 do
    let v = Option.get (Db.read_committed db2 ~table:0 ~key:(Int64.of_int i)) in
    Alcotest.(check int) (Printf.sprintf "recovered len of %d" i) (size_of (i + 1))
      (Bytes.length v)
  done

(* --- Replication by input-log shipping --- *)

let repl_pair () =
  let config = small_config () in
  (* Reuse the recovery mini-workload codec for rebuildable txns. *)
  let pair =
    Replication.create ~config ~tables:one_table ~rebuild:Test_recovery.rebuild ()
  in
  Replication.bulk_load pair
    (Seq.init 16 (fun i -> (0, Int64.of_int i, Bytes.make 16 '0')));
  pair

let repl_batch ~seed n =
  let rng = Nv_util.Rng.create seed in
  Array.init n (fun _ ->
      let key = Int64.of_int (Nv_util.Rng.int rng 16) in
      let tag = Char.chr (Char.code 'a' + Nv_util.Rng.int rng 26) in
      Test_recovery.txn_of_ops [ Test_recovery.Set { key; len = 16; tag } ])

let test_replication_sync () =
  let pair = repl_pair () in
  for e = 1 to 5 do
    ignore (Replication.submit pair (repl_batch ~seed:e 20))
  done;
  Alcotest.(check int) "lag before sync" 5 (Replication.replica_lag pair);
  Alcotest.(check bool) "shipped bytes counted" true (Replication.shipped_bytes pair > 0);
  Alcotest.(check bool) "states equal after sync" true (Replication.states_equal pair);
  Alcotest.(check int) "lag drained" 0 (Replication.replica_lag pair)

let test_replication_lagged_reads () =
  let pair = repl_pair () in
  ignore
    (Replication.submit pair
       [| Test_recovery.txn_of_ops [ Test_recovery.Set { key = 3L; len = 16; tag = 'z' } ] |]);
  (* Replica still serves the pre-epoch value until synced. *)
  Alcotest.(check (option string)) "replica stale" (Some "0000000000000000")
    (Option.map Bytes.to_string
       (Db.read_committed (Replication.replica_db pair) ~table:0 ~key:3L));
  Replication.sync pair ();
  Alcotest.(check (option string)) "replica caught up" (Some (String.make 16 'z'))
    (Option.map Bytes.to_string
       (Db.read_committed (Replication.replica_db pair) ~table:0 ~key:3L))

let test_replication_failover () =
  let pair = repl_pair () in
  for e = 1 to 3 do
    ignore (Replication.submit pair (repl_batch ~seed:(100 + e) 20))
  done;
  let expected = ref [] in
  Db.iter_committed (Replication.primary_db pair) ~table:0 (fun k v ->
      expected := (k, Bytes.to_string v) :: !expected);
  (* Primary "dies"; promote the replica and keep processing. *)
  let promoted = Replication.failover_db pair in
  let got = ref [] in
  Db.iter_committed promoted ~table:0 (fun k v -> got := (k, Bytes.to_string v) :: !got);
  Alcotest.(check bool) "promoted state equals primary" true
    (List.sort compare !expected = List.sort compare !got);
  ignore (Db.run_epoch promoted [| update_txn 1L (bytes_of_string "post-failover") |]);
  Alcotest.(check (option string)) "promoted keeps working" (Some "post-failover")
    (Option.map Bytes.to_string (Db.read_committed promoted ~table:0 ~key:1L))

let test_replication_partial_sync () =
  let pair = repl_pair () in
  for e = 1 to 4 do
    ignore (Replication.submit pair (repl_batch ~seed:(200 + e) 10))
  done;
  Replication.sync pair ~upto:2 ();
  Alcotest.(check int) "partial lag" 2 (Replication.replica_lag pair);
  Alcotest.(check bool) "eventually equal" true (Replication.states_equal pair)

(* Regression: failover racing an in-flight shipment. An epoch that was
   shipped (submit returned) but not yet applied on the replica must
   survive promotion — the mli promises the queue drains first. *)
let test_replication_failover_inflight_epoch () =
  let pair = repl_pair () in
  ignore (Replication.submit pair (repl_batch ~seed:301 20));
  Replication.sync pair ();
  (* The racing epoch: shipped, replica never applies it before the
     primary "dies". *)
  ignore
    (Replication.submit pair
       [| Test_recovery.txn_of_ops [ Test_recovery.Set { key = 9L; len = 16; tag = 'q' } ] |]);
  Alcotest.(check int) "epoch still in flight" 1 (Replication.replica_lag pair);
  let expected = ref [] in
  Db.iter_committed (Replication.primary_db pair) ~table:0 (fun k v ->
      expected := (k, Bytes.to_string v) :: !expected);
  let promoted = Replication.failover_db pair in
  Alcotest.(check (option string)) "in-flight epoch applied during promotion"
    (Some (String.make 16 'q'))
    (Option.map Bytes.to_string (Db.read_committed promoted ~table:0 ~key:9L));
  let got = ref [] in
  Db.iter_committed promoted ~table:0 (fun k v -> got := (k, Bytes.to_string v) :: !got);
  Alcotest.(check bool) "promoted state equals primary's last submit" true
    (List.sort compare !expected = List.sort compare !got)

(* --- Session layer: batching + checkpoint-gated results --- *)

let test_session_visibility () =
  let db = mk_db () in
  load_n db 8;
  let s = Session.create ~db ~epoch_target:100 ~auto_flush:false () in
  let h1 = Session.submit s (update_txn 1L (bytes_of_string "one")) in
  let h2 =
    Session.submit s
      (Txn.make ~input:Bytes.empty ~write_set:[ Txn.Update { table = 0; key = 2L } ]
         (fun ctx -> ctx.Txn.Ctx.abort ()))
  in
  (* Nothing visible before the epoch runs. *)
  Alcotest.(check bool) "h1 pending" true (Session.result s h1 = None);
  Alcotest.(check int) "queued" 2 (Session.pending s);
  (match Session.flush s with
  | Some stats -> Alcotest.(check int) "epoch ran both" 2 stats.Report.txns
  | None -> Alcotest.fail "expected an epoch");
  Alcotest.(check bool) "h1 committed" true (Session.result s h1 = Some `Committed);
  Alcotest.(check bool) "h2 aborted" true (Session.result s h2 = Some `Aborted);
  check_committed db 1L "one";
  Alcotest.(check bool) "empty flush" true (Session.flush s = None)

let test_session_auto_flush () =
  let db = mk_db () in
  load_n db 8;
  let s = Session.create ~db ~epoch_target:5 () in
  let handles =
    List.init 12 (fun i -> Session.submit s (update_txn 1L (bytes_of_string (string_of_int i))))
  in
  (* Two auto-flushes happened (at submissions 6 and 11). *)
  Alcotest.(check int) "two epochs ran" 3 (Db.epoch db);
  Alcotest.(check bool) "early handle resolved" true
    (Session.result s (List.hd handles) = Some `Committed);
  Alcotest.(check bool) "late handle pending" true
    (Session.result s (List.nth handles 11) = None);
  ignore (Session.flush s);
  Alcotest.(check bool) "late handle resolved" true
    (Session.result s (List.nth handles 11) = Some `Committed);
  check_committed db 1L "11"

let suites =
  [
    ( "core.engine",
      [
        Alcotest.test_case "basic update" `Quick test_basic_update;
        Alcotest.test_case "last writer wins" `Quick test_last_writer_wins;
        Alcotest.test_case "serial visibility" `Quick test_serial_visibility;
        Alcotest.test_case "read before write" `Quick test_read_before_write_sees_old;
        Alcotest.test_case "insert visibility" `Quick test_insert_then_read_next_epoch;
        Alcotest.test_case "insert invisible earlier" `Quick test_insert_invisible_to_earlier_sid;
        Alcotest.test_case "abort restores" `Quick test_abort_restores_previous;
        Alcotest.test_case "abort final fallback" `Quick test_abort_final_falls_back;
        Alcotest.test_case "abort reader skips" `Quick test_abort_reader_skips_ignored;
        Alcotest.test_case "delete" `Quick test_delete;
        Alcotest.test_case "tombstone visible" `Quick test_tombstone_visible_in_epoch;
        Alcotest.test_case "minor gc" `Quick test_minor_gc_counts;
        Alcotest.test_case "major gc" `Quick test_major_gc_for_pool_values;
        Alcotest.test_case "cache hits" `Quick test_cache_hits;
        Alcotest.test_case "cache eviction" `Quick test_cache_eviction;
        Alcotest.test_case "counters" `Quick test_counters_persist;
        Alcotest.test_case "variants agree" `Quick test_variants_agree_on_state;
        Alcotest.test_case "toggles agree" `Quick test_toggles_agree_on_state;
        Alcotest.test_case "variant ordering" `Quick test_all_nvmm_slower;
        Alcotest.test_case "mem report" `Quick test_mem_report;
        Alcotest.test_case "undeclared write" `Quick test_write_outside_write_set_rejected;
        Alcotest.test_case "abort after write" `Quick test_abort_after_write_rejected;
        Alcotest.test_case "ordered ranges" `Quick test_ordered_table_ranges;
        Alcotest.test_case "recon write set" `Quick test_recon_write_set;
        Alcotest.test_case "recon validation aborts" `Quick test_recon_validation_aborts;
        Alcotest.test_case "recon unrelated ok" `Quick test_recon_untouched_read_commits;
        Alcotest.test_case "avl/btree engines agree" `Quick test_btree_and_avl_engines_agree;
        Alcotest.test_case "size-classed value pools" `Quick test_size_classed_value_pools;
        Alcotest.test_case "replication sync" `Quick test_replication_sync;
        Alcotest.test_case "replication lagged reads" `Quick test_replication_lagged_reads;
        Alcotest.test_case "replication failover" `Quick test_replication_failover;
        Alcotest.test_case "replication partial sync" `Quick test_replication_partial_sync;
        Alcotest.test_case "replication failover mid-shipment" `Quick
          test_replication_failover_inflight_epoch;
        Alcotest.test_case "session visibility" `Quick test_session_visibility;
        Alcotest.test_case "session auto-flush" `Quick test_session_auto_flush;
      ] );
  ]
